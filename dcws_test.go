package dcws_test

import (
	"strings"
	"testing"
	"time"

	"dcws"
)

// TestFacadeQuickstart exercises the README quick-start path end to end
// through the public API only.
func TestFacadeQuickstart(t *testing.T) {
	st := dcws.NewMemStore()
	st.Put("/index.html", []byte(`<html><a href="/a.html">a</a></html>`))
	st.Put("/a.html", []byte(`<html>hello</html>`))
	fabric := dcws.NewFabric()
	srv, err := dcws.New(dcws.Config{
		Origin:      dcws.Origin{Host: "quick", Port: 80},
		Store:       st,
		Network:     fabric,
		EntryPoints: []string{"/index.html"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stats := &dcws.ClientStats{}
	cl, err := dcws.NewClient(dcws.ClientConfig{
		Dialer:    fabric, // *Fabric satisfies the Dialer interface
		EntryURLs: []string{"http://quick:80/index.html"},
		Seed:      1,
		Stats:     stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	body, _, ok := cl.Fetch("http://quick:80/index.html")
	if !ok || !strings.Contains(string(body), "a.html") {
		t.Fatalf("fetch via facade failed: %q %v", body, ok)
	}
	if srv.Status().Connections == 0 {
		t.Fatal("server status shows no traffic")
	}
}

func TestFacadeCluster(t *testing.T) {
	c, err := dcws.NewCluster(dcws.ClusterConfig{
		Servers: []dcws.ServerSpec{
			{Host: "home", Port: 80, Site: dcws.LOD()},
			{Host: "coop", Port: 81},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.EntryURLs()) != 1 {
		t.Fatalf("entry URLs = %v", c.EntryURLs())
	}
	stats := &dcws.ClientStats{}
	cl, err := dcws.NewClient(dcws.ClientConfig{
		Dialer:    c.Dialer(),
		EntryURLs: c.EntryURLs(),
		Seed:      9,
		Stats:     stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.RunSequence(nil)
	if stats.Connections.Value() == 0 {
		t.Fatalf("no traffic: %s", stats)
	}
}

func TestFacadeSimulate(t *testing.T) {
	res, err := dcws.Simulate(dcws.SimConfig{
		Site:     dcws.LOD(),
		Servers:  2,
		Clients:  8,
		Duration: 20 * time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Connections == 0 {
		t.Fatal("simulation produced no traffic")
	}
}

func TestFacadeDefaults(t *testing.T) {
	p := dcws.DefaultParams()
	if p.Workers != 12 || p.StatsInterval != 10*time.Second {
		t.Fatalf("defaults = %+v", p)
	}
	for _, name := range []string{"mapug", "sblog", "lod", "sequoia"} {
		if dcws.DatasetByName(name) == nil {
			t.Fatalf("DatasetByName(%q) = nil", name)
		}
	}
}
