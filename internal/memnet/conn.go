// Package memnet provides an in-memory transport implementing net.Conn and
// net.Listener so that a whole DCWS server group — the paper ran 64
// workstations on switched Ethernet — can be wired together inside one
// process with no TCP ports, bounded listener backlogs, and optionally
// injected latency for the geographically-distributed scenarios of §1.
package memnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("memnet: use of closed connection")

// ErrTimeout is returned when a deadline expires. It satisfies
// net.Error with Timeout() == true.
var ErrTimeout net.Error = timeoutError{}

type timeoutError struct{}

func (timeoutError) Error() string   { return "memnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// pipeBuffer is one direction of a connection: a bounded byte queue with
// blocking reads, deadline support, and close semantics.
type pipeBuffer struct {
	mu        sync.Mutex
	cond      *sync.Cond
	buf       []byte
	max       int
	closed    bool      // write side closed: reads drain then EOF
	broken    bool      // hard close: reads and writes fail immediately
	deadline  time.Time // read deadline (set by reader side)
	wDeadline time.Time // write deadline (set by writer side)
}

func newPipeBuffer(max int) *pipeBuffer {
	b := &pipeBuffer{max: max}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for len(p) > 0 {
		if b.closed || b.broken {
			return total, ErrClosed
		}
		if !b.wDeadline.IsZero() && !time.Now().Before(b.wDeadline) {
			return total, ErrTimeout
		}
		space := b.max - len(b.buf)
		if space == 0 {
			b.waitLocked(b.wDeadline)
			continue
		}
		n := len(p)
		if n > space {
			n = space
		}
		b.buf = append(b.buf, p[:n]...)
		p = p[n:]
		total += n
		b.cond.Broadcast()
	}
	return total, nil
}

func (b *pipeBuffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.broken {
			return 0, ErrClosed
		}
		if len(b.buf) > 0 {
			n := copy(p, b.buf)
			b.buf = b.buf[n:]
			b.cond.Broadcast()
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			return 0, ErrTimeout
		}
		b.waitLocked(b.deadline)
	}
}

// waitLocked blocks on the condition variable, waking up early if a deadline
// is pending so that deadline expiry is observed promptly.
func (b *pipeBuffer) waitLocked(deadline time.Time) {
	if deadline.IsZero() {
		b.cond.Wait()
		return
	}
	// Poll with a timer: Cond has no timed wait. Spawn a waker.
	done := make(chan struct{})
	go func() {
		d := time.Until(deadline)
		if d > 0 {
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-done:
				return
			}
		}
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}()
	b.cond.Wait()
	close(done)
}

// closeWrite marks the write side closed; pending data remains readable.
func (b *pipeBuffer) closeWrite() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// breakPipe hard-closes the buffer in both directions.
func (b *pipeBuffer) breakPipe() {
	b.mu.Lock()
	b.broken = true
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *pipeBuffer) setReadDeadline(t time.Time) {
	b.mu.Lock()
	b.deadline = t
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *pipeBuffer) setWriteDeadline(t time.Time) {
	b.mu.Lock()
	b.wDeadline = t
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Conn is one endpoint of an in-memory connection.
type Conn struct {
	readBuf     *pipeBuffer // data flowing toward this endpoint
	writeBuf    *pipeBuffer // data flowing away from this endpoint
	local       net.Addr
	remote      net.Addr
	latency     time.Duration
	stall       time.Duration // injected per-write delay (fault fabric)
	resetBudget *int64        // shared byte budget; exhaustion resets the conn
	closeOnce   sync.Once
}

var _ net.Conn = (*Conn)(nil)

// Pipe returns a connected pair of in-memory connections with the given
// per-direction buffer size (64 KiB if bufSize <= 0).
func Pipe(bufSize int) (*Conn, *Conn) {
	return pipeWithAddrs(bufSize, addr("pipe:client"), addr("pipe:server"), 0)
}

func pipeWithAddrs(bufSize int, a, b net.Addr, latency time.Duration) (*Conn, *Conn) {
	if bufSize <= 0 {
		bufSize = 64 * 1024
	}
	ab := newPipeBuffer(bufSize) // a -> b
	ba := newPipeBuffer(bufSize) // b -> a
	ca := &Conn{readBuf: ba, writeBuf: ab, local: a, remote: b, latency: latency}
	cb := &Conn{readBuf: ab, writeBuf: ba, local: b, remote: a, latency: latency}
	return ca, cb
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.readBuf.read(p) }

// Write implements net.Conn. If the connection was created with injected
// latency, the first byte of every Write is delayed by that amount,
// simulating propagation delay on a wide-area link. An injected stall
// delays writes the same way, and an exhausted reset budget hard-closes
// the connection mid-stream (both ends observe a reset).
func (c *Conn) Write(p []byte) (int, error) {
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	if c.stall > 0 {
		time.Sleep(c.stall)
	}
	if c.resetBudget != nil && atomic.LoadInt64(c.resetBudget) <= 0 {
		c.reset()
		return 0, ErrClosed
	}
	n, err := c.writeBuf.write(p)
	if c.resetBudget != nil && n > 0 {
		if atomic.AddInt64(c.resetBudget, -int64(n)) <= 0 {
			c.reset()
			return n, ErrClosed
		}
	}
	return n, err
}

// reset simulates a mid-stream connection reset: both directions are
// hard-closed, so the peer's reads fail immediately even with buffered
// data pending — exactly what a TCP RST does to an application.
func (c *Conn) reset() {
	c.readBuf.breakPipe()
	c.writeBuf.breakPipe()
}

// isBroken reports whether the connection has been closed or reset (used
// by the fabric to prune its established-connection registry).
func (c *Conn) isBroken() bool {
	c.readBuf.mu.Lock()
	defer c.readBuf.mu.Unlock()
	return c.readBuf.broken
}

// Close implements net.Conn. The peer sees EOF after draining buffered data.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.writeBuf.closeWrite()
		c.readBuf.breakPipe()
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.readBuf.setReadDeadline(t)
	c.writeBuf.setWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.readBuf.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.writeBuf.setWriteDeadline(t)
	return nil
}

type addr string

func (a addr) Network() string { return "mem" }
func (a addr) String() string  { return string(a) }
