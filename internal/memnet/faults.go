package memnet

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// linkFaults is the injectable failure configuration of one fabric link.
type linkFaults struct {
	// dialFailRate is the probability in [0, 1] that a dial attempt on
	// this link fails with a connection-refused error.
	dialFailRate float64
	// resetAfter, when > 0, hard-closes the connection in both directions
	// after that many payload bytes have crossed it (mid-stream reset).
	resetAfter int64
	// stall adds a fixed delay to every write on the link, on top of any
	// configured latency — a congested or lossy path whose retransmits
	// make progress glacial.
	stall time.Duration
}

// Wildcard matches any endpoint in the fault-injection link selectors.
// Plain Dial calls originate from a synthetic "client->addr" address, so
// faults meant for external clients are declared with a Wildcard origin.
const Wildcard = "*"

// SetSeed reseeds the fabric's fault randomness. The fabric starts with a
// fixed seed, so fault schedules are deterministic unless reseeded.
func (f *Fabric) SetSeed(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
}

// SetDialFailRate makes a fraction of dial attempts between a and b (in
// either direction) fail with a connection-refused error. Either endpoint
// may be the Wildcard. A rate of 0 removes the fault.
func (f *Fabric) SetDialFailRate(a, b string, rate float64) {
	f.mutateFaults(a, b, func(lf *linkFaults) { lf.dialFailRate = rate })
}

// SetResetAfterBytes breaks connections between a and b after n payload
// bytes have crossed them (in either direction): both ends see a hard
// connection reset mid-stream. n <= 0 removes the fault.
func (f *Fabric) SetResetAfterBytes(a, b string, n int64) {
	f.mutateFaults(a, b, func(lf *linkFaults) { lf.resetAfter = n })
}

// SetStall adds d of delay to every write between a and b, simulating a
// path that drops packets and crawls through retransmissions. Combined
// with the callers' deadlines this produces timeouts rather than errors.
// d <= 0 removes the fault.
func (f *Fabric) SetStall(a, b string, d time.Duration) {
	f.mutateFaults(a, b, func(lf *linkFaults) { lf.stall = d })
}

func (f *Fabric) mutateFaults(a, b string, apply func(*linkFaults)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.faults == nil {
		f.faults = make(map[[2]string]*linkFaults)
	}
	for _, key := range [][2]string{{a, b}, {b, a}} {
		lf, ok := f.faults[key]
		if !ok {
			lf = &linkFaults{}
			f.faults[key] = lf
		}
		apply(lf)
		if *lf == (linkFaults{}) {
			delete(f.faults, key)
		}
	}
}

// Partition cuts the link between a and b: every dial attempt between the
// two (in either direction) is refused until Heal is called. Either
// endpoint may be the Wildcard. Established connections are not touched —
// use SetResetAfterBytes to kill those.
func (f *Fabric) Partition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitions == nil {
		f.partitions = make(map[[2]string]bool)
	}
	f.partitions[[2]string{a, b}] = true
	f.partitions[[2]string{b, a}] = true
}

// ResetLink hard-closes every established connection between a and b (in
// either direction): both ends of each connection observe a reset, as if
// the path's state was flushed by a failure. Either endpoint may be the
// Wildcard. New dials are unaffected — combine with Partition to model a
// full network split that also kills long-lived connections.
func (f *Fabric) ResetLink(a, b string) {
	match := func(x, y string) bool {
		return (a == Wildcard || a == x) && (b == Wildcard || b == y)
	}
	f.mu.Lock()
	live := f.conns[:0]
	for _, cp := range f.conns {
		if match(cp.from, cp.to) || match(cp.to, cp.from) {
			cp.a.reset()
			cp.b.reset()
			continue
		}
		if !cp.a.isBroken() && !cp.b.isBroken() {
			live = append(live, cp)
		}
	}
	f.conns = live
	f.mu.Unlock()
}

// Heal removes the partition between a and b.
func (f *Fabric) Heal(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitions, [2]string{a, b})
	delete(f.partitions, [2]string{b, a})
}

// HealAll removes every partition and every injected link fault.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitions = nil
	f.faults = nil
}

// checkDialFaults decides whether a dial from -> to is refused by an
// injected fault, and returns the connection-level faults to attach.
// Callers hold f.mu.
func (f *Fabric) checkDialFaults(from, to string) (lf linkFaults, err error) {
	lookup := func(m map[[2]string]*linkFaults, a, b string) *linkFaults {
		if v, ok := m[[2]string{a, b}]; ok {
			return v
		}
		return nil
	}
	if f.partitions != nil {
		for _, key := range [][2]string{{from, to}, {Wildcard, to}, {from, Wildcard}} {
			if f.partitions[key] {
				return lf, fmt.Errorf("memnet: connection refused: partition between %s and %s", from, to)
			}
		}
	}
	if f.faults != nil {
		var found *linkFaults
		for _, key := range [][2]string{{from, to}, {Wildcard, to}, {from, Wildcard}} {
			if v := lookup(f.faults, key[0], key[1]); v != nil {
				found = v
				break
			}
		}
		if found != nil {
			lf = *found
			if lf.dialFailRate > 0 && f.rand() < lf.dialFailRate {
				return lf, fmt.Errorf("memnet: connection refused: injected dial failure %s -> %s", from, to)
			}
		}
	}
	return lf, nil
}

// rand returns the next fault-schedule random number. Callers hold f.mu.
func (f *Fabric) rand() float64 {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(1))
	}
	return f.rng.Float64()
}

// applyConnFaults arms connection-level faults (reset budget, stall) on a
// freshly created pipe pair.
func applyConnFaults(a, b *Conn, lf linkFaults) {
	if lf.resetAfter > 0 {
		budget := new(int64)
		atomic.StoreInt64(budget, lf.resetAfter)
		a.resetBudget = budget
		b.resetBudget = budget
	}
	if lf.stall > 0 {
		a.stall = lf.stall
		b.stall = lf.stall
	}
}
