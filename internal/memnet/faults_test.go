package memnet

import (
	"net"
	"strings"
	"testing"
	"time"
)

// echoListener accepts connections and echoes everything it reads.
func echoListener(t *testing.T, f *Fabric, addr string) net.Listener {
	t.Helper()
	l, err := f.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l
}

func TestPartitionRefusesDialsUntilHealed(t *testing.T) {
	f := NewFabric()
	echoListener(t, f, "b:80")

	f.Partition("a:80", "b:80")
	if _, err := f.DialFrom("a:80", "b:80"); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("dial through partition: %v", err)
	}
	// The partition is directionless.
	echoListener(t, f, "a:80")
	if _, err := f.DialFrom("b:80", "a:80"); err == nil {
		t.Fatal("reverse direction not partitioned")
	}
	// Unrelated hosts are unaffected.
	if c, err := f.DialFrom("c:80", "b:80"); err != nil {
		t.Fatalf("unrelated dial refused: %v", err)
	} else {
		c.Close()
	}
	f.Heal("b:80", "a:80") // argument order must not matter
	c, err := f.DialFrom("a:80", "b:80")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c.Close()
}

func TestPartitionWildcardIsolatesHost(t *testing.T) {
	f := NewFabric()
	echoListener(t, f, "b:80")
	f.Partition(Wildcard, "b:80")
	if _, err := f.Dial("b:80"); err == nil {
		t.Fatal("wildcard partition did not block a plain client dial")
	}
	if _, err := f.DialFrom("a:80", "b:80"); err == nil {
		t.Fatal("wildcard partition did not block a named dial")
	}
	f.HealAll()
	if c, err := f.Dial("b:80"); err != nil {
		t.Fatalf("dial after HealAll: %v", err)
	} else {
		c.Close()
	}
}

func TestDialFailRate(t *testing.T) {
	f := NewFabric()
	echoListener(t, f, "b:80")
	f.SetSeed(7)

	// Rate 1: every dial fails.
	f.SetDialFailRate("a:80", "b:80", 1.0)
	for i := 0; i < 5; i++ {
		if _, err := f.DialFrom("a:80", "b:80"); err == nil {
			t.Fatal("dial succeeded at fail rate 1.0")
		}
	}
	// Rate 0 removes the fault.
	f.SetDialFailRate("a:80", "b:80", 0)
	if c, err := f.DialFrom("a:80", "b:80"); err != nil {
		t.Fatalf("dial at rate 0: %v", err)
	} else {
		c.Close()
	}
	// A partial rate fails some dials and passes others, deterministically
	// for a fixed seed.
	f.SetSeed(7)
	f.SetDialFailRate("a:80", "b:80", 0.5)
	fails := 0
	for i := 0; i < 100; i++ {
		if c, err := f.DialFrom("a:80", "b:80"); err != nil {
			fails++
		} else {
			c.Close()
		}
	}
	if fails == 0 || fails == 100 {
		t.Fatalf("fail rate 0.5 produced %d/100 failures", fails)
	}
	// Determinism: same seed, same schedule.
	f.SetSeed(7)
	fails2 := 0
	for i := 0; i < 100; i++ {
		if c, err := f.DialFrom("a:80", "b:80"); err != nil {
			fails2++
		} else {
			c.Close()
		}
	}
	if fails != fails2 {
		t.Fatalf("fault schedule not deterministic: %d vs %d", fails, fails2)
	}
}

func TestResetAfterBytesBreaksMidStream(t *testing.T) {
	f := NewFabric()
	echoListener(t, f, "b:80")
	f.SetResetAfterBytes("a:80", "b:80", 64)

	c, err := f.DialFrom("a:80", "b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Writing past the budget must eventually fail with a reset, and the
	// connection must be dead afterwards.
	payload := make([]byte, 32)
	var wErr error
	for i := 0; i < 10; i++ {
		if _, wErr = c.Write(payload); wErr != nil {
			break
		}
	}
	if wErr == nil {
		t.Fatal("connection survived writing past the reset budget")
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on a reset connection")
	}
	// New connections on the link get a fresh budget.
	c2, err := f.DialFrom("a:80", "b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write(payload); err != nil {
		t.Fatalf("fresh connection write: %v", err)
	}
}

func TestStallDelaysWrites(t *testing.T) {
	f := NewFabric()
	echoListener(t, f, "b:80")
	f.SetStall("a:80", "b:80", 30*time.Millisecond)
	c, err := f.DialFrom("a:80", "b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("stalled write returned in %v", elapsed)
	}
	// A stalled link plus a write deadline yields a timeout, which is how
	// callers with per-attempt deadlines experience packet loss.
	f.SetStall("a:80", "b:80", 200*time.Millisecond)
	c2, err := f.DialFrom("a:80", "b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetWriteDeadline(time.Now().Add(10 * time.Millisecond))
	if _, err := c2.Write([]byte("y")); err == nil {
		t.Fatal("stalled write beat its deadline")
	}
}
