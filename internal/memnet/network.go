package memnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Network abstracts how DCWS servers reach one another, so the same server
// code runs over real TCP (production), the in-memory fabric (tests,
// single-process clusters), or a latency-shaped fabric (geographically
// distributed scenarios).
type Network interface {
	// Listen starts accepting connections at addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr.
	Dial(addr string) (net.Conn, error)
}

// TCP is the Network backed by the operating system's TCP stack.
type TCP struct{}

// Listen implements Network.
func (TCP) Listen(a string) (net.Listener, error) { return net.Listen("tcp", a) }

// Dial implements Network.
func (TCP) Dial(a string) (net.Conn, error) {
	return net.DialTimeout("tcp", a, 10*time.Second)
}

// Fabric is an in-memory Network. Addresses are arbitrary strings
// ("east:80", "server3"); each Listen registers the address, each Dial
// creates a buffered pipe pair and hands one end to the listener.
//
// Beyond plain connectivity the fabric injects faults for resilience
// testing: per-link dial failure rates, mid-stream connection resets,
// write stalls, and named partitions (see faults.go). Fault schedules are
// driven by a deterministic seeded source so chaos tests reproduce.
type Fabric struct {
	mu         sync.Mutex
	listeners  map[string]*listener
	latency    map[[2]string]time.Duration
	defaultRT  time.Duration
	bufSize    int
	backlog    int
	faults     map[[2]string]*linkFaults
	partitions map[[2]string]bool
	rng        *rand.Rand
	// conns tracks established connection pairs per link so ResetLink can
	// hard-close them (a partition only refuses new dials). Dead pairs are
	// pruned lazily on the next dial or reset.
	conns []connPair
}

// connPair is one established connection's bookkeeping entry: the link it
// crossed and both endpoints.
type connPair struct {
	from, to string
	a, b     *Conn
}

// NewFabric returns an empty in-memory network. Connections have 64 KiB
// buffers and listeners a backlog of 128 pending connections by default.
func NewFabric() *Fabric {
	return &Fabric{
		listeners: make(map[string]*listener),
		latency:   make(map[[2]string]time.Duration),
		bufSize:   64 * 1024,
		backlog:   128,
	}
}

// SetLatency injects one-way latency on writes for connections between the
// two addresses (in either direction). Used by the geo-distributed examples.
func (f *Fabric) SetLatency(a, b string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency[[2]string{a, b}] = d
	f.latency[[2]string{b, a}] = d
}

// SetDefaultLatency injects latency on all connections that have no
// pair-specific setting.
func (f *Fabric) SetDefaultLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.defaultRT = d
}

// SetBacklog sets the pending-connection capacity for listeners created
// afterwards.
func (f *Fabric) SetBacklog(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > 0 {
		f.backlog = n
	}
}

// Listen implements Network.
func (f *Fabric) Listen(a string) (net.Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.listeners[a]; ok {
		return nil, fmt.Errorf("memnet: address %s already in use", a)
	}
	l := &listener{
		fabric:  f,
		addr:    addr(a),
		pending: make(chan net.Conn, f.backlog),
		done:    make(chan struct{}),
	}
	f.listeners[a] = l
	return l, nil
}

// Dial implements Network. Calls originate from a synthetic
// "client->addr" address; use DialFrom (or Named) to dial as a specific
// host so pair-specific latency and faults apply.
func (f *Fabric) Dial(a string) (net.Conn, error) {
	return f.DialFrom("client->"+a, a)
}

// DialFrom is like Dial but names the originating host, so pair-specific
// latency (e.g. "east" <-> "west") and injected link faults apply.
func (f *Fabric) DialFrom(from, to string) (net.Conn, error) {
	f.mu.Lock()
	l, ok := f.listeners[to]
	lat := f.defaultRT
	if d, found := f.latency[[2]string{from, to}]; found {
		lat = d
	}
	bufSize := f.bufSize
	lf, faultErr := f.checkDialFaults(from, to)
	f.mu.Unlock()
	if faultErr != nil {
		return nil, faultErr
	}
	if !ok {
		return nil, fmt.Errorf("memnet: connection refused: no listener at %s", to)
	}
	client, server := pipeWithAddrs(bufSize, addr(from), addr(to), lat)
	applyConnFaults(client, server, lf)
	f.mu.Lock()
	live := f.conns[:0]
	for _, cp := range f.conns {
		if !cp.a.isBroken() && !cp.b.isBroken() {
			live = append(live, cp)
		}
	}
	f.conns = append(live, connPair{from: from, to: to, a: client, b: server})
	f.mu.Unlock()
	select {
	case l.pending <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("memnet: connection refused: listener at %s closed", to)
	default:
		// Backlog full: the OS would drop the SYN; we refuse outright.
		client.Close()
		server.Close()
		return nil, fmt.Errorf("memnet: connection refused: backlog full at %s", to)
	}
}

type listener struct {
	fabric  *Fabric
	addr    addr
	pending chan net.Conn
	done    chan struct{}
	once    sync.Once
}

var _ net.Listener = (*listener)(nil)

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close implements net.Listener.
func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.fabric.mu.Lock()
		delete(l.fabric.listeners, l.addr.String())
		l.fabric.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return l.addr }

// NamedDialer adapts a Fabric into a Network whose Dial calls carry a fixed
// origin host name, activating pair-specific latency.
type NamedDialer struct {
	Fabric *Fabric
	From   string
}

// Named returns a view of the fabric that dials as the given host, so
// pair-specific latency (SetLatency) applies to its connections.
func (f *Fabric) Named(from string) NamedDialer {
	return NamedDialer{Fabric: f, From: from}
}

// Listen implements Network.
func (n NamedDialer) Listen(a string) (net.Listener, error) { return n.Fabric.Listen(a) }

// Dial implements Network.
func (n NamedDialer) Dial(a string) (net.Conn, error) { return n.Fabric.DialFrom(n.From, a) }
