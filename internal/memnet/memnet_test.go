package memnet

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	msg := []byte("GET / HTTP/1.0\r\n\r\n")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q, want %q", buf, msg)
	}
}

func TestPipeLargeTransferExceedsBuffer(t *testing.T) {
	a, b := Pipe(1024)
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte("x"), 100*1024)
	go func() {
		a.Write(payload)
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(payload) {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	a, b := Pipe(0)
	a.Write([]byte("tail"))
	a.Close()
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("Read = %q, %v; want tail, nil", buf[:n], err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("Read after drain = %v, want EOF", err)
	}
}

func TestWriteToClosedPeerFails(t *testing.T) {
	a, b := Pipe(0)
	b.Close()
	// b hard-closed its read side, so a's writes must eventually fail.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := a.Write([]byte("x")); err != nil {
			return
		}
	}
	t.Fatal("writes to a closed peer never failed")
}

func TestReadDeadline(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("Read error = %v, want timeout net.Error", err)
	}
}

func TestWriteDeadlineOnFullBuffer(t *testing.T) {
	a, b := Pipe(8)
	defer a.Close()
	defer b.Close()
	a.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	_, err := a.Write(bytes.Repeat([]byte("x"), 64)) // exceeds buffer, no reader
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("Write error = %v, want timeout net.Error", err)
	}
}

func TestDeadlineClearedAllowsRead(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("expired deadline should fail reads")
	}
	b.SetReadDeadline(time.Time{})
	go a.Write([]byte("k"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("read after clearing deadline: %v", err)
	}
}

func TestFabricListenDial(t *testing.T) {
	f := NewFabric()
	l, err := f.Listen("home:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan string, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- "accept: " + err.Error()
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		io.ReadFull(c, buf)
		c.Write([]byte("pong!"))
		done <- string(buf)
	}()
	c, err := f.Dial("home:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping!"))
	reply := make([]byte, 5)
	if _, err := io.ReadFull(c, reply); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if got := <-done; got != "ping!" {
		t.Fatalf("server saw %q", got)
	}
	if string(reply) != "pong!" {
		t.Fatalf("client saw %q", reply)
	}
}

func TestFabricDialUnknownRefused(t *testing.T) {
	f := NewFabric()
	if _, err := f.Dial("nowhere:80"); err == nil {
		t.Fatal("Dial to unregistered address should fail")
	}
}

func TestFabricDuplicateListen(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen("a")
	defer l.Close()
	if _, err := f.Listen("a"); err == nil {
		t.Fatal("duplicate Listen should fail")
	}
}

func TestFabricListenerCloseFreesAddress(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen("a")
	l.Close()
	if _, err := f.Listen("a"); err != nil {
		t.Fatalf("re-Listen after Close: %v", err)
	}
}

func TestFabricDialAfterCloseRefused(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen("a")
	l.Close()
	if _, err := f.Dial("a"); err == nil {
		t.Fatal("Dial after listener close should fail")
	}
}

func TestFabricBacklogFullRefusesConnection(t *testing.T) {
	f := NewFabric()
	f.SetBacklog(2)
	l, _ := f.Listen("busy")
	defer l.Close()
	// Fill the backlog without accepting.
	if _, err := f.Dial("busy"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Dial("busy"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Dial("busy"); err == nil {
		t.Fatal("third dial should be refused with backlog 2")
	}
	// Accept one, freeing a slot.
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Dial("busy"); err != nil {
		t.Fatalf("dial after accept should succeed: %v", err)
	}
}

func TestFabricConcurrentClients(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen("srv")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c) // echo
			}(c)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := f.Dial("srv")
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			msg := strings.Repeat("m", i+1)
			c.Write([]byte(msg))
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Errorf("read: %v", err)
			}
		}(i)
	}
	wg.Wait()
}

func TestFabricLatencyInjection(t *testing.T) {
	f := NewFabric()
	f.SetLatency("east", "west", 30*time.Millisecond)
	l, _ := f.Listen("west")
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		defer c.Close()
		buf := make([]byte, 1)
		io.ReadFull(c, buf)
		c.Write([]byte("y"))
	}()
	start := time.Now()
	c, err := f.DialFrom("east", "west")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("x"))
	buf := make([]byte, 1)
	io.ReadFull(c, buf)
	if rtt := time.Since(start); rtt < 30*time.Millisecond {
		t.Fatalf("round trip %v, want >= 30ms one-way latency applied", rtt)
	}
}

func TestFabricDefaultLatency(t *testing.T) {
	f := NewFabric()
	f.SetDefaultLatency(20 * time.Millisecond)
	l, _ := f.Listen("srv")
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		defer c.Close()
		io.Copy(c, c)
	}()
	c, err := f.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("x"))
	io.ReadFull(c, make([]byte, 1))
	if e := time.Since(start); e < 20*time.Millisecond {
		t.Fatalf("default latency not applied: %v", e)
	}
}

func TestAddrStrings(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen("host:99")
	defer l.Close()
	if l.Addr().String() != "host:99" || l.Addr().Network() != "mem" {
		t.Fatalf("listener addr = %v/%v", l.Addr().Network(), l.Addr())
	}
	c, _ := f.Dial("host:99")
	defer c.Close()
	if c.RemoteAddr().String() != "host:99" {
		t.Fatalf("remote addr = %v", c.RemoteAddr())
	}
}

func TestTCPNetwork(t *testing.T) {
	n := TCP{}
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP available: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("hi"))
		c.Close()
	}()
	c, err := n.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("got %q, %v", buf, err)
	}
}

// Property: bytes written on one end of a fabric connection arrive intact
// and in order on the other, across arbitrary chunkings that straddle the
// internal buffer.
func TestFabricDataIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, 1+rng.Intn(200*1024))
		rng.Read(payload)
		a, b := Pipe(4096) // small buffer forces many refills
		go func() {
			rest := payload
			for len(rest) > 0 {
				n := 1 + rng.Intn(len(rest))
				if _, err := a.Write(rest[:n]); err != nil {
					return
				}
				rest = rest[n:]
			}
			a.Close()
		}()
		got, err := io.ReadAll(b)
		b.Close()
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
