package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterAddAndValue(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 20000 {
		t.Fatalf("Value = %d, want 20000", got)
	}
}

func TestRatePerSecond(t *testing.T) {
	r := NewRate(10 * time.Second)
	base := time.Unix(1000, 0)
	// 100 events spread over the full 10s window -> 10 events/sec.
	for i := 0; i < 100; i++ {
		r.Observe(base.Add(time.Duration(i)*100*time.Millisecond), 1)
	}
	got := r.PerSecond(base.Add(10 * time.Second))
	if got < 9 || got > 11 {
		t.Fatalf("PerSecond = %v, want ~10", got)
	}
}

func TestRateEvictsOldEvents(t *testing.T) {
	r := NewRate(time.Second)
	base := time.Unix(0, 0)
	r.Observe(base, 100)
	if got := r.Total(base.Add(10 * time.Second)); got != 0 {
		t.Fatalf("events not evicted after window: Total = %v", got)
	}
}

func TestRateWeights(t *testing.T) {
	r := NewRate(time.Second)
	base := time.Unix(0, 0)
	r.Observe(base.Add(500*time.Millisecond), 2048)
	if got := r.Total(base.Add(900 * time.Millisecond)); got != 2048 {
		t.Fatalf("Total = %v, want 2048", got)
	}
}

func TestRateDefaultWindow(t *testing.T) {
	r := NewRate(0)
	if r.window != time.Minute {
		t.Fatalf("default window = %v, want 1m", r.window)
	}
}

func TestRateTotalNeverNegative(t *testing.T) {
	f := func(offsets []uint16) bool {
		r := NewRate(time.Second)
		base := time.Unix(0, 0)
		last := base
		for _, o := range offsets {
			at := base.Add(time.Duration(o) * time.Millisecond)
			if at.After(last) {
				last = at
			}
			r.Observe(at, 1)
		}
		return r.Total(last) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesRecordAndStats(t *testing.T) {
	s := NewSeries("cps")
	base := time.Unix(0, 0)
	for i, v := range []float64{1, 5, 3} {
		s.Record(base.Add(time.Duration(i)*time.Second), v)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Max() != 5 {
		t.Fatalf("Max = %v, want 5", s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", s.Mean())
	}
	if got := s.Samples(); len(got) != 3 || got[1].Value != 5 {
		t.Fatalf("Samples = %+v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Max() != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestSeriesSamplesIsCopy(t *testing.T) {
	s := NewSeries("x")
	s.Record(time.Unix(0, 0), 1)
	got := s.Samples()
	got[0].Value = 99
	if s.Samples()[0].Value != 1 {
		t.Fatal("Samples exposed internal storage")
	}
}

func TestServerStatsObserve(t *testing.T) {
	st := NewServerStats(10 * time.Second)
	base := time.Unix(0, 0)
	for i := 0; i < 50; i++ {
		st.ObserveRequest(base.Add(time.Duration(i)*100*time.Millisecond), 1000)
	}
	now := base.Add(5 * time.Second)
	if cps := st.CPS(now); cps < 4 || cps > 6 {
		t.Fatalf("CPS = %v, want ~5", cps)
	}
	if bps := st.BPS(now); bps < 4000 || bps > 6000 {
		t.Fatalf("BPS = %v, want ~5000", bps)
	}
	if st.Connections.Value() != 50 {
		t.Fatalf("Connections = %d", st.Connections.Value())
	}
	if st.Bytes.Value() != 50000 {
		t.Fatalf("Bytes = %d", st.Bytes.Value())
	}
}

func TestServerStatsLoadMetricSelection(t *testing.T) {
	st := NewServerStats(time.Second)
	now := time.Unix(0, 0)
	st.ObserveRequest(now, 5000)
	at := now.Add(500 * time.Millisecond)
	cps := st.LoadMetric(at, false)
	bps := st.LoadMetric(at, true)
	if bps <= cps {
		t.Fatalf("BPS metric (%v) should exceed CPS metric (%v) for a 5KB doc", bps, cps)
	}
}

func TestServerStatsString(t *testing.T) {
	st := NewServerStats(time.Second)
	st.Dropped.Inc()
	if s := st.String(); !strings.Contains(s, "dropped=1") {
		t.Fatalf("String() = %q", s)
	}
}
