package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 22*time.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(5 * time.Second)
	p50 := h.Quantile(0.5)
	// Bucketed estimate: within a factor of two of the true value.
	if p50 < 10*time.Millisecond || p50 > 20*time.Millisecond {
		t.Fatalf("p50 = %v, want within [10ms, 20ms]", p50)
	}
	p100 := h.Quantile(1.0)
	if p100 != 5*time.Second {
		t.Fatalf("p100 = %v, want max", p100)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation mishandled: %s", h.String())
	}
}

func TestHistogramQuantileMonotonicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		last := time.Duration(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return h.Quantile(1.0) <= h.Max() || h.Max() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramBucketEdges: observations that land exactly on power-of-two
// bucket boundaries must keep quantiles inside [value/2, 2*value] and never
// above the observed max — the float-log bucketing this replaced could
// misplace boundary values.
func TestHistogramBucketEdges(t *testing.T) {
	// exp starts at 1: bucket 0 spans [0, 2µs) so its lower bound is 0,
	// not the power-of-two floor.
	for exp := 1; exp < 30; exp += 3 {
		var h Histogram
		d := time.Duration(1) << uint(exp) * time.Microsecond
		for i := 0; i < 50; i++ {
			h.Observe(d)
		}
		for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
			v := h.Quantile(q)
			if v > h.Max() {
				t.Fatalf("2^%dµs: Quantile(%v) = %v > Max %v", exp, q, v, h.Max())
			}
			if v < d/2 {
				t.Fatalf("2^%dµs: Quantile(%v) = %v < half the only value %v", exp, q, v, d)
			}
		}
		if h.Quantile(1.0) != d {
			t.Fatalf("2^%dµs: Quantile(1.0) = %v, want exact max %v", exp, h.Quantile(1.0), d)
		}
	}
}

// TestHistogramQuantileOrderProperty is the issue's named invariant: for
// arbitrary observation sets, p50 <= p90 <= p99 <= Max.
func TestHistogramQuantileOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			// Mix uniform draws with exact bucket-boundary values.
			if rng.Intn(4) == 0 {
				h.Observe(time.Duration(1) << uint(rng.Intn(32)) * time.Microsecond)
			} else {
				h.Observe(time.Duration(rng.Int63n(int64(30 * time.Second))))
			}
		}
		p50, p90, p99 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
		return p50 <= p90 && p90 <= p99 && p99 <= h.Max() && h.Quantile(1.0) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond) // bucket 1
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond) // bucket 6
	snap := h.Snapshot()
	if snap.Count != 3 || snap.Buckets[1] != 2 || snap.Buckets[6] != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Sum != 106*time.Microsecond || snap.Max != 100*time.Microsecond {
		t.Fatalf("snapshot aggregates = %+v", snap)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	s := h.String()
	if s == "" || h.Count() != 1 {
		t.Fatalf("String = %q", s)
	}
}
