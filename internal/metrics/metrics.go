// Package metrics provides the performance counters used throughout DCWS:
// monotone counters, sliding-window rate estimators for the paper's two
// headline measures (connections per second and bytes per second), and time
// series samplers for the warm-up experiment (Figure 8).
package metrics

import (
	"fmt"
	"sync"
	"time"
)

// Counter is a concurrency-safe monotone counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Rate estimates events per second over a sliding window. The paper's load
// metric ("total number of requests per minute could be used as a
// satisfactory load metric", §3.3) is a Rate with a one-minute window.
//
// Events are bucketed by time so memory stays bounded regardless of event
// volume.
type Rate struct {
	mu      sync.Mutex
	window  time.Duration
	bucket  time.Duration
	buckets []rateBucket
}

type rateBucket struct {
	start time.Time
	sum   float64
}

// NewRate returns a rate estimator over the given window. The window is
// divided into 60 buckets (minimum bucket 1ms).
func NewRate(window time.Duration) *Rate {
	if window <= 0 {
		window = time.Minute
	}
	bucket := window / 60
	if bucket < time.Millisecond {
		bucket = time.Millisecond
	}
	return &Rate{window: window, bucket: bucket}
}

// Observe records weight events at time now.
func (r *Rate) Observe(now time.Time, weight float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := now.Truncate(r.bucket)
	n := len(r.buckets)
	if n > 0 && r.buckets[n-1].start.Equal(start) {
		r.buckets[n-1].sum += weight
	} else {
		r.buckets = append(r.buckets, rateBucket{start: start, sum: weight})
	}
	r.evict(now)
}

// PerSecond reports the estimated events per second as of now.
func (r *Rate) PerSecond(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evict(now)
	var sum float64
	for _, b := range r.buckets {
		sum += b.sum
	}
	return sum / r.window.Seconds()
}

// Total reports the sum of weights currently inside the window.
func (r *Rate) Total(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evict(now)
	var sum float64
	for _, b := range r.buckets {
		sum += b.sum
	}
	return sum
}

func (r *Rate) evict(now time.Time) {
	cutoff := now.Add(-r.window)
	i := 0
	for i < len(r.buckets) && !r.buckets[i].start.After(cutoff) {
		i++
	}
	if i > 0 {
		r.buckets = append(r.buckets[:0], r.buckets[i:]...)
	}
}

// Sample is one point in a time series.
type Sample struct {
	At    time.Time
	Value float64
}

// Series collects timestamped samples, e.g. CPS sampled every ten seconds
// for the Figure 8 warm-up curve.
type Series struct {
	mu      sync.Mutex
	Name    string
	samples []Sample
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends a sample.
func (s *Series) Record(at time.Time, v float64) {
	s.mu.Lock()
	s.samples = append(s.samples, Sample{At: at, Value: v})
	s.mu.Unlock()
}

// Samples returns a copy of the collected samples in record order.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Len reports the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Max reports the largest sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max float64
	for _, p := range s.samples {
		if p.Value > max {
			max = p.Value
		}
	}
	return max
}

// Mean reports the arithmetic mean of sample values, or 0 for an empty
// series.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.samples {
		sum += p.Value
	}
	return sum / float64(len(s.samples))
}

// ServerStats aggregates a DCWS server's traffic counters. It is the source
// of the LoadMetric published in the global load table.
type ServerStats struct {
	Connections Counter // completed request/response exchanges
	Bytes       Counter // response body bytes sent
	Dropped     Counter // connections answered 503 due to a full queue
	Redirects   Counter // 301 responses for migrated documents
	Fetches     Counter // internal home-to-coop document fetches
	Rebuilds    Counter // documents reparsed and reconstructed (dirty bit)

	cps *Rate
	bps *Rate
}

// NewServerStats returns stats with rate windows of the given width.
func NewServerStats(window time.Duration) *ServerStats {
	return &ServerStats{cps: NewRate(window), bps: NewRate(window)}
}

// ObserveRequest records one served request of size bytes at time now.
func (s *ServerStats) ObserveRequest(now time.Time, bytes int64) {
	s.Connections.Inc()
	s.Bytes.Add(bytes)
	s.cps.Observe(now, 1)
	s.bps.Observe(now, float64(bytes))
}

// CPS reports connections per second over the sliding window.
func (s *ServerStats) CPS(now time.Time) float64 { return s.cps.PerSecond(now) }

// BPS reports bytes per second over the sliding window.
func (s *ServerStats) BPS(now time.Time) float64 { return s.bps.PerSecond(now) }

// LoadMetric reports the server's current load for the global load table.
// Per the paper's discussion (§5.3) the default metric is CPS; BPS can be
// selected for large-file workloads such as Sequoia.
func (s *ServerStats) LoadMetric(now time.Time, useBPS bool) float64 {
	if useBPS {
		return s.BPS(now)
	}
	return s.CPS(now)
}

// String summarizes the counters for logs and the dcwsctl-style dumps.
func (s *ServerStats) String() string {
	return fmt.Sprintf("conns=%d bytes=%d dropped=%d redirects=%d fetches=%d rebuilds=%d",
		s.Connections.Value(), s.Bytes.Value(), s.Dropped.Value(),
		s.Redirects.Value(), s.Fetches.Value(), s.Rebuilds.Value())
}

// ResilienceStats aggregates the retry and circuit-breaker counters of the
// inter-server RPC layer (internal/resilience).
type ResilienceStats struct {
	Retries    Counter // attempts re-issued after a transient failure
	Trips      Counter // breaker transitions into the open state
	Rejections Counter // calls refused while a breaker was open
	Probes     Counter // half-open trial calls admitted
	Recoveries Counter // breakers that closed again after tripping
}

// String summarizes the counters for logs.
func (s *ResilienceStats) String() string {
	return fmt.Sprintf("retries=%d trips=%d rejections=%d probes=%d recoveries=%d",
		s.Retries.Value(), s.Trips.Value(), s.Rejections.Value(),
		s.Probes.Value(), s.Recoveries.Value())
}
