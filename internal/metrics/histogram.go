package metrics

import (
	"fmt"
	"math/bits"
	"sync"
	"time"
)

// Histogram records durations in exponentially sized buckets (powers of
// two, microsecond base), bounded memory regardless of volume. The paper
// names round-trip time the third canonical web-server metric (§5.3) but
// declines to measure it on the grounds that it is hard to isolate
// operationally; the simulator has no such difficulty, so client-observed
// request latency is recorded with this type.
type Histogram struct {
	mu        sync.Mutex
	buckets   [40]int64 // bucket i counts d with 2^i <= d/µs < 2^(i+1)
	exemplars [40]Exemplar
	count     int64
	sum       time.Duration
	max       time.Duration
}

// Exemplar links a bucket to one concrete trace that landed in it: the
// most recent traced observation. A scraped p99 bucket then points
// straight at a stitched trace instead of an anonymous count.
type Exemplar struct {
	TraceID string
	Value   time.Duration
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	// bits.Len64 gives exact integer log2 — float math put boundary
	// values (exact powers of two) in the wrong bucket on some inputs.
	b := bits.Len64(uint64(us)) - 1
	if b >= 40 {
		b = 39
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// ObserveTrace records one duration and stamps the bucket's exemplar with
// the observation's trace ID. An empty trace ID degrades to Observe.
func (h *Histogram) ObserveTrace(d time.Duration, traceID string) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	b := bucketOf(d)
	h.buckets[b]++
	if traceID != "" {
		h.exemplars[b] = Exemplar{TraceID: traceID, Value: d}
	}
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// CountSum reports the observation count and the total observed time in
// one lock acquisition, so interval deltas computed from two calls are
// consistent with each other (capacity calibration divides one by the
// other).
func (h *Histogram) CountSum() (int64, time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum
}

// Mean reports the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max reports the largest observed duration.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the q-quantile (0 < q <= 1) by locating the bucket
// containing the target rank and interpolating linearly within it, so the
// estimate moves smoothly instead of jumping to the bucket's upper bound
// at every boundary. Estimates are clamped to the observed maximum, and
// Quantile is monotone in q: p50 <= p90 <= p99 <= Max always holds.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= target {
			// Bucket i spans [2^i, 2^(i+1)) µs, except bucket 0 which
			// also holds sub-microsecond observations: lower bound 0.
			var lower time.Duration
			if i > 0 {
				lower = time.Duration(1) << uint(i) * time.Microsecond
			}
			upper := time.Duration(1) << uint(i+1) * time.Microsecond
			frac := (target - float64(cum)) / float64(n)
			est := lower + time.Duration(frac*float64(upper-lower))
			if est > h.max {
				est = h.max
			}
			return est
		}
		cum += n
	}
	return h.max
}

// HistogramSnapshot is a consistent copy of a histogram's state, used by
// the telemetry exposition writer. Bucket i counts observations d with
// 2^i <= d/µs < 2^(i+1) (bucket 0 also holds sub-microsecond values).
type HistogramSnapshot struct {
	Buckets   [40]int64
	Exemplars [40]Exemplar
	Count     int64
	Sum       time.Duration
	Max       time.Duration
}

// Snapshot returns a consistent copy of the histogram's buckets and
// aggregates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{Buckets: h.buckets, Exemplars: h.exemplars, Count: h.count, Sum: h.sum, Max: h.max}
}

// Sub returns the window delta s minus prev: the observations recorded
// between two snapshots of the same histogram. Exemplars and Max carry the
// later snapshot's values (they are not differentiable).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := s
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	return out
}

// Quantile estimates the q-quantile of the snapshot with the same
// bucket-interpolation scheme as Histogram.Quantile, except the estimate
// is bounded by the bucket's upper edge rather than an observed max (a
// window delta has no max of its own).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		if n <= 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= target {
			var lower time.Duration
			if i > 0 {
				lower = time.Duration(1) << uint(i) * time.Microsecond
			}
			upper := time.Duration(1) << uint(i+1) * time.Microsecond
			frac := (target - float64(cum)) / float64(n)
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += n
	}
	return time.Duration(1) << 40 * time.Microsecond
}

// CountAbove reports how many observations in the snapshot exceeded the
// threshold, counting a bucket as violating when its lower edge is at or
// past the threshold — the conservative reading of bucketed data, used by
// the SLO burn-rate math.
func (s HistogramSnapshot) CountAbove(threshold time.Duration) int64 {
	var above int64
	for i, n := range s.Buckets {
		if n <= 0 {
			continue
		}
		var lower time.Duration
		if i > 0 {
			lower = time.Duration(1) << uint(i) * time.Microsecond
		}
		if lower >= threshold {
			above += n
		}
	}
	return above
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}
