package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Histogram records durations in exponentially sized buckets (powers of
// two, microsecond base), bounded memory regardless of volume. The paper
// names round-trip time the third canonical web-server metric (§5.3) but
// declines to measure it on the grounds that it is hard to isolate
// operationally; the simulator has no such difficulty, so client-observed
// request latency is recorded with this type.
type Histogram struct {
	mu      sync.Mutex
	buckets [40]int64 // bucket i counts d with 2^i <= d/µs < 2^(i+1)
	count   int64
	sum     time.Duration
	max     time.Duration
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := int(math.Log2(float64(us)))
	if b >= 40 {
		b = 39
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max reports the largest observed duration.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing it; resolution is a factor of two.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			upper := time.Duration(1) << uint(i+1) * time.Microsecond
			if upper > h.max && h.max > 0 {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}
