package naming

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodePaperExample(t *testing.T) {
	// The paper's §3.4 example: foo.html under nested directories.
	home := Origin{Host: "h_name", Port: 8080}
	got, err := Encode(home, "/dir1/dir2/dir3/foo.html")
	if err != nil {
		t.Fatal(err)
	}
	want := "/~migrate/h_name/8080/dir1/dir2/dir3/foo.html"
	if got != want {
		t.Fatalf("Encode = %q, want %q", got, want)
	}
}

func TestDecodeRecoversOriginal(t *testing.T) {
	home, doc, err := Decode("/~migrate/www.cs.arizona.edu/80/dcws/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if home.Host != "www.cs.arizona.edu" || home.Port != 80 {
		t.Fatalf("home = %+v", home)
	}
	if doc != "/dcws/index.html" {
		t.Fatalf("doc = %q", doc)
	}
}

func TestDecodeNonMigrated(t *testing.T) {
	if _, _, err := Decode("/ordinary/page.html"); err != ErrNotMigrated {
		t.Fatalf("err = %v, want ErrNotMigrated", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	bad := []string{
		"/~migrate/",
		"/~migrate/hostonly",
		"/~migrate/host/notaport/doc.html",
		"/~migrate/host/0/doc.html",
		"/~migrate/host/99999/doc.html",
		"/~migrate/host/80",
	}
	for _, p := range bad {
		if _, _, err := Decode(p); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", p)
		}
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := Encode(Origin{Host: "h", Port: 80}, "relative.html"); err == nil {
		t.Error("unrooted path accepted")
	}
	if _, err := Encode(Origin{Host: "h/x", Port: 80}, "/d.html"); err == nil {
		t.Error("host with slash accepted")
	}
	if _, err := Encode(Origin{Host: "h", Port: 0}, "/d.html"); err == nil {
		t.Error("port 0 accepted")
	}
	if _, err := Encode(Origin{Host: "h", Port: 70000}, "/d.html"); err == nil {
		t.Error("port 70000 accepted")
	}
}

func TestIsMigrated(t *testing.T) {
	if !IsMigrated("/~migrate/h/80/x.html") {
		t.Error("migrated path not recognized")
	}
	for _, p := range []string{"/x.html", "/~migratex/h/80/x", "/migrate/h/80/x", "~migrate/h/80/x"} {
		if IsMigrated(p) {
			t.Errorf("IsMigrated(%q) = true", p)
		}
	}
}

func TestMigratedURL(t *testing.T) {
	coop := Origin{Host: "coop", Port: 8081}
	home := Origin{Host: "home", Port: 8080}
	got, err := MigratedURL(coop, home, "/a/b.html")
	if err != nil {
		t.Fatal(err)
	}
	if got != "http://coop:8081/~migrate/home/8080/a/b.html" {
		t.Fatalf("MigratedURL = %q", got)
	}
}

func TestHomeURL(t *testing.T) {
	if got := HomeURL(Origin{Host: "h", Port: 80}, "/x.html"); got != "http://h:80/x.html" {
		t.Fatalf("HomeURL = %q", got)
	}
}

func TestParseOrigin(t *testing.T) {
	o, err := ParseOrigin("server3:8080")
	if err != nil || o.Host != "server3" || o.Port != 8080 {
		t.Fatalf("ParseOrigin = %+v, %v", o, err)
	}
	for _, bad := range []string{"noport", ":80", "h:", "h:abc", "h:0", "h:99999", "a b:80"} {
		if _, err := ParseOrigin(bad); err == nil {
			t.Errorf("ParseOrigin(%q) succeeded", bad)
		}
	}
}

func TestOriginAddr(t *testing.T) {
	if got := (Origin{Host: "h", Port: 81}).Addr(); got != "h:81" {
		t.Fatalf("Addr = %q", got)
	}
}

func TestSplitURL(t *testing.T) {
	cases := []struct {
		in, addr, path string
		wantErr        bool
	}{
		{"http://h:80/a/b.html", "h:80", "/a/b.html", false},
		{"http://h:80", "h:80", "/", false},
		{"/relative/path.html", "", "/relative/path.html", false},
		{"ftp://h/x", "", "", true},
		{"http:///nohost", "", "", true},
	}
	for _, c := range cases {
		addr, path, err := SplitURL(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("SplitURL(%q) err = %v", c.in, err)
			continue
		}
		if err == nil && (addr != c.addr || path != c.path) {
			t.Errorf("SplitURL(%q) = %q, %q", c.in, addr, path)
		}
	}
}

// Property: Decode(Encode(home, path)) recovers home and path exactly for
// any well-formed inputs.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		home := Origin{
			Host: randomHost(rng),
			Port: 1 + rng.Intn(65535),
		}
		path := randomDocPath(rng)
		enc, err := Encode(home, path)
		if err != nil {
			return false
		}
		if !strings.HasPrefix(enc, "/"+Prefix+"/") {
			return false
		}
		gotHome, gotPath, err := Decode(enc)
		return err == nil && gotHome == home && gotPath == path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: double encoding stays decodable to the single-encoded form
// (a coop-of-a-coop URL still strips one layer at a time).
func TestDoubleEncodeDecodesOneLayer(t *testing.T) {
	home := Origin{Host: "h1", Port: 80}
	mid := Origin{Host: "h2", Port: 81}
	once, _ := Encode(home, "/doc.html")
	twice, _ := Encode(mid, once)
	gotMid, gotOnce, err := Decode(twice)
	if err != nil || gotMid != mid || gotOnce != once {
		t.Fatalf("Decode(twice) = %+v, %q, %v", gotMid, gotOnce, err)
	}
}

func randomHost(rng *rand.Rand) string {
	labels := 1 + rng.Intn(3)
	parts := make([]string, labels)
	for i := range parts {
		parts[i] = fmt.Sprintf("host%d", rng.Intn(100))
	}
	return strings.Join(parts, ".")
}

func randomDocPath(rng *rand.Rand) string {
	depth := 1 + rng.Intn(5)
	var b strings.Builder
	for i := 0; i < depth-1; i++ {
		fmt.Fprintf(&b, "/dir%d", rng.Intn(10))
	}
	fmt.Fprintf(&b, "/doc%d.html", rng.Intn(1000))
	return b.String()
}
