// Package naming implements the paper's migrated-document naming
// convention (§3.4). A document
//
//	http://h_name:h_port/dir1/dir2/.../dirn/foo.html
//
// migrated to a co-op server is addressed there as
//
//	http://c_name:c_port/~migrate/h_name/h_port/dir1/dir2/.../dirn/foo.html
//
// The co-op server recognizes "~migrate" as the first path component and
// recovers the home server address and original document name from the
// path itself, so no out-of-band mapping is required to route a migrated
// request back to its origin.
package naming

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Prefix is the leading path component identifying a migrated-document URL.
const Prefix = "~migrate"

// ErrNotMigrated is returned by Decode for paths that do not use the
// migration naming convention.
var ErrNotMigrated = errors.New("naming: not a ~migrate path")

// Origin identifies a home server.
type Origin struct {
	Host string
	Port int
}

// Addr returns the dialable "host:port" form.
func (o Origin) Addr() string { return o.Host + ":" + strconv.Itoa(o.Port) }

// ParseOrigin parses "host:port" into an Origin.
func ParseOrigin(addr string) (Origin, error) {
	idx := strings.LastIndexByte(addr, ':')
	if idx <= 0 || idx == len(addr)-1 {
		return Origin{}, fmt.Errorf("naming: address %q is not host:port", addr)
	}
	port, err := strconv.Atoi(addr[idx+1:])
	if err != nil || port <= 0 || port > 65535 {
		return Origin{}, fmt.Errorf("naming: bad port in %q", addr)
	}
	host := addr[:idx]
	if strings.ContainsAny(host, "/ ") {
		return Origin{}, fmt.Errorf("naming: bad host in %q", addr)
	}
	return Origin{Host: host, Port: port}, nil
}

// Encode maps a document path on the given home server to its migrated
// path on a co-op server. docPath must be rooted ("/dir/foo.html").
func Encode(home Origin, docPath string) (string, error) {
	if !strings.HasPrefix(docPath, "/") {
		return "", fmt.Errorf("naming: document path %q is not rooted", docPath)
	}
	if strings.Contains(home.Host, "/") {
		return "", fmt.Errorf("naming: host %q contains a slash", home.Host)
	}
	if home.Port <= 0 || home.Port > 65535 {
		return "", fmt.Errorf("naming: bad port %d", home.Port)
	}
	return "/" + Prefix + "/" + home.Host + "/" + strconv.Itoa(home.Port) + docPath, nil
}

// Decode recovers the home server and original document path from a
// migrated path. It returns ErrNotMigrated when the path does not start
// with the ~migrate component.
func Decode(path string) (Origin, string, error) {
	if !IsMigrated(path) {
		return Origin{}, "", ErrNotMigrated
	}
	rest := path[len(Prefix)+1:] // strip "/~migrate"
	rest = strings.TrimPrefix(rest, "/")
	// rest = h_name/h_port/dir.../foo.html
	slash1 := strings.IndexByte(rest, '/')
	if slash1 <= 0 {
		return Origin{}, "", fmt.Errorf("naming: missing home host in %q", path)
	}
	host := rest[:slash1]
	rest = rest[slash1+1:]
	slash2 := strings.IndexByte(rest, '/')
	if slash2 <= 0 {
		return Origin{}, "", fmt.Errorf("naming: missing home port in %q", path)
	}
	port, err := strconv.Atoi(rest[:slash2])
	if err != nil || port <= 0 || port > 65535 {
		return Origin{}, "", fmt.Errorf("naming: bad home port in %q", path)
	}
	doc := rest[slash2:]
	return Origin{Host: host, Port: port}, doc, nil
}

// IsMigrated reports whether path uses the migrated naming convention.
func IsMigrated(path string) bool {
	return strings.HasPrefix(path, "/"+Prefix+"/")
}

// MigratedURL builds the full URL of a migrated document as served by the
// co-op server.
func MigratedURL(coop Origin, home Origin, docPath string) (string, error) {
	p, err := Encode(home, docPath)
	if err != nil {
		return "", err
	}
	return "http://" + coop.Addr() + p, nil
}

// HomeURL builds the full pre-migration URL of a document.
func HomeURL(home Origin, docPath string) string {
	return "http://" + home.Addr() + docPath
}

// SplitURL splits an absolute http URL into its server address and path.
// Relative paths are returned with an empty address.
func SplitURL(raw string) (addr, path string, err error) {
	if strings.HasPrefix(raw, "/") {
		return "", raw, nil
	}
	const scheme = "http://"
	if !strings.HasPrefix(raw, scheme) {
		return "", "", fmt.Errorf("naming: unsupported URL %q", raw)
	}
	rest := raw[len(scheme):]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return rest, "/", nil
	}
	if slash == 0 {
		return "", "", fmt.Errorf("naming: missing host in URL %q", raw)
	}
	return rest[:slash], rest[slash:], nil
}
