// Package cluster boots a complete DCWS server group — home servers with
// materialized data sets plus empty co-op servers — inside one process over
// an in-memory network (or real TCP), and drives Algorithm 2 benchmark
// clients against it. It is the live counterpart of the discrete-event
// simulator: every byte crosses the real HTTP stack.
package cluster

import (
	"fmt"
	"log"
	"sync"
	"time"

	"dcws/internal/clock"
	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
	"dcws/internal/webclient"
)

// ServerSpec describes one server to boot.
type ServerSpec struct {
	// Host and Port form the server's address on the fabric.
	Host string
	Port int
	// Site, when non-nil, is materialized into the server's store, making
	// it a home server; nil boots an empty co-op server.
	Site *dataset.Site
	// Scale multiplies document sizes at materialization (use < 1 for the
	// 247 MB Sequoia set).
	Scale float64
	// Params tunes the server; zero fields take Table 1 defaults.
	Params dcws.Params
	// WALDir, when non-empty, enables the server's durable tier (WAL +
	// snapshots in that directory), letting harnesses crash and restart
	// the node with its migration state intact.
	WALDir string
}

// Config describes a cluster.
type Config struct {
	// Servers lists every node. At least one must carry a Site.
	Servers []ServerSpec
	// Clock drives all timers (default: real time).
	Clock clock.Clock
	// Network carries all traffic (default: a fresh in-memory fabric).
	Network memnet.Network
	// Logger receives server logs; nil discards them.
	Logger *log.Logger
}

// Cluster is a running server group.
type Cluster struct {
	Servers []*dcws.Server
	network memnet.Network
	clock   clock.Clock
	entry   []string
	logger  *log.Logger

	// Per-node boot state retained so Crash/Restart can rebuild a server
	// on its surviving store and WAL.
	specs  []ServerSpec
	stores []store.Store
	peers  [][]string
	eps    [][]string
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("cluster: no servers specified")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Network == nil {
		cfg.Network = memnet.NewFabric()
	}
	addrs := make([]string, len(cfg.Servers))
	for i, spec := range cfg.Servers {
		addrs[i] = fmt.Sprintf("%s:%d", spec.Host, spec.Port)
	}
	c := &Cluster{network: cfg.Network, clock: cfg.Clock, logger: cfg.Logger}
	for i, spec := range cfg.Servers {
		st := store.NewMem()
		var entryPoints []string
		if spec.Site != nil {
			scale := spec.Scale
			if scale <= 0 {
				scale = 1
			}
			if err := spec.Site.Materialize(st, scale); err != nil {
				c.Close()
				return nil, err
			}
			entryPoints = spec.Site.EntryPoints
		}
		peers := make([]string, 0, len(addrs)-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		c.specs = append(c.specs, spec)
		c.stores = append(c.stores, st)
		c.peers = append(c.peers, peers)
		c.eps = append(c.eps, entryPoints)
		srv, err := c.boot(i)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Servers = append(c.Servers, srv)
		for _, ep := range entryPoints {
			c.entry = append(c.entry, "http://"+addrs[i]+ep)
		}
	}
	return c, nil
}

// boot constructs and starts node i on its retained store, peer list, and
// WAL directory.
func (c *Cluster) boot(i int) (*dcws.Server, error) {
	spec := c.specs[i]
	addr := fmt.Sprintf("%s:%d", spec.Host, spec.Port)
	// Over an in-memory fabric, each server dials as itself so that
	// per-link latency and injected faults apply to its traffic.
	srvNet := c.network
	if fab, ok := c.network.(*memnet.Fabric); ok {
		srvNet = fab.Named(addr)
	}
	srv, err := dcws.New(dcws.Config{
		Origin:      naming.Origin{Host: spec.Host, Port: spec.Port},
		Store:       c.stores[i],
		Network:     srvNet,
		Clock:       c.clock,
		EntryPoints: c.eps[i],
		Peers:       c.peers[i],
		Params:      spec.Params,
		Logger:      c.logger,
		WALDir:      spec.WALDir,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: server %s: %w", addr, err)
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return srv, nil
}

// Crash kills node i the hard way — no final snapshot, no final WAL sync —
// leaving its store and WAL directory exactly as a kill -9 would.
func (c *Cluster) Crash(i int) error {
	return c.Servers[i].Abort()
}

// Restart boots node i again on the store and WAL its crash left behind
// and swaps the new instance into Servers[i].
func (c *Cluster) Restart(i int) (*dcws.Server, error) {
	srv, err := c.boot(i)
	if err != nil {
		return nil, err
	}
	c.Servers[i] = srv
	return srv, nil
}

// Close stops every server.
func (c *Cluster) Close() {
	for _, s := range c.Servers {
		s.Close()
	}
}

// EntryURLs returns the absolute URLs of every home server's entry points.
func (c *Cluster) EntryURLs() []string {
	out := make([]string, len(c.entry))
	copy(out, c.entry)
	return out
}

// Dialer returns a dialer for benchmark clients.
func (c *Cluster) Dialer() httpx.Dialer {
	return httpx.DialerFunc(c.network.Dial)
}

// Fabric returns the underlying in-memory fabric when the cluster runs on
// one, or nil over real TCP. Chaos experiments use it to inject link
// faults and partitions while a benchmark is running.
func (c *Cluster) Fabric() *memnet.Fabric {
	f, _ := c.network.(*memnet.Fabric)
	return f
}

// TickStats runs one statistics interval on every server (deterministic
// alternative to waiting for T_st).
func (c *Cluster) TickStats() {
	for _, s := range c.Servers {
		s.TickStats()
	}
}

// TickValidators runs one validation pass on every server.
func (c *Cluster) TickValidators() {
	for _, s := range c.Servers {
		s.TickValidator()
	}
}

// TickPingers runs one pinger activation on every server.
func (c *Cluster) TickPingers() {
	for _, s := range c.Servers {
		s.TickPinger()
	}
}

// TickAntiEntropy runs one full-table gossip exchange on every server.
func (c *Cluster) TickAntiEntropy() {
	for _, s := range c.Servers {
		s.TickAntiEntropy()
	}
}

// TotalMigrated reports how many documents are currently hosted away from
// their home servers, summed over the cluster.
func (c *Cluster) TotalMigrated() int {
	n := 0
	for _, s := range c.Servers {
		n += len(s.Graph().Migrated())
	}
	return n
}

// BenchResult summarizes a benchmark run.
type BenchResult struct {
	// Elapsed is the wall-clock duration of the measurement.
	Elapsed time.Duration
	// Stats are the client-side counters.
	Stats *webclient.Stats
	// CPS and BPS are client-observed connections and bytes per second.
	CPS float64
	BPS float64
}

// RunBenchmark launches the given number of Algorithm 2 clients against the
// cluster for the duration, with an optional per-tick callback driving
// server maintenance (called every tick interval; pass 0 to disable).
func (c *Cluster) RunBenchmark(clients int, duration, tick time.Duration, onTick func()) (*BenchResult, error) {
	stats := &webclient.Stats{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cl, err := webclient.New(webclient.Config{
			Dialer:    c.Dialer(),
			Clock:     c.clock,
			EntryURLs: c.EntryURLs(),
			Seed:      int64(i + 1),
			Stats:     stats,
		})
		if err != nil {
			close(stop)
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			cl.Run(stop)
		}()
	}
	start := time.Now()
	deadline := time.After(duration)
	if tick > 0 && onTick != nil {
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
	loop:
		for {
			select {
			case <-deadline:
				break loop
			case <-ticker.C:
				onTick()
			}
		}
	} else {
		<-deadline
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	return &BenchResult{
		Elapsed: elapsed,
		Stats:   stats,
		CPS:     float64(stats.Connections.Value()) / elapsed.Seconds(),
		BPS:     float64(stats.Bytes.Value()) / elapsed.Seconds(),
	}, nil
}
