package cluster

import (
	"fmt"
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/glt"
	"dcws/internal/memnet"
)

// TestClusterGossipConverges64UnderDrops is the live acceptance sweep: a
// 64-node cluster whose links to every fourth server drop 30% of dials
// must still converge every load table to every peer's freshest entry
// within a bounded number of anti-entropy rounds, while delta piggyback
// headers stay within the entry cap and under the 16-server full-table
// size.
func TestClusterGossipConverges64UnderDrops(t *testing.T) {
	const n = 64
	clk := clock.NewManual(time.Unix(2_000_000, 0))
	fabric := memnet.NewFabric()
	params := dcws.Params{
		Workers: 2,
		// Manual clock: a real backoff sleep would block forever.
		RetryBaseDelay: -1,
		// Drops are injected on purpose; failing probes must not get peers
		// declared down and removed from the tables under test.
		MaxPingFailures: 1 << 20,
	}
	specs := make([]ServerSpec, 0, n)
	specs = append(specs, ServerSpec{Host: "node00", Port: 80, Site: dataset.LOD(), Params: params})
	for i := 1; i < n; i++ {
		specs = append(specs, ServerSpec{Host: fmt.Sprintf("node%02d", i), Port: 80 + i, Params: params})
	}
	c, err := New(Config{Servers: specs, Clock: clk, Network: fabric})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// checkDialFaults consults {from,to}, {*,to}, {from,*} — never {*,*} —
	// so drops are declared per target: dials TO every fourth node fail 30%.
	for i := 0; i < n; i += 4 {
		fabric.SetDialFailRate(memnet.Wildcard, c.Servers[i].Addr(), 0.3)
	}

	// Churn: advance past the pinger staleness horizon so every probe round
	// exchanges delta piggybacks, with self-loads refreshed in between.
	defaults := dcws.DefaultParams()
	for round := 0; round < 4; round++ {
		clk.Advance(defaults.PingerInterval + time.Second)
		c.TickStats()
		c.TickPingers()
		c.TickAntiEntropy()
	}

	// Settle: the clock is frozen so self entries stop moving, and only the
	// anti-entropy safety net runs — drops stay active. Every table must
	// match every peer's own entry within a bounded number of rounds.
	converged := func() bool {
		for _, holder := range c.Servers {
			for _, subject := range c.Servers {
				if holder == subject {
					continue
				}
				own, ok := subject.LoadTable().Get(subject.Addr())
				if !ok {
					t.Fatalf("%s lost its own entry", subject.Addr())
				}
				got, ok := holder.LoadTable().Get(subject.Addr())
				if !ok || got.Load != own.Load || !got.Updated.Equal(own.Updated) {
					return false
				}
			}
		}
		return true
	}
	rounds := 0
	for ; !converged(); rounds++ {
		if rounds >= 25 {
			t.Fatalf("tables not converged after %d anti-entropy rounds", rounds)
		}
		c.TickAntiEntropy()
	}
	t.Logf("converged after %d settle anti-entropy rounds", rounds)

	// Bounded per-request overhead at cluster scale: a delta header from a
	// converged 64-node table carries at most the entry cap, and no more
	// bytes than a 16-server full-table header.
	maxEntries := defaults.MaxPiggybackEntries
	full16, _ := glt.HeaderSizes(16, maxEntries)
	for _, i := range []int{0, 1, n / 2, n - 1} {
		srv := c.Servers[i]
		peer := c.Servers[(i+1)%n].Addr()
		hdr := srv.LoadTable().EncodePiggybackTo(peer, clk.Now(), maxEntries, false)
		p := glt.DecodePiggyback(hdr)
		if len(p.Entries) > maxEntries {
			t.Fatalf("%s delta to %s carries %d entries, cap %d", srv.Addr(), peer, len(p.Entries), maxEntries)
		}
		if len(hdr) > full16 {
			t.Fatalf("%s delta header is %dB, above the 16-server full-table baseline %dB", srv.Addr(), len(hdr), full16)
		}
	}
}
