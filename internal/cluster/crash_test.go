package cluster

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/httpx"
	"dcws/internal/webclient"
)

// walCluster boots one LOD home server plus n-1 empty co-op servers, all
// with the durable tier enabled.
func walCluster(t *testing.T, n int, params dcws.Params) *Cluster {
	t.Helper()
	root := t.TempDir()
	specs := []ServerSpec{{
		Host: "home", Port: 80, Site: dataset.LOD(), Params: params,
		WALDir: filepath.Join(root, "home"),
	}}
	for i := 1; i < n; i++ {
		specs = append(specs, ServerSpec{
			Host: fmt.Sprintf("coop%02d", i), Port: 80 + i, Params: params,
			WALDir: filepath.Join(root, fmt.Sprintf("coop%02d", i)),
		})
	}
	c, err := New(Config{Servers: specs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// walk drives one full Algorithm 2 site traversal and fails the test on
// client-observed errors.
func walk(t *testing.T, c *Cluster, seed int64) *webclient.Stats {
	t.Helper()
	stats := &webclient.Stats{}
	cl, err := webclient.New(webclient.Config{
		Dialer:    c.Dialer(),
		EntryURLs: c.EntryURLs(),
		Seed:      seed,
		Stats:     stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.RunSequence(nil)
	return stats
}

// TestClusterCrashRecovery16Nodes is the acceptance scenario: a 16-node
// cluster with the durable tier on every node, documents migrated out
// under load, a co-op server killed without warning while the fabric
// carries injected faults — and after restart the node rejoins with its
// hosted documents still physically present and valid, before any
// revocation timer would fire, with zero home documents lost.
func TestClusterCrashRecovery16Nodes(t *testing.T) {
	c := walCluster(t, 16, dcws.Params{MigrationThreshold: 1})
	home := c.Servers[0]
	docsBefore := home.Graph().Len()
	if docsBefore == 0 {
		t.Fatal("home booted with no documents")
	}

	// Load the home server and let several statistics intervals migrate
	// documents across the co-ops; follow-up walks drive the lazy physical
	// fetches so co-ops end up with present copies.
	for round := 0; round < 6; round++ {
		for seed := int64(1); seed <= 4; seed++ {
			if st := walk(t, c, int64(round)*10+seed); st.Errors.Value() > 0 {
				t.Fatalf("client errors before crash: %s", st)
			}
		}
		c.TickStats()
	}
	if c.TotalMigrated() == 0 {
		t.Fatal("no documents migrated despite load imbalance")
	}
	victim := -1
	for i := 1; i < len(c.Servers); i++ {
		if c.Servers[i].CoopDocCount() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no co-op physically hosts a document")
	}
	victimAddr := c.Servers[victim].Addr()
	hostedBefore := c.Servers[victim].CoopDocCount()

	// Inject fabric faults around the crash: a flaky link between the home
	// and another co-op, and a total partition to the victim while it is
	// down (its listener is gone anyway; the partition models the switch
	// port going dark too).
	fab := c.Fabric()
	fab.SetSeed(42)
	fab.SetDialFailRate("home:80", c.Servers[2].Addr(), 0.3)
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	fab.Partition("home:80", victimAddr)

	// The home notices the victim failing probes but has not yet reached
	// MaxPingFailures: the revocation timer must not have fired when the
	// node comes back.
	for i := 0; i < dcws.DefaultParams().MaxPingFailures-1; i++ {
		c.TickPingers()
	}
	if n := len(home.Migrations().HostedBy(victimAddr)); n == 0 {
		t.Fatal("home already revoked the victim's documents before the timer expired")
	}

	fab.Heal("home:80", victimAddr)
	reborn, err := c.Restart(victim)
	if err != nil {
		t.Fatal(err)
	}
	info := reborn.Recovery()
	if !info.Recovered {
		t.Fatal("restarted node did not recover from its WAL")
	}
	if info.CoopRestored != hostedBefore {
		t.Fatalf("recovery restored %d of %d hosted documents", info.CoopRestored, hostedBefore)
	}
	if info.Seconds <= 0 || info.Seconds > 5 {
		t.Fatalf("recovery took %.3fs — not the seconds-scale rejoin the WAL promises", info.Seconds)
	}
	if reborn.CoopDocCount() != hostedBefore {
		t.Fatalf("reborn node hosts %d documents, want %d", reborn.CoopDocCount(), hostedBefore)
	}

	// The recovered copies serve without refetching from home.
	fetchesBefore := reborn.Stats().Fetches.Value()
	hc := httpx.NewClient(c.Dialer())
	for _, key := range reborn.Status().CoopHosted {
		resp, err := hc.Get(victimAddr, key, nil)
		if err != nil || resp.Status != 200 {
			t.Fatalf("recovered copy %s: %v, %v", key, resp, err)
		}
	}
	if got := reborn.Stats().Fetches.Value(); got != fetchesBefore {
		t.Fatalf("recovered copies refetched from home (%d fetches)", got-fetchesBefore)
	}

	// A probe round re-admits the peer; no revocation happened.
	c.TickPingers()
	if n := len(home.Migrations().HostedBy(victimAddr)); n == 0 {
		t.Fatal("migrations to the victim were revoked despite its fast rejoin")
	}

	// Zero lost home documents: the full site still walks clean with the
	// remaining fault healed.
	fab.HealAll()
	if home.Graph().Len() != docsBefore {
		t.Fatalf("home graph shrank: %d -> %d documents", docsBefore, home.Graph().Len())
	}
	if st := walk(t, c, 999); st.Errors.Value() > 0 {
		t.Fatalf("client errors after recovery: %s", st)
	}

	// Recovery time is exposed through the metrics registry.
	fams := metricValue(t, reborn, "dcws_recovery_last_seconds")
	if fams <= 0 {
		t.Fatalf("dcws_recovery_last_seconds = %v, want > 0", fams)
	}
	if v := metricValue(t, reborn, "dcws_wal_enabled"); v != 1 {
		t.Fatalf("dcws_wal_enabled = %v, want 1", v)
	}
}

// metricValue scrapes one unlabeled series' value from the server's
// Prometheus exposition.
func metricValue(t *testing.T, s *dcws.Server, family string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Telemetry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, family+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, family+" "), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("family %s missing from exposition", family)
	return 0
}

// TestClusterCleanShutdownFastRestart: a clean Close writes a snapshot, so
// the next boot replays nothing.
func TestClusterCleanShutdownFastRestart(t *testing.T) {
	c := walCluster(t, 3, dcws.Params{MigrationThreshold: 1})
	for seed := int64(1); seed <= 3; seed++ {
		walk(t, c, seed)
	}
	c.TickStats()
	if err := c.Servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	reborn, err := c.Restart(0)
	if err != nil {
		t.Fatal(err)
	}
	info := reborn.Recovery()
	if !info.Recovered || info.ReplayedRecs != 0 || info.SnapshotLSN == 0 {
		t.Fatalf("clean restart should load snapshot only: %+v", info)
	}
}
