package cluster

import (
	"fmt"
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/httpx"
)

// zoneSite is a tiny site with enough non-entry pages that several rounds
// of migration always have a fresh candidate.
func zoneSite() *dataset.Site {
	site := &dataset.Site{Name: "zonetest", EntryPoints: []string{"/index.html"}}
	var links []dataset.Link
	for i := 1; i <= 8; i++ {
		name := fmt.Sprintf("/d%d.html", i)
		links = append(links, dataset.Link{URL: name})
		site.Docs = append(site.Docs, dataset.Doc{Name: name, Size: 4096})
	}
	site.Docs = append(site.Docs, dataset.Doc{Name: "/index.html", Size: 2048, Links: links})
	return site
}

// zoneParams shortens the control intervals so manual-clock phases of a few
// seconds cover a full gate + staleness cycle.
func zoneParams(zone string) dcws.Params {
	return dcws.Params{
		Zone:               zone,
		MigrationThreshold: 1,
		// The cluster runs on a manual clock; a real backoff sleep inside
		// a probe would block the tick forever.
		RetryBaseDelay:        -1,
		StatsInterval:         2 * time.Second,
		PingerInterval:        4 * time.Second,
		CoopMigrateInterval:   4 * time.Second,
		HomeReMigrateInterval: time.Hour,
		PlacementMaxStaleness: time.Hour,
	}
}

// TestClusterZoneSpilloverUnderPartition pins the zone placement policy
// end to end: migrations prefer the same-zone co-op, spill over to the
// other zone while the same-zone co-op is partitioned away, and return to
// the local zone after the partition heals.
func TestClusterZoneSpilloverUnderPartition(t *testing.T) {
	mc := clock.NewManual(time.Unix(0, 0))
	c, err := New(Config{
		Clock: mc,
		Servers: []ServerSpec{
			{Host: "home", Port: 80, Site: zoneSite(), Params: zoneParams("east")},
			{Host: "east1", Port: 81, Params: zoneParams("east")},
			{Host: "west1", Port: 82, Params: zoneParams("west")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	home := c.Servers[0]
	client := httpx.NewClient(c.Dialer())

	// Spread zone/capacity metadata before any placement decision.
	c.TickPingers()

	hit := func() {
		t.Helper()
		for i := 1; i <= 8; i++ {
			if _, err := client.Get("home:80", fmt.Sprintf("/d%d.html", i), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	migrated := func() map[string]string { return home.Graph().Migrated() }
	// newPlacement runs one load-then-stats round and returns the location
	// of the migration it produced.
	newPlacement := func(phase string) string {
		t.Helper()
		before := migrated()
		hit()
		mc.Advance(8 * time.Second)
		home.TickStats()
		after := migrated()
		for name, loc := range after {
			if before[name] != loc {
				return loc
			}
		}
		t.Fatalf("%s: no new migration (have %d)", phase, len(after))
		return ""
	}

	if loc := newPlacement("baseline"); loc != "east1:81" {
		t.Fatalf("baseline migration went to %s, want the same-zone co-op east1:81", loc)
	}

	// Partition the same-zone co-op away and let a failed probe mark it
	// suspect: placement must spill over to the healthy remote zone.
	c.Fabric().Partition("home:80", "east1:81")
	c.Fabric().ResetLink("home:80", "east1:81")
	mc.Advance(8 * time.Second)
	home.TickPinger()
	if loc := newPlacement("partitioned"); loc != "west1:82" {
		t.Fatalf("partitioned migration went to %s, want cross-zone spillover to west1:82", loc)
	}

	// Heal; a successful probe clears the suspicion and placement returns
	// to the local zone.
	c.Fabric().Heal("home:80", "east1:81")
	mc.Advance(8 * time.Second)
	home.TickPinger()
	if loc := newPlacement("healed"); loc != "east1:81" {
		t.Fatalf("post-heal migration went to %s, want the same-zone co-op east1:81", loc)
	}
}

// TestCluster16NodeMigrationsLandByHeadroom boots a 16-node group with a
// 4x capacity spread (worker pools of 12 vs 3) and checks that the
// capacity-normalized placement sends every migration to the fast half of
// the co-op pool while it still has headroom.
func TestCluster16NodeMigrationsLandByHeadroom(t *testing.T) {
	mc := clock.NewManual(time.Unix(0, 0))
	specs := []ServerSpec{{Host: "home", Port: 80, Site: zoneSite(), Params: zoneParams("")}}
	fast := map[string]bool{}
	for i := 1; i < 16; i++ {
		p := zoneParams("")
		host := fmt.Sprintf("coop%02d", i)
		addr := fmt.Sprintf("%s:%d", host, 80+i)
		if i <= 7 {
			p.Workers = 12
			fast[addr] = true
		} else {
			p.Workers = 3
		}
		specs = append(specs, ServerSpec{Host: host, Port: 80 + i, Params: p})
	}
	c, err := New(Config{Clock: mc, Servers: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	home := c.Servers[0]
	client := httpx.NewClient(c.Dialer())

	c.TickPingers()
	for round := 0; round < 6; round++ {
		for i := 1; i <= 8; i++ {
			if _, err := client.Get("home:80", fmt.Sprintf("/d%d.html", i), nil); err != nil {
				t.Fatal(err)
			}
		}
		mc.Advance(8 * time.Second)
		home.TickStats()
	}

	placed := home.Graph().Migrated()
	if len(placed) < 4 {
		t.Fatalf("only %d migrations in 6 rounds", len(placed))
	}
	onFast, onSlow := 0, 0
	for name, loc := range placed {
		if fast[loc] {
			onFast++
		} else {
			onSlow++
			t.Logf("migration %s -> %s landed on a slow node", name, loc)
		}
	}
	if onSlow > 0 {
		t.Fatalf("%d of %d migrations landed on 4x-slower nodes despite fast headroom (fast=%d)",
			onSlow, len(placed), onFast)
	}
}
