package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
	"dcws/internal/webclient"
)

// freePort reserves an ephemeral TCP port.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP available: %v", err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// TestRealTCPTwoNodeMigration runs the complete DCWS flow over the
// operating system's TCP stack: two dcwsd-equivalent servers, a forced
// migration, lazy fetch, link rewriting, and status inspection.
func TestRealTCPTwoNodeMigration(t *testing.T) {
	homePort := freePort(t)
	coopPort := freePort(t)
	homeAddr := fmt.Sprintf("127.0.0.1:%d", homePort)
	coopAddr := fmt.Sprintf("127.0.0.1:%d", coopPort)

	site := dataset.LOD()
	st := store.NewMem()
	if err := site.Materialize(st, 1.0); err != nil {
		t.Fatal(err)
	}
	params := dcws.Params{MigrationThreshold: 1}

	home, err := dcws.New(dcws.Config{
		Origin:      naming.Origin{Host: "127.0.0.1", Port: homePort},
		Store:       st,
		Network:     memnet.TCP{},
		EntryPoints: site.EntryPoints,
		Peers:       []string{coopAddr},
		Params:      params,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Start(); err != nil {
		t.Skipf("cannot bind TCP: %v", err)
	}
	defer home.Close()

	coop, err := dcws.New(dcws.Config{
		Origin:  naming.Origin{Host: "127.0.0.1", Port: coopPort},
		Store:   store.NewMem(),
		Network: memnet.TCP{},
		Peers:   []string{homeAddr},
		Params:  params,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coop.Start(); err != nil {
		t.Skipf("cannot bind TCP: %v", err)
	}
	defer coop.Close()

	stats := &webclient.Stats{}
	cl, err := webclient.New(webclient.Config{
		Dialer:    httpx.DialerFunc(memnet.TCP{}.Dial),
		EntryURLs: []string{"http://" + homeAddr + "/index.html"},
		Seed:      11,
		Stats:     stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive real traffic, then trigger the migration decision.
	for i := 0; i < 3; i++ {
		cl.RunSequence(nil)
	}
	home.TickStats()
	migrated := home.Graph().Migrated()
	if len(migrated) == 0 {
		t.Fatal("no migration over real TCP")
	}
	// Every migrated document remains reachable end to end (fresh cache —
	// a new visitor).
	cl.ResetCache()
	for doc, loc := range migrated {
		if loc != coopAddr {
			t.Fatalf("doc %s migrated to %q, want %q", doc, loc, coopAddr)
		}
		body, finalURL, ok := cl.Fetch("http://" + homeAddr + doc)
		if !ok || len(body) == 0 {
			t.Fatalf("migrated doc %s unreachable", doc)
		}
		if !strings.Contains(finalURL, "~migrate") {
			t.Fatalf("doc %s not served via coop: %s", doc, finalURL)
		}
		break
	}
	// The status endpoint serves valid JSON over TCP.
	client := httpx.NewClient(httpx.DialerFunc(memnet.TCP{}.Dial))
	resp, err := client.Get(homeAddr, "/~dcws/status", nil)
	if err != nil || resp.Status != 200 {
		t.Fatalf("status endpoint: %v %v", err, resp)
	}
	var status dcws.Status
	if err := json.Unmarshal(resp.Body, &status); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, resp.Body)
	}
	if status.Documents != 349 {
		t.Fatalf("status documents = %d, want 349 (LOD)", status.Documents)
	}
	if len(status.MigratedOut) == 0 {
		t.Fatal("status shows no migrations")
	}
	if stats.Errors.Value() > 0 {
		t.Fatalf("client errors over TCP: %s", stats)
	}
}
