package cluster

import (
	"testing"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/webclient"
)

// lodCluster boots one LOD home server plus n-1 empty co-op servers.
func lodCluster(t *testing.T, n int, params dcws.Params) *Cluster {
	t.Helper()
	specs := []ServerSpec{{Host: "home", Port: 80, Site: dataset.LOD(), Params: params}}
	for i := 1; i < n; i++ {
		specs = append(specs, ServerSpec{Host: "coop" + string(rune('a'+i)), Port: 80 + i, Params: params})
	}
	c, err := New(Config{Servers: specs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterBootsAndServes(t *testing.T) {
	c := lodCluster(t, 2, dcws.Params{})
	urls := c.EntryURLs()
	if len(urls) != 1 || urls[0] != "http://home:80/index.html" {
		t.Fatalf("entry URLs = %v", urls)
	}
	stats := &webclient.Stats{}
	cl, err := webclient.New(webclient.Config{
		Dialer:    c.Dialer(),
		EntryURLs: urls,
		Seed:      1,
		Stats:     stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.RunSequence(nil)
	if stats.Connections.Value() == 0 || stats.Errors.Value() > 0 {
		t.Fatalf("walk failed: %s", stats)
	}
}

func TestClusterMigratesUnderLoad(t *testing.T) {
	c := lodCluster(t, 3, dcws.Params{MigrationThreshold: 1})
	// Drive some traffic, then tick the statistics modules.
	stats := &webclient.Stats{}
	for seed := int64(1); seed <= 4; seed++ {
		cl, err := webclient.New(webclient.Config{
			Dialer:    c.Dialer(),
			EntryURLs: c.EntryURLs(),
			Seed:      seed,
			Stats:     stats,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.RunSequence(nil)
	}
	c.TickStats()
	if c.TotalMigrated() == 0 {
		t.Fatal("no documents migrated despite load imbalance")
	}
	// Clients can still walk the whole site after migration, following the
	// rewritten links and redirects.
	after := &webclient.Stats{}
	cl, _ := webclient.New(webclient.Config{
		Dialer:    c.Dialer(),
		EntryURLs: c.EntryURLs(),
		Seed:      77,
		Stats:     after,
	})
	for i := 0; i < 3; i++ {
		cl.RunSequence(nil)
	}
	if after.Errors.Value() > 0 {
		t.Fatalf("post-migration walk errored: %s", after)
	}
	if after.Connections.Value() == 0 {
		t.Fatal("post-migration walk made no progress")
	}
}

func TestClusterLoadSpreadsAcrossServers(t *testing.T) {
	c := lodCluster(t, 3, dcws.Params{MigrationThreshold: 1})
	drive := func(rounds int) {
		stats := &webclient.Stats{}
		for seed := int64(1); seed <= int64(rounds); seed++ {
			cl, _ := webclient.New(webclient.Config{
				Dialer:    c.Dialer(),
				EntryURLs: c.EntryURLs(),
				Seed:      seed,
				Stats:     stats,
			})
			cl.RunSequence(nil)
		}
	}
	// Alternate load and stats ticks so migrations accumulate.
	for round := 0; round < 4; round++ {
		drive(4)
		c.TickStats()
	}
	drive(6)
	// At least one co-op server must now be serving real traffic.
	coopServed := int64(0)
	for _, s := range c.Servers[1:] {
		coopServed += s.Stats().Connections.Value()
	}
	if coopServed == 0 {
		t.Fatal("co-op servers served nothing; load not spread")
	}
}

func TestClusterBenchmarkHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("timed benchmark in -short mode")
	}
	c := lodCluster(t, 2, dcws.Params{MigrationThreshold: 1})
	res, err := c.RunBenchmark(4, 300*time.Millisecond, 100*time.Millisecond, c.TickStats)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Connections.Value() == 0 {
		t.Fatal("benchmark made no connections")
	}
	if res.CPS <= 0 || res.BPS <= 0 {
		t.Fatalf("rates = %v CPS, %v BPS", res.CPS, res.BPS)
	}
}

func TestClusterValidationPropagation(t *testing.T) {
	c := lodCluster(t, 2, dcws.Params{MigrationThreshold: 1})
	home := c.Servers[0]
	// Force a migration of a known page and materialize it at the coop.
	stats := &webclient.Stats{}
	cl, _ := webclient.New(webclient.Config{
		Dialer: c.Dialer(), EntryURLs: c.EntryURLs(), Seed: 5, Stats: stats,
	})
	cl.RunSequence(nil)
	c.TickStats()
	migrated := home.Graph().Migrated()
	if len(migrated) == 0 {
		t.Skip("no migration occurred for this seed")
	}
	// Edit every migrated doc at home, tick validators, and confirm the
	// coop copies refreshed (fetch counters move).
	for doc := range migrated {
		if err := home.UpdateDocument(doc, []byte("<html>edited</html>")); err != nil {
			t.Fatal(err)
		}
	}
	c.TickValidators()
	// After validation, a fresh client fetching the migrated doc must see
	// the new content via redirect.
	for doc := range migrated {
		resp := fetchFollow(t, c, "http://home:80"+doc)
		if string(resp) != "<html>edited</html>" {
			t.Fatalf("migrated copy stale after validation: %q", resp)
		}
		break
	}
}

func fetchFollow(t *testing.T, c *Cluster, url string) []byte {
	t.Helper()
	stats := &webclient.Stats{}
	cl, err := webclient.New(webclient.Config{
		Dialer: c.Dialer(), EntryURLs: []string{url}, Seed: 1, Stats: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	body, _, ok := cl.Fetch(url)
	if !ok {
		t.Fatalf("fetch %s failed: %s", url, stats)
	}
	return body
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty cluster config accepted")
	}
}

func TestMultipleHomes(t *testing.T) {
	// The fully symmetric deployment of §3.3: two departments, each a home
	// for its own site and a potential coop for the other.
	c, err := New(Config{Servers: []ServerSpec{
		{Host: "east", Port: 80, Site: dataset.LOD()},
		{Host: "west", Port: 80, Site: dataset.MAPUG()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.EntryURLs()) != 2 {
		t.Fatalf("entry URLs = %v", c.EntryURLs())
	}
	for _, url := range c.EntryURLs() {
		if body := fetchFollow(t, c, url); len(body) == 0 {
			t.Fatalf("entry %s unreachable", url)
		}
	}
}

func TestClusterPingersExchangeLoadTables(t *testing.T) {
	c := lodCluster(t, 3, dcws.Params{})
	// Fresh peers have never communicated: their load-table entries are
	// stale, so one pinger round must refresh them via artificial
	// requests (§4.5).
	c.TickPingers()
	for _, s := range c.Servers {
		for _, other := range c.Servers {
			if s == other {
				continue
			}
			if _, ok := s.LoadTable().Get(other.Addr()); !ok {
				t.Fatalf("%s does not know %s after pinger round", s.Addr(), other.Addr())
			}
		}
	}
}
