package cluster

import (
	"sync"
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/memnet"
	"dcws/internal/webclient"
)

// TestSoakLiveClusterConsistency runs a three-server group under continuous
// Algorithm 2 load with all maintenance driven by a heavily compressed real
// clock (statistics, pinger, and validation loops all firing many times),
// then verifies the global invariant the whole design rests on: every
// document of the site remains reachable from the entry point by a fresh
// client, wherever migration has scattered it.
func TestSoakLiveClusterConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	site := dataset.LOD()
	params := dcws.Params{MigrationThreshold: 1}
	clk := clock.NewScaled(500) // T_st=10s fires every 20ms real
	fabric := memnet.NewFabric()
	c, err := New(Config{
		Servers: []ServerSpec{
			{Host: "home", Port: 80, Site: site, Params: params},
			{Host: "coopa", Port: 81, Params: params},
			{Host: "coopb", Port: 82, Params: params},
		},
		Clock:   clk,
		Network: fabric,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Continuous load from eight clients for three real seconds (~25
	// virtual minutes of maintenance activity).
	stats := &webclient.Stats{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		cl, err := webclient.New(webclient.Config{
			Dialer:    c.Dialer(),
			EntryURLs: c.EntryURLs(),
			Seed:      int64(i + 1),
			Stats:     stats,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Run(stop)
		}()
	}
	time.Sleep(3 * time.Second)
	close(stop)
	wg.Wait()

	if stats.Errors.Value() > 0 {
		t.Fatalf("navigation errors during soak: %s", stats)
	}
	if stats.Connections.Value() == 0 {
		t.Fatal("soak produced no traffic")
	}
	migrated := c.TotalMigrated()
	if migrated == 0 {
		t.Fatal("no migrations during soak despite compressed timers")
	}
	t.Logf("soak: %s; %d documents migrated", stats, migrated)

	// Reachability sweep: a fresh client fetches every document by its
	// canonical home URL; redirects must resolve everything.
	sweep := &webclient.Stats{}
	cl, err := webclient.New(webclient.Config{
		Dialer:    c.Dialer(),
		EntryURLs: c.EntryURLs(),
		Seed:      999,
		Stats:     sweep,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range site.Docs {
		cl.ResetCache()
		name := site.Docs[i].Name
		body, _, ok := cl.Fetch("http://home:80" + name)
		if !ok || len(body) == 0 {
			t.Fatalf("document %s unreachable after soak (%s)", name, sweep)
		}
	}
	if sweep.Errors.Value() > 0 {
		t.Fatalf("sweep errors: %s", sweep)
	}
}
