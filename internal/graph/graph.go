// Package graph implements the Local Document Graph (LDG) of §3.3: one
// tuple (Name, Location, Size, Hits, LinkTo, LinkFrom, Dirty) per document,
// hash-indexed by name because the tuple is consulted on every request the
// server processes. The graph is built at server initialization by scanning
// the store and parsing every HTML document, and mutated afterwards by
// migrations, revocations, and content updates.
package graph

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"dcws/internal/hypertext"
	"dcws/internal/store"
)

// ErrUnknownDoc is returned for operations on documents not in the graph.
var ErrUnknownDoc = errors.New("graph: unknown document")

// Doc is a read-only snapshot of one LDG tuple.
type Doc struct {
	// Name is the rooted document path, e.g. "/dir/foo.html".
	Name string
	// Location is the co-op server currently hosting the document, or ""
	// while the document is at home.
	Location string
	// Size is the document's byte size.
	Size int64
	// Hits is the cumulative request count.
	Hits int64
	// WindowHits is the request count since the last RollWindow — the load
	// figure Algorithm 1 thresholds on.
	WindowHits int64
	// LinkTo lists documents this document references.
	LinkTo []string
	// LinkFrom lists documents referencing this document.
	LinkFrom []string
	// Dirty marks documents whose hyperlinks must be regenerated because a
	// LinkTo target moved.
	Dirty bool
	// EntryPoint marks well-known entry points, which never migrate (§3.1).
	EntryPoint bool
	// Gen is the document's invalidation generation: it advances whenever
	// the document's rendered form may have changed (content replaced, the
	// document dirtied by a neighbour's migration or revocation, or its own
	// location changed). Caches key rendered copies by (name, Gen).
	Gen uint64
}

// entry is the mutable tuple behind the lock.
type entry struct {
	name       string
	location   string
	size       int64
	hits       int64
	windowHits int64
	linkTo     map[string]bool
	linkFrom   map[string]bool
	dirty      bool
	entryPoint bool
	gen        uint64
}

// LDG is the local document graph. All methods are safe for concurrent use.
type LDG struct {
	mu   sync.RWMutex
	docs map[string]*entry
}

// New returns an empty graph.
func New() *LDG {
	return &LDG{docs: make(map[string]*entry)}
}

// IsHTML reports whether a document name looks like an HTML page (the only
// kind that carries hyperlinks).
func IsHTML(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasSuffix(lower, ".html") || strings.HasSuffix(lower, ".htm")
}

// ResolveLink resolves a raw link URL found in document base to a rooted
// document name on the same server. It returns "" for off-site absolute
// URLs, fragments, mailto links, and already-migrated (~migrate) URLs.
func ResolveLink(base, raw string) string {
	if raw == "" || strings.HasPrefix(raw, "#") {
		return ""
	}
	if strings.Contains(raw, "://") || strings.HasPrefix(raw, "mailto:") {
		return ""
	}
	if i := strings.IndexAny(raw, "#?"); i >= 0 {
		raw = raw[:i]
		if raw == "" {
			return ""
		}
	}
	var resolved string
	if strings.HasPrefix(raw, "/") {
		resolved = raw
	} else {
		resolved = path.Join(path.Dir(base), raw)
	}
	cleaned, err := store.CleanName(resolved)
	if err != nil {
		return ""
	}
	if strings.HasPrefix(cleaned, "/~migrate/") {
		return ""
	}
	return cleaned
}

// Build scans st, parses every HTML document, and constructs the graph.
// Non-HTML documents become leaf nodes. Dangling links (to documents not in
// the store) are recorded in LinkTo but create no node.
func Build(st store.Store) (*LDG, error) {
	return BuildWithResolver(st, ResolveLink)
}

// BuildWithResolver is Build with a custom link resolver. The DCWS server
// supplies a resolver that also recognizes absolute URLs naming itself and
// ~migrate URLs whose home component is this server, so a graph rebuilt
// from regenerated documents (whose hyperlinks may be absolute) is
// identical to one built from pristine sources.
func BuildWithResolver(st store.Store, resolve func(base, raw string) string) (*LDG, error) {
	g := New()
	names, err := st.List()
	if err != nil {
		return nil, fmt.Errorf("graph: list store: %w", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, name := range names {
		size, err := st.Size(name)
		if err != nil {
			return nil, err
		}
		g.ensureLocked(name).size = size
	}
	for _, name := range names {
		if !IsHTML(name) {
			continue
		}
		data, err := st.Get(name)
		if err != nil {
			return nil, err
		}
		for _, raw := range hypertext.ExtractLinks(string(data)) {
			target := resolve(name, raw)
			if target == "" || target == name {
				continue
			}
			g.linkLocked(name, target)
		}
	}
	return g, nil
}

// ensureLocked returns the entry for name, creating it if absent.
func (g *LDG) ensureLocked(name string) *entry {
	e, ok := g.docs[name]
	if !ok {
		e = &entry{
			name:     name,
			linkTo:   make(map[string]bool),
			linkFrom: make(map[string]bool),
		}
		g.docs[name] = e
	}
	return e
}

// linkLocked records a hyperlink from -> to, keeping LinkTo and LinkFrom
// mutually consistent.
func (g *LDG) linkLocked(from, to string) {
	fe := g.ensureLocked(from)
	te := g.ensureLocked(to)
	fe.linkTo[to] = true
	te.linkFrom[from] = true
}

// AddDoc inserts or refreshes a document node, reparsing its links from
// content when it is HTML. Existing outgoing links are replaced; incoming
// links are preserved. Used when an administrator changes page content.
func (g *LDG) AddDoc(name string, size int64, content []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.ensureLocked(name)
	e.size = size
	e.gen++
	// Drop old outgoing links.
	for to := range e.linkTo {
		if te, ok := g.docs[to]; ok {
			delete(te.linkFrom, name)
		}
	}
	e.linkTo = make(map[string]bool)
	if IsHTML(name) && content != nil {
		for _, raw := range hypertext.ExtractLinks(string(content)) {
			target := ResolveLink(name, raw)
			if target == "" || target == name {
				continue
			}
			g.linkLocked(name, target)
		}
	}
}

// Has reports whether the graph contains a tuple for name.
func (g *LDG) Has(name string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.docs[name]
	return ok
}

// Get returns a snapshot of the tuple for name.
func (g *LDG) Get(name string) (Doc, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.docs[name]
	if !ok {
		return Doc{}, fmt.Errorf("%w: %s", ErrUnknownDoc, name)
	}
	return e.snapshot(), nil
}

func (e *entry) snapshot() Doc {
	return Doc{
		Name:       e.name,
		Location:   e.location,
		Size:       e.size,
		Hits:       e.hits,
		WindowHits: e.windowHits,
		LinkTo:     sortedKeys(e.linkTo),
		LinkFrom:   sortedKeys(e.linkFrom),
		Dirty:      e.dirty,
		EntryPoint: e.entryPoint,
		Gen:        e.gen,
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RecordHit counts one request for name, creating the tuple if needed so
// hit accounting is never lost for dynamically added content.
func (g *LDG) RecordHit(name string) {
	g.mu.Lock()
	e := g.ensureLocked(name)
	e.hits++
	e.windowHits++
	g.mu.Unlock()
}

// RollWindow zeroes every document's WindowHits, starting a fresh
// measurement interval (called by the statistics module every T_st).
func (g *LDG) RollWindow() {
	g.mu.Lock()
	for _, e := range g.docs {
		e.windowHits = 0
	}
	g.mu.Unlock()
}

// SetEntryPoint marks name as a well-known entry point.
func (g *LDG) SetEntryPoint(name string, isEntry bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.docs[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDoc, name)
	}
	e.entryPoint = isEntry
	return nil
}

// MarkMigrated records that name now lives on coop, and sets the Dirty bit
// on every document in name's LinkFrom list so their hyperlinks are
// regenerated on next request (§4.2). It returns the dirtied names.
func (g *LDG) MarkMigrated(name, coop string) ([]string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.docs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDoc, name)
	}
	e.location = coop
	e.gen++
	dirtied := make([]string, 0, len(e.linkFrom))
	for from := range e.linkFrom {
		if fe, ok := g.docs[from]; ok {
			fe.dirty = true
			fe.gen++
			dirtied = append(dirtied, from)
		}
	}
	sort.Strings(dirtied)
	return dirtied, nil
}

// MarkRevoked returns name to its home server, dirtying LinkFrom documents
// so their hyperlinks point home again (§4.5).
func (g *LDG) MarkRevoked(name string) ([]string, error) {
	return g.MarkMigrated(name, "")
}

// Location returns the co-op hosting name ("" if local) and whether the
// document exists.
func (g *LDG) Location(name string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.docs[name]
	if !ok {
		return "", false
	}
	return e.location, true
}

// ServeInfo returns everything the request hot path needs about name in
// one lock acquisition: its location, Dirty bit, and generation. ok is
// false for unknown documents.
func (g *LDG) ServeInfo(name string) (location string, dirty bool, gen uint64, ok bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, found := g.docs[name]
	if !found {
		return "", false, 0, false
	}
	return e.location, e.dirty, e.gen, true
}

// Generation returns the invalidation generation for name (0 for unknown
// documents).
func (g *LDG) Generation(name string) uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.docs[name]
	if !ok {
		return 0
	}
	return e.gen
}

// IsDirty reports the Dirty bit for name.
func (g *LDG) IsDirty(name string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.docs[name]
	return ok && e.dirty
}

// ClearDirty resets the Dirty bit after a document has been regenerated.
func (g *LDG) ClearDirty(name string) {
	g.mu.Lock()
	if e, ok := g.docs[name]; ok {
		e.dirty = false
	}
	g.mu.Unlock()
}

// SetSize updates the recorded size of name (after regeneration changes
// the document's length).
func (g *LDG) SetSize(name string, size int64) {
	g.mu.Lock()
	if e, ok := g.docs[name]; ok {
		e.size = size
	}
	g.mu.Unlock()
}

// Snapshot returns every tuple, sorted by name.
func (g *LDG) Snapshot() []Doc {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Doc, 0, len(g.docs))
	for _, e := range g.docs {
		out = append(out, e.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Migrated returns the names of all documents currently hosted by co-op
// servers, with their locations.
func (g *LDG) Migrated() map[string]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]string)
	for name, e := range g.docs {
		if e.location != "" {
			out[name] = e.location
		}
	}
	return out
}

// Len reports the number of documents in the graph.
func (g *LDG) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.docs)
}

// RemoteLinkFromCount counts LinkFrom documents of name that do not reside
// on the home server (i.e. have a non-empty Location) — the quantity
// Algorithm 1 step 4 minimizes to avoid remote hyperlink updates.
func (g *LDG) RemoteLinkFromCount(name string) (int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.docs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownDoc, name)
	}
	n := 0
	for from := range e.linkFrom {
		if fe, ok := g.docs[from]; ok && fe.location != "" {
			n++
		}
	}
	return n, nil
}
