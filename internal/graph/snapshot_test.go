package graph

import (
	"reflect"
	"testing"

	"dcws/internal/store"
)

func buildSample(t *testing.T) *LDG {
	t.Helper()
	st := store.NewMem()
	st.Put("/index.html", []byte(`<a href="/a.html">a</a> <a href="b.html">b</a>`))
	st.Put("/a.html", []byte(`<a href="/b.html">b</a> <a href="/img.png">i</a>`))
	st.Put("/b.html", []byte(`plain`))
	st.Put("/img.png", []byte{0xff, 0xd8})
	g, err := Build(st)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g.SetEntryPoint("/index.html", true)
	g.RecordHit("/a.html")
	g.RecordHit("/a.html")
	if _, err := g.MarkMigrated("/b.html", "coop:9001"); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSnapshotRoundTrip: decode(encode(g)) must reproduce every tuple —
// including locations, generations, dirty bits, and both link directions —
// except WindowHits, which restarts at zero.
func TestSnapshotRoundTrip(t *testing.T) {
	g := buildSample(t)
	g2, err := DecodeSnapshot(g.EncodeSnapshot())
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	want := g.Snapshot()
	for i := range want {
		want[i].WindowHits = 0
	}
	got := g2.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRebuildsLinkFrom(t *testing.T) {
	g := buildSample(t)
	g2, err := DecodeSnapshot(g.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	d, err := g2.Get("/b.html")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.LinkFrom, []string{"/a.html", "/index.html"}) {
		t.Fatalf("LinkFrom = %v", d.LinkFrom)
	}
	if d.Location != "coop:9001" {
		t.Fatalf("Location = %q", d.Location)
	}
	if n, err := g2.RemoteLinkFromCount("/img.png"); err != nil || n != 0 {
		t.Fatalf("RemoteLinkFromCount = %d, %v", n, err)
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{99},           // bad version
		{1},            // missing count
		{1, 5},         // count with no docs
		{1, 1, 3, 'a'}, // truncated name
		append(buildSample(t).EncodeSnapshot(), 0xEE), // trailing bytes
	}
	for i, c := range cases {
		if _, err := DecodeSnapshot(c); err == nil {
			t.Errorf("case %d: decoded garbage without error", i)
		}
	}
}

func TestRemove(t *testing.T) {
	g := buildSample(t)
	dirtied := g.Remove("/b.html")
	if !reflect.DeepEqual(dirtied, []string{"/a.html", "/index.html"}) {
		t.Fatalf("dirtied = %v", dirtied)
	}
	if g.Has("/b.html") {
		t.Fatal("/b.html still present")
	}
	d, err := g.Get("/a.html")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Dirty {
		t.Fatal("/a.html not dirtied by Remove")
	}
	for _, to := range d.LinkTo {
		if to == "/b.html" {
			t.Fatal("stale LinkTo edge survived Remove")
		}
	}
	if g.Remove("/nope") != nil {
		t.Fatal("removing unknown doc returned dirtied names")
	}
}

func TestRestoreHome(t *testing.T) {
	g := buildSample(t)
	before, _ := g.Get("/b.html")
	idxBefore, _ := g.Get("/index.html")
	g.RestoreHome("/b.html")
	after, err := g.Get("/b.html")
	if err != nil {
		t.Fatal(err)
	}
	if after.Location != "" || after.Gen <= before.Gen {
		t.Fatalf("RestoreHome: location=%q gen %d -> %d", after.Location, before.Gen, after.Gen)
	}
	// Neighbours must NOT be touched (recovery decides separately).
	idx, _ := g.Get("/index.html")
	if idx.Gen != idxBefore.Gen || idx.Dirty != idxBefore.Dirty {
		t.Fatal("RestoreHome touched a neighbour")
	}
}
