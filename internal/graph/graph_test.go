package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dcws/internal/store"
)

// paperStore builds the document set of Figure 1/2: documents A..E on one
// server, where A->C, B->{D,E}, E->D.
func paperStore(t *testing.T) store.Store {
	t.Helper()
	s := store.NewMem()
	put := func(name, body string) {
		if err := s.Put(name, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	put("/A.html", `<html><a href="/C.html">C</a></html>`)
	put("/B.html", `<html><a href="/D.html">D</a><a href="/E.html">E</a></html>`)
	put("/C.html", `<html>leaf C</html>`)
	put("/D.html", `<html>leaf D</html>`)
	put("/E.html", `<html><a href="/D.html">D</a></html>`)
	return s
}

func TestBuildPaperExample(t *testing.T) {
	g, err := Build(paperStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	b, err := g.Get("/B.html")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.LinkTo, []string{"/D.html", "/E.html"}) {
		t.Fatalf("B.LinkTo = %v", b.LinkTo)
	}
	d, _ := g.Get("/D.html")
	if !reflect.DeepEqual(d.LinkFrom, []string{"/B.html", "/E.html"}) {
		t.Fatalf("D.LinkFrom = %v", d.LinkFrom)
	}
	a, _ := g.Get("/A.html")
	if len(a.LinkFrom) != 0 {
		t.Fatalf("A.LinkFrom = %v, want empty", a.LinkFrom)
	}
	c, _ := g.Get("/C.html")
	if !reflect.DeepEqual(c.LinkFrom, []string{"/A.html"}) {
		t.Fatalf("C.LinkFrom = %v", c.LinkFrom)
	}
}

// TestMigrationMatchesFigure2 reproduces the paper's Figure 2 state: after
// D migrates to server #2, B and E are dirty, D's location is #2, and the
// other documents are clean.
func TestMigrationMatchesFigure2(t *testing.T) {
	g, _ := Build(paperStore(t))
	dirtied, err := g.MarkMigrated("/D.html", "server2:80")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dirtied, []string{"/B.html", "/E.html"}) {
		t.Fatalf("dirtied = %v", dirtied)
	}
	for name, wantDirty := range map[string]bool{
		"/A.html": false, "/B.html": true, "/C.html": false,
		"/D.html": false, "/E.html": true,
	} {
		if got := g.IsDirty(name); got != wantDirty {
			t.Errorf("Dirty(%s) = %v, want %v", name, got, wantDirty)
		}
	}
	loc, ok := g.Location("/D.html")
	if !ok || loc != "server2:80" {
		t.Fatalf("Location(D) = %q, %v", loc, ok)
	}
}

func TestRevokeDirtiesLinkFromAgain(t *testing.T) {
	g, _ := Build(paperStore(t))
	g.MarkMigrated("/D.html", "server2:80")
	g.ClearDirty("/B.html")
	g.ClearDirty("/E.html")
	dirtied, err := g.MarkRevoked("/D.html")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dirtied, []string{"/B.html", "/E.html"}) {
		t.Fatalf("dirtied = %v", dirtied)
	}
	if loc, _ := g.Location("/D.html"); loc != "" {
		t.Fatalf("Location after revoke = %q", loc)
	}
}

func TestHitsAndWindow(t *testing.T) {
	g, _ := Build(paperStore(t))
	for i := 0; i < 7; i++ {
		g.RecordHit("/C.html")
	}
	c, _ := g.Get("/C.html")
	if c.Hits != 7 || c.WindowHits != 7 {
		t.Fatalf("Hits = %d, WindowHits = %d", c.Hits, c.WindowHits)
	}
	g.RollWindow()
	g.RecordHit("/C.html")
	c, _ = g.Get("/C.html")
	if c.Hits != 8 || c.WindowHits != 1 {
		t.Fatalf("after roll: Hits = %d, WindowHits = %d", c.Hits, c.WindowHits)
	}
}

func TestRecordHitUnknownDocCreatesTuple(t *testing.T) {
	g := New()
	g.RecordHit("/surprise.html")
	d, err := g.Get("/surprise.html")
	if err != nil || d.Hits != 1 {
		t.Fatalf("Get = %+v, %v", d, err)
	}
}

func TestEntryPoint(t *testing.T) {
	g, _ := Build(paperStore(t))
	if err := g.SetEntryPoint("/A.html", true); err != nil {
		t.Fatal(err)
	}
	a, _ := g.Get("/A.html")
	if !a.EntryPoint {
		t.Fatal("entry point flag not set")
	}
	if err := g.SetEntryPoint("/missing.html", true); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("err = %v", err)
	}
}

func TestMarkMigratedUnknownDoc(t *testing.T) {
	g := New()
	if _, err := g.MarkMigrated("/ghost.html", "x:1"); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("err = %v", err)
	}
}

func TestMigratedMap(t *testing.T) {
	g, _ := Build(paperStore(t))
	g.MarkMigrated("/D.html", "s2:80")
	g.MarkMigrated("/C.html", "s3:80")
	got := g.Migrated()
	want := map[string]string{"/D.html": "s2:80", "/C.html": "s3:80"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Migrated = %v", got)
	}
}

func TestRemoteLinkFromCount(t *testing.T) {
	g, _ := Build(paperStore(t))
	// D is linked from B and E; initially both local.
	n, err := g.RemoteLinkFromCount("/D.html")
	if err != nil || n != 0 {
		t.Fatalf("count = %d, %v", n, err)
	}
	g.MarkMigrated("/E.html", "s2:80")
	n, _ = g.RemoteLinkFromCount("/D.html")
	if n != 1 {
		t.Fatalf("count after E migrates = %d, want 1", n)
	}
}

func TestAddDocReplacesLinks(t *testing.T) {
	g, _ := Build(paperStore(t))
	// B now links only to C.
	g.AddDoc("/B.html", 40, []byte(`<a href="/C.html">C</a>`))
	b, _ := g.Get("/B.html")
	if !reflect.DeepEqual(b.LinkTo, []string{"/C.html"}) {
		t.Fatalf("B.LinkTo = %v", b.LinkTo)
	}
	d, _ := g.Get("/D.html")
	for _, from := range d.LinkFrom {
		if from == "/B.html" {
			t.Fatal("stale LinkFrom entry for B on D")
		}
	}
	c, _ := g.Get("/C.html")
	found := false
	for _, from := range c.LinkFrom {
		if from == "/B.html" {
			found = true
		}
	}
	if !found {
		t.Fatal("new LinkFrom entry missing on C")
	}
	if b.Size != 40 {
		t.Fatalf("size = %d", b.Size)
	}
}

func TestSetSize(t *testing.T) {
	g, _ := Build(paperStore(t))
	g.SetSize("/A.html", 12345)
	a, _ := g.Get("/A.html")
	if a.Size != 12345 {
		t.Fatalf("Size = %d", a.Size)
	}
}

func TestSnapshotSorted(t *testing.T) {
	g, _ := Build(paperStore(t))
	snap := g.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %s >= %s", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestResolveLink(t *testing.T) {
	cases := []struct{ base, raw, want string }{
		{"/a/b.html", "/c.html", "/c.html"},
		{"/a/b.html", "c.html", "/a/c.html"},
		{"/a/b.html", "../c.html", "/c.html"},
		{"/a/b.html", "../../../c.html", "/c.html"}, // cannot escape the root
		{"/b.html", "sub/c.html", "/sub/c.html"},
		{"/b.html", "#frag", ""},
		{"/b.html", "c.html#frag", "/c.html"},
		{"/b.html", "c.html?q=1", "/c.html"},
		{"/b.html", "http://other/x.html", ""},
		{"/b.html", "mailto:x@y", ""},
		{"/b.html", "", ""},
		{"/b.html", "/~migrate/h/80/d.html", ""},
		{"/b.html", "?q=only", ""},
	}
	for _, c := range cases {
		if got := ResolveLink(c.base, c.raw); got != c.want {
			t.Errorf("ResolveLink(%q, %q) = %q, want %q", c.base, c.raw, got, c.want)
		}
	}
}

func TestIsHTML(t *testing.T) {
	for name, want := range map[string]bool{
		"/a.html": true, "/a.HTM": true, "/a.Html": true,
		"/a.gif": false, "/html": false, "/a.html.gif": false,
	} {
		if got := IsHTML(name); got != want {
			t.Errorf("IsHTML(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestDanglingLinksTracked(t *testing.T) {
	s := store.NewMem()
	s.Put("/a.html", []byte(`<a href="/gone.html">missing</a>`))
	g, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Get("/a.html")
	if !reflect.DeepEqual(a.LinkTo, []string{"/gone.html"}) {
		t.Fatalf("LinkTo = %v", a.LinkTo)
	}
	// The dangling target exists as a node with zero size.
	gone, err := g.Get("/gone.html")
	if err != nil || gone.Size != 0 {
		t.Fatalf("dangling node = %+v, %v", gone, err)
	}
}

func TestSelfLinksIgnored(t *testing.T) {
	s := store.NewMem()
	s.Put("/a.html", []byte(`<a href="/a.html">self</a>`))
	g, _ := Build(s)
	a, _ := g.Get("/a.html")
	if len(a.LinkTo) != 0 {
		t.Fatalf("self link recorded: %v", a.LinkTo)
	}
}

// Property: LinkTo and LinkFrom are mutual inverses for any generated site.
func TestLinkInversionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := store.NewMem()
		n := 2 + rng.Intn(12)
		for i := 0; i < n; i++ {
			var body string
			for j := 0; j < rng.Intn(4); j++ {
				body += fmt.Sprintf(`<a href="/doc%d.html">x</a>`, rng.Intn(n))
			}
			s.Put(fmt.Sprintf("/doc%d.html", i), []byte("<html>"+body+"</html>"))
		}
		g, err := Build(s)
		if err != nil {
			return false
		}
		docs := g.Snapshot()
		byName := make(map[string]Doc, len(docs))
		for _, d := range docs {
			byName[d.Name] = d
		}
		for _, d := range docs {
			for _, to := range d.LinkTo {
				if !contains(byName[to].LinkFrom, d.Name) {
					return false
				}
			}
			for _, from := range d.LinkFrom {
				if !contains(byName[from].LinkTo, d.Name) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: migrating any document dirties exactly its LinkFrom set.
func TestMigrationDirtySetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := store.NewMem()
		n := 2 + rng.Intn(10)
		for i := 0; i < n; i++ {
			var body string
			for j := 0; j < rng.Intn(4); j++ {
				body += fmt.Sprintf(`<a href="/doc%d.html">x</a>`, rng.Intn(n))
			}
			s.Put(fmt.Sprintf("/doc%d.html", i), []byte(body))
		}
		g, err := Build(s)
		if err != nil {
			return false
		}
		victim := fmt.Sprintf("/doc%d.html", rng.Intn(n))
		before, _ := g.Get(victim)
		dirtied, err := g.MarkMigrated(victim, "coop:1")
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(dirtied, before.LinkFrom) {
			return false
		}
		for _, d := range g.Snapshot() {
			if d.Dirty != contains(before.LinkFrom, d.Name) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
