package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// snapshotVersion versions the binary LDG snapshot encoding below.
const snapshotVersion = 1

// EncodeSnapshot serializes the full graph — tuples, link structure,
// generations — into a compact binary form for the durable tier's
// snapshots. LinkFrom is not encoded: it is the exact inverse of LinkTo
// and is rebuilt by DecodeSnapshot.
//
// Layout: [version u8][count uvarint] then per document (sorted by name):
// name, location (uvarint-length-prefixed strings), size, hits, gen
// (uvarints), flags u8 (bit0 dirty, bit1 entryPoint), linkTo count +
// targets.
func (g *LDG) EncodeSnapshot() []byte {
	g.mu.RLock()
	defer g.mu.RUnlock()
	names := make([]string, 0, len(g.docs))
	for n := range g.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 64*len(names)+16)
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		e := g.docs[n]
		buf = appendString(buf, e.name)
		buf = appendString(buf, e.location)
		buf = binary.AppendUvarint(buf, uint64(e.size))
		buf = binary.AppendUvarint(buf, uint64(e.hits))
		buf = binary.AppendUvarint(buf, e.gen)
		var flags byte
		if e.dirty {
			flags |= 1
		}
		if e.entryPoint {
			flags |= 2
		}
		buf = append(buf, flags)
		targets := sortedKeys(e.linkTo)
		buf = binary.AppendUvarint(buf, uint64(len(targets)))
		for _, to := range targets {
			buf = appendString(buf, to)
		}
	}
	return buf
}

// DecodeSnapshot rebuilds a graph from EncodeSnapshot output, restoring
// LinkFrom as the inverse of the encoded LinkTo sets. WindowHits starts at
// zero: a restarted server begins a fresh measurement window.
func DecodeSnapshot(data []byte) (*LDG, error) {
	if len(data) == 0 {
		return nil, errors.New("graph: empty snapshot")
	}
	if data[0] != snapshotVersion {
		return nil, fmt.Errorf("graph: snapshot version %d unsupported", data[0])
	}
	data = data[1:]
	count, data, err := readUvarint(data)
	if err != nil {
		return nil, err
	}
	g := New()
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := uint64(0); i < count; i++ {
		var name, location string
		name, data, err = readString(data)
		if err != nil {
			return nil, fmt.Errorf("graph: snapshot doc %d: %w", i, err)
		}
		location, data, err = readString(data)
		if err != nil {
			return nil, err
		}
		var size, hits, gen uint64
		if size, data, err = readUvarint(data); err != nil {
			return nil, err
		}
		if hits, data, err = readUvarint(data); err != nil {
			return nil, err
		}
		if gen, data, err = readUvarint(data); err != nil {
			return nil, err
		}
		if len(data) < 1 {
			return nil, errors.New("graph: snapshot truncated at flags")
		}
		flags := data[0]
		data = data[1:]
		e := g.ensureLocked(name)
		e.location = location
		e.size = int64(size)
		e.hits = int64(hits)
		e.gen = gen
		e.dirty = flags&1 != 0
		e.entryPoint = flags&2 != 0
		var nLinks uint64
		if nLinks, data, err = readUvarint(data); err != nil {
			return nil, err
		}
		for j := uint64(0); j < nLinks; j++ {
			var to string
			if to, data, err = readString(data); err != nil {
				return nil, err
			}
			g.linkLocked(name, to)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("graph: %d trailing snapshot bytes", len(data))
	}
	return g, nil
}

// Remove deletes name's tuple and every link edge touching it, dirtying
// the documents that linked to it (their hyperlinks now point at a missing
// target). Used when replaying a document delete. It returns the dirtied
// names; removing an unknown document is a no-op.
func (g *LDG) Remove(name string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.docs[name]
	if !ok {
		return nil
	}
	var dirtied []string
	for to := range e.linkTo {
		if te, ok := g.docs[to]; ok {
			delete(te.linkFrom, name)
		}
	}
	for from := range e.linkFrom {
		if fe, ok := g.docs[from]; ok {
			delete(fe.linkTo, name)
			fe.dirty = true
			fe.gen++
			dirtied = append(dirtied, from)
		}
	}
	delete(g.docs, name)
	sort.Strings(dirtied)
	return dirtied
}

// RestoreHome resets name's location to home without dirtying neighbours —
// the recovery path uses it when a replayed migration's co-op is known to
// have been revoked while this server was down.
func (g *LDG) RestoreHome(name string) {
	g.mu.Lock()
	if e, ok := g.docs[name]; ok && e.location != "" {
		e.location = ""
		e.gen++
	}
	g.mu.Unlock()
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, errors.New("graph: snapshot truncated at uvarint")
	}
	return v, data[n:], nil
}

func readString(data []byte) (string, []byte, error) {
	n, data, err := readUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(data)) < n {
		return "", nil, errors.New("graph: snapshot truncated at string")
	}
	return string(data[:n]), data[n:], nil
}
