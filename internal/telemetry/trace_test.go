package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRingWraparoundIndex drives the ring through several full wraps and
// checks the by-trace index against a straight scan of the snapshot: every
// trace must yield exactly its retained spans, oldest first, and traces
// fully overwritten must vanish from the index.
func TestRingWraparoundIndex(t *testing.T) {
	r := NewRing(8)
	traces := []string{"t-a", "t-b", "t-c"}
	for i := 0; i < 20; i++ {
		sp := NewSpan(traces[i%len(traces)], "", "srv", "op")
		sp.Target = fmt.Sprintf("/doc/%d", i)
		r.Record(sp)
	}
	if got := r.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("Snapshot retains %d spans, want 8", len(snap))
	}
	for _, tr := range traces {
		var want []string
		for _, sp := range snap {
			if sp.TraceID == tr {
				want = append(want, sp.Target)
			}
		}
		got := r.ByTrace(tr)
		if len(got) != len(want) {
			t.Fatalf("ByTrace(%q) = %d spans, want %d", tr, len(got), len(want))
		}
		for i, sp := range got {
			if sp.TraceID != tr || sp.Target != want[i] {
				t.Fatalf("ByTrace(%q)[%d] = {%s %s}, want target %s",
					tr, i, sp.TraceID, sp.Target, want[i])
			}
		}
	}
	// A trace whose spans were all overwritten must be gone from the index.
	r2 := NewRing(4)
	r2.Record(NewSpan("gone", "", "srv", "op"))
	for i := 0; i < 4; i++ {
		r2.Record(NewSpan("keep", "", "srv", "op"))
	}
	if got := r2.ByTrace("gone"); got != nil {
		t.Fatalf("ByTrace of overwritten trace = %v, want nil", got)
	}
	if got := len(r2.ByTrace("keep")); got != 4 {
		t.Fatalf("ByTrace(keep) = %d spans, want 4", got)
	}
}

// TestRingPerTraceBound: one trace recording far more spans than
// MaxTraceSpans keeps only the newest MaxTraceSpans entries in its index —
// a retry storm reusing one ID cannot grow the index without bound.
func TestRingPerTraceBound(t *testing.T) {
	r := NewRing(MaxTraceSpans * 4)
	n := MaxTraceSpans + 50
	for i := 0; i < n; i++ {
		sp := NewSpan("storm", "", "srv", "op")
		sp.Target = fmt.Sprintf("/doc/%d", i)
		r.Record(sp)
	}
	got := r.ByTrace("storm")
	if len(got) != MaxTraceSpans {
		t.Fatalf("ByTrace = %d spans, want the MaxTraceSpans bound %d", len(got), MaxTraceSpans)
	}
	// The retained window is the newest MaxTraceSpans spans, oldest first.
	for i, sp := range got {
		want := fmt.Sprintf("/doc/%d", n-MaxTraceSpans+i)
		if sp.Target != want {
			t.Fatalf("ByTrace[%d].Target = %s, want %s", i, sp.Target, want)
		}
	}
}

// TestRingConcurrentSoak hammers one small ring from writer and reader
// goroutines so it wraps constantly while snapshots and index lookups run;
// under -race this doubles as the data-race soak for the index
// maintenance in Record/unindex.
func TestRingConcurrentSoak(t *testing.T) {
	r := NewRing(16)
	traces := []string{"t-0", "t-1", "t-2", "t-3"}
	const writers, readers, perWriter = 4, 4, 500
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				sp := NewSpan(traces[(id+j)%len(traces)], "", "srv", "op")
				sp.Duration = time.Duration(j)
				r.Record(sp)
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if snap := r.Snapshot(); len(snap) > 16 {
					t.Errorf("snapshot exceeds capacity: %d", len(snap))
					return
				}
				for _, tr := range traces {
					for _, sp := range r.ByTrace(tr) {
						if sp.TraceID != tr {
							t.Errorf("ByTrace(%q) returned span of trace %q", tr, sp.TraceID)
							return
						}
					}
				}
			}
		}(i)
	}
	// Readers run until every writer's span is recorded, so lookups overlap
	// wraparound the whole time.
	for r.Total() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()

	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	if snap := r.Snapshot(); len(snap) != 16 {
		t.Fatalf("retained %d spans, want full capacity 16", len(snap))
	}
}
