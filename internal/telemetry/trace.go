package telemetry

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the DCWS extension header carrying a request's trace ID
// between cooperating servers. Like X-DCWS-Load it rides on ordinary HTTP
// messages (§3.3 piggybacking); servers that do not understand it ignore
// it, and clients may supply their own ID to correlate with external
// systems.
const TraceHeader = "X-DCWS-Trace"

// ParentHeader carries the caller's span ID on inter-server RPCs, so the
// remote server records its span as a child and a cross-node trace
// assembles into one tree.
const ParentHeader = "X-DCWS-Parent"

// tracePrefix is a per-process random component so trace IDs minted by
// different servers never collide; traceSeq disambiguates within the
// process without a syscall per request.
var (
	tracePrefix = func() string {
		var b [6]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Degraded mode: IDs stay unique within the process.
			return "00dcws000000"
		}
		return hex.EncodeToString(b[:])
	}()
	traceSeq atomic.Uint64
	spanSeq  atomic.Uint64
)

// NewTraceID mints a process-unique trace identifier: a random per-process
// prefix plus a sequence number.
func NewTraceID() string {
	return fmt.Sprintf("%s-%06x", tracePrefix, traceSeq.Add(1))
}

// NewSpanID mints a span identifier unique across the cluster: the same
// per-process random prefix keeps IDs from different servers of one trace
// distinct when the spans are stitched together.
func NewSpanID() string {
	return fmt.Sprintf("%s.%06x", tracePrefix, spanSeq.Add(1))
}

// Span is one hop of a request's path through the cluster: a server either
// serving a request (server-side span) or issuing an inter-server RPC
// (client-side span). Spans sharing a TraceID describe one logical client
// request followed hop by hop; ParentID links them into a tree.
type Span struct {
	// TraceID groups the spans of one logical request.
	TraceID string `json:"trace_id"`
	// ID identifies this span within its trace (cluster-unique).
	ID string `json:"id,omitempty"`
	// ParentID is the ID of the span that caused this one: the serve span
	// for RPCs it issued, the calling RPC span for the remote serve span.
	// Empty for roots.
	ParentID string `json:"parent_id,omitempty"`
	// Server is the address of the server that recorded the span.
	Server string `json:"server"`
	// Op names the operation: serve-home, serve-coop, serve-fetch,
	// fetch-home, validate, revoke-rpc, probe, ...
	Op string `json:"op"`
	// Target is the document path or control endpoint involved.
	Target string `json:"target,omitempty"`
	// Peer is the remote server for client-side RPC spans.
	Peer string `json:"peer,omitempty"`
	// Status is the HTTP status observed (0 when the RPC never completed).
	Status int `json:"status,omitempty"`
	// Err is the failure, for spans that ended in one.
	Err string `json:"err,omitempty"`
	// Attempts counts RPC tries including the first (client-side spans
	// under retry); 0 means not applicable.
	Attempts int `json:"attempts,omitempty"`
	// Start is the span's start on the recording server's clock.
	Start time.Time `json:"start"`
	// Duration is the span's measured wall-clock duration.
	Duration time.Duration `json:"duration_ns"`
}

// NewSpan starts a span: mints an ID and stamps the parent. The caller
// fills in outcome fields (Status, Err, Duration, ...) before recording.
func NewSpan(traceID, parentID, server, op string) Span {
	return Span{TraceID: traceID, ID: NewSpanID(), ParentID: parentID, Server: server, Op: op}
}

// Child starts a child span of s on the same server, for a sub-operation
// the recording server performs itself (e.g. a recovery phase).
func (s Span) Child(op string) Span {
	return Span{TraceID: s.TraceID, ID: NewSpanID(), ParentID: s.ID, Server: s.Server, Op: op}
}

// MaxTraceSpans bounds how many spans of a single trace the ring indexes:
// a pathological trace (e.g. a retry storm reusing one ID) cannot grow its
// index entry without bound. Older spans of the trace stay in the ring
// buffer but drop out of the by-trace index.
const MaxTraceSpans = 128

// Ring is a bounded, concurrency-safe buffer of recent spans. When full,
// new spans overwrite the oldest — memory stays constant no matter how
// long the server runs. A trace-ID index is maintained on every record and
// overwrite, so ByTrace is O(spans of that trace), not O(capacity).
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	total int64
	index map[string][]int
}

// DefaultRingSize is the span capacity used when none is configured.
const DefaultRingSize = 512

// NewRing returns a ring holding up to capacity spans (DefaultRingSize
// when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]Span, capacity), index: make(map[string][]int)}
}

// Record appends one span, overwriting the oldest when full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	slot := r.next
	if r.full {
		r.unindex(r.buf[slot].TraceID, slot)
	}
	r.buf[slot] = s
	if s.TraceID != "" {
		slots := r.index[s.TraceID]
		if len(slots) >= MaxTraceSpans {
			// Bound the per-trace index: forget the trace's oldest span.
			copy(slots, slots[1:])
			slots = slots[:len(slots)-1]
		}
		r.index[s.TraceID] = append(slots, slot)
	}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// unindex removes one slot from a trace's index entry, preserving order.
// The slot may already be absent when the per-trace bound evicted it.
func (r *Ring) unindex(trace string, slot int) {
	if trace == "" {
		return
	}
	slots := r.index[trace]
	for i, sl := range slots {
		if sl == slot {
			copy(slots[i:], slots[i+1:])
			slots = slots[:len(slots)-1]
			break
		}
	}
	if len(slots) == 0 {
		delete(r.index, trace)
	} else {
		r.index[trace] = slots
	}
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// ByTrace returns the retained spans of one trace, oldest first, via the
// index — O(spans of the trace) under the lock.
func (r *Ring) ByTrace(id string) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	slots := r.index[id]
	if len(slots) == 0 {
		return nil
	}
	out := make([]Span, len(slots))
	for i, sl := range slots {
		out[i] = r.buf[sl]
	}
	return out
}

// Total reports how many spans were ever recorded, including overwritten
// ones.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
