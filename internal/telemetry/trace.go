package telemetry

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the DCWS extension header carrying a request's trace ID
// between cooperating servers. Like X-DCWS-Load it rides on ordinary HTTP
// messages (§3.3 piggybacking); servers that do not understand it ignore
// it, and clients may supply their own ID to correlate with external
// systems.
const TraceHeader = "X-DCWS-Trace"

// tracePrefix is a per-process random component so trace IDs minted by
// different servers never collide; traceSeq disambiguates within the
// process without a syscall per request.
var (
	tracePrefix = func() string {
		var b [6]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Degraded mode: IDs stay unique within the process.
			return "00dcws000000"
		}
		return hex.EncodeToString(b[:])
	}()
	traceSeq atomic.Uint64
)

// NewTraceID mints a process-unique trace identifier: a random per-process
// prefix plus a sequence number.
func NewTraceID() string {
	return fmt.Sprintf("%s-%06x", tracePrefix, traceSeq.Add(1))
}

// Span is one hop of a request's path through the cluster: a server either
// serving a request (server-side span) or issuing an inter-server RPC
// (client-side span). Spans sharing a TraceID describe one logical client
// request followed hop by hop.
type Span struct {
	// TraceID groups the spans of one logical request.
	TraceID string `json:"trace_id"`
	// Server is the address of the server that recorded the span.
	Server string `json:"server"`
	// Op names the operation: serve-home, serve-coop, serve-fetch,
	// fetch-home, validate, revoke-rpc, probe, ...
	Op string `json:"op"`
	// Target is the document path or control endpoint involved.
	Target string `json:"target,omitempty"`
	// Peer is the remote server for client-side RPC spans.
	Peer string `json:"peer,omitempty"`
	// Status is the HTTP status observed (0 when the RPC never completed).
	Status int `json:"status,omitempty"`
	// Err is the failure, for spans that ended in one.
	Err string `json:"err,omitempty"`
	// Attempts counts RPC tries including the first (client-side spans
	// under retry); 0 means not applicable.
	Attempts int `json:"attempts,omitempty"`
	// Start is the span's start on the recording server's clock.
	Start time.Time `json:"start"`
	// Duration is the span's measured wall-clock duration.
	Duration time.Duration `json:"duration_ns"`
}

// Ring is a bounded, concurrency-safe buffer of recent spans. When full,
// new spans overwrite the oldest — memory stays constant no matter how
// long the server runs.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	total int64
}

// DefaultRingSize is the span capacity used when none is configured.
const DefaultRingSize = 512

// NewRing returns a ring holding up to capacity spans (DefaultRingSize
// when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]Span, capacity)}
}

// Record appends one span, overwriting the oldest when full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// ByTrace returns the retained spans of one trace, oldest first.
func (r *Ring) ByTrace(id string) []Span {
	var out []Span
	for _, s := range r.Snapshot() {
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	return out
}

// Total reports how many spans were ever recorded, including overwritten
// ones.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
