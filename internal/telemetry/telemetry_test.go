package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dcws_test_total", "a test counter")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("Value = %d", c.Value())
	}
	// Same name+labels returns the same counter.
	if r.Counter("dcws_test_total", "a test counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	labeled := r.Counter("dcws_code_total", "per-code", Label{"code", "200"})
	labeled.Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dcws_test_total a test counter\n",
		"# TYPE dcws_test_total counter\n",
		"dcws_test_total 3\n",
		`dcws_code_total{code="200"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	depth := 7
	r.GaugeFunc("dcws_queue_depth", "queued connections", func() float64 { return float64(depth) })
	r.CounterFunc("dcws_ext_total", "promoted counter", func() float64 { return 42 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dcws_queue_depth 7\n") || !strings.Contains(out, "dcws_ext_total 42\n") {
		t.Fatalf("exposition:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE dcws_queue_depth gauge\n") {
		t.Fatalf("gauge type missing:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dcws_latency_seconds", "request latency", Label{"kind", "home"})
	h.Observe(3 * time.Microsecond)   // bucket 1, le 4e-06
	h.Observe(100 * time.Microsecond) // bucket 6, le 1.28e-04
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dcws_latency_seconds histogram\n",
		`dcws_latency_seconds_bucket{kind="home",le="4e-06"} 1` + "\n",
		`dcws_latency_seconds_bucket{kind="home",le="+Inf"} 2` + "\n",
		`dcws_latency_seconds_count{kind="home"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "dcws_latency_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < last {
			t.Fatalf("non-monotone buckets:\n%s", out)
		}
		last = v
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	r.Collector("dcws_peer_state", "per-peer breaker state", "gauge", func() []Sample {
		return []Sample{
			{Labels: []Label{{"peer", "b:81"}}, Value: 2},
			{Labels: []Label{{"peer", "a:80"}}, Value: 0},
		}
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ai := strings.Index(out, `dcws_peer_state{peer="a:80"} 0`)
	bi := strings.Index(out, `dcws_peer_state{peer="b:81"} 2`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("collector samples missing or unsorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcws_esc_total", "escape test", Label{"path", "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `dcws_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped label missing %q:\n%s", want, buf.String())
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcws_conflict", "as counter")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type conflict")
		}
	}()
	r.GaugeFunc("dcws_conflict", "as gauge", func() float64 { return 0 })
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("dcws_conc_total", "concurrent").Inc()
				r.Histogram("dcws_conc_seconds", "concurrent").Observe(time.Microsecond)
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("dcws_conc_total", "concurrent").Value(); got != 800 {
		t.Fatalf("counter = %d", got)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty trace id %q", id)
		}
		seen[id] = true
	}
}

func TestRingWrapAndByTrace(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Record(Span{TraceID: fmt.Sprintf("t%d", i%2), Op: fmt.Sprintf("op%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len(snapshot) = %d", len(snap))
	}
	// Oldest retained span is op2 (op0, op1 overwritten).
	if snap[0].Op != "op2" || snap[3].Op != "op5" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d", r.Total())
	}
	t0 := r.ByTrace("t0")
	if len(t0) != 2 || t0[0].Op != "op2" || t0[1].Op != "op4" {
		t.Fatalf("ByTrace = %+v", t0)
	}
}

func TestSeriesLimitCapsCollector(t *testing.T) {
	r := NewRegistry()
	r.Collector("dcws_peer_gauge", "per-peer view", "gauge", func() []Sample {
		out := make([]Sample, 0, 256)
		for i := 0; i < 256; i++ {
			out = append(out, Sample{
				Labels: []Label{{"peer", fmt.Sprintf("peer-%03d", i)}},
				Value:  float64(i),
			})
		}
		return out
	})
	r.SetSeriesLimit(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "dcws_peer_gauge{"); got != 10 {
		t.Fatalf("emitted %d series, want 10:\n%s", got, out)
	}
	// Truncation is deterministic: sorted label order keeps the first ten.
	if !strings.Contains(out, `dcws_peer_gauge{peer="peer-009"}`) ||
		strings.Contains(out, `dcws_peer_gauge{peer="peer-010"}`) {
		t.Fatalf("wrong series survived the cap:\n%s", out)
	}
	if !strings.Contains(out, `telemetry_series_dropped_total{family="dcws_peer_gauge"} 246`+"\n") {
		t.Fatalf("dropped meta-counter missing:\n%s", out)
	}

	// The counter is cumulative across scrapes.
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `telemetry_series_dropped_total{family="dcws_peer_gauge"} 492`+"\n") {
		t.Fatalf("dropped counter not cumulative:\n%s", buf.String())
	}
}

func TestSeriesLimitCapsStaticSeries(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		r.Counter("dcws_labeled_total", "static series", Label{"i", fmt.Sprintf("%d", i)}).Inc()
	}
	r.SetSeriesLimit(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "dcws_labeled_total{"); got != 3 {
		t.Fatalf("emitted %d series, want 3:\n%s", got, out)
	}
	if !strings.Contains(out, `telemetry_series_dropped_total{family="dcws_labeled_total"} 2`+"\n") {
		t.Fatalf("dropped meta-counter missing:\n%s", out)
	}
	// Removing the cap restores every series; the cumulative count remains.
	r.SetSeriesLimit(0)
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if got := strings.Count(out, "dcws_labeled_total{"); got != 5 {
		t.Fatalf("emitted %d series after uncapping, want 5:\n%s", got, out)
	}
	if !strings.Contains(out, `telemetry_series_dropped_total{family="dcws_labeled_total"} 2`+"\n") {
		t.Fatalf("cumulative dropped count lost:\n%s", out)
	}
}
