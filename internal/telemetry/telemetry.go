// Package telemetry is the cluster-wide observability layer: a
// concurrency-safe registry of named metric families (counters, gauges,
// and the power-of-two histograms of internal/metrics promoted behind a
// shared interface), rendered in the Prometheus text exposition format by
// a hand-rolled writer, plus lightweight request tracing (trace IDs
// carried between servers on the X-DCWS-Trace extension header and a
// bounded in-memory ring of recent spans).
//
// The paper names connections/sec, bytes/sec, and round-trip time the
// canonical web-server metrics (§5.2–5.3) but measures them only offline
// in the simulator; this package makes the live serving path report them
// continuously, the same way the load-balancing design itself depends on
// continuously observed per-server statistics (§3.3).
package telemetry

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dcws/internal/metrics"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Sample is one series emitted by a Collector: a label set and a value.
type Sample struct {
	Labels []Label
	Value  float64
}

// Counter is a registry-owned monotone counter. The zero value is unusable;
// obtain counters from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("telemetry: negative Counter.Add")
	}
	c.v.Add(delta)
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// series is one (label set, backing value) pair inside a family.
type series struct {
	labelKey string // canonical rendered label block, "" for unlabeled
	labels   []Label
	counter  *Counter           // typ counter, registry-owned
	fn       func() float64     // typ counter/gauge, caller-backed
	hist     *metrics.Histogram // typ histogram
}

// family is one named metric family; every series in it shares the type.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	series  []*series
	byKey   map[string]*series
	collect func() []Sample // dynamic families (per-peer, per-server views)
}

// Registry holds metric families and renders them for scraping. All methods
// are safe for concurrent use.
type Registry struct {
	mu          sync.Mutex
	families    []*family
	byName      map[string]*family
	seriesLimit int              // per-family cap at scrape time; <=0 is uncapped
	dropped     map[string]int64 // cumulative series dropped, by family name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family), dropped: make(map[string]int64)}
}

// SetSeriesLimit caps how many series any single family may emit per scrape.
// Dynamic families (per-peer, per-server collectors) grow with cluster size;
// the cap keeps one runaway family from blowing up scrape cost at hundreds
// of peers. Series past the cap are dropped in render order and counted in
// the telemetry_series_dropped_total meta-family. n <= 0 removes the cap.
func (r *Registry) SetSeriesLimit(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesLimit = n
}

// family returns the named family, creating it with the given type, or
// panics when the name is reused with a different type or invalid — both
// are programming errors a test catches immediately.
func (r *Registry) family(name, help, typ string) *family {
	if !validMetricName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.families = append(r.families, f)
		r.byName[name] = f
		return f
	}
	if f.typ != typ {
		panic("telemetry: metric " + name + " registered as " + f.typ + " and " + typ)
	}
	return f
}

// Counter returns the counter series for name+labels, registering the
// family (and the series) on first use. Repeated calls with the same name
// and labels return the same *Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	key := renderLabels(labels)
	if s, ok := f.byKey[key]; ok {
		if s.counter == nil {
			panic("telemetry: metric " + name + key + " is not a plain counter")
		}
		return s.counter
	}
	s := &series{labelKey: key, labels: labels, counter: &Counter{}}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s.counter
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the way existing counters elsewhere in the system (for
// example metrics.ServerStats) are promoted into the registry without
// being rewritten.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, "counter", fn, labels)
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time (queue depths, cache sizes, table lengths).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, "gauge", fn, labels)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labels []Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	key := renderLabels(labels)
	if _, ok := f.byKey[key]; ok {
		panic("telemetry: metric " + name + key + " registered twice")
	}
	s := &series{labelKey: key, labels: labels, fn: fn}
	f.series = append(f.series, s)
	f.byKey[key] = s
}

// Histogram returns the histogram series for name+labels, registering it
// on first use. The returned histogram is the ordinary power-of-two
// internal/metrics.Histogram; callers Observe durations on it directly.
func (r *Registry) Histogram(name, help string, labels ...Label) *metrics.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	key := renderLabels(labels)
	if s, ok := f.byKey[key]; ok {
		if s.hist == nil {
			panic("telemetry: metric " + name + key + " is not a histogram")
		}
		return s.hist
	}
	s := &series{labelKey: key, labels: labels, hist: &metrics.Histogram{}}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s.hist
}

// Collector registers a dynamic family: fn is called at scrape time and
// may return a different series set on every scrape (per-peer breaker
// states, per-server load-table entries). typ must be "counter" or
// "gauge".
func (r *Registry) Collector(name, help, typ string, fn func() []Sample) {
	if typ != "counter" && typ != "gauge" {
		panic("telemetry: collector " + name + " must be counter or gauge, got " + typ)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	if f.collect != nil || len(f.series) > 0 {
		panic("telemetry: collector " + name + " registered twice")
	}
	f.collect = fn
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): "# HELP" and "# TYPE" comments followed by one
// sample line per series, histograms expanded into cumulative _bucket /
// _sum / _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	limit := r.seriesLimit
	r.mu.Unlock()

	droppedNow := make(map[string]int64)
	var buf []byte
	for _, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')

		// budget counts emitted series within this family; each histogram
		// counts once, not per bucket line. Collector samples render first
		// (sorted, so truncation is deterministic), then static series.
		budget := limit
		if budget <= 0 {
			budget = int(^uint(0) >> 1)
		}
		if f.collect != nil {
			samples := f.collect()
			sort.Slice(samples, func(i, j int) bool {
				return renderLabels(samples[i].Labels) < renderLabels(samples[j].Labels)
			})
			if len(samples) > budget {
				droppedNow[f.name] += int64(len(samples) - budget)
				samples = samples[:budget]
			}
			budget -= len(samples)
			for _, s := range samples {
				buf = appendSample(buf, f.name, renderLabels(s.Labels), s.Value)
			}
		}
		for _, s := range f.series {
			if budget == 0 {
				droppedNow[f.name]++
				continue
			}
			budget--
			switch {
			case s.hist != nil:
				buf = appendHistogram(buf, f.name, s.labels, s.hist.Snapshot())
			case s.counter != nil:
				buf = appendSample(buf, f.name, s.labelKey, float64(s.counter.Value()))
			case s.fn != nil:
				buf = appendSample(buf, f.name, s.labelKey, s.fn())
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}

	// Fold this scrape's drops into the cumulative per-family counts, then
	// render the meta-family (itself uncapped: it is bounded by the number
	// of registered families, not by cluster size).
	r.mu.Lock()
	for name, n := range droppedNow {
		r.dropped[name] += n
	}
	names := make([]string, 0, len(r.dropped))
	for name := range r.dropped {
		names = append(names, name)
	}
	counts := make([]int64, len(names))
	sort.Strings(names)
	for i, name := range names {
		counts[i] = r.dropped[name]
	}
	r.mu.Unlock()

	if len(names) > 0 {
		buf = buf[:0]
		buf = append(buf, "# HELP telemetry_series_dropped_total series dropped at scrape time by the per-family series limit\n"...)
		buf = append(buf, "# TYPE telemetry_series_dropped_total counter\n"...)
		for i, name := range names {
			key := renderLabels([]Label{{Key: "family", Value: name}})
			buf = appendSample(buf, "telemetry_series_dropped_total", key, float64(counts[i]))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendSample renders one "name{labels} value" line.
func appendSample(buf []byte, name, labelKey string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, labelKey...)
	buf = append(buf, ' ')
	buf = appendValue(buf, v)
	return append(buf, '\n')
}

// appendHistogram renders the cumulative bucket series of one histogram.
// Buckets are emitted up to the highest occupied power-of-two bound plus
// the mandatory +Inf bucket; _sum is in seconds per Prometheus convention.
// A bucket carrying an exemplar gets an OpenMetrics-style suffix
// ("... # {trace_id=\"x\"} value") linking the bucket to a concrete trace;
// parsers of the plain 0.0.4 format that split on the last space must
// strip the " # {...}" tail first (dcwsctl metrics -check does).
func appendHistogram(buf []byte, name string, labels []Label, snap metrics.HistogramSnapshot) []byte {
	top := -1
	for i, n := range snap.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += snap.Buckets[i]
		le := float64(uint64(1)<<uint(i+1)) / 1e6 // bucket upper bound in seconds
		buf = append(buf, name...)
		buf = append(buf, "_bucket"...)
		buf = append(buf, renderLabels(append(append([]Label(nil), labels...), Label{"le", formatFloat(le)}))...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, cum, 10)
		if ex := snap.Exemplars[i]; ex.TraceID != "" {
			buf = append(buf, " # {trace_id=\""...)
			buf = appendEscapedValue(buf, ex.TraceID)
			buf = append(buf, "\"} "...)
			buf = appendValue(buf, ex.Value.Seconds())
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_bucket"...)
	buf = append(buf, renderLabels(append(append([]Label(nil), labels...), Label{"le", "+Inf"}))...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, snap.Count, 10)
	buf = append(buf, '\n')

	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = append(buf, renderLabels(labels)...)
	buf = append(buf, ' ')
	buf = appendValue(buf, snap.Sum.Seconds())
	buf = append(buf, '\n')

	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = append(buf, renderLabels(labels)...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, snap.Count, 10)
	return append(buf, '\n')
}

func appendValue(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels produces the canonical "{k=\"v\",...}" block, or "" for an
// empty label set. Keys are sorted so equal label sets render identically.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var buf []byte
	buf = append(buf, '{')
	for i, l := range sorted {
		if !validLabelName(l.Key) {
			panic("telemetry: invalid label name " + strconv.Quote(l.Key))
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, l.Key...)
		buf = append(buf, '=', '"')
		buf = appendEscapedValue(buf, l.Value)
		buf = append(buf, '"')
	}
	buf = append(buf, '}')
	return string(buf)
}

// appendEscapedValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func appendEscapedValue(buf []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, v[i])
		}
	}
	return buf
}

// appendEscapedHelp escapes HELP text: backslash and newline.
func appendEscapedHelp(buf []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, v[i])
		}
	}
	return buf
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
