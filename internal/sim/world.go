package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/metrics"
)

// Mode selects the load-balancing architecture under test.
type Mode int

// Modes.
const (
	// ModeDCWS is the paper's system: one home server per site, empty
	// co-op servers, hyperlink-rewriting migration.
	ModeDCWS Mode = iota
	// ModeRRDNS is the round-robin DNS baseline (§2, NCSA-style): every
	// server holds a full replica; each client sequence is pinned to one
	// server by its cached DNS answer.
	ModeRRDNS
	// ModeRouter is the centralized TCP router baseline (§2, IBM /
	// LocalDirector-style): all traffic passes through one router that
	// forwards round-robin to full replicas.
	ModeRouter
)

func (m Mode) String() string {
	switch m {
	case ModeDCWS:
		return "DCWS"
	case ModeRRDNS:
		return "RR-DNS"
	case ModeRouter:
		return "Router"
	default:
		return "unknown"
	}
}

// Config describes one simulation run.
type Config struct {
	// Site is the data set served (its entry points are the client start
	// URLs).
	Site *dataset.Site
	// Servers is the total number of server workstations. In ModeDCWS the
	// first hosts the site and the rest start empty; in the baseline modes
	// every server holds a full replica.
	Servers int
	// Clients is the number of simulated client threads.
	Clients int
	// Duration is the virtual time simulated.
	Duration time.Duration
	// SampleEvery is the sampling interval for the CPS/BPS time series
	// (paper: 10 s).
	SampleEvery time.Duration
	// Params are the DCWS tunables (Table 1 defaults when zero).
	Params dcws.Params
	// Cost is the workstation cost model (calibrated defaults when zero).
	Cost CostModel
	// Seed drives every random choice.
	Seed int64
	// Mode selects DCWS or a baseline.
	Mode Mode
	// ThinkTime inserts a pause between client navigation steps (the §6
	// future-work extension; 0 matches the paper's benchmark).
	ThinkTime time.Duration
	// WarmStart pre-places every non-entry-point document round-robin
	// across the server group at t=0 (ModeDCWS only), approximating the
	// converged state the paper's peak-load measurements run in. Cold
	// start (the Figure 8 experiment) leaves everything at home and lets
	// the migration policy spread the load.
	WarmStart bool

	// Sites configures the federated scenario of the paper's conclusion
	// ("integrate a group of independent servers to build a federated web
	// server"): site i is homed on server i, every server is
	// simultaneously a home for its own documents and a potential co-op
	// for the others (§3.3 full symmetry). When set, Site is ignored and
	// Servers is raised to at least len(Sites). ModeDCWS only.
	Sites []*dataset.Site
	// SkewFirst, in a federated run, is the probability that a client
	// sequence targets the first site; the remainder spread uniformly
	// over the other sites. 0 means uniform across all sites.
	SkewFirst float64
	// NoCooperation disables migration entirely (servers never exchange
	// documents) — the isolated-servers baseline the federation
	// experiment compares against.
	NoCooperation bool

	// HeteroSpread makes the server group heterogeneous: the ratio between
	// the fastest workstation's capacity and the slowest's. Server 0 keeps
	// the base cost model and later servers slow down geometrically, so a
	// spread of 4 over 16 servers steps each successive machine ~9.7%
	// slower than its neighbour. 0 or 1 keeps the paper's homogeneous
	// testbed. Capacity-normalized placement (Params.CapacitySmoothing)
	// is what makes the group usable at high spread: raw-load placement
	// sends equal work to unequal machines.
	HeteroSpread float64
}

// Result reports a run's measurements.
type Result struct {
	// CPS and BPS are the client-observed series sampled every
	// SampleEvery.
	CPS *metrics.Series
	BPS *metrics.Series
	// PeakCPS and PeakBPS are the series maxima.
	PeakCPS float64
	PeakBPS float64
	// Totals.
	Connections int64 // successful client transfers
	Bytes       int64
	Drops       int64 // 503s observed by clients
	Redirects   int64 // 301 hops followed by clients
	Errors      int64
	Sequences   int64
	Issued      int64 // client requests issued (conservation check)
	Migrations  int64 // documents migrated, summed over servers
	Revocations int64
	Rebuilds    int64 // dirty-document regenerations
	// ChainPushes / ChainPushBytes count proactive chain-replication
	// disseminations and the bytes uploaded by the documents' home servers
	// for them (one upload per dissemination, however many replicas the
	// chain installs).
	ChainPushes    int64
	ChainPushBytes int64
	// Validations / LeaseSkips / InvalidatePushes mirror the live push
	// invalidation counters: validator polls issued, polls elided under
	// lease cover, and invalidations homes delivered directly to hosted
	// copies. With Params.LeaseDuration zero (the paper's design) the
	// lease and push figures stay zero and Validations counts every poll.
	Validations      int64
	LeaseSkips       int64
	InvalidatePushes int64
	// PerServer maps server address to connections served (balance check).
	PerServer map[string]int64
	// PerServerBytes maps server address to bytes served (the byte-balance
	// view the BPS load metric optimizes).
	PerServerBytes map[string]int64
	// Latency is the client-observed request latency distribution (first
	// byte of request to last byte of response, including queueing,
	// redirect hops, and 503 backoff) — the paper's third metric (RTT,
	// §5.3), measurable here because the simulator sees every edge.
	Latency *metrics.Histogram
}

// ShedRate reports the fraction of resolved client transfers answered 503
// — the figure the SLO shed budget is written against.
func (r Result) ShedRate() float64 {
	total := r.Connections + r.Drops
	if total <= 0 {
		return 0
	}
	return float64(r.Drops) / float64(total)
}

// World is a running simulation.
type World struct {
	cfg    Config
	params dcws.Params
	cost   CostModel

	now   time.Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand

	servers map[string]*simServer
	order   []string
	router  string // non-empty in ModeRouter
	entries []target
	// entriesBySite groups entry targets per federated site.
	entriesBySite [][]target

	res       *Result
	lastConns int64
	lastBytes int64
	stopAt    time.Time
	rrDNS     int
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.Site == nil && len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("sim: Config.Site or Config.Sites is required")
	}
	if cfg.Site == nil {
		cfg.Site = cfg.Sites[0]
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Minute
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10 * time.Second
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	params := cfg.Params
	// withDefaults is unexported; replicate via DefaultParams merge.
	params = mergeParams(params)

	w := &World{
		cfg:     cfg,
		params:  params,
		cost:    cfg.Cost,
		now:     time.Unix(0, 0),
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
		servers: make(map[string]*simServer),
		res: &Result{
			CPS:            metrics.NewSeries("cps"),
			BPS:            metrics.NewSeries("bps"),
			PerServer:      make(map[string]int64),
			PerServerBytes: make(map[string]int64),
			Latency:        &metrics.Histogram{},
		},
	}
	w.stopAt = w.now.Add(cfg.Duration)
	w.build()
	w.start()
	w.drain(w.stopAt)
	w.collect()
	return w.res, nil
}

func mergeParams(p dcws.Params) dcws.Params {
	d := dcws.DefaultParams()
	if p.Workers <= 0 {
		p.Workers = d.Workers
	}
	if p.QueueLength <= 0 {
		p.QueueLength = d.QueueLength
	}
	if p.StatsInterval <= 0 {
		p.StatsInterval = d.StatsInterval
	}
	if p.PingerInterval <= 0 {
		p.PingerInterval = d.PingerInterval
	}
	if p.ValidateInterval <= 0 {
		p.ValidateInterval = d.ValidateInterval
	}
	if p.HomeReMigrateInterval <= 0 {
		p.HomeReMigrateInterval = d.HomeReMigrateInterval
	}
	if p.CoopMigrateInterval <= 0 {
		p.CoopMigrateInterval = d.CoopMigrateInterval
	}
	if p.MigrationThreshold <= 0 {
		p.MigrationThreshold = d.MigrationThreshold
	}
	if p.ImbalanceRatio <= 0 {
		p.ImbalanceRatio = d.ImbalanceRatio
	}
	if p.MaxPingFailures <= 0 {
		p.MaxPingFailures = d.MaxPingFailures
	}
	if p.RateWindow <= 0 {
		p.RateWindow = d.RateWindow
	}
	if p.ReplicateThreshold <= 0 {
		p.ReplicateThreshold = d.ReplicateThreshold
	}
	if p.MaxReplicas <= 0 {
		p.MaxReplicas = d.MaxReplicas
	}
	if p.MaxPiggybackEntries == 0 {
		p.MaxPiggybackEntries = d.MaxPiggybackEntries
	}
	if p.AntiEntropyInterval == 0 {
		p.AntiEntropyInterval = d.AntiEntropyInterval
	}
	if p.HotReplicaCount <= 0 {
		p.HotReplicaCount = d.HotReplicaCount
	}
	if p.CapacitySmoothing == 0 {
		p.CapacitySmoothing = d.CapacitySmoothing
	}
	// HotReplicateRate keeps its zero value: unlike the live server, the
	// simulator treats 0 as "chain replication off" so the established
	// scenarios (hotspot, federation, paper figures) keep their exact
	// behaviour unless a run opts in with an explicit rate.
	// LeaseDuration likewise keeps its zero value — zero means the paper's
	// polling validation; a run opts into push invalidation explicitly.
	// CapacitySmoothing follows the live convention: zero means the
	// default (normalization on), negative opts back into raw loads.
	// Zone keeps its zero value (empty = unzoned).
	return p
}

// serverCost returns server i's cost model: the shared base model when the
// group is homogeneous, or a geometrically interpolated slowdown when
// Config.HeteroSpread asks for a heterogeneous testbed (server 0 fastest,
// the last HeteroSpread× slower).
func (w *World) serverCost(i int) CostModel {
	spread := w.cfg.HeteroSpread
	if spread <= 1 || w.cfg.Servers <= 1 {
		return w.cost
	}
	exp := float64(i) / float64(w.cfg.Servers-1)
	return w.cost.Scaled(math.Pow(spread, exp))
}

// build creates the server topology for the configured mode.
func (w *World) build() {
	cfg := w.cfg
	serverAddr := func(i int) string { return fmt.Sprintf("server%02d:80", i+1) }

	switch cfg.Mode {
	case ModeDCWS:
		sites := cfg.Sites
		if len(sites) == 0 {
			sites = []*dataset.Site{cfg.Site}
		}
		if cfg.Servers < len(sites) {
			cfg.Servers = len(sites)
			w.cfg.Servers = cfg.Servers
		}
		for i := 0; i < cfg.Servers; i++ {
			addr := serverAddr(i)
			s := newSimServer(w, addr, w.params, w.serverCost(i))
			if i < len(sites) {
				s.loadSite(sites[i])
			}
			w.servers[addr] = s
			w.order = append(w.order, addr)
		}
		for i, site := range sites {
			home := w.order[i]
			var eps []target
			for _, ep := range site.EntryPoints {
				eps = append(eps, target{Addr: home, Home: home, Name: ep})
			}
			w.entriesBySite = append(w.entriesBySite, eps)
			w.entries = append(w.entries, eps...)
		}
		if cfg.WarmStart && cfg.Servers > 1 && len(sites) == 1 {
			w.warmPlace(w.servers[w.order[0]])
		}
	case ModeRRDNS:
		for i := 0; i < cfg.Servers; i++ {
			addr := serverAddr(i)
			s := newSimServer(w, addr, w.params, w.serverCost(i))
			s.loadSite(cfg.Site)
			w.servers[addr] = s
			w.order = append(w.order, addr)
		}
		// Entries resolve per sequence; see clientStartSequence.
	case ModeRouter:
		w.router = "router:80"
		r := newSimServer(w, w.router, w.params, w.cost)
		// The router forwards cheaply and in volume: many forwarding
		// contexts, tiny per-request cost, but one shared NIC.
		r.workers = make([]time.Time, 64)
		w.servers[w.router] = r
		w.order = append(w.order, w.router)
		for i := 0; i < cfg.Servers; i++ {
			addr := serverAddr(i)
			s := newSimServer(w, addr, w.params, w.serverCost(i))
			s.loadSite(cfg.Site)
			w.servers[addr] = s
			w.order = append(w.order, addr)
		}
	}
	w.seedPeers()
}

// warmPlace approximates the converged placement a long-running system
// reaches: every non-entry document is assigned greedily — hottest first,
// to the least-loaded server — across ALL servers including the home, with
// the home pre-loaded by its entry points (which may never migrate, §3.2).
// Popularity comes from a short dry random-walk census of the site under
// the Algorithm 2 client behaviour, so a navigation button embedded by
// every page weighs what it is actually requested (about once per access
// sequence, thanks to the client cache), not its raw fan-in.
func (w *World) warmPlace(hs *simServer) {
	hits := walkCensus(w.cfg.Site, 2000, rand.New(rand.NewSource(w.cfg.Seed+99)))
	weight := func(name string) float64 { return hits[name] + 1 }

	// On a heterogeneous group the converged placement is capacity-
	// proportional, not equal-share: the greedy step minimizes projected
	// completion time (load/capacity), the same headroom order the live
	// placement walk uses. Homogeneous groups (or capacity normalization
	// off) keep every speed at 1 and reproduce the old equal split.
	speed := make(map[string]float64, len(w.order))
	for _, addr := range w.order {
		speed[addr] = 1
		if c := w.servers[addr].capacity; c > 0 {
			speed[addr] = c
		}
	}

	load := make(map[string]float64, len(w.order))
	for _, addr := range w.order {
		load[addr] = 0
	}
	for _, d := range hs.docs {
		if d.entry {
			load[hs.addr] += weight(d.spec.Name)
		}
	}
	// Hottest-first, name-tie-broken for determinism.
	names := append([]string(nil), hs.docNames...)
	sort.SliceStable(names, func(i, j int) bool {
		wi, wj := weight(names[i]), weight(names[j])
		if wi != wj {
			return wi > wj
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		d := hs.docs[name]
		if d.entry {
			continue
		}
		best := ""
		for _, addr := range w.order {
			if best == "" {
				best = addr
				continue
			}
			switch {
			case load[addr]/speed[addr] < load[best]/speed[best]:
				best = addr
			case load[addr]/speed[addr] == load[best]/speed[best] && best == hs.addr:
				// Ties prefer a co-op over the home server.
				best = addr
			}
		}
		load[best] += weight(name)
		if best != hs.addr {
			hs.migrate(name, best)
		}
	}
	// Warm-start placements are historical, not measurement-time work:
	// exclude them from the run's migration count.
	hs.migrations = 0
}

// walkCensus dry-runs the Algorithm 2 client over the site specification —
// no servers, no timing — and counts per-document requests: entry start,
// random(1..25) anchor steps, embedded images fetched once per sequence.
func walkCensus(site *dataset.Site, sequences int, rng *rand.Rand) map[string]float64 {
	byName := make(map[string]*dataset.Doc, len(site.Docs))
	for i := range site.Docs {
		byName[site.Docs[i].Name] = &site.Docs[i]
	}
	hits := make(map[string]float64, len(site.Docs))
	for s := 0; s < sequences; s++ {
		cached := make(map[string]bool)
		cur := site.EntryPoints[rng.Intn(len(site.EntryPoints))]
		steps := 1 + rng.Intn(25)
		for i := 0; i < steps; i++ {
			doc := byName[cur]
			if doc == nil {
				break
			}
			if !cached[cur] {
				cached[cur] = true
				hits[cur]++
			}
			var anchors []string
			for _, l := range doc.Links {
				if l.Image {
					if !cached[l.URL] {
						cached[l.URL] = true
						hits[l.URL]++
					}
					continue
				}
				anchors = append(anchors, l.URL)
			}
			if len(anchors) == 0 {
				break
			}
			cur = anchors[rng.Intn(len(anchors))]
		}
	}
	return hits
}

// start schedules maintenance ticks, samplers, and client sequences.
func (w *World) start() {
	if w.cfg.Mode == ModeDCWS && !w.cfg.NoCooperation {
		for _, addr := range w.order {
			s := w.servers[addr]
			w.scheduleEvery(w.params.StatsInterval, s.statsTick)
			w.scheduleEvery(w.params.PingerInterval, s.pingerTick)
			w.scheduleEvery(w.params.ValidateInterval, s.validatorTick)
			w.scheduleEvery(w.params.AntiEntropyInterval, s.antiEntropyTick)
		}
	}
	w.scheduleEvery(w.cfg.SampleEvery, w.sample)
	for i := 0; i < w.cfg.Clients; i++ {
		c := &simClient{id: i, rng: rand.New(rand.NewSource(w.cfg.Seed + int64(i)*7919 + 17))}
		// Stagger client starts over the first second.
		d := time.Duration(w.rng.Int63n(int64(time.Second)))
		w.schedule(d, func() { w.clientStartSequence(c) })
	}
}

// scheduleEvery runs fn every interval until the horizon.
func (w *World) scheduleEvery(interval time.Duration, fn func()) {
	if interval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		fn()
		if w.now.Add(interval).Before(w.stopAt) {
			w.schedule(interval, tick)
		}
	}
	w.schedule(interval, tick)
}

// sample records the CPS/BPS deltas since the previous sample.
func (w *World) sample() {
	dt := w.cfg.SampleEvery.Seconds()
	conns := w.res.Connections
	bytes := w.res.Bytes
	w.res.CPS.Record(w.now, float64(conns-w.lastConns)/dt)
	w.res.BPS.Record(w.now, float64(bytes-w.lastBytes)/dt)
	w.lastConns = conns
	w.lastBytes = bytes
}

// collect finalizes the result.
func (w *World) collect() {
	w.res.PeakCPS = w.res.CPS.Max()
	w.res.PeakBPS = w.res.BPS.Max()
	for addr, s := range w.servers {
		w.res.PerServer[addr] = s.conns
		w.res.PerServerBytes[addr] = s.bytesOut
		w.res.Migrations += s.migrations
		w.res.Revocations += s.revocations
		w.res.Rebuilds += s.rebuilds
		w.res.ChainPushes += s.chainPushes
		w.res.ChainPushBytes += s.chainPushBytes
		w.res.Validations += s.validations
		w.res.LeaseSkips += s.leaseSkips
		w.res.InvalidatePushes += s.invalPushes
	}
}

// dispatch sends a client request toward its target, routing through the
// central router in ModeRouter.
func (w *World) dispatch(t target, done func(reply)) {
	w.res.Issued++
	if w.cfg.Mode == ModeRouter {
		w.dispatchViaRouter(t, done)
		return
	}
	s := w.servers[t.Addr]
	if s == nil {
		w.schedule(w.cost.RTT, func() { done(reply{status: 404}) })
		return
	}
	w.schedule(w.cost.RTT/2, func() { s.admit(t, done) })
}

// dispatchViaRouter models the centralized router baseline: the router
// spends RouterOverhead per connection, forwards round-robin, and every
// response byte crosses the router's NIC — the bottleneck the paper's
// design avoids.
func (w *World) dispatchViaRouter(t target, done func(reply)) {
	r := w.servers[w.router]
	w.schedule(w.cost.RTT/2, func() {
		if r.waiting >= r.queueLen {
			r.drops++
			w.schedule(w.cost.RTT/2, func() { done(reply{status: 503}) })
			return
		}
		// Router forwarding work.
		r.waiting++
		start := r.reserveWorker(w.now, w.cost.RouterOverhead)
		w.scheduleAt(start, func() { r.waiting-- })
		r.conns++
		r.windowConns++
		// Pick a backend round-robin.
		backend := w.order[1+w.rrDNS%(len(w.order)-1)]
		w.rrDNS++
		b := w.servers[backend]
		w.scheduleAt(start.Add(w.cost.RouterOverhead), func() {
			b.admit(target{Addr: backend, Home: backend, Name: t.Name}, func(rep reply) {
				// Response transits the router NIC.
				tx := maxTime(r.nicBusy, w.now).Add(w.cost.txTime(rep.bytes))
				r.nicBusy = tx
				r.bytesOut += rep.bytes
				w.scheduleAt(tx.Add(w.cost.RTT/2), func() { done(rep) })
			})
		})
	})
}
