package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dcws/internal/dcws"
	"dcws/internal/glt"
)

// gossipWorld builds an n-server world wired only for table gossip: the
// same simServer construction Run uses, without clients or document sites.
func gossipWorld(t *testing.T, n int) *World {
	t.Helper()
	w := &World{
		cfg:     Config{},
		params:  mergeParams(dcws.Params{}),
		cost:    DefaultCostModel(),
		now:     time.Unix(0, 0),
		servers: make(map[string]*simServer),
	}
	w.stopAt = w.now.Add(24 * time.Hour)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("server%03d:80", i+1)
		w.servers[addr] = newSimServer(w, addr, w.params, w.cost)
		w.order = append(w.order, addr)
	}
	w.seedPeers()
	return w
}

// TestGossipSweepConverges64 is the simulator's cluster-scale sweep: 64
// servers exchanging capped delta piggybacks through the production wire
// codec must converge every table to every peer's freshest load entry
// within the anti-entropy schedule, and no delta header may ever carry
// more than MaxPiggybackEntries entries.
func TestGossipSweepConverges64(t *testing.T) {
	const n = 64
	w := gossipWorld(t, n)
	rng := rand.New(rand.NewSource(7))
	cap := w.params.MaxPiggybackEntries

	maxEntries := 0
	// Churn: every round each server refreshes its own load and runs two
	// random delta exchanges; every eighth round it also runs the
	// anti-entropy tick (full exchanges are O(cluster) by design, so they
	// are excluded from the delta bound).
	for round := 0; round < 40; round++ {
		w.now = w.now.Add(w.params.StatsInterval)
		for _, addr := range w.order {
			w.servers[addr].table.UpdateSelf(rng.Float64(), w.now)
		}
		for i, addr := range w.order {
			s := w.servers[addr]
			for k := 0; k < 2; k++ {
				peer := w.servers[w.order[rng.Intn(n)]]
				if peer == s {
					continue
				}
				exchangeTables(s, peer)
				for _, tbl := range []*glt.Table{s.table, peer.table} {
					if got := tbl.LastHeaderEntries(); got > maxEntries {
						maxEntries = got
					}
				}
			}
			if round%8 == 7 {
				_ = i
				s.antiEntropyTick()
			}
		}
	}
	if maxEntries > cap {
		t.Fatalf("a delta header carried %d entries, cap %d", maxEntries, cap)
	}

	// Quiesce: stop updating loads and let one full anti-entropy sweep
	// finish propagation, then every view must match the owner's own entry.
	for round := 0; round < 3; round++ {
		w.now = w.now.Add(w.params.AntiEntropyInterval)
		for _, addr := range w.order {
			w.servers[addr].antiEntropyTick()
		}
	}
	for _, holder := range w.order {
		ht := w.servers[holder].table
		for _, subject := range w.order {
			if subject == holder {
				continue
			}
			own, _ := w.servers[subject].table.Get(subject)
			got, ok := ht.Get(subject)
			if !ok {
				t.Fatalf("%s lost %s entirely", holder, subject)
			}
			if got.Load != own.Load || !got.Updated.Equal(own.Updated) {
				t.Fatalf("%s's view of %s = %+v, owner has %+v", holder, subject, got, own)
			}
		}
	}
}
