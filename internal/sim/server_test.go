package sim

import (
	"math/rand"
	"testing"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
)

func testServer(t *testing.T) (*World, *simServer) {
	t.Helper()
	w := &World{
		cfg:     Config{},
		params:  mergeParams(dcws.Params{}),
		cost:    DefaultCostModel(),
		now:     time.Unix(0, 0),
		servers: make(map[string]*simServer),
	}
	w.stopAt = w.now.Add(time.Hour)
	s := newSimServer(w, "s1:80", w.params, w.cost)
	w.servers["s1:80"] = s
	w.order = []string{"s1:80"}
	return w, s
}

func TestReserveWorkerFIFO(t *testing.T) {
	_, s := testServer(t)
	base := time.Unix(0, 0)
	// Twelve reservations start immediately on distinct workers...
	for i := 0; i < len(s.workers); i++ {
		if start := s.reserveWorker(base, 10*time.Millisecond); !start.Equal(base) {
			t.Fatalf("reservation %d start = %v, want immediate", i, start)
		}
	}
	// ...the thirteenth queues behind the earliest completion.
	start := s.reserveWorker(base, 10*time.Millisecond)
	if got := start.Sub(base); got != 10*time.Millisecond {
		t.Fatalf("queued start = +%v, want +10ms", got)
	}
	// Service lengths accumulate per worker, not globally.
	start2 := s.reserveWorker(base, 10*time.Millisecond)
	if got := start2.Sub(base); got != 10*time.Millisecond {
		t.Fatalf("parallel queued start = +%v, want +10ms (different worker)", got)
	}
}

func TestServeHomeStates(t *testing.T) {
	w, s := testServer(t)
	_ = w
	site := dataset.HotImage()
	s.loadSite(site)

	// Unknown document.
	rep, _ := s.serveHome("/nope.html")
	if rep.status != 404 {
		t.Fatalf("unknown doc = %d", rep.status)
	}
	// Local document: first serve builds a snapshot and counts a hit.
	rep, extra := s.serveHome("/index.html")
	if rep.status != 200 || rep.doc == nil {
		t.Fatalf("local serve = %+v", rep)
	}
	if extra != s.cost.ParseCost {
		t.Fatalf("first-serve extra = %v, want parse cost", extra)
	}
	if d := s.docs["/index.html"]; d.hits != 1 || d.windowHits != 1 {
		t.Fatalf("hits = %d/%d", d.hits, d.windowHits)
	}
	// Second serve is free of parse cost.
	if _, extra = s.serveHome("/index.html"); extra != 0 {
		t.Fatalf("second-serve extra = %v", extra)
	}
	// Build the page's snapshot before migrating so the dirty-regeneration
	// path (not the first-parse path) is exercised below.
	s.serveHome("/pages/p00.html")
	// Migrated document redirects with the coop address.
	s.migrate("/big.jpg", "s2:80")
	rep, _ = s.serveHome("/big.jpg")
	if rep.status != 301 || rep.loc.Addr != "s2:80" || rep.loc.Name != "/big.jpg" {
		t.Fatalf("redirect = %+v", rep)
	}
	// Migration dirtied every page embedding the image.
	dirty := 0
	for _, d := range s.docs {
		if d.dirty {
			dirty++
		}
	}
	if dirty != 30 {
		t.Fatalf("dirtied %d docs, want 30 pages", dirty)
	}
	// Serving a dirty page charges the regeneration cost and re-points the
	// image link at the coop.
	rep, extra = s.serveHome("/pages/p00.html")
	if extra < s.cost.RegenCost {
		t.Fatalf("regen extra = %v", extra)
	}
	for _, l := range rep.doc.links {
		if l.t.Name == "/big.jpg" && l.t.Addr != "s2:80" {
			t.Fatalf("regenerated link not rewritten: %+v", l.t)
		}
	}
}

func TestRevokeRestoresSnapshotLinks(t *testing.T) {
	_, s := testServer(t)
	s.loadSite(dataset.HotImage())
	s.migrate("/big.jpg", "s2:80")
	s.serveHome("/pages/p00.html") // regenerate with coop link
	s.revoke("/big.jpg")
	rep, _ := s.serveHome("/pages/p00.html")
	for _, l := range rep.doc.links {
		if l.t.Name == "/big.jpg" && l.t.Addr != "s1:80" {
			t.Fatalf("revoked link still points at coop: %+v", l.t)
		}
	}
	if s.revocations != 1 {
		t.Fatalf("revocations = %d", s.revocations)
	}
}

func TestWalkCensusCoversEntryAndHotDocs(t *testing.T) {
	site := dataset.MAPUG()
	hits := walkCensus(site, 500, rand.New(rand.NewSource(1)))
	if hits["/index.html"] < 400 {
		t.Fatalf("entry hits = %v, want ~1 per sequence", hits["/index.html"])
	}
	// Buttons are requested about once per sequence (client cache), far
	// below their raw 1500-page fan-in.
	btn := hits["/buttons/next.gif"]
	if btn < 300 || btn > 600 {
		t.Fatalf("button hits = %v, want ~once per sequence", btn)
	}
	// An individual message is visited far less often.
	if hits["/msg/t000/m05.html"] > btn/5 {
		t.Fatalf("message as hot as a button: %v vs %v", hits["/msg/t000/m05.html"], btn)
	}
}
