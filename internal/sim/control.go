package sim

import (
	"sort"
	"time"

	"dcws/internal/glt"
	"dcws/internal/policy"
)

// internalFetch performs a home-to-coop document transfer: the co-op server
// requests the prepared copy from the document's home server. Load-table
// entries travel piggybacked on the exchange, in both directions, exactly
// as the extension headers do in the live system (§3.3).
func (w *World) internalFetch(coop *simServer, t target, done func(reply)) {
	home := w.servers[t.Home]
	if home == nil {
		w.schedule(coop.cost.RTT, func() { done(reply{status: 404}) })
		return
	}
	w.schedule(coop.cost.RTT/2, func() {
		// Piggyback: both tables merge (the request carried the coop's
		// view; the response will carry the home's).
		exchangeTables(home, coop)
		home.absorbHotReport(coop)

		d, ok := home.docs[t.Name]
		authorized := false
		if ok && d.location != "" {
			if d.location == coop.addr {
				authorized = true
			}
			for _, r := range home.replicas[t.Name] {
				if r == coop.addr {
					authorized = true
				}
			}
		}
		if !authorized {
			home.finish(reply{status: 301, bytes: home.cost.RedirectBytes}, 0, done)
			return
		}
		if d.snapshot == nil || d.dirty {
			home.rebuildSnapshot(d)
		}
		home.fetches++
		home.finish(reply{status: 200, bytes: d.spec.Size, doc: d.snapshot}, home.cost.ParseCost, done)
	})
}

// exchangeTables runs one wire-format gossip exchange — the simulated form
// of the X-DCWS-Load piggyback pair. b's request header carries its delta
// to a, a's response carries its delta back, and both sides absorb through
// the same codec the live system uses, so entry caps, per-peer acks, and
// epidemic relay of third-party entries behave identically to production.
func exchangeTables(a, b *simServer) {
	w := a.w
	max := w.params.MaxPiggybackEntries
	req := glt.DecodePiggyback(b.table.EncodePiggybackTo(a.addr, w.now, max, false))
	a.table.Absorb(req, w.now)
	resp := glt.DecodePiggyback(a.table.EncodePiggybackTo(b.addr, w.now, max, false))
	b.table.Absorb(resp, w.now)
}

// absorbHotReport pulls the coop's per-document window hits for documents
// this home owns into the replication hint table (X-DCWS-Hot equivalent).
func (home *simServer) absorbHotReport(coop *simServer) {
	for key, h := range coop.hosted {
		if !h.present || h.windowHits == 0 {
			continue
		}
		// key = home|name
		if len(key) <= len(home.addr)+1 || key[:len(home.addr)] != home.addr {
			continue
		}
		name := key[len(home.addr)+1:]
		if h.windowHits > home.hotHints[name] {
			home.hotHints[name] = h.windowHits
		}
	}
}

// statsTick is one statistics interval (T_st) on one server: refresh the
// load entry, revoke expired placements, replicate hot spots, attempt one
// migration, and roll the hit windows. It mirrors dcws.Server.runStatsTick.
func (s *simServer) statsTick() {
	w := s.w
	// The published load metric is CPS by default; BPS suits large-file
	// workloads (§5.3). With capacity normalization on, the gossiped (and
	// locally compared) figure is utilization — load over this machine's
	// analytic capacity — so the imbalance trigger compares like units
	// across heterogeneous workstations, exactly as in the live server.
	load := float64(s.windowConns) / w.params.StatsInterval.Seconds()
	if w.params.UseBPSMetric {
		load = float64(s.windowBytes) / w.params.StatsInterval.Seconds()
	}
	if s.capacity > 0 {
		load /= s.capacity
	}
	s.table.UpdateSelf(load, w.now)

	s.revokeExpired(load)
	if w.params.HotReplicateRate > 0 {
		s.chainReplicateHot()
	}
	if w.params.Replicate {
		s.replicateHot()
	}
	s.maybeMigrate(load)

	s.windowConns = 0
	s.windowBytes = 0
	for _, d := range s.docs {
		d.windowHits = 0
	}
	for _, h := range s.hosted {
		h.windowHits = 0
	}
}

// maybeMigrate runs the migration trigger and Algorithm 1 (via the
// production policy package).
func (s *simServer) maybeMigrate(selfLoad float64) {
	w := s.w
	coop, ok := s.chooseCoop(selfLoad)
	if !ok {
		return
	}
	candidates := make([]policy.Candidate, 0, len(s.docNames))
	for _, name := range s.docNames {
		d := s.docs[name]
		remote := 0
		for _, from := range d.linkFrom {
			if fd, ok := s.docs[from]; ok && fd.location != "" {
				remote++
			}
		}
		candidates = append(candidates, policy.Candidate{
			Name:           name,
			Load:           d.windowHits,
			EntryPoint:     d.entry,
			Migrated:       d.location != "",
			RemoteLinkFrom: remote,
			LinkTo:         len(d.spec.Links),
		})
	}
	doc, ok := policy.SelectForMigration(candidates, w.params.MigrationThreshold)
	if !ok {
		return
	}
	if !s.gate.Allow(coop, w.now) {
		return
	}
	s.migrate(doc, coop)
}

// chooseCoop walks peers in placement-preference order — headroom-ranked,
// same-zone first — and picks the first one that satisfies the imbalance
// trigger and the rate gate (identical logic to dcws.Server.chooseCoop).
// With capacities absent the ranking degenerates to ascending load, which
// reproduces the legacy least-loaded choice exactly.
func (s *simServer) chooseCoop(selfLoad float64) (string, bool) {
	if selfLoad <= 0 {
		return "", false
	}
	exclude := map[string]bool{s.addr: true}
	for _, e := range s.table.RankedByHeadroom(exclude, s.w.params.Zone) {
		if selfLoad <= e.Load*s.w.params.ImbalanceRatio {
			continue
		}
		if s.w.servers[e.Server] == nil {
			continue
		}
		if s.gate.Eligible(e.Server, s.w.now) {
			return e.Server, true
		}
	}
	return "", false
}

// migrate performs the logical migration: location update, dirty
// propagation over LinkFrom, ledger entry.
func (s *simServer) migrate(name, coop string) {
	d, ok := s.docs[name]
	if !ok {
		return
	}
	d.location = coop
	d.version++
	for _, from := range d.linkFrom {
		if fd, ok := s.docs[from]; ok {
			fd.dirty = true
		}
	}
	s.ledger.Record(name, coop, s.w.now)
	s.replicas[name] = []string{coop}
	s.migrations++
	s.pushDirtied(d.linkFrom)
}

// pushDirtied mirrors the live server's invalidation push on link
// rewrites: when leases are on, every hosted copy of a just-dirtied
// document gets the re-rendered form immediately instead of waiting for
// its host's next validator poll.
func (s *simServer) pushDirtied(names []string) {
	if s.w.params.LeaseDuration <= 0 {
		return
	}
	for _, name := range names {
		d, ok := s.docs[name]
		if !ok {
			continue
		}
		hosts := s.replicas[name]
		if len(hosts) == 0 && d.location != "" {
			hosts = []string{d.location}
		}
		if len(hosts) == 0 {
			continue
		}
		if d.snapshot == nil || d.dirty {
			s.rebuildSnapshot(d)
		}
		for _, hAddr := range hosts {
			host := s.w.servers[hAddr]
			if host == nil {
				continue
			}
			if h, ok := host.hosted[s.addr+"|"+name]; ok && h.present && h.version != d.version {
				h.doc = d.snapshot
				h.version = d.snapshot.version
				s.invalPushes++
			}
		}
	}
}

// revoke returns a document home and tells its hosts to drop their copies.
func (s *simServer) revoke(name string) {
	d, ok := s.docs[name]
	if !ok {
		return
	}
	hosts := s.replicas[name]
	if len(hosts) == 0 && d.location != "" {
		hosts = []string{d.location}
	}
	d.location = ""
	d.version++
	for _, from := range d.linkFrom {
		if fd, ok := s.docs[from]; ok {
			fd.dirty = true
		}
	}
	s.ledger.Forget(name)
	delete(s.replicas, name)
	delete(s.rr, name)
	delete(s.hotHints, name)
	delete(s.hotRate, name)
	for _, hAddr := range hosts {
		if host := s.w.servers[hAddr]; host != nil {
			host.dropHosted(s.addr, name)
			if s.w.params.LeaseDuration > 0 {
				s.invalPushes++
			}
		}
	}
	s.revocations++
	s.pushDirtied(d.linkFrom)
}

// revokeExpired recalls placements older than T_home whose co-op is now
// substantially busier than the home (§4.5 case 2).
func (s *simServer) revokeExpired(selfLoad float64) {
	for _, mig := range s.ledger.Expired(s.w.now, s.w.params.HomeReMigrateInterval) {
		e, ok := s.table.Get(mig.Coop)
		if !ok {
			continue
		}
		if e.Load > selfLoad*s.w.params.ImbalanceRatio {
			s.revoke(mig.Doc)
		}
	}
}

// simSizeWeight mirrors the live server's size-aware replication weight
// (dcws.sizeWeight): serve rates scale linearly with rendered size above
// a 64 KiB pivot, capped at 2, and stay neutral below it — large
// documents replicate earlier, small ones are never delayed.
func simSizeWeight(size int64) float64 {
	w := float64(size) / float64(64<<10)
	if w <= 1 {
		return 1
	}
	if w > 2 {
		return 2
	}
	return w
}

// chainReplicateHot mirrors dcws.Server.maybeChainReplicate: fold this
// window's serve rate (home hits plus the hottest co-op report) into a
// per-document EWMA, and when a document crosses HotReplicateRate bring it
// up to HotReplicaCount replicas in ONE dissemination — the home uploads
// once to the chain head and each link relays to its successor, so the
// home's egress stays one document transfer regardless of the fan-out.
func (s *simServer) chainReplicateHot() {
	w := s.w
	dt := w.params.StatsInterval.Seconds()
	for name, d := range s.docs {
		rate := float64(d.windowHits+s.hotHints[name]) / dt
		rate *= simSizeWeight(d.spec.Size)
		next := 0.5*s.hotRate[name] + 0.5*rate
		if next < 0.01 {
			delete(s.hotRate, name)
			continue
		}
		s.hotRate[name] = next
	}
	names := make([]string, 0, len(s.hotRate))
	for name := range s.hotRate {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.docs[name]
		if d == nil || d.entry || s.hotRate[name] < w.params.HotReplicateRate {
			continue
		}
		existing := s.replicas[name]
		if len(existing) == 0 && d.location != "" {
			existing = []string{d.location}
		}
		want := w.params.HotReplicaCount - len(existing)
		if want <= 0 {
			continue
		}
		exclude := map[string]bool{s.addr: true}
		for _, r := range existing {
			exclude[r] = true
		}
		var chain []string
		for _, e := range s.table.RankedByHeadroom(exclude, w.params.Zone) {
			if w.servers[e.Server] == nil {
				continue
			}
			chain = append(chain, e.Server)
			if len(chain) == want {
				break
			}
		}
		if len(chain) == 0 {
			continue
		}
		// The home renders once and uploads once; every chain link but the
		// last relays that same payload downstream.
		if d.snapshot == nil || d.dirty {
			s.rebuildSnapshot(d)
		}
		pushed := d.snapshot
		for i, addr := range chain {
			host := w.servers[addr]
			host.hosted[s.addr+"|"+name] = &hostedDoc{
				present: true,
				doc:     pushed,
				version: pushed.version,
			}
			if i < len(chain)-1 {
				host.finish(reply{status: 200, bytes: d.spec.Size}, 0, func(reply) {})
			}
		}
		s.chainPushes++
		s.chainPushBytes += d.spec.Size
		s.finish(reply{status: 200, bytes: d.spec.Size}, s.cost.ParseCost, func(reply) {})
		newReps := append(append([]string(nil), existing...), chain...)
		wasHome := d.location == ""
		d.location = newReps[0]
		d.version++
		for _, from := range d.linkFrom {
			if fd, ok := s.docs[from]; ok {
				fd.dirty = true
			}
		}
		if wasHome {
			s.ledger.Record(name, newReps[0], w.now)
			s.migrations++
		}
		s.replicas[name] = newReps
		delete(s.hotHints, name)
		s.pushDirtied(d.linkFrom)
	}
}

// replicateHot extends the replica set of hot migrated documents (the §6
// replication extension).
func (s *simServer) replicateHot() {
	w := s.w
	names := make([]string, 0, len(s.hotHints))
	for name := range s.hotHints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hits := s.hotHints[name]
		if hits < w.params.ReplicateThreshold {
			continue
		}
		d, ok := s.docs[name]
		if !ok || d.location == "" {
			continue
		}
		reps := s.replicas[name]
		if len(reps) == 0 {
			reps = []string{d.location}
		}
		if len(reps) >= w.params.MaxReplicas {
			continue
		}
		exclude := map[string]bool{s.addr: true}
		for _, r := range reps {
			exclude[r] = true
		}
		ranked := s.table.RankedByHeadroom(exclude, w.params.Zone)
		if len(ranked) == 0 {
			continue
		}
		s.replicas[name] = append(reps, ranked[0].Server)
		d.version++
		for _, from := range d.linkFrom {
			if fd, ok := s.docs[from]; ok {
				fd.dirty = true
			}
		}
	}
	s.hotHints = make(map[string]int64)
}

// pingerTick refreshes stale load-table entries by probing peers — a tiny
// request charged to the peer, with tables exchanged on success (§4.5).
func (s *simServer) pingerTick() {
	w := s.w
	for _, peer := range s.table.StaleServers(w.now, w.params.PingerInterval) {
		p := w.servers[peer]
		if p == nil {
			s.table.Remove(peer)
			continue
		}
		// Charge the ping to the peer's worker pool.
		p.finish(reply{status: 200, bytes: 64}, 0, func(reply) {
			exchangeTables(s, p)
			p.absorbHotReport(s)
		})
	}
}

// validatorTick re-requests every hosted copy from its home (T_val): a
// cheap conditional exchange when unchanged, a full transfer when the home
// copy moved on (§4.5 case 1).
func (s *simServer) validatorTick() {
	w := s.w
	keys := make([]string, 0, len(s.hosted))
	for key := range s.hosted {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		h := s.hosted[key]
		if !h.present {
			continue
		}
		sep := -1
		for i := 0; i < len(key); i++ {
			if key[i] == '|' {
				sep = i
				break
			}
		}
		if sep < 0 {
			continue
		}
		homeAddr, name := key[:sep], key[sep+1:]
		home := w.servers[homeAddr]
		if home == nil {
			continue
		}
		// With leases on, a live home pushes invalidations itself, so the
		// polled validation round is skipped entirely — the traffic collapse
		// the live system's dcws_validate_polls_total counter measures.
		if w.params.LeaseDuration > 0 {
			s.leaseSkips++
			continue
		}
		s.validations++
		d, ok := home.docs[name]
		if !ok {
			continue
		}
		exchangeTables(home, s)
		home.absorbHotReport(s)
		stillOurs := d.location == s.addr
		for _, r := range home.replicas[name] {
			if r == s.addr {
				stillOurs = true
			}
		}
		if !stillOurs {
			s.dropHosted(homeAddr, name)
			continue
		}
		// The live validator re-renders a dirty document before answering
		// (its hyperlinks re-rotate over current replica sets), so the
		// version comparison must see the post-render version.
		if d.snapshot == nil || d.dirty {
			home.rebuildSnapshot(d)
		}
		if d.version == h.version {
			// 304: conditional check only.
			home.finish(reply{status: 200, bytes: 256}, 0, func(reply) {})
			continue
		}
		hh := h
		doc := d.snapshot
		home.finish(reply{status: 200, bytes: d.spec.Size, doc: doc}, 0, func(rep reply) {
			hh.doc = rep.doc
			hh.version = rep.doc.version
		})
	}
}

// antiEntropyTick is the simulated form of the live anti-entropy safety
// net: one full-table exchange with the peer whose last full exchange is
// oldest, so entries capped out of every delta still reconverge.
func (s *simServer) antiEntropyTick() {
	w := s.w
	gossip := s.table.GossipPeers()
	var best string
	var bestAt time.Time
	for _, p := range s.table.Servers() {
		if p == s.addr || w.servers[p] == nil {
			continue
		}
		at := gossip[p].LastFull
		if best == "" || at.Before(bestAt) {
			best, bestAt = p, at
		}
	}
	if best == "" {
		return
	}
	peer := w.servers[best]
	max := w.params.MaxPiggybackEntries
	req := glt.DecodePiggyback(s.table.EncodePiggybackTo(peer.addr, w.now, max, true))
	peer.table.Absorb(req, w.now)
	// The live responder sees the !g marker and answers with its own full
	// table.
	resp := glt.DecodePiggyback(peer.table.EncodePiggybackTo(s.addr, w.now, max, true))
	s.table.Absorb(resp, w.now)
}

// seedPeers initializes every server's load table with every other server,
// matching the Peers configuration of the live system.
func (w *World) seedPeers() {
	for _, a := range w.order {
		for _, b := range w.order {
			if a != b {
				w.servers[a].table.Observe(glt.Entry{Server: b})
			}
		}
	}
}
