package sim

import (
	"fmt"
	"testing"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
)

// serverAddrAt names server i (1-based), matching World.build.
func serverAddrAt(i int) string { return fmt.Sprintf("server%02d:80", i) }

// heteroConfig is the Figure-6-style heterogeneous sweep point the
// placement bench also runs: 16 workstations with a 4x capacity spread
// between the fastest and the slowest, cold-started so the migration
// policy alone decides where documents land.
func heteroConfig(weighted bool) Config {
	params := fastParams()
	if !weighted {
		// Negative opts out of capacity normalization: raw loads on the
		// wire, legacy least-loaded placement.
		params.CapacitySmoothing = -1
	}
	return Config{
		Site:         dataset.LOD(),
		Servers:      16,
		Clients:      320,
		Duration:     90 * time.Second,
		HeteroSpread: 4,
		WarmStart:    true,
		Params:       params,
		Seed:         42,
	}
}

// TestHeterogeneousWeightedPlacement is the 16-node 4x-spread sweep:
// capacity-normalized placement must serve at least as much traffic as
// raw-load placement on the same heterogeneous group, and its migrations
// must land by headroom — the faster half of the co-op pool ends up
// serving more than the slower half.
func TestHeterogeneousWeightedPlacement(t *testing.T) {
	weighted, err := Run(heteroConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	unweighted, err := Run(heteroConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("weighted:   conns=%d drops=%d peak=%.0f shed=%.3f",
		weighted.Connections, weighted.Drops, weighted.PeakCPS, weighted.ShedRate())
	t.Logf("unweighted: conns=%d drops=%d peak=%.0f shed=%.3f",
		unweighted.Connections, unweighted.Drops, unweighted.PeakCPS, unweighted.ShedRate())

	if weighted.Connections < unweighted.Connections {
		t.Errorf("weighted placement served %d connections, unweighted %d; want weighted >= unweighted",
			weighted.Connections, unweighted.Connections)
	}
	if weighted.ShedRate() > unweighted.ShedRate() {
		t.Errorf("weighted shed rate %.3f exceeds unweighted %.3f",
			weighted.ShedRate(), unweighted.ShedRate())
	}

	// Placement-by-headroom: co-op servers 2..16 slow down geometrically,
	// so the faster half of the pool (servers 2-8) has strictly more
	// headroom than the slower half (servers 9-16) and must absorb more
	// of the migrated traffic.
	fast, slow := int64(0), int64(0)
	for i := 2; i <= 16; i++ {
		addr := serverAddrAt(i)
		if i <= 8 {
			fast += weighted.PerServer[addr]
		} else {
			slow += weighted.PerServer[addr]
		}
	}
	t.Logf("weighted co-op split: fast-half=%d slow-half=%d", fast, slow)
	if fast <= slow {
		t.Errorf("fast co-op half served %d connections, slow half %d; want migrations to land by headroom",
			fast, slow)
	}
	if weighted.Migrations == 0 {
		t.Error("no migrations in the weighted heterogeneous run")
	}
}

// TestHeterogeneousSpreadChangesCapacity sanity-checks the spread wiring:
// the analytic capacities of the first and last server must differ by the
// configured ratio.
func TestHeterogeneousSpreadChangesCapacity(t *testing.T) {
	w := &World{
		cfg:     Config{Servers: 16, HeteroSpread: 4},
		params:  mergeParams(dcws.Params{}),
		cost:    DefaultCostModel(),
		servers: make(map[string]*simServer),
	}
	first := w.serverCost(0).analyticCapacity(w.params.Workers, false)
	last := w.serverCost(15).analyticCapacity(w.params.Workers, false)
	if ratio := first / last; ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("capacity ratio fastest/slowest = %.2f, want ~4", ratio)
	}
	mid := w.serverCost(7).analyticCapacity(w.params.Workers, false)
	if mid >= first || mid <= last {
		t.Fatalf("capacities not monotone: first=%.0f mid=%.0f last=%.0f", first, mid, last)
	}
}
