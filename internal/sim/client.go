package sim

import (
	"math/rand"
	"time"
)

// simClient is one Algorithm 2 client thread: random entry point,
// random(1..25) navigation steps, a per-sequence cache, parallel image
// helpers (window of 4), exponential 503 backoff.
type simClient struct {
	id  int
	rng *rand.Rand

	cache     map[string]*servedDoc // fetched documents by identity key
	imgCache  map[string]bool
	stepsLeft int
	cur       target
	curDoc    *servedDoc
	backoff   time.Duration
	redirects int
	fetchAt   time.Time // when the current navigation fetch began

	// image fan-out state
	imgQueue    []target
	imgInFlight int
}

// clientStartSequence begins a fresh access sequence: reset cache, pick an
// entry point, draw the step budget.
func (w *World) clientStartSequence(c *simClient) {
	if !w.now.Before(w.stopAt) {
		return
	}
	c.cache = make(map[string]*servedDoc)
	c.imgCache = make(map[string]bool)
	c.stepsLeft = 1 + c.rng.Intn(25)
	c.cur = w.pickEntry(c)
	c.redirects = 0
	c.backoff = time.Second
	w.clientFetchCurrent(c)
}

// pickEntry selects a random entry point, applying the mode's addressing:
// RR-DNS pins the sequence to one replica, the router mode addresses the
// virtual router IP.
func (w *World) pickEntry(c *simClient) target {
	switch w.cfg.Mode {
	case ModeRRDNS:
		// One DNS resolution per sequence, answers rotated round-robin and
		// cached for the sequence (the coarse granularity of §1).
		server := w.order[w.rrDNS%len(w.order)]
		w.rrDNS++
		ep := w.cfg.Site.EntryPoints[c.rng.Intn(len(w.cfg.Site.EntryPoints))]
		return target{Addr: server, Home: server, Name: ep}
	case ModeRouter:
		ep := w.cfg.Site.EntryPoints[c.rng.Intn(len(w.cfg.Site.EntryPoints))]
		return target{Addr: w.router, Home: w.router, Name: ep}
	default:
		if len(w.entriesBySite) > 1 {
			// Federated: pick a site (optionally skewed toward the
			// first), then one of its entry points.
			var site []target
			if w.cfg.SkewFirst > 0 && c.rng.Float64() < w.cfg.SkewFirst {
				site = w.entriesBySite[0]
			} else if w.cfg.SkewFirst > 0 {
				site = w.entriesBySite[1+c.rng.Intn(len(w.entriesBySite)-1)]
			} else {
				site = w.entriesBySite[c.rng.Intn(len(w.entriesBySite))]
			}
			return site[c.rng.Intn(len(site))]
		}
		return w.entries[c.rng.Intn(len(w.entries))]
	}
}

// clientFetchCurrent requests the current document unless cached.
func (w *World) clientFetchCurrent(c *simClient) {
	if !w.now.Before(w.stopAt) {
		return
	}
	if doc, hit := c.cache[c.cur.key()]; hit {
		c.curDoc = doc
		w.clientStartImages(c)
		return
	}
	if c.fetchAt.IsZero() {
		c.fetchAt = w.now
	}
	w.dispatch(c.cur, func(rep reply) { w.clientOnDocReply(c, rep) })
}

// clientOnDocReply handles the response for a navigation fetch.
func (w *World) clientOnDocReply(c *simClient, rep reply) {
	if !w.now.Before(w.stopAt) {
		return
	}
	switch rep.status {
	case 200:
		if !c.fetchAt.IsZero() {
			w.res.Latency.Observe(w.now.Sub(c.fetchAt))
			c.fetchAt = time.Time{}
		}
		c.backoff = time.Second
		c.redirects = 0
		w.res.Connections++
		w.res.Bytes += rep.bytes
		if rep.doc != nil {
			c.cache[c.cur.key()] = rep.doc
			c.curDoc = rep.doc
			w.clientStartImages(c)
			return
		}
		// A non-HTML entry (e.g. Sequoia raster reached directly): no
		// links to follow, sequence step ends here.
		w.clientEndSequence(c)
	case 301:
		w.res.Redirects++
		c.redirects++
		if c.redirects > 5 {
			w.res.Errors++
			c.fetchAt = time.Time{}
			w.clientEndSequence(c)
			return
		}
		c.cur = rep.loc
		w.clientFetchCurrent(c)
	case 503:
		w.res.Drops++
		d := c.backoff
		c.backoff *= 2
		if c.backoff > 32*time.Second {
			c.backoff = 32 * time.Second
		}
		w.schedule(d, func() { w.clientFetchCurrent(c) })
	default:
		w.res.Errors++
		c.fetchAt = time.Time{}
		w.clientEndSequence(c)
	}
}

// clientStartImages launches the parallel image helper window over the
// current document's uncached embedded images.
func (w *World) clientStartImages(c *simClient) {
	c.imgQueue = c.imgQueue[:0]
	for _, l := range c.curDoc.links {
		if !l.image {
			continue
		}
		t := w.clientTargetFor(c, l.t)
		if c.imgCache[t.key()] {
			continue
		}
		c.imgCache[t.key()] = true
		c.imgQueue = append(c.imgQueue, t)
	}
	c.imgInFlight = 0
	if len(c.imgQueue) == 0 {
		w.clientNextStep(c)
		return
	}
	// Four helper threads (§5.2).
	for i := 0; i < 4 && len(c.imgQueue) > 0; i++ {
		w.clientIssueImage(c)
	}
}

// clientIssueImage pops one queued image and fetches it.
func (w *World) clientIssueImage(c *simClient) {
	t := c.imgQueue[0]
	c.imgQueue = c.imgQueue[1:]
	c.imgInFlight++
	w.clientFetchImage(c, t, time.Second)
}

// clientFetchImage performs one image transfer with redirect following and
// backoff, then advances the helper window.
func (w *World) clientFetchImage(c *simClient, t target, backoff time.Duration) {
	if !w.now.Before(w.stopAt) {
		return
	}
	w.dispatch(t, func(rep reply) {
		switch rep.status {
		case 200:
			w.res.Connections++
			w.res.Bytes += rep.bytes
		case 301:
			w.res.Redirects++
			w.clientFetchImage(c, rep.loc, backoff)
			return
		case 503:
			w.res.Drops++
			next := backoff * 2
			if next > 32*time.Second {
				next = 32 * time.Second
			}
			w.schedule(backoff, func() { w.clientFetchImage(c, t, next) })
			return
		default:
			w.res.Errors++
		}
		c.imgInFlight--
		if len(c.imgQueue) > 0 {
			w.clientIssueImage(c)
			return
		}
		if c.imgInFlight == 0 {
			w.clientNextStep(c)
		}
	})
}

// clientNextStep picks a random anchor from the current document and
// navigates to it, or ends the sequence.
func (w *World) clientNextStep(c *simClient) {
	if !w.now.Before(w.stopAt) {
		return
	}
	c.stepsLeft--
	if c.stepsLeft <= 0 {
		w.clientEndSequence(c)
		return
	}
	var anchors []servedLink
	for _, l := range c.curDoc.links {
		if !l.image {
			anchors = append(anchors, l)
		}
	}
	if len(anchors) == 0 {
		w.clientEndSequence(c)
		return
	}
	pick := anchors[c.rng.Intn(len(anchors))]
	c.cur = w.clientTargetFor(c, pick.t)
	c.redirects = 0
	delay := w.cost.ClientStepDelay + w.cfg.ThinkTime
	if delay > 0 {
		w.schedule(delay, func() { w.clientFetchCurrent(c) })
		return
	}
	w.clientFetchCurrent(c)
}

// clientTargetFor maps a served link to the address the client will dial:
// in router mode everything goes to the virtual IP; otherwise the link's
// embedded address is used (that embedded address is the whole mechanism
// of DCWS).
func (w *World) clientTargetFor(c *simClient, t target) target {
	if w.cfg.Mode == ModeRouter {
		return target{Addr: w.router, Home: w.router, Name: t.Name}
	}
	return t
}

// clientEndSequence finishes one sequence and immediately starts the next.
func (w *World) clientEndSequence(c *simClient) {
	w.res.Sequences++
	if w.now.Before(w.stopAt) {
		w.schedule(time.Millisecond, func() { w.clientStartSequence(c) })
	}
}
