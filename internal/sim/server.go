package sim

import (
	"sort"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/glt"
	"dcws/internal/policy"
)

// target addresses one document request: which server to contact, which
// home server owns the document, and the document's name there. Addr ==
// Home is a plain request; Addr != Home is a ~migrate request at a co-op.
type target struct {
	Addr string
	Home string
	Name string
}

// key is the cache/hosting key of a target's document identity.
func (t target) key() string { return t.Home + "|" + t.Name }

// servedLink is one hyperlink of a served document, already resolved to the
// host assigned at regeneration time — exactly what a client browser would
// see in the rewritten HTML.
type servedLink struct {
	t     target
	image bool
}

// servedDoc is the simulated payload of a 200 response for an HTML page:
// its size and its hyperlinks as of the serving copy's rewrite version.
type servedDoc struct {
	name    string
	home    string
	size    int64
	links   []servedLink
	version int
}

// reply is a simulated HTTP response.
type reply struct {
	status int // 200, 301, 404, 503
	bytes  int64
	doc    *servedDoc // non-nil for 200 HTML pages
	loc    target     // redirect target for 301
}

// simDoc is the home-side state of one document (the LDG tuple, §3.3).
type simDoc struct {
	spec       *dataset.Doc
	location   string // co-op address, "" while at home
	dirty      bool
	entry      bool
	hits       int64
	windowHits int64
	linkFrom   []string
	snapshot   *servedDoc // current regenerated form
	version    int        // bumped on every regeneration/content change
}

// hostedDoc is the co-op-side state of one document hosted for a peer.
type hostedDoc struct {
	present    bool
	fetching   bool
	doc        *servedDoc
	version    int
	windowHits int64
	waiters    []func(reply)
}

// simServer is one simulated workstation running the DCWS server.
type simServer struct {
	w    *World
	addr string
	cost CostModel

	workers  []time.Time // per-worker busy-until
	nicBusy  time.Time
	waiting  int
	queueLen int
	// capacity is the analytic achievable throughput of this workstation
	// (the live server's calibrated estimate, known exactly here because
	// the cost model is explicit). Gossiped with the load entry so peers
	// rank placement targets by headroom; 0 when normalization is off.
	capacity float64

	// Home-side state (the production decision structures).
	docs     map[string]*simDoc
	docNames []string
	table    *glt.Table
	gate     *policy.RateGate
	ledger   *policy.Ledger
	replicas map[string][]string
	rr       map[string]int
	hotHints map[string]int64
	hotRate  map[string]float64 // per-document serve-rate EWMA (chain trigger)

	// Co-op-side state.
	hosted map[string]*hostedDoc

	// Counters.
	conns          int64
	windowConns    int64
	windowBytes    int64
	bytesOut       int64
	drops          int64
	redirects      int64
	fetches        int64
	rebuilds       int64
	migrations     int64
	revocations    int64
	chainPushes    int64
	chainPushBytes int64
	// Push-invalidation mirror (active when Params.LeaseDuration > 0):
	// validations counts validator polls actually issued, leaseSkips the
	// polls elided under lease cover, invalPushes the invalidations the
	// home delivered directly to hosted copies.
	validations int64
	leaseSkips  int64
	invalPushes int64
}

func newSimServer(w *World, addr string, params dcws.Params, cost CostModel) *simServer {
	s := &simServer{
		w:        w,
		addr:     addr,
		cost:     cost,
		workers:  make([]time.Time, params.Workers),
		queueLen: params.QueueLength,
		docs:     make(map[string]*simDoc),
		table:    glt.NewTable(addr),
		gate:     policy.NewRateGate(params.StatsInterval, params.CoopMigrateInterval),
		ledger:   policy.NewLedger(),
		replicas: make(map[string][]string),
		rr:       make(map[string]int),
		hotHints: make(map[string]int64),
		hotRate:  make(map[string]float64),
		hosted:   make(map[string]*hostedDoc),
	}
	// Mirror the live server's startup calibration: seed the gossiped
	// capacity/zone self-metadata before the first exchange.
	if params.CapacityEnabled() {
		s.capacity = cost.analyticCapacity(params.Workers, params.UseBPSMetric)
		s.table.SetSelfInfo(s.capacity, params.Zone)
	} else if params.Zone != "" {
		s.table.SetSelfInfo(0, params.Zone)
	}
	return s
}

// loadSite installs a data set on this server as its home content.
func (s *simServer) loadSite(site *dataset.Site) {
	for i := range site.Docs {
		d := &site.Docs[i]
		s.docs[d.Name] = &simDoc{spec: d}
		s.docNames = append(s.docNames, d.Name)
	}
	sort.Strings(s.docNames)
	for _, ep := range site.EntryPoints {
		if d, ok := s.docs[ep]; ok {
			d.entry = true
		}
	}
	// LinkFrom inversion, mirroring graph.Build.
	for i := range site.Docs {
		from := &site.Docs[i]
		seen := map[string]bool{}
		for _, l := range from.Links {
			if l.URL == from.Name || seen[l.URL] {
				continue
			}
			seen[l.URL] = true
			if to, ok := s.docs[l.URL]; ok {
				to.linkFrom = append(to.linkFrom, from.Name)
			}
		}
	}
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// reserveWorker commits the earliest-free worker to a service of the given
// length and returns the service start time.
func (s *simServer) reserveWorker(now time.Time, service time.Duration) time.Time {
	best := 0
	for i := 1; i < len(s.workers); i++ {
		if s.workers[i].Before(s.workers[best]) {
			best = i
		}
	}
	start := maxTime(now, s.workers[best])
	s.workers[best] = start.Add(service)
	return start
}

// finish commits a computed reply to the worker pool and NIC and schedules
// its arrival at the requester.
func (s *simServer) finish(rep reply, extraService time.Duration, done func(reply)) {
	w := s.w
	var service time.Duration
	switch rep.status {
	case 301:
		service = s.cost.RedirectOverhead
	case 404:
		service = s.cost.RedirectOverhead
	default:
		service = s.cost.serviceTime(rep.bytes)
	}
	service += extraService
	s.waiting++
	start := s.reserveWorker(w.now, service)
	w.scheduleAt(start, func() { s.waiting-- })
	doneAt := start.Add(service)
	tx := maxTime(s.nicBusy, doneAt).Add(s.cost.txTime(rep.bytes))
	s.nicBusy = tx
	s.conns++
	s.windowConns++
	s.windowBytes += rep.bytes
	s.bytesOut += rep.bytes
	if rep.status == 301 {
		s.redirects++
	}
	w.scheduleAt(tx.Add(s.cost.RTT/2), func() { done(rep) })
}

// admit is the front-end thread: drop with 503 when the socket queue is
// full, otherwise serve.
func (s *simServer) admit(t target, done func(reply)) {
	w := s.w
	if s.waiting >= s.queueLen {
		s.drops++
		w.schedule(s.cost.RTT/2, func() { done(reply{status: 503}) })
		return
	}
	if t.Addr != t.Home {
		s.admitCoop(t, done)
		return
	}
	rep, extra := s.serveHome(t.Name)
	s.finish(rep, extra, done)
}

// serveHome computes the reply for a request for one of this server's own
// documents, mutating home-side state (hit counts, dirty regeneration).
func (s *simServer) serveHome(name string) (reply, time.Duration) {
	d, ok := s.docs[name]
	if !ok {
		return reply{status: 404, bytes: s.cost.RedirectBytes}, 0
	}
	if d.location != "" {
		return reply{
			status: 301,
			bytes:  s.cost.RedirectBytes,
			loc:    target{Addr: s.pickReplica(name), Home: s.addr, Name: name},
		}, 0
	}
	var extra time.Duration
	if d.snapshot == nil {
		s.rebuildSnapshot(d)
		if d.spec.IsHTML() {
			extra += s.cost.ParseCost
		}
	} else if d.dirty {
		s.rebuildSnapshot(d)
		if d.spec.IsHTML() {
			s.rebuilds++
			extra += s.cost.RegenCost
		}
	}
	d.hits++
	d.windowHits++
	return reply{status: 200, bytes: d.spec.Size, doc: d.snapshot}, extra
}

// rebuildSnapshot recomputes a document's served hyperlinks from the
// current migration state — the simulated equivalent of parsing the HTML,
// rewriting moved links, and re-rendering (§4.3).
func (s *simServer) rebuildSnapshot(d *simDoc) {
	links := make([]servedLink, 0, len(d.spec.Links))
	for _, l := range d.spec.Links {
		addr := s.addr
		if td, ok := s.docs[l.URL]; ok && td.location != "" {
			addr = s.pickReplica(l.URL)
		}
		links = append(links, servedLink{
			t:     target{Addr: addr, Home: s.addr, Name: l.URL},
			image: l.Image,
		})
	}
	d.version++
	d.dirty = false
	d.snapshot = &servedDoc{
		name:    d.spec.Name,
		home:    s.addr,
		size:    d.spec.Size,
		links:   links,
		version: d.version,
	}
}

// pickReplica rotates across a migrated document's replica set (identical
// to dcws.Server.pickReplica).
func (s *simServer) pickReplica(name string) string {
	reps := s.replicas[name]
	if len(reps) == 0 {
		if d, ok := s.docs[name]; ok {
			return d.location
		}
		return s.addr
	}
	if len(reps) == 1 {
		return reps[0]
	}
	i := s.rr[name] % len(reps)
	s.rr[name]++
	return reps[i]
}

// admitCoop serves a ~migrate request, lazily fetching the document from
// its home server on first touch (§4.2).
func (s *simServer) admitCoop(t target, done func(reply)) {
	key := t.key()
	h, ok := s.hosted[key]
	if !ok {
		h = &hostedDoc{}
		s.hosted[key] = h
	}
	if h.present {
		h.windowHits++
		s.finish(reply{status: 200, bytes: h.doc.size, doc: h.doc}, 0, done)
		return
	}
	h.waiters = append(h.waiters, done)
	if h.fetching {
		return
	}
	h.fetching = true
	s.w.internalFetch(s, t, func(rep reply) {
		h.fetching = false
		waiters := h.waiters
		h.waiters = nil
		if rep.status == 200 {
			h.present = true
			h.doc = rep.doc
			h.version = rep.doc.version
			s.fetches++
			for _, dn := range waiters {
				h.windowHits++
				s.finish(reply{status: 200, bytes: h.doc.size, doc: h.doc}, 0, dn)
			}
			return
		}
		// Not assigned to us (revoked/re-migrated): relay a redirect home.
		delete(s.hosted, key)
		for _, dn := range waiters {
			s.finish(reply{
				status: 301,
				bytes:  s.cost.RedirectBytes,
				loc:    target{Addr: t.Home, Home: t.Home, Name: t.Name},
			}, 0, dn)
		}
	})
}

// dropHosted discards a hosted copy (revocation).
func (s *simServer) dropHosted(home, name string) {
	delete(s.hosted, home+"|"+name)
}
