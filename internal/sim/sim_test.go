package sim

import (
	"testing"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
)

// fastParams shortens the control intervals so short virtual runs exercise
// the policy machinery.
func fastParams() dcws.Params {
	return dcws.Params{
		StatsInterval:       2 * time.Second,
		PingerInterval:      4 * time.Second,
		ValidateInterval:    20 * time.Second,
		CoopMigrateInterval: 4 * time.Second,
		MigrationThreshold:  1,
	}
}

func runLOD(t *testing.T, cfg Config) *Result {
	t.Helper()
	if cfg.Site == nil {
		cfg.Site = dataset.LOD()
	}
	if cfg.Duration == 0 {
		cfg.Duration = 60 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleServerServesTraffic(t *testing.T) {
	res := runLOD(t, Config{Servers: 1, Clients: 8})
	if res.Connections == 0 {
		t.Fatal("no connections completed")
	}
	if res.Bytes == 0 {
		t.Fatal("no bytes transferred")
	}
	if res.Sequences == 0 {
		t.Fatal("no sequences completed")
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestConservationInvariant(t *testing.T) {
	// Every issued request resolves to exactly one of
	// served/dropped/redirected/error, modulo in-flight work at the
	// horizon.
	for _, cfg := range []Config{
		{Servers: 1, Clients: 8},
		{Servers: 3, Clients: 24, Params: fastParams()},
		{Servers: 2, Clients: 16, Mode: ModeRRDNS},
		{Servers: 2, Clients: 16, Mode: ModeRouter},
	} {
		res := runLOD(t, cfg)
		resolved := res.Connections + res.Drops + res.Redirects + res.Errors
		if resolved > res.Issued {
			t.Fatalf("mode %v: resolved %d > issued %d", cfg.Mode, resolved, res.Issued)
		}
		inFlight := res.Issued - resolved
		if inFlight > int64(cfg.Clients*8) {
			t.Fatalf("mode %v: %d requests unaccounted for", cfg.Mode, inFlight)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{Servers: 2, Clients: 8, Params: fastParams(), Seed: 7, Duration: 30 * time.Second}
	a := runLOD(t, cfg)
	b := runLOD(t, cfg)
	if a.Connections != b.Connections || a.Bytes != b.Bytes ||
		a.Migrations != b.Migrations || a.Drops != b.Drops {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestMigrationsHappenUnderLoad(t *testing.T) {
	res := runLOD(t, Config{Servers: 4, Clients: 64, Params: fastParams()})
	if res.Migrations == 0 {
		t.Fatal("no migrations despite overload")
	}
	// Co-op servers must end up serving traffic.
	coopConns := int64(0)
	for addr, n := range res.PerServer {
		if addr != "server01:80" {
			coopConns += n
		}
	}
	if coopConns == 0 {
		t.Fatal("co-op servers served nothing")
	}
}

func TestSingleServerSaturates(t *testing.T) {
	// One server under heavy load must cap out and drop requests.
	res := runLOD(t, Config{Servers: 1, Clients: 200, Duration: 40 * time.Second})
	if res.Drops == 0 {
		t.Fatal("no 503 drops under 200 clients on one server")
	}
	// Peak CPS near the calibrated single-node capacity (~950 CPS +/- 40%).
	if res.PeakCPS < 500 || res.PeakCPS > 1600 {
		t.Fatalf("single-server peak CPS = %.0f, want ~950", res.PeakCPS)
	}
}

func TestWarmStartScalesThroughput(t *testing.T) {
	peak := func(servers, clients int) float64 {
		res := runLOD(t, Config{
			Servers:   servers,
			Clients:   clients,
			WarmStart: true,
			Duration:  60 * time.Second,
			Params:    fastParams(),
		})
		return res.PeakCPS
	}
	p1 := peak(1, 120)
	p4 := peak(4, 240)
	if p4 < 2.2*p1 {
		t.Fatalf("4 servers peak %.0f CPS vs 1 server %.0f CPS; expected ~4x scaling", p4, p1)
	}
}

func TestHotSpotLimitsScalability(t *testing.T) {
	// SBLog's single hot JPEG must cap scaling well below LOD's (Figure 7).
	peak := func(site *dataset.Site, servers, clients int) float64 {
		res, err := Run(Config{
			Site:      site,
			Servers:   servers,
			Clients:   clients,
			WarmStart: true,
			Duration:  60 * time.Second,
			Params:    fastParams(),
			Seed:      42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakCPS
	}
	lodGain := peak(dataset.LOD(), 8, 480) / peak(dataset.LOD(), 2, 120)
	sblogGain := peak(dataset.SBLog(), 8, 480) / peak(dataset.SBLog(), 2, 120)
	if sblogGain >= lodGain {
		t.Fatalf("SBLog gain %.2fx >= LOD gain %.2fx; hot spot not limiting", sblogGain, lodGain)
	}
}

func TestReplicationRelievesHotSpot(t *testing.T) {
	run := func(replicate bool) float64 {
		p := fastParams()
		p.Replicate = replicate
		p.ReplicateThreshold = 50
		res, err := Run(Config{
			Site:      dataset.HotImage(),
			Servers:   8,
			Clients:   400,
			WarmStart: true,
			Duration:  90 * time.Second,
			Params:    p,
			Seed:      42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakCPS
	}
	off := run(false)
	on := run(true)
	if on <= off*1.1 {
		t.Fatalf("replication peak %.0f CPS <= baseline %.0f CPS; extension ineffective", on, off)
	}
}

func TestChainReplicationRelievesHotSpotInSim(t *testing.T) {
	// The proactive chain disseminator must lift HotImage throughput the
	// same way the lazy replication extension does, while the home pays
	// exactly one upload per dissemination (ChainPushBytes counts one
	// document copy per push, never one per installed replica).
	run := func(rate float64, k int) *Result {
		p := fastParams()
		p.HotReplicateRate = rate
		p.HotReplicaCount = k
		res, err := Run(Config{
			Site:      dataset.HotImage(),
			Servers:   8,
			Clients:   400,
			WarmStart: true,
			Duration:  90 * time.Second,
			Params:    p,
			Seed:      42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(0, 0)
	// 25 hits/s over a 2 s window matches the lazy extension's 50-hit
	// ReplicateThreshold, so the same documents qualify as hot.
	on := run(25, 4)
	if off.ChainPushes != 0 || off.ChainPushBytes != 0 {
		t.Fatalf("disabled run recorded chain pushes: %d (%d bytes)", off.ChainPushes, off.ChainPushBytes)
	}
	if on.ChainPushes == 0 {
		t.Fatal("no chain disseminations triggered under hot-spot load")
	}
	if on.ChainPushBytes > on.ChainPushes*100*1024 {
		t.Fatalf("chain push bytes %d exceed one copy per push (%d pushes)", on.ChainPushBytes, on.ChainPushes)
	}
	if on.PeakCPS <= off.PeakCPS*1.1 {
		t.Fatalf("chain replication peak %.0f CPS <= baseline %.0f CPS; dissemination ineffective", on.PeakCPS, off.PeakCPS)
	}
}

func TestColdStartWarmsUp(t *testing.T) {
	// Figure 8's shape: from a cold start, later CPS samples must
	// substantially exceed early ones as documents migrate out.
	res := runLOD(t, Config{
		Servers:  8,
		Clients:  240,
		Duration: 5 * time.Minute,
		Params:   fastParams(),
	})
	samples := res.CPS.Samples()
	if len(samples) < 10 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	early := samples[1].Value // skip the ramp-in sample
	var late float64
	for _, s := range samples[len(samples)-5:] {
		late += s.Value
	}
	late /= 5
	if late < 1.5*early {
		t.Fatalf("no warm-up: early %.0f CPS, late %.0f CPS", early, late)
	}
	if res.Migrations == 0 {
		t.Fatal("cold start produced no migrations")
	}
}

func TestRRDNSBaselineRuns(t *testing.T) {
	res := runLOD(t, Config{Servers: 4, Clients: 64, Mode: ModeRRDNS})
	if res.Connections == 0 || res.Errors != 0 {
		t.Fatalf("RR-DNS run: %+v", res)
	}
	// All four replicas serve traffic.
	for addr, n := range res.PerServer {
		if n == 0 {
			t.Fatalf("replica %s served nothing", addr)
		}
	}
	if res.Migrations != 0 {
		t.Fatal("baseline migrated documents")
	}
}

func TestRouterBaselineRuns(t *testing.T) {
	res := runLOD(t, Config{Servers: 4, Clients: 64, Mode: ModeRouter})
	if res.Connections == 0 || res.Errors != 0 {
		t.Fatalf("router run: conns=%d errors=%d", res.Connections, res.Errors)
	}
	if res.PerServer["router:80"] == 0 {
		t.Fatal("router forwarded nothing")
	}
}

func TestRouterBottlenecksAtScale(t *testing.T) {
	// The central router's shared NIC caps aggregate throughput; DCWS at
	// the same scale must beat it (the motivation of §1).
	peak := func(mode Mode) float64 {
		res, err := Run(Config{
			Site:      dataset.LOD(),
			Servers:   12,
			Clients:   600,
			Mode:      mode,
			WarmStart: mode == ModeDCWS,
			Duration:  60 * time.Second,
			Params:    fastParams(),
			Seed:      42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakBPS
	}
	dcwsPeak := peak(ModeDCWS)
	routerPeak := peak(ModeRouter)
	if dcwsPeak <= routerPeak {
		t.Fatalf("DCWS peak %.0f BPS <= router peak %.0f BPS at 12 servers", dcwsPeak, routerPeak)
	}
}

func TestRedirectsServedForStaleLinks(t *testing.T) {
	// Cold-start migration inevitably produces stale cached links and
	// therefore 301 redirects at the home server.
	res := runLOD(t, Config{Servers: 4, Clients: 64, Params: fastParams(), Duration: 2 * time.Minute})
	if res.Migrations > 0 && res.Redirects == 0 {
		t.Fatal("migrations occurred but no client ever followed a redirect")
	}
}

func TestThinkTimeReducesThroughput(t *testing.T) {
	base := runLOD(t, Config{Servers: 1, Clients: 16})
	slow := runLOD(t, Config{Servers: 1, Clients: 16, ThinkTime: 2 * time.Second})
	if slow.Connections >= base.Connections {
		t.Fatalf("think time did not reduce load: %d vs %d", slow.Connections, base.Connections)
	}
}

func TestSequoiaLargeFilesBPSDominates(t *testing.T) {
	// §5.3: Sequoia yields the highest BPS and the lowest CPS of the four
	// data sets.
	run := func(site *dataset.Site) (cps, bps float64) {
		res, err := Run(Config{
			Site: site, Servers: 4, Clients: 96, WarmStart: true,
			Duration: 60 * time.Second, Params: fastParams(), Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakCPS, res.PeakBPS
	}
	lodCPS, lodBPS := run(dataset.LOD())
	seqCPS, seqBPS := run(dataset.Sequoia())
	if seqBPS <= lodBPS {
		t.Fatalf("Sequoia BPS %.0f <= LOD BPS %.0f", seqBPS, lodBPS)
	}
	if seqCPS >= lodCPS {
		t.Fatalf("Sequoia CPS %.0f >= LOD CPS %.0f", seqCPS, lodCPS)
	}
}

func TestScaledCostModel(t *testing.T) {
	c := DefaultCostModel()
	s := c.Scaled(10)
	if s.ConnOverhead != 10*c.ConnOverhead {
		t.Fatalf("scaled overhead = %v", s.ConnOverhead)
	}
	if s.WorkerByteRate != c.WorkerByteRate/10 {
		t.Fatalf("scaled rate = %v", s.WorkerByteRate)
	}
	if got := c.Scaled(0); got != c {
		t.Fatal("Scaled(0) should be identity")
	}
}

func TestServiceTimeMath(t *testing.T) {
	c := DefaultCostModel()
	if st := c.serviceTime(0); st != c.ConnOverhead {
		t.Fatalf("serviceTime(0) = %v", st)
	}
	oneMB := c.serviceTime(1 << 20)
	if oneMB < c.ConnOverhead+900*time.Millisecond || oneMB > c.ConnOverhead+1100*time.Millisecond {
		t.Fatalf("serviceTime(1MiB) = %v, want ~1s+overhead", oneMB)
	}
}

func TestModeString(t *testing.T) {
	if ModeDCWS.String() != "DCWS" || ModeRRDNS.String() != "RR-DNS" ||
		ModeRouter.String() != "Router" || Mode(99).String() != "unknown" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run without site succeeded")
	}
}

func TestPerServerBalanceAfterWarmup(t *testing.T) {
	res := runLOD(t, Config{
		Servers: 4, Clients: 200, WarmStart: true,
		Duration: 60 * time.Second, Params: fastParams(),
	})
	var min, max int64 = 1 << 62, 0
	for _, n := range res.PerServer {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		t.Fatalf("a server served nothing: %v", res.PerServer)
	}
	if max > 20*min {
		t.Fatalf("extreme imbalance: %v", res.PerServer)
	}
}

func TestLatencyRecordedAndRisesUnderLoad(t *testing.T) {
	light := runLOD(t, Config{Servers: 1, Clients: 4, Duration: 30 * time.Second})
	heavy := runLOD(t, Config{Servers: 1, Clients: 200, Duration: 30 * time.Second})
	if light.Latency.Count() == 0 || heavy.Latency.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
	lm, hm := light.Latency.Mean(), heavy.Latency.Mean()
	if hm <= lm {
		t.Fatalf("saturated latency %v <= idle latency %v", hm, lm)
	}
	// An idle fetch costs roughly RTT + service time (a few ms at our
	// cost model); a saturated one includes queueing and backoff.
	if lm > 200*time.Millisecond {
		t.Fatalf("idle mean latency %v implausibly high", lm)
	}
	if heavy.Latency.Quantile(0.95) < heavy.Latency.Quantile(0.5) {
		t.Fatal("latency quantiles not monotone")
	}
}

func TestFederationCooperationBeatsIsolation(t *testing.T) {
	// The conclusion's federated scenario: four departments each home one
	// site; 70% of the load targets the first. With cooperation the busy
	// department's documents spread to its idle peers; isolated servers
	// leave three departments idle while the first saturates.
	run := func(noCoop bool) *Result {
		res, err := Run(Config{
			Sites: []*dataset.Site{
				dataset.LOD(), dataset.LOD(), dataset.LOD(), dataset.LOD(),
			},
			Servers:       4,
			Clients:       240,
			SkewFirst:     0.7,
			NoCooperation: noCoop,
			Duration:      4 * time.Minute,
			Params:        fastParams(),
			Seed:          42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	coop := run(false)
	isolated := run(true)
	if isolated.Migrations != 0 {
		t.Fatalf("isolated run migrated %d documents", isolated.Migrations)
	}
	if coop.Migrations == 0 {
		t.Fatal("cooperative run never migrated")
	}
	// Steady-state throughput (mean of the last half of samples).
	late := func(r *Result) float64 {
		s := r.CPS.Samples()
		var sum float64
		n := len(s) / 2
		for _, p := range s[n:] {
			sum += p.Value
		}
		return sum / float64(len(s)-n)
	}
	c, i := late(coop), late(isolated)
	if c < 1.2*i {
		t.Fatalf("cooperation %.0f CPS < 1.2x isolation %.0f CPS", c, i)
	}
}

func TestFederationEverySiteReachable(t *testing.T) {
	res, err := Run(Config{
		Sites:    []*dataset.Site{dataset.LOD(), dataset.MAPUG()},
		Servers:  3, // one spare pure co-op
		Clients:  32,
		Duration: 60 * time.Second,
		Params:   fastParams(),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// Both homes served traffic.
	if res.PerServer["server01:80"] == 0 || res.PerServer["server02:80"] == 0 {
		t.Fatalf("a home served nothing: %v", res.PerServer)
	}
}

func TestRevokeExpiredRebalancesShiftedLoad(t *testing.T) {
	// Exercise the T_home path in the simulator: warm-start a group, then
	// age the placements and make one coop look overloaded by reversing
	// which documents receive traffic. The ledger-driven revocation must
	// fire without breaking navigation.
	p := fastParams()
	p.HomeReMigrateInterval = 30 * time.Second
	res := runLOD(t, Config{
		Servers:   3,
		Clients:   48,
		WarmStart: true,
		Duration:  3 * time.Minute,
		Params:    p,
	})
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// With a short T_home and ongoing imbalance churn, at least some
	// revocations typically occur; if none did, the ledger logic was at
	// least exercised without corrupting state (conservation holds).
	resolved := res.Connections + res.Drops + res.Redirects + res.Errors
	if resolved > res.Issued {
		t.Fatalf("conservation violated: %d > %d", resolved, res.Issued)
	}
}

func TestSimRevokeDropsHostedCopy(t *testing.T) {
	w, home := testServer(t)
	coop := newSimServer(w, "s2:80", w.params, w.cost)
	w.servers["s2:80"] = coop
	w.order = append(w.order, "s2:80")
	home.loadSite(dataset.HotImage())
	home.migrate("/big.jpg", "s2:80")
	// Materialize the copy at the coop via the internal fetch path.
	gotReply := make(chan reply, 1)
	coop.admitCoop(target{Addr: "s2:80", Home: "s1:80", Name: "/big.jpg"},
		func(r reply) { gotReply <- r })
	w.drain(w.now.Add(time.Minute))
	select {
	case r := <-gotReply:
		if r.status != 200 {
			t.Fatalf("coop fetch = %d", r.status)
		}
	default:
		t.Fatal("coop fetch never completed")
	}
	if len(coop.hosted) != 1 {
		t.Fatalf("hosted = %d", len(coop.hosted))
	}
	home.revoke("/big.jpg")
	if len(coop.hosted) != 0 {
		t.Fatal("revocation did not drop the hosted copy")
	}
	if d := home.docs["/big.jpg"]; d.location != "" {
		t.Fatalf("location after revoke = %q", d.location)
	}
}
