package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled action in virtual time. seq breaks timestamp ties
// in scheduling order, keeping runs deterministic.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// schedule runs fn after d of virtual time.
func (w *World) schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	w.scheduleAt(w.now.Add(d), fn)
}

// scheduleAt runs fn at the given virtual time (clamped to now).
func (w *World) scheduleAt(at time.Time, fn func()) {
	if at.Before(w.now) {
		at = w.now
	}
	w.seq++
	heap.Push(&w.queue, &event{at: at, seq: w.seq, fn: fn})
}

// drain executes events in order until the stop time is reached or the
// queue empties.
func (w *World) drain(stopAt time.Time) {
	for w.queue.Len() > 0 {
		e := heap.Pop(&w.queue).(*event)
		if e.at.After(stopAt) {
			// Past the horizon: the run is over.
			return
		}
		w.now = e.at
		e.fn()
	}
}
