package sim

import (
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
)

// TestSimMatchesLiveMigrationDecision cross-validates the simulator against
// the production server: given the same site, the same per-document request
// counts, and one idle co-op, both must select the same document for the
// first migration. This is the evidence behind DESIGN.md's claim that the
// simulator substitutes only hardware, not policy.
func TestSimMatchesLiveMigrationDecision(t *testing.T) {
	site := dataset.HotImage()
	// The request trace: hammer one page and touch a few others.
	trace := []string{
		"/pages/p03.html", "/pages/p03.html", "/pages/p03.html",
		"/pages/p03.html", "/pages/p03.html", "/pages/p03.html",
		"/pages/p07.html", "/pages/p07.html",
		"/pages/p11.html",
		"/index.html",
	}
	params := dcws.Params{MigrationThreshold: 1}

	// --- Simulator side ---
	w := &World{
		cfg:     Config{},
		params:  mergeParams(params),
		cost:    DefaultCostModel(),
		now:     time.Unix(0, 0),
		servers: make(map[string]*simServer),
	}
	w.stopAt = w.now.Add(time.Hour)
	simHome := newSimServer(w, "home:80", w.params, w.cost)
	simHome.loadSite(site)
	simCoop := newSimServer(w, "coop:81", w.params, w.cost)
	w.servers["home:80"] = simHome
	w.servers["coop:81"] = simCoop
	w.order = []string{"home:80", "coop:81"}
	for _, ep := range site.EntryPoints {
		if d, ok := simHome.docs[ep]; ok {
			d.entry = true
		}
	}
	w.seedPeers()
	for _, name := range trace {
		simHome.serveHome(name)
		simHome.windowConns++
	}
	simHome.statsTick()
	simMigrated := ""
	for name, d := range simHome.docs {
		if d.location != "" {
			simMigrated = name
		}
	}

	// --- Live server side ---
	fabric := memnet.NewFabric()
	st := store.NewMem()
	if err := site.Materialize(st, 1.0); err != nil {
		t.Fatal(err)
	}
	live, err := dcws.New(dcws.Config{
		Origin:      naming.Origin{Host: "home", Port: 80},
		Store:       st,
		Network:     fabric,
		Clock:       clock.NewManual(time.Unix(0, 0)),
		EntryPoints: site.EntryPoints,
		Peers:       []string{"coop:81"},
		Params:      params,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Start(); err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	coop, err := dcws.New(dcws.Config{
		Origin:  naming.Origin{Host: "coop", Port: 81},
		Store:   store.NewMem(),
		Network: fabric,
		Clock:   clock.NewManual(time.Unix(0, 0)),
		Peers:   []string{"home:80"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coop.Start(); err != nil {
		t.Fatal(err)
	}
	defer coop.Close()

	client := httpx.NewClient(httpx.DialerFunc(fabric.Dial))
	for _, name := range trace {
		if _, err := client.Get("home:80", name, nil); err != nil {
			t.Fatal(err)
		}
	}
	live.TickStats()
	liveMigrated := ""
	for name := range live.Graph().Migrated() {
		liveMigrated = name
	}

	if simMigrated == "" || liveMigrated == "" {
		t.Fatalf("no migration: sim=%q live=%q", simMigrated, liveMigrated)
	}
	if simMigrated != liveMigrated {
		t.Fatalf("decision divergence: sim migrated %q, live server migrated %q",
			simMigrated, liveMigrated)
	}
	// Note: requesting a page also fetches its embedded image client-side
	// in the full benchmark; this trace requests pages only, so both
	// implementations see identical per-document hit counts and both must
	// pick the hottest non-entry page by Algorithm 1.
	if simMigrated != "/pages/p03.html" {
		t.Fatalf("Algorithm 1 picked %q, want the hottest page /pages/p03.html", simMigrated)
	}
}
