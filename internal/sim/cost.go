// Package sim is a discrete-event simulation of a DCWS server group under
// the Algorithm 2 client workload. It substitutes for the paper's testbed —
// 64 Pentium-200 workstations on switched 100 Mbps Ethernet — which this
// reproduction does not have (and which a single-core host could not
// emulate with real processes). The *decision logic* is the production
// code: the local document graph (internal/graph), the global load table
// (internal/glt), Algorithm 1 and the rate gates (internal/policy), and the
// ~migrate naming scheme (internal/naming) all run unmodified; only CPUs,
// disks, and wires are replaced by a calibrated cost model.
//
// The simulator also implements two baselines from the related-work
// section: round-robin DNS scheduling (NCSA-style) and a centralized TCP
// router (IBM/LocalDirector-style), so the benches can show where DCWS wins
// and where a central resource bottlenecks.
package sim

import "time"

// CostModel captures the per-node service costs of one simulated
// workstation. Defaults are calibrated so a single simulated server peaks
// near the paper's single-node figures on the LOD mix (~950 connections/s
// with 12 worker threads).
type CostModel struct {
	// ConnOverhead is the fixed worker time per request: accept, parse,
	// respond, TCP setup/teardown amortization.
	ConnOverhead time.Duration
	// WorkerByteRate is how fast one worker moves document bytes
	// (disk+copy), bytes per second.
	WorkerByteRate float64
	// NICByteRate is the server's network interface bandwidth in bytes
	// per second (paper: 100 Mbps switched Ethernet).
	NICByteRate float64
	// RTT is the client-server round-trip time.
	RTT time.Duration
	// RedirectBytes is the size of a 301 response.
	RedirectBytes int64
	// RedirectOverhead is the worker time for a 301 (no disk access; §4.4
	// says redirections are cheap).
	RedirectOverhead time.Duration
	// ParseCost is the time to parse a document's hyperlinks (§5.3
	// measured ~3 ms per average document).
	ParseCost time.Duration
	// RegenCost is the time to reconstruct a dirty document (§5.3
	// measured ~20 ms per average document).
	RegenCost time.Duration
	// RouterOverhead is the per-packet-stream cost of the centralized
	// router baseline.
	RouterOverhead time.Duration
	// ClientStepDelay is the client-side processing time per navigation
	// step (request parsing, HTML parsing, link selection). The paper's
	// client workstations were CPU-bound at roughly 700 CPS across ~8
	// processes x 5 threads, i.e. a client thread sustains a few tens of
	// connections per second; this delay reproduces that pacing so the
	// client-count axis of Figure 6 is meaningful.
	ClientStepDelay time.Duration
}

// DefaultCostModel returns the calibrated model.
func DefaultCostModel() CostModel {
	return CostModel{
		ConnOverhead:     10 * time.Millisecond,
		WorkerByteRate:   1 << 20,               // 1 MiB/s per worker
		NICByteRate:      12.5 * float64(1<<20), // ~100 Mbps
		RTT:              2 * time.Millisecond,
		RedirectBytes:    128,
		RedirectOverhead: 2 * time.Millisecond,
		ParseCost:        3 * time.Millisecond,
		RegenCost:        20 * time.Millisecond,
		RouterOverhead:   800 * time.Microsecond,
		ClientStepDelay:  25 * time.Millisecond,
	}
}

// Scaled returns the model with every node slowed down by factor (>1 slows;
// e.g. 10 gives one tenth of the capacity). Experiments use scaled-down
// capacity so a 30-virtual-minute, 16-server run completes in seconds of
// real time; reported curves keep their shape, only the absolute axis
// shrinks by the same factor.
func (c CostModel) Scaled(factor float64) CostModel {
	if factor <= 0 {
		factor = 1
	}
	c.ConnOverhead = time.Duration(float64(c.ConnOverhead) * factor)
	c.WorkerByteRate /= factor
	c.NICByteRate /= factor
	c.RedirectOverhead = time.Duration(float64(c.RedirectOverhead) * factor)
	c.ParseCost = time.Duration(float64(c.ParseCost) * factor)
	c.RegenCost = time.Duration(float64(c.RegenCost) * factor)
	c.RouterOverhead = time.Duration(float64(c.RouterOverhead) * factor)
	c.ClientStepDelay = time.Duration(float64(c.ClientStepDelay) * factor)
	return c
}

// analyticCapacity is the simulated counterpart of the live server's
// calibrated capacity: the throughput the worker pool sustains on a
// reference ~8 KiB document. The simulator knows its cost model exactly,
// so no EWMA tracking is needed — the analytic value IS the achievable
// rate. Units follow the configured load metric: documents/s for the CPS
// metric, bytes/s for BPS.
func (c CostModel) analyticCapacity(workers int, useBPS bool) float64 {
	const refBytes = 8 << 10
	cps := float64(workers) / c.serviceTime(refBytes).Seconds()
	if useBPS {
		return cps * refBytes
	}
	return cps
}

// serviceTime is the worker occupancy for serving size bytes.
func (c CostModel) serviceTime(size int64) time.Duration {
	return c.ConnOverhead + time.Duration(float64(size)/c.WorkerByteRate*float64(time.Second))
}

// txTime is the NIC occupancy for size bytes.
func (c CostModel) txTime(size int64) time.Duration {
	return time.Duration(float64(size) / c.NICByteRate * float64(time.Second))
}
