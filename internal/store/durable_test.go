package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestDirPutLeftoverTempIgnored: a crash mid-Put leaves a temp file
// behind; it must never surface as a document through List/Has/Get, and a
// retried Put must succeed around it.
func TestDirPutLeftoverTempIgnored(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("/dir/doc.html", []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write a crash leaves: a partial temp file next to
	// the document.
	torn := filepath.Join(root, "dir", ".put-crashed.tmp")
	if err := os.WriteFile(torn, []byte("par"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n != "/dir/doc.html" {
			t.Fatalf("List surfaced %q", n)
		}
	}
	if d.Has("/dir/.put-crashed.tmp") {
		t.Fatal("Has reported the torn temp file")
	}
	got, err := d.Get("/dir/doc.html")
	if err != nil || string(got) != "good" {
		t.Fatalf("Get after torn write: %q, %v", got, err)
	}
	if err := d.Put("/dir/doc.html", []byte("newer")); err != nil {
		t.Fatalf("Put with leftover temp present: %v", err)
	}
	got, _ = d.Get("/dir/doc.html")
	if string(got) != "newer" {
		t.Fatalf("after retry Get = %q", got)
	}
}

// TestDirPutConcurrentSameName: unique temp names mean concurrent Puts to
// one document can never clobber each other's temp file; the final content
// is one of the writers' payloads, whole.
func TestDirPutConcurrentSameName(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 1024)
		wg.Add(1)
		go func(p []byte) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := d.Put("/contended.html", p); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(payloads[i])
	}
	wg.Wait()
	got, err := d.Get("/contended.html")
	if err != nil {
		t.Fatal(err)
	}
	whole := false
	for _, p := range payloads {
		if bytes.Equal(got, p) {
			whole = true
			break
		}
	}
	if !whole {
		t.Fatalf("document torn after concurrent Put: %d bytes, first byte %q", len(got), got[0])
	}
	// No temp debris left behind.
	debris, _ := filepath.Glob(filepath.Join(d.root, ".put-*.tmp"))
	if len(debris) != 0 {
		t.Fatalf("leftover temp files: %v", debris)
	}
}

func TestDirGetSharedSmallCopies(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put("/small.html", []byte("tiny"))
	got, err := d.GetShared("/small.html")
	if err != nil || string(got) != "tiny" {
		t.Fatalf("GetShared small: %q, %v", got, err)
	}
}

func TestDirGetSharedLargeMmap(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	big := bytes.Repeat([]byte("0123456789abcdef"), mmapThreshold/16+16)
	if err := d.Put("/big.bin", big); err != nil {
		t.Fatal(err)
	}
	a, err := d.GetShared("/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, big) {
		t.Fatal("mmap body mismatch")
	}
	b, err := d.GetShared("/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("second GetShared did not reuse the cached mapping")
	}
	if len(d.maps) != 1 {
		t.Fatalf("mapping cache holds %d entries, want 1", len(d.maps))
	}
}

// TestDirGetSharedRetireOnPut: replacing a document retires its mapping —
// the old slice stays readable (grace period) while new readers see the
// new content.
func TestDirGetSharedRetireOnPut(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	v1 := bytes.Repeat([]byte("v1v1"), mmapThreshold/4+64)
	v2 := bytes.Repeat([]byte("v2v2"), mmapThreshold/4+64)
	d.Put("/doc.bin", v1)
	old, err := d.GetShared("/doc.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Rename gives the new content a new inode; mtime may be equal at
	// coarse resolution, so nudge it to make the staleness check fire.
	if err := d.Put("/doc.bin", v2); err != nil {
		t.Fatal(err)
	}
	p, _ := d.path("/doc.bin")
	os.Chtimes(p, time.Now(), time.Now().Add(time.Second))
	cur, err := d.GetShared("/doc.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cur, v2) {
		t.Fatal("GetShared served stale content after Put")
	}
	if !bytes.Equal(old, v1) {
		t.Fatal("retired mapping no longer readable within grace period")
	}
	d.mu.Lock()
	retired := len(d.retired)
	d.mu.Unlock()
	if retired == 0 {
		t.Fatal("old mapping was not retired")
	}
	// Force the sweep past the grace period; the retired mapping unmaps.
	d.mu.Lock()
	for _, m := range d.retired {
		m.retiredAt = m.retiredAt.Add(-2 * retireGrace)
	}
	d.sweepRetiredLocked(time.Now())
	retired = len(d.retired)
	d.mu.Unlock()
	if retired != 0 {
		t.Fatalf("sweep left %d retired mappings", retired)
	}
}

func TestDirGetSharedDeleteRetires(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	big := bytes.Repeat([]byte("x"), mmapThreshold+128)
	d.Put("/gone.bin", big)
	if _, err := d.GetShared("/gone.bin"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("/gone.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetShared("/gone.bin"); err == nil {
		t.Fatal("GetShared served a deleted document")
	}
	d.mu.Lock()
	live, retired := len(d.maps), len(d.retired)
	d.mu.Unlock()
	if live != 0 || retired != 1 {
		t.Fatalf("after delete: %d live, %d retired mappings", live, retired)
	}
}

func TestDirGetSharedConcurrent(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	big := bytes.Repeat([]byte("concurrency"), mmapThreshold/11+32)
	for i := 0; i < 4; i++ {
		d.Put(fmt.Sprintf("/doc-%d.bin", i), big)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("/doc-%d.bin", i%4)
				data, err := d.GetShared(name)
				if err != nil {
					t.Errorf("GetShared: %v", err)
					return
				}
				if len(data) != len(big) {
					t.Errorf("short body: %d", len(data))
					return
				}
				if g == 0 && i%10 == 0 {
					d.Put(name, big)
				}
			}
		}(g)
	}
	wg.Wait()
}
