package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// storeImpls returns fresh instances of every Store implementation.
func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem": NewMem(),
		"dir": dir,
	}
}

func TestStorePutGet(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("/a/b.html", []byte("<html>x</html>")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("/a/b.html")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "<html>x</html>" {
				t.Fatalf("Get = %q", got)
			}
		})
	}
}

func TestStoreGetMissing(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			_, err := s.Get("/missing.html")
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreOverwrite(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/d.html", []byte("v1"))
			s.Put("/d.html", []byte("v2"))
			got, _ := s.Get("/d.html")
			if string(got) != "v2" {
				t.Fatalf("Get after overwrite = %q", got)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/d.html", []byte("x"))
			if err := s.Delete("/d.html"); err != nil {
				t.Fatal(err)
			}
			if s.Has("/d.html") {
				t.Fatal("document still present after Delete")
			}
			if err := s.Delete("/d.html"); err != nil {
				t.Fatalf("double delete errored: %v", err)
			}
		})
	}
}

func TestStoreHas(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if s.Has("/x") {
				t.Fatal("Has on empty store")
			}
			s.Put("/x", []byte("1"))
			if !s.Has("/x") {
				t.Fatal("Has after Put = false")
			}
		})
	}
}

func TestStoreListSorted(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/b.html", []byte("b"))
			s.Put("/a/z.html", []byte("z"))
			s.Put("/a/a.html", []byte("a"))
			names, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"/a/a.html", "/a/z.html", "/b.html"}
			if len(names) != 3 {
				t.Fatalf("List = %v", names)
			}
			for i := range want {
				if names[i] != want[i] {
					t.Fatalf("List = %v, want %v", names, want)
				}
			}
		})
	}
}

func TestStoreSize(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/d", make([]byte, 4096))
			sz, err := s.Size("/d")
			if err != nil || sz != 4096 {
				t.Fatalf("Size = %d, %v", sz, err)
			}
			if _, err := s.Size("/missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Size(missing) err = %v", err)
			}
		})
	}
}

func TestStoreNameNormalization(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("noslash.html", []byte("x"))
			if !s.Has("/noslash.html") {
				t.Fatal("unrooted Put not normalized")
			}
			s.Put("/a/./b.html", []byte("y"))
			if !s.Has("/a/b.html") {
				t.Fatal("dot segments not cleaned")
			}
		})
	}
}

func TestStoreRejectsEscapingNames(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("/../../etc/passwd", []byte("evil")); err == nil {
				t.Fatal("path escape accepted")
			}
			if err := s.Put("", []byte("x")); err == nil {
				t.Fatal("empty name accepted")
			}
		})
	}
}

func TestMemGetReturnsCopy(t *testing.T) {
	s := NewMem()
	s.Put("/d", []byte("orig"))
	got, _ := s.Get("/d")
	got[0] = 'X'
	again, _ := s.Get("/d")
	if string(again) != "orig" {
		t.Fatal("Get exposed internal buffer")
	}
}

func TestMemPutCopiesInput(t *testing.T) {
	s := NewMem()
	data := []byte("orig")
	s.Put("/d", data)
	data[0] = 'X'
	got, _ := s.Get("/d")
	if string(got) != "orig" {
		t.Fatal("Put retained caller's buffer")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					doc := fmt.Sprintf("/doc%d.html", i)
					for j := 0; j < 50; j++ {
						s.Put(doc, []byte(fmt.Sprintf("v%d", j)))
						s.Get(doc)
						s.Has(doc)
					}
				}(i)
			}
			wg.Wait()
			names, _ := s.List()
			if len(names) != 8 {
				t.Fatalf("List after concurrent writes = %d entries", len(names))
			}
		})
	}
}

func TestCopy(t *testing.T) {
	src := NewMem()
	src.Put("/a.html", []byte("a"))
	src.Put("/sub/b.gif", []byte("bb"))
	dst := NewMem()
	if err := Copy(dst, src); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Get("/sub/b.gif")
	if err != nil || string(got) != "bb" {
		t.Fatalf("copied doc = %q, %v", got, err)
	}
}

func TestTotalBytes(t *testing.T) {
	s := NewMem()
	s.Put("/a", make([]byte, 100))
	s.Put("/b", make([]byte, 250))
	total, err := TotalBytes(s)
	if err != nil || total != 350 {
		t.Fatalf("TotalBytes = %d, %v", total, err)
	}
}

func TestDirPersistence(t *testing.T) {
	root := t.TempDir()
	d1, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	d1.Put("/persist/x.html", []byte("still here"))
	// A second store over the same directory sees the document.
	d2, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get("/persist/x.html")
	if err != nil || string(got) != "still here" {
		t.Fatalf("Get via second store = %q, %v", got, err)
	}
}

func TestCleanName(t *testing.T) {
	cases := map[string]string{
		"/a/b.html":  "/a/b.html",
		"a/b.html":   "/a/b.html",
		"/a/./b":     "/a/b",
		"//double":   "/double",
		"/trailing/": "/trailing",
	}
	for in, want := range cases {
		got, err := CleanName(in)
		if err != nil || got != want {
			t.Errorf("CleanName(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "/..", "/a/../b", "../up"} {
		if _, err := CleanName(bad); err == nil {
			t.Errorf("CleanName(%q) succeeded", bad)
		}
	}
}

// Property: Put/Get round-trips arbitrary binary content for both
// implementations.
func TestStoreRoundTripProperty(t *testing.T) {
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	impls := map[string]Store{"mem": NewMem(), "dir": dir}
	for name, s := range impls {
		s := s
		f := func(data []byte, n uint8) bool {
			doc := fmt.Sprintf("/p/doc%d.bin", n)
			if err := s.Put(doc, data); err != nil {
				return false
			}
			got, err := s.Get(doc)
			if err != nil {
				return false
			}
			return bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
