//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy GetShared path at compile time.
const mmapSupported = true

// mmapFile maps size bytes of the file at path read-only and private.
func mmapFile(path string, size int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) {
	if data != nil {
		syscall.Munmap(data)
	}
}
