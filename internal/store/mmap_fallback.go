//go:build !unix

package store

import "errors"

// mmapSupported gates the zero-copy GetShared path at compile time; on
// platforms without Unix mmap GetShared always falls back to a copy.
const mmapSupported = false

func mmapFile(path string, size int64) ([]byte, error) {
	return nil, errors.New("store: mmap unsupported on this platform")
}

func munmapFile(data []byte) {}
