// Package store abstracts a DCWS server's local document storage — the
// "server's local disk" of the paper. Two implementations are provided: a
// memory-backed store used by tests, the simulator, and single-process
// clusters, and a directory-backed store for standalone dcwsd deployments.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned when a document does not exist in the store.
var ErrNotFound = errors.New("store: document not found")

// Store is the document storage interface. Document names are
// slash-separated absolute paths like "/dir1/foo.html".
type Store interface {
	// Get returns the contents of the named document.
	Get(name string) ([]byte, error)
	// Put creates or replaces the named document.
	Put(name string, data []byte) error
	// Delete removes the named document. Deleting a missing document is
	// not an error.
	Delete(name string) error
	// Has reports whether the named document exists.
	Has(name string) bool
	// List returns every document name in lexicographic order.
	List() ([]string, error)
	// Size returns the byte size of the named document.
	Size(name string) (int64, error)
}

// SharedGetter is implemented by stores that can return a document's
// bytes without a defensive copy. The returned slice is shared: callers
// MUST treat it as immutable. Mem satisfies the contract because Put
// installs a fresh copy rather than mutating the stored slice in place,
// so outstanding references never observe a change.
type SharedGetter interface {
	GetShared(name string) ([]byte, error)
}

// GetShared returns the named document's bytes without copying when st
// supports the zero-copy path, falling back to an ordinary Get. The
// result must be treated as immutable.
func GetShared(st Store, name string) ([]byte, error) {
	if sg, ok := st.(SharedGetter); ok {
		return sg.GetShared(name)
	}
	return st.Get(name)
}

// CleanName normalizes a document name to a rooted, slash-separated path
// with no dot segments. It returns an error for names that escape the root.
// Already-canonical names (the request hot path) are returned as-is
// without allocating.
func CleanName(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("store: empty document name")
	}
	if isCanonicalName(name) {
		return name, nil
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == ".." {
			return "", fmt.Errorf("store: name %q escapes root", name)
		}
	}
	if !strings.HasPrefix(name, "/") {
		name = "/" + name
	}
	return filepath.ToSlash(filepath.Clean(name)), nil
}

// isCanonicalName reports whether name is already rooted and canonical: it
// starts with '/', has no empty, "." or ".." segments, and no trailing
// slash. Such names pass CleanName unchanged.
func isCanonicalName(name string) bool {
	if name[0] != '/' || name[len(name)-1] == '/' {
		return false
	}
	start := 1
	for i := 1; i <= len(name); i++ {
		if i == len(name) || name[i] == '/' {
			seg := name[start:i]
			if seg == "" || seg == "." || seg == ".." {
				return false
			}
			start = i + 1
		}
	}
	return true
}

// Mem is an in-memory Store safe for concurrent use.
type Mem struct {
	mu   sync.RWMutex
	docs map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{docs: make(map[string][]byte)}
}

// Get implements Store.
func (m *Mem) Get(name string) ([]byte, error) {
	name, err := CleanName(name)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.docs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// GetShared implements SharedGetter: it returns the stored slice itself.
// The contract holds because Put replaces the map entry with a fresh copy
// instead of writing into the old slice.
func (m *Mem) GetShared(name string) ([]byte, error) {
	name, err := CleanName(name)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.docs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return data, nil
}

// Put implements Store.
func (m *Mem) Put(name string, data []byte) error {
	name, err := CleanName(name)
	if err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.docs[name] = cp
	m.mu.Unlock()
	return nil
}

// Delete implements Store.
func (m *Mem) Delete(name string) error {
	name, err := CleanName(name)
	if err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.docs, name)
	m.mu.Unlock()
	return nil
}

// Has implements Store.
func (m *Mem) Has(name string) bool {
	name, err := CleanName(name)
	if err != nil {
		return false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.docs[name]
	return ok
}

// List implements Store.
func (m *Mem) List() ([]string, error) {
	m.mu.RLock()
	names := make([]string, 0, len(m.docs))
	for n := range m.docs {
		names = append(names, n)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// Size implements Store.
func (m *Mem) Size(name string) (int64, error) {
	name, err := CleanName(name)
	if err != nil {
		return 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.docs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(data)), nil
}

// Dir is a Store backed by a directory tree on the real filesystem.
// Large documents are served zero-copy through a per-file mmap cache (see
// GetShared); writes are crash-atomic (see Put).
type Dir struct {
	root string

	mu      sync.Mutex
	maps    map[string]*mapping // live mappings by absolute path
	retired []*mapping          // unmapped only after a grace period
	closed  bool
}

// mapping is one mmap'd document body. Once created its data is
// immutable: Put never rewrites a document file in place (temp + rename
// gives the new content a new inode), so readers holding the slice are
// safe until the pages are unmapped.
type mapping struct {
	data      []byte
	size      int64
	mtime     time.Time
	retiredAt time.Time
}

// mmapThreshold is the body size below which GetShared copies instead of
// mapping — page-granular mmap bookkeeping costs more than a small copy.
const mmapThreshold = 64 << 10

// retireGrace is how long a superseded mapping stays valid after being
// retired, protecting readers that obtained the shared slice just before
// the document was replaced.
const retireGrace = time.Minute

// NewDir returns a store rooted at dir, creating it if necessary.
func NewDir(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return &Dir{root: abs, maps: make(map[string]*mapping)}, nil
}

func (d *Dir) path(name string) (string, error) {
	name, err := CleanName(name)
	if err != nil {
		return "", err
	}
	// The ".tmp" suffix is reserved for in-flight Put temp files; torn
	// leftovers from a crash must not be addressable as documents.
	if strings.HasSuffix(name, ".tmp") {
		return "", fmt.Errorf("store: name %q uses reserved suffix .tmp", name)
	}
	return filepath.Join(d.root, filepath.FromSlash(name)), nil
}

// Get implements Store.
func (d *Dir) Get(name string) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return data, err
}

// GetShared implements SharedGetter. Bodies at or above mmapThreshold are
// served from an mmap of the document file — no copy, no heap allocation
// for the body — keyed by path and validated against the file's current
// size and mtime. Smaller bodies, and platforms without mmap support, fall
// back to an ordinary read. The returned slice is immutable (Put replaces
// files by rename, never in place) and stays mapped for at least
// retireGrace after the document changes.
func (d *Dir) GetShared(name string) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, err
	}
	if info.Size() < mmapThreshold || !mmapSupported {
		return d.Get(name)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return d.Get(name)
	}
	d.sweepRetiredLocked(time.Now())
	if m, ok := d.maps[p]; ok {
		if m.size == info.Size() && m.mtime.Equal(info.ModTime()) {
			data := m.data
			d.mu.Unlock()
			return data, nil
		}
		d.retireLocked(p)
	}
	d.mu.Unlock()

	data, err := mmapFile(p, info.Size())
	if err != nil {
		return d.Get(name) // mmap failure is not fatal; copy instead
	}
	m := &mapping{data: data, size: info.Size(), mtime: info.ModTime()}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		munmapFile(data)
		return d.Get(name)
	}
	if prev, ok := d.maps[p]; ok {
		// Lost a race with another GetShared; serve the winner's mapping.
		d.mu.Unlock()
		munmapFile(data)
		return prev.data, nil
	}
	d.maps[p] = m
	d.mu.Unlock()
	return data, nil
}

// retireLocked moves the mapping for p (if any) to the retired list; the
// pages stay valid for retireGrace so in-flight readers finish safely.
func (d *Dir) retireLocked(p string) {
	if m, ok := d.maps[p]; ok {
		m.retiredAt = time.Now()
		d.retired = append(d.retired, m)
		delete(d.maps, p)
	}
}

// sweepRetiredLocked unmaps retired mappings older than the grace period.
func (d *Dir) sweepRetiredLocked(now time.Time) {
	kept := d.retired[:0]
	for _, m := range d.retired {
		if now.Sub(m.retiredAt) >= retireGrace {
			munmapFile(m.data)
		} else {
			kept = append(kept, m)
		}
	}
	d.retired = kept
}

// Close unmaps every cached document body. Callers must not use slices
// previously returned by GetShared after Close.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	for p, m := range d.maps {
		munmapFile(m.data)
		delete(d.maps, p)
	}
	for _, m := range d.retired {
		munmapFile(m.data)
	}
	d.retired = nil
	return nil
}

// Put implements Store. The write is crash-atomic: data goes to a
// uniquely named temp file, is fsynced, renamed over the target, and the
// parent directory entry fsynced — a crash at any point leaves either the
// old document or the new one, never a torn body.
func (d *Dir) Put(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	parent := filepath.Dir(p)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(parent, ".put-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(parent)
	d.mu.Lock()
	d.retireLocked(p)
	d.mu.Unlock()
	return nil
}

// Delete implements Store.
func (d *Dir) Delete(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.retireLocked(p)
	d.mu.Unlock()
	err = os.Remove(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// syncDir best-effort fsyncs a directory so a just-renamed entry survives
// an OS crash. Platforms that cannot fsync directories report errors,
// which are ignored.
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	f.Sync()
	f.Close()
}

// Has implements Store.
func (d *Dir) Has(name string) bool {
	p, err := d.path(name)
	if err != nil {
		return false
	}
	info, err := os.Stat(p)
	return err == nil && !info.IsDir()
}

// List implements Store.
func (d *Dir) List() ([]string, error) {
	var names []string
	err := filepath.WalkDir(d.root, func(p string, entry fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if entry.IsDir() || strings.HasSuffix(p, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		names = append(names, "/"+filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Size implements Store.
func (d *Dir) Size(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	info, err := os.Stat(p)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Copy copies every document from src to dst.
func Copy(dst, src Store) error {
	names, err := src.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		data, err := src.Get(n)
		if err != nil {
			return err
		}
		if err := dst.Put(n, data); err != nil {
			return err
		}
	}
	return nil
}

// TotalBytes sums the sizes of all documents in s.
func TotalBytes(s Store) (int64, error) {
	names, err := s.List()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range names {
		sz, err := s.Size(n)
		if err != nil {
			return 0, err
		}
		total += sz
	}
	return total, nil
}
