package dcws

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"dcws/internal/glt"
	"dcws/internal/httpx"
	"dcws/internal/naming"
	"dcws/internal/resilience"
)

// TestHomeCrashCoopKeepsServing covers §4.5 case 4: "a co-op server should
// not throw away any data until absolutely necessary ... in order to make
// that data available in case of a home server crash."
func TestHomeCrashCoopKeepsServing(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	// Materialize the copy at the coop.
	if resp := w.get("coop:81", "/~migrate/home/80/page.html"); resp.Status != 200 {
		t.Fatalf("pre-crash fetch = %d", resp.Status)
	}
	// Home crashes.
	home.Close()
	delete(w.servers, "home:80")

	// The coop still serves the hosted copy.
	resp := w.get("coop:81", "/~migrate/home/80/page.html")
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "pic.gif") {
		t.Fatalf("post-crash coop serve = %d %q", resp.Status, resp.Body)
	}
	// A validation pass cannot reach the home, but must NOT drop the copy.
	coop.runValidatorTick()
	resp = w.get("coop:81", "/~migrate/home/80/page.html")
	if resp.Status != 200 {
		t.Fatalf("copy discarded after failed validation: %d", resp.Status)
	}
	if coop.CoopDocCount() != 1 {
		t.Fatalf("coop dropped the crashed home's document: %d", coop.CoopDocCount())
	}
}

// TestCoopCrashMidFetch: a request for a logically-migrated document whose
// coop cannot reach the home is answered 503, and the client can retry.
func TestCoopUnreachableHomeGives503(t *testing.T) {
	w := newWorld(t)
	w.addServer("coop", 81, nil, nil, Params{})
	// The home was never started: the coop's lazy fetch fails.
	resp := w.get("coop:81", "/~migrate/ghost/80/doc.html")
	if resp.Status != 503 {
		t.Fatalf("status = %d, want 503 when home unreachable", resp.Status)
	}
}

// TestRevokeUnreachableCoopStillRestoresHome: revocation must succeed
// locally even when the coop cannot be told (it will age out at
// validation).
func TestRevokeUnreachableCoopStillRestoresHome(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")
	coop.Close()
	delete(w.servers, "coop:81")

	home.revoke("/page.html")
	if loc, _ := home.Graph().Location("/page.html"); loc != "" {
		t.Fatalf("location after revoke = %q", loc)
	}
	resp := w.get("home:80", "/page.html")
	if resp.Status != 200 {
		t.Fatalf("home serve after revoke = %d", resp.Status)
	}
}

// TestOrphanedCoopCopyDroppedAtValidation: when the home re-migrates a
// document elsewhere behind the coop's back, the coop discards its copy at
// the next validation pass.
func TestOrphanedCoopCopyDroppedAtValidation(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	coop := w.servers["coop:81"]
	w.addServer("coop2", 82, nil, nil, Params{})
	w.get("coop:81", "/~migrate/home/80/page.html")
	if coop.CoopDocCount() != 1 {
		t.Fatal("setup: coop has no copy")
	}
	// Home reassigns the document to coop2 directly (simulating a
	// re-migration the first coop never heard about).
	home.revoke("/page.html")
	// revoke() notified coop; force the copy back to simulate a missed
	// revocation instead.
	home.migrate("/page.html", "coop2:82")
	w.get("coop:81", "/~migrate/home/80/page.html") // refetch attempt
	// The fetch relays a redirect since coop:81 is no longer authorized;
	// any remaining state is cleared by validation.
	coop.runValidatorTick()
	if n := coop.CoopDocCount(); n != 0 {
		t.Fatalf("orphaned copy still hosted: %d", n)
	}
	// And the document remains reachable end to end via coop2.
	final := w.follow("home:80", "/page.html")
	if final.Status != 200 {
		t.Fatalf("document unreachable after reassignment: %d", final.Status)
	}
}

// TestPingerRecoversFromTransientFailure: failures below the threshold must
// not trigger a recall.
func TestPingerTransientFailureTolerated(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")
	// One failed pinger round (coop briefly unreachable).
	l := w.fabric // close and reopen the coop listener is not supported;
	_ = l
	// Instead simulate by making the entry stale and failing fewer than
	// MaxPingFailures times against a live server — pings succeed, so
	// failures reset.
	w.clock.Advance(time.Hour)
	home.runPingerTick()
	if loc, _ := home.Graph().Location("/page.html"); loc != "coop:81" {
		t.Fatalf("healthy coop lost its document: %q", loc)
	}
	if coop.CoopDocCount() != 1 {
		t.Fatal("copy vanished")
	}
}

// TestPiggybackSurvivesForeignHeaders: unknown extension headers from other
// implementations must be ignored gracefully.
func TestForeignExtensionHeadersIgnored(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	extra := make(httpx.Header)
	extra.Set("X-Whatever-Else", "surprise")
	extra.Set(glt.HeaderName, "not,a,valid=header@@@")
	resp, err := w.client.Get("home:80", "/index.html", extra)
	if err != nil || resp.Status != 200 {
		t.Fatalf("request with junk headers failed: %v %v", err, resp)
	}
}

// TestConcurrentCoopFetchSingleFlight: many simultaneous first requests for
// the same migrated document must not produce duplicate stored copies or
// errors.
func TestConcurrentCoopFetch(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	done := make(chan int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := w.client.Get("coop:81", "/~migrate/home/80/page.html", nil)
			if err != nil {
				done <- 0
				return
			}
			done <- resp.Status
		}()
	}
	for i := 0; i < 8; i++ {
		if status := <-done; status != 200 {
			t.Fatalf("concurrent fetch %d returned %d", i, status)
		}
	}
	if coop.CoopDocCount() != 1 {
		t.Fatalf("coop doc count = %d", coop.CoopDocCount())
	}
	if home.Stats().Fetches.Value() > 8 {
		t.Fatalf("excessive refetching: %d", home.Stats().Fetches.Value())
	}
}

// TestStatusJSONServesOverHTTP verifies the operational endpoint is valid
// JSON with the expected fields after real traffic.
func TestStatusReflectsMigrations(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")
	st := home.Status()
	if st.MigratedOut["/page.html"] != "coop:81" {
		t.Fatalf("status migrated_out = %v", st.MigratedOut)
	}
	if st.Fetches == 0 {
		t.Fatal("status fetches = 0")
	}
	coopStatus := w.servers["coop:81"].Status()
	if len(coopStatus.CoopHosted) != 1 {
		t.Fatalf("coop status hosted = %v", coopStatus.CoopHosted)
	}
}

// TestRestartPreservesGraphAfterRegeneration: a server restarted over a
// store whose documents were regenerated (and therefore contain absolute
// ~migrate hyperlinks) must rebuild the same link graph, so later
// revocations still dirty the right documents.
func TestRestartPreservesGraphAfterRegeneration(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	// Regenerate /index.html: its stored source now holds an absolute
	// coop URL for /page.html.
	w.get("home:80", "/index.html")
	data, err := home.cfg.Store.Get("/index.html")
	if err != nil || !strings.Contains(string(data), "~migrate") {
		t.Fatalf("setup: stored index not regenerated: %q %v", data, err)
	}
	st := home.cfg.Store
	home.Close()
	delete(w.servers, "home:80")

	// Boot a fresh server over the same store.
	restarted, err := New(Config{
		Origin:      naming.Origin{Host: "home", Port: 80},
		Store:       st,
		Network:     w.fabric,
		Clock:       w.clock,
		EntryPoints: []string{"/index.html"},
		Peers:       []string{"coop:81"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Start(); err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	w.servers["home:80"] = restarted

	// The edge index.html -> page.html must have survived the absolute
	// ~migrate form.
	doc, err := restarted.Graph().Get("/index.html")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, to := range doc.LinkTo {
		if to == "/page.html" {
			found = true
		}
	}
	if !found {
		t.Fatalf("restart lost the rewritten edge: LinkTo = %v", doc.LinkTo)
	}
	// The restarted server does not know about the old migration (that
	// state was in memory), so it serves /page.html locally; regenerating
	// index must restore the plain link.
	resp := w.get("home:80", "/page.html")
	if resp.Status != 200 {
		t.Fatalf("restarted home serves %d for /page.html", resp.Status)
	}
	// Force regeneration by marking dirty (a restart conservatively
	// treats recovered absolute links as current; an admin edit or
	// revocation would dirty it).
	restarted.Graph().MarkMigrated("/page.html", "coop:81")
	restarted.Graph().MarkRevoked("/page.html")
	resp = w.get("home:80", "/index.html")
	if strings.Contains(string(resp.Body), "~migrate") {
		t.Fatalf("restarted server could not restore the link: %s", resp.Body)
	}
}

// TestRecallEndpoint exercises the operator-facing recall: all documents
// migrated to the named co-op return home over HTTP.
func TestRecallEndpoint(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")
	req := httpx.NewRequest("POST", "/~dcws/recall")
	req.Header.Set("X-DCWS-Fetch", "coop:81")
	resp, err := w.client.Do("home:80", req)
	if err != nil || resp.Status != 200 {
		t.Fatalf("recall = %v %v", err, resp)
	}
	if !strings.Contains(string(resp.Body), "recalled 1") {
		t.Fatalf("recall body = %q", resp.Body)
	}
	if loc, _ := home.Graph().Location("/page.html"); loc != "" {
		t.Fatalf("doc still migrated after recall: %q", loc)
	}
	if coop.CoopDocCount() != 0 {
		t.Fatal("coop kept its copy after recall")
	}
	// GET is rejected, missing header is rejected.
	if resp := w.get("home:80", "/~dcws/recall"); resp.Status != 405 {
		t.Fatalf("GET recall = %d", resp.Status)
	}
	bad := httpx.NewRequest("POST", "/~dcws/recall")
	resp, _ = w.client.Do("home:80", bad)
	if resp.Status != 400 {
		t.Fatalf("recall without header = %d", resp.Status)
	}
}

// TestGraphEndpoint serves the LDG as JSON.
func TestGraphEndpoint(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	_ = home
	resp := w.get("home:80", "/~dcws/graph")
	if resp.Status != 200 {
		t.Fatalf("graph endpoint = %d", resp.Status)
	}
	var dump GraphDump
	if err := json.Unmarshal(resp.Body, &dump); err != nil {
		t.Fatalf("graph not JSON: %v", err)
	}
	if dump.Addr != "home:80" || len(dump.Docs) != 3 {
		t.Fatalf("dump = %+v", dump)
	}
	var sawMigrated bool
	for _, d := range dump.Docs {
		if d.Name == "/page.html" && d.Location == "coop:81" {
			sawMigrated = true
		}
	}
	if !sawMigrated {
		t.Fatal("graph dump missing migration state")
	}
}

// TestCoopCacheEviction: with a tight co-op disk budget, the
// least-recently-used hosted copy is evicted and transparently re-fetched
// on its next request (§4.5 "lack of disk space").
func TestCoopCacheEviction(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, map[string]string{
		"/index.html": `<a href="/a.html">a</a><a href="/b.html">b</a>`,
		"/a.html":     "<html>" + strings.Repeat("a", 400) + "</html>",
		"/b.html":     "<html>" + strings.Repeat("b", 400) + "</html>",
	}, []string{"/index.html"}, Params{})
	// Budget fits one migrated copy but not two.
	coop := w.addServer("coop", 81, nil, nil, Params{CoopCacheBytes: 600})
	home.migrate("/a.html", "coop:81")
	home.migrate("/b.html", "coop:81")

	// Fetch a, then b: a is LRU and must be evicted.
	if resp := w.get("coop:81", "/~migrate/home/80/a.html"); resp.Status != 200 {
		t.Fatalf("a = %d", resp.Status)
	}
	w.clock.Advance(time.Second)
	if resp := w.get("coop:81", "/~migrate/home/80/b.html"); resp.Status != 200 {
		t.Fatalf("b = %d", resp.Status)
	}
	if coop.cfg.Store.Has("/~migrate/home/80/a.html") {
		t.Fatal("LRU copy not evicted")
	}
	if !coop.cfg.Store.Has("/~migrate/home/80/b.html") {
		t.Fatal("most recent copy evicted instead of LRU")
	}
	// The evicted document is still served — lazily re-fetched.
	fetchesBefore := home.Stats().Fetches.Value()
	resp := w.get("coop:81", "/~migrate/home/80/a.html")
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "aaa") {
		t.Fatalf("evicted doc not re-served: %d", resp.Status)
	}
	if home.Stats().Fetches.Value() == fetchesBefore {
		t.Fatal("re-serve did not re-fetch from home")
	}
}

// flakySite builds an index linking to n leaf documents, giving chaos
// tests plenty of independent lazy-migration fetches.
func flakySite(n int) map[string]string {
	docs := make(map[string]string, n+1)
	var links strings.Builder
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/doc%d.html", i)
		docs[name] = fmt.Sprintf("<html>leaf %d</html>", i)
		fmt.Fprintf(&links, `<a href="%s">%d</a>`, name, i)
	}
	docs["/index.html"] = "<html>" + links.String() + "</html>"
	return docs
}

// TestFlakyLinkFetchesSurviveRetries: with a 30%% injected dial-failure
// rate on the home<->coop link, every lazy-migration fetch must still
// succeed (zero false 503s) and repeated pinger rounds must not declare
// the live peer down. The fabric's fault schedule is seeded, so the run
// reproduces.
func TestFlakyLinkFetchesSurviveRetries(t *testing.T) {
	const nDocs = 16
	w := newWorld(t)
	params := Params{FetchAttempts: 8, ProbeAttempts: 3, BreakerThreshold: 20}
	home := w.addServer("home", 80, flakySite(nDocs), []string{"/index.html"}, params)
	coop := w.addServer("coop", 81, nil, nil, params)
	w.fabric.SetSeed(42)
	w.fabric.SetDialFailRate("home:80", "coop:81", 0.3)

	for i := 0; i < nDocs; i++ {
		home.migrate(fmt.Sprintf("/doc%d.html", i), "coop:81")
	}
	for i := 0; i < nDocs; i++ {
		path := fmt.Sprintf("/~migrate/home/80/doc%d.html", i)
		if resp := w.get("coop:81", path); resp.Status != 200 {
			t.Fatalf("fetch %s over flaky link = %d (false 503)", path, resp.Status)
		}
	}
	// Several pinger rounds across the same flaky link: transient probe
	// failures are retried inside the round and must never accumulate into
	// a down declaration against a live peer.
	for round := 0; round < 4; round++ {
		w.clock.Advance(time.Hour)
		home.runPingerTick()
	}
	if st := home.Status(); st.PeerHealth["coop:81"] == "down" {
		t.Fatal("live peer declared down over a flaky link")
	}
	if !home.LoadTable().Known("coop:81") {
		t.Fatal("live peer dropped from the load table")
	}
	retries := coop.Resilience().Stats().Retries.Value() +
		home.Resilience().Stats().Retries.Value()
	if retries == 0 {
		t.Fatal("no retries recorded — the fault injection did not bite")
	}
}

// TestPartitionSuspectDownThenRecovery walks the full §4.5 failure
// lifecycle across a network partition: suspect (no new migrations) →
// down (documents recalled, entry removed) → heal → recovery via
// piggybacked load (re-admitted, breaker reset) → migrations resume.
func TestPartitionSuspectDownThenRecovery(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")

	w.fabric.Partition("home:80", "coop:81")

	// Phase 1 — suspect: the first failed probe round marks the peer
	// suspect, which blocks new migrations before any down declaration.
	w.clock.Advance(30 * time.Second)
	home.runPingerTick()
	if !home.peerSuspect("coop:81") {
		t.Fatal("failing peer not marked suspect")
	}
	if st := home.Status(); st.PeerHealth["coop:81"] == "ok" {
		t.Fatalf("peer health = %q, want suspect", st.PeerHealth["coop:81"])
	}
	for i := 0; i < 30; i++ {
		w.get("home:80", "/pic.gif")
	}
	home.runStatsTick()
	if loc, _ := home.Graph().Location("/pic.gif"); loc != "" {
		t.Fatalf("migrated to a suspect peer: %q", loc)
	}

	// Phase 2 — down: repeated failed rounds cross MaxPingFailures.
	for i := 0; i < 5; i++ {
		w.clock.Advance(30 * time.Second)
		home.runPingerTick()
	}
	if loc, _ := home.Graph().Location("/page.html"); loc != "" {
		t.Fatalf("document still assigned to downed peer: %q", loc)
	}
	if home.LoadTable().Known("coop:81") {
		t.Fatal("downed peer still in load table")
	}
	if st := home.Status(); st.PeerHealth["coop:81"] != "down" {
		t.Fatalf("peer health = %q, want down", st.PeerHealth["coop:81"])
	}
	// The recalled document is served from home: graceful degradation.
	if resp := w.get("home:80", "/page.html"); resp.Status != 200 {
		t.Fatalf("recalled document = %d at home", resp.Status)
	}

	// Phase 3 — heal and recover: the coop's next validation pass reaches
	// home again; its piggybacked load entry is fresher than the down
	// declaration, so home re-admits it with failure trackers reset.
	w.fabric.Heal("home:80", "coop:81")
	w.clock.Advance(time.Minute)
	coop.runValidatorTick()
	if !home.LoadTable().Known("coop:81") {
		t.Fatal("recovered peer not re-admitted")
	}
	if st := home.Status(); st.PeerHealth["coop:81"] != "ok" {
		t.Fatalf("peer health after recovery = %q, want ok", st.PeerHealth["coop:81"])
	}
	if home.Resilience().StateOf("coop:81") != resilience.Closed {
		t.Fatal("breaker not reset on recovery")
	}

	// Phase 4 — migrations resume to the recovered peer.
	for i := 0; i < 30; i++ {
		w.get("home:80", "/pic.gif")
	}
	home.runStatsTick()
	if loc, _ := home.Graph().Location("/pic.gif"); loc != "coop:81" {
		t.Fatalf("migration did not resume after recovery: %q", loc)
	}
}

// TestStaleEchoDoesNotResurrectDownPeer guards the re-admission rule:
// only a load entry measured AFTER the down declaration re-admits a
// peer; old entries relayed by third parties are scrubbed.
func TestStaleEchoDoesNotResurrectDownPeer(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	w.fabric.Partition("home:80", "coop:81")
	before := w.clock.Now()
	for i := 0; i < 5; i++ {
		w.clock.Advance(30 * time.Second)
		home.runPingerTick()
	}
	if home.LoadTable().Known("coop:81") {
		t.Fatal("setup: peer not declared down")
	}

	// A pre-crash entry echoed by some other server must not resurrect
	// the dead peer.
	stale := make(httpx.Header)
	stale.Set(glt.HeaderName, fmt.Sprintf("coop:81=0.5@%d", before.UnixMilli()))
	if _, err := w.client.Get("home:80", "/index.html", stale); err != nil {
		t.Fatal(err)
	}
	if home.LoadTable().Known("coop:81") {
		t.Fatal("stale echo resurrected a down peer")
	}

	// A load entry measured after the declaration proves recovery — even
	// with the partition still up (re-admission rides on piggybacked
	// load, not on probing).
	w.clock.Advance(time.Minute)
	fresh := make(httpx.Header)
	fresh.Set(glt.HeaderName, fmt.Sprintf("coop:81=0.5@%d", w.clock.Now().UnixMilli()))
	if _, err := w.client.Get("home:80", "/index.html", fresh); err != nil {
		t.Fatal(err)
	}
	if !home.LoadTable().Known("coop:81") {
		t.Fatal("fresh entry did not re-admit the recovered peer")
	}
	if home.peerSuspect("coop:81") {
		t.Fatal("re-admitted peer still suspect (pingFail/breaker not reset)")
	}
}

// TestMaintenanceTimeoutBoundsStalledProbe: a peer that accepts
// connections but never answers must cost one MaintenanceTimeout, not
// the 30-second client default (which would exceed T_pi).
func TestMaintenanceTimeoutBoundsStalledProbe(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil,
		Params{MaintenanceTimeout: 100 * time.Millisecond, ProbeAttempts: 1})
	// A black hole: the listener queues connections but never serves them.
	if _, err := w.fabric.Listen("hole:80"); err != nil {
		t.Fatal(err)
	}
	home.LoadTable().Observe(glt.Entry{Server: "hole:80"})

	start := time.Now()
	home.runPingerTick()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled probe took %v; maintenance timeout not applied", elapsed)
	}
	if !home.peerSuspect("hole:80") {
		t.Fatal("unresponsive peer not marked suspect")
	}
}

// TestPingerProbesRunConcurrently: three stalled peers must cost roughly
// one probe timeout per tick, not three (the probes fan out).
func TestPingerProbesRunConcurrently(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil,
		Params{MaintenanceTimeout: 400 * time.Millisecond, ProbeAttempts: 1})
	for _, peer := range []string{"h1:80", "h2:80", "h3:80"} {
		if _, err := w.fabric.Listen(peer); err != nil {
			t.Fatal(err)
		}
		home.LoadTable().Observe(glt.Entry{Server: peer})
	}
	start := time.Now()
	home.runPingerTick()
	elapsed := time.Since(start)
	// Serial probing would take at least 3 x 400ms.
	if elapsed > 1100*time.Millisecond {
		t.Fatalf("pinger tick took %v; probes are not concurrent", elapsed)
	}
}

// TestBreakerOpensAndFetchDegradesFast: once enough consecutive fetch
// failures accumulate against one home, the circuit opens and further
// fetches answer 503 immediately instead of dialing a dead peer.
func TestBreakerOpensAndFetchDegradesFast(t *testing.T) {
	w := newWorld(t)
	coop := w.addServer("coop", 81, nil, nil,
		Params{FetchAttempts: 1, BreakerThreshold: 2})
	// The home server never existed; every fetch attempt fails.
	for i := 0; i < 2; i++ {
		if resp := w.get("coop:81", "/~migrate/ghost/80/doc.html"); resp.Status != 503 {
			t.Fatalf("fetch %d = %d, want 503", i, resp.Status)
		}
	}
	if got := coop.Resilience().StateOf("ghost:80"); got != resilience.Open {
		t.Fatalf("breaker state = %v, want open", got)
	}
	resp := w.get("coop:81", "/~migrate/ghost/80/doc.html")
	if resp.Status != 503 || !strings.Contains(string(resp.Body), "circuit open") {
		t.Fatalf("open-circuit fetch = %d %q, want fast 503", resp.Status, resp.Body)
	}
	st := coop.Status()
	if st.Breakers["ghost:80"] != "open" {
		t.Fatalf("status breakers = %v", st.Breakers)
	}
	if st.BreakerTrips == 0 {
		t.Fatal("breaker trip not counted")
	}
}

// TestCoopCacheUnlimitedByDefault: without a budget nothing is evicted.
func TestCoopCacheUnlimitedByDefault(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, map[string]string{
		"/index.html": `<a href="/a.html">a</a><a href="/b.html">b</a>`,
		"/a.html":     "<html>" + strings.Repeat("a", 400) + "</html>",
		"/b.html":     "<html>" + strings.Repeat("b", 400) + "</html>",
	}, []string{"/index.html"}, Params{})
	coop := w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/a.html", "coop:81")
	home.migrate("/b.html", "coop:81")
	w.get("coop:81", "/~migrate/home/80/a.html")
	w.get("coop:81", "/~migrate/home/80/b.html")
	if !coop.cfg.Store.Has("/~migrate/home/80/a.html") ||
		!coop.cfg.Store.Has("/~migrate/home/80/b.html") {
		t.Fatal("copies evicted without a budget")
	}
}
