package dcws

import (
	"net"
	"testing"

	"dcws/internal/clock"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
	"dcws/internal/telemetry"
)

// This file holds the inter-server RPC round-trip benchmarks. Unlike the
// handler-level serve benchmarks in perf.go, these cross the full wire
// stack against a started server — request serialization, the transport,
// accept/dispatch on the server, response parse — so the dial-per-request
// vs. pooled pair isolates exactly what connection pooling buys.
//
// Each pair runs over two transports. The in-memory fabric variants are
// deterministic and run everywhere, but a fabric dial is two channel
// operations — it deliberately has none of the cost that makes real dials
// expensive, so the fabric pair understates the win. The loopback-TCP
// variants cross the kernel's socket stack, the transport the production
// deployment uses (dcws.TCPNetwork), and are what cmd/dcwsperf records in
// BENCH_rpc.json.

// benchRPC measures one /~dcws/ping round trip per iteration against a
// started server reached through network, dialing per request or reusing
// keep-alive connections through the client pool.
func benchRPC(b *testing.B, pooled bool, network memnet.Network, origin naming.Origin) {
	st := store.NewMem()
	st.Put("/index.html", perfDoc(nil, 2<<10))
	s, err := New(Config{
		Origin:  origin,
		Store:   st,
		Network: network,
		Clock:   clock.Real{},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })

	addr := origin.Addr()
	dial := httpx.DialerFunc(network.Dial)
	var client *httpx.Client
	if pooled {
		client = httpx.NewPooledClient(dial, httpx.PoolConfig{})
		b.Cleanup(client.CloseIdle)
	} else {
		client = httpx.NewClient(dial)
	}
	// One prebuilt request reused throughout, so per-iteration allocations
	// reflect the transport, not request construction. It carries a trace ID
	// because every real inter-server RPC does; without one the server mints
	// a fresh ID per request, which is not a transport cost.
	req := httpx.NewRequest("GET", pingPath)
	req.Header.Set("Host", addr)
	req.Header.Set(telemetry.TraceHeader, telemetry.NewTraceID())
	if resp, err := client.Do(addr, req); err != nil || resp.Status != 200 {
		b.Fatalf("warmup: %v (resp %v)", err, resp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Do(addr, req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != 200 {
			b.Fatalf("status %d", resp.Status)
		}
	}
}

// benchRPCFabric runs the round trip over a private in-memory fabric.
func benchRPCFabric(b *testing.B, pooled bool) {
	benchRPC(b, pooled, memnet.NewFabric(), naming.Origin{Host: "bench-rpc", Port: 80})
}

// benchRPCTCP runs the round trip over loopback TCP on an ephemeral port.
func benchRPCTCP(b *testing.B, pooled bool) {
	// Ask the kernel for a free port, then hand the address to the server.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Skipf("loopback TCP unavailable: %v", err)
	}
	port := probe.Addr().(*net.TCPAddr).Port
	probe.Close()
	benchRPC(b, pooled, memnet.TCP{}, naming.Origin{Host: "127.0.0.1", Port: port})
}

// BenchRPCDialPerRequest is the pre-pool transport over the in-memory
// fabric: every RPC pays a fresh dial and teardown, as HTTP/1.0 did.
func BenchRPCDialPerRequest(b *testing.B) { benchRPCFabric(b, false) }

// BenchRPCPooled is the same fabric round trip over pooled keep-alive
// connections.
func BenchRPCPooled(b *testing.B) { benchRPCFabric(b, true) }

// BenchRPCDialPerRequestTCP dials a fresh loopback-TCP connection per RPC.
func BenchRPCDialPerRequestTCP(b *testing.B) { benchRPCTCP(b, false) }

// BenchRPCPooledTCP reuses pooled keep-alive loopback-TCP connections.
func BenchRPCPooledTCP(b *testing.B) { benchRPCTCP(b, true) }
