package dcws

import (
	"strings"
	"testing"
	"time"

	"dcws/internal/httpx"
)

// leaseParams is the test configuration for push invalidation: leases on,
// heartbeats off (the worlds run on a manual clock; a heartbeat would
// never fire and its 3-beat silence check would never trip).
func leaseParams() Params {
	return Params{
		LeaseDuration:       time.Minute,
		InvalidateHeartbeat: -1,
	}
}

// waitFor polls cond in real time: subscription channels and invalidation
// frames ride real goroutines over the fabric, independent of the manual
// clock.
func waitFor(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPushInvalidationRefreshesHostedCopy is the tentpole's happy path: a
// hosted copy under lease is refreshed by a pushed frame, and the
// validator never polls for it.
func TestPushInvalidationRefreshesHostedCopy(t *testing.T) {
	w := newWorld(t)
	docs := map[string]string{"/page.html": "<html>v1 content</html>"}
	home := w.addServer("home", 80, docs, []string{"/page.html"}, leaseParams())
	coop := w.addServer("coop", 81, nil, nil, leaseParams())

	home.migrate("/page.html", "coop:81")
	if resp := w.get("coop:81", "/~migrate/home/80/page.html"); resp.Status != 200 {
		t.Fatalf("first touch = %d, want 200", resp.Status)
	}
	waitFor(t, 5*time.Second, "subscription channel never came up", func() bool {
		return coop.subs.subscriptionLive("home:80")
	})

	if err := home.UpdateDocument("/page.html", []byte("<html>v2 content</html>")); err != nil {
		t.Fatal(err)
	}
	// No validator tick runs: only the pushed invalidation can refresh the
	// copy.
	waitFor(t, 5*time.Second, "pushed invalidation never refreshed the copy", func() bool {
		resp := w.get("coop:81", "/~migrate/home/80/page.html")
		return resp.Status == 200 && strings.Contains(string(resp.Body), "v2 content")
	})

	if st := home.Status().Invalidation; st.Pushes == 0 {
		t.Fatal("home pushed no invalidation frames")
	}
	cst := coop.Status().Invalidation
	if cst.Received == 0 {
		t.Fatal("coop received no invalidation frames")
	}
	if cst.ValidatePolls != 0 {
		t.Fatalf("coop issued %d validation polls before any tick", cst.ValidatePolls)
	}

	// A validator tick under lease cover is a skip, not a poll.
	coop.TickValidator()
	cst = coop.Status().Invalidation
	if cst.LeaseSkips == 0 {
		t.Fatal("validator tick did not skip the leased copy")
	}
	if cst.ValidatePolls != 0 {
		t.Fatalf("validator issued %d polls despite lease cover", cst.ValidatePolls)
	}
}

// TestOperatorMigrateEndpoint drives the operator-facing migrate endpoint
// the CI smoke and dcwsctl use: it hands one home document to a co-op and
// rejects bad requests.
func TestOperatorMigrateEndpoint(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})

	migrate := func(doc, coop string) *httpx.Response {
		req := httpx.NewRequest("POST", "/~dcws/migrate")
		req.Header.Set("X-DCWS-Doc", doc)
		req.Header.Set("X-DCWS-Fetch", coop)
		resp, err := w.client.Do("home:80", req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := migrate("/page.html", "coop:81"); resp.Status != 200 {
		t.Fatalf("migrate = %d (%s), want 200", resp.Status, resp.Body)
	}
	if loc, _, _, _ := home.ldg.ServeInfo("/page.html"); loc != "coop:81" {
		t.Fatalf("location after migrate = %q, want coop:81", loc)
	}
	// The home now redirects, and the co-op serves the lazy-fetched copy.
	if resp := w.follow("home:80", "/page.html"); resp.Status != 200 {
		t.Fatalf("follow after migrate = %d, want 200", resp.Status)
	}

	if resp := migrate("/page.html", "coop:81"); resp.Status != 409 {
		t.Fatalf("second migrate = %d, want 409", resp.Status)
	}
	if resp := migrate("/missing.html", "coop:81"); resp.Status != 404 {
		t.Fatalf("migrate of unknown doc = %d, want 404", resp.Status)
	}
	if resp := migrate("/index.html", "home:80"); resp.Status != 400 {
		t.Fatalf("migrate to self = %d, want 400", resp.Status)
	}
	req := httpx.NewRequest("GET", "/~dcws/migrate")
	resp, err := w.client.Do("home:80", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 405 {
		t.Fatalf("GET migrate = %d, want 405", resp.Status)
	}
}

// TestLeasePartitionDegradedMode walks the tentpole's failure story: a
// partitioned co-op keeps serving under its unexpired lease while the
// validator falls back to (failing) polls, fails closed once the lease
// runs out, and on heal reconnects, re-subscribes, and is caught up on the
// update it missed — via the push channel, not a validator tick.
func TestLeasePartitionDegradedMode(t *testing.T) {
	w := newWorld(t)
	docs := map[string]string{"/page.html": "<html>v1 content</html>"}
	home := w.addServer("home", 80, docs, []string{"/page.html"}, leaseParams())
	coop := w.addServer("coop", 81, nil, nil, leaseParams())

	home.migrate("/page.html", "coop:81")
	if resp := w.get("coop:81", "/~migrate/home/80/page.html"); resp.Status != 200 {
		t.Fatalf("first touch = %d, want 200", resp.Status)
	}
	waitFor(t, 5*time.Second, "subscription channel never came up", func() bool {
		return coop.subs.subscriptionLive("home:80")
	})

	// Full split: refuse new dials AND kill the established subscription
	// channel plus any pooled connections.
	w.fabric.Partition("home:80", "coop:81")
	w.fabric.ResetLink("home:80", "coop:81")
	waitFor(t, 5*time.Second, "coop never noticed the channel drop", func() bool {
		return !coop.subs.subscriptionLive("home:80")
	})

	// Inside the lease window the copy is still served — exactly the
	// staleness the paper's polling design always accepted — and the
	// validator, its lease cover gone, degrades to a (failing) poll.
	if resp := w.get("coop:81", "/~migrate/home/80/page.html"); resp.Status != 200 ||
		!strings.Contains(string(resp.Body), "v1 content") {
		t.Fatalf("partitioned coop inside lease: %d %s", resp.Status, resp.Body)
	}
	coop.TickValidator()
	if st := coop.Status().Invalidation; st.ValidatePolls == 0 {
		t.Fatal("validator did not fall back to polling with the channel down")
	}

	// The home updates the document while the co-op is unreachable.
	if err := home.UpdateDocument("/page.html", []byte("<html>v2 content</html>")); err != nil {
		t.Fatal(err)
	}

	// Past the lease with the home unreachable the co-op fails closed: it
	// can no longer vouch for the copy, so it serves nothing stale.
	w.clock.Advance(2 * time.Minute)
	if resp := w.get("coop:81", "/~migrate/home/80/page.html"); resp.Status != 503 {
		t.Fatalf("expired lease with home unreachable = %d, want 503", resp.Status)
	}
	if st := coop.Status().Invalidation; st.LeaseExpired == 0 {
		t.Fatal("lease-expired fail-closed not counted")
	}

	// Heal. The reconnect loop's backoff runs on the manual clock, so tick
	// it forward until the channel is re-established.
	w.fabric.Heal("home:80", "coop:81")
	waitFor(t, 10*time.Second, "subscription never reconnected after heal", func() bool {
		if coop.subs.subscriptionLive("home:80") {
			return true
		}
		w.clock.Advance(90 * time.Second)
		return false
	})
	if st := coop.Status().Invalidation; st.Reconnects == 0 {
		t.Fatal("reconnect not counted")
	}

	// The re-subscribe inventory carries the stale copy's hash; the home
	// answers with a catch-up invalidation and the co-op converges on the
	// bytes it missed.
	waitFor(t, 10*time.Second, "coop never caught up on the missed update", func() bool {
		resp := w.get("coop:81", "/~migrate/home/80/page.html")
		return resp.Status == 200 && strings.Contains(string(resp.Body), "v2 content")
	})
	if st := coop.Status().Invalidation; st.Received == 0 {
		t.Fatal("catch-up did not arrive over the push channel")
	}
}

// TestBatchInvalidationCoalescesMigrationStorm drives the link-rewrite
// storm one migration causes: three hosted documents all link to the moved
// target, so their rewrites must arrive at the hosting co-op as ONE
// multi-document frame, not three singles.
func TestBatchInvalidationCoalescesMigrationStorm(t *testing.T) {
	w := newWorld(t)
	docs := map[string]string{
		"/index.html": `<html><a href="/a.html">a</a><a href="/b.html">b</a><a href="/c.html">c</a></html>`,
		"/a.html":     `<html><a href="/t.html">t</a> page a</html>`,
		"/b.html":     `<html><a href="/t.html">t</a> page b</html>`,
		"/c.html":     `<html><a href="/t.html">t</a> page c</html>`,
		"/t.html":     `<html>target content</html>`,
	}
	home := w.addServer("home", 80, docs, []string{"/index.html"}, leaseParams())
	coop := w.addServer("coop", 81, nil, nil, leaseParams())
	w.addServer("coop2", 82, nil, nil, leaseParams())

	for _, name := range []string{"/a.html", "/b.html", "/c.html"} {
		home.migrate(name, "coop:81")
		if resp := w.get("coop:81", "/~migrate/home/80"+name); resp.Status != 200 {
			t.Fatalf("first touch of %s = %d, want 200", name, resp.Status)
		}
	}
	waitFor(t, 5*time.Second, "subscription channel never came up", func() bool {
		return coop.subs.subscriptionLive("home:80")
	})
	// The per-document subscriptions register asynchronously; the storm
	// only coalesces fully once the home knows the coop hosts all three.
	waitFor(t, 5*time.Second, "home never learned all three hosted docs", func() bool {
		home.hub.mu.Lock()
		defer home.hub.mu.Unlock()
		sub := home.hub.subs["coop:81"]
		return sub != nil && len(sub.docs) >= 3
	})

	// Moving /t.html dirties a, b, and c at once — the storm.
	home.migrate("/t.html", "coop2:82")

	waitFor(t, 5*time.Second, "batch invalidation never rewrote the hosted copies", func() bool {
		for _, name := range []string{"/a.html", "/b.html", "/c.html"} {
			resp := w.get("coop:81", "/~migrate/home/80"+name)
			if resp.Status != 200 || !strings.Contains(string(resp.Body), "coop2") {
				return false
			}
		}
		return true
	})

	st := home.Status().Invalidation
	if st.Batches == 0 {
		t.Fatal("migration storm produced no batch frame")
	}
	if st.BatchDocs < 3 {
		t.Fatalf("batch frames carried %d documents, want >= 3", st.BatchDocs)
	}
	if got := coop.Status().Invalidation.Gaps; got != 0 {
		t.Fatalf("coop detected %d sequence gaps on a lossless channel", got)
	}
}

// TestInvalidationSeqGapForcesResync pins the live-channel loss detector:
// when a numbered frame goes missing, the next frame's sequence number
// exposes the gap and the co-op resyncs by re-sending its inventory, which
// the home answers with catch-up invalidations.
func TestInvalidationSeqGapForcesResync(t *testing.T) {
	w := newWorld(t)
	docs := map[string]string{"/page.html": "<html>v1 content</html>"}
	home := w.addServer("home", 80, docs, []string{"/page.html"}, leaseParams())
	coop := w.addServer("coop", 81, nil, nil, leaseParams())

	home.migrate("/page.html", "coop:81")
	if resp := w.get("coop:81", "/~migrate/home/80/page.html"); resp.Status != 200 {
		t.Fatalf("first touch = %d, want 200", resp.Status)
	}
	waitFor(t, 5*time.Second, "subscription channel never came up", func() bool {
		return coop.subs.subscriptionLive("home:80")
	})

	// Establish the sequence baseline with one delivered frame.
	if err := home.UpdateDocument("/page.html", []byte("<html>v2 content</html>")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "baseline invalidation never arrived", func() bool {
		resp := w.get("coop:81", "/~migrate/home/80/page.html")
		return resp.Status == 200 && strings.Contains(string(resp.Body), "v2 content")
	})

	// Simulate a frame lost in flight: consume a sequence number on the
	// home side without writing anything to the wire.
	home.hub.mu.Lock()
	sub := home.hub.subs["coop:81"]
	home.hub.mu.Unlock()
	if sub == nil {
		t.Fatal("no subscriber record for coop:81")
	}
	sub.writeMu.Lock()
	sub.seq++
	sub.writeMu.Unlock()

	if err := home.UpdateDocument("/page.html", []byte("<html>v3 content</html>")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "sequence gap never detected", func() bool {
		return coop.Status().Invalidation.Gaps > 0
	})
	// The gap-triggered inventory resync must converge the copy even if
	// the "lost" frame were the only carrier of the update.
	waitFor(t, 5*time.Second, "coop never converged after the gap resync", func() bool {
		resp := w.get("coop:81", "/~migrate/home/80/page.html")
		return resp.Status == 200 && strings.Contains(string(resp.Body), "v3 content")
	})
}

// TestSizeWeight pins the rendered-size weighting of the hot-replication
// trigger: at or below the 64 KiB pivot the weight is neutral (small
// documents are never delayed), above it the weight grows linearly and
// caps at 2.
func TestSizeWeight(t *testing.T) {
	cases := []struct {
		size int64
		want float64
	}{
		{0, 1},       // unknown size: neutral
		{-5, 1},      // defensive: neutral
		{8 << 10, 1}, // small docs keep their raw rate
		{64 << 10, 1},
		{96 << 10, 1.5},
		{128 << 10, 2},
		{1 << 20, 2}, // huge docs cap at a 2x boost
	}
	for _, c := range cases {
		if got := sizeWeight(c.size); got != c.want {
			t.Errorf("sizeWeight(%d) = %v, want %v", c.size, got, c.want)
		}
	}
}
