package dcws

import (
	"bufio"
	"encoding/binary"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/naming"
	"dcws/internal/resilience"
	"dcws/internal/telemetry"
)

// Push invalidation with leases over a persistent subscription channel.
//
// The paper's §4.5 validator polls every hosted copy every T_val, so a
// 16-node cluster in steady state burns hundreds of validation RPCs per
// second telling each other nothing changed. This extension inverts the
// flow: each co-op opens ONE long-lived upgraded connection per home
// server (a 101 handshake on /~dcws/subscribe, then length-prefixed
// frames), the home remembers which documents each subscriber hosts and
// pushes an invalidation frame the moment a document changes, and every
// hosted copy holds a lease of Params.LeaseDuration renewed implicitly by
// channel liveness. While the channel is live and the lease unexpired the
// validator skips the copy entirely; when the channel drops — or goes
// silent for three heartbeats — the co-op degrades to the paper's
// timeout-polled validation, so a partitioned node is never less safe
// than the base design. Subscriber sets are WAL-logged on the home, so a
// crashed home recovers knowing who to push to once they reconnect.

// Frame types exchanged on an upgraded subscription connection. Both
// directions share the codec in httpx/frames.go.
const (
	// frameSubscribe (coop -> home): the coop's inventory of hosted
	// documents for this home — uvarint count, then per document the
	// home-side name and the coop's content hash. The home registers the
	// subscriber and answers with catch-up invalidations for any document
	// whose current hash differs (changes missed while disconnected).
	frameSubscribe byte = 1
	// frameInvalidate (home -> coop): one document changed — a kind byte
	// (invalUpdate/invalDelete/invalRevoke), the home-side name, and the
	// new content hash (zero for delete/revoke).
	frameInvalidate byte = 2
	// framePing (either direction): empty keepalive; receipt renews every
	// lease held from the peer.
	framePing byte = 3
	// frameAck (coop -> home): the named document's invalidation was
	// applied (refetched, or dropped for delete/revoke).
	frameAck byte = 4
	// frameUnsubscribe (coop -> home): the coop stopped hosting the named
	// document (evicted past re-fetch, or forgotten); the home stops
	// pushing for it.
	frameUnsubscribe byte = 5
	// frameInvalidateBatch (home -> coop): several documents changed at
	// once — one migration's link-rewrite storm coalesced into a single
	// frame per subscriber instead of a frame per document. Payload: a
	// kind byte, a uvarint count, then per document the home-side name and
	// new content hash, and the trailing channel sequence number.
	frameInvalidateBatch byte = 6
)

// Invalidation frames (single and batch) carry a per-channel sequence
// number as a trailing uvarint: the home stamps frames 1, 2, 3, … per
// subscriber connection under the write mutex, so the co-op can detect a
// dropped frame on a live channel — a gap — and resync by re-sending its
// inventory (the home answers with catch-up invalidations for anything
// whose hash is stale). Legacy frames without the trailing field decode
// as sequence 0, which disables the check for that frame.

// Invalidation kinds carried by frameInvalidate.
const (
	invalUpdate byte = 0 // content changed: revalidate now
	invalDelete byte = 1 // document deleted at home: drop the copy
	invalRevoke byte = 2 // hosting revoked: drop the copy
)

// invalHeartbeat resolves the heartbeat interval from Params: explicit
// when set, LeaseDuration/4 when zero (three missed beats < one lease, so
// a silent partition degrades to polling before any lease expires), and
// disabled when negative.
func (p Params) invalHeartbeat() time.Duration {
	switch {
	case p.InvalidateHeartbeat > 0:
		return p.InvalidateHeartbeat
	case p.InvalidateHeartbeat < 0:
		return 0
	default:
		return p.LeaseDuration / 4
	}
}

// ---- frame payload encoding ---------------------------------------------

// encodeInventory builds a frameSubscribe payload from (name, hash) pairs.
func encodeInventory(docs []invDoc) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(docs)))
	for _, d := range docs {
		buf = putStr(buf, d.name)
		buf = binary.AppendUvarint(buf, d.hash)
	}
	return buf
}

// invDoc is one (home-side name, content hash) inventory entry.
type invDoc struct {
	name string
	hash uint64
}

func decodeInventory(data []byte) ([]invDoc, error) {
	n, data, err := getUvarint(data)
	if err != nil {
		return nil, err
	}
	docs := make([]invDoc, 0, n)
	for i := uint64(0); i < n; i++ {
		var d invDoc
		if d.name, data, err = getStr(data); err != nil {
			return nil, err
		}
		if d.hash, data, err = getUvarint(data); err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return docs, nil
}

func encodeInvalidate(kind byte, name string, hash, seq uint64) []byte {
	buf := make([]byte, 0, len(name)+20)
	buf = append(buf, kind)
	buf = putStr(buf, name)
	buf = binary.AppendUvarint(buf, hash)
	return binary.AppendUvarint(buf, seq)
}

func decodeInvalidate(data []byte) (kind byte, name string, hash, seq uint64, err error) {
	if len(data) < 1 {
		return 0, "", 0, 0, errInvalFrame
	}
	kind = data[0]
	if name, data, err = getStr(data[1:]); err != nil {
		return 0, "", 0, 0, err
	}
	if hash, data, err = getUvarint(data); err != nil {
		return 0, "", 0, 0, err
	}
	// The sequence number is optional: a frame from a pre-numbering home
	// simply ends here, and seq 0 means "unnumbered".
	if len(data) > 0 {
		seq, _, err = getUvarint(data)
	}
	return kind, name, hash, seq, err
}

// encodeInvalidateBatch frames several documents' invalidations of one
// kind: kind byte, uvarint count, per-document name and hash, trailing
// sequence number.
func encodeInvalidateBatch(kind byte, docs []invDoc, seq uint64) []byte {
	buf := make([]byte, 0, 16*len(docs)+12)
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	for _, d := range docs {
		buf = putStr(buf, d.name)
		buf = binary.AppendUvarint(buf, d.hash)
	}
	return binary.AppendUvarint(buf, seq)
}

func decodeInvalidateBatch(data []byte) (kind byte, docs []invDoc, seq uint64, err error) {
	if len(data) < 1 {
		return 0, nil, 0, errInvalFrame
	}
	kind = data[0]
	n, data, err := getUvarint(data[1:])
	if err != nil {
		return 0, nil, 0, err
	}
	docs = make([]invDoc, 0, n)
	for i := uint64(0); i < n; i++ {
		var d invDoc
		if d.name, data, err = getStr(data); err != nil {
			return 0, nil, 0, err
		}
		if d.hash, data, err = getUvarint(data); err != nil {
			return 0, nil, 0, err
		}
		docs = append(docs, d)
	}
	if len(data) > 0 {
		seq, _, err = getUvarint(data)
	}
	return kind, docs, seq, err
}

var errInvalFrame = errStr("dcws: truncated invalidation frame")

type errStr string

func (e errStr) Error() string { return string(e) }

// encodeName / decodeName frame a single document name (frameAck,
// frameUnsubscribe).
func encodeName(name string) []byte { return putStr(nil, name) }

func decodeName(data []byte) (string, error) {
	name, _, err := getStr(data)
	return name, err
}

// ---- home side: the invalidation hub ------------------------------------

// invalSubscriber is one co-op's subscription as the home sees it: the
// documents it hosts (home-side names) and, while connected, the upgraded
// connection to push frames down. The docs set survives disconnection —
// and, via the WAL, a home crash — so a reconnecting subscriber gets
// catch-up invalidations for everything that changed while it was away.
type invalSubscriber struct {
	addr string
	docs map[string]bool

	conn    net.Conn // nil while disconnected
	writeMu sync.Mutex
	// seq numbers invalidation frames on this channel (guarded by
	// writeMu, so wire order and sequence order agree). It deliberately
	// survives reconnects: frames written to a dying connection consume
	// numbers, and the coop re-baselines on its first received frame.
	seq uint64
}

// invalHub is the home side of push invalidation: the subscriber table,
// the upgrade handler, and the push fan-out called from every mutation
// path (update, delete, revoke, migration link-rewrite).
type invalHub struct {
	s  *Server
	mu sync.Mutex
	// subs is keyed by subscriber (co-op) address.
	subs map[string]*invalSubscriber
}

func newInvalHub(s *Server) *invalHub {
	return &invalHub{s: s, subs: make(map[string]*invalSubscriber)}
}

// restore re-installs a recovered subscriber (disconnected) with its doc
// set, so pushes resume after it reconnects.
func (h *invalHub) restore(addr string, docs []string) {
	h.mu.Lock()
	sub, ok := h.subs[addr]
	if !ok {
		sub = &invalSubscriber{addr: addr, docs: make(map[string]bool)}
		h.subs[addr] = sub
	}
	for _, d := range docs {
		sub.docs[d] = true
	}
	h.mu.Unlock()
}

// snapshot captures the subscriber table in durable form, sorted by
// address (the subscribers section of the state snapshot).
func (h *invalHub) snapshot() map[string][]string {
	h.mu.Lock()
	out := make(map[string][]string, len(h.subs))
	for addr, sub := range h.subs {
		docs := make([]string, 0, len(sub.docs))
		for d := range sub.docs {
			docs = append(docs, d)
		}
		out[addr] = docs
	}
	h.mu.Unlock()
	return out
}

// subscriberCount reports connected and total subscribers (status,
// metrics).
func (h *invalHub) subscriberCount() (connected, total int) {
	h.mu.Lock()
	for _, sub := range h.subs {
		if sub.conn != nil {
			connected++
		}
	}
	total = len(h.subs)
	h.mu.Unlock()
	return connected, total
}

// handleSubscribe answers a co-op's GET /~dcws/subscribe with a 101 whose
// Hijack takes over the connection for framed traffic. The hijack
// callback runs on a bounded httpx worker and must not block: it spawns
// the reader and heartbeat goroutines and returns immediately.
func (h *invalHub) handleSubscribe(req *httpx.Request) *httpx.Response {
	if h.s.params.LeaseDuration <= 0 {
		return status(404, "push invalidation disabled")
	}
	coopAddr := req.Header.Get(headerFetch)
	if coopAddr == "" {
		return status(400, "missing "+headerFetch+" header naming the subscriber")
	}
	resp := httpx.NewResponse(101)
	resp.Header.Set("Connection", "keep-alive")
	resp.Hijack = func(conn net.Conn, br *bufio.Reader) {
		h.attach(coopAddr, conn, br)
	}
	return resp
}

// attach binds an upgraded connection to the subscriber record for addr,
// replacing any previous connection, and spawns its reader and heartbeat
// goroutines. Runs on an httpx worker; must not block.
func (h *invalHub) attach(addr string, conn net.Conn, br *bufio.Reader) {
	h.mu.Lock()
	sub, ok := h.subs[addr]
	if !ok {
		sub = &invalSubscriber{addr: addr, docs: make(map[string]bool)}
		h.subs[addr] = sub
	}
	old := sub.conn
	sub.conn = conn
	h.mu.Unlock()
	if old != nil {
		old.Close() // stale reconnect raced us; its reader exits
	}
	s := h.s
	var lastRecv atomic.Int64
	lastRecv.Store(s.now().UnixNano())
	// The reader and heartbeat goroutines ride s.wg so shutdown waits for
	// them; guard against a subscribe racing Close.
	select {
	case <-s.stopped:
		conn.Close()
		return
	default:
	}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		h.readLoop(sub, conn, br, &lastRecv)
	}()
	go func() {
		defer s.wg.Done()
		s.heartbeatLoop(conn, &sub.writeMu, &lastRecv)
	}()
}

// readLoop consumes frames from one subscriber until the connection
// fails. The connection staying open IS the liveness signal; every frame
// received bumps lastRecv for the heartbeat monitor.
func (h *invalHub) readLoop(sub *invalSubscriber, conn net.Conn, br *bufio.Reader, lastRecv *atomic.Int64) {
	s := h.s
	defer func() {
		conn.Close()
		h.mu.Lock()
		if sub.conn == conn {
			sub.conn = nil // keep docs: reconnect gets catch-up
		}
		h.mu.Unlock()
	}()
	for {
		typ, payload, err := httpx.ReadFrame(br)
		if err != nil {
			return
		}
		lastRecv.Store(s.now().UnixNano())
		switch typ {
		case frameSubscribe:
			docs, err := decodeInventory(payload)
			if err != nil {
				return
			}
			h.register(sub, conn, docs)
		case frameAck:
			if _, err := decodeName(payload); err == nil {
				s.tel.invalAcks.Inc()
			}
		case frameUnsubscribe:
			name, err := decodeName(payload)
			if err != nil {
				continue
			}
			h.mu.Lock()
			delete(sub.docs, name)
			h.mu.Unlock()
			s.walAppend(recSubDel, encodeSubRecord(sub.addr, name))
		case framePing:
			// lastRecv bump above is the whole point.
		}
	}
}

// register records which documents a subscriber hosts and sends catch-up
// invalidations for any whose current content differs from the hash the
// coop reported — the changes it missed while disconnected. Documents the
// coop is no longer authorized for get a revoke frame instead.
func (h *invalHub) register(sub *invalSubscriber, conn net.Conn, docs []invDoc) {
	s := h.s
	start := time.Now()
	span := telemetry.NewSpan(telemetry.NewTraceID(), "", s.addr, "subscribe")
	span.Peer = sub.addr
	span.Start = s.now()
	added := 0
	for _, d := range docs {
		if !s.subscribeAuthorized(d.name, sub.addr) {
			s.writeInvalFrame(sub, conn, invalRevoke, d.name, 0)
			continue
		}
		h.mu.Lock()
		fresh := !sub.docs[d.name]
		sub.docs[d.name] = true
		h.mu.Unlock()
		if fresh {
			s.walAppend(recSubAdd, encodeSubRecord(sub.addr, d.name))
		}
		added++
		if cur, ok := s.migrationHash(d.name); ok && cur != d.hash {
			// Missed an update while disconnected: catch it up now.
			s.pushTo(sub, invalUpdate, d.name, cur)
		}
	}
	span.Target = "docs=" + strconv.Itoa(added)
	span.Duration = time.Since(start)
	s.tel.record(span)
}

// subscribeAuthorized mirrors serveFetch's authorization: the coop must be
// the document's assigned co-op or a member of its replica set.
func (s *Server) subscribeAuthorized(name, coopAddr string) bool {
	if mig, ok := s.ledger.Get(name); ok && mig.Coop == coopAddr {
		return true
	}
	s.repMu.RLock()
	defer s.repMu.RUnlock()
	for _, r := range s.replicas[name] {
		if r == coopAddr {
			return true
		}
	}
	return false
}

// migrationHash returns the current migration-prepared content hash for a
// home document, rendering on a cache miss. ok is false when the document
// is unknown or fails to render.
func (s *Server) migrationHash(name string) (uint64, bool) {
	_, _, gen, known := s.ldg.ServeInfo(name)
	if !known {
		return 0, false
	}
	if _, h, ok := s.rcache.get(name, renderMigration, gen); ok {
		return h, true
	}
	data, err := s.prepareForMigration(name)
	if err != nil {
		return 0, false
	}
	h := contentHash(data)
	s.rcache.put(name, renderMigration, gen, data, h)
	return h, true
}

// push fans one invalidation out to every connected subscriber hosting
// the document. The hash is computed lazily — only when some connected
// subscriber actually holds the doc — and only for updates (delete and
// revoke carry zero). Safe to call with no server locks held.
func (h *invalHub) push(kind byte, name string) {
	if h == nil || h.s.params.LeaseDuration <= 0 {
		return
	}
	h.mu.Lock()
	var targets []*invalSubscriber
	var dropped []string
	for _, sub := range h.subs {
		if sub.conn != nil && sub.docs[name] {
			targets = append(targets, sub)
		}
		// Hosting ends with a delete or revoke: the subscription entry
		// goes too, connected or not, so a later reconnect is not caught
		// up on a document it must no longer serve.
		if kind != invalUpdate && sub.docs[name] {
			delete(sub.docs, name)
			dropped = append(dropped, sub.addr)
		}
	}
	h.mu.Unlock()
	for _, addr := range dropped {
		h.s.walAppend(recSubDel, encodeSubRecord(addr, name))
	}
	if len(targets) == 0 {
		return
	}
	var hash uint64
	if kind == invalUpdate {
		hash, _ = h.s.migrationHash(name)
	}
	for _, sub := range targets {
		h.s.pushTo(sub, kind, name, hash)
	}
}

// pushBatch fans a set of same-kind invalidations out, coalescing the
// documents each connected subscriber hosts into one multi-document frame
// — one migration's link-rewrite storm becomes one frame per subscriber
// instead of a frame per rewritten document. Hashes are computed lazily
// and shared across subscribers. A subscriber holding just one of the
// documents gets a plain frame; the batch framing buys nothing there.
func (h *invalHub) pushBatch(kind byte, names []string) {
	if h == nil || h.s.params.LeaseDuration <= 0 || len(names) == 0 {
		return
	}
	h.mu.Lock()
	targets := make(map[*invalSubscriber][]string)
	conns := make(map[*invalSubscriber]net.Conn)
	for _, sub := range h.subs {
		if sub.conn == nil {
			continue
		}
		for _, n := range names {
			if sub.docs[n] {
				targets[sub] = append(targets[sub], n)
			}
		}
		if len(targets[sub]) > 0 {
			conns[sub] = sub.conn
		}
	}
	h.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	hashes := make(map[string]uint64)
	hashFor := func(n string) uint64 {
		if v, ok := hashes[n]; ok {
			return v
		}
		v, _ := h.s.migrationHash(n)
		hashes[n] = v
		return v
	}
	for sub, docs := range targets {
		if len(docs) == 1 {
			h.s.pushTo(sub, kind, docs[0], hashFor(docs[0]))
			continue
		}
		batch := make([]invDoc, 0, len(docs))
		for _, n := range docs {
			batch = append(batch, invDoc{name: n, hash: hashFor(n)})
		}
		if h.s.writeInvalBatch(sub, conns[sub], kind, batch) {
			h.s.tel.invalPushes.Inc()
			h.s.tel.invalBatches.Inc()
			h.s.tel.invalBatchDocs.Add(int64(len(batch)))
		}
	}
}

// pushRevokeTo sends revoke frames for name to a specific subset of
// subscribers — the partial-shrink path, where the kept replicas must NOT
// be told to drop their copies. Their subscription entries go too.
func (h *invalHub) pushRevokeTo(name string, addrs []string) {
	if h == nil || h.s.params.LeaseDuration <= 0 {
		return
	}
	for _, addr := range addrs {
		h.mu.Lock()
		sub := h.subs[addr]
		var had, send bool
		if sub != nil && sub.docs[name] {
			had = true
			delete(sub.docs, name)
			send = sub.conn != nil
		}
		h.mu.Unlock()
		if !had {
			continue
		}
		h.s.walAppend(recSubDel, encodeSubRecord(addr, name))
		if send {
			h.s.pushTo(sub, invalRevoke, name, 0)
		}
	}
}

// pushTo sends one invalidation frame to one subscriber. Write failures
// close the connection; the coop reconnects with backoff and catches up.
func (s *Server) pushTo(sub *invalSubscriber, kind byte, name string, hash uint64) {
	s.hub.mu.Lock()
	conn := sub.conn
	s.hub.mu.Unlock()
	if conn == nil {
		return
	}
	if s.writeInvalFrame(sub, conn, kind, name, hash) {
		s.tel.invalPushes.Inc()
	}
}

// writeInvalFrame writes one frameInvalidate under the subscriber's write
// mutex with a short real-time deadline (frames are tiny; a peer that
// cannot drain them within it is effectively partitioned). The frame is
// stamped with the channel's next sequence number. Returns whether the
// write succeeded; on failure the connection is closed, which unblocks
// its reader.
func (s *Server) writeInvalFrame(sub *invalSubscriber, conn net.Conn, kind byte, name string, hash uint64) bool {
	sub.writeMu.Lock()
	defer sub.writeMu.Unlock()
	sub.seq++
	conn.SetWriteDeadline(time.Now().Add(invalWriteTimeout))
	err := httpx.WriteFrame(conn, frameInvalidate, encodeInvalidate(kind, name, hash, sub.seq))
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return false
	}
	return true
}

// writeInvalBatch writes one frameInvalidateBatch, with the same locking,
// deadline, and sequence-stamping rules as writeInvalFrame.
func (s *Server) writeInvalBatch(sub *invalSubscriber, conn net.Conn, kind byte, docs []invDoc) bool {
	sub.writeMu.Lock()
	defer sub.writeMu.Unlock()
	sub.seq++
	conn.SetWriteDeadline(time.Now().Add(invalWriteTimeout))
	err := httpx.WriteFrame(conn, frameInvalidateBatch, encodeInvalidateBatch(kind, docs, sub.seq))
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return false
	}
	return true
}

// invalWriteTimeout bounds a single frame write on an upgraded
// connection. Real time, not the configured clock: it guards the wire,
// not the protocol.
const invalWriteTimeout = 10 * time.Second

// heartbeatLoop paces keepalives on one upgraded connection and enforces
// liveness: a peer silent for three heartbeats is presumed partitioned
// and the connection is force-closed, unblocking its reader. Both sides
// run one; receipt of ANY frame counts as life. Driven by the configured
// clock so deterministic tests control it.
func (s *Server) heartbeatLoop(conn net.Conn, writeMu *sync.Mutex, lastRecv *atomic.Int64) {
	hb := s.params.invalHeartbeat()
	if hb <= 0 {
		return
	}
	for {
		select {
		case <-s.stopped:
			return
		case <-s.cfg.Clock.After(hb):
		}
		if s.now().Sub(time.Unix(0, lastRecv.Load())) > 3*hb {
			conn.Close()
			return
		}
		writeMu.Lock()
		conn.SetWriteDeadline(time.Now().Add(invalWriteTimeout))
		err := httpx.WriteFrame(conn, framePing, nil)
		conn.SetWriteDeadline(time.Time{})
		writeMu.Unlock()
		if err != nil {
			conn.Close()
			return
		}
	}
}

// ---- coop side: the subscription manager --------------------------------

// subConn is one live (or reconnecting) subscription from this co-op to a
// home server.
type subConn struct {
	home string

	mu      sync.Mutex
	conn    net.Conn // nil while disconnected
	writeMu sync.Mutex
	// lastSeq is the last invalidation sequence number received on the
	// current connection, touched only by its readLoop goroutine. Reset
	// on each reconnect: frames missed while disconnected are covered by
	// the reconnect inventory, not the gap check.
	lastSeq uint64
}

// subManager owns this co-op's outbound subscriptions, one per home
// server it hosts documents for. Each runs a connect/read/reconnect loop
// goroutine; lease renewal happens in the read loop (every frame from the
// home renews every lease held from it).
type subManager struct {
	s  *Server
	mu sync.Mutex
	// homes is keyed by home server address; presence means a loop is
	// running (or winding down after stop).
	homes map[string]*subConn
}

func newSubManager(s *Server) *subManager {
	return &subManager{s: s, homes: make(map[string]*subConn)}
}

// reconnectPolicy paces subscription reconnects. Deliberately not derived
// from Params.RetryBaseDelay (test worlds set it negative to make RPC
// retries immediate, which here would busy-loop against a down home).
var reconnectPolicy = resilience.Policy{
	BaseDelay: time.Second,
	MaxDelay:  time.Minute,
	Jitter:    0.2,
}

// ensureSubscribed starts (or pokes) the subscription loop for a home.
// Called from every path that admits a hosted document: lazy fetch, chain
// replication, and recovery. Cheap when the loop already runs.
func (m *subManager) ensureSubscribed(homeAddr string) {
	if m == nil || m.s.params.LeaseDuration <= 0 {
		return
	}
	m.mu.Lock()
	sc, ok := m.homes[homeAddr]
	if !ok {
		sc = &subConn{home: homeAddr}
		m.homes[homeAddr] = sc
	}
	m.mu.Unlock()
	if ok {
		// Loop already running: send an incremental inventory for any
		// newly admitted docs over the live channel.
		m.s.sendInventory(sc)
		return
	}
	s := m.s
	select {
	case <-s.stopped:
		return
	default:
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		m.subscribeLoop(sc)
	}()
}

// subscribeLoop is one home's connect / subscribe / read / reconnect
// cycle. It runs until server shutdown; while disconnected the per-doc
// leases silently expire and the polling validator takes back over, so
// losing the channel only ever degrades to the paper's behaviour.
func (m *subManager) subscribeLoop(sc *subConn) {
	s := m.s
	for attempt := 0; ; attempt++ {
		select {
		case <-s.stopped:
			return
		default:
		}
		if attempt > 0 {
			delay := reconnectPolicy.Backoff(sc.home, attempt)
			select {
			case <-s.stopped:
				return
			case <-s.cfg.Clock.After(delay):
			}
		}
		req := httpx.NewRequest("GET", subscribePath)
		req.Header.Set(headerFetch, s.addr)
		conn, br, err := s.client.Subscribe(sc.home, req, s.params.MaintenanceTimeout)
		if err != nil {
			s.tel.invalReconnects.Inc()
			continue
		}
		attempt = 0
		sc.lastSeq = 0 // fresh channel, fresh sequence baseline
		sc.mu.Lock()
		sc.conn = conn
		sc.mu.Unlock()
		s.coops.renewHome(sc.home, s.now().Add(s.params.LeaseDuration))
		s.sendInventory(sc)
		var lastRecv atomic.Int64
		lastRecv.Store(s.now().UnixNano())
		hbDone := make(chan struct{})
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer close(hbDone)
			s.heartbeatLoop(conn, &sc.writeMu, &lastRecv)
		}()
		m.readLoop(sc, conn, br, &lastRecv)
		conn.Close()
		<-hbDone
		sc.mu.Lock()
		sc.conn = nil
		sc.mu.Unlock()
		s.tel.invalReconnects.Inc()
	}
}

// sendInventory sends the coop's current hosted-document inventory for
// sc.home as a frameSubscribe — full on connect, and re-sent on each new
// admission (idempotent on the home side; known docs just re-register).
func (s *Server) sendInventory(sc *subConn) {
	sc.mu.Lock()
	conn := sc.conn
	sc.mu.Unlock()
	if conn == nil {
		return
	}
	docs := s.coops.inventory(sc.home)
	if len(docs) == 0 {
		return
	}
	sc.writeMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(invalWriteTimeout))
	err := httpx.WriteFrame(conn, frameSubscribe, encodeInventory(docs))
	conn.SetWriteDeadline(time.Time{})
	sc.writeMu.Unlock()
	if err != nil {
		conn.Close()
	}
}

// unsubscribe tells a home this co-op no longer hosts name (best-effort;
// the home's authorization check also revokes on the next subscribe).
func (m *subManager) unsubscribe(homeAddr, name string) {
	if m == nil || m.s.params.LeaseDuration <= 0 {
		return
	}
	m.mu.Lock()
	sc := m.homes[homeAddr]
	m.mu.Unlock()
	if sc == nil {
		return
	}
	sc.mu.Lock()
	conn := sc.conn
	sc.mu.Unlock()
	if conn == nil {
		return
	}
	sc.writeMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(invalWriteTimeout))
	err := httpx.WriteFrame(conn, frameUnsubscribe, encodeName(name))
	conn.SetWriteDeadline(time.Time{})
	sc.writeMu.Unlock()
	if err != nil {
		conn.Close()
	}
}

// readLoop consumes frames pushed by one home server. EVERY frame —
// invalidation, ping, anything — renews the leases of all documents
// hosted from that home: the channel being alive is the proof the home
// can still reach us with invalidations.
func (m *subManager) readLoop(sc *subConn, conn net.Conn, br *bufio.Reader, lastRecv *atomic.Int64) {
	s := m.s
	for {
		typ, payload, err := httpx.ReadFrame(br)
		if err != nil {
			return
		}
		lastRecv.Store(s.now().UnixNano())
		s.coops.renewHome(sc.home, s.now().Add(s.params.LeaseDuration))
		switch typ {
		case frameInvalidate:
			kind, name, _, seq, derr := decodeInvalidate(payload)
			if derr != nil {
				return
			}
			m.checkSeq(sc, seq)
			s.tel.invalReceived.Inc()
			s.applyInvalidation(sc, kind, name)
		case frameInvalidateBatch:
			kind, docs, seq, derr := decodeInvalidateBatch(payload)
			if derr != nil {
				return
			}
			m.checkSeq(sc, seq)
			s.tel.invalReceived.Inc()
			for _, d := range docs {
				s.applyInvalidation(sc, kind, d.name)
			}
		case framePing:
			// Renewal above is the work.
		}
	}
}

// checkSeq folds one received frame's sequence number into the channel's
// gap detector: a numbered frame that is not the immediate successor of
// the previous one means a frame was lost on a live channel, so the coop
// resyncs by re-sending its inventory (the home answers with catch-up
// invalidations for every stale copy). The first numbered frame on a
// connection just sets the baseline, and unnumbered (legacy) frames are
// exempt.
func (m *subManager) checkSeq(sc *subConn, seq uint64) {
	if seq == 0 {
		return
	}
	last := sc.lastSeq
	sc.lastSeq = seq
	if last != 0 && seq != last+1 {
		m.s.tel.invalGaps.Inc()
		m.s.sendInventory(sc)
	}
}

// applyInvalidation reacts to one pushed invalidation: updates re-fetch
// the copy immediately (conditional GET — the staleness window collapses
// from T_val to one RPC), deletes and revokes drop it. An ack goes back
// so the home can count convergence.
func (s *Server) applyInvalidation(sc *subConn, kind byte, name string) {
	home, err := naming.ParseOrigin(sc.home)
	if err != nil {
		return
	}
	key, err := naming.Encode(home, name)
	if err != nil {
		return
	}
	start := time.Now()
	span := telemetry.NewSpan(telemetry.NewTraceID(), "", s.addr, "invalidate-apply")
	span.Target, span.Peer = name, sc.home
	span.Start = s.now()
	switch kind {
	case invalUpdate:
		s.validateOne(key)
	case invalDelete, invalRevoke:
		if s.coops.remove(key) {
			s.cfg.Store.Delete(key)
			s.walAppend(recCoopForget, encodeNameRecord(key))
		}
	}
	span.Duration = time.Since(start)
	s.tel.record(span)
	sc.mu.Lock()
	conn := sc.conn
	sc.mu.Unlock()
	if conn == nil {
		return
	}
	sc.writeMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(invalWriteTimeout))
	werr := httpx.WriteFrame(conn, frameAck, encodeName(name))
	conn.SetWriteDeadline(time.Time{})
	sc.writeMu.Unlock()
	if werr != nil {
		conn.Close()
	}
}

// subscriptionLive reports whether the channel to homeAddr is currently
// connected (the validator's skip condition, together with an unexpired
// lease).
func (m *subManager) subscriptionLive(homeAddr string) bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	sc := m.homes[homeAddr]
	m.mu.Unlock()
	if sc == nil {
		return false
	}
	sc.mu.Lock()
	live := sc.conn != nil
	sc.mu.Unlock()
	return live
}

// closeAll force-closes every live subscription connection so reader
// goroutines unblock during shutdown.
func (m *subManager) closeAll() {
	if m == nil {
		return
	}
	m.mu.Lock()
	conns := make([]net.Conn, 0, len(m.homes))
	for _, sc := range m.homes {
		sc.mu.Lock()
		if sc.conn != nil {
			conns = append(conns, sc.conn)
		}
		sc.mu.Unlock()
	}
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// closeAll force-closes every connected subscriber so the home's reader
// goroutines unblock during shutdown.
func (h *invalHub) closeAll() {
	if h == nil {
		return
	}
	h.mu.Lock()
	conns := make([]net.Conn, 0, len(h.subs))
	for _, sub := range h.subs {
		if sub.conn != nil {
			conns = append(conns, sub.conn)
		}
	}
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// encodeSubRecord / decodeSubRecord frame a (subscriber addr, doc name)
// pair for recSubAdd / recSubDel WAL records.
func encodeSubRecord(addr, name string) []byte {
	buf := make([]byte, 0, len(addr)+len(name)+4)
	buf = putStr(buf, addr)
	return putStr(buf, name)
}

func decodeSubRecord(data []byte) (addr, name string, err error) {
	if addr, data, err = getStr(data); err != nil {
		return
	}
	name, _, err = getStr(data)
	return
}
