package dcws

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/naming"
)

func TestRenderCacheServesRepeatHits(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil, Params{})
	first := w.get("home:80", "/index.html")
	hitsBefore, _ := home.CacheCounts()
	second := w.get("home:80", "/index.html")
	hitsAfter, _ := home.CacheCounts()
	if hitsAfter <= hitsBefore {
		t.Fatalf("repeat GET did not hit the render cache: hits %d -> %d", hitsBefore, hitsAfter)
	}
	if string(first.Body) != string(second.Body) {
		t.Fatal("cached serve returned different bytes")
	}
}

func TestRenderCacheInvalidatedByMigration(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	// Warm the cache with the pre-migration rendering.
	if resp := w.get("home:80", "/index.html"); strings.Contains(string(resp.Body), "~migrate") {
		t.Fatal("test premise broken: index already rewritten")
	}
	w.get("home:80", "/index.html")
	home.migrate("/page.html", "coop:81")
	resp := w.get("home:80", "/index.html")
	if !strings.Contains(string(resp.Body), "http://coop:81/~migrate/home/80/page.html") {
		t.Fatalf("stale cached rendering served after migration: %s", resp.Body)
	}
}

func TestRenderCacheInvalidatedByRevocation(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	// Warm the cache with the coop-pointing rendering.
	if resp := w.get("home:80", "/index.html"); !strings.Contains(string(resp.Body), "~migrate") {
		t.Fatal("test premise broken: index not rewritten after migration")
	}
	w.get("home:80", "/index.html")
	home.revoke("/page.html")
	resp := w.get("home:80", "/index.html")
	if strings.Contains(string(resp.Body), "~migrate") {
		t.Fatalf("stale cached rendering served after revocation: %s", resp.Body)
	}
}

func TestRenderCacheInvalidatedByRecall(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	w.get("home:80", "/index.html")
	w.get("home:80", "/index.html") // cached coop-pointing copy
	if n := home.RecallFrom("coop:81"); n != 1 {
		t.Fatalf("recalled %d documents, want 1", n)
	}
	resp := w.get("home:80", "/index.html")
	if strings.Contains(string(resp.Body), "~migrate") {
		t.Fatalf("stale cached rendering served after recall: %s", resp.Body)
	}
}

func TestRenderCacheInvalidatedByUpdate(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil, Params{})
	w.get("home:80", "/index.html")
	w.get("home:80", "/index.html") // cached
	if err := home.UpdateDocument("/index.html", []byte("<html>fresh</html>")); err != nil {
		t.Fatal(err)
	}
	resp := w.get("home:80", "/index.html")
	if !strings.Contains(string(resp.Body), "fresh") {
		t.Fatalf("stale cached rendering served after update: %s", resp.Body)
	}
}

func TestMigrationGenerationsDirtyLinkingDocs(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	g := home.Graph()
	pageGen := g.Generation("/page.html")
	indexGen := g.Generation("/index.html")
	picGen := g.Generation("/pic.gif")
	home.migrate("/page.html", "coop:81")
	if g.Generation("/page.html") == pageGen {
		t.Fatal("migrated document's generation did not advance")
	}
	// /index.html links to /page.html: it was dirtied, so its rendered
	// form is stale and its generation must advance with the dirty bit.
	if g.Generation("/index.html") == indexGen {
		t.Fatal("dirtied linking document's generation did not advance")
	}
	// /pic.gif has no link to /page.html: untouched.
	if g.Generation("/pic.gif") != picGen {
		t.Fatal("unrelated document's generation advanced")
	}
}

func TestMigrationCopyRenderedOnce(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	fetch := func() *httpx.Response {
		req := httpx.NewRequest("GET", "/page.html")
		req.Header.Set(headerFetch, "coop:81")
		resp, err := w.client.Do("home:80", req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := fetch()
	hitsBefore, _ := home.CacheCounts()
	second := fetch()
	hitsAfter, _ := home.CacheCounts()
	if first.Status != 200 || second.Status != 200 {
		t.Fatalf("fetch statuses %d, %d", first.Status, second.Status)
	}
	if string(first.Body) != string(second.Body) {
		t.Fatal("repeated migration fetches differ")
	}
	if hitsAfter <= hitsBefore {
		t.Fatal("second migration fetch re-rendered instead of hitting the cache")
	}
	if first.Header.Get(headerValidate) == "" || first.Header.Get(headerValidate) != second.Header.Get(headerValidate) {
		t.Fatalf("content hash unstable across cached fetches: %q vs %q",
			first.Header.Get(headerValidate), second.Header.Get(headerValidate))
	}
}

func TestStatusExposesCacheAndQueueGauges(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	w.get("home:80", "/index.html")
	w.get("home:80", "/index.html")
	body := string(w.get("home:80", "/~dcws/status").Body)
	for _, field := range []string{`"cache_hits"`, `"cache_misses"`, `"queue_depth"`} {
		if !strings.Contains(body, field) {
			t.Fatalf("status lacks %s: %s", field, body)
		}
	}
}

// TestConcurrentServeAndMigrate hammers the serving engine from several
// goroutines while migrations, revocations, and content updates churn the
// graph — run under -race this guards the decomposed locking scheme and
// the generation-keyed cache.
func TestConcurrentServeAndMigrate(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if resp := home.handle(httpx.NewRequest("GET", "/index.html")); resp.Status != 200 {
					t.Errorf("index served %d", resp.Status)
					return
				}
				// /page.html flips between at-home (200) and migrated (301).
				if resp := home.handle(httpx.NewRequest("GET", "/page.html")); resp.Status != 200 && resp.Status != 301 {
					t.Errorf("page served %d", resp.Status)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		home.migrate("/page.html", "coop:81")
		if i%4 == 0 {
			home.UpdateDocument("/pic.gif", []byte("GIF89a-new-bytes"))
		}
		home.revoke("/page.html")
	}
	close(stop)
	wg.Wait()
}

func TestRenderCacheDropsStaleGeneration(t *testing.T) {
	c := newRenderCache(1 << 20)
	c.put("/a.html", renderHome, 1, []byte("gen-one"), 0)
	if _, _, ok := c.get("/a.html", renderHome, 2); ok {
		t.Fatal("stale generation served")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry not dropped: len = %d", c.len())
	}
}

func TestRenderCacheBudget(t *testing.T) {
	// Per-shard budget of 16 bytes. Both kinds of one name land in the
	// same shard, so the second insert must evict the first.
	c := newRenderCache(16 * renderShardCount)
	c.put("/a.html", renderHome, 1, make([]byte, 10), 0)
	c.put("/a.html", renderMigration, 1, make([]byte, 10), 0)
	if _, _, ok := c.get("/a.html", renderHome, 1); ok {
		t.Fatal("LRU entry survived over-budget insert")
	}
	if _, _, ok := c.get("/a.html", renderMigration, 1); !ok {
		t.Fatal("newest entry evicted")
	}
	// A document larger than a whole shard is never cached.
	c.put("/big.html", renderHome, 1, make([]byte, 64), 0)
	if _, _, ok := c.get("/big.html", renderHome, 1); ok {
		t.Fatal("oversized document cached")
	}
}

func TestRenderCacheDisabled(t *testing.T) {
	c := newRenderCache(-1)
	c.put("/a.html", renderHome, 1, []byte("data"), 0)
	if _, _, ok := c.get("/a.html", renderHome, 1); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestCoopSetBudgetEviction(t *testing.T) {
	cs := newCoopSet()
	origin := naming.Origin{Host: "home", Port: 80}
	now := time.Unix(1000, 0)
	for _, k := range []string{"a", "b", "c"} {
		cs.touch(k, origin, "/"+k, now)
		cs.markFetched(k, 40, 0, now)
		now = now.Add(time.Second)
	}
	cs.touch("a", origin, "/a", now) // a becomes most recently used
	if got := cs.presentBytes(); got != 120 {
		t.Fatalf("presentBytes = %d, want 120", got)
	}
	// b is the LRU present copy once keep=c is skipped.
	evicted := cs.evictOver(100, "c")
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if got := cs.presentBytes(); got != 80 {
		t.Fatalf("presentBytes after eviction = %d, want 80", got)
	}
	if v, ok := cs.view("b"); !ok || v.present {
		t.Fatalf("evicted copy state: ok=%v present=%v (want hosted but absent)", ok, v.present)
	}
	if cs.count() != 3 {
		t.Fatalf("count = %d, want 3 (eviction is physical, not logical)", cs.count())
	}
}
