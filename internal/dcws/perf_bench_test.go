package dcws

import "testing"

// Thin wrappers so `go test -bench` runs the exported serve-path
// benchmarks shared with cmd/dcwsperf (which emits BENCH_serve.json).

func BenchmarkServeHome(b *testing.B)   { BenchServeHome(b) }
func BenchmarkServeCoop(b *testing.B)   { BenchServeCoop(b) }
func BenchmarkRegenCached(b *testing.B) { BenchRegenCached(b) }

// RPC round-trip transport benchmarks (cmd/dcwsperf emits BENCH_rpc.json
// from the same pair and gates the pooled-vs-dial ratios in CI).

func BenchmarkRPCDialPerRequest(b *testing.B)    { BenchRPCDialPerRequest(b) }
func BenchmarkRPCPooled(b *testing.B)            { BenchRPCPooled(b) }
func BenchmarkRPCDialPerRequestTCP(b *testing.B) { BenchRPCDialPerRequestTCP(b) }
func BenchmarkRPCPooledTCP(b *testing.B)         { BenchRPCPooledTCP(b) }

// Durable-tier benchmarks (cmd/dcwsperf emits BENCH_wal.json from these and
// gates append cost plus WAL-on serve-path parity in CI).

func BenchmarkWALAppendInterval(b *testing.B) { BenchWALAppendInterval(b) }
func BenchmarkWALAppendAlways(b *testing.B)   { BenchWALAppendAlways(b) }
func BenchmarkServeHomeWAL(b *testing.B)      { BenchServeHomeWAL(b) }
