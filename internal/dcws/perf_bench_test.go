package dcws

import "testing"

// Thin wrappers so `go test -bench` runs the exported serve-path
// benchmarks shared with cmd/dcwsperf (which emits BENCH_serve.json).

func BenchmarkServeHome(b *testing.B)   { BenchServeHome(b) }
func BenchmarkServeCoop(b *testing.B)   { BenchServeCoop(b) }
func BenchmarkRegenCached(b *testing.B) { BenchRegenCached(b) }
