package dcws

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dcws/internal/glt"
	"dcws/internal/httpx"
	"dcws/internal/naming"
	"dcws/internal/policy"
	"dcws/internal/telemetry"
)

// statsLoop is the statistics module (§5.1): every T_st it refreshes this
// server's load entry, evaluates the migration policy, handles expired
// migrations, applies the replication extension, and rolls the hit window.
func (s *Server) statsLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case <-s.cfg.Clock.After(s.params.StatsInterval):
		}
		s.runStatsTick()
	}
}

// runStatsTick performs one statistics interval's work. Exposed internally
// so tests and the cluster harness can drive it deterministically.
func (s *Server) runStatsTick() {
	now := s.now()
	// Fold this interval's achieved serve latency into the capacity
	// estimate first, so the load advertised below is normalized by the
	// freshest figure.
	s.updateCapacity()
	// With capacity normalization on, every load figure this tick — the
	// gossiped entry and the migration/revocation comparisons — is a
	// fraction of capacity, the same unit peers advertise, so the
	// imbalance trigger compares like with like.
	load := s.normalizeLoad(s.loadMetric(now))
	// Forced (maxAge 0) so the self entry's timestamp advances every tick
	// even when the quantized load is unchanged: peers re-admit a
	// recovered server only on entries measured after its down
	// declaration. Migration decisions below use the raw load.
	s.table.RefreshSelf(s.advertisedLoad(now), now, 0)

	s.maybeRevokeExpired(load)
	// Drain the coop hot-report hints once and share them between the two
	// replication paths: the proactive chain disseminator runs first
	// (EWMA-triggered, pushes bytes eagerly), then the reactive
	// one-replica-per-tick extension covers whatever the chain did not
	// handle.
	hints := s.takeHotHints()
	handled := s.maybeChainReplicate(hints)
	if s.params.Replicate {
		s.maybeReplicate(hints, handled)
	}
	s.maybeMigrate(load)
	s.ldg.RollWindow()
	s.rollCoopWindows()
}

// maybeMigrate implements the lazy migration trigger of §4.2: when this
// server's load exceeds the least-loaded peer's by the imbalance ratio,
// select a document with Algorithm 1 and migrate it (logically).
func (s *Server) maybeMigrate(selfLoad float64) {
	coop, ok := s.chooseCoop(selfLoad)
	if !ok {
		return
	}
	candidates := s.buildCandidates()
	doc, ok := policy.SelectForMigration(candidates, s.params.MigrationThreshold)
	if !ok {
		return
	}
	if !s.gate.Allow(coop, s.now()) {
		return
	}
	s.migrate(doc, coop)
}

// chooseCoop picks the migration target, honoring the per-coop rate gate,
// and reports whether migrating is justified at all. Candidates are
// walked in headroom order — same-zone peers first, then the rest — so
// migrations land where spare capacity actually is and stay zone-local
// until local headroom is exhausted. A candidate must also satisfy the
// imbalance trigger (we are meaningfully busier than it); zone-local
// peers that fail the trigger are merely skipped, which is exactly the
// cross-zone spillover: a distant peer with real headroom can still take
// the document. Suspect peers — failing probes or a tripped breaker —
// are skipped: migrating a document to a server we may be about to
// declare down would strand it. So are peers with stale load entries: an
// advertised load nobody has refreshed within PlacementMaxStaleness may
// be a long-gone idle reading, and migrating toward it would chase a
// ghost.
func (s *Server) chooseCoop(selfLoad float64) (string, bool) {
	if selfLoad <= 0 {
		return "", false
	}
	exclude := map[string]bool{s.Addr(): true}
	now := s.now()
	for _, e := range s.table.RankedByHeadroom(exclude, s.params.Zone) {
		// Trigger condition: we are meaningfully busier than the target.
		if selfLoad <= e.Load*s.params.ImbalanceRatio {
			continue
		}
		if s.peerSuspect(e.Server) || s.entryStale(e) || !s.gate.Eligible(e.Server, now) {
			continue
		}
		return e.Server, true
	}
	return "", false
}

// pickPlacement picks the best placement target regardless of the
// imbalance trigger: the healthy peer with the most headroom, zone-local
// first. Used by operator-driven migration ("auto" target), where the
// operator has already decided the document should move and only the
// destination is the server's call.
func (s *Server) pickPlacement() string {
	exclude := map[string]bool{s.Addr(): true}
	for _, e := range s.table.RankedByHeadroom(exclude, s.params.Zone) {
		if s.peerSuspect(e.Server) || s.entryStale(e) {
			continue
		}
		return e.Server
	}
	return ""
}

// entryStale reports whether a load-table entry is too old to justify
// placing documents on its server. Entries with no timestamp are exempt:
// they are statically configured peers never heard from, and first
// contact has to start somewhere.
func (s *Server) entryStale(e glt.Entry) bool {
	max := s.params.PlacementMaxStaleness
	if max <= 0 || e.Updated.IsZero() {
		return false
	}
	return s.now().Sub(e.Updated) > max
}

// buildCandidates converts the LDG snapshot into Algorithm 1 candidates.
func (s *Server) buildCandidates() []policy.Candidate {
	docs := s.ldg.Snapshot()
	migrated := make(map[string]bool, len(docs))
	for _, d := range docs {
		if d.Location != "" {
			migrated[d.Name] = true
		}
	}
	out := make([]policy.Candidate, 0, len(docs))
	for _, d := range docs {
		remote := 0
		for _, from := range d.LinkFrom {
			if migrated[from] {
				remote++
			}
		}
		out = append(out, policy.Candidate{
			Name:           d.Name,
			Load:           d.WindowHits,
			EntryPoint:     d.EntryPoint,
			Migrated:       d.Location != "",
			RemoteLinkFrom: remote,
			LinkTo:         len(d.LinkTo),
		})
	}
	return out
}

// migrate performs the logical migration of §4.2: update the tuple's
// Location, dirty the LinkFrom documents, and record the migration. The
// physical copy moves lazily when the co-op server first needs it.
func (s *Server) migrate(doc, coop string) {
	dirtied, err := s.ldg.MarkMigrated(doc, coop)
	if err != nil {
		s.log.Printf("dcws %s: migrate %s: %v", s.Addr(), doc, err)
		return
	}
	at := s.now()
	s.ledger.Record(doc, coop, at)
	s.repMu.Lock()
	s.replicas[doc] = []string{coop}
	s.rrCounter[doc] = new(uint32)
	s.repMu.Unlock()
	s.rcache.invalidate(doc)
	s.walAppend(recMigrate, encodeMigrate(doc, coop, at))
	s.tel.migrations.Inc()
	// Link-rewritten referrers changed content: push so subscribed co-ops
	// hosting them refresh now instead of waiting out their lease.
	s.pushDirtied(dirtied)
	s.log.Printf("dcws %s: migrated %s -> %s (dirtied %d)", s.Addr(), doc, coop, len(dirtied))
}

// pushDirtied fans update invalidations out for documents whose rendered
// content changed as a side effect (link rewrites on migrate / revoke /
// replicate), batching each subscriber's share into one frame.
func (s *Server) pushDirtied(dirtied []string) {
	s.hub.pushBatch(invalUpdate, dirtied)
}

// maybeRevokeExpired walks migrations older than T_home and recalls any
// whose co-op is now substantially busier than we are (§4.5 case 2: the
// workload shifted and the placement no longer helps). Chain-replicated
// documents get a middle path: a merely-warm document — one whose serve
// rate cooled below the replication trigger but is still non-zero —
// shrinks to two replicas instead of losing the whole chain, so the next
// warm-up re-disseminates one copy, not k; a still-hot chain is left
// alone regardless of the co-op's load.
func (s *Server) maybeRevokeExpired(selfLoad float64) {
	rate := s.params.HotReplicateRate
	for _, mig := range s.ledger.Expired(s.now(), s.params.HomeReMigrateInterval) {
		s.repMu.RLock()
		nreps := len(s.replicas[mig.Doc])
		s.repMu.RUnlock()
		if nreps > 2 && rate > 0 {
			ew := s.HotRate(mig.Doc)
			if ew >= rate {
				continue // still hot: the chain earns its keep
			}
			if ew > 0 {
				s.shrinkReplicas(mig.Doc, 2)
				continue
			}
			// Cold (EWMA decayed to zero): fall through to the legacy
			// full-revocation check below.
		}
		e, ok := s.table.Get(mig.Coop)
		if !ok {
			continue
		}
		if e.Load > selfLoad*s.params.ImbalanceRatio {
			s.revoke(mig.Doc)
		}
	}
}

// shrinkReplicas trims a document's replica set down to keep hosts (the
// primary co-op stays; the chain tail goes), revoking the dropped copies
// chain-style and re-dirtying referrers so regenerated links rotate over
// the smaller set.
func (s *Server) shrinkReplicas(doc string, keep int) {
	s.repMu.Lock()
	reps := s.replicas[doc]
	if len(reps) <= keep {
		s.repMu.Unlock()
		return
	}
	kept := append([]string(nil), reps[:keep]...)
	droppedHosts := append([]string(nil), reps[keep:]...)
	s.replicas[doc] = kept
	s.repMu.Unlock()
	s.rcache.invalidate(doc)
	s.walAppend(recReplicas, encodeReplicas(doc, kept))
	dirtied, err := s.ldg.MarkMigrated(doc, kept[0])
	if err != nil {
		s.log.Printf("dcws %s: shrink %s: %v", s.Addr(), doc, err)
	}
	// Chain-revoke the dropped subset; stragglers fall back to per-peer
	// revokes, and pushed revoke frames cover subscribed hosts besides.
	remaining := droppedHosts
	if len(droppedHosts) > 1 {
		s.tel.replicateRevokeChains.Inc()
		ackSet := make(map[string]bool)
		for _, a := range s.sendChainRevoke(droppedHosts, doc) {
			ackSet[a] = true
		}
		remaining = remaining[:0:0]
		for _, h := range droppedHosts {
			if !ackSet[h] {
				remaining = append(remaining, h)
			}
		}
		s.tel.replicateRevokeFallbacks.Add(int64(len(remaining)))
	}
	for _, coop := range remaining {
		s.sendRevoke(coop, doc)
	}
	s.hub.pushRevokeTo(doc, droppedHosts)
	s.pushDirtied(dirtied)
	s.tel.replicateShrinks.Inc()
	s.log.Printf("dcws %s: shrank %s to %v (dropped %v)", s.Addr(), doc, kept, droppedHosts)
}

// revoke returns a document to this home server: the LDG is updated (the
// LinkFrom documents become dirty and will be regenerated pointing home),
// the ledger entry is dropped, and each hosting co-op is asked to discard
// its copy.
func (s *Server) revoke(doc string) {
	s.repMu.Lock()
	hosts := append([]string(nil), s.replicas[doc]...)
	delete(s.replicas, doc)
	delete(s.rrCounter, doc)
	s.repMu.Unlock()
	s.rcache.invalidate(doc)
	if len(hosts) == 0 {
		if mig, ok := s.ledger.Get(doc); ok {
			hosts = []string{mig.Coop}
		}
	}
	dirtied, err := s.ldg.MarkRevoked(doc)
	if err != nil {
		s.log.Printf("dcws %s: revoke %s: %v", s.Addr(), doc, err)
	}
	s.ledger.Forget(doc)
	s.walAppend(recRevoke, encodeNameRecord(doc))
	s.hotMu.Lock()
	delete(s.hotHints, doc)
	delete(s.hotRate, doc)
	s.hotMu.Unlock()
	// Multi-host replica sets are revoked along the dissemination chain:
	// one RPC to the head, relayed host to host, acks aggregated back up.
	// Hosts the chain missed (dead links) fall back to per-peer revokes,
	// whose failures the validator eventually cleans up anyway.
	remaining := hosts
	if len(hosts) > 1 {
		s.tel.replicateRevokeChains.Inc()
		ackSet := make(map[string]bool)
		for _, a := range s.sendChainRevoke(hosts, doc) {
			ackSet[a] = true
		}
		remaining = remaining[:0:0]
		for _, h := range hosts {
			if !ackSet[h] {
				remaining = append(remaining, h)
			}
		}
		s.tel.replicateRevokeFallbacks.Add(int64(len(remaining)))
	}
	for _, coop := range remaining {
		s.sendRevoke(coop, doc)
	}
	// Subscribed hosts drop the copy on the pushed frame even when the
	// revoke RPC path missed them; referrers with rewritten links refresh.
	s.hub.push(invalRevoke, doc)
	s.pushDirtied(dirtied)
	s.tel.revokes.Inc()
	s.log.Printf("dcws %s: revoked %s from %v", s.Addr(), doc, hosts)
}

// sendRevoke tells one co-op server to discard its copy of doc. Failure is
// tolerable: the copy simply ages out at the next validation.
func (s *Server) sendRevoke(coop, doc string) {
	key, err := naming.Encode(s.cfg.Origin, doc)
	if err != nil {
		return
	}
	traceID := telemetry.NewTraceID()
	span := telemetry.NewSpan(traceID, "", s.addr, "revoke-rpc")
	span.Target, span.Peer = doc, coop
	start := time.Now()
	span.Start = s.now()
	req := httpx.NewRequest("POST", revokePath)
	req.Header.Set(headerRevokeDoc, key)
	req.Header.Set(telemetry.TraceHeader, traceID)
	req.Header.Set(telemetry.ParentHeader, span.ID)
	s.piggybackTo(req.Header, coop, false)
	resp, err := s.client.DoTimeout(coop, req, s.params.MaintenanceTimeout)
	span.Duration = time.Since(start)
	if err != nil {
		span.Err = err.Error()
		s.tel.record(span)
		s.log.Printf("dcws %s: revoke %s at %s: %v", s.Addr(), doc, coop, err)
		return
	}
	span.Status = resp.Status
	s.tel.record(span)
	s.absorb(resp.Header)
}

// RecallFrom revokes every document currently migrated to the given co-op
// server (crash recovery, §4.5 case 3). Exposed for operational tooling.
func (s *Server) RecallFrom(coop string) int {
	s.tel.recalls.Inc()
	migs := s.ledger.HostedBy(coop)
	for _, mig := range migs {
		s.revoke(mig.Doc)
	}
	return len(migs)
}

// maybeReplicate applies the hot-spot replication extension: any migrated
// document whose hosting co-op reports more window hits than the threshold
// gains another replica on the least-loaded server not already hosting it.
// Documents in handled were chain-replicated this tick and are skipped.
func (s *Server) maybeReplicate(hints map[string]int64, handled map[string]bool) {
	type hot struct {
		doc  string
		hits int64
	}
	var hots []hot
	for doc, hits := range hints {
		if hits >= s.params.ReplicateThreshold && !handled[doc] {
			hots = append(hots, hot{doc, hits})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].hits != hots[j].hits {
			return hots[i].hits > hots[j].hits
		}
		return hots[i].doc < hots[j].doc
	})
	for _, h := range hots {
		s.addReplica(h.doc)
	}
}

// addReplica extends a hot document's replica set by one co-op server and
// dirties the LinkFrom documents so regenerated hyperlinks rotate across
// the enlarged set.
func (s *Server) addReplica(doc string) {
	loc, ok := s.ldg.Location(doc)
	if !ok || loc == "" {
		return
	}
	s.repMu.Lock()
	reps := s.replicas[doc]
	if len(reps) == 0 {
		reps = []string{loc}
	}
	if len(reps) >= s.params.MaxReplicas {
		s.repMu.Unlock()
		return
	}
	exclude := map[string]bool{s.Addr(): true}
	for _, r := range reps {
		exclude[r] = true
	}
	s.repMu.Unlock()
	// Same rules as chooseCoop: walk candidates in headroom order, zone-
	// local first, and never place a replica on a peer that is wobbling
	// toward a down declaration or whose load entry is too stale to trust.
	var target string
	for _, e := range s.table.RankedByHeadroom(exclude, s.params.Zone) {
		if s.peerSuspect(e.Server) || s.entryStale(e) {
			continue
		}
		target = e.Server
		break
	}
	if target == "" {
		return
	}
	s.repMu.Lock()
	// Install a fresh slice: pickReplica readers may hold the old one.
	newReps := append(append(make([]string, 0, len(reps)+1), reps...), target)
	s.replicas[doc] = newReps
	if s.rrCounter[doc] == nil {
		s.rrCounter[doc] = new(uint32)
	}
	s.repMu.Unlock()
	s.walAppend(recReplicas, encodeReplicas(doc, newReps))
	// Re-dirty the LinkFrom set so future regenerations rotate links.
	dirtied, err := s.ldg.MarkMigrated(doc, loc)
	if err != nil {
		s.log.Printf("dcws %s: replicate %s: %v", s.Addr(), doc, err)
		return
	}
	s.pushDirtied(dirtied)
	s.tel.replications.Inc()
	s.log.Printf("dcws %s: replicated %s -> %s (now %d hosts)", s.Addr(), doc, target, len(reps)+1)
}

// Replicas reports the replica set of a migrated document (primary co-op
// first). Empty when the document is at home.
func (s *Server) Replicas(doc string) []string {
	s.repMu.RLock()
	defer s.repMu.RUnlock()
	return append([]string(nil), s.replicas[doc]...)
}

// pingerLoop is the pinger thread of §4.5: it wakes every T_pi, probes
// servers whose load entries have gone stale, and declares a peer down
// after repeated failures, recalling its documents.
func (s *Server) pingerLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case <-s.cfg.Clock.After(s.params.PingerInterval):
		}
		s.runPingerTick()
	}
}

// runPingerTick performs one pinger activation. Probes fan out
// concurrently, each bounded by MaintenanceTimeout and retried up to
// ProbeAttempts times, so one stalled peer can no longer consume the
// whole pinger interval serially. Results are folded in sequentially
// after every probe returns, keeping declare-down decisions
// deterministic. Probes bypass the circuit-breaker gate (the pinger IS
// the failure detector) but still record outcomes, so a recovering
// peer's first successful probe closes its breaker.
func (s *Server) runPingerTick() {
	now := s.now()
	stale := s.table.StaleServers(now, s.params.PingerInterval)
	if len(stale) == 0 {
		return
	}
	type probeResult struct {
		resp *httpx.Response
		err  error
	}
	results := make([]probeResult, len(stale))
	var wg sync.WaitGroup
	for i, peer := range stale {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			traceID := telemetry.NewTraceID()
			span := telemetry.NewSpan(traceID, "", s.addr, "probe")
			span.Target, span.Peer = pingPath, peer
			start := time.Now()
			span.Start = s.now()
			attempts := 0
			var resp *httpx.Response
			err := s.res.Probe(s.probePolicy, peer, func() error {
				attempts++
				extra := make(httpx.Header)
				extra.Set(telemetry.TraceHeader, traceID)
				extra.Set(telemetry.ParentHeader, span.ID)
				s.piggybackTo(extra, peer, false)
				r, err := s.client.GetTimeout(peer, pingPath, extra, s.params.MaintenanceTimeout)
				if err != nil {
					return err
				}
				if r.Status != 200 {
					return fmt.Errorf("ping status %d", r.Status)
				}
				resp = r
				return nil
			})
			span.Attempts = attempts
			span.Duration = time.Since(start)
			if err != nil {
				span.Err = err.Error()
			} else {
				span.Status = resp.Status
			}
			s.tel.record(span)
			results[i] = probeResult{resp: resp, err: err}
		}(i, peer)
	}
	wg.Wait()
	for i, peer := range stale {
		pr := results[i]
		if pr.err != nil {
			s.peerMu.Lock()
			s.pingFail[peer]++
			failures := s.pingFail[peer]
			s.peerMu.Unlock()
			s.log.Printf("dcws %s: ping %s failed (%d): %v", s.Addr(), peer, failures, pr.err)
			if failures >= s.params.MaxPingFailures {
				s.declareDown(peer)
			}
			continue
		}
		s.recoverPeer(peer)
		s.absorb(pr.resp.Header)
	}
}

// declareDown marks a peer dead: its documents are recalled and its load
// table entry removed so it is never chosen as a migration target. The
// declaration time is recorded; only a load entry measured after it can
// re-admit the peer (see reconcileDownPeers).
func (s *Server) declareDown(peer string) {
	s.peerMu.Lock()
	if _, already := s.downAt[peer]; already {
		s.peerMu.Unlock()
		return
	}
	s.downAt[peer] = s.now()
	delete(s.pingFail, peer)
	s.peerMu.Unlock()
	s.tel.declaredDown.Inc()
	n := s.RecallFrom(peer)
	s.table.Remove(peer)
	// A dead peer must stop appearing as a hedge target: purge it from
	// every hosted document's sibling list so no fetch races toward it.
	if evicted := s.coops.evictSibling(peer); evicted > 0 {
		s.log.Printf("dcws %s: dropped %s from %d sibling lists", s.Addr(), peer, evicted)
	}
	s.log.Printf("dcws %s: declared %s down, recalled %d documents", s.Addr(), peer, n)
}

// antiEntropyLoop is the safety net under delta piggybacking: it
// exchanges complete load tables with the peer whose last full exchange
// is oldest, so entries lost to dropped responses, capped deltas, or peer
// restarts reconverge within one sweep of the cluster even if no delta
// ever carries them again. The cadence adapts: while the piggyback
// channel alone keeps every healthy peer's acked version current, each
// quiet round doubles the wait (capped at 4x AntiEntropyInterval) and the
// full exchange is skipped; any churn — a suspect or down peer, a
// peer-set change — snaps the interval back to the floor and forces the
// next round.
func (s *Server) antiEntropyLoop() {
	defer s.wg.Done()
	for {
		s.aeMu.Lock()
		wait := s.aeInterval
		s.aeMu.Unlock()
		select {
		case <-s.stopped:
			return
		case <-s.cfg.Clock.After(wait):
		}
		if s.aeSkip() {
			continue
		}
		s.runAntiEntropyTick()
	}
}

// aeSkip decides one adaptive-cadence round: it reports whether the
// full-table exchange can be skipped, and adjusts the interval for the
// next round (backing off while deltas suffice, resetting under churn).
func (s *Server) aeSkip() bool {
	base := s.params.AntiEntropyInterval
	var peers []string
	for _, p := range s.table.Servers() {
		if p != s.addr {
			peers = append(peers, p)
		}
	}
	churn := false
	for _, p := range peers {
		if s.peerSuspect(p) {
			churn = true
			break
		}
	}
	s.peerMu.Lock()
	if len(s.downAt) > 0 {
		churn = true
	}
	s.peerMu.Unlock()
	ver := s.table.Version()
	gossip := s.table.GossipPeers()

	s.aeMu.Lock()
	defer s.aeMu.Unlock()
	if !churn && !equalStrings(peers, s.aeLastPeers) {
		churn = true
	}
	prevVer := s.aeLastVer
	s.aeLastPeers = peers
	s.aeLastVer = ver
	if churn {
		s.aeInterval = base
		s.tel.aeForced.Inc()
		return false
	}
	// Quiet only counts when every peer acked everything that existed at
	// the LAST cadence decision: a version bumped mid-interval gets one
	// more interval to propagate through deltas before it forces a round.
	current := prevVer > 0 && len(peers) > 0
	for _, p := range peers {
		if gossip[p].Acked < prevVer {
			current = false
			break
		}
	}
	if current {
		s.aeInterval = min(s.aeInterval*2, 4*base)
		s.tel.aeSkipped.Inc()
		return true
	}
	s.aeInterval = base
	return false
}

// equalStrings reports whether two sorted string slices are equal.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runAntiEntropyTick performs one anti-entropy exchange. It first tries
// the push-pull digest protocol: the request carries per-shard version-
// vector digests of this table (no entries), the peer answers with only
// the stripes whose vectors differ, and a third leg pushes back any
// stripes where this side was the fresher one. Against a legacy peer —
// whose response carries no digests because its decoder skipped the !d
// key — the tick falls back to the paper-era full-table exchange, so
// mixed-version clusters still converge.
func (s *Server) runAntiEntropyTick() {
	peer := s.pickAntiEntropyPeer()
	if peer == "" {
		return
	}
	s.tel.antiEntropyRounds.Inc()
	done, legacy := s.runDigestExchange(peer)
	if done {
		return
	}
	if legacy {
		s.tel.digestFallbacks.Inc()
		s.runFullExchange(peer)
	}
}

// runDigestExchange runs the digest legs against one peer. done reports
// the exchange completed (or failed on transport — no point retrying with
// a heavier protocol); legacy reports the peer answered without digests,
// meaning it does not speak the protocol and a full exchange is needed.
func (s *Server) runDigestExchange(peer string) (done, legacy bool) {
	traceID := telemetry.NewTraceID()
	span := telemetry.NewSpan(traceID, "", s.addr, "anti-entropy-digest")
	span.Target, span.Peer = pingPath, peer
	start := time.Now()
	span.Start = s.now()
	extra := make(httpx.Header)
	extra.Set(telemetry.TraceHeader, traceID)
	extra.Set(telemetry.ParentHeader, span.ID)
	extra.Set(glt.HeaderName, s.table.EncodeDigestTo(peer))
	resp, err := s.client.GetTimeout(peer, pingPath, extra, s.params.MaintenanceTimeout)
	if err != nil {
		span.Duration = time.Since(start)
		span.Err = err.Error()
		s.tel.record(span)
		s.log.Printf("dcws %s: anti-entropy with %s: %v", s.Addr(), peer, err)
		return true, false
	}
	p := s.absorbPiggyback(resp.Header)
	if !p.HasDigests {
		// The peer merged our digest frame as a plain delta and answered
		// likewise: a pre-digest build.
		span.Duration = time.Since(start)
		span.Status = resp.Status
		s.tel.record(span)
		return false, true
	}
	s.tel.digestRounds.Inc()
	// Third leg: ship the stripes where our vector is still ahead of the
	// peer's (it told us its digests precisely so we can tell).
	if back := s.table.StillDiverged(p.Digests); len(back) > 0 {
		s.tel.digestPushbacks.Inc()
		s.tel.digestShardsSent.Add(int64(len(back)))
		push := make(httpx.Header)
		push.Set(telemetry.TraceHeader, traceID)
		push.Set(telemetry.ParentHeader, span.ID)
		push.Set(glt.HeaderName, s.table.EncodeShardEntriesTo(peer, back))
		if resp2, err := s.client.GetTimeout(peer, pingPath, push, s.params.MaintenanceTimeout); err == nil {
			s.absorb(resp2.Header)
		}
	}
	span.Duration = time.Since(start)
	span.Status = resp.Status
	s.tel.record(span)
	return true, false
}

// runFullExchange is the legacy anti-entropy round: a ping carrying the
// whole table and the !g marker, answered by the peer's whole table.
func (s *Server) runFullExchange(peer string) {
	traceID := telemetry.NewTraceID()
	span := telemetry.NewSpan(traceID, "", s.addr, "anti-entropy")
	span.Target, span.Peer = pingPath, peer
	start := time.Now()
	span.Start = s.now()
	extra := make(httpx.Header)
	extra.Set(telemetry.TraceHeader, traceID)
	extra.Set(telemetry.ParentHeader, span.ID)
	s.piggybackTo(extra, peer, true)
	resp, err := s.client.GetTimeout(peer, pingPath, extra, s.params.MaintenanceTimeout)
	span.Duration = time.Since(start)
	if err != nil {
		span.Err = err.Error()
		s.tel.record(span)
		s.log.Printf("dcws %s: anti-entropy with %s: %v", s.Addr(), peer, err)
		return
	}
	span.Status = resp.Status
	s.tel.record(span)
	s.absorb(resp.Header)
}

// pickAntiEntropyPeer selects the healthy peer whose last full exchange
// is oldest (never-exchanged peers first, then by address for
// determinism).
func (s *Server) pickAntiEntropyPeer() string {
	gossip := s.table.GossipPeers()
	var best string
	var bestAt time.Time
	for _, p := range s.table.Servers() {
		if p == s.addr || s.peerSuspect(p) {
			continue
		}
		at := gossip[p].LastFull
		if best == "" || at.Before(bestAt) {
			best, bestAt = p, at
		}
	}
	return best
}

// validatorLoop is the co-op consistency thread of §4.5: every T_val it
// re-requests each hosted document from its home server so content changes
// propagate within the validation interval.
func (s *Server) validatorLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case <-s.cfg.Clock.After(s.params.ValidateInterval):
		}
		s.runValidatorTick()
	}
}

// runValidatorTick revalidates every physically present co-op copy.
// With push invalidation active, copies whose lease is unexpired and
// whose home subscription channel is live are skipped: the home promises
// to push changes, so polling them is pure waste — the collapse this
// extension exists for. Copies without that cover (never leased, channel
// down, lease run out) fall back to the paper's conditional GET.
func (s *Server) runValidatorTick() {
	s.tel.validatorPasses.Inc()
	leases := s.params.LeaseDuration > 0
	now := s.now()
	for _, key := range s.coops.presentKeys() {
		if leases {
			if v, ok := s.coops.view(key); ok && v.leased && v.leaseUntil.After(now) &&
				s.subs.subscriptionLive(v.home.Addr()) {
				s.tel.invalLeaseSkips.Inc()
				continue
			}
		}
		s.tel.validatePolls.Inc()
		s.validateOne(key)
	}
}

// validateOne re-requests one hosted document conditionally. It returns
// the outcome — "current", "refreshed", "dropped", or "error" — so the
// lease paths (expiry re-validation, pushed invalidations) can branch on
// it; "" means the key is no longer hosted.
func (s *Server) validateOne(key string) string {
	v, ok := s.coops.view(key)
	if !ok {
		return ""
	}

	traceID := telemetry.NewTraceID()
	span := telemetry.NewSpan(traceID, "", s.addr, "validate")
	span.Target, span.Peer = v.name, v.home.Addr()
	start := time.Now()
	span.Start = s.now()
	extra := make(httpx.Header)
	extra.Set(headerFetch, s.Addr())
	extra.Set(headerValidate, strconv.FormatUint(v.hash, 16))
	extra.Set(telemetry.TraceHeader, traceID)
	extra.Set(telemetry.ParentHeader, span.ID)
	s.piggybackTo(extra, v.home.Addr(), false)
	s.attachHotReport(extra, v.home.Addr())
	resp, err := s.client.GetTimeout(v.home.Addr(), v.name, extra, s.params.MaintenanceTimeout)
	span.Duration = time.Since(start)
	if err != nil {
		span.Err = err.Error()
		s.tel.record(span)
		s.tel.validation("error")
		s.log.Printf("dcws %s: validate %s: %v", s.Addr(), v.name, err)
		return "error"
	}
	span.Status = resp.Status
	s.tel.record(span)
	s.absorb(resp.Header)
	// Validation responses carry the document's replica set too, keeping the
	// hedge-sibling list fresh between fetches.
	s.absorbReplicas(key, resp.Header)
	switch resp.Status {
	case 304:
		// Copy is current.
		s.renewAfterValidate(key)
		s.tel.validation("current")
		return "current"
	case 200:
		if err := s.cfg.Store.Put(key, resp.Body); err != nil {
			s.log.Printf("dcws %s: refresh %s: %v", s.Addr(), key, err)
			return "error"
		}
		var h uint64
		if val := resp.Header.Get(headerValidate); val != "" {
			h, _ = strconv.ParseUint(val, 16, 64)
		} else {
			h = contentHash(resp.Body)
		}
		s.coops.refresh(key, int64(len(resp.Body)), h, s.now())
		s.walCoopAdmit(key)
		s.enforceCoopBudget(key)
		s.renewAfterValidate(key)
		s.tel.validation("refreshed")
		return "refreshed"
	default:
		// Revoked or re-migrated behind our back: stop hosting.
		if s.coops.remove(key) {
			s.walAppend(recCoopForget, encodeNameRecord(key))
		}
		s.cfg.Store.Delete(key)
		s.tel.validation("dropped")
		return "dropped"
	}
}

// renewAfterValidate re-leases a copy the home just vouched for: a
// successful conditional GET proves the home reachable and the copy
// fresh, which is exactly what a pushed frame proves.
func (s *Server) renewAfterValidate(key string) {
	if s.params.LeaseDuration > 0 {
		s.coops.renewLease(key, s.now().Add(s.params.LeaseDuration))
	}
}

// rollCoopWindows resets the per-document hit counters of hosted co-op
// copies; the counters feed the hot-spot reports piggybacked to home
// servers.
func (s *Server) rollCoopWindows() {
	s.coops.rollWindows()
}

// attachHotReport piggybacks this coop's hottest hosted documents for the
// given home server onto an outgoing request (replication extension).
func (s *Server) attachHotReport(h httpx.Header, homeAddr string) {
	if parts := s.coops.hotReport(homeAddr); len(parts) > 0 {
		h.Set(headerHot, strings.Join(parts, ","))
	}
}

// absorbHot merges a piggybacked hot-document report into the home-side
// hint table consumed by maybeReplicate.
func (s *Server) absorbHot(h httpx.Header) {
	v := h.Get(headerHot)
	if v == "" {
		return
	}
	s.hotMu.Lock()
	defer s.hotMu.Unlock()
	for _, part := range strings.Split(v, ",") {
		eq := strings.LastIndexByte(part, '=')
		if eq <= 0 {
			continue
		}
		hits, err := strconv.ParseInt(part[eq+1:], 10, 64)
		if err != nil || hits < 0 {
			continue
		}
		doc := part[:eq]
		if hits > s.hotHints[doc] {
			s.hotHints[doc] = hits
		}
	}
}
