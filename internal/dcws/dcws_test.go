package dcws

import (
	"strings"
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/glt"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
)

// testWorld wires two or more servers on one in-memory fabric with a manual
// clock, so maintenance ticks can be driven deterministically.
type testWorld struct {
	fabric  *memnet.Fabric
	clock   *clock.Manual
	servers map[string]*Server
	client  *httpx.Client
	t       *testing.T
}

func newWorld(t *testing.T) *testWorld {
	t.Helper()
	return &testWorld{
		fabric:  memnet.NewFabric(),
		clock:   clock.NewManual(time.Unix(1_000_000, 0)),
		servers: make(map[string]*Server),
		t:       t,
	}
}

// addServer boots a server. docs maps document names to contents.
func (w *testWorld) addServer(host string, port int, docs map[string]string, entryPoints []string, params Params) *Server {
	w.t.Helper()
	st := store.NewMem()
	for name, body := range docs {
		if err := st.Put(name, []byte(body)); err != nil {
			w.t.Fatal(err)
		}
	}
	peers := make([]string, 0, len(w.servers))
	for addr := range w.servers {
		peers = append(peers, addr)
	}
	if params.RetryBaseDelay == 0 {
		// The world runs on a manual clock: a real backoff sleep would
		// block forever. Negative means "retry immediately".
		params.RetryBaseDelay = -1
	}
	addr := naming.Origin{Host: host, Port: port}.Addr()
	srv, err := New(Config{
		Origin:      naming.Origin{Host: host, Port: port},
		Store:       st,
		Network:     w.fabric.Named(addr),
		Clock:       w.clock,
		EntryPoints: entryPoints,
		Peers:       peers,
		Params:      params,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	// Tell existing servers about the newcomer.
	for _, s := range w.servers {
		s.LoadTable().Observe(glt.Entry{Server: srv.Addr(), Load: 0, Updated: time.Time{}})
	}
	if err := srv.Start(); err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { srv.Close() })
	w.servers[srv.Addr()] = srv
	w.client = httpx.NewClient(httpx.DialerFunc(w.fabric.Dial))
	return srv
}

func (w *testWorld) get(addr, path string) *httpx.Response {
	w.t.Helper()
	resp, err := w.client.Get(addr, path, nil)
	if err != nil {
		w.t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	return resp
}

// follow follows up to 5 redirects starting from addr+path.
func (w *testWorld) follow(addr, path string) *httpx.Response {
	w.t.Helper()
	for i := 0; i < 5; i++ {
		resp := w.get(addr, path)
		if resp.Status != 301 && resp.Status != 302 {
			return resp
		}
		loc := resp.Header.Get("Location")
		var err error
		addr, path, err = naming.SplitURL(loc)
		if err != nil {
			w.t.Fatalf("bad redirect Location %q: %v", loc, err)
		}
	}
	w.t.Fatal("redirect loop")
	return nil
}

// siteAB is a small two-page site: index links to page, page embeds image.
func siteAB() map[string]string {
	return map[string]string{
		"/index.html": `<html><title>home</title><a href="/page.html">page</a></html>`,
		"/page.html":  `<html><img src="/pic.gif"><a href="/index.html">back</a></html>`,
		"/pic.gif":    "GIF89a-fake-image-bytes",
	}
}

func TestServeLocalDocument(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	resp := w.get("home:80", "/index.html")
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if !strings.Contains(string(resp.Body), "page.html") {
		t.Fatalf("body = %q", resp.Body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html" {
		t.Fatalf("content type = %q", ct)
	}
	doc, err := home.Graph().Get("/index.html")
	if err != nil || doc.Hits != 1 {
		t.Fatalf("hit not recorded: %+v, %v", doc, err)
	}
}

func TestRootServesIndex(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	resp := w.get("home:80", "/")
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "page.html") {
		t.Fatalf("GET / = %d %q", resp.Status, resp.Body)
	}
}

func TestNotFound(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	if resp := w.get("home:80", "/ghost.html"); resp.Status != 404 {
		t.Fatalf("status = %d, want 404", resp.Status)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	req := httpx.NewRequest("POST", "/index.html")
	resp, err := w.client.Do("home:80", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 405 {
		t.Fatalf("status = %d, want 405", resp.Status)
	}
}

func TestHeadOmitsBody(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	req := httpx.NewRequest("HEAD", "/index.html")
	resp, err := w.client.Do("home:80", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || len(resp.Body) != 0 {
		t.Fatalf("HEAD = %d with %d body bytes", resp.Status, len(resp.Body))
	}
}

func TestPingEndpoint(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	resp := w.get("home:80", "/~dcws/ping")
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "pong") {
		t.Fatalf("ping = %d %q", resp.Status, resp.Body)
	}
	if resp.Header.Get(glt.HeaderName) == "" {
		t.Fatal("ping response carries no piggybacked load table")
	}
}

func TestStatusEndpoint(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	w.get("home:80", "/index.html")
	resp := w.get("home:80", "/~dcws/status")
	if resp.Status != 200 {
		t.Fatalf("status endpoint = %d", resp.Status)
	}
	body := string(resp.Body)
	if !strings.Contains(body, `"documents": 3`) || !strings.Contains(body, `"connections"`) {
		t.Fatalf("status body = %s", body)
	}
}

// migrateAndServe drives a full migration of /page.html from home to coop
// and returns both servers.
func migrateAndServe(t *testing.T, w *testWorld) (*Server, *Server) {
	t.Helper()
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	coop := w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	return home, coop
}

func TestMigratedDocRedirectsAtHome(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	resp := w.get("home:80", "/page.html")
	if resp.Status != 301 {
		t.Fatalf("status = %d, want 301", resp.Status)
	}
	want := "http://coop:81/~migrate/home/80/page.html"
	if loc := resp.Header.Get("Location"); loc != want {
		t.Fatalf("Location = %q, want %q", loc, want)
	}
	if home.Stats().Redirects.Value() != 1 {
		t.Fatal("redirect not counted")
	}
}

func TestLazyPhysicalMigration(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	// First request at the coop triggers the fetch from home.
	resp := w.get("coop:81", "/~migrate/home/80/page.html")
	if resp.Status != 200 {
		t.Fatalf("coop served %d: %s", resp.Status, resp.Body)
	}
	if !strings.Contains(string(resp.Body), "pic.gif") {
		t.Fatalf("body = %q", resp.Body)
	}
	if home.Stats().Fetches.Value() == 0 {
		t.Fatal("home did not serve an internal fetch")
	}
	if coop.CoopDocCount() != 1 {
		t.Fatalf("coop hosts %d docs, want 1", coop.CoopDocCount())
	}
	// Second request must be served from the coop's local copy (no new
	// fetch).
	fetchesBefore := home.Stats().Fetches.Value()
	if resp := w.get("coop:81", "/~migrate/home/80/page.html"); resp.Status != 200 {
		t.Fatalf("second coop request = %d", resp.Status)
	}
	if home.Stats().Fetches.Value() != fetchesBefore {
		t.Fatal("coop refetched a document it already had")
	}
}

func TestMigratedCopyLinksAreAbsolute(t *testing.T) {
	w := newWorld(t)
	migrateAndServe(t, w)
	resp := w.get("coop:81", "/~migrate/home/80/page.html")
	body := string(resp.Body)
	// The embedded image still lives at home; the shipped copy must point
	// there absolutely, not relatively (a relative link would 404 at the
	// coop).
	if !strings.Contains(body, `http://home:80/pic.gif`) {
		t.Fatalf("image link not absolutized: %s", body)
	}
	if !strings.Contains(body, `http://home:80/index.html`) {
		t.Fatalf("anchor link not absolutized: %s", body)
	}
}

func TestDirtyLinkRewriting(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	// /index.html links to the migrated /page.html, so it is dirty and must
	// be regenerated with the coop URL on next request.
	if !home.Graph().IsDirty("/index.html") {
		t.Fatal("index not dirtied by migration")
	}
	resp := w.get("home:80", "/index.html")
	if !strings.Contains(string(resp.Body), "http://coop:81/~migrate/home/80/page.html") {
		t.Fatalf("regenerated index lacks coop link: %s", resp.Body)
	}
	if home.Graph().IsDirty("/index.html") {
		t.Fatal("dirty bit not cleared after regeneration")
	}
	if home.Stats().Rebuilds.Value() != 1 {
		t.Fatalf("rebuilds = %d", home.Stats().Rebuilds.Value())
	}
	// The client can navigate the rewritten link end to end.
	final := w.follow("home:80", "/page.html")
	if final.Status != 200 || !strings.Contains(string(final.Body), "pic.gif") {
		t.Fatalf("navigation to migrated doc failed: %d", final.Status)
	}
}

func TestRevocationRestoresHome(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	// Materialize the copy at the coop and rewrite index.
	w.get("coop:81", "/~migrate/home/80/page.html")
	w.get("home:80", "/index.html")

	home.revoke("/page.html")

	// Home serves the document directly again.
	resp := w.get("home:80", "/page.html")
	if resp.Status != 200 {
		t.Fatalf("after revoke, home served %d", resp.Status)
	}
	// The coop dropped its copy.
	if coop.CoopDocCount() != 0 {
		t.Fatalf("coop still hosts %d docs", coop.CoopDocCount())
	}
	// Index is dirty again and regenerates pointing home.
	resp = w.get("home:80", "/index.html")
	if strings.Contains(string(resp.Body), "~migrate") {
		t.Fatalf("index still points at coop after revocation: %s", resp.Body)
	}
	if !strings.Contains(string(resp.Body), `"/page.html"`) {
		t.Fatalf("index does not point home: %s", resp.Body)
	}
	// A stale coop URL still resolves for clients via relayed redirect.
	final := w.follow("coop:81", "/~migrate/home/80/page.html")
	if final.Status != 200 || !strings.Contains(string(final.Body), "pic.gif") {
		t.Fatalf("stale coop URL broke: %d %q", final.Status, final.Body)
	}
}

func TestValidationPropagatesContentChange(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")

	// Author edits the page at home.
	if err := home.UpdateDocument("/page.html", []byte(`<html>v2 content</html>`)); err != nil {
		t.Fatal(err)
	}
	// Before validation the coop still serves the stale copy.
	resp := w.get("coop:81", "/~migrate/home/80/page.html")
	if strings.Contains(string(resp.Body), "v2 content") {
		t.Fatal("coop served new content before validation — test premise broken")
	}
	coop.runValidatorTick()
	resp = w.get("coop:81", "/~migrate/home/80/page.html")
	if !strings.Contains(string(resp.Body), "v2 content") {
		t.Fatalf("coop copy not refreshed: %s", resp.Body)
	}
}

func TestValidationUnchangedGets304(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")
	fetchesBefore := home.Stats().Fetches.Value()
	coop.runValidatorTick()
	// Validation of an unchanged document is a 304: no full fetch counted.
	if home.Stats().Fetches.Value() != fetchesBefore {
		t.Fatal("validation of unchanged doc transferred content")
	}
}

func TestPiggybackPropagatesLoadTable(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html") // coop <-> home traffic
	if _, ok := home.LoadTable().Get("coop:81"); !ok {
		t.Fatal("home never learned coop's load entry")
	}
	if _, ok := coop.LoadTable().Get("home:80"); !ok {
		t.Fatal("coop never learned home's load entry")
	}
}

func TestAutomaticMigrationUnderImbalance(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{MigrationThreshold: 1})
	w.addServer("coop", 81, nil, nil, Params{})
	// Generate load at home.
	for i := 0; i < 30; i++ {
		w.get("home:80", "/page.html")
	}
	home.runStatsTick()
	if home.Migrations().Len() != 1 {
		t.Fatalf("migrations = %d, want 1", home.Migrations().Len())
	}
	mig, ok := home.Migrations().Get("/page.html")
	if !ok || mig.Coop != "coop:81" {
		t.Fatalf("migrated doc = %+v, %v; want /page.html -> coop:81", mig, ok)
	}
	// The entry point stayed put.
	if loc, _ := home.Graph().Location("/index.html"); loc != "" {
		t.Fatal("entry point migrated")
	}
}

func TestNoMigrationWithoutLoad(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	home.runStatsTick()
	if home.Migrations().Len() != 0 {
		t.Fatal("migrated with zero load")
	}
}

func TestMigrationRateLimitedPerStatsTick(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, map[string]string{
		"/index.html": `<a href="/a.html">a</a><a href="/b.html">b</a>`,
		"/a.html":     "<html>a</html>",
		"/b.html":     "<html>b</html>",
	}, []string{"/index.html"}, Params{MigrationThreshold: 1})
	w.addServer("c1", 81, nil, nil, Params{})
	w.addServer("c2", 82, nil, nil, Params{})
	for i := 0; i < 20; i++ {
		w.get("home:80", "/a.html")
		w.get("home:80", "/b.html")
	}
	home.runStatsTick() // only one migration allowed per tick
	if n := home.Migrations().Len(); n != 1 {
		t.Fatalf("migrations after one tick = %d, want 1", n)
	}
	// Next tick (after the home interval) migrates the second document to a
	// different coop (the first one is still inside T_coop).
	w.clock.Advance(10 * time.Second)
	for i := 0; i < 20; i++ {
		w.get("home:80", "/a.html")
		w.get("home:80", "/b.html")
	}
	home.runStatsTick()
	if n := home.Migrations().Len(); n != 2 {
		t.Fatalf("migrations after two ticks = %d, want 2", n)
	}
	snap := home.Migrations().Snapshot()
	if snap[0].Coop == snap[1].Coop {
		t.Fatalf("both docs migrated to %s within T_coop", snap[0].Coop)
	}
}

func TestPingerDeclaresDeadCoopDown(t *testing.T) {
	w := newWorld(t)
	home, coop := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")
	// Kill the coop.
	coop.Close()
	delete(w.servers, "coop:81")

	// Make the coop's entry stale, then fail pings repeatedly.
	w.clock.Advance(time.Hour)
	for i := 0; i < home.params.MaxPingFailures; i++ {
		home.runPingerTick()
	}
	// The document was recalled home.
	if loc, _ := home.Graph().Location("/page.html"); loc != "" {
		t.Fatalf("document still assigned to dead coop: %q", loc)
	}
	if _, ok := home.LoadTable().Get("coop:81"); ok {
		t.Fatal("dead coop still in load table")
	}
	resp := w.get("home:80", "/page.html")
	if resp.Status != 200 {
		t.Fatalf("home does not serve recalled doc: %d", resp.Status)
	}
}

func TestReplicationAddsSecondHost(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"},
		Params{Replicate: true, ReplicateThreshold: 5, MigrationThreshold: 1})
	w.addServer("c1", 81, nil, nil, Params{})
	w.addServer("c2", 82, nil, nil, Params{})
	home.migrate("/pic.gif", "c1:81")
	// Hammer the replica at c1, then let validation report the heat.
	for i := 0; i < 50; i++ {
		w.get("c1:81", "/~migrate/home/80/pic.gif")
	}
	srvC1 := w.servers["c1:81"]
	srvC1.runValidatorTick() // piggybacks the hot report to home
	home.runStatsTick()
	reps := home.Replicas("/pic.gif")
	if len(reps) != 2 {
		t.Fatalf("replicas = %v, want 2 hosts", reps)
	}
	// Redirects from home now rotate across both hosts.
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		resp := w.get("home:80", "/pic.gif")
		if resp.Status != 301 {
			t.Fatalf("status = %d", resp.Status)
		}
		addr, _, err := naming.SplitURL(resp.Header.Get("Location"))
		if err != nil {
			t.Fatal(err)
		}
		seen[addr] = true
	}
	if len(seen) != 2 {
		t.Fatalf("redirects did not rotate: %v", seen)
	}
	// Both hosts can serve the document.
	for addr := range seen {
		final := w.follow(addr, "/~migrate/home/80/pic.gif")
		if final.Status != 200 {
			t.Fatalf("replica at %s served %d", addr, final.Status)
		}
	}
}

func TestQueueDropCounted(t *testing.T) {
	w := newWorld(t)
	srv := w.addServer("home", 80, siteAB(), nil, Params{Workers: 1, QueueLength: 1})
	_ = srv
	// Not deterministic to force drops through the public interface with a
	// single worker quickly; just assert the counter starts at zero and the
	// path exists.
	if srv.Dropped() != 0 {
		t.Fatal("fresh server reports drops")
	}
}

func TestUpdateDocumentReparsesLinks(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil, Params{})
	if err := home.UpdateDocument("/index.html", []byte(`<a href="/pic.gif">only pic now</a>`)); err != nil {
		t.Fatal(err)
	}
	doc, err := home.Graph().Get("/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.LinkTo) != 1 || doc.LinkTo[0] != "/pic.gif" {
		t.Fatalf("LinkTo after update = %v", doc.LinkTo)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with empty config succeeded")
	}
	st := store.NewMem()
	fabric := memnet.NewFabric()
	if _, err := New(Config{Store: st, Network: fabric}); err == nil {
		t.Fatal("New without origin succeeded")
	}
	if _, err := New(Config{
		Store:       st,
		Network:     fabric,
		Origin:      naming.Origin{Host: "h", Port: 80},
		EntryPoints: []string{"/nope.html"},
	}); err == nil {
		t.Fatal("New with missing entry point succeeded")
	}
}

func TestStaleCoopURLForUnmigratedDoc(t *testing.T) {
	// A search engine indexed a ~migrate URL, then the doc was revoked. The
	// coop fetches, home answers 301, coop relays it.
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	final := w.follow("coop:81", "/~migrate/home/80/page.html")
	if final.Status != 200 || !strings.Contains(string(final.Body), "pic.gif") {
		t.Fatalf("stale URL resolution failed: %d %q", final.Status, final.Body)
	}
}

func TestCoopSelfMigrateURLRedirectsToCanonical(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	resp := w.get("home:80", "/~migrate/home/80/page.html")
	if resp.Status != 301 {
		t.Fatalf("status = %d", resp.Status)
	}
	if loc := resp.Header.Get("Location"); loc != "http://home:80/page.html" {
		t.Fatalf("Location = %q", loc)
	}
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.Workers != 12 {
		t.Errorf("Workers = %d, want 12", p.Workers)
	}
	if p.QueueLength != 100 {
		t.Errorf("QueueLength = %d, want 100", p.QueueLength)
	}
	if p.StatsInterval != 10*time.Second {
		t.Errorf("StatsInterval = %v, want 10s", p.StatsInterval)
	}
	if p.PingerInterval != 20*time.Second {
		t.Errorf("PingerInterval = %v, want 20s", p.PingerInterval)
	}
	if p.ValidateInterval != 120*time.Second {
		t.Errorf("ValidateInterval = %v, want 120s", p.ValidateInterval)
	}
	if p.HomeReMigrateInterval != 300*time.Second {
		t.Errorf("HomeReMigrateInterval = %v, want 300s", p.HomeReMigrateInterval)
	}
	if p.CoopMigrateInterval != 60*time.Second {
		t.Errorf("CoopMigrateInterval = %v, want 60s", p.CoopMigrateInterval)
	}
}

func TestExpiredMigrationRevokedWhenCoopOverloaded(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	w.get("coop:81", "/~migrate/home/80/page.html")
	// Age the migration beyond T_home and make the coop look overloaded.
	w.clock.Advance(301 * time.Second)
	home.LoadTable().Observe(glt.Entry{Server: "coop:81", Load: 1000, Updated: w.clock.Now()})
	home.runStatsTick()
	if loc, _ := home.Graph().Location("/page.html"); loc != "" {
		t.Fatalf("overloaded-coop migration not revoked: %q", loc)
	}
}

func TestRegenerationAfterRevokeRestoresOriginalForm(t *testing.T) {
	// Full cycle: migrate, regenerate index (coop URL), revoke, regenerate
	// again — the link must resolve back to the plain rooted form even
	// though the stored source now contains an absolute ~migrate URL.
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	w.get("home:80", "/index.html") // regenerate with coop URL
	home.revoke("/page.html")
	resp := w.get("home:80", "/index.html")
	body := string(resp.Body)
	if strings.Contains(body, "~migrate") {
		t.Fatalf("link not restored: %s", body)
	}
	// Graph link structure survived the round trip.
	doc, _ := home.Graph().Get("/index.html")
	if len(doc.LinkTo) != 1 || doc.LinkTo[0] != "/page.html" {
		t.Fatalf("LinkTo after cycle = %v", doc.LinkTo)
	}
}

func TestResolveDocRefForms(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil, Params{})
	if home.Origin().Addr() != "home:80" {
		t.Fatalf("Origin = %v", home.Origin())
	}
	cases := []struct{ base, raw, want string }{
		{"/index.html", "/page.html", "/page.html"},
		{"/index.html", "page.html", "/page.html"},
		{"/a/b.html", "c.html", "/a/c.html"},
		{"/index.html", "http://home:80/page.html", "/page.html"},
		{"/index.html", "http://other:80/page.html", ""},
		{"/index.html", "http://coop:81/~migrate/home/80/page.html", "/page.html"},
		{"/index.html", "http://coop:81/~migrate/other/80/page.html", ""},
		{"/index.html", "http://coop:81/~migrate/garbage", ""},
		{"/index.html", "mailto:a@b", ""},
		{"/index.html", "#frag", ""},
		{"/index.html", "ftp://x/y", ""},
	}
	for _, c := range cases {
		if got := home.resolveDocRef(c.base, c.raw); got != c.want {
			t.Errorf("resolveDocRef(%q, %q) = %q, want %q", c.base, c.raw, got, c.want)
		}
	}
}

func TestAddReplicaLimits(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"},
		Params{Replicate: true, MaxReplicas: 2})
	w.addServer("c1", 81, nil, nil, Params{})
	w.addServer("c2", 82, nil, nil, Params{})
	// Not migrated: addReplica is a no-op.
	home.addReplica("/pic.gif")
	if len(home.Replicas("/pic.gif")) != 0 {
		t.Fatal("replica added for an unmigrated doc")
	}
	home.migrate("/pic.gif", "c1:81")
	home.addReplica("/pic.gif")
	if got := home.Replicas("/pic.gif"); len(got) != 2 {
		t.Fatalf("replicas = %v", got)
	}
	// MaxReplicas = 2: a third replica is refused.
	home.addReplica("/pic.gif")
	if got := home.Replicas("/pic.gif"); len(got) != 2 {
		t.Fatalf("MaxReplicas not enforced: %v", got)
	}
}

func TestUpdateDocumentRejectsBadName(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil, Params{})
	if err := home.UpdateDocument("/../evil.html", []byte("x")); err == nil {
		t.Fatal("escaping name accepted")
	}
}

func TestPathTraversalRejectedOverHTTP(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), nil, Params{})
	resp := w.get("home:80", "/../../etc/passwd")
	if resp.Status != 400 && resp.Status != 404 {
		t.Fatalf("traversal request answered %d", resp.Status)
	}
	if strings.Contains(string(resp.Body), "root:") {
		t.Fatal("traversal leaked file contents")
	}
}

// TestRelativeLinksRewrittenOnMigration guards the relative-link path end
// to end: a site written with relative hrefs must still get its links
// rewritten when the target migrates.
func TestRelativeLinksRewrittenOnMigration(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, map[string]string{
		"/guide/index.html": `<html><a href="page.html">page</a></html>`,
		"/guide/page.html":  `<html>content</html>`,
	}, []string{"/guide/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	// The relative link produced a graph edge at build time.
	doc, err := home.Graph().Get("/guide/index.html")
	if err != nil || len(doc.LinkTo) != 1 || doc.LinkTo[0] != "/guide/page.html" {
		t.Fatalf("relative link not in graph: %+v, %v", doc, err)
	}
	home.migrate("/guide/page.html", "coop:81")
	resp := w.get("home:80", "/guide/index.html")
	if !strings.Contains(string(resp.Body), "http://coop:81/~migrate/home/80/guide/page.html") {
		t.Fatalf("relative link not rewritten: %s", resp.Body)
	}
	// End-to-end navigation still works.
	final := w.follow("coop:81", "/~migrate/home/80/guide/page.html")
	if final.Status != 200 || !strings.Contains(string(final.Body), "content") {
		t.Fatalf("migrated relative-linked doc unreachable: %d", final.Status)
	}
}
