package dcws

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/naming"
	"dcws/internal/store"
	"dcws/internal/telemetry"
)

// Proactive hot-document replication with CDTP-style chain dissemination.
//
// The paper's lazy migration copies a document only after a co-op takes a
// request for it, so under a flash crowd the home server still uploads the
// bytes once per co-op and its egress link becomes the bottleneck. Here
// the home notices a hot document itself — an EWMA of the per-document
// serve rate crossing Params.HotReplicateRate — picks the k least-loaded
// healthy peers from the global load table, orders them into a chain, and
// uploads the rendered bytes ONCE to the chain head; each link stores its
// copy and relays the remainder of the chain to its successor, so home
// egress is ~one upload per hot document regardless of k.

// sizeWeight scales a document's serve rate by its rendered size before
// the EWMA, so a large document at a modest hit rate still replicates —
// its egress dominates the home's uplink long before its request count
// looks hot. The weight is linear in size above a 64 KiB pivot, capped at
// 2 so size nudges the trigger rather than dominating it — a huge
// lukewarm file must still earn half the hit-rate threshold. Below the
// pivot the weight stays 1: small documents are cheap to replicate and
// their pressure is per-connection overhead, not bytes, so down-weighting
// them would only delay relief the raw hit rate already justifies.
func sizeWeight(size int64) float64 {
	w := float64(size) / float64(64<<10)
	if w <= 1 {
		return 1
	}
	if w > 2 {
		return 2
	}
	return w
}

// takeHotHints drains the coop-reported hot-document hint table.
func (s *Server) takeHotHints() map[string]int64 {
	s.hotMu.Lock()
	hints := s.hotHints
	s.hotHints = make(map[string]int64)
	s.hotMu.Unlock()
	return hints
}

// maybeChainReplicate folds this window's hit counts — home serves from
// the LDG plus coop-reported hits — into the per-document serve-rate
// EWMAs, and chain-replicates every non-entry-point document whose rate
// crosses the trigger, hottest first. It returns the set of documents it
// handled, so the legacy one-replica-per-tick path skips them.
func (s *Server) maybeChainReplicate(hints map[string]int64) map[string]bool {
	rate := s.params.HotReplicateRate
	if rate <= 0 {
		return nil
	}
	interval := s.params.StatsInterval.Seconds()
	if interval <= 0 {
		interval = 1
	}
	type cand struct {
		doc  string
		ewma float64
	}
	var hot []cand
	docs := s.ldg.Snapshot()
	s.hotMu.Lock()
	seen := make(map[string]bool, len(docs))
	for _, d := range docs {
		seen[d.Name] = true
		r := float64(d.WindowHits+hints[d.Name]) / interval
		r *= sizeWeight(d.Size)
		ew := 0.5*s.hotRate[d.Name] + 0.5*r
		if ew < 0.01 {
			delete(s.hotRate, d.Name)
		} else {
			s.hotRate[d.Name] = ew
		}
		if ew >= rate && !d.EntryPoint {
			hot = append(hot, cand{d.Name, ew})
		}
	}
	for doc := range s.hotRate {
		if !seen[doc] {
			delete(s.hotRate, doc) // document left the graph
		}
	}
	s.hotMu.Unlock()
	if len(hot) == 0 {
		return nil
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].ewma != hot[j].ewma {
			return hot[i].ewma > hot[j].ewma
		}
		return hot[i].doc < hot[j].doc
	})
	handled := make(map[string]bool, len(hot))
	for _, c := range hot {
		s.tel.replicateHotTriggers.Inc()
		if s.chainReplicate(c.doc) {
			handled[c.doc] = true
		}
	}
	return handled
}

// chainReplicate pushes one hot document to enough new co-op servers to
// reach HotReplicaCount replicas, over a single chain upload. It reports
// whether at least one new replica was installed.
func (s *Server) chainReplicate(doc string) bool {
	loc, known := s.ldg.Location(doc)
	if !known {
		return false
	}
	s.repMu.RLock()
	existing := append([]string(nil), s.replicas[doc]...)
	s.repMu.RUnlock()
	if len(existing) == 0 && loc != "" {
		existing = []string{loc}
	}
	want := s.params.HotReplicaCount - len(existing)
	if want <= 0 {
		return false
	}
	exclude := map[string]bool{s.addr: true}
	for _, r := range existing {
		exclude[r] = true
	}
	// Walk every eligible entry in placement order — most headroom first,
	// zone-local before remote — then apply the same suspect/staleness
	// rules as migration, so a wobbling peer or a ghost load entry never
	// joins the chain.
	var chain []string
	for _, e := range s.table.RankedByHeadroom(exclude, s.params.Zone) {
		if len(chain) >= want {
			break
		}
		if s.peerSuspect(e.Server) || s.entryStale(e) {
			continue
		}
		chain = append(chain, e.Server)
	}
	if len(chain) == 0 {
		return false
	}
	payload, err := s.prepareForMigration(doc)
	if err != nil {
		s.log.Printf("dcws %s: chain replicate %s: render: %v", s.Addr(), doc, err)
		return false
	}
	key, err := naming.Encode(s.cfg.Origin, doc)
	if err != nil {
		return false
	}
	intended := append(append(make([]string, 0, len(existing)+len(chain)), existing...), chain...)
	acked := s.pushChain(key, doc, payload, contentHash(payload), chain, intended)
	if len(acked) == 0 {
		return false
	}
	// Install the replica set from the acks only: a chain member that was
	// skipped (link failure) holds no copy and must not receive 301s.
	newReps := append(append(make([]string, 0, len(existing)+len(acked)), existing...), acked...)
	now := s.now()
	wasHome := loc == ""
	var dirtied []string
	if wasHome {
		if dirtied, err = s.ldg.MarkMigrated(doc, newReps[0]); err != nil {
			s.log.Printf("dcws %s: chain replicate %s: %v", s.Addr(), doc, err)
			return false
		}
		s.ledger.Record(doc, newReps[0], now)
	} else if dirtied, err = s.ldg.MarkMigrated(doc, loc); err != nil {
		// Re-dirty the LinkFrom set so regenerated links rotate across the
		// enlarged replica set.
		s.log.Printf("dcws %s: chain replicate %s: %v", s.Addr(), doc, err)
		return false
	}
	s.repMu.Lock()
	s.replicas[doc] = newReps
	if s.rrCounter[doc] == nil {
		s.rrCounter[doc] = new(uint32)
	}
	s.repMu.Unlock()
	s.rcache.invalidate(doc)
	if wasHome {
		s.walAppend(recMigrate, encodeMigrate(doc, newReps[0], now))
		s.tel.migrations.Inc()
	}
	s.walAppend(recReplicas, encodeReplicas(doc, newReps))
	s.pushDirtied(dirtied)
	s.tel.replications.Add(int64(len(acked)))
	s.log.Printf("dcws %s: chain-replicated %s -> %v (%d of %d links acked, %d bytes uploaded once)",
		s.Addr(), doc, acked, len(acked), len(chain), len(payload))
	return true
}

// pushChain uploads the rendered document once, to the first reachable
// chain member; that member stores its copy and relays the remaining
// chain to its successor. Unreachable heads are skipped (the next member
// is promoted), so one dead peer costs a retry, not the round. It returns
// the addresses that acked storing a copy, in chain order.
func (s *Server) pushChain(key, doc string, payload []byte, h uint64, chain, intended []string) []string {
	traceID := telemetry.NewTraceID()
	for i, head := range chain {
		span := telemetry.NewSpan(traceID, "", s.addr, "replicate-push")
		span.Target, span.Peer = doc, head
		start := time.Now()
		span.Start = s.now()
		extra := make(httpx.Header)
		extra.Set(headerRevokeDoc, key)
		if i+1 < len(chain) {
			extra.Set(headerChain, strings.Join(chain[i+1:], ","))
		}
		extra.Set(headerValidate, strconv.FormatUint(h, 16))
		extra.Set(headerReplicas, strings.Join(intended, ","))
		extra.Set(telemetry.TraceHeader, traceID)
		extra.Set(telemetry.ParentHeader, span.ID)
		s.piggybackTo(extra, head, false)
		resp, err := s.client.PostTimeout(head, replicatePath, extra, payload, s.params.ReplicateTimeout)
		span.Duration = time.Since(start)
		if err != nil || resp.Status != 200 {
			if err != nil {
				span.Err = err.Error()
			} else {
				span.Status = resp.Status
			}
			s.tel.record(span)
			s.tel.replicateChainSkips.Inc()
			s.log.Printf("dcws %s: chain push %s to %s failed, promoting next link", s.Addr(), doc, head)
			continue
		}
		span.Status = resp.Status
		s.tel.record(span)
		s.absorb(resp.Header)
		s.tel.replicatePushes.Inc()
		s.tel.replicatePushBytes.Add(int64(len(payload)))
		return splitAddrs(resp.Header.Get(headerAcked))
	}
	return nil
}

// handleReplicate is the co-op side of a chain push: store the copy as if
// it had been lazily fetched, relay the remaining chain to the first
// reachable successor, and answer with the aggregated ack list (self plus
// everything downstream).
func (s *Server) handleReplicate(req *httpx.Request) *httpx.Response {
	if req.Method != "POST" {
		return status(405, "replicate requires POST")
	}
	key := req.Header.Get(headerRevokeDoc)
	if key == "" || !naming.IsMigrated(key) {
		return status(400, "missing or invalid "+headerRevokeDoc+" header")
	}
	cleaned, err := store.CleanName(key)
	if err != nil {
		return status(400, err.Error())
	}
	home, docName, err := naming.Decode(cleaned)
	if err != nil {
		return status(400, err.Error())
	}
	if home == s.cfg.Origin {
		return status(400, "cannot host a replica of my own document")
	}
	if len(req.Body) == 0 {
		return status(400, "empty replicate body")
	}
	hashHex := req.Header.Get(headerValidate)
	var h uint64
	if hashHex != "" {
		h, _ = strconv.ParseUint(hashHex, 16, 64)
	}
	if h == 0 {
		h = contentHash(req.Body)
	}
	if err := s.cfg.Store.Put(cleaned, req.Body); err != nil {
		return status(500, err.Error())
	}
	now := s.now()
	s.coops.touch(cleaned, home, docName, now)
	s.coops.markFetched(cleaned, int64(len(req.Body)), h, now)
	s.absorbReplicas(cleaned, req.Header)
	s.walCoopAdmit(cleaned)
	s.enforceCoopBudget(cleaned)
	if s.params.LeaseDuration > 0 {
		s.coops.renewLease(cleaned, now.Add(s.params.LeaseDuration))
		s.subs.ensureSubscribed(home.Addr())
	}
	s.tel.replicateStored.Inc()

	acked := []string{s.addr}
	if rest := splitAddrs(req.Header.Get(headerChain)); len(rest) > 0 {
		down := s.relayChain(cleaned, docName, req.Body, hashHex,
			req.Header.Get(headerReplicas), rest,
			req.Header.Get(telemetry.TraceHeader), req.Header.Get(telemetry.ParentHeader))
		acked = append(acked, down...)
	}
	resp := status(200, "replicated")
	resp.Header.Set(headerAcked, strings.Join(acked, ","))
	return resp
}

// relayChain forwards a chain push to the first reachable successor,
// CDTP-style: this link has stored its copy and now pays one upload so
// the home does not have to. Failed successors are skipped — they end up
// outside the acked set and the home leaves them out of the replica set.
func (s *Server) relayChain(key, doc string, payload []byte, hashHex, replicas string, chain []string, traceID, parent string) []string {
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	for i, next := range chain {
		span := telemetry.NewSpan(traceID, parent, s.addr, "replicate-relay")
		span.Target, span.Peer = doc, next
		start := time.Now()
		span.Start = s.now()
		extra := make(httpx.Header)
		extra.Set(headerRevokeDoc, key)
		if i+1 < len(chain) {
			extra.Set(headerChain, strings.Join(chain[i+1:], ","))
		}
		if hashHex != "" {
			extra.Set(headerValidate, hashHex)
		}
		if replicas != "" {
			extra.Set(headerReplicas, replicas)
		}
		extra.Set(telemetry.TraceHeader, traceID)
		extra.Set(telemetry.ParentHeader, span.ID)
		s.piggybackTo(extra, next, false)
		resp, err := s.client.PostTimeout(next, replicatePath, extra, payload, s.params.ReplicateTimeout)
		span.Duration = time.Since(start)
		if err != nil || resp.Status != 200 {
			if err != nil {
				span.Err = err.Error()
			} else {
				span.Status = resp.Status
			}
			s.tel.record(span)
			s.tel.replicateChainSkips.Inc()
			s.log.Printf("dcws %s: chain relay %s to %s failed, promoting next link", s.Addr(), doc, next)
			continue
		}
		span.Status = resp.Status
		s.tel.record(span)
		s.absorb(resp.Header)
		s.tel.replicateRelays.Inc()
		return splitAddrs(resp.Header.Get(headerAcked))
	}
	return nil
}

// sendChainRevoke asks the chain head to revoke doc and relay the
// revocation down the remaining hosts, answering with the aggregated ack
// list. It returns the hosts that confirmed; nil means the head itself
// was unreachable and the caller falls back to per-peer revokes.
func (s *Server) sendChainRevoke(hosts []string, doc string) []string {
	key, err := naming.Encode(s.cfg.Origin, doc)
	if err != nil {
		return nil
	}
	head := hosts[0]
	span := telemetry.NewSpan(telemetry.NewTraceID(), "", s.addr, "revoke-chain")
	span.Target, span.Peer = doc, head
	start := time.Now()
	span.Start = s.now()
	req := httpx.NewRequest("POST", revokePath)
	req.Header.Set(headerRevokeDoc, key)
	req.Header.Set(headerChain, strings.Join(hosts[1:], ","))
	req.Header.Set(telemetry.TraceHeader, span.TraceID)
	req.Header.Set(telemetry.ParentHeader, span.ID)
	s.piggybackTo(req.Header, head, false)
	resp, err := s.client.DoTimeout(head, req, s.params.MaintenanceTimeout)
	span.Duration = time.Since(start)
	if err != nil {
		span.Err = err.Error()
		s.tel.record(span)
		s.log.Printf("dcws %s: chain revoke %s at %s: %v", s.Addr(), doc, head, err)
		return nil
	}
	span.Status = resp.Status
	s.tel.record(span)
	s.absorb(resp.Header)
	if resp.Status != 200 {
		return nil
	}
	return splitAddrs(resp.Header.Get(headerAcked))
}

// relayRevoke forwards a chain revocation to the first reachable
// successor and returns the downstream ack list. Unreachable links are
// skipped; the home covers them with per-peer fallback revokes.
func (s *Server) relayRevoke(key string, chain []string, traceID, parent string) []string {
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	for i, next := range chain {
		span := telemetry.NewSpan(traceID, parent, s.addr, "revoke-relay")
		span.Target, span.Peer = key, next
		start := time.Now()
		span.Start = s.now()
		req := httpx.NewRequest("POST", revokePath)
		req.Header.Set(headerRevokeDoc, key)
		if i+1 < len(chain) {
			req.Header.Set(headerChain, strings.Join(chain[i+1:], ","))
		}
		req.Header.Set(telemetry.TraceHeader, traceID)
		req.Header.Set(telemetry.ParentHeader, span.ID)
		s.piggybackTo(req.Header, next, false)
		resp, err := s.client.DoTimeout(next, req, s.params.MaintenanceTimeout)
		span.Duration = time.Since(start)
		if err != nil || resp.Status != 200 {
			if err != nil {
				span.Err = err.Error()
			} else {
				span.Status = resp.Status
			}
			s.tel.record(span)
			s.tel.replicateChainSkips.Inc()
			continue
		}
		span.Status = resp.Status
		s.tel.record(span)
		s.absorb(resp.Header)
		return splitAddrs(resp.Header.Get(headerAcked))
	}
	return nil
}

// splitAddrs parses a comma-separated address list header value.
func splitAddrs(v string) []string {
	if v == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// HotRate reports a document's current serve-rate EWMA (tests, status).
func (s *Server) HotRate(doc string) float64 {
	s.hotMu.Lock()
	defer s.hotMu.Unlock()
	return s.hotRate[doc]
}
