package dcws

import (
	"strings"
	"testing"

	"dcws/internal/clock"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
)

// This file holds the serve-path micro-benchmarks as exported functions so
// both `go test -bench` (via thin wrappers in perf_bench_test.go) and the
// cmd/dcwsperf harness (which emits BENCH_serve.json) can run them. They
// exercise the request matrix at the handler level — no sockets — so the
// numbers isolate the serving engine: document lookup, regeneration and
// its cache, lock acquisition, and response assembly.

// perfDoc synthesizes an HTML document of roughly size bytes carrying the
// given hyperlinks.
func perfDoc(links []string, size int) []byte {
	var b strings.Builder
	b.WriteString("<html><head><title>bench</title></head><body>\n")
	for _, l := range links {
		b.WriteString(`<a href="` + l + `">link</a>` + "\n")
	}
	filler := "<p>the quick brown fox jumps over the lazy dog</p>\n"
	for b.Len() < size {
		b.WriteString(filler)
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// perfServer builds a started-but-not-listening server over a private
// in-memory fabric; benchmarks drive s.handle directly.
func perfServer(tb testing.TB, st store.Store, origin naming.Origin) *Server {
	tb.Helper()
	s, err := New(Config{
		Origin:  origin,
		Store:   st,
		Network: memnet.NewFabric(),
		Clock:   clock.Real{},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchServeHome measures the steady-state home-document GET: a clean
// (non-dirty) ~100 KB HTML page served over and over. This is the paper's
// dominant request class; before the serving-engine work every iteration
// paid a full defensive byte-copy of the document.
func BenchServeHome(b *testing.B) {
	st := store.NewMem()
	st.Put("/index.html", perfDoc([]string{"/big.html", "/a.html"}, 2<<10))
	st.Put("/a.html", perfDoc(nil, 4<<10))
	st.Put("/big.html", perfDoc([]string{"/a.html", "/index.html"}, 100<<10))
	s := perfServer(b, st, naming.Origin{Host: "bench-home", Port: 80})
	req := httpx.NewRequest("GET", "/big.html")
	// Warm once so first-touch work (dirty check, cache fill) is excluded.
	if resp := s.handle(req); resp.Status != 200 {
		b.Fatalf("warmup status %d", resp.Status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := s.handle(req)
		if resp.Status != 200 {
			b.Fatalf("status %d", resp.Status)
		}
	}
}

// BenchServeCoop measures serving a physically present co-op copy — the
// /~migrate path. Before the lock rework this took the global server mutex
// three times per request.
func BenchServeCoop(b *testing.B) {
	home := naming.Origin{Host: "bench-peer", Port: 80}
	key, err := naming.Encode(home, "/hosted.html")
	if err != nil {
		b.Fatal(err)
	}
	st := store.NewMem()
	st.Put("/index.html", perfDoc(nil, 2<<10))
	data := perfDoc(nil, 100<<10)
	st.Put(key, data)
	s := perfServer(b, st, naming.Origin{Host: "bench-coop", Port: 80})
	s.seedCoopDoc(key, home, "/hosted.html", int64(len(data)))
	req := httpx.NewRequest("GET", key)
	if resp := s.handle(req); resp.Status != 200 {
		b.Fatalf("warmup status %d", resp.Status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := s.handle(req)
		if resp.Status != 200 {
			b.Fatalf("status %d", resp.Status)
		}
	}
}

// seedCoopDoc installs a physically present co-op record directly,
// letting benchmarks skip the lazy-fetch network round trip.
func (s *Server) seedCoopDoc(key string, home naming.Origin, name string, size int64) {
	s.coops.touch(key, home, name, s.now())
	s.coops.markFetched(key, size, 0, s.now())
}

// BenchRegenCached measures the migration-prepared rendering path: the
// home side of co-op fetches and validator re-requests for a migrated
// document whose links must be absolutized. Before the rendered-document
// cache every pass re-parsed and re-rendered the HTML.
func BenchRegenCached(b *testing.B) {
	st := store.NewMem()
	st.Put("/index.html", perfDoc([]string{"/moved.html"}, 2<<10))
	st.Put("/moved.html", perfDoc([]string{"/index.html", "/a.html"}, 16<<10))
	st.Put("/a.html", perfDoc(nil, 4<<10))
	s := perfServer(b, st, naming.Origin{Host: "bench-regen", Port: 80})
	const coop = "bench-coop:80"
	if _, err := s.ldg.MarkMigrated("/moved.html", coop); err != nil {
		b.Fatal(err)
	}
	s.ledger.Record("/moved.html", coop, s.now())
	req := httpx.NewRequest("GET", "/moved.html")
	req.Header.Set(headerFetch, coop)
	if resp := s.handle(req); resp.Status != 200 {
		b.Fatalf("warmup status %d", resp.Status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := s.handle(req)
		if resp.Status != 200 {
			b.Fatalf("status %d", resp.Status)
		}
	}
}
