package dcws

import (
	"testing"
	"time"

	"dcws/internal/glt"
)

// TestAntiEntropyExchangeRepairsTable drives one synchronous anti-entropy
// tick: a full-table ping exchange must teach the initiator entries it
// never saw in any delta (here a third server only the peer knows about),
// and both sides must record the full exchange in their gossip state.
func TestAntiEntropyExchangeRepairsTable(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	coop := w.addServer("coop", 81, nil, nil, Params{})

	// Knowledge only the co-op holds: a relayed third-party load entry.
	ghost := glt.Entry{Server: "ghost:99", Load: 0.7, Updated: w.clock.Now()}
	coop.LoadTable().Observe(ghost)
	if _, ok := home.LoadTable().Get("ghost:99"); ok {
		t.Fatal("home already knows ghost:99")
	}

	home.TickAntiEntropy()

	got, ok := home.LoadTable().Get("ghost:99")
	if !ok || got.Load != 0.7 {
		t.Fatalf("after anti-entropy home's ghost:99 = %+v, %v", got, ok)
	}

	st := home.Status()
	if st.GLT.Shards != glt.DefaultShards {
		t.Fatalf("status shards = %d", st.GLT.Shards)
	}
	if st.GLT.Entries != home.LoadTable().Len() || st.GLT.Entries < 3 {
		t.Fatalf("status entries = %d (table %d)", st.GLT.Entries, home.LoadTable().Len())
	}
	if st.GLT.Version == 0 {
		t.Fatal("status version = 0")
	}
	if st.GLT.AntiEntropyRounds != 1 {
		t.Fatalf("anti-entropy rounds = %d", st.GLT.AntiEntropyRounds)
	}
	if st.GLT.FullEmits < 1 {
		t.Fatalf("full emits = %d", st.GLT.FullEmits)
	}
	row, ok := st.GLT.Peers["coop:81"]
	if !ok {
		t.Fatalf("status has no gossip row for coop:81: %+v", st.GLT.Peers)
	}
	if row.LastFull == "" {
		t.Fatal("last_full not stamped after full exchange")
	}
	if row.Seen == 0 {
		t.Fatal("peer's advertised version not recorded")
	}

	// The responder saw the !g marker and answered full: its gossip state
	// for home carries the ack it learned from home's header.
	coopRow, ok := coop.Status().GLT.Peers["home:80"]
	if !ok || coopRow.Seen == 0 {
		t.Fatalf("coop gossip row for home = %+v, %v", coopRow, ok)
	}
}

// TestAdaptiveAntiEntropyCadence drives the aeSkip decision directly: the
// interval backs off (doubling, capped at 4x) while every peer's acked
// version is current, the full exchange is skipped during backoff, and
// any churn — here a suspect peer — snaps the cadence back to the floor
// and forces the next round.
func TestAdaptiveAntiEntropyCadence(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	base := home.params.AntiEntropyInterval

	// First decision: the peer set is new (nil -> [coop]) — churn, forced.
	if home.aeSkip() {
		t.Fatal("first cadence decision skipped the round")
	}
	if home.Status().GLT.AntiEntropyForced != 1 {
		t.Fatalf("forced = %d, want 1", home.Status().GLT.AntiEntropyForced)
	}

	// A full exchange gets the peer's ack current.
	home.TickAntiEntropy()
	home.TickAntiEntropy()

	// Quiet rounds: skip and back off 2x, 4x, then stay capped at 4x.
	for i, want := range []time.Duration{2 * base, 4 * base, 4 * base} {
		if !home.aeSkip() {
			t.Fatalf("quiet round %d not skipped", i)
		}
		home.aeMu.Lock()
		got := home.aeInterval
		home.aeMu.Unlock()
		if got != want {
			t.Fatalf("interval after quiet round %d = %v, want %v", i, got, want)
		}
	}
	if skipped := home.Status().GLT.AntiEntropySkipped; skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}

	// Churn: the peer starts failing probes; the cadence resets and the
	// round runs.
	home.peerMu.Lock()
	home.pingFail["coop:81"] = 1
	home.peerMu.Unlock()
	if home.aeSkip() {
		t.Fatal("churn round skipped")
	}
	home.aeMu.Lock()
	got := home.aeInterval
	home.aeMu.Unlock()
	if got != base {
		t.Fatalf("interval after churn = %v, want floor %v", got, base)
	}
	if forced := home.Status().GLT.AntiEntropyForced; forced != 2 {
		t.Fatalf("forced = %d, want 2", forced)
	}
}
