package dcws

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/naming"
	"dcws/internal/resilience"
	"dcws/internal/store"
)

// handle is the worker-thread entry point implementing the request matrix
// of §4.2 and §4.4.
func (s *Server) handle(req *httpx.Request) *httpx.Response {
	s.absorb(req.Header)
	var resp *httpx.Response
	switch {
	case req.Path == pingPath:
		resp = s.handlePing()
	case req.Path == statusPath:
		resp = s.handleStatus()
	case strings.HasPrefix(req.Path, revokePath):
		resp = s.handleRevoke(req)
	case req.Path == recallPath:
		resp = s.handleRecall(req)
	case req.Path == graphPath:
		resp = s.handleGraph()
	case naming.IsMigrated(req.Path):
		resp = s.serveAsCoop(req)
	default:
		resp = s.serveAsHome(req)
	}
	s.piggyback(resp.Header)
	return resp
}

func (s *Server) handlePing() *httpx.Response {
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", "text/plain")
	resp.Body = []byte("pong\n")
	return resp
}

// handleRevoke is the co-op side of revocation (§4.5): the home server asks
// us to stop hosting one of its documents.
func (s *Server) handleRevoke(req *httpx.Request) *httpx.Response {
	if req.Method != "POST" {
		return status(405, "revoke requires POST")
	}
	key := req.Header.Get(headerRevokeDoc)
	if key == "" || !naming.IsMigrated(key) {
		return status(400, "missing or invalid "+headerRevokeDoc+" header")
	}
	cleaned, err := store.CleanName(key)
	if err != nil {
		return status(400, err.Error())
	}
	s.mu.Lock()
	_, hosted := s.coopDocs[cleaned]
	delete(s.coopDocs, cleaned)
	s.mu.Unlock()
	if hosted {
		if err := s.cfg.Store.Delete(cleaned); err != nil {
			s.log.Printf("dcws %s: delete revoked copy %s: %v", s.Addr(), cleaned, err)
		}
	}
	s.log.Printf("dcws %s: revoked %s", s.Addr(), cleaned)
	return status(200, "revoked")
}

// handleRecall is the operator-facing recall endpoint: the home server
// revokes every document currently migrated to the named co-op (§4.5 crash
// recovery, triggered manually, e.g. before taking a co-op down for
// maintenance).
func (s *Server) handleRecall(req *httpx.Request) *httpx.Response {
	if req.Method != "POST" {
		return status(405, "recall requires POST")
	}
	coop := req.Header.Get(headerFetch)
	if coop == "" {
		return status(400, "missing "+headerFetch+" header naming the co-op")
	}
	n := s.RecallFrom(coop)
	return status(200, fmt.Sprintf("recalled %d documents from %s", n, coop))
}

// serveAsHome handles requests for this server's own documents: serve them
// (regenerating first when dirty), or redirect with 301 when the document
// has been migrated away (§4.4).
func (s *Server) serveAsHome(req *httpx.Request) *httpx.Response {
	if req.Method != "GET" && req.Method != "HEAD" {
		return status(405, "only GET and HEAD are supported")
	}
	name, err := store.CleanName(req.Path)
	if err != nil {
		return status(400, err.Error())
	}
	if name == "/" {
		name = "/index.html"
	}
	loc, known := s.ldg.Location(name)
	if !known || !s.cfg.Store.Has(name) {
		return status(404, "no such document: "+name)
	}

	if req.Header.Get(headerFetch) != "" {
		return s.serveFetch(req, name)
	}

	if loc != "" {
		// Migrated away: answer with a small 301; all the information is
		// in the local document graph, no disk access needed (§4.4).
		target := s.pickReplica(name)
		coop, err := naming.ParseOrigin(target)
		if err != nil {
			s.log.Printf("dcws %s: bad coop address %q for %s", s.Addr(), target, name)
			return status(500, "bad migration target")
		}
		url, err := naming.MigratedURL(coop, s.cfg.Origin, name)
		if err != nil {
			return status(500, err.Error())
		}
		resp := httpx.NewResponse(301)
		resp.Header.Set("Location", url)
		resp.Body = []byte("moved to " + url + "\n")
		s.stats.Redirects.Inc()
		s.stats.ObserveRequest(s.now(), int64(len(resp.Body)))
		return resp
	}

	data, err := s.loadLocal(name)
	if err != nil {
		return status(500, err.Error())
	}
	s.ldg.RecordHit(name)
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", httpx.ContentTypeFor(name))
	resp.Header.Set("Content-Length", strconv.Itoa(len(data)))
	if req.Method != "HEAD" {
		resp.Body = data
	}
	s.stats.ObserveRequest(s.now(), int64(len(data)))
	return resp
}

// loadLocal returns a home document's bytes, regenerating its hyperlinks
// first if the Dirty bit is set (§4.3: regeneration is postponed until the
// latest possible time).
func (s *Server) loadLocal(name string) ([]byte, error) {
	if s.ldg.IsDirty(name) {
		if data, err := s.regenerate(name); err == nil {
			return data, nil
		} else {
			s.log.Printf("dcws %s: regenerate %s: %v", s.Addr(), name, err)
			// Fall through to the stored copy; stale links still work via
			// 301 redirects.
		}
	}
	return s.cfg.Store.Get(name)
}

// serveFetch is the home side of a co-op server's internal document fetch
// (lazy physical migration, §4.2, and validation re-requests, §4.5).
func (s *Server) serveFetch(req *httpx.Request, name string) *httpx.Response {
	coopAddr := req.Header.Get(headerFetch)
	authorized := false
	if mig, ok := s.ledger.Get(name); ok && mig.Coop == coopAddr {
		authorized = true
	} else {
		s.mu.Lock()
		for _, r := range s.replicas[name] {
			if r == coopAddr {
				authorized = true
				break
			}
		}
		s.mu.Unlock()
	}
	if !authorized {
		// The document is not (or no longer) assigned to this co-op; point
		// at its authoritative location so the coop can relay the redirect.
		resp := httpx.NewResponse(301)
		resp.Header.Set("Location", naming.HomeURL(s.cfg.Origin, name))
		return resp
	}
	data, err := s.prepareForMigration(name)
	if err != nil {
		return status(500, err.Error())
	}
	h := contentHash(data)
	if v := req.Header.Get(headerValidate); v != "" {
		if want, err := strconv.ParseUint(v, 16, 64); err == nil && want == h {
			resp := httpx.NewResponse(304)
			return resp
		}
	}
	s.stats.Fetches.Inc()
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", httpx.ContentTypeFor(name))
	resp.Header.Set(headerValidate, strconv.FormatUint(h, 16))
	resp.Body = data
	return resp
}

// serveAsCoop handles /~migrate requests: serve the local copy, or perform
// the lazy physical migration by fetching from the home server first
// (§4.2).
func (s *Server) serveAsCoop(req *httpx.Request) *httpx.Response {
	if req.Method != "GET" && req.Method != "HEAD" {
		return status(405, "only GET and HEAD are supported")
	}
	key, err := store.CleanName(req.Path)
	if err != nil {
		return status(400, err.Error())
	}
	home, docName, err := naming.Decode(key)
	if err != nil {
		return status(400, err.Error())
	}
	if home == s.cfg.Origin {
		// A ~migrate URL naming ourselves as home: the client followed a
		// stale link; the canonical copy is served under its plain name.
		resp := httpx.NewResponse(301)
		resp.Header.Set("Location", naming.HomeURL(s.cfg.Origin, docName))
		s.stats.Redirects.Inc()
		return resp
	}

	s.mu.Lock()
	cd, ok := s.coopDocs[key]
	if !ok {
		cd = &coopDoc{home: home, name: docName}
		s.coopDocs[key] = cd
	}
	present := cd.present
	s.mu.Unlock()

	if !present {
		if resp := s.fetchFromHome(key, cd); resp != nil {
			return resp // relay of a redirect or an error
		}
	}

	data, err := s.cfg.Store.Get(key)
	if err != nil {
		// Copy vanished (e.g. revoked between check and read): refetch once.
		s.mu.Lock()
		cd.present = false
		s.mu.Unlock()
		if resp := s.fetchFromHome(key, cd); resp != nil {
			return resp
		}
		if data, err = s.cfg.Store.Get(key); err != nil {
			return status(500, err.Error())
		}
	}
	s.mu.Lock()
	cd.windowHit++
	cd.lastUsed = s.now()
	s.mu.Unlock()
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", httpx.ContentTypeFor(cd.name))
	resp.Header.Set("Content-Length", strconv.Itoa(len(data)))
	if req.Method != "HEAD" {
		resp.Body = data
	}
	s.stats.ObserveRequest(s.now(), int64(len(data)))
	return resp
}

// fetchFromHome performs the physical half of a lazy migration. It returns
// nil on success (the copy is now in the store), or a response to relay to
// the client on failure. Transient failures are retried with backoff
// through the home's circuit breaker before the 503 is admitted; while
// the breaker is open the fetch degrades to an immediate 503 without
// tying a worker up in doomed connection attempts.
func (s *Server) fetchFromHome(key string, cd *coopDoc) *httpx.Response {
	home := cd.home.Addr()
	var resp *httpx.Response
	err := s.res.Execute(s.fetchPolicy, home, func() error {
		// Headers are rebuilt per attempt so every retry piggybacks the
		// freshest load view.
		extra := make(httpx.Header)
		extra.Set(headerFetch, s.Addr())
		s.piggyback(extra)
		s.attachHotReport(extra, home)
		r, err := s.client.GetTimeout(home, cd.name, extra, s.params.FetchTimeout)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	if err != nil {
		if errors.Is(err, resilience.ErrOpen) {
			return status(503, "home server unreachable (circuit open)")
		}
		s.log.Printf("dcws %s: fetch %s from %s: %v", s.Addr(), cd.name, home, err)
		return status(503, "home server unreachable")
	}
	s.absorb(resp.Header)
	switch resp.Status {
	case 200:
		if err := s.cfg.Store.Put(key, resp.Body); err != nil {
			return status(500, err.Error())
		}
		var h uint64
		if v := resp.Header.Get(headerValidate); v != "" {
			h, _ = strconv.ParseUint(v, 16, 64)
		} else {
			h = contentHash(resp.Body)
		}
		s.mu.Lock()
		cd.present = true
		cd.hash = h
		cd.fetched = s.now()
		cd.lastUsed = s.now()
		cd.size = int64(len(resp.Body))
		s.mu.Unlock()
		s.stats.Fetches.Inc()
		s.enforceCoopBudget(key)
		return nil
	case 301:
		// Not assigned to us (revoked or re-migrated): relay the redirect
		// and forget the document.
		s.mu.Lock()
		delete(s.coopDocs, key)
		s.mu.Unlock()
		out := httpx.NewResponse(301)
		out.Header.Set("Location", resp.Header.Get("Location"))
		s.stats.Redirects.Inc()
		return out
	default:
		return status(502, fmt.Sprintf("home server answered %d", resp.Status))
	}
}

// enforceCoopBudget evicts least-recently-used hosted copies until the
// co-op cache fits within Params.CoopCacheBytes (§4.5: data is kept until
// disk space forces it out). The copy named by keep — typically the one
// just fetched — is never evicted, and evicted documents remain logically
// hosted: the next request lazily re-fetches them.
func (s *Server) enforceCoopBudget(keep string) {
	budget := s.params.CoopCacheBytes
	if budget <= 0 {
		return
	}
	for {
		s.mu.Lock()
		var total int64
		lruKey := ""
		var lruAt time.Time
		for k, cd := range s.coopDocs {
			if !cd.present {
				continue
			}
			total += cd.size
			if k == keep {
				continue
			}
			if lruKey == "" || cd.lastUsed.Before(lruAt) {
				lruKey, lruAt = k, cd.lastUsed
			}
		}
		if total <= budget || lruKey == "" {
			s.mu.Unlock()
			return
		}
		cd := s.coopDocs[lruKey]
		cd.present = false
		cd.size = 0
		s.mu.Unlock()
		if err := s.cfg.Store.Delete(lruKey); err != nil {
			s.log.Printf("dcws %s: evict %s: %v", s.Addr(), lruKey, err)
		}
		s.log.Printf("dcws %s: evicted %s (co-op cache over %d bytes)", s.Addr(), lruKey, budget)
	}
}

// status builds a small plain-text response.
func status(code int, msg string) *httpx.Response {
	resp := httpx.NewResponse(code)
	resp.Header.Set("Content-Type", "text/plain")
	resp.Body = []byte(msg + "\n")
	return resp
}
