package dcws

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dcws/internal/glt"
	"dcws/internal/httpx"
	"dcws/internal/metrics"
	"dcws/internal/naming"
	"dcws/internal/resilience"
	"dcws/internal/store"
	"dcws/internal/telemetry"
)

// handle is the worker-thread entry point implementing the request matrix
// of §4.2 and §4.4. Every request carries a trace ID — taken from the
// X-DCWS-Trace extension header when the caller (a client or a peer
// server) supplied one, minted otherwise — which is echoed on the response
// and propagated on any inter-server RPC issued while serving, so the
// spans recorded across the cluster for one logical request share one ID.
func (s *Server) handle(req *httpx.Request) *httpx.Response {
	pig := s.absorbPiggyback(req.Header)
	from, wantFull := pig.From, pig.Full
	traceID := req.Header.Get(telemetry.TraceHeader)
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	// The caller's span ID (a peer's RPC span) parents our server-side
	// span; our span's ID in turn parents every RPC we issue while
	// serving, so the cluster-wide spans of one trace form a tree.
	parent := req.Header.Get(telemetry.ParentHeader)
	spanID := telemetry.NewSpanID()
	op, hist := s.classifyServe(req)
	start := time.Now()
	startClk := s.now()
	var resp *httpx.Response
	switch {
	case req.Path == pingPath:
		resp = s.handlePing()
	case req.Path == statusPath:
		resp = s.handleStatus()
	case req.Path == metricsPath:
		resp = s.handleMetrics()
	case req.Path == tracePath || strings.HasPrefix(req.Path, tracePath+"?"):
		resp = s.handleTrace(req)
	case req.Path == slowPath || strings.HasPrefix(req.Path, slowPath+"?"):
		resp = s.handleSlow(req)
	case req.Path == profilesPath || strings.HasPrefix(req.Path, profilesPath+"/"):
		resp = s.handleProfiles(req)
	case req.Path == subscribePath:
		resp = s.hub.handleSubscribe(req)
	case req.Path == replicatePath:
		resp = s.handleReplicate(req)
	case strings.HasPrefix(req.Path, revokePath):
		resp = s.handleRevoke(req)
	case req.Path == recallPath:
		resp = s.handleRecall(req)
	case req.Path == migratePath:
		resp = s.handleMigrate(req)
	case req.Path == updatePath:
		resp = s.handleUpdate(req)
	case req.Path == graphPath:
		resp = s.handleGraph()
	case naming.IsMigrated(req.Path):
		resp = s.serveAsCoop(req, traceID, spanID)
	default:
		resp = s.serveAsHome(req)
	}
	// A peer identified itself in the request header: answer with the
	// delta it has not acked (or the full table when it asked for an
	// anti-entropy exchange). A digest frame gets the digest response —
	// our digests of the diverged stripes plus those stripes' entries —
	// which is what makes anti-entropy proportional to divergence instead
	// of table size. Plain clients get the constant-size self entry — they
	// cannot ack deltas, and relaying the whole cluster's table to
	// browsers is O(cluster) bytes for nothing.
	switch {
	case from != "" && pig.HasDigests:
		hdr, diff := s.table.EncodeDigestResponse(from, pig.Digests)
		resp.Header.Set(glt.HeaderName, hdr)
		s.tel.digestResponses.Inc()
		s.tel.digestShardsSent.Add(int64(diff))
	case from != "":
		s.piggybackTo(resp.Header, from, wantFull)
	default:
		s.piggybackClient(resp.Header)
	}
	resp.Header.Set(telemetry.TraceHeader, traceID)
	if op != "" {
		d := time.Since(start)
		hist.ObserveTrace(d, traceID)
		s.tel.record(telemetry.Span{
			TraceID:  traceID,
			ID:       spanID,
			ParentID: parent,
			Server:   s.addr,
			Op:       op,
			Target:   req.Path,
			Status:   resp.Status,
			Start:    startClk,
			Duration: d,
		})
	} else if (wantFull || pig.HasDigests) && from != "" {
		// The responder side of an anti-entropy exchange (full or digest):
		// cold-start and convergence cost shows up in traces on both ends.
		s.tel.record(telemetry.Span{
			TraceID:  traceID,
			ID:       spanID,
			ParentID: parent,
			Server:   s.addr,
			Op:       "serve-anti-entropy",
			Target:   req.Path,
			Peer:     from,
			Status:   resp.Status,
			Start:    startClk,
			Duration: time.Since(start),
		})
	}
	return resp
}

// classifyServe names the document-serving operation a request performs
// and the latency histogram it feeds. Control endpoints (ping, status,
// metrics, ...) return "" and record no server-side span: the pinger alone
// would otherwise flood the span ring.
func (s *Server) classifyServe(req *httpx.Request) (string, *metrics.Histogram) {
	switch {
	case strings.HasPrefix(req.Path, "/~dcws/"):
		return "", nil
	case naming.IsMigrated(req.Path):
		return "serve-coop", s.tel.serveCoop
	case req.Header.Get(headerFetch) != "":
		return "serve-fetch", s.tel.serveFetch
	default:
		return "serve-home", s.tel.serveHome
	}
}

func (s *Server) handlePing() *httpx.Response {
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", "text/plain")
	resp.Body = []byte("pong\n")
	return resp
}

// handleRevoke is the co-op side of revocation (§4.5): the home server asks
// us to stop hosting one of its documents.
func (s *Server) handleRevoke(req *httpx.Request) *httpx.Response {
	if req.Method != "POST" {
		return status(405, "revoke requires POST")
	}
	key := req.Header.Get(headerRevokeDoc)
	if key == "" || !naming.IsMigrated(key) {
		return status(400, "missing or invalid "+headerRevokeDoc+" header")
	}
	cleaned, err := store.CleanName(key)
	if err != nil {
		return status(400, err.Error())
	}
	hosted := s.coops.remove(cleaned)
	if hosted {
		if err := s.cfg.Store.Delete(cleaned); err != nil {
			s.log.Printf("dcws %s: delete revoked copy %s: %v", s.Addr(), cleaned, err)
		}
		s.walAppend(recCoopForget, encodeNameRecord(cleaned))
	}
	s.log.Printf("dcws %s: revoked %s", s.Addr(), cleaned)
	// Chain-ordered revocation: relay down the remaining replica hosts and
	// answer the home with the aggregated ack list, self included, so one
	// home RPC revokes the whole set.
	acked := []string{s.addr}
	if rest := splitAddrs(req.Header.Get(headerChain)); len(rest) > 0 {
		acked = append(acked, s.relayRevoke(key, rest,
			req.Header.Get(telemetry.TraceHeader), req.Header.Get(telemetry.ParentHeader))...)
	}
	resp := status(200, "revoked")
	resp.Header.Set(headerAcked, strings.Join(acked, ","))
	return resp
}

// handleRecall is the operator-facing recall endpoint: the home server
// revokes every document currently migrated to the named co-op (§4.5 crash
// recovery, triggered manually, e.g. before taking a co-op down for
// maintenance).
func (s *Server) handleRecall(req *httpx.Request) *httpx.Response {
	if req.Method != "POST" {
		return status(405, "recall requires POST")
	}
	coop := req.Header.Get(headerFetch)
	if coop == "" {
		return status(400, "missing "+headerFetch+" header naming the co-op")
	}
	n := s.RecallFrom(coop)
	return status(200, fmt.Sprintf("recalled %d documents from %s", n, coop))
}

// handleMigrate is the operator-facing counterpart of recall: the home
// server hands one of its documents to the named co-op (POST with the
// document name in the X-DCWS-Doc header and the co-op's address in
// X-DCWS-Fetch). With the co-op named "auto" — or omitted — the server
// picks the target itself with the placement policy (zone-local first,
// most headroom first), which lets operators and smoke harnesses say
// "move this somewhere sensible" without re-implementing placement. The
// copy stays lazy — the co-op fetches it on first touch, exactly like a
// load-driven migration (§4.2).
func (s *Server) handleMigrate(req *httpx.Request) *httpx.Response {
	if req.Method != "POST" {
		return status(405, "migrate requires POST")
	}
	name := req.Header.Get(headerRevokeDoc)
	coop := req.Header.Get(headerFetch)
	if name == "" {
		return status(400, "migrate requires the "+headerRevokeDoc+" header")
	}
	if coop == "" || coop == "auto" {
		coop = s.pickPlacement()
		if coop == "" {
			return status(503, "no eligible co-op server for placement")
		}
	}
	name, err := store.CleanName(name)
	if err != nil {
		return status(400, err.Error())
	}
	if coop == s.addr {
		return status(400, "cannot migrate a document to its own home")
	}
	loc, _, _, known := s.ldg.ServeInfo(name)
	if !known {
		return status(404, "no such document: "+name)
	}
	if loc != "" {
		return status(409, fmt.Sprintf("%s is already migrated to %s", name, loc))
	}
	s.migrate(name, coop)
	return status(200, fmt.Sprintf("migrated %s to %s", name, coop))
}

// handleUpdate replaces one home document's content (operational
// endpoint, like recall): POST /~dcws/update with the document name in
// the X-DCWS-Doc header and the new bytes as the body. Runs the full
// update path — reparse, dirty propagation, WAL append, and an
// invalidation push to every subscribed co-op.
func (s *Server) handleUpdate(req *httpx.Request) *httpx.Response {
	if req.Method != "POST" {
		return status(405, "update requires POST")
	}
	name := req.Header.Get(headerRevokeDoc)
	if name == "" {
		return status(400, "missing "+headerRevokeDoc+" header naming the document")
	}
	if err := s.UpdateDocument(name, req.Body); err != nil {
		return status(400, err.Error())
	}
	return status(200, fmt.Sprintf("updated %s (%d bytes)", name, len(req.Body)))
}

// serveAsHome handles requests for this server's own documents: serve them
// (regenerating first when dirty), or redirect with 301 when the document
// has been migrated away (§4.4).
func (s *Server) serveAsHome(req *httpx.Request) *httpx.Response {
	if req.Method != "GET" && req.Method != "HEAD" {
		return status(405, "only GET and HEAD are supported")
	}
	name, err := store.CleanName(req.Path)
	if err != nil {
		return status(400, err.Error())
	}
	if name == "/" {
		name = "/index.html"
	}
	loc, dirty, gen, known := s.ldg.ServeInfo(name)
	if !known || !s.cfg.Store.Has(name) {
		return status(404, "no such document: "+name)
	}

	if req.Header.Get(headerFetch) != "" {
		return s.serveFetch(req, name, gen)
	}

	if loc != "" {
		// Migrated away: answer with a small 301; all the information is
		// in the local document graph, no disk access needed (§4.4).
		if target := s.pickReplica(name); target != "" {
			coop, err := naming.ParseOrigin(target)
			if err != nil {
				s.log.Printf("dcws %s: bad coop address %q for %s", s.Addr(), target, name)
				return status(500, "bad migration target")
			}
			url, err := naming.MigratedURL(coop, s.cfg.Origin, name)
			if err != nil {
				return status(500, err.Error())
			}
			resp := httpx.NewResponse(301)
			resp.Header.Set("Location", url)
			resp.Body = []byte("moved to " + url + "\n")
			s.stats.Redirects.Inc()
			s.stats.ObserveRequest(s.now(), int64(len(resp.Body)))
			return resp
		}
		// Revoked between the ServeInfo snapshot and the replica lookup:
		// the document is home again — refresh the snapshot and serve it.
		_, dirty, gen, _ = s.ldg.ServeInfo(name)
	}

	data, err := s.loadLocal(name, dirty, gen)
	if err != nil {
		return status(500, err.Error())
	}
	s.ldg.RecordHit(name)
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", httpx.ContentTypeFor(name))
	if req.Method == "HEAD" {
		// GET responses let the wire writer derive Content-Length from the
		// body; HEAD has no body, so it must be explicit.
		resp.Header.Set("Content-Length", strconv.Itoa(len(data)))
	} else {
		resp.Body = data
	}
	s.stats.ObserveRequest(s.now(), int64(len(data)))
	return resp
}

// loadLocal returns a home document's bytes — shared and immutable —
// regenerating its hyperlinks first if the Dirty bit is set (§4.3:
// regeneration is postponed until the latest possible time). Clean
// documents come from the rendered-document cache when possible; the
// caller's (dirty, gen) snapshot keys the lookup, so a concurrent
// migration that dirties the document can never yield a stale hit.
func (s *Server) loadLocal(name string, dirty bool, gen uint64) ([]byte, error) {
	if dirty {
		if data, err := s.regenerate(name, gen); err == nil {
			return data, nil
		} else {
			s.log.Printf("dcws %s: regenerate %s: %v", s.Addr(), name, err)
			// Fall through to the stored copy; stale links still work via
			// 301 redirects.
		}
	}
	if data, _, ok := s.rcache.get(name, renderHome, gen); ok {
		return data, nil
	}
	data, err := store.GetShared(s.cfg.Store, name)
	if err != nil {
		return nil, err
	}
	s.rcache.put(name, renderHome, gen, data, 0)
	return data, nil
}

// serveFetch is the home side of a co-op server's internal document fetch
// (lazy physical migration, §4.2, and validation re-requests, §4.5). The
// migration-prepared rendering and its content hash are cached by
// generation, so steady-state validator passes cost a cache lookup and a
// hash comparison instead of a parse-and-render.
func (s *Server) serveFetch(req *httpx.Request, name string, gen uint64) *httpx.Response {
	coopAddr := req.Header.Get(headerFetch)
	authorized := false
	if mig, ok := s.ledger.Get(name); ok && mig.Coop == coopAddr {
		authorized = true
	} else {
		s.repMu.RLock()
		for _, r := range s.replicas[name] {
			if r == coopAddr {
				authorized = true
				break
			}
		}
		s.repMu.RUnlock()
	}
	if !authorized {
		// The document is not (or no longer) assigned to this co-op; point
		// at its authoritative location so the coop can relay the redirect.
		resp := httpx.NewResponse(301)
		resp.Header.Set("Location", naming.HomeURL(s.cfg.Origin, name))
		return resp
	}
	data, h, ok := s.rcache.get(name, renderMigration, gen)
	if !ok {
		var err error
		data, err = s.prepareForMigration(name)
		if err != nil {
			return status(500, err.Error())
		}
		h = contentHash(data)
		s.rcache.put(name, renderMigration, gen, data, h)
	}
	// Tell the co-op who else replicates this document so it can hedge
	// future fetches when we are slow.
	s.repMu.RLock()
	reps := strings.Join(s.replicas[name], ",")
	s.repMu.RUnlock()
	if v := req.Header.Get(headerValidate); v != "" {
		if want, err := strconv.ParseUint(v, 16, 64); err == nil && want == h {
			resp := httpx.NewResponse(304)
			if reps != "" {
				resp.Header.Set(headerReplicas, reps)
			}
			return resp
		}
	}
	s.stats.Fetches.Inc()
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", httpx.ContentTypeFor(name))
	resp.Header.Set(headerValidate, strconv.FormatUint(h, 16))
	if reps != "" {
		resp.Header.Set(headerReplicas, reps)
	}
	resp.Body = data
	return resp
}

// serveAsCoop handles /~migrate requests: serve the local copy, or perform
// the lazy physical migration by fetching from the home server first
// (§4.2). traceID is propagated to the home server on that fetch, and
// spanID — this request's serve span — parents the fetch legs.
func (s *Server) serveAsCoop(req *httpx.Request, traceID, spanID string) *httpx.Response {
	if req.Method != "GET" && req.Method != "HEAD" {
		return status(405, "only GET and HEAD are supported")
	}
	key, err := store.CleanName(req.Path)
	if err != nil {
		return status(400, err.Error())
	}
	home, docName, err := naming.Decode(key)
	if err != nil {
		return status(400, err.Error())
	}
	if home == s.cfg.Origin {
		// A ~migrate URL naming ourselves as home: the client followed a
		// stale link; the canonical copy is served under its plain name.
		resp := httpx.NewResponse(301)
		resp.Header.Set("Location", naming.HomeURL(s.cfg.Origin, docName))
		s.stats.Redirects.Inc()
		return resp
	}

	if req.Header.Get(headerHedge) != "" {
		// A sibling replica's hedged fetch: serve only a physically present
		// copy. A hedge probe must never recurse into a fetch of its own —
		// the sibling is likely asking us precisely because the home server
		// is stalled.
		return s.serveHedged(key, home, docName)
	}

	// One critical section per request: lookup (creating the record for a
	// first-touch lazy migration), the windowHit bump, the lastUsed stamp,
	// and the LRU re-ordering all happen inside coopSet.touch.
	now := s.now()
	v := s.coops.touch(key, home, docName, now)

	if s.params.LeaseDuration > 0 && v.present && v.leased && !v.leaseUntil.After(now) {
		// The copy's lease expired without renewal — the home is
		// unreachable past the partition tolerance. Fail closed: a
		// synchronous conditional GET either re-validates (and re-leases)
		// the copy or proves we cannot vouch for its freshness.
		if s.validateOne(key) == "error" {
			s.tel.invalLeaseExpired.Inc()
			return status(503, "lease expired and home unreachable")
		}
		v, _ = s.coops.view(key)
		if !v.present {
			return status(404, "no longer hosted here")
		}
	}

	if !v.present {
		if resp := s.fetchFromHome(key, home, docName, traceID, spanID); resp != nil {
			return resp // relay of a redirect or an error
		}
	}

	data, err := store.GetShared(s.cfg.Store, key)
	if err != nil {
		// Copy vanished (e.g. revoked between check and read): refetch once.
		s.coops.markAbsent(key)
		if resp := s.fetchFromHome(key, home, docName, traceID, spanID); resp != nil {
			return resp
		}
		if data, err = store.GetShared(s.cfg.Store, key); err != nil {
			return status(500, err.Error())
		}
	}
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", httpx.ContentTypeFor(docName))
	if req.Method == "HEAD" {
		resp.Header.Set("Content-Length", strconv.Itoa(len(data)))
	} else {
		resp.Body = data
	}
	s.stats.ObserveRequest(s.now(), int64(len(data)))
	return resp
}

// serveHedged answers a sibling replica's hedged fetch for a document both
// servers host: the local copy is served only if physically present, with
// its validator hash so the requester can store it exactly as it would a
// home fetch. Absence is a plain 404 — the requester's primary leg against
// the home server remains its path to the bytes.
func (s *Server) serveHedged(key string, home naming.Origin, docName string) *httpx.Response {
	v, ok := s.coops.view(key)
	if !ok || !v.present {
		return status(404, "no local copy")
	}
	data, err := store.GetShared(s.cfg.Store, key)
	if err != nil {
		s.coops.markAbsent(key)
		return status(404, "no local copy")
	}
	s.coops.touch(key, home, docName, s.now())
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", httpx.ContentTypeFor(docName))
	resp.Header.Set(headerValidate, strconv.FormatUint(v.hash, 16))
	resp.Body = data
	s.stats.ObserveRequest(s.now(), int64(len(data)))
	return resp
}

// fetchFromHome performs the physical half of a lazy migration. It returns
// nil on success (the copy is now in the store), or a response to relay to
// the client on failure. Transient failures are retried with backoff
// through the home's circuit breaker before the 503 is admitted; while
// the breaker is open the fetch degrades to an immediate 503 without
// tying a worker up in doomed connection attempts. When a healthy sibling
// replica of the document is known, the fetch is hedged against it.
func (s *Server) fetchFromHome(key string, home naming.Origin, docName, traceID, parent string) *httpx.Response {
	homeAddr := home.Addr()
	if sib := s.pickHedgeSibling(key, homeAddr); sib != "" {
		return s.fetchHedged(key, homeAddr, docName, traceID, parent, sib)
	}
	resp, err := s.fetchLeg(homeAddr, docName, "fetch-home", false, traceID, parent, nil, s.fetchPolicy)
	if err != nil {
		return s.fetchFailure(homeAddr, docName, err)
	}
	return s.finishFetch(key, resp)
}

// fetchLeg runs one leg of a (possibly hedged) fetch through peer's
// breaker and the given retry policy, recording a trace span for the
// whole attempt set. A hedge leg requests the migrated key with the
// hedge header set, so the sibling serves only a present copy. The
// cancel token, when given, lets the losing leg of a race be aborted
// mid-flight without charging the abort to the peer's breaker.
func (s *Server) fetchLeg(peer, path, op string, hedge bool, traceID, parent string, tok *httpx.CancelToken, policy resilience.Policy) (*httpx.Response, error) {
	start := time.Now()
	startClk := s.now()
	attempts := 0
	spanID := telemetry.NewSpanID()
	var resp *httpx.Response
	err := s.res.Execute(policy, peer, func() error {
		if tok != nil && tok.Canceled() {
			return resilience.ErrAborted
		}
		attempts++
		// Headers are rebuilt per attempt so every retry piggybacks the
		// freshest load view.
		extra := make(httpx.Header)
		extra.Set(headerFetch, s.Addr())
		extra.Set(telemetry.TraceHeader, traceID)
		extra.Set(telemetry.ParentHeader, spanID)
		if hedge {
			extra.Set(headerHedge, "1")
		} else {
			s.attachHotReport(extra, peer)
		}
		s.piggybackTo(extra, peer, false)
		req := httpx.NewRequest("GET", path)
		for k, vs := range extra {
			req.Header[k] = vs
		}
		r, err := s.client.DoCancel(peer, req, s.params.FetchTimeout, tok)
		if err != nil {
			if tok != nil && tok.Canceled() {
				// The race was decided elsewhere; the abort says nothing
				// about this peer's health.
				return fmt.Errorf("%w: %v", resilience.ErrAborted, err)
			}
			return err
		}
		resp = r
		return nil
	})
	span := telemetry.Span{
		TraceID:  traceID,
		ID:       spanID,
		ParentID: parent,
		Server:   s.addr,
		Op:       op,
		Target:   path,
		Peer:     peer,
		Attempts: attempts,
		Start:    startClk,
		Duration: time.Since(start),
	}
	if err != nil {
		span.Err = err.Error()
	} else {
		span.Status = resp.Status
	}
	s.tel.record(span)
	return resp, err
}

// fetchHedged races the home server against a sibling replica: the
// primary leg runs the normal retried fetch; if it has not produced a
// usable response within Params.HedgeDelay — or fails outright — a
// single-attempt hedge leg asks the sibling for its copy. The first
// usable response wins and the loser is canceled mid-flight, retiring
// its connection.
func (s *Server) fetchHedged(key, homeAddr, docName, traceID, parent, sib string) *httpx.Response {
	type leg struct {
		resp *httpx.Response
		err  error
	}
	tokP := &httpx.CancelToken{}
	tokH := &httpx.CancelToken{}
	primary := make(chan leg, 1)
	go func() {
		r, err := s.fetchLeg(homeAddr, docName, "fetch-home", false, traceID, parent, tokP, s.fetchPolicy)
		primary <- leg{r, err}
	}()

	var p leg
	havePrimary := false
	timer := time.NewTimer(s.params.HedgeDelay)
	select {
	case p = <-primary:
		havePrimary = true
		timer.Stop()
		if p.err == nil {
			return s.finishFetch(key, p.resp)
		}
		// Primary failed before the delay elapsed: launch the hedge
		// immediately as a fallback source.
	case <-timer.C:
	}

	s.tel.hedgeLaunched.Inc()
	hedge := make(chan leg, 1)
	go func() {
		r, err := s.fetchLeg(sib, key, "fetch-hedge", true, traceID, parent, tokH, resilience.Policy{MaxAttempts: 1})
		hedge <- leg{r, err}
	}()

	haveHedge := false
	for {
		var h leg
		select {
		case p = <-primary:
			havePrimary = true
		case h = <-hedge:
			haveHedge = true
			if h.err == nil && h.resp.Status == 200 {
				// Hedge won: reel in the primary leg and use the sibling's
				// copy.
				tokP.Cancel()
				s.tel.hedgeWon.Inc()
				return s.finishFetch(key, h.resp)
			}
			// Only the primary can win now. A sibling that answered but
			// had no usable copy is a miss — the replica list was stale —
			// not a lost race; only errors count as wasted here. The stale
			// entry is dropped so the next fetch does not race toward a
			// sibling whose replica was revoked.
			if h.err == nil {
				s.tel.hedgeMiss.Inc()
				s.coops.dropSibling(key, sib)
			} else {
				s.tel.hedgeWasted.Inc()
			}
		}
		if havePrimary && p.err == nil {
			// Primary delivered a usable response; a still-in-flight hedge
			// leg lost the race and is reeled in.
			if !haveHedge {
				tokH.Cancel()
				s.tel.hedgeWasted.Inc()
			}
			return s.finishFetch(key, p.resp)
		}
		if havePrimary && haveHedge {
			return s.fetchFailure(homeAddr, docName, p.err)
		}
	}
}

// pickHedgeSibling returns a healthy sibling replica to race against the
// home server for key, or "" when hedging is disabled or no alternate
// source is known. A same-zone sibling is preferred — the hedge exists to
// shave tail latency, and a zone-local hop is the faster leg — with any
// healthy sibling as the fallback. Siblings are learned from
// X-DCWS-Replicas headers on earlier fetch and validation responses.
func (s *Server) pickHedgeSibling(key, homeAddr string) string {
	if s.params.HedgeDelay < 0 {
		return ""
	}
	var fallback string
	for _, sib := range s.coops.siblingsOf(key) {
		if sib == homeAddr || sib == s.addr || s.peerSuspect(sib) {
			continue
		}
		if z := s.params.Zone; z != "" {
			if e, ok := s.table.Get(sib); ok && e.Zone == z {
				return sib
			}
		}
		if fallback == "" {
			fallback = sib
		}
	}
	return fallback
}

// fetchFailure maps a failed fetch to the response relayed to the client.
func (s *Server) fetchFailure(homeAddr, docName string, err error) *httpx.Response {
	if errors.Is(err, resilience.ErrOpen) {
		return status(503, "home server unreachable (circuit open)")
	}
	s.log.Printf("dcws %s: fetch %s from %s: %v", s.Addr(), docName, homeAddr, err)
	return status(503, "home server unreachable")
}

// finishFetch applies a fetch leg's response: 200 stores the copy, 301
// relays the redirect and forgets the document, anything else becomes a
// 502. Returns nil on success, mirroring fetchFromHome's contract.
func (s *Server) finishFetch(key string, resp *httpx.Response) *httpx.Response {
	s.absorb(resp.Header)
	s.absorbReplicas(key, resp.Header)
	switch resp.Status {
	case 200:
		if err := s.cfg.Store.Put(key, resp.Body); err != nil {
			return status(500, err.Error())
		}
		var h uint64
		if v := resp.Header.Get(headerValidate); v != "" {
			h, _ = strconv.ParseUint(v, 16, 64)
		} else {
			h = contentHash(resp.Body)
		}
		s.coops.markFetched(key, int64(len(resp.Body)), h, s.now())
		s.stats.Fetches.Inc()
		s.walCoopAdmit(key)
		s.enforceCoopBudget(key)
		if s.params.LeaseDuration > 0 {
			// A fresh validation is as good as a pushed frame.
			s.coops.renewLease(key, s.now().Add(s.params.LeaseDuration))
			if home, _, err := naming.Decode(key); err == nil {
				s.subs.ensureSubscribed(home.Addr())
			}
		}
		return nil
	case 301:
		// Not assigned to us (revoked or re-migrated): relay the redirect
		// and forget the document.
		if s.coops.remove(key) {
			s.walAppend(recCoopForget, encodeNameRecord(key))
		}
		out := httpx.NewResponse(301)
		out.Header.Set("Location", resp.Header.Get("Location"))
		s.stats.Redirects.Inc()
		return out
	default:
		return status(502, fmt.Sprintf("home server answered %d", resp.Status))
	}
}

// absorbReplicas learns a document's sibling replicas from the home's
// X-DCWS-Replicas response header (this server excluded).
func (s *Server) absorbReplicas(key string, h httpx.Header) {
	v := h.Get(headerReplicas)
	if v == "" {
		return
	}
	var sibs []string
	for _, r := range strings.Split(v, ",") {
		if r = strings.TrimSpace(r); r != "" && r != s.addr {
			sibs = append(sibs, r)
		}
	}
	s.coops.setSiblings(key, sibs)
}

// enforceCoopBudget evicts least-recently-used hosted copies until the
// co-op cache fits within Params.CoopCacheBytes (§4.5: data is kept until
// disk space forces it out). The copy named by keep — typically the one
// just fetched — is never evicted, and evicted documents remain logically
// hosted: the next request lazily re-fetches them. The coopSet keeps a
// running byte total and an LRU list, so this costs O(evictions) rather
// than a full-map scan under lock.
func (s *Server) enforceCoopBudget(keep string) {
	for _, key := range s.coops.evictOver(s.params.CoopCacheBytes, keep) {
		if err := s.cfg.Store.Delete(key); err != nil {
			s.log.Printf("dcws %s: evict %s: %v", s.Addr(), key, err)
		}
		s.walAppend(recCoopEvict, encodeNameRecord(key))
		s.log.Printf("dcws %s: evicted %s (co-op cache over %d bytes)", s.Addr(), key, s.params.CoopCacheBytes)
	}
}

// status builds a small plain-text response.
func status(code int, msg string) *httpx.Response {
	resp := httpx.NewResponse(code)
	resp.Header.Set("Content-Type", "text/plain")
	resp.Body = []byte(msg + "\n")
	return resp
}
