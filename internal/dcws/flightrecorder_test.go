package dcws

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/store"
	"dcws/internal/telemetry"
)

// TestHedgedFetchStitchedTree is the issue's acceptance scenario: on a
// four-server cluster, one hedged fetch leaves spans on the co-op, the
// home, and the raced sibling that stitch into a single tree — the co-op's
// serve span at the root, both hedge arms as its children, and the remote
// serve spans as grandchildren. The home is slowed past the hedge delay
// (but within the fetch timeout) and the sibling's copy is dropped, so
// both arms run to completion: the probe answers 404 while the primary
// still delivers the bytes.
func TestHedgedFetchStitchedTree(t *testing.T) {
	w, home, coop1, coop2 := hedgeWorld(t, Params{
		HedgeDelay:   10 * time.Millisecond,
		FetchTimeout: 2 * time.Second,
	})
	fourth := w.addServer("fourth", 83, nil, nil, Params{})
	w.fabric.SetStall("coop2:82", "home:80", 100*time.Millisecond)
	coop2.client.Pool.FlushAddr("home:80")
	coop1.coops.markAbsent(hedgeKey)
	if err := coop1.cfg.Store.Delete(hedgeKey); err != nil {
		t.Fatal(err)
	}

	extra := make(httpx.Header)
	extra.Set(telemetry.TraceHeader, "hedge-trace-1")
	resp, err := w.client.Get("coop2:82", hedgeKey, extra)
	if err != nil || resp.Status != 200 {
		t.Fatalf("hedged refetch = %v, %v", resp, err)
	}
	if st := coop2.Status(); st.Hedge.Launched != 1 || st.Hedge.Miss != 1 {
		t.Fatalf("hedge counters = %+v, want launched=1 miss=1", st.Hedge)
	}

	// Stitch exactly as `dcwsctl trace -cluster` does: collect every
	// server's spans for the trace and link them by parent ID.
	var spans []telemetry.Span
	for _, srv := range []*Server{home, coop1, coop2, fourth} {
		spans = append(spans, srv.spansForTrace("hedge-trace-1")...)
	}
	byID := make(map[string]telemetry.Span, len(spans))
	for _, sp := range spans {
		if sp.ID == "" {
			t.Fatalf("span without ID: %+v", sp)
		}
		if sp.Duration <= 0 {
			t.Fatalf("span %s/%s has zero duration", sp.Server, sp.Op)
		}
		byID[sp.ID] = sp
	}
	if len(byID) != len(spans) {
		t.Fatalf("duplicate span IDs across servers: %d spans, %d unique", len(spans), len(byID))
	}
	var roots []telemetry.Span
	children := make(map[string][]telemetry.Span)
	for _, sp := range spans {
		if _, ok := byID[sp.ParentID]; ok {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("stitched tree has %d roots, want 1: %+v", len(roots), roots)
	}
	root := roots[0]
	if root.Op != "serve-coop" || root.Server != "coop2:82" || root.Target != hedgeKey {
		t.Fatalf("root span = %+v, want serve-coop on coop2:82", root)
	}

	arms := make(map[string]telemetry.Span)
	for _, sp := range children[root.ID] {
		arms[sp.Op] = sp
	}
	fh, ok := arms["fetch-home"]
	if !ok || fh.Peer != "home:80" || fh.Status != 200 {
		t.Fatalf("fetch-home arm = %+v (children: %+v)", fh, children[root.ID])
	}
	hg, ok := arms["fetch-hedge"]
	if !ok || hg.Peer != "coop1:81" || hg.Status != 404 {
		t.Fatalf("fetch-hedge arm = %+v (children: %+v)", hg, children[root.ID])
	}

	// Each arm's remote serve span hangs off the RPC span that caused it.
	if cs := children[fh.ID]; len(cs) != 1 || cs[0].Op != "serve-fetch" || cs[0].Server != "home:80" {
		t.Fatalf("fetch-home children = %+v, want one serve-fetch on home:80", cs)
	}
	if cs := children[hg.ID]; len(cs) != 1 || cs[0].Op != "serve-coop" || cs[0].Server != "coop1:81" || cs[0].Status != 404 {
		t.Fatalf("fetch-hedge children = %+v, want one 404 serve-coop on coop1:81", cs)
	}

	// The uninvolved fourth server contributed nothing to the trace.
	if got := fourth.spansForTrace("hedge-trace-1"); len(got) != 0 {
		t.Fatalf("fourth server has spans: %+v", got)
	}
}

// TestExemplarsResolveInRing is the satellite property test: every
// latency exemplar carried by the metrics exposition must name a trace
// that is still resolvable in that server's span rings — an exemplar an
// operator cannot follow to its trace is worse than none.
func TestExemplarsResolveInRing(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	coop := w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	for i := 0; i < 8; i++ {
		w.get("home:80", "/index.html")
		w.get("coop:81", "/~migrate/home/80/page.html")
	}

	for _, srv := range []*Server{home, coop} {
		resp := w.get(srv.Addr(), "/~dcws/metrics")
		if resp.Status != 200 {
			t.Fatalf("metrics on %s = %d", srv.Addr(), resp.Status)
		}
		ids := exemplarTraceIDs(t, string(resp.Body))
		if len(ids) == 0 {
			t.Fatalf("%s exposition carries no exemplars:\n%s", srv.Addr(), resp.Body)
		}
		for _, id := range ids {
			if spans := srv.spansForTrace(id); len(spans) == 0 {
				t.Errorf("%s exemplar trace %q resolves to no spans", srv.Addr(), id)
			}
		}
	}
}

// exemplarTraceIDs extracts the trace_id of every OpenMetrics-style
// exemplar ("... # {trace_id=\"...\"} <value>") in an exposition.
func exemplarTraceIDs(t *testing.T, body string) []string {
	t.Helper()
	var ids []string
	for _, line := range strings.Split(body, "\n") {
		idx := strings.Index(line, " # {")
		if idx < 0 {
			continue
		}
		ex := line[idx+len(" # {"):]
		end := strings.IndexByte(ex, '}')
		if end < 0 || strings.TrimSpace(ex[end+1:]) == "" {
			t.Fatalf("malformed exemplar line %q", line)
		}
		kv := ex[:end]
		const pre = `trace_id="`
		if !strings.HasPrefix(kv, pre) || !strings.HasSuffix(kv, `"`) {
			t.Fatalf("malformed exemplar labels %q in %q", kv, line)
		}
		ids = append(ids, strings.TrimSuffix(strings.TrimPrefix(kv, pre), `"`))
	}
	return ids
}

// TestSLOBurnAlertCapturesProfiles drives the burn-rate watcher through a
// synthetic incident on the manual clock: a clean baseline, then a burst
// of latency violations, then two ticks a short window apart. The watcher
// must alert in both windows, capture pprof pairs into the profile ring,
// prune the ring at its bound, and serve the captures at /~dcws/profiles.
func TestSLOBurnAlertCapturesProfiles(t *testing.T) {
	dir := t.TempDir()
	w := newWorld(t)
	srv := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{
		SLOWindowShort:    time.Minute,
		SLOWindowLong:     10 * time.Minute,
		SLOProfileSeconds: 10 * time.Millisecond,
		ProfileRingSize:   1,
	})
	srv.cfg.ProfileDir = dir

	srv.TickSLO() // clean baseline sample
	if st := srv.Status().SLO; st.Alerting || st.Checks != 1 {
		t.Fatalf("baseline SLO status = %+v", st)
	}

	// A burst of serves far above the 250ms default target: burn rate
	// (1.0 violations / 0.001 budget) dwarfs the threshold in any window.
	for i := 0; i < 50; i++ {
		srv.tel.serveHome.ObserveTrace(time.Second, fmt.Sprintf("burn-%d", i))
	}
	w.clock.Advance(time.Minute)
	srv.TickSLO()

	st := srv.Status().SLO
	if !st.Alerting || st.Alerts != 1 {
		t.Fatalf("SLO status after burst = %+v, want alerting", st)
	}
	op, ok := st.Ops["home"]
	if !ok || !op.Alerting || op.BurnShort < srv.params.SLOBurnThreshold || op.BurnLong < srv.params.SLOBurnThreshold {
		t.Fatalf("home op state = %+v, want both windows burning", op)
	}
	if op.P99Seconds < 0.5 {
		t.Fatalf("home p99 = %v, want ~1s", op.P99Seconds)
	}
	waitForProfiles(t, srv, 1)

	// A second alerting tick one short window later: the cooldown admits a
	// second capture, and the ring (ProfileRingSize=1 -> 2 files) prunes
	// the first pair.
	for i := 0; i < 50; i++ {
		srv.tel.serveHome.ObserveTrace(time.Second, fmt.Sprintf("burn2-%d", i))
	}
	w.clock.Advance(time.Minute)
	srv.TickSLO()
	waitForProfiles(t, srv, 2)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) > 2 {
		t.Fatalf("profile ring not pruned: %v", names)
	}
	var heap string
	for _, n := range names {
		if strings.HasSuffix(n, "-heap.pprof") {
			heap = n
		}
	}
	if heap == "" {
		t.Fatalf("no heap capture on disk: %v", names)
	}

	// The ring is served over HTTP: a listing, the raw bytes, and a 404
	// for traversal attempts.
	if resp := w.get("home:80", "/~dcws/profiles"); resp.Status != 200 || !strings.Contains(string(resp.Body), heap) {
		t.Fatalf("profiles listing = %d %q", resp.Status, resp.Body)
	}
	data, err := os.ReadFile(filepath.Join(dir, heap))
	if err != nil {
		t.Fatal(err)
	}
	if resp := w.get("home:80", "/~dcws/profiles/"+heap); resp.Status != 200 || len(resp.Body) != len(data) {
		t.Fatalf("profile fetch = %d, %d bytes, want %d", resp.Status, len(resp.Body), len(data))
	}
	if resp := w.get("home:80", "/~dcws/profiles/..%2fescape"); resp.Status != 404 {
		t.Fatalf("traversal fetch = %d, want 404", resp.Status)
	}
}

// waitForProfiles polls until the watcher has completed n capture rounds
// (captures run on their own goroutine for the CPU-profile duration).
func waitForProfiles(t *testing.T, srv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Status().SLO.Profiles < n {
		if time.Now().After(deadline) {
			t.Fatalf("profiles = %d after 5s, want %d", srv.Status().SLO.Profiles, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecoverySpansRecorded: a crash-restart with a WAL must leave a
// recovery trace in the new process — a root span with snapshot-load,
// replay, and reconcile children — so cold-start cost is inspectable at
// /~dcws/trace like any other operation.
func TestRecoverySpansRecorded(t *testing.T) {
	w := newWorld(t)
	homeStore := store.NewMem()
	for name, body := range siteAB() {
		if err := homeStore.Put(name, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	home := w.bootServer("home", 80, homeStore, []string{"/index.html"}, Params{}, t.TempDir()+"/wal")
	w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	if resp := w.get("coop:81", "/~migrate/home/80/page.html"); resp.Status != 200 {
		t.Fatalf("pull = %d", resp.Status)
	}
	if err := home.Abort(); err != nil { // kill -9: recovery must replay
		t.Fatal(err)
	}

	restarted := w.bootServer("home", 80, homeStore, []string{"/index.html"}, Params{}, home.cfg.WALDir)
	if !restarted.Recovery().Recovered {
		t.Fatal("restart did not recover from the WAL")
	}
	var root *telemetry.Span
	phases := make(map[string]telemetry.Span)
	spans := restarted.Traces().Snapshot()
	for i, sp := range spans {
		switch sp.Op {
		case "recovery":
			root = &spans[i]
		case "snapshot-load", "replay", "reconcile":
			phases[sp.Op] = sp
		}
	}
	if root == nil {
		t.Fatalf("no recovery span after restart: %+v", spans)
	}
	if root.Duration <= 0 || root.ParentID != "" {
		t.Fatalf("recovery root = %+v", root)
	}
	for _, op := range []string{"snapshot-load", "replay", "reconcile"} {
		ph, ok := phases[op]
		if !ok {
			t.Fatalf("recovery trace missing %s phase: %+v", op, spans)
		}
		if ph.ParentID != root.ID || ph.TraceID != root.TraceID {
			t.Fatalf("%s phase not parented on the recovery root: %+v", op, ph)
		}
	}
}
