// Package dcws implements the Distributed Cooperative Web Server — the
// paper's primary contribution. A Server is simultaneously a home server
// for its own documents and a potential co-op server for any peer (§3.3:
// "fully symmetric"). Load balancing is achieved by migrating documents
// between servers and dynamically rewriting the hyperlinks that reach
// them; no router, DNS trick, or shared filesystem is involved.
package dcws

import "time"

// Params collects every tunable of the system. Defaults reproduce Table 1
// of the paper exactly.
type Params struct {
	// Workers is the number of worker threads, N_wk.
	Workers int
	// QueueLength is the socket queue length for backlogged requests,
	// L_sq. Overflow is dropped gracefully with 503.
	QueueLength int
	// StatsInterval is the statistics re-calculation interval, T_st. It
	// also paces migrations: at most one document leaves a home server
	// per statistics interval.
	StatsInterval time.Duration
	// PingerInterval is the pinger thread activation interval, T_pi.
	PingerInterval time.Duration
	// ValidateInterval is the co-op document validation interval, T_val.
	ValidateInterval time.Duration
	// HomeReMigrateInterval is the home server document re-migration
	// interval, T_home: how old a migration must be before the home
	// server may abandon it and re-migrate the document elsewhere.
	HomeReMigrateInterval time.Duration
	// CoopMigrateInterval is the minimum time between migrations into the
	// same co-op server, T_coop.
	CoopMigrateInterval time.Duration

	// MigrationThreshold is Algorithm 1's load threshold T: the minimum
	// window hit count that justifies migrating a document.
	MigrationThreshold int64
	// ImbalanceRatio triggers migration: the home server migrates only
	// while its load exceeds the least-loaded peer's load by this factor.
	ImbalanceRatio float64
	// UseBPSMetric selects bytes-per-second as the load metric instead of
	// connections-per-second (recommended by §5.3 for large-file data
	// sets such as Sequoia).
	UseBPSMetric bool
	// MaxPingFailures is how many consecutive failed pinger probes mark a
	// co-op server down, triggering recall of its documents.
	MaxPingFailures int
	// RateWindow is the sliding window for the CPS/BPS load metrics.
	RateWindow time.Duration

	// Replicate enables the hot-spot replication extension (§6 future
	// work): documents whose observed load exceeds ReplicateThreshold
	// window hits are replicated to additional co-op servers, and
	// regenerated hyperlinks rotate across the replicas.
	Replicate bool
	// ReplicateThreshold is the per-window hit count above which a
	// migrated document is considered a hot spot.
	ReplicateThreshold int64
	// MaxReplicas caps how many co-op servers may host one document.
	MaxReplicas int

	// CoopCacheBytes bounds the disk space this server devotes to hosting
	// other servers' documents. 0 means unlimited. When the budget is
	// exceeded the least-recently-used hosted copy is discarded — §4.5:
	// "a co-op server should not throw away any data until absolutely
	// necessary (i.e. lack of disk space)". An evicted document is simply
	// re-fetched lazily on its next request.
	CoopCacheBytes int64

	// MaintenanceTimeout bounds each maintenance RPC (pinger probe,
	// validation re-request). It must be well below PingerInterval so a
	// slow peer cannot stall a whole pinger round; the default is 5 s
	// against the Table 1 T_pi of 20 s.
	MaintenanceTimeout time.Duration
	// FetchTimeout bounds each individual attempt of a lazy-migration
	// fetch from a home server (default 10 s).
	FetchTimeout time.Duration
	// FetchAttempts is the total number of tries for a lazy-migration
	// fetch before the co-op answers 503 (default 3). Retries back off
	// exponentially from RetryBaseDelay.
	FetchAttempts int
	// ProbeAttempts is the number of tries per pinger probe inside one
	// pinger tick (default 2): a single dropped SYN must not count as a
	// failed round toward MaxPingFailures.
	ProbeAttempts int
	// RetryBaseDelay is the backoff after the first failed attempt of a
	// retried RPC; subsequent attempts double it up to RetryMaxDelay,
	// with deterministic per-peer jitter. A negative value disables
	// inter-attempt delays (deterministic tests on manual clocks).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the exponential backoff (default 2 s).
	RetryMaxDelay time.Duration
	// BreakerThreshold is how many consecutive RPC failures against one
	// peer trip its circuit breaker (default 5). While the breaker is
	// open, fetches degrade to fast 503s instead of tying up workers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open trial call (default 30 s).
	BreakerCooldown time.Duration

	// QueueLoadFactor folds the socket-queue depth into the advertised
	// load metric: load = CPS (or BPS) + QueueLoadFactor × queued
	// connections. A server whose sliding-window rate looks low but whose
	// queue is backing up (slow disk, GC pause) thereby stops attracting
	// migrations before it starts dropping requests. Default 1; negative
	// disables the queue term.
	QueueLoadFactor float64
	// RenderCacheBytes bounds the in-memory rendered-document cache
	// (home-form and migration-prepared copies keyed by LDG generation).
	// Default 64 MiB; negative disables caching.
	RenderCacheBytes int64

	// HedgeDelay is how long a lazy-migration fetch waits on the home
	// server before racing a known sibling replica for the same document
	// (first usable response wins, the loser is canceled). Default 250 ms;
	// negative disables hedging.
	HedgeDelay time.Duration
	// PoolMaxIdlePerPeer caps idle keep-alive connections kept per peer
	// for inter-server RPCs (default 4; negative disables reuse).
	PoolMaxIdlePerPeer int
	// PoolIdleTimeout retires a pooled connection unused this long
	// (default 30 s; negative keeps idle conns indefinitely).
	PoolIdleTimeout time.Duration
	// PoolMaxLifetime retires a pooled connection this long after dial
	// regardless of use (default 5 m; negative means no lifetime cap).
	PoolMaxLifetime time.Duration

	// LoadQuantum rounds the load advertised in piggybacked X-DCWS-Load
	// headers to the nearest multiple, so the header — and its cached
	// encoding — stays stable while the true load wobbles within one step.
	// Migration decisions still use the raw metric. Default 1 load unit;
	// negative advertises the raw value.
	LoadQuantum float64
	// PiggybackRefresh throttles self-entry refreshes on the serve path:
	// when the quantized load is unchanged and the entry is younger than
	// this, the table (and the encoded header) is left alone. Default 1 s;
	// negative re-stamps the entry on every response.
	PiggybackRefresh time.Duration
	// TraceRingSize bounds the in-memory ring of recent trace spans
	// (default 512).
	TraceRingSize int

	// MaxPiggybackEntries caps how many load entries one inter-server
	// X-DCWS-Load delta may carry, keeping header size near-constant as
	// the cluster grows; entries the peer has not acked queue stalest-
	// first for later responses. Default 12; negative removes the cap.
	MaxPiggybackEntries int
	// AntiEntropyInterval paces the full-table gossip exchange that
	// backstops delta piggybacking: each round, the server swaps complete
	// tables with the peer whose last full exchange is oldest, so dropped
	// deltas and restarted peers reconverge within one sweep. Default
	// 60 s; negative disables anti-entropy.
	AntiEntropyInterval time.Duration
	// MetricsSeriesLimit caps how many series any one metric family may
	// emit per /~dcws/metrics scrape; overflow is counted in
	// telemetry_series_dropped_total instead of unboundedly growing the
	// exposition with per-peer labels at cluster scale. Default 1024;
	// negative removes the cap.
	MetricsSeriesLimit int

	// WALSync selects the write-ahead-log fsync policy when Config.WALDir
	// is set: "always" fsyncs every append (group-committed), "interval"
	// fsyncs on a timer (default), "none" never fsyncs (the OS page cache
	// is the only durability; a process crash still loses nothing because
	// appends are single write(2) calls).
	WALSync string
	// WALSyncInterval paces background fsyncs under the "interval" policy
	// (default 100 ms).
	WALSyncInterval time.Duration
	// WALSegmentBytes rotates the active WAL segment once it exceeds this
	// size (default 16 MiB).
	WALSegmentBytes int64
	// SnapshotInterval paces full-state snapshots that bound recovery
	// replay time and let old WAL segments be pruned. Default 5 m;
	// negative disables periodic snapshots (one is still written on clean
	// shutdown).
	SnapshotInterval time.Duration

	// PlacementMaxStaleness bounds how old a peer's load-table entry may
	// be before migration and replication stop selecting that peer: a
	// stale entry means gossip from the peer has dried up, so its
	// advertised load — possibly a long-gone idle reading — must not
	// attract documents. Entries with no timestamp (statically configured
	// peers never heard from) are exempt, as first contact happens through
	// placement probes. Default 60 s; negative disables the check.
	PlacementMaxStaleness time.Duration

	// HotReplicateRate is the proactive-replication trigger: when the
	// EWMA of a document's serve rate (hits per second, home serves plus
	// coop-reported hits) crosses this threshold, the home pushes the
	// rendered bytes to HotReplicaCount co-op servers along a CDTP-style
	// dissemination chain instead of waiting for lazy per-coop fetches.
	// Default 50 hits/s; negative disables proactive chain replication
	// (the reactive Replicate extension is independent).
	HotReplicateRate float64
	// HotReplicaCount is k: how many replicas a chain-replicated hot
	// document is brought up to in one dissemination round (default 2).
	HotReplicaCount int
	// ReplicateTimeout bounds each link of a chain push — the home's
	// upload to the chain head, and each relay hop — so one slow link
	// cannot stall the whole dissemination (default 10 s).
	ReplicateTimeout time.Duration

	// LeaseDuration enables push invalidation with leases, the extension
	// that retires the polling validator's steady-state traffic: each
	// co-op opens one long-lived subscription channel per home server and
	// every hosted copy holds a lease of this duration, renewed implicitly
	// by channel liveness. While a copy's subscription channel is live and
	// its lease unexpired, the home pushes invalidation frames on every
	// update/revoke/migration and the periodic validator skips the copy
	// entirely; when the channel drops or the lease runs out, the co-op
	// degrades to the paper's §4.5 timeout-polled validation, so a
	// partitioned node is never less safe than the base design. Zero
	// disables the extension (pure polling, the paper's behaviour).
	LeaseDuration time.Duration
	// InvalidateHeartbeat paces the subscription channel's keepalive
	// frames; a peer silent for three heartbeats is considered gone and
	// the channel is torn down for reconnection. Zero derives
	// LeaseDuration/4 — so a silent partition is detected, and polling
	// resumed, before the lease expires; negative disables heartbeats
	// (tests that drive frames by hand).
	InvalidateHeartbeat time.Duration

	// Zone is this server's topology label (rack, availability zone,
	// datacenter — whatever locality the operator cares about). It is
	// gossiped alongside the load entry, and placement (migration, chain
	// replication, hedge siblings, link rewriting) prefers same-zone
	// targets, spilling across zones only when local headroom is
	// exhausted. Empty disables zone preference.
	Zone string
	// CapacitySmoothing is the EWMA weight for the continuously-measured
	// service capacity: each statistics interval the achievable
	// throughput implied by the serve-latency histograms is folded into
	// the calibrated capacity with this weight. The capacity divides the
	// advertised load, so the gossiped figure is a fraction of capacity
	// and placement ranks peers by absolute headroom instead of raw
	// load — what makes least-loaded policies work on heterogeneous
	// fleets. Default 0.2; negative disables capacity normalization
	// entirely (raw loads on the wire, the paper's homogeneous-testbed
	// behaviour).
	CapacitySmoothing float64

	// SlowTraceThreshold marks a span slow: any span at least this long —
	// and any span that ended in an error — is copied into the tail-
	// retention ring, which only such spans compete for, so the evidence
	// of a p99 spike survives long after the main trace ring has wrapped.
	// Default 500 ms; negative disables slow capture (error spans are
	// still retained).
	SlowTraceThreshold time.Duration
	// TailRingSize bounds the tail-retention ring (default 256 spans).
	TailRingSize int

	// SLOLatencyTarget is the per-request latency objective: a request
	// answered within this duration is "good" for burn-rate accounting
	// (default 250 ms).
	SLOLatencyTarget time.Duration
	// SLOLatencyObjective is the fraction of requests that must meet
	// SLOLatencyTarget (default 0.999); 1 - objective is the error
	// budget the burn rate is measured against.
	SLOLatencyObjective float64
	// SLOMaxShedRate is the shed-rate objective: the tolerated fraction
	// of connections dropped by the overload gate (default 0.01).
	SLOMaxShedRate float64
	// SLOBurnThreshold is the multi-window burn-rate alarm level: the
	// watcher alerts (and captures profiles) only while BOTH the short
	// and the long window burn their error budget at at least this
	// multiple of the sustainable rate — the standard fast-burn pattern
	// that ignores one-off blips but catches sustained regressions.
	// Default 4.
	SLOBurnThreshold float64
	// SLOWindowShort is the fast burn-rate window (default 1 m).
	SLOWindowShort time.Duration
	// SLOWindowLong is the slow burn-rate window (default 10 m).
	SLOWindowLong time.Duration
	// SLOCheckInterval paces the SLO watcher's rolling-window evaluation
	// (default 10 s; negative disables the watcher).
	SLOCheckInterval time.Duration
	// SLOProfileSeconds is how long an auto-captured CPU profile runs
	// once sustained burn is detected (default 5 s).
	SLOProfileSeconds time.Duration
	// ProfileRingSize bounds the on-disk ring of auto-captured profile
	// pairs (cpu+heap) under Config.ProfileDir; older captures are
	// deleted as new ones land (default 4 pairs).
	ProfileRingSize int
}

// DefaultParams returns the configuration of Table 1: 12 worker threads, a
// socket queue of 100, statistics every 10 s, pinger every 20 s, validation
// every 120 s, re-migration after 300 s, and at most one migration into a
// co-op server per 60 s.
func DefaultParams() Params {
	return Params{
		Workers:               12,
		QueueLength:           100,
		StatsInterval:         10 * time.Second,
		PingerInterval:        20 * time.Second,
		ValidateInterval:      120 * time.Second,
		HomeReMigrateInterval: 300 * time.Second,
		CoopMigrateInterval:   60 * time.Second,
		MigrationThreshold:    10,
		ImbalanceRatio:        1.2,
		MaxPingFailures:       3,
		RateWindow:            10 * time.Second,
		ReplicateThreshold:    200,
		MaxReplicas:           4,
		MaintenanceTimeout:    5 * time.Second,
		FetchTimeout:          10 * time.Second,
		FetchAttempts:         3,
		ProbeAttempts:         2,
		RetryBaseDelay:        50 * time.Millisecond,
		RetryMaxDelay:         2 * time.Second,
		BreakerThreshold:      5,
		BreakerCooldown:       30 * time.Second,
		HedgeDelay:            250 * time.Millisecond,
		PoolMaxIdlePerPeer:    4,
		PoolIdleTimeout:       30 * time.Second,
		PoolMaxLifetime:       5 * time.Minute,
		QueueLoadFactor:       1,
		RenderCacheBytes:      64 << 20,
		LoadQuantum:           1,
		PiggybackRefresh:      time.Second,
		TraceRingSize:         512,
		MaxPiggybackEntries:   12,
		AntiEntropyInterval:   60 * time.Second,
		MetricsSeriesLimit:    1024,
		WALSync:               "interval",
		WALSyncInterval:       100 * time.Millisecond,
		WALSegmentBytes:       16 << 20,
		SnapshotInterval:      5 * time.Minute,
		PlacementMaxStaleness: 60 * time.Second,
		HotReplicateRate:      50,
		HotReplicaCount:       2,
		ReplicateTimeout:      10 * time.Second,
		CapacitySmoothing:     0.2,
		SlowTraceThreshold:    500 * time.Millisecond,
		TailRingSize:          256,
		SLOLatencyTarget:      250 * time.Millisecond,
		SLOLatencyObjective:   0.999,
		SLOMaxShedRate:        0.01,
		SLOBurnThreshold:      4,
		SLOWindowShort:        time.Minute,
		SLOWindowLong:         10 * time.Minute,
		SLOCheckInterval:      10 * time.Second,
		SLOProfileSeconds:     5 * time.Second,
		ProfileRingSize:       4,
	}
}

// withDefaults fills any zero field with its Table 1 default.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Workers <= 0 {
		p.Workers = d.Workers
	}
	if p.QueueLength <= 0 {
		p.QueueLength = d.QueueLength
	}
	if p.StatsInterval <= 0 {
		p.StatsInterval = d.StatsInterval
	}
	if p.PingerInterval <= 0 {
		p.PingerInterval = d.PingerInterval
	}
	if p.ValidateInterval <= 0 {
		p.ValidateInterval = d.ValidateInterval
	}
	if p.HomeReMigrateInterval <= 0 {
		p.HomeReMigrateInterval = d.HomeReMigrateInterval
	}
	if p.CoopMigrateInterval <= 0 {
		p.CoopMigrateInterval = d.CoopMigrateInterval
	}
	if p.MigrationThreshold <= 0 {
		p.MigrationThreshold = d.MigrationThreshold
	}
	if p.ImbalanceRatio <= 0 {
		p.ImbalanceRatio = d.ImbalanceRatio
	}
	if p.MaxPingFailures <= 0 {
		p.MaxPingFailures = d.MaxPingFailures
	}
	if p.RateWindow <= 0 {
		p.RateWindow = d.RateWindow
	}
	if p.ReplicateThreshold <= 0 {
		p.ReplicateThreshold = d.ReplicateThreshold
	}
	if p.MaxReplicas <= 0 {
		p.MaxReplicas = d.MaxReplicas
	}
	if p.MaintenanceTimeout <= 0 {
		p.MaintenanceTimeout = d.MaintenanceTimeout
	}
	if p.FetchTimeout <= 0 {
		p.FetchTimeout = d.FetchTimeout
	}
	if p.FetchAttempts <= 0 {
		p.FetchAttempts = d.FetchAttempts
	}
	if p.ProbeAttempts <= 0 {
		p.ProbeAttempts = d.ProbeAttempts
	}
	// RetryBaseDelay keeps negative values: they mean "retry with no
	// delay", which manual-clock harnesses depend on.
	if p.RetryBaseDelay == 0 {
		p.RetryBaseDelay = d.RetryBaseDelay
	}
	if p.RetryMaxDelay <= 0 {
		p.RetryMaxDelay = d.RetryMaxDelay
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = d.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	// HedgeDelay and the pool knobs keep negative values: they mean
	// "feature disabled" (no hedging, no idle retention, no expiry).
	if p.HedgeDelay == 0 {
		p.HedgeDelay = d.HedgeDelay
	}
	if p.PoolMaxIdlePerPeer == 0 {
		p.PoolMaxIdlePerPeer = d.PoolMaxIdlePerPeer
	}
	if p.PoolIdleTimeout == 0 {
		p.PoolIdleTimeout = d.PoolIdleTimeout
	}
	if p.PoolMaxLifetime == 0 {
		p.PoolMaxLifetime = d.PoolMaxLifetime
	}
	// QueueLoadFactor, RenderCacheBytes, LoadQuantum, and PiggybackRefresh
	// keep negative values: they mean "feature disabled".
	if p.QueueLoadFactor == 0 {
		p.QueueLoadFactor = d.QueueLoadFactor
	}
	if p.RenderCacheBytes == 0 {
		p.RenderCacheBytes = d.RenderCacheBytes
	}
	if p.LoadQuantum == 0 {
		p.LoadQuantum = d.LoadQuantum
	}
	if p.PiggybackRefresh == 0 {
		p.PiggybackRefresh = d.PiggybackRefresh
	}
	if p.TraceRingSize <= 0 {
		p.TraceRingSize = d.TraceRingSize
	}
	// MaxPiggybackEntries, AntiEntropyInterval, and MetricsSeriesLimit
	// keep negative values: they mean "uncapped" / "disabled".
	if p.MaxPiggybackEntries == 0 {
		p.MaxPiggybackEntries = d.MaxPiggybackEntries
	}
	if p.AntiEntropyInterval == 0 {
		p.AntiEntropyInterval = d.AntiEntropyInterval
	}
	if p.MetricsSeriesLimit == 0 {
		p.MetricsSeriesLimit = d.MetricsSeriesLimit
	}
	if p.WALSync == "" {
		p.WALSync = d.WALSync
	}
	if p.WALSyncInterval <= 0 {
		p.WALSyncInterval = d.WALSyncInterval
	}
	if p.WALSegmentBytes <= 0 {
		p.WALSegmentBytes = d.WALSegmentBytes
	}
	// SnapshotInterval and PlacementMaxStaleness keep negative values:
	// they mean "feature disabled".
	if p.SnapshotInterval == 0 {
		p.SnapshotInterval = d.SnapshotInterval
	}
	if p.PlacementMaxStaleness == 0 {
		p.PlacementMaxStaleness = d.PlacementMaxStaleness
	}
	// HotReplicateRate keeps negative values: they mean "proactive chain
	// replication disabled".
	if p.HotReplicateRate == 0 {
		p.HotReplicateRate = d.HotReplicateRate
	}
	if p.HotReplicaCount <= 0 {
		p.HotReplicaCount = d.HotReplicaCount
	}
	if p.ReplicateTimeout <= 0 {
		p.ReplicateTimeout = d.ReplicateTimeout
	}
	// CapacitySmoothing keeps negative values: they mean "capacity
	// normalization disabled" (raw loads gossiped, legacy behaviour).
	// Zone keeps its zero value: empty means "unzoned".
	if p.CapacitySmoothing == 0 {
		p.CapacitySmoothing = d.CapacitySmoothing
	}
	// LeaseDuration keeps its zero value: zero means "push invalidation
	// disabled" — the extension is opt-in, like Replicate, because the
	// paper's design has no leases. InvalidateHeartbeat zero derives from
	// LeaseDuration at use; negative means "no heartbeats".

	// SlowTraceThreshold and SLOCheckInterval keep negative values: they
	// mean "slow capture off" / "watcher disabled".
	if p.SlowTraceThreshold == 0 {
		p.SlowTraceThreshold = d.SlowTraceThreshold
	}
	if p.TailRingSize <= 0 {
		p.TailRingSize = d.TailRingSize
	}
	if p.SLOLatencyTarget <= 0 {
		p.SLOLatencyTarget = d.SLOLatencyTarget
	}
	if p.SLOLatencyObjective <= 0 || p.SLOLatencyObjective >= 1 {
		p.SLOLatencyObjective = d.SLOLatencyObjective
	}
	if p.SLOMaxShedRate <= 0 || p.SLOMaxShedRate > 1 {
		p.SLOMaxShedRate = d.SLOMaxShedRate
	}
	if p.SLOBurnThreshold <= 0 {
		p.SLOBurnThreshold = d.SLOBurnThreshold
	}
	if p.SLOWindowShort <= 0 {
		p.SLOWindowShort = d.SLOWindowShort
	}
	if p.SLOWindowLong <= p.SLOWindowShort {
		p.SLOWindowLong = d.SLOWindowLong
		if p.SLOWindowLong <= p.SLOWindowShort {
			p.SLOWindowLong = 10 * p.SLOWindowShort
		}
	}
	if p.SLOCheckInterval == 0 {
		p.SLOCheckInterval = d.SLOCheckInterval
	}
	if p.SLOProfileSeconds <= 0 {
		p.SLOProfileSeconds = d.SLOProfileSeconds
	}
	if p.ProfileRingSize <= 0 {
		p.ProfileRingSize = d.ProfileRingSize
	}
	return p
}
