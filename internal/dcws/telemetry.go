package dcws

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/metrics"
	"dcws/internal/resilience"
	"dcws/internal/telemetry"
	"dcws/internal/wal"
)

// serverTelemetry owns one server's metrics registry and trace-span ring
// and implements httpx.Observer so the wire layer reports into it. Hot-path
// series (request counters, latency histograms) are plain fields observed
// directly; everything the server already counts elsewhere (ServerStats,
// the render cache, the GLT, the breaker registry) is promoted into the
// registry as scrape-time functions by bindServer, so no existing counter
// had to be rewritten to become scrapeable.
type serverTelemetry struct {
	reg  *telemetry.Registry
	ring *telemetry.Ring
	// tail is the tail-retention ring: every span that ended in an error,
	// and every span at least slowThreshold long, is copied here. Only
	// such spans compete for tail slots, so the evidence of a tail-latency
	// incident survives long after ordinary traffic has wrapped the main
	// ring. slowThreshold < 0 disables the slow criterion (errors are
	// still kept).
	tail          *telemetry.Ring
	slowThreshold time.Duration

	// httpx layer (fed by the Observer callbacks).
	queued     *telemetry.Counter
	shed       *telemetry.Counter
	bytesIn    *telemetry.Counter
	bytesOut   *telemetry.Counter
	queueWait  *metrics.Histogram
	reqSeconds *metrics.Histogram
	respCodes  sync.Map // int -> *telemetry.Counter

	// dcws serving layer.
	serveHome    *metrics.Histogram
	serveCoop    *metrics.Histogram
	serveFetch   *metrics.Histogram
	regenSeconds *metrics.Histogram

	// Maintenance threads.
	migrations      *telemetry.Counter
	revokes         *telemetry.Counter
	recalls         *telemetry.Counter
	replications    *telemetry.Counter
	declaredDown    *telemetry.Counter
	validatorPasses *telemetry.Counter
	// antiEntropyRounds counts full-table gossip exchanges initiated by
	// this server's anti-entropy thread.
	antiEntropyRounds *telemetry.Counter

	// Hedged lazy-migration fetches. Every launched hedge ends up counted
	// exactly once: won (sibling answered 200 first), miss (sibling
	// answered but had no usable copy), or wasted (the primary prevailed
	// over an in-flight or failed hedge leg). The miss/wasted split keeps
	// HedgeDelay tunable: misses mean the sibling list is stale, wasted
	// legs mean the delay fires too early.
	hedgeLaunched *telemetry.Counter
	hedgeWon      *telemetry.Counter
	hedgeMiss     *telemetry.Counter
	hedgeWasted   *telemetry.Counter

	// Proactive chain replication. pushes/pushBytes measure the home's
	// upload cost (the number the chain exists to keep flat); relays and
	// stored count the work the co-op side absorbs; chainSkips count dead
	// links promoted past. Revocation reuses the chain: revokeChains are
	// chain-ordered fan-outs, revokeFallbacks the per-peer revokes still
	// needed for hosts the chain did not reach.
	replicateHotTriggers     *telemetry.Counter
	replicatePushes          *telemetry.Counter
	replicatePushBytes       *telemetry.Counter
	replicateRelays          *telemetry.Counter
	replicateStored          *telemetry.Counter
	replicateChainSkips      *telemetry.Counter
	replicateRevokeChains    *telemetry.Counter
	replicateRevokeFallbacks *telemetry.Counter

	// Adaptive anti-entropy cadence: rounds skipped because piggyback
	// deltas already had every peer current, and rounds forced back to the
	// floor interval by churn.
	aeSkipped *telemetry.Counter
	aeForced  *telemetry.Counter

	// Push invalidation with leases. On the home: pushes sent and acks
	// received. On the co-op: frames received, reconnect attempts, copies
	// skipped by the validator under lease cover vs polls actually issued,
	// and requests failed closed on an expired lease with the home
	// unreachable. replicateShrinks counts chains partially shrunk by the
	// warm-document T_home path.
	invalPushes       *telemetry.Counter
	invalAcks         *telemetry.Counter
	invalReceived     *telemetry.Counter
	invalReconnects   *telemetry.Counter
	invalLeaseExpired *telemetry.Counter
	invalLeaseSkips   *telemetry.Counter
	validatePolls     *telemetry.Counter
	replicateShrinks  *telemetry.Counter

	// Batched and version-numbered invalidation frames: multi-document
	// frames sent (and how many docs they carried), sequence gaps a co-op
	// detected on a live channel, and the inventory resyncs those gaps
	// triggered.
	invalBatches   *telemetry.Counter
	invalBatchDocs *telemetry.Counter
	invalGaps      *telemetry.Counter

	// Digest anti-entropy: push-pull digest rounds completed by this
	// requester, digest requests answered as responder, stripes of entries
	// shipped in either direction, push-back third legs, and rounds that
	// fell back to the legacy full exchange against a pre-digest peer.
	digestRounds     *telemetry.Counter
	digestResponses  *telemetry.Counter
	digestShardsSent *telemetry.Counter
	digestPushbacks  *telemetry.Counter
	digestFallbacks  *telemetry.Counter
}

func newServerTelemetry(ringSize, tailSize int, slowThreshold time.Duration) *serverTelemetry {
	reg := telemetry.NewRegistry()
	t := &serverTelemetry{
		reg:           reg,
		ring:          telemetry.NewRing(ringSize),
		tail:          telemetry.NewRing(tailSize),
		slowThreshold: slowThreshold,
	}

	t.queued = reg.Counter("dcws_httpx_connections_queued_total",
		"accepted connections that entered the socket queue")
	t.shed = reg.Counter("dcws_httpx_connections_shed_total",
		"connections answered 503 because the socket queue was full")
	t.bytesIn = reg.Counter("dcws_httpx_bytes_in_total",
		"bytes read from client connections")
	t.bytesOut = reg.Counter("dcws_httpx_bytes_out_total",
		"bytes written to client connections")
	t.queueWait = reg.Histogram("dcws_httpx_queue_wait_seconds",
		"time accepted connections waited in the socket queue for a worker")
	t.reqSeconds = reg.Histogram("dcws_httpx_request_seconds",
		"request-parsed to response-written latency at the wire layer")

	t.serveHome = reg.Histogram("dcws_serve_seconds",
		"document-serving latency by role", telemetry.Label{Key: "kind", Value: "home"})
	t.serveCoop = reg.Histogram("dcws_serve_seconds",
		"document-serving latency by role", telemetry.Label{Key: "kind", Value: "coop"})
	t.serveFetch = reg.Histogram("dcws_serve_seconds",
		"document-serving latency by role", telemetry.Label{Key: "kind", Value: "fetch"})
	t.regenSeconds = reg.Histogram("dcws_regenerate_seconds",
		"hyperlink regeneration cost per dirty document")

	t.migrations = reg.Counter("dcws_migrations_total",
		"documents logically migrated to a co-op server")
	t.revokes = reg.Counter("dcws_revokes_total",
		"documents revoked back to this home server")
	t.recalls = reg.Counter("dcws_recalls_total",
		"recall operations run against a co-op server")
	t.replications = reg.Counter("dcws_replications_total",
		"hot-spot replicas placed on additional co-op servers")
	t.declaredDown = reg.Counter("dcws_peers_declared_down_total",
		"peers declared down after repeated probe failures")
	t.validatorPasses = reg.Counter("dcws_validator_passes_total",
		"co-op validation passes completed")
	t.antiEntropyRounds = reg.Counter("dcws_glt_anti_entropy_rounds_total",
		"full-table gossip exchanges initiated as the delta-piggyback safety net")

	t.hedgeLaunched = reg.Counter("dcws_hedge_launched_total",
		"hedge legs raced against a slow or failing home-server fetch")
	t.hedgeWon = reg.Counter("dcws_hedge_won_total",
		"hedged fetches answered by the sibling replica first")
	t.hedgeMiss = reg.Counter("dcws_hedge_miss_total",
		"hedge probes answered by a sibling that had no usable copy")
	t.hedgeWasted = reg.Counter("dcws_hedge_wasted_total",
		"hedge legs that lost the race to the primary or errored outright")

	t.replicateHotTriggers = reg.Counter("dcws_replicate_hot_triggers_total",
		"documents whose serve-rate EWMA crossed the chain-replication threshold")
	t.replicatePushes = reg.Counter("dcws_replicate_pushes_total",
		"chain uploads sent by this home server (one per dissemination round)")
	t.replicatePushBytes = reg.Counter("dcws_replicate_push_bytes_total",
		"document bytes uploaded by this home server into dissemination chains")
	t.replicateRelays = reg.Counter("dcws_replicate_relays_total",
		"chain pushes this co-op relayed onward to its successor")
	t.replicateStored = reg.Counter("dcws_replicate_stored_total",
		"replica copies stored on this co-op via chain pushes")
	t.replicateChainSkips = reg.Counter("dcws_replicate_chain_skips_total",
		"unreachable chain links skipped during pushes, relays, or revocations")
	t.replicateRevokeChains = reg.Counter("dcws_replicate_revoke_chains_total",
		"revocations fanned out along the replica chain")
	t.replicateRevokeFallbacks = reg.Counter("dcws_replicate_revoke_fallbacks_total",
		"per-peer fallback revokes for hosts the revocation chain missed")

	t.aeSkipped = reg.Counter("dcws_glt_anti_entropy_skipped_total",
		"anti-entropy rounds skipped because every peer had acked the current table")
	t.aeForced = reg.Counter("dcws_glt_anti_entropy_forced_total",
		"anti-entropy backoff resets forced by churn (peer-set change or suspect peers)")

	t.invalPushes = reg.Counter("dcws_invalidate_pushes_total",
		"invalidation frames pushed to subscribed co-ops by this home server")
	t.invalAcks = reg.Counter("dcws_invalidate_acks_total",
		"invalidation acks received back from subscribed co-ops")
	t.invalReceived = reg.Counter("dcws_invalidate_received_total",
		"invalidation frames received over home subscription channels")
	t.invalReconnects = reg.Counter("dcws_invalidate_reconnects_total",
		"subscription channel connect attempts after a failure or drop")
	t.invalLeaseExpired = reg.Counter("dcws_invalidate_lease_expired_total",
		"requests failed closed because the copy's lease expired with the home unreachable")
	t.invalLeaseSkips = reg.Counter("dcws_invalidate_lease_skips_total",
		"validator polls skipped because the copy held a live lease on a live channel")
	t.validatePolls = reg.Counter("dcws_validate_polls_total",
		"conditional-GET validation polls issued by the periodic validator")
	t.replicateShrinks = reg.Counter("dcws_replicate_shrinks_total",
		"replica chains partially shrunk after T_home expiry of a warm document")

	t.invalBatches = reg.Counter("dcws_invalidate_batches_total",
		"multi-document invalidation frames pushed (one per subscriber per storm)")
	t.invalBatchDocs = reg.Counter("dcws_invalidate_batch_docs_total",
		"documents carried inside batched invalidation frames")
	t.invalGaps = reg.Counter("dcws_invalidate_gaps_total",
		"sequence gaps detected on live subscription channels (each forces an inventory resync)")

	t.digestRounds = reg.Counter("dcws_glt_digest_rounds_total",
		"anti-entropy rounds completed via the per-shard digest protocol")
	t.digestResponses = reg.Counter("dcws_glt_digest_responses_total",
		"digest anti-entropy requests answered as the responder")
	t.digestShardsSent = reg.Counter("dcws_glt_digest_shards_sent_total",
		"diverged table stripes whose entries were shipped during digest exchanges")
	t.digestPushbacks = reg.Counter("dcws_glt_digest_pushbacks_total",
		"third-leg pushes of stripes where this side was fresher than the responder")
	t.digestFallbacks = reg.Counter("dcws_glt_digest_fallbacks_total",
		"anti-entropy rounds downgraded to the legacy full exchange (pre-digest peer)")
	return t
}

// record files one finished span: always into the main ring, and into the
// tail-retention ring when it ended in an error or ran slow.
func (t *serverTelemetry) record(sp telemetry.Span) {
	t.ring.Record(sp)
	if sp.Err != "" || (t.slowThreshold >= 0 && sp.Duration >= t.slowThreshold) {
		t.tail.Record(sp)
	}
}

// ConnQueued implements httpx.Observer.
func (t *serverTelemetry) ConnQueued() { t.queued.Inc() }

// ConnDropped implements httpx.Observer.
func (t *serverTelemetry) ConnDropped() { t.shed.Inc() }

// QueueWait implements httpx.Observer.
func (t *serverTelemetry) QueueWait(d time.Duration) { t.queueWait.Observe(d) }

// Request implements httpx.Observer.
func (t *serverTelemetry) Request(status int, in, out int64, d time.Duration) {
	t.reqSeconds.Observe(d)
	t.bytesIn.Add(in)
	t.bytesOut.Add(out)
	t.respCounter(status).Inc()
}

// respCounter returns the per-status-code response counter, caching the
// lookup so the hot path avoids the registry lock after first use.
func (t *serverTelemetry) respCounter(status int) *telemetry.Counter {
	if c, ok := t.respCodes.Load(status); ok {
		return c.(*telemetry.Counter)
	}
	c := t.reg.Counter("dcws_httpx_responses_total",
		"responses written, by HTTP status code",
		telemetry.Label{Key: "code", Value: strconv.Itoa(status)})
	t.respCodes.Store(status, c)
	return c
}

// validation counts one co-op validation outcome: current (304), refreshed
// (200), dropped (revoked behind our back), or error.
func (t *serverTelemetry) validation(result string) {
	t.reg.Counter("dcws_validations_total",
		"co-op document validations by outcome",
		telemetry.Label{Key: "result", Value: result}).Inc()
}

// bindServer promotes the server's existing state into scrape-time metric
// families. Called once from New after every subsystem is constructed.
func (t *serverTelemetry) bindServer(s *Server) {
	reg := t.reg
	counter := func(c *metrics.Counter) func() float64 {
		return func() float64 { return float64(c.Value()) }
	}

	// Traffic counters the serving engine already keeps (§5.2's canonical
	// measures among them).
	reg.CounterFunc("dcws_requests_total",
		"completed request/response exchanges", counter(&s.stats.Connections))
	reg.CounterFunc("dcws_response_body_bytes_total",
		"response body bytes served", counter(&s.stats.Bytes))
	reg.CounterFunc("dcws_redirects_total",
		"301 responses for migrated documents", counter(&s.stats.Redirects))
	reg.CounterFunc("dcws_fetches_total",
		"internal home-to-coop document fetches", counter(&s.stats.Fetches))
	reg.CounterFunc("dcws_rebuilds_total",
		"documents regenerated because their dirty bit was set", counter(&s.stats.Rebuilds))
	reg.GaugeFunc("dcws_load_cps",
		"connections per second over the sliding window",
		func() float64 { return s.stats.CPS(s.now()) })
	reg.GaugeFunc("dcws_load_bps",
		"response bytes per second over the sliding window",
		func() float64 { return s.stats.BPS(s.now()) })

	reg.GaugeFunc("dcws_httpx_queue_depth",
		"connections waiting in the socket queue right now",
		func() float64 { return float64(s.httpSrv.QueueDepth()) })
	reg.GaugeFunc("dcws_capacity",
		"measured service capacity in documents per second (0 when normalization is off)",
		func() float64 { return s.Capacity() })
	reg.GaugeFunc("dcws_headroom",
		"spare capacity: capacity times one minus the advertised utilization",
		func() float64 {
			e, ok := s.table.Get(s.Addr())
			if !ok {
				return 0
			}
			return e.Headroom()
		})
	reg.GaugeFunc("dcws_documents",
		"documents in the local document graph",
		func() float64 { return float64(s.ldg.Len()) })
	reg.GaugeFunc("dcws_coop_hosted",
		"documents hosted on behalf of other servers",
		func() float64 { return float64(s.coops.count()) })
	reg.GaugeFunc("dcws_invalidate_subscribers",
		"co-op servers holding a live invalidation subscription to this home",
		func() float64 { c, _ := s.hub.subscriberCount(); return float64(c) })
	reg.GaugeFunc("dcws_invalidate_leased",
		"hosted copies currently covered by an unexpired lease",
		func() float64 { return float64(s.coops.leasedCount(s.now())) })

	// Rendered-document cache.
	reg.CounterFunc("dcws_render_cache_hits_total",
		"rendered-document cache hits",
		func() float64 { h, _ := s.rcache.counts(); return float64(h) })
	reg.CounterFunc("dcws_render_cache_misses_total",
		"rendered-document cache misses",
		func() float64 { _, m := s.rcache.counts(); return float64(m) })
	reg.GaugeFunc("dcws_render_cache_entries",
		"rendered documents currently cached",
		func() float64 { return float64(s.rcache.len()) })

	// Inter-server RPC resilience: the cluster-wide aggregates plus one
	// series per peer so operators can see WHICH peer is flaky.
	rs := s.res.Stats()
	reg.CounterFunc("dcws_resilience_retries_total",
		"RPC attempts re-issued after a transient failure", counter(&rs.Retries))
	reg.CounterFunc("dcws_resilience_trips_total",
		"circuit-breaker transitions into the open state", counter(&rs.Trips))
	reg.CounterFunc("dcws_resilience_rejections_total",
		"calls refused while a breaker was open", counter(&rs.Rejections))
	reg.CounterFunc("dcws_resilience_probes_total",
		"half-open trial calls admitted", counter(&rs.Probes))
	reg.CounterFunc("dcws_resilience_recoveries_total",
		"breakers closed again after tripping", counter(&rs.Recoveries))
	peerSamples := func(value func(resilience.PeerStats) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			snaps := s.res.PeerSnapshots()
			out := make([]telemetry.Sample, 0, len(snaps))
			for peer, ps := range snaps {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "peer", Value: peer}},
					Value:  value(ps),
				})
			}
			return out
		}
	}
	reg.Collector("dcws_resilience_peer_state",
		"breaker state per peer (0 closed, 1 open, 2 half-open)", "gauge",
		peerSamples(func(ps resilience.PeerStats) float64 { return float64(ps.State) }))
	reg.Collector("dcws_resilience_peer_retries_total",
		"RPC attempts re-issued, per peer", "counter",
		peerSamples(func(ps resilience.PeerStats) float64 { return float64(ps.Retries) }))
	reg.Collector("dcws_resilience_peer_trips_total",
		"breaker trips, per peer", "counter",
		peerSamples(func(ps resilience.PeerStats) float64 { return float64(ps.Trips) }))
	reg.Collector("dcws_resilience_peer_rejections_total",
		"calls refused while the peer's breaker was open", "counter",
		peerSamples(func(ps resilience.PeerStats) float64 { return float64(ps.Rejections) }))
	reg.Collector("dcws_resilience_peer_last_transition_seconds",
		"unix time of the breaker's last state change (0: never left closed)", "gauge",
		peerSamples(func(ps resilience.PeerStats) float64 {
			if ps.LastTransition.IsZero() {
				return 0
			}
			return float64(ps.LastTransition.UnixNano()) / 1e9
		}))

	// Inter-server connection pool: reuse vs dial volume, retirements by
	// cause, and per-peer open/idle gauges.
	pool := s.client.Pool
	reg.CounterFunc("dcws_pool_reuses_total",
		"inter-server RPCs served over a pooled keep-alive connection",
		func() float64 { return float64(pool.Reuses()) })
	reg.CounterFunc("dcws_pool_dials_total",
		"fresh connections dialed for inter-server RPCs",
		func() float64 { return float64(pool.Dials()) })
	reg.Collector("dcws_pool_retires_total",
		"pooled connections retired, by cause", "counter",
		func() []telemetry.Sample {
			ps := pool.Stats()
			out := make([]telemetry.Sample, 0, len(ps.Retires))
			for cause, n := range ps.Retires {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "cause", Value: cause}},
					Value:  float64(n),
				})
			}
			return out
		})
	poolPeerSamples := func(value func(httpx.PeerPoolStats) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			ps := pool.Stats()
			out := make([]telemetry.Sample, 0, len(ps.Peers))
			for peer, pp := range ps.Peers {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "peer", Value: peer}},
					Value:  value(pp),
				})
			}
			return out
		}
	}
	reg.Collector("dcws_pool_open",
		"connections currently open to each peer", "gauge",
		poolPeerSamples(func(pp httpx.PeerPoolStats) float64 { return float64(pp.Open) }))
	reg.Collector("dcws_pool_idle",
		"idle keep-alive connections pooled per peer", "gauge",
		poolPeerSamples(func(pp httpx.PeerPoolStats) float64 { return float64(pp.Idle) }))

	// Global load table: merge freshness and piggyback-encoding costs.
	reg.GaugeFunc("dcws_glt_entries",
		"servers in the global load table",
		func() float64 { return float64(s.table.Len()) })
	reg.CounterFunc("dcws_glt_merged_total",
		"peer entries applied from piggybacked headers",
		func() float64 { return float64(s.table.Merged()) })
	reg.GaugeFunc("dcws_glt_oldest_entry_age_seconds",
		"age of the stalest peer entry in the load table",
		func() float64 { return s.table.OldestAge(s.now()).Seconds() })
	reg.GaugeFunc("dcws_glt_header_bytes",
		"size of the most recently emitted X-DCWS-Load piggyback header",
		func() float64 { return float64(s.table.HeaderBytes()) })
	reg.GaugeFunc("dcws_glt_header_entries",
		"load entries carried by the most recently emitted piggyback header",
		func() float64 { return float64(s.table.LastHeaderEntries()) })
	reg.CounterFunc("dcws_glt_header_regens_total",
		"times the cached full-table encoding was rebuilt",
		func() float64 { return float64(s.table.HeaderRegens()) })
	reg.CounterFunc("dcws_glt_delta_regens_total",
		"times a per-peer delta encoding was rebuilt",
		func() float64 { return float64(s.table.DeltaRegens()) })
	reg.CounterFunc("dcws_glt_emits_total",
		"piggyback headers emitted, by kind",
		func() float64 { return float64(s.table.DeltaEmits()) },
		telemetry.Label{Key: "kind", Value: "delta"})
	reg.CounterFunc("dcws_glt_emits_total",
		"piggyback headers emitted, by kind",
		func() float64 { return float64(s.table.FullEmits()) },
		telemetry.Label{Key: "kind", Value: "full"})
	reg.CounterFunc("dcws_glt_emits_total",
		"piggyback headers emitted, by kind",
		func() float64 { return float64(s.table.ClientEmits()) },
		telemetry.Label{Key: "kind", Value: "client"})
	reg.GaugeFunc("dcws_glt_version",
		"monotonic table version of the newest accepted write",
		func() float64 { return float64(s.table.Version()) })
	reg.GaugeFunc("dcws_glt_shards",
		"stripes the load table is hashed across",
		func() float64 { return float64(s.table.ShardCount()) })
	reg.Collector("dcws_glt_shard_entries",
		"load-table entries per stripe", "gauge",
		func() []telemetry.Sample {
			sizes := s.table.ShardSizes()
			out := make([]telemetry.Sample, 0, len(sizes))
			for i, n := range sizes {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "shard", Value: strconv.Itoa(i)}},
					Value:  float64(n),
				})
			}
			return out
		})
	reg.Collector("dcws_glt_peer_acked_version",
		"highest table version each gossip peer has acknowledged", "gauge",
		func() []telemetry.Sample {
			gossip := s.table.GossipPeers()
			out := make([]telemetry.Sample, 0, len(gossip))
			for peer, g := range gossip {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "peer", Value: peer}},
					Value:  float64(g.Acked),
				})
			}
			return out
		})
	reg.Collector("dcws_glt_load",
		"advertised load per server in the local view", "gauge",
		func() []telemetry.Sample {
			entries := s.table.Snapshot()
			out := make([]telemetry.Sample, 0, len(entries))
			for _, e := range entries {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "server", Value: e.Server}},
					Value:  e.Load,
				})
			}
			return out
		})

	// Trace rings.
	reg.CounterFunc("dcws_trace_spans_total",
		"trace spans recorded, including ones the ring has overwritten",
		func() float64 { return float64(t.ring.Total()) })
	reg.CounterFunc("dcws_trace_tail_spans_total",
		"error or slow spans copied into the tail-retention ring",
		func() float64 { return float64(t.tail.Total()) })

	// Durable tier. The families exist even with the WAL disabled (all
	// zero), so dashboards and `dcwsctl metrics -check` can rely on them
	// unconditionally.
	walStat := func(f func(*wal.Log) float64) func() float64 {
		return func() float64 {
			if s.wal == nil {
				return 0
			}
			return f(s.wal)
		}
	}
	reg.GaugeFunc("dcws_wal_enabled",
		"1 when the durable tier (WAL + snapshots) is active",
		walStat(func(*wal.Log) float64 { return 1 }))
	reg.CounterFunc("dcws_wal_appends_total",
		"records appended to the write-ahead log",
		walStat(func(l *wal.Log) float64 { return float64(l.Appends()) }))
	reg.CounterFunc("dcws_wal_appended_bytes_total",
		"bytes appended to the write-ahead log (framing included)",
		walStat(func(l *wal.Log) float64 { return float64(l.AppendedBytes()) }))
	reg.CounterFunc("dcws_wal_syncs_total",
		"fsync batches issued against the active WAL segment",
		walStat(func(l *wal.Log) float64 { return float64(l.Syncs()) }))
	reg.CounterFunc("dcws_wal_snapshots_total",
		"full-state snapshots written",
		walStat(func(l *wal.Log) float64 { return float64(l.Snapshots()) }))
	reg.CounterFunc("dcws_wal_truncations_total",
		"corrupt or torn WAL tails truncated during recovery",
		walStat(func(l *wal.Log) float64 { return float64(l.Truncations()) }))
	reg.GaugeFunc("dcws_wal_lsn",
		"log sequence number of the newest appended record",
		walStat(func(l *wal.Log) float64 { return float64(l.LSN()) }))
	reg.GaugeFunc("dcws_wal_snapshot_lsn",
		"highest LSN covered by the newest snapshot",
		walStat(func(l *wal.Log) float64 { return float64(l.SnapshotLSN()) }))
	reg.GaugeFunc("dcws_wal_segments",
		"WAL segment files currently on disk",
		walStat(func(l *wal.Log) float64 { return float64(l.Segments()) }))

	reg.GaugeFunc("dcws_recovery_last_seconds",
		"wall time the last startup recovery took (0: cold start)",
		func() float64 { return s.recovery.seconds })
	reg.GaugeFunc("dcws_recovery_recovered",
		"1 when the last startup restored state from snapshot+replay",
		func() float64 {
			if s.recovery.recovered {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dcws_recovery_replayed_records",
		"WAL records replayed at the last startup",
		func() float64 { return float64(s.recovery.replayed) })
	reg.GaugeFunc("dcws_recovery_coop_docs_restored",
		"hosted co-op copies that survived the last restart with bytes intact",
		func() float64 { return float64(s.recovery.coopRestored) })
	reg.GaugeFunc("dcws_recovery_home_docs_rescanned",
		"home documents found only by the post-replay store scan",
		func() float64 { return float64(s.recovery.docsRestored) })
}

// handleMetrics serves the registry in the Prometheus text exposition
// format at /~dcws/metrics.
func (s *Server) handleMetrics() *httpx.Response {
	var buf bytes.Buffer
	if err := s.tel.reg.WritePrometheus(&buf); err != nil {
		return status(500, err.Error())
	}
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	resp.Body = buf.Bytes()
	return resp
}

// handleTrace serves retained trace spans as JSON, oldest first. With an
// ?id= query it returns only that trace's spans, merged from the main and
// tail rings (deduplicated by span ID) — the fan-out target of
// `dcwsctl trace -cluster`, which stitches the per-node results into one
// tree.
func (s *Server) handleTrace(req *httpx.Request) *httpx.Response {
	_, query := httpx.SplitQuery(req.Path)
	if id := httpx.QueryParam(query, "id"); id != "" {
		return spanJSON(s.spansForTrace(id))
	}
	return spanJSON(s.tel.ring.Snapshot())
}

// handleSlow serves the tail-retention ring: the error and slow spans that
// survive main-ring wraparound. ?id= filters to one trace.
func (s *Server) handleSlow(req *httpx.Request) *httpx.Response {
	_, query := httpx.SplitQuery(req.Path)
	if id := httpx.QueryParam(query, "id"); id != "" {
		return spanJSON(s.tel.tail.ByTrace(id))
	}
	return spanJSON(s.tel.tail.Snapshot())
}

// spansForTrace merges one trace's spans from the main and tail rings,
// deduplicating by span ID (a slow span lives in both rings).
func (s *Server) spansForTrace(id string) []telemetry.Span {
	spans := s.tel.ring.ByTrace(id)
	seen := make(map[string]bool, len(spans))
	for _, sp := range spans {
		seen[sp.ID] = true
	}
	for _, sp := range s.tel.tail.ByTrace(id) {
		if sp.ID == "" || !seen[sp.ID] {
			spans = append(spans, sp)
		}
	}
	return spans
}

func spanJSON(spans []telemetry.Span) *httpx.Response {
	if spans == nil {
		spans = []telemetry.Span{}
	}
	data, err := json.MarshalIndent(spans, "", "  ")
	if err != nil {
		return status(500, err.Error())
	}
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", "application/json")
	resp.Body = append(data, '\n')
	return resp
}

// Telemetry exposes the server's metrics registry (tests, embedding).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel.reg }

// Traces exposes the server's trace-span ring.
func (s *Server) Traces() *telemetry.Ring { return s.tel.ring }

// TailTraces exposes the tail-retention ring of error and slow spans.
func (s *Server) TailTraces() *telemetry.Ring { return s.tel.tail }
