package dcws

import (
	"strings"
	"testing"
	"time"

	"dcws/internal/glt"
	"dcws/internal/naming"
	"dcws/internal/store"
)

// bootServer starts a server on an existing store with the durable tier
// enabled, registering it with every live peer — the restart half of the
// crash/recover cycle (addServer always builds a fresh store).
func (w *testWorld) bootServer(host string, port int, st store.Store, entryPoints []string, params Params, walDir string) *Server {
	w.t.Helper()
	addr := naming.Origin{Host: host, Port: port}.Addr()
	peers := make([]string, 0, len(w.servers))
	for a := range w.servers {
		if a != addr {
			peers = append(peers, a)
		}
	}
	if params.RetryBaseDelay == 0 {
		params.RetryBaseDelay = -1
	}
	srv, err := New(Config{
		Origin:      naming.Origin{Host: host, Port: port},
		Store:       st,
		Network:     w.fabric.Named(addr),
		Clock:       w.clock,
		EntryPoints: entryPoints,
		Peers:       peers,
		Params:      params,
		WALDir:      walDir,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	for a, s := range w.servers {
		if a != addr {
			s.LoadTable().Observe(glt.Entry{Server: addr, Load: 0, Updated: time.Time{}})
		}
	}
	if err := srv.Start(); err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { srv.Close() })
	w.servers[addr] = srv
	return srv
}

// TestCrashRecoveryCoopDocsSurvive is the §4.5 fast-rejoin scenario: a
// co-op server is killed without warning and restarted from its WAL; the
// documents it hosted must come back physically present and valid — no
// refetch, no cluster-wide revocation.
func TestCrashRecoveryCoopDocsSurvive(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	coopStore := store.NewMem()
	coop := w.bootServer("coop", 81, coopStore, nil, Params{}, t.TempDir()+"/wal")

	home.migrate("/page.html", "coop:81")
	// Drive the lazy physical migration: the coop fetches the copy and
	// appends a recCoopAdmit.
	if resp := w.follow("home:80", "/page.html"); resp.Status != 200 {
		t.Fatalf("migrated doc = %d", resp.Status)
	}
	if coop.CoopDocCount() != 1 {
		t.Fatalf("coop hosts %d documents, want 1", coop.CoopDocCount())
	}
	key := coop.coops.keys()[0]

	// kill -9: no final snapshot, no final sync.
	if err := coop.Abort(); err != nil {
		t.Fatal(err)
	}

	reborn := w.bootServer("coop", 81, coopStore, nil, Params{}, coop.cfg.WALDir)
	info := reborn.Recovery()
	if !info.Recovered {
		t.Fatal("restart did not recover from the WAL")
	}
	if info.CoopRestored != 1 {
		t.Fatalf("recovery restored %d coop docs, want 1 (%+v)", info.CoopRestored, info)
	}
	if reborn.CoopDocCount() != 1 {
		t.Fatalf("reborn coop hosts %d documents, want 1", reborn.CoopDocCount())
	}
	v, ok := reborn.coops.view(key)
	if !ok || !v.present {
		t.Fatalf("hosted copy not present after recovery: %+v ok=%v", v, ok)
	}
	if v.home.Addr() != "home:80" || v.name != "/page.html" {
		t.Fatalf("recovered record wrong: home=%s name=%s", v.home.Addr(), v.name)
	}
	// The copy serves directly — no fetch back to home is needed.
	fetchesBefore := reborn.Stats().Fetches.Value()
	if resp := w.get("coop:81", key); resp.Status != 200 {
		t.Fatalf("recovered copy = %d", resp.Status)
	}
	if got := reborn.Stats().Fetches.Value(); got != fetchesBefore {
		t.Fatalf("recovered copy re-fetched from home (%d fetches)", got-fetchesBefore)
	}
}

// TestCrashRecoveryHomeMigrationsSurvive: a crashed home server must come
// back remembering where its documents went — redirects keep working and
// the re-migration ledger stays populated.
func TestCrashRecoveryHomeMigrationsSurvive(t *testing.T) {
	w := newWorld(t)
	homeStore := store.NewMem()
	for name, body := range siteAB() {
		if err := homeStore.Put(name, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	home := w.bootServer("home", 80, homeStore, []string{"/index.html"}, Params{}, t.TempDir()+"/wal")
	w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	if err := home.UpdateDocument("/fresh.html", []byte(`<html><a href="/index.html">up</a></html>`)); err != nil {
		t.Fatal(err)
	}
	if err := home.Abort(); err != nil {
		t.Fatal(err)
	}

	reborn := w.bootServer("home", 80, homeStore, []string{"/index.html"}, Params{}, home.cfg.WALDir)
	if !reborn.Recovery().Recovered {
		t.Fatal("restart did not recover from the WAL")
	}
	if loc, ok := reborn.Graph().Location("/page.html"); !ok || loc != "coop:81" {
		t.Fatalf("migration lost: location=%q ok=%v", loc, ok)
	}
	if _, ok := reborn.Migrations().Get("/page.html"); !ok {
		t.Fatal("migration ledger lost across crash")
	}
	if resp := w.get("home:80", "/page.html"); resp.Status != 301 {
		t.Fatalf("migrated doc at reborn home = %d, want 301", resp.Status)
	}
	if resp := w.get("home:80", "/fresh.html"); resp.Status != 200 || !strings.Contains(string(resp.Body), "up") {
		t.Fatalf("document added before crash = %d %q", resp.Status, resp.Body)
	}
	if !reborn.Graph().Has("/fresh.html") {
		t.Fatal("crash-era document missing from recovered graph")
	}
}

// TestSnapshotReplayEquivalence: state recovered purely by replaying the
// log must equal state recovered from a snapshot — and a snapshot load
// replays zero records.
func TestSnapshotReplayEquivalence(t *testing.T) {
	w := newWorld(t)
	homeStore := store.NewMem()
	for name, body := range siteAB() {
		if err := homeStore.Put(name, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	walDir := t.TempDir() + "/wal"
	home := w.bootServer("home", 80, homeStore, []string{"/index.html"}, Params{}, walDir)
	w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	if err := home.UpdateDocument("/late.html", []byte(`<html>late</html>`)); err != nil {
		t.Fatal(err)
	}
	if err := home.Abort(); err != nil {
		t.Fatal(err)
	}

	// First restart recovers by replay alone (the crash wrote no snapshot).
	replayed := w.bootServer("home", 80, homeStore, []string{"/index.html"}, Params{}, walDir)
	infoA := replayed.Recovery()
	if !infoA.Recovered || infoA.ReplayedRecs == 0 {
		t.Fatalf("replay recovery stats: %+v", infoA)
	}
	migratedA := replayed.Graph().Migrated()
	docsA := replayed.Graph().Len()
	// A clean shutdown writes a snapshot covering everything.
	if err := replayed.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart loads the snapshot and replays nothing.
	snapped := w.bootServer("home", 80, homeStore, []string{"/index.html"}, Params{}, walDir)
	infoB := snapped.Recovery()
	if !infoB.Recovered {
		t.Fatal("snapshot restart did not report recovery")
	}
	if infoB.ReplayedRecs != 0 {
		t.Fatalf("snapshot restart replayed %d records, want 0", infoB.ReplayedRecs)
	}
	if infoB.SnapshotLSN == 0 {
		t.Fatal("snapshot restart loaded no snapshot")
	}
	migratedB := snapped.Graph().Migrated()
	docsB := snapped.Graph().Len()
	if docsA != docsB {
		t.Fatalf("doc count diverged: replay %d vs snapshot %d", docsA, docsB)
	}
	if len(migratedA) != len(migratedB) {
		t.Fatalf("migrated sets diverged: %v vs %v", migratedA, migratedB)
	}
	for doc, loc := range migratedA {
		if migratedB[doc] != loc {
			t.Fatalf("migration %s: replay says %q, snapshot says %q", doc, loc, migratedB[doc])
		}
	}
}

// TestStatusReportsDurability: the status snapshot carries the WAL block
// when the tier is enabled and a zeroed one when it is not.
func TestStatusReportsDurability(t *testing.T) {
	w := newWorld(t)
	plain := w.addServer("plain", 80, siteAB(), nil, Params{})
	if st := plain.Status(); st.Durability.Enabled {
		t.Fatal("durability reported enabled without a WAL")
	}
	durable := w.bootServer("durable", 81, store.NewMem(), nil, Params{}, t.TempDir()+"/wal")
	if err := durable.UpdateDocument("/d.html", []byte("<html>d</html>")); err != nil {
		t.Fatal(err)
	}
	st := durable.Status()
	if !st.Durability.Enabled || st.Durability.SyncPolicy != "interval" {
		t.Fatalf("durability block: %+v", st.Durability)
	}
	if st.Durability.Appends == 0 || st.Durability.LSN == 0 {
		t.Fatalf("WAL append not reflected in status: %+v", st.Durability)
	}
}

// TestPlacementSkipsStaleEntries is the regression test for the staleness
// gate: a peer whose load entry has gone stale must not attract
// migrations, however low its advertised load, while entries with no
// timestamp (statically configured, never heard from) stay eligible.
func TestPlacementSkipsStaleEntries(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	now := home.now()
	stale := now.Add(-2 * DefaultParams().PlacementMaxStaleness)
	home.LoadTable().Observe(glt.Entry{Server: "stale:81", Load: 0, Updated: stale})
	home.LoadTable().Observe(glt.Entry{Server: "fresh:82", Load: 1, Updated: now})

	coop, ok := home.chooseCoop(100)
	if !ok || coop != "fresh:82" {
		t.Fatalf("chooseCoop = %q, %v; want fresh:82 (stale entry must be skipped)", coop, ok)
	}

	// Entries with no timestamp are exempt: first contact must be possible.
	home.LoadTable().Remove("stale:81")
	home.LoadTable().Observe(glt.Entry{Server: "cold:83", Load: 0, Updated: time.Time{}})
	coop, ok = home.chooseCoop(100)
	if !ok || coop != "cold:83" {
		t.Fatalf("chooseCoop = %q, %v; want cold:83 (zero-time entry stays eligible)", coop, ok)
	}
}

// TestPlacementStalenessDisabled: a negative PlacementMaxStaleness turns
// the gate off entirely.
func TestPlacementStalenessDisabled(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"},
		Params{PlacementMaxStaleness: -1})
	stale := home.now().Add(-time.Hour)
	home.LoadTable().Observe(glt.Entry{Server: "stale:81", Load: 0, Updated: stale})
	coop, ok := home.chooseCoop(100)
	if !ok || coop != "stale:81" {
		t.Fatalf("chooseCoop = %q, %v; want stale:81 with the gate disabled", coop, ok)
	}
}

// TestWALMetricsExposed: the dcws_wal_* and dcws_recovery_* families are
// present in the exposition even when the tier is off, and non-zero when
// it is on and active.
func TestWALMetricsExposed(t *testing.T) {
	w := newWorld(t)
	plain := w.addServer("plain", 80, siteAB(), nil, Params{})
	resp := w.get(plain.Addr(), "/~dcws/metrics")
	body := string(resp.Body)
	for _, fam := range []string{"dcws_wal_enabled", "dcws_wal_appends_total", "dcws_recovery_last_seconds"} {
		if !strings.Contains(body, fam) {
			t.Fatalf("family %s missing from exposition without WAL", fam)
		}
	}
	if !strings.Contains(body, "dcws_wal_enabled 0") {
		t.Fatal("dcws_wal_enabled should read 0 without a WAL")
	}
	durable := w.bootServer("durable", 81, store.NewMem(), nil, Params{}, t.TempDir()+"/wal")
	if err := durable.UpdateDocument("/d.html", []byte("<html>d</html>")); err != nil {
		t.Fatal(err)
	}
	body = string(w.get(durable.Addr(), "/~dcws/metrics").Body)
	if !strings.Contains(body, "dcws_wal_enabled 1") {
		t.Fatal("dcws_wal_enabled should read 1 with a WAL")
	}
}
