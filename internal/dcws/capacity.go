package dcws

import (
	"fmt"
	"math"
	"strings"
	"time"

	"dcws/internal/hypertext"
	"dcws/internal/metrics"
)

// Capacity calibration. The paper's placement policies (migration §4.3,
// replication §4.4) rank co-ops by raw connection load, which silently
// assumes a homogeneous testbed: on mixed hardware a "least loaded" count
// of 50 on a small box can mean saturation while 50 on a big box is idle.
// Each server therefore measures its own service capacity — documents per
// second it can actually push through its worker pool — and gossips load
// as a fraction of that capacity. Placement then ranks peers by absolute
// headroom (capacity × (1 − utilization)) instead of raw load, which is
// the quantity that actually predicts where spilled work fits.
//
// The estimate has two sources. At startup, before any traffic exists, a
// micro-calibration times the parse→rewrite→render cycle on a synthetic
// document of typical size, giving capacity₀ = workers / cost. From then
// on, every statistics tick folds the achieved mean serve latency (from
// the serve-latency histograms telemetry already keeps) into the estimate
// with EWMA weight Params.CapacitySmoothing, so the figure tracks what the
// machine demonstrates under real traffic — including effects the
// micro-benchmark cannot see, like cache hit rates and co-resident load.

// calibrationRounds is how many synthetic render cycles the startup
// micro-calibration times. Enough to amortize timer jitter and warm the
// path, small enough to keep startup under a few milliseconds.
const calibrationRounds = 24

// minServeCost floors the per-document cost estimate. Serving a cached
// document can complete in nanoseconds, which would imply near-infinite
// capacity and collapse every utilization to zero; the floor keeps the
// scale meaningful (it corresponds to ~50k docs/s/worker).
const minServeCost = 20 * time.Microsecond

// CapacityEnabled reports whether loads are normalized by measured
// capacity. Negative CapacitySmoothing opts out (legacy raw-load wire).
func (p *Params) CapacityEnabled() bool { return p.CapacitySmoothing >= 0 }

// calibrationDoc builds the synthetic document the startup calibration
// renders: ~8 KiB of markup with a realistic sprinkling of links, matching
// the dataset generator's typical page.
func calibrationDoc() []byte {
	var b strings.Builder
	b.WriteString("<html><head><title>calibration</title></head><body>\n")
	for i := 0; b.Len() < 8<<10; i++ {
		fmt.Fprintf(&b, "<p>paragraph %d with filler text to approximate a typical document body</p>\n", i)
		if i%4 == 0 {
			fmt.Fprintf(&b, "<a href=\"http://calib.invalid/doc%03d.html\">doc%03d</a>\n", i, i)
		}
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// calibrateCapacity runs the startup micro-calibration and seeds both the
// local estimate and the gossiped self entry. No-op when capacity
// normalization is disabled.
func (s *Server) calibrateCapacity() {
	if !s.params.CapacityEnabled() {
		return
	}
	raw := calibrationDoc()
	// Real wall time deliberately: calibration measures this machine, and
	// runs before the (possibly simulated) clock starts mattering.
	start := time.Now()
	for i := 0; i < calibrationRounds; i++ {
		doc := hypertext.Parse(string(raw))
		_ = doc.Render()
		_ = contentHash(raw)
	}
	per := time.Since(start) / calibrationRounds
	if per < minServeCost {
		per = minServeCost
	}
	cap0 := float64(s.params.Workers) / per.Seconds()
	s.capMu.Lock()
	s.capacity = cap0
	s.capMu.Unlock()
	s.table.SetSelfInfo(roundCapacity(cap0), s.params.Zone)
}

// updateCapacity folds the interval's achieved serve latency into the
// capacity estimate. Called once per statistics tick, before the tick
// computes utilization from the result.
func (s *Server) updateCapacity() {
	if !s.params.CapacityEnabled() {
		return
	}
	var count int64
	var sum time.Duration
	for _, h := range []*metrics.Histogram{s.tel.serveHome, s.tel.serveCoop, s.tel.serveFetch} {
		c, d := h.CountSum()
		count += c
		sum += d
	}
	deltaCount := count - s.capLastCount
	deltaSum := sum - s.capLastSum
	s.capLastCount, s.capLastSum = count, sum
	// Too few observations this interval to say anything about achievable
	// throughput; keep the current estimate.
	if deltaCount < 8 || deltaSum <= 0 {
		return
	}
	mean := deltaSum / time.Duration(deltaCount)
	if mean < minServeCost {
		mean = minServeCost
	}
	achieved := float64(s.params.Workers) / mean.Seconds()
	alpha := s.params.CapacitySmoothing
	s.capMu.Lock()
	s.capacity = (1-alpha)*s.capacity + alpha*achieved
	cur := s.capacity
	s.capMu.Unlock()
	s.table.SetSelfInfo(roundCapacity(cur), s.params.Zone)
}

// Capacity reports the current service-capacity estimate (docs/s), 0 when
// capacity normalization is disabled or not yet calibrated.
func (s *Server) Capacity() float64 {
	s.capMu.Lock()
	defer s.capMu.Unlock()
	return s.capacity
}

// normalizeLoad converts a raw load figure to a fraction of capacity when
// normalization is on. With it off — or before calibration — the raw
// figure passes through, which is exactly the legacy wire format.
func (s *Server) normalizeLoad(load float64) float64 {
	if !s.params.CapacityEnabled() {
		return load
	}
	c := s.Capacity()
	if c <= 0 {
		return load
	}
	return load / c
}

// advertisedLoad is the figure the server gossips: the quantized raw load
// (quantizing before normalizing keeps the header-stability property of
// LoadQuantum independent of the capacity scale) divided by capacity.
func (s *Server) advertisedLoad(now time.Time) float64 {
	return s.normalizeLoad(s.quantizeLoad(s.loadMetric(now)))
}

// roundCapacity rounds to three significant figures so jitter in the EWMA
// does not bump the gossiped self entry — and therefore re-ship it to
// every peer — on every tick.
func roundCapacity(c float64) float64 {
	if c <= 0 {
		return 0
	}
	scale := math.Pow(10, math.Floor(math.Log10(c))-2)
	return math.Round(c/scale) * scale
}
