package dcws

import (
	"container/list"
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"dcws/internal/clock"
	"dcws/internal/glt"
	"dcws/internal/graph"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/metrics"
	"dcws/internal/naming"
	"dcws/internal/policy"
	"dcws/internal/resilience"
	"dcws/internal/store"
	"dcws/internal/telemetry"
	"dcws/internal/wal"
)

// Extension header names used between cooperating servers. All ride on
// ordinary HTTP messages; servers that do not understand them ignore them.
const (
	// headerFetch marks an internal home-to-coop document fetch.
	headerFetch = "X-DCWS-Fetch"
	// headerValidate carries the coop's content hash during validation
	// re-requests; the home answers 304 when it matches.
	headerValidate = "X-DCWS-Validate"
	// headerRevokeDoc names the document being revoked.
	headerRevokeDoc = "X-DCWS-Doc"
	// headerReplicas carries the document's full replica set (comma-
	// separated coop addresses) on home fetch/validation responses, so
	// each coop learns which siblings can also serve the document.
	headerReplicas = "X-DCWS-Replicas"
	// headerHedge marks a hedged fetch probing a sibling replica: the
	// sibling serves only a locally present copy and must never recurse
	// into its own fetch from the (possibly stalled) home server.
	headerHedge = "X-DCWS-Hedge"
	// headerHot carries a coop's hottest hosted documents back to homes
	// (replication extension).
	headerHot = "X-DCWS-Hot"
	// headerChain carries the remaining dissemination chain on a
	// /~dcws/replicate push or a chain revocation: a comma-separated list
	// of successor coop addresses each link relays to, CDTP-style.
	headerChain = "X-DCWS-Chain"
	// headerAcked aggregates, back up the chain, which coops stored the
	// pushed copy (or applied the revocation): each link prepends itself
	// to its successor's list before answering.
	headerAcked = "X-DCWS-Acked"
)

// Internal control paths. The "~dcws" first component cannot collide with
// stored documents, mirroring the "~migrate" convention.
const (
	pingPath      = "/~dcws/ping"
	revokePath    = "/~dcws/revoke"
	replicatePath = "/~dcws/replicate"
	subscribePath = "/~dcws/subscribe"
	statusPath    = "/~dcws/status"
	recallPath    = "/~dcws/recall"
	migratePath   = "/~dcws/migrate"
	updatePath    = "/~dcws/update"
	graphPath     = "/~dcws/graph"
	metricsPath   = "/~dcws/metrics"
	tracePath     = "/~dcws/trace"
	slowPath      = "/~dcws/slow"
	profilesPath  = "/~dcws/profiles"
)

// Config assembles a server's identity and dependencies.
type Config struct {
	// Origin is the server's address; its host:port is both the listen
	// address and the name peers use in the global load table.
	Origin naming.Origin
	// Store holds the server's home documents, and receives physically
	// migrated co-op copies under their /~migrate names.
	Store store.Store
	// Network provides Listen and Dial (real TCP or an in-memory fabric).
	Network memnet.Network
	// Clock drives every timer; tests and demos use accelerated clocks.
	Clock clock.Clock
	// EntryPoints are the well-known entry point document names (§3.1);
	// they never migrate.
	EntryPoints []string
	// Peers are the initially known cooperating servers.
	Peers []string
	// Params tunes the system; zero fields take Table 1 defaults.
	Params Params
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
	// AccessLog, when non-nil, receives one line per served request
	// including the response's trace ID, so slow requests in the log can
	// be joined against /~dcws/trace. Nil disables access logging.
	AccessLog *log.Logger
	// WALDir, when non-empty, enables the durable tier: every migration,
	// revocation, co-op admission/eviction, and document change is
	// appended to a write-ahead log in this directory, with periodic
	// full-state snapshots. On startup the server recovers from
	// snapshot+replay instead of a cold store scan, so a crashed server
	// rejoins with its hosted co-op documents still valid. Empty disables
	// the tier (state is rebuilt from the store alone).
	WALDir string
	// ProfileDir, when non-empty, is where the SLO watcher drops pprof
	// CPU+heap profile pairs on sustained burn-rate alerts (a bounded ring
	// of Params.ProfileRingSize captures, served at /~dcws/profiles).
	// Empty disables automatic profile capture.
	ProfileDir string
}

// coopDoc is a document this server hosts on behalf of a home server.
// Its fields are guarded by the owning coopSet's lock.
type coopDoc struct {
	key       string // encoded /~migrate path
	home      naming.Origin
	name      string // original document name at home
	present   bool   // physically fetched
	hash      uint64 // content hash for validation
	fetched   time.Time
	lastUsed  time.Time // most recent request (LRU eviction order)
	size      int64
	windowHit int64         // hits this window (for hot-spot reporting)
	elem      *list.Element // position in the coopSet LRU (present copies)
	siblings  []string      // other coops hosting replicas of this document,
	// learned from X-DCWS-Replicas on fetch/validation responses; hedged
	// fetches race one of these against the home server

	// leased / leaseUntil implement push invalidation's lease state: while
	// leaseUntil is in the future the copy may be served without polling
	// (the home pushes invalidations instead). Renewed in bulk by channel
	// liveness and per-doc by successful validations. A record that never
	// subscribed keeps leased == false and the legacy polling semantics.
	leased     bool
	leaseUntil time.Time
}

// Server is one DCWS node.
//
// Shared state is decomposed into independently locked pieces so the
// request hot path never serializes behind maintenance work: coops (the
// hosted-document set with its LRU), rcache (the rendered-document
// cache, itself sharded), repMu for the replica tables, peerMu for the
// failure-detector state, and hotMu for the replication hint table.
type Server struct {
	cfg    Config
	params Params
	log    *log.Logger
	addr   string // cached Origin.Addr()

	ldg    *graph.LDG
	table  *glt.Table
	stats  *metrics.ServerStats
	ledger *policy.Ledger
	gate   *policy.RateGate
	client *httpx.Client
	res    *resilience.Registry
	rcache *renderCache
	coops  *coopSet
	tel    *serverTelemetry
	slo    *sloWatcher

	// hub is the home side of push invalidation (subscriber table and
	// fan-out); subs the co-op side (outbound subscription channels).
	hub  *invalHub
	subs *subManager

	// fetchPolicy retries lazy-migration fetches; probePolicy retries
	// pinger probes inside one tick (both derived from Params).
	fetchPolicy resilience.Policy
	probePolicy resilience.Policy

	httpSrv *httpx.Server

	repMu     sync.RWMutex
	replicas  map[string][]string // home side: doc -> replica coop addrs (incl. primary)
	rrCounter map[string]*uint32  // round-robin counters for replica links

	peerMu   sync.Mutex
	pingFail map[string]int
	downAt   map[string]time.Time // peers declared down, and when (§4.5)

	hotMu    sync.Mutex
	hotHints map[string]int64 // home side: migrated doc -> last reported coop hits
	// hotRate is the per-document EWMA of the serve rate (hits/s, home
	// window hits plus coop-reported hits) that triggers proactive chain
	// replication when it crosses HotReplicateRate.
	hotRate map[string]float64

	// aeMu guards the adaptive anti-entropy cadence: the loop backs the
	// interval off (up to 4x AntiEntropyInterval) while piggyback deltas
	// keep every healthy peer's acked version current, and snaps back to
	// the floor under churn (peer-set change, suspect or down peers).
	aeMu        sync.Mutex
	aeInterval  time.Duration
	aeLastVer   uint64   // table version at the last cadence decision
	aeLastPeers []string // peer set at the last cadence decision (sorted)

	// capMu guards the measured service capacity (docs/s); the serve-
	// histogram totals the per-tick delta is computed against are touched
	// only by the statistics tick. See capacity.go.
	capMu        sync.Mutex
	capacity     float64
	capLastCount int64
	capLastSum   time.Duration

	wal      *wal.Log // nil when the durable tier is disabled
	recovery recoveryStats

	startOnce sync.Once
	stopOnce  sync.Once
	walOnce   sync.Once
	stopped   chan struct{}
	wg        sync.WaitGroup
}

// New builds a server: it scans the store, parses every HTML document, and
// constructs the local document graph (§3.3: "computed upon initialization
// of the web server by scanning its disk and parsing the documents").
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("dcws: Config.Store is required")
	}
	if cfg.Network == nil {
		return nil, errors.New("dcws: Config.Network is required")
	}
	if cfg.Origin.Host == "" || cfg.Origin.Port <= 0 {
		return nil, errors.New("dcws: Config.Origin is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	params := cfg.Params.withDefaults()

	// Build with the origin-aware resolver: documents regenerated by a
	// previous run may carry absolute ~migrate URLs for this server's own
	// content, and those links must survive a restart as graph edges.
	resolver := originResolver(cfg.Origin)

	// With a WAL configured, startup state comes from snapshot+replay —
	// the §4.5 fast-rejoin path: migrations, hosted co-op copies, and
	// replica sets all survive a crash, so peers' revocation timers never
	// fire. Without one, the graph is rebuilt by the cold store scan.
	var (
		wlog     *wal.Log
		rec      *recoveredState
		recStats recoveryStats
	)
	recStart := time.Now()
	if cfg.WALDir != "" {
		syncPolicy, err := wal.ParseSyncPolicy(params.WALSync)
		if err != nil {
			return nil, fmt.Errorf("dcws: %w", err)
		}
		wlog, err = wal.Open(wal.Options{
			Dir:          cfg.WALDir,
			SegmentBytes: params.WALSegmentBytes,
			Sync:         syncPolicy,
			SyncInterval: params.WALSyncInterval,
			Logger:       cfg.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("dcws: open WAL: %w", err)
		}
		rec, err = recoverState(wlog, cfg.Store, resolver)
		if err != nil {
			wlog.Close()
			return nil, err
		}
		reconcileStart := time.Now()
		if err := rec.reconcile(cfg.Store, &recStats); err != nil {
			wlog.Close()
			return nil, fmt.Errorf("dcws: reconcile recovered state: %w", err)
		}
		recStats.reconcileDur = time.Since(reconcileStart)
		recStats.recovered = rec.fromSnapshot || rec.replayed > 0
		recStats.replayed = rec.replayed
		recStats.snapshotLSN = rec.snapshotLSN
		recStats.snapshotDur = rec.snapshotDur
		recStats.replayDur = rec.replayDur
	}
	var ldg *graph.LDG
	if rec != nil {
		ldg = rec.ldg
	} else {
		var err error
		ldg, err = graph.BuildWithResolver(cfg.Store, resolver)
		if err != nil {
			return nil, fmt.Errorf("dcws: build document graph: %w", err)
		}
	}
	for _, ep := range cfg.EntryPoints {
		name, err := store.CleanName(ep)
		if err != nil {
			return nil, fmt.Errorf("dcws: entry point %q: %w", ep, err)
		}
		if !ldg.Has(name) {
			return nil, fmt.Errorf("dcws: entry point %q not in store", ep)
		}
		if err := ldg.SetEntryPoint(name, true); err != nil {
			return nil, err
		}
	}

	self := cfg.Origin.Addr()
	table := glt.NewTable(self)
	for _, p := range cfg.Peers {
		if p != self {
			table.Observe(glt.Entry{Server: p, Load: 0, Updated: time.Time{}})
		}
	}
	if rec != nil {
		// Peers remembered in the snapshot rejoin the table with no
		// timestamp (their load is unknown until gossip resumes), so a
		// restarted server knows the cluster even when its static peer
		// list is incomplete.
		for _, p := range rec.peers {
			if p != self {
				table.Observe(glt.Entry{Server: p, Load: 0, Updated: time.Time{}})
			}
		}
	}

	ledger := policy.NewLedger()
	replicas := make(map[string][]string)
	if rec != nil {
		ledger = rec.ledger
		if rec.replicas != nil {
			replicas = rec.replicas
		}
	}

	logger := cfg.Logger
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}

	s := &Server{
		cfg:    cfg,
		params: params,
		log:    logger,
		addr:   self,
		ldg:    ldg,
		table:  table,
		stats:  metrics.NewServerStats(params.RateWindow),
		ledger: ledger,
		gate:   policy.NewRateGate(params.StatsInterval, params.CoopMigrateInterval),
		client: httpx.NewPooledClient(httpx.DialerFunc(cfg.Network.Dial), httpx.PoolConfig{
			MaxIdlePerHost: params.PoolMaxIdlePerPeer,
			IdleTimeout:    params.PoolIdleTimeout,
			MaxLifetime:    params.PoolMaxLifetime,
		}),
		res: resilience.NewRegistry(cfg.Clock, resilience.BreakerConfig{
			FailureThreshold: params.BreakerThreshold,
			Cooldown:         params.BreakerCooldown,
		}),
		fetchPolicy: resilience.Policy{
			MaxAttempts: params.FetchAttempts,
			BaseDelay:   params.RetryBaseDelay,
			MaxDelay:    params.RetryMaxDelay,
			Jitter:      0.5,
		},
		probePolicy: resilience.Policy{
			MaxAttempts: params.ProbeAttempts,
			BaseDelay:   params.RetryBaseDelay,
			MaxDelay:    params.RetryMaxDelay,
			Jitter:      0.5,
		},
		rcache:    newRenderCache(params.RenderCacheBytes),
		coops:     newCoopSet(),
		tel:       newServerTelemetry(params.TraceRingSize, params.TailRingSize, params.SlowTraceThreshold),
		wal:       wlog,
		replicas:  replicas,
		rrCounter: make(map[string]*uint32),
		pingFail:  make(map[string]int),
		downAt:    make(map[string]time.Time),
		hotHints:  make(map[string]int64),
		hotRate:   make(map[string]float64),
		stopped:   make(chan struct{}),
	}
	s.aeInterval = params.AntiEntropyInterval
	s.gate.HomeInterval = params.StatsInterval
	s.gate.CoopInterval = params.CoopMigrateInterval
	// A tripped breaker means the peer's recent calls all failed: idle
	// pooled connections to it are equally suspect, so flush them and let
	// recovery re-dial fresh.
	s.res.OnTrip(func(peer string) { s.client.Pool.FlushAddr(peer) })
	s.httpSrv = httpx.NewServer(httpx.ServerConfig{
		Workers:     params.Workers,
		QueueLength: params.QueueLength,
		KeepAlive:   true,
		Observer:    s.tel,
		AccessLog:   cfg.AccessLog,
		TraceHeader: telemetry.TraceHeader,
	}, httpx.HandlerFunc(s.handle))
	s.tel.reg.SetSeriesLimit(params.MetricsSeriesLimit)
	if rec != nil {
		now := s.now()
		for _, seed := range rec.coops {
			s.coops.restore(*seed, now)
		}
		recStats.seconds = time.Since(recStart).Seconds()
		s.recovery = recStats
		if recStats.recovered {
			s.log.Printf("dcws %s: recovered in %.3fs: snapshot LSN %d, %d records replayed, %d coop docs restored (%d dropped), %d home docs rescanned",
				s.Addr(), recStats.seconds, recStats.snapshotLSN, recStats.replayed,
				recStats.coopRestored, recStats.coopDropped, recStats.docsRestored)
		}
		// Record the startup recovery as a trace: one root span plus one
		// child per phase. The phases ran before the telemetry ring was
		// built, so they are recorded retroactively from buffered timings;
		// `dcwsctl trace` shows where a slow rejoin spent its time.
		root := telemetry.NewSpan(telemetry.NewTraceID(), "", self, "recovery")
		root.Start = s.now()
		root.Duration = time.Since(recStart)
		for _, ph := range []struct {
			op  string
			dur time.Duration
		}{
			{"snapshot-load", recStats.snapshotDur},
			{"replay", recStats.replayDur},
			{"reconcile", recStats.reconcileDur},
		} {
			child := root.Child(ph.op)
			child.Start = root.Start
			child.Duration = ph.dur
			s.tel.record(child)
		}
		s.tel.record(root)
	}
	s.hub = newInvalHub(s)
	s.subs = newSubManager(s)
	if rec != nil {
		// Recovered subscribers rejoin disconnected; their reconnect
		// triggers catch-up invalidations for whatever changed meanwhile.
		for addr, docs := range rec.subscribers {
			s.hub.restore(addr, docs)
		}
	}
	s.slo = newSLOWatcher(s)
	// Seed the capacity estimate (and the gossiped capacity/zone self
	// metadata) before the listener opens, so the very first piggybacked
	// header already carries normalized load.
	s.calibrateCapacity()
	if !s.params.CapacityEnabled() && s.params.Zone != "" {
		s.table.SetSelfInfo(0, s.params.Zone)
	}
	s.tel.bindServer(s)
	return s, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Addr returns the server's host:port identity.
func (s *Server) Addr() string { return s.addr }

// Origin returns the server's origin.
func (s *Server) Origin() naming.Origin { return s.cfg.Origin }

// Start begins listening and launches the statistics, pinger, and
// validator threads. It returns once the listener is active.
func (s *Server) Start() error {
	var startErr error
	s.startOnce.Do(func() {
		l, err := s.cfg.Network.Listen(s.Addr())
		if err != nil {
			startErr = fmt.Errorf("dcws: listen %s: %w", s.Addr(), err)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSrv.Serve(l); err != nil {
				s.log.Printf("dcws %s: serve: %v", s.Addr(), err)
			}
		}()
		s.wg.Add(3)
		go s.statsLoop()
		go s.pingerLoop()
		go s.validatorLoop()
		if s.params.AntiEntropyInterval > 0 {
			s.wg.Add(1)
			go s.antiEntropyLoop()
		}
		if s.wal != nil && s.params.SnapshotInterval > 0 {
			s.wg.Add(1)
			go s.snapshotLoop()
		}
		if s.params.SLOCheckInterval > 0 {
			s.wg.Add(1)
			go s.sloLoop()
		}
		if s.params.LeaseDuration > 0 {
			// Re-subscribe for every home we host recovered documents for;
			// fresh admissions subscribe from their own fetch paths.
			for _, home := range s.coops.homes() {
				s.subs.ensureSubscribed(home)
			}
		}
		s.log.Printf("dcws %s: started with %d documents", s.Addr(), s.ldg.Len())
	})
	return startErr
}

// Close stops the server and waits for its threads. With a WAL it writes
// a final state snapshot and syncs the log, so the next startup recovers
// instantly with zero replay.
func (s *Server) Close() error { return s.shutdown(false) }

// Abort stops the server WITHOUT the final snapshot or WAL sync — the
// crash-simulation path: whatever reached the log (one write(2) call per
// append) is what recovery gets, exactly as after a kill -9.
func (s *Server) Abort() error { return s.shutdown(true) }

func (s *Server) shutdown(abort bool) error {
	s.stopOnce.Do(func() {
		close(s.stopped)
		// Force-close upgraded subscription connections on both sides so
		// their reader goroutines unblock before wg.Wait below.
		s.hub.closeAll()
		s.subs.closeAll()
		s.httpSrv.Close()
		s.client.CloseIdle()
	})
	s.wg.Wait()
	if s.wal != nil {
		s.walOnce.Do(func() {
			if abort {
				s.wal.Abandon()
				return
			}
			s.writeSnapshot()
			if err := s.wal.Close(); err != nil {
				s.log.Printf("dcws %s: close WAL: %v", s.Addr(), err)
			}
		})
	}
	return nil
}

// Graph exposes the local document graph for inspection (status tooling,
// tests, experiments).
func (s *Server) Graph() *graph.LDG { return s.ldg }

// LoadTable exposes the server's view of the global load table.
func (s *Server) LoadTable() *glt.Table { return s.table }

// Stats exposes the server's traffic counters.
func (s *Server) Stats() *metrics.ServerStats { return s.stats }

// Migrations exposes the home-side migration ledger.
func (s *Server) Migrations() *policy.Ledger { return s.ledger }

// Dropped reports connections answered 503 due to queue overflow.
func (s *Server) Dropped() int64 { return s.httpSrv.Dropped() }

// QueueDepth reports how many accepted connections are waiting in the
// socket queue for a worker. The GLT load metric folds it in (queue-aware
// load shedding): a backlogged server advertises itself as hotter and
// starts migrating documents away before it starts dropping connections.
func (s *Server) QueueDepth() int { return s.httpSrv.QueueDepth() }

// CoopDocCount reports how many documents this server currently hosts on
// behalf of other servers (physically present or pending lazy fetch).
func (s *Server) CoopDocCount() int { return s.coops.count() }

// CacheCounts reports the rendered-document cache's cumulative hits and
// misses.
func (s *Server) CacheCounts() (hits, misses int64) { return s.rcache.counts() }

// UpdateDocument replaces a home document's content at run time (the
// administrator edit case of §4.5). The LDG is reparsed for the document
// and co-op copies become stale until their next validation.
func (s *Server) UpdateDocument(name string, content []byte) error {
	cleaned, err := store.CleanName(name)
	if err != nil {
		return err
	}
	if err := s.cfg.Store.Put(cleaned, content); err != nil {
		return err
	}
	s.ldg.AddDoc(cleaned, int64(len(content)), content)
	s.rcache.invalidate(cleaned)
	s.walAppend(recDocPut, encodeNameRecord(cleaned))
	// Push invalidation: subscribed co-ops learn of the change now, not at
	// their next validation tick.
	s.hub.push(invalUpdate, cleaned)
	return nil
}

// DeleteDocument removes a home document at run time. Peers hosting a
// migrated copy learn of the removal through their next validation pass.
func (s *Server) DeleteDocument(name string) error {
	cleaned, err := store.CleanName(name)
	if err != nil {
		return err
	}
	if err := s.cfg.Store.Delete(cleaned); err != nil {
		return err
	}
	s.ldg.Remove(cleaned)
	s.rcache.invalidate(cleaned)
	s.ledger.Forget(cleaned)
	s.repMu.Lock()
	delete(s.replicas, cleaned)
	s.repMu.Unlock()
	s.walAppend(recDocDelete, encodeNameRecord(cleaned))
	s.hub.push(invalDelete, cleaned)
	return nil
}

// now returns the current time on the configured clock.
func (s *Server) now() time.Time { return s.cfg.Clock.Now() }

// TickStats runs one statistics interval synchronously (load update,
// migration decision, window roll). Deterministic harnesses call this
// instead of waiting for the T_st timer.
func (s *Server) TickStats() { s.runStatsTick() }

// TickPinger runs one pinger activation synchronously.
func (s *Server) TickPinger() { s.runPingerTick() }

// TickValidator runs one co-op validation pass synchronously.
func (s *Server) TickValidator() { s.runValidatorTick() }

// TickAntiEntropy runs one full-table gossip exchange synchronously.
func (s *Server) TickAntiEntropy() { s.runAntiEntropyTick() }

// Resilience exposes the per-peer breaker registry and its counters
// (status endpoint, operational tooling, tests).
func (s *Server) Resilience() *resilience.Registry { return s.res }

// loadMetric reports this server's current load for the global load
// table: the paper's CPS/BPS rate plus the queue-aware shedding term —
// each connection backlogged in the socket queue counts QueueLoadFactor
// load units, so a saturated server looks hot to its peers (and to its
// own migration trigger) before it starts dropping connections.
func (s *Server) loadMetric(now time.Time) float64 {
	load := s.stats.LoadMetric(now, s.params.UseBPSMetric)
	if f := s.params.QueueLoadFactor; f > 0 {
		if d := s.httpSrv.QueueDepth(); d > 0 {
			load += f * float64(d)
		}
	}
	return load
}

// quantizeLoad rounds a load value to the nearest LoadQuantum multiple so
// the advertised figure — and the cached piggyback encoding keyed on it —
// stays stable while the true load wobbles within one step.
func (s *Server) quantizeLoad(load float64) float64 {
	q := s.params.LoadQuantum
	if q <= 0 {
		return load
	}
	return math.Round(load/q) * q
}

// piggybackTo attaches the load-table delta this peer has not yet acked
// to an outgoing header map, capped at MaxPiggybackEntries (full sends
// the whole table — the anti-entropy exchange). The self entry is
// refreshed with the quantized load, throttled by PiggybackRefresh, so in
// steady state the table version is unchanged and the per-peer encoding
// cache answers with a version compare.
func (s *Server) piggybackTo(h httpx.Header, peer string, full bool) {
	now := s.now()
	s.table.RefreshSelf(s.advertisedLoad(now), now, s.params.PiggybackRefresh)
	h.Set(glt.HeaderName, s.table.EncodePiggybackTo(peer, now, s.params.MaxPiggybackEntries, full))
}

// piggybackClient attaches the self-entry-only header to a plain client
// response. Clients cannot ack deltas, so they get the one entry that is
// always fresh here — constant-size however large the cluster is.
func (s *Server) piggybackClient(h httpx.Header) {
	now := s.now()
	s.table.RefreshSelf(s.advertisedLoad(now), now, s.params.PiggybackRefresh)
	h.Set(glt.HeaderName, s.table.EncodeClientHeader())
}

// absorbPiggyback merges piggybacked load information from an incoming
// header map and returns the decoded piggyback — sender address, full-
// exchange flag, and any per-shard digests — so callers that speak the
// digest protocol can see what the sender asked for.
func (s *Server) absorbPiggyback(h httpx.Header) glt.Piggyback {
	var p glt.Piggyback
	if v := h.Get(glt.HeaderName); v != "" {
		p = glt.DecodePiggyback(v)
		s.table.Absorb(p, s.now())
		s.reconcileDownPeers(p.Entries)
	}
	s.absorbHot(h)
	return p
}

// absorb merges piggybacked load information from an incoming header map.
// It reports the sender's address when the header carried one ("" for
// plain clients and legacy peers) and whether the sender asked for a
// full-table anti-entropy response.
func (s *Server) absorb(h httpx.Header) (from string, full bool) {
	p := s.absorbPiggyback(h)
	return p.From, p.Full
}

// reconcileDownPeers checks piggybacked entries against the declared-down
// list (§4.5 recovery): an entry measured after the peer was declared
// down proves it came back, so it is re-admitted with its failure
// trackers (ping failures, circuit breaker) reset and becomes eligible
// for migrations again. A stale echo of a dead peer's old entry — other
// servers may keep relaying it long after the crash — is scrubbed from
// the table so a dead peer is never falsely resurrected.
func (s *Server) reconcileDownPeers(entries []glt.Entry) {
	s.peerMu.Lock()
	if len(s.downAt) == 0 {
		s.peerMu.Unlock()
		return
	}
	var readmit, scrub []string
	for _, e := range entries {
		downSince, down := s.downAt[e.Server]
		if !down {
			continue
		}
		if e.Updated.After(downSince) {
			delete(s.downAt, e.Server)
			delete(s.pingFail, e.Server)
			readmit = append(readmit, e.Server)
		} else {
			scrub = append(scrub, e.Server)
		}
	}
	s.peerMu.Unlock()
	for _, p := range readmit {
		s.res.Reset(p)
		s.log.Printf("dcws %s: peer %s recovered, re-admitted to load table", s.Addr(), p)
	}
	for _, p := range scrub {
		s.table.Remove(p)
	}
}

// peerSuspect reports whether peer is in the suspect window: it has
// recent unresolved probe failures, a non-closed circuit breaker, or was
// declared down. Suspect peers receive no new migrations or replicas
// until they prove healthy again — the wobble between "fine" and
// "declared down" must not attract documents it would immediately strand.
func (s *Server) peerSuspect(peer string) bool {
	s.peerMu.Lock()
	fails := s.pingFail[peer]
	_, down := s.downAt[peer]
	s.peerMu.Unlock()
	if down || fails > 0 {
		return true
	}
	return s.res.StateOf(peer) != resilience.Closed
}

// recoverPeer clears every failure tracker for a peer that answered a
// probe: consecutive ping failures, down state, and the circuit breaker.
func (s *Server) recoverPeer(peer string) {
	s.peerMu.Lock()
	_, wasDown := s.downAt[peer]
	hadFailures := s.pingFail[peer] > 0
	delete(s.downAt, peer)
	delete(s.pingFail, peer)
	s.peerMu.Unlock()
	s.res.Reset(peer)
	if wasDown || hadFailures {
		s.log.Printf("dcws %s: peer %s healthy again", s.Addr(), peer)
	}
}
