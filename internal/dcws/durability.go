package dcws

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"dcws/internal/graph"
	"dcws/internal/naming"
	"dcws/internal/policy"
	"dcws/internal/store"
	"dcws/internal/wal"
)

// WAL record types. Every durable state change the paper's §4.5 recovery
// story would otherwise lose appends one of these; the request hot path
// (serveAsHome/loadLocal) appends nothing.
const (
	// recDocPut: a home document's content was created or replaced
	// (payload: name). The bytes live in the store; replay reparses them.
	recDocPut uint8 = 1
	// recDocDelete: a home document was removed (payload: name).
	recDocDelete uint8 = 2
	// recCoopAdmit: a co-op copy was fetched or refreshed (payload: key,
	// home addr, original name, size, hash).
	recCoopAdmit uint8 = 3
	// recCoopEvict: a co-op copy's bytes were evicted for disk budget; the
	// document stays logically hosted (payload: key).
	recCoopEvict uint8 = 4
	// recCoopForget: this server stopped hosting a co-op document —
	// revoked by its home or re-migrated away (payload: key).
	recCoopForget uint8 = 5
	// recMigrate: a home document was migrated to a co-op (payload: doc,
	// coop addr, migration time).
	recMigrate uint8 = 6
	// recRevoke: a migrated home document was revoked back (payload: doc).
	recRevoke uint8 = 7
	// recReplicas: a migrated document's replica set changed (payload:
	// doc, addr list).
	recReplicas uint8 = 8
	// recSubAdd: a co-op subscribed to invalidation pushes for one of our
	// documents (payload: coop addr, doc name). Survives restarts so the
	// recovered home keeps pushing when the co-op reconnects.
	recSubAdd uint8 = 9
	// recSubDel: an invalidation subscription ended — unsubscribe, revoke,
	// or delete (payload: coop addr, doc name).
	recSubDel uint8 = 10
)

// serverSnapVersion versions the full-state snapshot payload layered on
// the LDG snapshot encoding. Version 2 appends the invalidation
// subscriber table after the peer list; version-1 snapshots still decode.
const serverSnapVersion = 2

// coopSeed is one hosted document's durable record, as carried through
// snapshots and recovery before the live coopSet exists.
type coopSeed struct {
	key     string
	home    naming.Origin
	name    string
	present bool
	size    int64
	hash    uint64
}

// recoveredState is everything recovery reconstructs before the Server is
// built: the document graph, the hosted-document seeds, the migration
// ledger, the replica sets, and the peers last seen in the load table.
type recoveredState struct {
	ldg      *graph.LDG
	coops    map[string]*coopSeed
	ledger   *policy.Ledger
	replicas map[string][]string
	peers    []string
	// subscribers maps co-op addr → document names it was subscribed to
	// for invalidation pushes when the server went down.
	subscribers map[string][]string

	fromSnapshot bool
	snapshotLSN  uint64
	replayed     int

	// Phase timings for the startup "recovery" trace recorded once the
	// telemetry ring exists (the recovery itself runs before it is built).
	snapshotDur time.Duration
	replayDur   time.Duration
}

// recoveryStats summarizes the last startup recovery for status and the
// dcws_recovery_* metric family.
type recoveryStats struct {
	recovered    bool
	seconds      float64
	replayed     int
	snapshotLSN  uint64
	docsRestored int
	coopRestored int
	coopDropped  int

	// Per-phase wall times, re-recorded as child spans of the startup
	// "recovery" trace once the telemetry ring exists.
	snapshotDur  time.Duration
	replayDur    time.Duration
	reconcileDur time.Duration
}

// ---- record payload encoding -------------------------------------------

func putStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func getUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, errors.New("dcws: truncated uvarint in WAL payload")
	}
	return v, data[n:], nil
}

func getStr(data []byte) (string, []byte, error) {
	n, data, err := getUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(data)) < n {
		return "", nil, errors.New("dcws: truncated string in WAL payload")
	}
	return string(data[:n]), data[n:], nil
}

func encodeNameRecord(name string) []byte {
	return putStr(make([]byte, 0, len(name)+2), name)
}

func encodeCoopAdmit(c coopSeed) []byte {
	buf := make([]byte, 0, len(c.key)+len(c.name)+32)
	buf = putStr(buf, c.key)
	buf = putStr(buf, c.home.Addr())
	buf = putStr(buf, c.name)
	buf = binary.AppendUvarint(buf, uint64(c.size))
	buf = binary.AppendUvarint(buf, c.hash)
	return buf
}

func decodeCoopAdmit(data []byte) (coopSeed, error) {
	var c coopSeed
	var err error
	var homeAddr string
	if c.key, data, err = getStr(data); err != nil {
		return c, err
	}
	if homeAddr, data, err = getStr(data); err != nil {
		return c, err
	}
	if c.home, err = naming.ParseOrigin(homeAddr); err != nil {
		return c, err
	}
	if c.name, data, err = getStr(data); err != nil {
		return c, err
	}
	var size, hash uint64
	if size, data, err = getUvarint(data); err != nil {
		return c, err
	}
	if hash, _, err = getUvarint(data); err != nil {
		return c, err
	}
	c.size = int64(size)
	c.hash = hash
	c.present = true
	return c, nil
}

func encodeMigrate(doc, coop string, at time.Time) []byte {
	buf := make([]byte, 0, len(doc)+len(coop)+16)
	buf = putStr(buf, doc)
	buf = putStr(buf, coop)
	buf = binary.AppendUvarint(buf, uint64(at.UnixNano()))
	return buf
}

func decodeMigrate(data []byte) (doc, coop string, at time.Time, err error) {
	if doc, data, err = getStr(data); err != nil {
		return
	}
	if coop, data, err = getStr(data); err != nil {
		return
	}
	var ns uint64
	if ns, _, err = getUvarint(data); err != nil {
		return
	}
	at = time.Unix(0, int64(ns))
	return
}

func encodeReplicas(doc string, addrs []string) []byte {
	buf := make([]byte, 0, len(doc)+16*len(addrs)+8)
	buf = putStr(buf, doc)
	buf = binary.AppendUvarint(buf, uint64(len(addrs)))
	for _, a := range addrs {
		buf = putStr(buf, a)
	}
	return buf
}

func decodeReplicas(data []byte) (doc string, addrs []string, err error) {
	if doc, data, err = getStr(data); err != nil {
		return
	}
	var n uint64
	if n, data, err = getUvarint(data); err != nil {
		return
	}
	for i := uint64(0); i < n; i++ {
		var a string
		if a, data, err = getStr(data); err != nil {
			return
		}
		addrs = append(addrs, a)
	}
	return
}

// ---- full-state snapshot ------------------------------------------------

// encodeServerSnapshot captures the durable server state: the LDG, the
// hosted-document set, the migration ledger, the replica sets, and the
// load table's peer addresses (so a restarted server knows the cluster
// even when its static peer list is incomplete).
func (s *Server) encodeServerSnapshot() []byte {
	ldgBytes := s.ldg.EncodeSnapshot()
	buf := make([]byte, 0, len(ldgBytes)+4096)
	buf = append(buf, serverSnapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(ldgBytes)))
	buf = append(buf, ldgBytes...)

	seeds := s.coops.snapshotSeeds()
	buf = binary.AppendUvarint(buf, uint64(len(seeds)))
	for _, c := range seeds {
		buf = putStr(buf, c.key)
		buf = putStr(buf, c.home.Addr())
		buf = putStr(buf, c.name)
		if c.present {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(c.size))
		buf = binary.AppendUvarint(buf, c.hash)
	}

	migs := s.ledger.Snapshot()
	buf = binary.AppendUvarint(buf, uint64(len(migs)))
	for _, m := range migs {
		buf = putStr(buf, m.Doc)
		buf = putStr(buf, m.Coop)
		buf = binary.AppendUvarint(buf, uint64(m.At.UnixNano()))
	}

	s.repMu.RLock()
	docs := make([]string, 0, len(s.replicas))
	for doc := range s.replicas {
		docs = append(docs, doc)
	}
	reps := make(map[string][]string, len(s.replicas))
	for doc, addrs := range s.replicas {
		reps[doc] = append([]string(nil), addrs...)
	}
	s.repMu.RUnlock()
	sort.Strings(docs)
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	for _, doc := range docs {
		buf = putStr(buf, doc)
		addrs := reps[doc]
		buf = binary.AppendUvarint(buf, uint64(len(addrs)))
		for _, a := range addrs {
			buf = putStr(buf, a)
		}
	}

	peers := s.table.Servers()
	buf = binary.AppendUvarint(buf, uint64(len(peers)))
	for _, p := range peers {
		buf = putStr(buf, p)
	}

	subs := s.hub.snapshot()
	addrs := make([]string, 0, len(subs))
	for addr := range subs {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	buf = binary.AppendUvarint(buf, uint64(len(addrs)))
	for _, addr := range addrs {
		buf = putStr(buf, addr)
		docs := subs[addr]
		buf = binary.AppendUvarint(buf, uint64(len(docs)))
		for _, d := range docs {
			buf = putStr(buf, d)
		}
	}
	return buf
}

// decodeServerSnapshot is the inverse of encodeServerSnapshot.
func decodeServerSnapshot(data []byte) (*recoveredState, error) {
	if len(data) == 0 || data[0] < 1 || data[0] > serverSnapVersion {
		return nil, fmt.Errorf("dcws: unsupported snapshot version")
	}
	version := data[0]
	data = data[1:]
	n, data, err := getUvarint(data)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) < n {
		return nil, errors.New("dcws: snapshot truncated at LDG")
	}
	ldg, err := graph.DecodeSnapshot(data[:n])
	if err != nil {
		return nil, err
	}
	data = data[n:]
	rec := &recoveredState{
		ldg:          ldg,
		coops:        make(map[string]*coopSeed),
		ledger:       policy.NewLedger(),
		replicas:     make(map[string][]string),
		subscribers:  make(map[string][]string),
		fromSnapshot: true,
	}

	count, data, err := getUvarint(data)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		var c coopSeed
		var homeAddr string
		if c.key, data, err = getStr(data); err != nil {
			return nil, err
		}
		if homeAddr, data, err = getStr(data); err != nil {
			return nil, err
		}
		if c.home, err = naming.ParseOrigin(homeAddr); err != nil {
			return nil, err
		}
		if c.name, data, err = getStr(data); err != nil {
			return nil, err
		}
		if len(data) < 1 {
			return nil, errors.New("dcws: snapshot truncated at coop flags")
		}
		c.present = data[0] == 1
		data = data[1:]
		var size, hash uint64
		if size, data, err = getUvarint(data); err != nil {
			return nil, err
		}
		if hash, data, err = getUvarint(data); err != nil {
			return nil, err
		}
		c.size = int64(size)
		c.hash = hash
		rec.coops[c.key] = &c
	}

	if count, data, err = getUvarint(data); err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		var doc, coop string
		var ns uint64
		if doc, data, err = getStr(data); err != nil {
			return nil, err
		}
		if coop, data, err = getStr(data); err != nil {
			return nil, err
		}
		if ns, data, err = getUvarint(data); err != nil {
			return nil, err
		}
		rec.ledger.Record(doc, coop, time.Unix(0, int64(ns)))
	}

	if count, data, err = getUvarint(data); err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		var doc string
		var nAddrs uint64
		if doc, data, err = getStr(data); err != nil {
			return nil, err
		}
		if nAddrs, data, err = getUvarint(data); err != nil {
			return nil, err
		}
		addrs := make([]string, 0, nAddrs)
		for j := uint64(0); j < nAddrs; j++ {
			var a string
			if a, data, err = getStr(data); err != nil {
				return nil, err
			}
			addrs = append(addrs, a)
		}
		rec.replicas[doc] = addrs
	}

	if count, data, err = getUvarint(data); err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		var p string
		if p, data, err = getStr(data); err != nil {
			return nil, err
		}
		rec.peers = append(rec.peers, p)
	}

	if version >= 2 {
		if count, data, err = getUvarint(data); err != nil {
			return nil, err
		}
		for i := uint64(0); i < count; i++ {
			var addr string
			var nDocs uint64
			if addr, data, err = getStr(data); err != nil {
				return nil, err
			}
			if nDocs, data, err = getUvarint(data); err != nil {
				return nil, err
			}
			docs := make([]string, 0, nDocs)
			for j := uint64(0); j < nDocs; j++ {
				var d string
				if d, data, err = getStr(data); err != nil {
					return nil, err
				}
				docs = append(docs, d)
			}
			rec.subscribers[addr] = docs
		}
	}
	return rec, nil
}

// ---- recovery -----------------------------------------------------------

// recoverState loads the newest snapshot (or builds the LDG from the store
// when none exists) and replays every WAL record appended since, yielding
// the state a crashed server had accumulated. The store itself is the
// document byte authority; the WAL carries the metadata that §4.5 would
// otherwise force the cluster to revoke and rebuild.
func recoverState(wlog *wal.Log, st store.Store, resolve func(base, raw string) string) (*recoveredState, error) {
	var rec *recoveredState
	phase := time.Now()
	if data, lsn, ok := wlog.SnapshotData(); ok {
		var err error
		rec, err = decodeServerSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("dcws: decode snapshot: %w", err)
		}
		rec.snapshotLSN = lsn
	} else {
		ldg, err := graph.BuildWithResolver(st, resolve)
		if err != nil {
			return nil, err
		}
		rec = &recoveredState{
			ldg:         ldg,
			coops:       make(map[string]*coopSeed),
			ledger:      policy.NewLedger(),
			replicas:    make(map[string][]string),
			subscribers: make(map[string][]string),
		}
	}
	rec.snapshotDur = time.Since(phase)
	phase = time.Now()
	err := wlog.Replay(func(r wal.Record) error {
		rec.replayed++
		return rec.apply(r, st)
	})
	if err != nil {
		return nil, fmt.Errorf("dcws: replay WAL: %w", err)
	}
	rec.replayDur = time.Since(phase)
	return rec, nil
}

// apply folds one replayed record into the recovering state. Decode
// failures on individual records are tolerated (the record is skipped):
// a WAL written by a newer version must not brick an older server.
func (rec *recoveredState) apply(r wal.Record, st store.Store) error {
	switch r.Type {
	case recDocPut:
		name, _, err := getStr(r.Data)
		if err != nil {
			return nil
		}
		size, err := st.Size(name)
		if err != nil {
			return nil // deleted again later; a recDocDelete follows
		}
		var content []byte
		if graph.IsHTML(name) {
			content, _ = st.Get(name)
		}
		rec.ldg.AddDoc(name, size, content)
	case recDocDelete:
		name, _, err := getStr(r.Data)
		if err != nil {
			return nil
		}
		rec.ldg.Remove(name)
	case recCoopAdmit:
		c, err := decodeCoopAdmit(r.Data)
		if err != nil {
			return nil
		}
		rec.coops[c.key] = &c
	case recCoopEvict:
		key, _, err := getStr(r.Data)
		if err != nil {
			return nil
		}
		if c, ok := rec.coops[key]; ok {
			c.present = false
			c.size = 0
		}
	case recCoopForget:
		key, _, err := getStr(r.Data)
		if err != nil {
			return nil
		}
		delete(rec.coops, key)
	case recMigrate:
		doc, coop, at, err := decodeMigrate(r.Data)
		if err != nil {
			return nil
		}
		rec.ldg.MarkMigrated(doc, coop)
		rec.ledger.Record(doc, coop, at)
		rec.replicas[doc] = []string{coop}
	case recRevoke:
		doc, _, err := getStr(r.Data)
		if err != nil {
			return nil
		}
		rec.ldg.MarkRevoked(doc)
		rec.ledger.Forget(doc)
		delete(rec.replicas, doc)
	case recReplicas:
		doc, addrs, err := decodeReplicas(r.Data)
		if err != nil {
			return nil
		}
		rec.replicas[doc] = addrs
	case recSubAdd:
		addr, name, err := decodeSubRecord(r.Data)
		if err != nil {
			return nil
		}
		for _, d := range rec.subscribers[addr] {
			if d == name {
				return nil
			}
		}
		rec.subscribers[addr] = append(rec.subscribers[addr], name)
	case recSubDel:
		addr, name, err := decodeSubRecord(r.Data)
		if err != nil {
			return nil
		}
		docs := rec.subscribers[addr]
		for i, d := range docs {
			if d == name {
				rec.subscribers[addr] = append(docs[:i], docs[i+1:]...)
				break
			}
		}
		if len(rec.subscribers[addr]) == 0 {
			delete(rec.subscribers, addr)
		}
	}
	return nil
}

// reconcile checks the recovered metadata against what actually survived
// in the store: hosted copies whose bytes are gone flip to absent (they
// re-fetch lazily), orphaned /~migrate files with no hosting record are
// deleted, and home documents that appeared while the server was down are
// parsed into the graph.
func (rec *recoveredState) reconcile(st store.Store, stats *recoveryStats) error {
	names, err := st.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		if naming.IsMigrated(name) {
			if _, hosted := rec.coops[name]; !hosted {
				st.Delete(name)
				stats.coopDropped++
			}
			continue
		}
		if !rec.ldg.Has(name) {
			size, err := st.Size(name)
			if err != nil {
				continue
			}
			var content []byte
			if graph.IsHTML(name) {
				content, _ = st.Get(name)
			}
			rec.ldg.AddDoc(name, size, content)
			stats.docsRestored++
		}
	}
	for _, c := range rec.coops {
		if c.present && !st.Has(c.key) {
			c.present = false
			c.size = 0
		}
		if c.present {
			stats.coopRestored++
		}
	}
	return nil
}

// ---- live appends -------------------------------------------------------

// walAppend logs one durable state change; a no-op without a WAL. Append
// failures are logged, not fatal: the server keeps serving and the
// operator sees the durability gap.
func (s *Server) walAppend(typ uint8, data []byte) {
	if s.wal == nil {
		return
	}
	if _, err := s.wal.Append(typ, data); err != nil {
		s.log.Printf("dcws %s: wal append type %d: %v", s.Addr(), typ, err)
	}
}

// walCoopAdmit logs a hosted copy's admission or refresh, reading the
// record's durable fields back from the coopSet so the log always
// carries what the set actually holds.
func (s *Server) walCoopAdmit(key string) {
	if s.wal == nil {
		return
	}
	if seed, ok := s.coops.seedOf(key); ok && seed.present {
		s.walAppend(recCoopAdmit, encodeCoopAdmit(seed))
	}
}

// writeSnapshot persists the full server state and prunes obsolete WAL
// segments. Called by the snapshot loop, on clean shutdown, and by
// TickSnapshot in deterministic tests.
func (s *Server) writeSnapshot() error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.WriteSnapshot(s.encodeServerSnapshot()); err != nil {
		s.log.Printf("dcws %s: write snapshot: %v", s.Addr(), err)
		return err
	}
	return nil
}

// snapshotLoop periodically checkpoints the durable state so recovery
// replays a short tail instead of the whole history.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case <-s.cfg.Clock.After(s.params.SnapshotInterval):
		}
		s.writeSnapshot()
	}
}

// TickSnapshot writes one state snapshot synchronously (deterministic
// harness hook; a no-op without a WAL).
func (s *Server) TickSnapshot() { s.writeSnapshot() }

// WAL exposes the underlying log (status tooling, tests); nil when the
// durable tier is disabled.
func (s *Server) WAL() *wal.Log { return s.wal }

// Recovery reports the last startup recovery's statistics (all zero when
// the server started fresh or has no WAL).
func (s *Server) Recovery() RecoveryInfo {
	return RecoveryInfo{
		Recovered:    s.recovery.recovered,
		Seconds:      s.recovery.seconds,
		ReplayedRecs: s.recovery.replayed,
		SnapshotLSN:  s.recovery.snapshotLSN,
		DocsRestored: s.recovery.docsRestored,
		CoopRestored: s.recovery.coopRestored,
		CoopDropped:  s.recovery.coopDropped,
	}
}

// RecoveryInfo is the public form of the last recovery's statistics.
type RecoveryInfo struct {
	// Recovered is true when startup state came from snapshot+replay
	// rather than a cold store scan.
	Recovered bool `json:"recovered"`
	// Seconds is the wall time recovery took inside New.
	Seconds float64 `json:"seconds"`
	// ReplayedRecs counts WAL records replayed since the snapshot.
	ReplayedRecs int `json:"replayed_records"`
	// SnapshotLSN is the LSN the loaded snapshot covered (0: none).
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// DocsRestored counts home documents found in the store but missing
	// from the recovered graph (parsed back in during reconciliation).
	DocsRestored int `json:"docs_restored"`
	// CoopRestored counts hosted co-op copies that survived with their
	// bytes intact — the copies §4.5 would have revoked cluster-wide.
	CoopRestored int `json:"coop_restored"`
	// CoopDropped counts orphaned /~migrate files deleted because no
	// hosting record claimed them.
	CoopDropped int `json:"coop_dropped"`
}
