package dcws

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/resilience"
)

const hedgeKey = "/~migrate/home/80/page.html"

// hedgeWorld boots home + two co-op servers, migrates /page.html to coop1,
// declares coop2 a second replica (as the hot-spot replicator would), and
// has both co-ops pull their physical copies. coop2's pull response carries
// X-DCWS-Replicas, so it learns coop1 as a hedge sibling; its copy is then
// dropped so the next request must refetch.
func hedgeWorld(t *testing.T, coop2Params Params) (*testWorld, *Server, *Server, *Server) {
	t.Helper()
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil, Params{})
	coop1 := w.addServer("coop1", 81, nil, nil, Params{})
	coop2 := w.addServer("coop2", 82, nil, nil, coop2Params)

	home.migrate("/page.html", "coop1:81")
	if resp := w.get("coop1:81", hedgeKey); resp.Status != 200 {
		t.Fatalf("coop1 pull = %d", resp.Status)
	}
	home.repMu.Lock()
	home.replicas["/page.html"] = []string{"coop1:81", "coop2:82"}
	home.repMu.Unlock()
	if resp := w.get("coop2:82", hedgeKey); resp.Status != 200 {
		t.Fatalf("coop2 pull = %d", resp.Status)
	}
	if sibs := coop2.coops.siblingsOf(hedgeKey); len(sibs) != 1 || sibs[0] != "coop1:81" {
		t.Fatalf("coop2 siblings = %v, want [coop1:81]", sibs)
	}
	coop2.coops.markAbsent(hedgeKey)
	if err := coop2.cfg.Store.Delete(hedgeKey); err != nil {
		t.Fatal(err)
	}
	return w, home, coop1, coop2
}

// TestHedgedFetchReplicaWinsWhenHomeStalls is the acceptance scenario: the
// home server's link stalls far beyond the hedge delay, so the refetch must
// be answered out of the sibling replica's copy, quickly, while the primary
// leg is still stuck.
func TestHedgedFetchReplicaWinsWhenHomeStalls(t *testing.T) {
	w, _, _, coop2 := hedgeWorld(t, Params{
		HedgeDelay:   10 * time.Millisecond,
		FetchTimeout: 50 * time.Millisecond,
	})
	// Every write on the coop2<->home link now sleeps well past both the
	// hedge delay and the per-attempt fetch timeout. Link faults arm at
	// dial time, so the pooled connection left over from the learning pull
	// must be flushed for the stall to bite.
	w.fabric.SetStall("coop2:82", "home:80", 300*time.Millisecond)
	coop2.client.Pool.FlushAddr("home:80")

	start := time.Now()
	resp := w.get("coop2:82", hedgeKey)
	elapsed := time.Since(start)
	if resp.Status != 200 {
		t.Fatalf("hedged refetch = %d: %s", resp.Status, resp.Body)
	}
	if !strings.Contains(string(resp.Body), "pic.gif") {
		t.Fatalf("body = %q", resp.Body)
	}
	if elapsed >= 250*time.Millisecond {
		t.Fatalf("hedged refetch took %v; a stalled primary attempt alone takes 300ms", elapsed)
	}
	st := coop2.Status()
	if st.Hedge.Launched != 1 || st.Hedge.Won != 1 || st.Hedge.Wasted != 0 {
		t.Fatalf("hedge counters = %+v, want launched=1 won=1 wasted=0", st.Hedge)
	}
	found := false
	for _, sp := range coop2.Traces().Snapshot() {
		if sp.Op == "fetch-hedge" && sp.Status == 200 && sp.Peer == "coop1:81" {
			found = true
		}
	}
	if !found {
		t.Fatal("no successful fetch-hedge span recorded")
	}
}

// TestHedgeNotLaunchedWhenHomeFast: with a healthy home answering well
// within the hedge delay, the sibling must never be bothered.
func TestHedgeNotLaunchedWhenHomeFast(t *testing.T) {
	w, home, _, coop2 := hedgeWorld(t, Params{HedgeDelay: 2 * time.Second})
	fetchesBefore := home.Stats().Fetches.Value()
	if resp := w.get("coop2:82", hedgeKey); resp.Status != 200 {
		t.Fatalf("refetch = %d", resp.Status)
	}
	if home.Stats().Fetches.Value() == fetchesBefore {
		t.Fatal("refetch did not reach the home server")
	}
	st := coop2.Status()
	if st.Hedge.Launched != 0 {
		t.Fatalf("hedge launched %d times against a fast home", st.Hedge.Launched)
	}
}

// TestHedgeMissCountedSeparately: a raced sibling that answers but has no
// usable copy (stale replica list) is a miss, not a won or lost race —
// the counters HedgeDelay tuning reads must keep the cases apart.
func TestHedgeMissCountedSeparately(t *testing.T) {
	w, _, coop1, coop2 := hedgeWorld(t, Params{
		HedgeDelay:    10 * time.Millisecond,
		FetchTimeout:  50 * time.Millisecond,
		FetchAttempts: 1,
	})
	// Home stalls past both the hedge delay and the fetch timeout, and the
	// sibling's copy is dropped behind coop2's back: the hedge probe
	// answers 404 and only the (doomed) primary leg remains.
	w.fabric.SetStall("coop2:82", "home:80", 300*time.Millisecond)
	coop2.client.Pool.FlushAddr("home:80")
	coop1.coops.markAbsent(hedgeKey)
	if err := coop1.cfg.Store.Delete(hedgeKey); err != nil {
		t.Fatal(err)
	}

	if resp := w.get("coop2:82", hedgeKey); resp.Status == 200 {
		t.Fatal("refetch succeeded with no reachable source")
	}
	st := coop2.Status()
	if st.Hedge.Launched != 1 || st.Hedge.Won != 0 || st.Hedge.Miss != 1 || st.Hedge.Wasted != 0 {
		t.Fatalf("hedge counters = %+v, want launched=1 won=0 miss=1 wasted=0", st.Hedge)
	}
}

// TestPickHedgeSiblingGating: suspect siblings are skipped and a negative
// HedgeDelay disables hedging outright.
func TestPickHedgeSiblingGating(t *testing.T) {
	_, _, _, coop2 := hedgeWorld(t, Params{})
	if sib := coop2.pickHedgeSibling(hedgeKey, "home:80"); sib != "coop1:81" {
		t.Fatalf("sibling = %q, want coop1:81", sib)
	}
	coop2.peerMu.Lock()
	coop2.pingFail["coop1:81"] = 1
	coop2.peerMu.Unlock()
	if sib := coop2.pickHedgeSibling(hedgeKey, "home:80"); sib != "" {
		t.Fatalf("picked suspect sibling %q", sib)
	}
	coop2.peerMu.Lock()
	delete(coop2.pingFail, "coop1:81")
	coop2.peerMu.Unlock()
	coop2.params.HedgeDelay = -1
	if sib := coop2.pickHedgeSibling(hedgeKey, "home:80"); sib != "" {
		t.Fatalf("picked %q with hedging disabled", sib)
	}
}

// TestBreakerTripFlushesPeerPool: when a peer's circuit breaker trips, its
// pooled connections are presumed as broken as the RPCs that tripped it and
// are flushed, so the half-open trial call later dials fresh.
func TestBreakerTripFlushesPeerPool(t *testing.T) {
	_, _, _, coop2 := hedgeWorld(t, Params{BreakerThreshold: 1})
	if ps := coop2.client.Pool.Stats(); ps.Peers["home:80"].Idle == 0 {
		t.Fatal("learning pull left no idle pooled connection to home")
	}
	err := coop2.res.Execute(resilience.Policy{MaxAttempts: 1}, "home:80", func() error {
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("failing RPC reported success")
	}
	ps := coop2.client.Pool.Stats()
	if idle := ps.Peers["home:80"].Idle; idle != 0 {
		t.Fatalf("home still has %d idle pooled conns after its breaker tripped", idle)
	}
	if ps.Retires[httpx.RetireFlush] == 0 {
		t.Fatal("no connection retired with cause flush")
	}
}

// TestHedgeProbeNeverRecurses: a hedge probe against a co-op that has no
// physical copy must answer 404 without fetching from home (the probe
// exists precisely because home is presumed slow); with the copy present it
// serves the bytes with the validator hash.
func TestHedgeProbeNeverRecurses(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), nil, Params{})
	w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")
	key := "/~migrate/home/80/page.html"

	probe := httpx.NewRequest("GET", key)
	probe.Header.Set(headerHedge, "1")
	resp, err := w.client.Do("coop:81", probe)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("hedge probe without copy = %d, want 404", resp.Status)
	}
	if home.Stats().Fetches.Value() != 0 {
		t.Fatal("hedge probe recursed into a fetch from home")
	}

	if resp := w.get("coop:81", key); resp.Status != 200 {
		t.Fatalf("lazy migration pull = %d", resp.Status)
	}
	probe = httpx.NewRequest("GET", key)
	probe.Header.Set(headerHedge, "1")
	resp, err = w.client.Do("coop:81", probe)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Header.Get(headerValidate) == "" {
		t.Fatalf("hedge probe with copy = %d (validate=%q), want 200 with hash",
			resp.Status, resp.Header.Get(headerValidate))
	}
}

// TestEvictSiblingOnPeerDown: declaring a peer down must purge it from
// every hosted document's hedge-sibling list, so no future fetch races
// toward a dead server.
func TestEvictSiblingOnPeerDown(t *testing.T) {
	_, _, _, coop2 := hedgeWorld(t, Params{})
	// A second hosted document also listing coop1 as a sibling.
	otherKey := "/~migrate/home/80/pic.gif"
	coop2.coops.touch(otherKey, naming.Origin{Host: "home", Port: 80}, "/pic.gif", coop2.now())
	coop2.coops.setSiblings(otherKey, []string{"coop1:81", "coop3:99"})

	coop2.declareDown("coop1:81")

	if sibs := coop2.coops.siblingsOf(hedgeKey); len(sibs) != 0 {
		t.Fatalf("siblings after down declaration = %v, want none", sibs)
	}
	if sibs := coop2.coops.siblingsOf(otherKey); len(sibs) != 1 || sibs[0] != "coop3:99" {
		t.Fatalf("other doc siblings = %v, want [coop3:99]", sibs)
	}
}

// TestRevocationRacesHedgedFetch: the home revokes the document while one
// co-op (coop2) is unreachable, so coop2 still believes it hosts the
// document with coop1 as a hedge sibling. Its next refetch races a slow
// home against that revoked sibling: the probe answers 404 (a miss, not a
// win), the primary leg gets the home's 301, and the client lands on the
// home's own copy — a revoked copy is never served.
func TestRevocationRacesHedgedFetch(t *testing.T) {
	w, home, _, coop2 := hedgeWorld(t, Params{
		HedgeDelay:   10 * time.Millisecond,
		FetchTimeout: 2 * time.Second,
	})
	// Revoke with coop2 unreachable: coop1's copy is discarded, coop2
	// keeps its stale record and sibling list.
	w.fabric.SetDialFailRate(memnet.Wildcard, "coop2:82", 1.0)
	home.client.Pool.FlushAddr("coop2:82")
	home.revoke("/page.html")
	w.fabric.SetDialFailRate(memnet.Wildcard, "coop2:82", 0)
	if sibs := coop2.coops.siblingsOf(hedgeKey); len(sibs) != 1 {
		t.Fatalf("stale sibling list = %v, want the revoked coop1 entry", sibs)
	}

	// Home is slow enough that the hedge launches, but well within the
	// fetch timeout, so the primary leg still completes.
	w.fabric.SetStall("coop2:82", "home:80", 100*time.Millisecond)
	coop2.client.Pool.FlushAddr("home:80")

	fetchesBefore := home.Stats().Fetches.Value()
	resp := w.follow("coop2:82", hedgeKey)
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "pic.gif") {
		t.Fatalf("refetch = %d %q", resp.Status, resp.Body)
	}
	st := coop2.Status()
	if st.Hedge.Launched != 1 || st.Hedge.Won != 0 || st.Hedge.Miss != 1 || st.Hedge.Wasted != 0 {
		t.Fatalf("hedge counters = %+v, want launched=1 won=0 miss=1 wasted=0", st.Hedge)
	}
	// The 301 told coop2 it no longer hosts the document.
	if _, ok := coop2.coops.view(hedgeKey); ok {
		t.Fatal("coop2 still hosts the revoked document")
	}
	// And the home served its own copy directly — the revoked document was
	// never re-fetched by anyone.
	if got := home.Stats().Fetches.Value(); got != fetchesBefore {
		t.Fatalf("home fetches = %d, want %d", got, fetchesBefore)
	}
}

// TestHedgeMissDropsStaleSibling: a sibling that answers a hedge probe
// without a copy is evicted from the sibling list, so later refetches do
// not race toward a replica known to be gone.
func TestHedgeMissDropsStaleSibling(t *testing.T) {
	w, _, coop1, coop2 := hedgeWorld(t, Params{
		HedgeDelay:    10 * time.Millisecond,
		FetchTimeout:  50 * time.Millisecond,
		FetchAttempts: 1,
	})
	// Home stalls past the fetch timeout and the sibling's copy is gone:
	// the refetch fails outright, but the probe's 404 must still evict the
	// stale sibling entry.
	w.fabric.SetStall("coop2:82", "home:80", 300*time.Millisecond)
	coop2.client.Pool.FlushAddr("home:80")
	coop1.coops.markAbsent(hedgeKey)
	if err := coop1.cfg.Store.Delete(hedgeKey); err != nil {
		t.Fatal(err)
	}

	if resp := w.get("coop2:82", hedgeKey); resp.Status == 200 {
		t.Fatal("refetch succeeded with no reachable source")
	}
	if st := coop2.Status(); st.Hedge.Miss != 1 {
		t.Fatalf("hedge counters = %+v, want miss=1", st.Hedge)
	}
	if sibs := coop2.coops.siblingsOf(hedgeKey); len(sibs) != 0 {
		t.Fatalf("siblings after miss = %v, want none", sibs)
	}
}
