package dcws

import (
	"fmt"
	"strings"
	"time"

	"dcws/internal/clock"
	"dcws/internal/glt"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
)

// InvalidateReport compares the paper's §4.5 polling validation against
// push invalidation with leases, on a live in-memory cluster in steady
// state: every co-op holds its copies, nothing is changing, and the only
// consistency traffic is whatever the protocol forces. Polling pays one
// conditional GET per hosted copy per T_val forever; push pays zero, and
// an actual update reaches subscribers in one frame's flight time.
type InvalidateReport struct {
	Nodes int `json:"nodes"`
	Docs  int `json:"docs"`
	// Rounds is the number of validator intervals measured in each mode.
	Rounds int `json:"rounds"`
	// PollingRPCs is the steady-state validation RPC count over Rounds
	// validator ticks with leases off (the paper's design).
	PollingRPCs int64 `json:"polling_rpcs"`
	// PushRPCs is the same measurement with leases on — validator polls
	// that still happened despite lease cover.
	PushRPCs int64 `json:"push_rpcs"`
	// LeaseSkips counts the polls the leases elided.
	LeaseSkips int64 `json:"lease_skips"`
	// Pushes / Received are the home's invalidation frames sent and the
	// co-ops' frames received during the staleness measurement.
	Pushes   int64 `json:"pushes"`
	Received int64 `json:"received"`
	// RPCReductionX is PollingRPCs / max(PushRPCs, 1) — the collapse in
	// steady-state validation traffic.
	RPCReductionX float64 `json:"rpc_reduction_x"`
	// StalenessSeconds is the wall time from UpdateDocument at the home
	// until a subscribed co-op served the new bytes, without any validator
	// tick running — purely push-driven freshness.
	StalenessSeconds float64 `json:"staleness_seconds"`
}

// invalCluster is one booted measurement cluster: a home with docs
// documents migrated round-robin across the co-ops, every copy physically
// fetched and hosted.
type invalCluster struct {
	fabric *memnet.Fabric
	cl     *clock.Manual
	client *httpx.Client
	home   *Server
	coops  []*Server
	keys   []string // migration key per document, aligned with docs
	docs   []string
	hosts  []*Server // hosting co-op per document
}

func (c *invalCluster) close() {
	for _, s := range c.coops {
		s.Close()
	}
	if c.home != nil {
		c.home.Close()
	}
}

// bootInvalCluster builds the steady state both modes are measured in.
// lease == 0 is the paper's polling design; lease > 0 turns on push
// invalidation (heartbeats are disabled so the manual clock never has to
// tick for channel liveness).
func bootInvalCluster(nodes, docsN int, lease time.Duration) (*invalCluster, error) {
	c := &invalCluster{
		fabric: memnet.NewFabric(),
		cl:     clock.NewManual(time.Unix(1_000_000, 0)),
	}
	c.client = httpx.NewClient(httpx.DialerFunc(c.fabric.Dial))

	boot := func(host string, port int, st store.Store, entries, peers []string) (*Server, error) {
		params := Params{
			LeaseDuration:       lease,
			InvalidateHeartbeat: -1, // manual clock: no heartbeat pacing
		}
		params.RetryBaseDelay = -1 // manual clock: never sleep a backoff
		s, err := New(Config{
			Origin:      naming.Origin{Host: host, Port: port},
			Store:       st,
			Network:     c.fabric.Named(naming.Origin{Host: host, Port: port}.Addr()),
			Clock:       c.cl,
			EntryPoints: entries,
			Peers:       peers,
			Params:      params,
		})
		if err != nil {
			return nil, err
		}
		if err := s.Start(); err != nil {
			return nil, err
		}
		return s, nil
	}

	homeStore := store.NewMem()
	var links []string
	for i := 0; i < docsN; i++ {
		links = append(links, fmt.Sprintf("/doc%02d.html", i))
	}
	homeStore.Put("/index.html", perfDoc(links, 2<<10))
	for _, name := range links {
		homeStore.Put(name, perfDoc(nil, 8<<10))
	}
	home, err := boot("home", 80, homeStore, []string{"/index.html"}, nil)
	if err != nil {
		c.close()
		return nil, err
	}
	c.home = home

	for i := 1; i < nodes; i++ {
		coop, err := boot(fmt.Sprintf("coop%02d", i), 80+i, store.NewMem(), nil, []string{home.Addr()})
		if err != nil {
			c.close()
			return nil, err
		}
		c.coops = append(c.coops, coop)
		home.LoadTable().Observe(glt.Entry{Server: coop.Addr()})
	}

	// Migrate the documents round-robin and pull each copy once so every
	// co-op physically hosts its share (the lazy fetch also subscribes and
	// takes the lease when lease > 0).
	for i, name := range links {
		coop := c.coops[i%len(c.coops)]
		home.migrate(name, coop.Addr())
		key, err := naming.Encode(home.Origin(), name)
		if err != nil {
			c.close()
			return nil, err
		}
		resp, err := c.client.Get(coop.Addr(), key, nil)
		if err != nil {
			c.close()
			return nil, err
		}
		if resp.Status != 200 {
			c.close()
			return nil, fmt.Errorf("dcws: seeding fetch of %s = %d", key, resp.Status)
		}
		c.docs = append(c.docs, name)
		c.keys = append(c.keys, key)
		c.hosts = append(c.hosts, coop)
	}
	return c, nil
}

// waitSubscribed blocks (real time) until every co-op's subscription
// channel to the home is live — the steady state push mode runs in.
func (c *invalCluster) waitSubscribed(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		live := true
		for _, coop := range c.coops {
			if !coop.subs.subscriptionLive(c.home.Addr()) {
				live = false
				break
			}
		}
		if live {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dcws: subscriptions not live within %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// MeasureInvalidation boots two identical live clusters — one polling
// (LeaseDuration zero, the paper's design), one push (leases on) — runs
// the same number of steady-state validator rounds through each, and then
// measures update-to-fresh-serve staleness on the push cluster.
func MeasureInvalidation(nodes int) (InvalidateReport, error) {
	const docsN = 30
	const rounds = 20
	rep := InvalidateReport{Nodes: nodes, Docs: docsN, Rounds: rounds}
	if nodes < 2 {
		return rep, fmt.Errorf("dcws: invalidation measurement needs at least 2 nodes")
	}

	// Polling baseline.
	polling, err := bootInvalCluster(nodes, docsN, 0)
	if err != nil {
		return rep, err
	}
	for r := 0; r < rounds; r++ {
		for _, coop := range polling.coops {
			coop.TickValidator()
		}
	}
	for _, coop := range polling.coops {
		rep.PollingRPCs += coop.Status().Invalidation.ValidatePolls
	}
	polling.close()

	// Push mode: same placement, leases on.
	push, err := bootInvalCluster(nodes, docsN, time.Minute)
	if err != nil {
		return rep, err
	}
	defer push.close()
	if err := push.waitSubscribed(5 * time.Second); err != nil {
		return rep, err
	}
	for r := 0; r < rounds; r++ {
		for _, coop := range push.coops {
			coop.TickValidator()
		}
	}
	for _, coop := range push.coops {
		st := coop.Status().Invalidation
		rep.PushRPCs += st.ValidatePolls
		rep.LeaseSkips += st.LeaseSkips
	}
	denom := rep.PushRPCs
	if denom < 1 {
		denom = 1
	}
	rep.RPCReductionX = float64(rep.PollingRPCs) / float64(denom)

	// Staleness: update one hosted document at the home and time how long
	// the push takes to make its co-op serve the new bytes — no validator
	// tick runs; only the invalidation frame can refresh the copy.
	doc, key, host := push.docs[0], push.keys[0], push.hosts[0]
	fresh := []byte("<html><body>" + strings.Repeat("fresh-content ", 64) + "</body></html>")
	start := time.Now()
	if err := push.home.UpdateDocument(doc, fresh); err != nil {
		return rep, err
	}
	deadline := start.Add(5 * time.Second)
	for {
		resp, err := push.client.Get(host.Addr(), key, nil)
		if err == nil && resp.Status == 200 && strings.Contains(string(resp.Body), "fresh-content") {
			rep.StalenessSeconds = time.Since(start).Seconds()
			break
		}
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("dcws: co-op still serving stale bytes after %v", time.Since(start))
		}
		time.Sleep(time.Millisecond)
	}
	rep.Pushes = push.home.Status().Invalidation.Pushes
	for _, coop := range push.coops {
		rep.Received += coop.Status().Invalidation.Received
	}
	return rep, nil
}
