package dcws

import (
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
)

// TestMaintenanceLoopsRunOnScaledClock exercises the real statistics,
// pinger, and validator goroutines (not the Tick* shortcuts) under a
// heavily compressed clock: traffic is applied, and within a fraction of a
// real second the statistics loop must fire and migrate a document.
func TestMaintenanceLoopsRunOnScaledClock(t *testing.T) {
	fabric := memnet.NewFabric()
	// Factor 1000: T_st=10s fires every 10ms of real time.
	clk := clock.NewScaled(1000)

	st := store.NewMem()
	for name, body := range siteAB() {
		st.Put(name, []byte(body))
	}
	params := Params{MigrationThreshold: 1}
	home, err := New(Config{
		Origin:      naming.Origin{Host: "home", Port: 80},
		Store:       st,
		Network:     fabric,
		Clock:       clk,
		EntryPoints: []string{"/index.html"},
		Peers:       []string{"coop:81"},
		Params:      params,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Start(); err != nil {
		t.Fatal(err)
	}
	defer home.Close()

	coop, err := New(Config{
		Origin:  naming.Origin{Host: "coop", Port: 81},
		Store:   store.NewMem(),
		Network: fabric,
		Clock:   clk,
		Peers:   []string{"home:80"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coop.Start(); err != nil {
		t.Fatal(err)
	}
	defer coop.Close()

	client := httpx.NewClient(httpx.DialerFunc(fabric.Dial))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// Keep load on the home so each statistics window sees traffic.
		for i := 0; i < 10; i++ {
			if _, err := client.Get("home:80", "/page.html", nil); err != nil {
				t.Fatal(err)
			}
		}
		if len(home.Graph().Migrated()) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	migrated := home.Graph().Migrated()
	if len(migrated) == 0 {
		t.Fatal("statistics loop never migrated a document under load")
	}
	// End-to-end check through the redirect, proving the timer-driven
	// migration is functional, not just recorded.
	for doc := range migrated {
		resp, err := client.Get("home:80", doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 301 {
			t.Fatalf("migrated doc %s served %d at home", doc, resp.Status)
		}
		loc := resp.Header.Get("Location")
		addr, path, err := naming.SplitURL(loc)
		if err != nil {
			t.Fatal(err)
		}
		final, err := client.Get(addr, path, nil)
		if err != nil || final.Status != 200 {
			t.Fatalf("coop serve after timer migration: %v %v", err, final)
		}
		break
	}
	// The pinger/validator loops have also been firing (hundreds of
	// scaled intervals elapsed); the load table must know both servers
	// with fresh entries.
	if _, ok := home.LoadTable().Get("coop:81"); !ok {
		t.Fatal("home load table missing the coop after pinger rounds")
	}
}
