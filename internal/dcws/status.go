package dcws

import (
	"encoding/json"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/resilience"
)

// Status is the operational snapshot served at /~dcws/status and returned
// by Server.Status, for dashboards, tests, and the dcwsctl-style tooling.
type Status struct {
	Addr        string             `json:"addr"`
	Documents   int                `json:"documents"`
	MigratedOut map[string]string  `json:"migrated_out"`
	CoopHosted  []string           `json:"coop_hosted"`
	Connections int64              `json:"connections"`
	Bytes       int64              `json:"bytes"`
	Dropped     int64              `json:"dropped"`
	Redirects   int64              `json:"redirects"`
	Fetches     int64              `json:"fetches"`
	Rebuilds    int64              `json:"rebuilds"`
	CPS         float64            `json:"cps"`
	BPS         float64            `json:"bps"`
	LoadTable   map[string]float64 `json:"load_table"`

	// Zone is this server's topology label; Capacity its measured service
	// capacity in docs/s (0 when normalization is off). Placement is the
	// capacity/zone view of every load-table entry, keyed by address.
	Zone      string                     `json:"zone,omitempty"`
	Capacity  float64                    `json:"capacity,omitempty"`
	Placement map[string]PlacementStatus `json:"placement,omitempty"`

	// PeerHealth classifies every tracked peer: "ok", "suspect" (failing
	// probes or a non-closed breaker; excluded from new migrations), or
	// "down" (declared down, documents recalled).
	PeerHealth map[string]string `json:"peer_health,omitempty"`
	// Breakers lists peers whose circuit breaker is not closed, with the
	// breaker state ("open" or "half-open").
	Breakers map[string]string `json:"breakers,omitempty"`
	// Retries counts inter-server RPC attempts beyond the first.
	Retries int64 `json:"retries"`
	// BreakerTrips counts closed-to-open breaker transitions.
	BreakerTrips int64 `json:"breaker_trips"`
	// PeerResilience breaks the retry/trip/rejection counters down by peer
	// and records when each breaker last changed state, so operators can
	// see which peer is flaky, not just that one is.
	PeerResilience map[string]PeerResilienceStatus `json:"peer_resilience,omitempty"`

	// GLT summarizes the sharded global load table and its delta-encoded
	// piggyback gossip.
	GLT GLTStatus `json:"glt"`

	// Pool summarizes the inter-server keep-alive connection pool.
	Pool PoolStatus `json:"pool"`
	// Hedge summarizes hedged lazy-migration fetches.
	Hedge HedgeStatus `json:"hedge"`
	// Replication summarizes proactive chain dissemination of hot
	// documents and chain-ordered revocation.
	Replication ReplicationStatus `json:"replication"`
	// Invalidation summarizes push invalidation and leases: the home-side
	// subscriber table and push counters, and the co-op-side lease cover.
	Invalidation InvalidationStatus `json:"invalidation"`

	// CacheHits / CacheMisses count rendered-document cache lookups.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// QueueDepth is the number of accepted connections waiting in the
	// socket queue right now; it feeds the queue-aware load metric.
	QueueDepth int `json:"queue_depth"`

	// Durability summarizes the WAL-backed durable tier and the last
	// startup recovery.
	Durability DurabilityStatus `json:"durability"`

	// SLO is the burn-rate watcher's latest evaluation.
	SLO SLOStatus `json:"slo"`
}

// SLOStatus is the SLO watcher's row in Status: the most recent
// multi-window burn-rate evaluation per serve role, plus the shed budget
// and the profile-capture counters.
type SLOStatus struct {
	// Alerting is true while some burn rate exceeds the threshold in both
	// windows.
	Alerting bool `json:"alerting"`
	// Checks / Alerts / Profiles are the watcher's cumulative counters.
	Checks   int64 `json:"checks"`
	Alerts   int64 `json:"alerts"`
	Profiles int64 `json:"profiles"`
	// Ops is the per-role evaluation (home, coop, fetch).
	Ops map[string]SLOOpStatus `json:"ops,omitempty"`
	// ShedRate / ShedBurn are the shed budget's short- and long-window
	// figures, keyed "short" / "long".
	ShedRate map[string]float64 `json:"shed_rate,omitempty"`
	ShedBurn map[string]float64 `json:"shed_burn,omitempty"`
}

// SLOOpStatus is one serve role's row in SLOStatus.Ops.
type SLOOpStatus struct {
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	BurnShort  float64 `json:"burn_short"`
	BurnLong   float64 `json:"burn_long"`
	Alerting   bool    `json:"alerting,omitempty"`
}

// DurabilityStatus is the durable tier's row in Status: WAL progress and
// what the last startup recovery restored.
type DurabilityStatus struct {
	// Enabled is true when Config.WALDir is set.
	Enabled bool `json:"enabled"`
	// SyncPolicy is the fsync policy in force: always, interval, or none.
	SyncPolicy string `json:"sync_policy,omitempty"`
	// LSN is the newest appended record's log sequence number.
	LSN uint64 `json:"lsn,omitempty"`
	// SnapshotLSN is the highest LSN the newest snapshot covers.
	SnapshotLSN uint64 `json:"snapshot_lsn,omitempty"`
	// Segments is how many WAL segment files are on disk.
	Segments int `json:"segments,omitempty"`
	// Appends / AppendedBytes / Syncs / Snapshots / Truncations are the
	// log's cumulative counters.
	Appends       int64 `json:"appends,omitempty"`
	AppendedBytes int64 `json:"appended_bytes,omitempty"`
	Syncs         int64 `json:"syncs,omitempty"`
	Snapshots     int64 `json:"snapshots,omitempty"`
	Truncations   int64 `json:"truncations,omitempty"`
	// Recovery is the last startup recovery's summary.
	Recovery RecoveryInfo `json:"recovery"`
}

// PeerResilienceStatus is one peer's row in Status.PeerResilience.
type PeerResilienceStatus struct {
	State      string `json:"state"`
	Retries    int64  `json:"retries"`
	Trips      int64  `json:"trips"`
	Rejections int64  `json:"rejections"`
	// LastTransition is when the breaker last changed state, RFC 3339;
	// empty when it never left closed.
	LastTransition string `json:"last_transition,omitempty"`
}

// GLTStatus is the load table's gossip view: how the table is striped,
// how far each peer has acknowledged it, and when the anti-entropy safety
// net last ran against each peer.
type GLTStatus struct {
	// Shards is how many stripes the table is hashed across.
	Shards int `json:"shards"`
	// Version is the monotonic counter stamped on the newest accepted write.
	Version uint64 `json:"version"`
	// Entries is the total number of load entries across all shards.
	Entries int `json:"entries"`
	// DeltaEmits / FullEmits / ClientEmits count piggyback headers emitted
	// by kind since start.
	DeltaEmits  int64 `json:"delta_emits"`
	FullEmits   int64 `json:"full_emits"`
	ClientEmits int64 `json:"client_emits"`
	// AntiEntropyRounds counts full-table exchanges this server initiated.
	AntiEntropyRounds int64 `json:"anti_entropy_rounds"`
	// AntiEntropySkipped / AntiEntropyForced are the adaptive cadence's
	// counters: rounds skipped because piggyback deltas already had every
	// peer current, and backoff resets forced by churn.
	AntiEntropySkipped int64 `json:"anti_entropy_skipped"`
	AntiEntropyForced  int64 `json:"anti_entropy_forced"`
	// AntiEntropyIntervalSeconds is the adaptive interval currently in
	// force (between 1x and 4x Params.AntiEntropyInterval).
	AntiEntropyIntervalSeconds float64 `json:"anti_entropy_interval_seconds"`
	// Digest protocol counters: push-pull digest rounds completed as
	// requester, digest requests answered as responder, diverged stripes
	// shipped, third-leg push-backs, and rounds downgraded to the legacy
	// full exchange against pre-digest peers.
	DigestRounds     int64 `json:"digest_rounds"`
	DigestResponses  int64 `json:"digest_responses"`
	DigestShardsSent int64 `json:"digest_shards_sent"`
	DigestPushbacks  int64 `json:"digest_pushbacks"`
	DigestFallbacks  int64 `json:"digest_fallbacks"`
	// Peers is the per-peer gossip state, keyed by peer address.
	Peers map[string]GLTPeerStatus `json:"peers,omitempty"`
}

// PlacementStatus is one server's row in Status.Placement: the
// capacity-normalized, zone-aware view placement decisions rank by.
type PlacementStatus struct {
	// Load is the gossiped load figure — a fraction of capacity when the
	// sender normalizes, a raw rate otherwise.
	Load float64 `json:"load"`
	// Capacity is the sender's advertised service capacity (docs/s);
	// 0 when the entry carries none (legacy sender or normalization off).
	Capacity float64 `json:"capacity,omitempty"`
	// Zone is the sender's advertised topology label.
	Zone string `json:"zone,omitempty"`
	// Headroom is capacity × (1 − load), the ranking key.
	Headroom float64 `json:"headroom"`
}

// GLTPeerStatus is one peer's row in GLTStatus.Peers.
type GLTPeerStatus struct {
	// Acked is the highest local table version the peer has echoed back;
	// deltas to it only carry entries written after this mark.
	Acked uint64 `json:"acked"`
	// Seen is the peer's own table version last advertised to us.
	Seen uint64 `json:"seen"`
	// LastFull is when a full-table exchange last reached the peer, RFC
	// 3339; empty when none has.
	LastFull string `json:"last_full,omitempty"`
}

// PoolStatus summarizes the keep-alive connection pool used for
// inter-server RPCs.
type PoolStatus struct {
	// Reuses and Dials count RPCs served over a pooled connection vs over
	// a fresh dial; ReuseRatio is reuses/(reuses+dials).
	Reuses     int64   `json:"reuses"`
	Dials      int64   `json:"dials"`
	ReuseRatio float64 `json:"reuse_ratio"`
	// Retires counts pooled connections retired, by cause.
	Retires map[string]int64 `json:"retires,omitempty"`
	// Peers reports open/idle connection counts per peer address.
	Peers map[string]httpx.PeerPoolStats `json:"peers,omitempty"`
}

// HedgeStatus summarizes hedged lazy-migration fetches. Every launched
// hedge ends as exactly one of won (sibling answered 200 first), miss
// (sibling answered but had no usable copy), or wasted (lost the race to
// the primary or errored outright).
type HedgeStatus struct {
	Launched int64 `json:"launched"`
	Won      int64 `json:"won"`
	Miss     int64 `json:"miss"`
	Wasted   int64 `json:"wasted"`
}

// ReplicationStatus summarizes proactive chain replication. PushBytes is
// the home's total upload into dissemination chains — the number the
// chain topology keeps flat as the replica count grows.
type ReplicationStatus struct {
	HotTriggers     int64 `json:"hot_triggers"`
	Pushes          int64 `json:"pushes"`
	PushBytes       int64 `json:"push_bytes"`
	Relays          int64 `json:"relays"`
	Stored          int64 `json:"stored"`
	ChainSkips      int64 `json:"chain_skips"`
	RevokeChains    int64 `json:"revoke_chains"`
	RevokeFallbacks int64 `json:"revoke_fallbacks"`
}

// InvalidationStatus summarizes the push-invalidation subsystem. With
// leases disabled (Params.LeaseDuration zero) every field stays zero and
// the server validates by polling exactly as the paper describes.
type InvalidationStatus struct {
	// Enabled is true when Params.LeaseDuration > 0.
	Enabled bool `json:"enabled"`
	// Subscribers / SubscribersKnown are the home-side subscriber table:
	// co-ops with a live channel right now vs all co-ops with durable
	// subscription records (including crashed or partitioned ones).
	Subscribers      int `json:"subscribers"`
	SubscribersKnown int `json:"subscribers_known"`
	// Leased counts hosted copies currently covered by an unexpired lease.
	Leased int `json:"leased"`
	// Pushes / Acks are the home side's cumulative frame counters;
	// Received / Reconnects the co-op side's.
	Pushes     int64 `json:"pushes"`
	Acks       int64 `json:"acks"`
	Received   int64 `json:"received"`
	Reconnects int64 `json:"reconnects"`
	// LeaseSkips counts validator polls elided under lease cover;
	// ValidatePolls counts the polls actually issued. Their ratio is the
	// §4.5 validation traffic this subsystem removed.
	LeaseSkips    int64 `json:"lease_skips"`
	ValidatePolls int64 `json:"validate_polls"`
	// LeaseExpired counts requests failed closed on an expired lease with
	// the home unreachable — the partition-safety path.
	LeaseExpired int64 `json:"lease_expired"`
	// Shrinks counts replica chains partially shrunk after T_home expiry
	// of a warm document.
	Shrinks int64 `json:"shrinks"`
	// Batches / BatchDocs count multi-document invalidation frames pushed
	// and the documents they carried; Gaps counts sequence gaps co-ops
	// detected on live channels (each triggers an inventory resync).
	Batches   int64 `json:"batches"`
	BatchDocs int64 `json:"batch_docs"`
	Gaps      int64 `json:"gaps"`
}

// Status returns the server's current operational snapshot.
func (s *Server) Status() Status {
	now := s.now()
	st := Status{
		Addr:        s.Addr(),
		Documents:   s.ldg.Len(),
		MigratedOut: s.ldg.Migrated(),
		Connections: s.stats.Connections.Value(),
		Bytes:       s.stats.Bytes.Value(),
		Dropped:     s.Dropped(),
		Redirects:   s.stats.Redirects.Value(),
		Fetches:     s.stats.Fetches.Value(),
		Rebuilds:    s.stats.Rebuilds.Value(),
		CPS:         s.stats.CPS(now),
		BPS:         s.stats.BPS(now),
		LoadTable:   make(map[string]float64),
	}
	ps := s.client.Pool.Stats()
	st.Pool = PoolStatus{Reuses: ps.Reuses, Dials: ps.Dials, Retires: ps.Retires, Peers: ps.Peers}
	if total := ps.Reuses + ps.Dials; total > 0 {
		st.Pool.ReuseRatio = float64(ps.Reuses) / float64(total)
	}
	st.Hedge = HedgeStatus{
		Launched: s.tel.hedgeLaunched.Value(),
		Won:      s.tel.hedgeWon.Value(),
		Miss:     s.tel.hedgeMiss.Value(),
		Wasted:   s.tel.hedgeWasted.Value(),
	}
	st.Replication = ReplicationStatus{
		HotTriggers:     s.tel.replicateHotTriggers.Value(),
		Pushes:          s.tel.replicatePushes.Value(),
		PushBytes:       s.tel.replicatePushBytes.Value(),
		Relays:          s.tel.replicateRelays.Value(),
		Stored:          s.tel.replicateStored.Value(),
		ChainSkips:      s.tel.replicateChainSkips.Value(),
		RevokeChains:    s.tel.replicateRevokeChains.Value(),
		RevokeFallbacks: s.tel.replicateRevokeFallbacks.Value(),
	}
	connected, total := s.hub.subscriberCount()
	st.Invalidation = InvalidationStatus{
		Enabled:          s.params.LeaseDuration > 0,
		Subscribers:      connected,
		SubscribersKnown: total,
		Leased:           s.coops.leasedCount(now),
		Pushes:           s.tel.invalPushes.Value(),
		Acks:             s.tel.invalAcks.Value(),
		Received:         s.tel.invalReceived.Value(),
		Reconnects:       s.tel.invalReconnects.Value(),
		LeaseSkips:       s.tel.invalLeaseSkips.Value(),
		ValidatePolls:    s.tel.validatePolls.Value(),
		LeaseExpired:     s.tel.invalLeaseExpired.Value(),
		Shrinks:          s.tel.replicateShrinks.Value(),
		Batches:          s.tel.invalBatches.Value(),
		BatchDocs:        s.tel.invalBatchDocs.Value(),
		Gaps:             s.tel.invalGaps.Value(),
	}
	st.CacheHits, st.CacheMisses = s.rcache.counts()
	st.QueueDepth = s.httpSrv.QueueDepth()
	s.aeMu.Lock()
	aeInterval := s.aeInterval
	s.aeMu.Unlock()
	st.GLT = GLTStatus{
		Shards:                     s.table.ShardCount(),
		Version:                    s.table.Version(),
		Entries:                    s.table.Len(),
		DeltaEmits:                 s.table.DeltaEmits(),
		FullEmits:                  s.table.FullEmits(),
		ClientEmits:                s.table.ClientEmits(),
		AntiEntropyRounds:          s.tel.antiEntropyRounds.Value(),
		AntiEntropySkipped:         s.tel.aeSkipped.Value(),
		AntiEntropyForced:          s.tel.aeForced.Value(),
		AntiEntropyIntervalSeconds: aeInterval.Seconds(),
		DigestRounds:               s.tel.digestRounds.Value(),
		DigestResponses:            s.tel.digestResponses.Value(),
		DigestShardsSent:           s.tel.digestShardsSent.Value(),
		DigestPushbacks:            s.tel.digestPushbacks.Value(),
		DigestFallbacks:            s.tel.digestFallbacks.Value(),
	}
	for p, g := range s.table.GossipPeers() {
		row := GLTPeerStatus{Acked: g.Acked, Seen: g.Seen}
		if !g.LastFull.IsZero() {
			row.LastFull = g.LastFull.UTC().Format(time.RFC3339Nano)
		}
		if st.GLT.Peers == nil {
			st.GLT.Peers = make(map[string]GLTPeerStatus)
		}
		st.GLT.Peers[p] = row
	}
	st.Zone = s.params.Zone
	st.Capacity = s.Capacity()
	for _, e := range s.table.Snapshot() {
		st.LoadTable[e.Server] = e.Load
		if st.Placement == nil {
			st.Placement = make(map[string]PlacementStatus)
		}
		st.Placement[e.Server] = PlacementStatus{
			Load:     e.Load,
			Capacity: e.Capacity,
			Zone:     e.Zone,
			Headroom: e.Headroom(),
		}
	}
	rs := s.res.Stats()
	st.Retries = rs.Retries.Value()
	st.BreakerTrips = rs.Trips.Value()
	st.PeerHealth = make(map[string]string)
	for _, p := range s.table.Servers() {
		if p == s.Addr() {
			continue
		}
		if s.peerSuspect(p) {
			st.PeerHealth[p] = "suspect"
		} else {
			st.PeerHealth[p] = "ok"
		}
	}
	for p, ps := range s.res.PeerSnapshots() {
		if ps.State != resilience.Closed {
			if st.Breakers == nil {
				st.Breakers = make(map[string]string)
			}
			st.Breakers[p] = ps.State.String()
		}
		row := PeerResilienceStatus{
			State:      ps.State.String(),
			Retries:    ps.Retries,
			Trips:      ps.Trips,
			Rejections: ps.Rejections,
		}
		if !ps.LastTransition.IsZero() {
			row.LastTransition = ps.LastTransition.UTC().Format(time.RFC3339Nano)
		}
		if st.PeerResilience == nil {
			st.PeerResilience = make(map[string]PeerResilienceStatus)
		}
		st.PeerResilience[p] = row
	}
	s.peerMu.Lock()
	for p := range s.downAt {
		st.PeerHealth[p] = "down"
	}
	s.peerMu.Unlock()
	st.CoopHosted = s.coops.keys()
	st.SLO = s.slo.status()
	st.Durability = DurabilityStatus{Recovery: s.Recovery()}
	if s.wal != nil {
		st.Durability.Enabled = true
		st.Durability.SyncPolicy = s.wal.SyncPolicy().String()
		st.Durability.LSN = s.wal.LSN()
		st.Durability.SnapshotLSN = s.wal.SnapshotLSN()
		st.Durability.Segments = s.wal.Segments()
		st.Durability.Appends = s.wal.Appends()
		st.Durability.AppendedBytes = s.wal.AppendedBytes()
		st.Durability.Syncs = s.wal.Syncs()
		st.Durability.Snapshots = s.wal.Snapshots()
		st.Durability.Truncations = s.wal.Truncations()
	}
	return st
}

// handleStatus serves the status snapshot as JSON.
func (s *Server) handleStatus() *httpx.Response {
	data, err := json.MarshalIndent(s.Status(), "", "  ")
	if err != nil {
		return status(500, err.Error())
	}
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", "application/json")
	resp.Body = append(data, '\n')
	return resp
}

// GraphDump is the JSON form of the local document graph served at
// /~dcws/graph for operational inspection.
type GraphDump struct {
	Addr string      `json:"addr"`
	Docs []GraphNode `json:"docs"`
}

// GraphNode is one LDG tuple in a GraphDump.
type GraphNode struct {
	Name       string   `json:"name"`
	Location   string   `json:"location,omitempty"`
	Size       int64    `json:"size"`
	Hits       int64    `json:"hits"`
	LinkTo     []string `json:"link_to,omitempty"`
	LinkFrom   []string `json:"link_from,omitempty"`
	Dirty      bool     `json:"dirty,omitempty"`
	EntryPoint bool     `json:"entry_point,omitempty"`
}

// handleGraph serves the local document graph as JSON.
func (s *Server) handleGraph() *httpx.Response {
	dump := GraphDump{Addr: s.Addr()}
	for _, d := range s.ldg.Snapshot() {
		dump.Docs = append(dump.Docs, GraphNode{
			Name:       d.Name,
			Location:   d.Location,
			Size:       d.Size,
			Hits:       d.Hits,
			LinkTo:     d.LinkTo,
			LinkFrom:   d.LinkFrom,
			Dirty:      d.Dirty,
			EntryPoint: d.EntryPoint,
		})
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return status(500, err.Error())
	}
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", "application/json")
	resp.Body = append(data, '\n')
	return resp
}
