package dcws

import (
	"strings"
	"testing"
	"time"

	"dcws/internal/memnet"
	"dcws/internal/store"
)

const chainKey = "/~migrate/home/80/page.html"

// chainParams make one statistics tick enough to trigger chain
// replication: a 1-second window and a 1 hit/s threshold, so a handful of
// serves pushes the EWMA over the line.
func chainParams() Params {
	return Params{StatsInterval: time.Second, HotReplicateRate: 1}
}

// heatUp serves /page.html at the home server enough times that the next
// statistics tick's EWMA crosses the chainParams threshold.
func heatUp(t *testing.T, w *testWorld) {
	t.Helper()
	for i := 0; i < 8; i++ {
		if resp := w.get("home:80", "/page.html"); resp.Status != 200 {
			t.Fatalf("warm-up serve = %d", resp.Status)
		}
	}
}

// TestChainReplicationPushesOnce is the tentpole scenario: a hot document
// reaches k=2 co-op servers off ONE home upload — the home pushes to the
// chain head, the head relays to its successor, and no co-op ever fetches
// back from home.
func TestChainReplicationPushesOnce(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, chainParams())
	coop1 := w.addServer("coop1", 81, nil, nil, Params{})
	coop2 := w.addServer("coop2", 82, nil, nil, Params{})

	heatUp(t, w)
	home.TickStats()

	if reps := home.Replicas("/page.html"); len(reps) != 2 ||
		reps[0] != "coop1:81" || reps[1] != "coop2:82" {
		t.Fatalf("replicas = %v, want [coop1:81 coop2:82]", reps)
	}
	st := home.Status().Replication
	if st.HotTriggers != 1 || st.Pushes != 1 {
		t.Fatalf("home replication = %+v, want 1 trigger and 1 push", st)
	}
	if st.PushBytes == 0 {
		t.Fatal("home recorded no pushed bytes")
	}
	if r1 := coop1.Status().Replication; r1.Stored != 1 || r1.Relays != 1 {
		t.Fatalf("coop1 replication = %+v, want stored=1 relays=1", r1)
	}
	if r2 := coop2.Status().Replication; r2.Stored != 1 || r2.Relays != 0 {
		t.Fatalf("coop2 replication = %+v, want stored=1 relays=0", r2)
	}
	// The whole point: nobody lazily pulled from home.
	if f := home.Stats().Fetches.Value(); f != 0 {
		t.Fatalf("home answered %d fetches; the chain push should have been the only transfer", f)
	}
	// Both co-ops serve the pushed copy directly.
	for _, addr := range []string{"coop1:81", "coop2:82"} {
		resp := w.get(addr, chainKey)
		if resp.Status != 200 || !strings.Contains(string(resp.Body), "pic.gif") {
			t.Fatalf("%s serve = %d %q", addr, resp.Status, resp.Body)
		}
	}
	if f := home.Stats().Fetches.Value(); f != 0 {
		t.Fatalf("serving the pushed copies caused %d home fetches", f)
	}
	// The home now redirects, and each co-op learned the other as a hedge
	// sibling from the X-DCWS-Replicas header riding the push.
	if resp := w.get("home:80", "/page.html"); resp.Status != 301 {
		t.Fatalf("home serve after replication = %d, want 301", resp.Status)
	}
	if sibs := coop1.coops.siblingsOf(chainKey); len(sibs) != 1 || sibs[0] != "coop2:82" {
		t.Fatalf("coop1 siblings = %v, want [coop2:82]", sibs)
	}
	if sibs := coop2.coops.siblingsOf(chainKey); len(sibs) != 1 || sibs[0] != "coop1:81" {
		t.Fatalf("coop2 siblings = %v, want [coop1:81]", sibs)
	}
}

// TestChainSkipsDeadLink: an unreachable mid-chain server is promoted
// past — the relay skips to the next link, the dead peer never enters the
// replica set, and the dissemination still completes.
func TestChainSkipsDeadLink(t *testing.T) {
	w := newWorld(t)
	params := chainParams()
	params.HotReplicaCount = 3
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, params)
	coop1 := w.addServer("coop1", 81, nil, nil, Params{})
	w.addServer("coop2", 82, nil, nil, Params{})
	coop3 := w.addServer("coop3", 83, nil, nil, Params{})

	// coop2 (second chain link) drops every dial.
	w.fabric.SetDialFailRate(memnet.Wildcard, "coop2:82", 1.0)

	heatUp(t, w)
	home.TickStats()

	if reps := home.Replicas("/page.html"); len(reps) != 2 ||
		reps[0] != "coop1:81" || reps[1] != "coop3:83" {
		t.Fatalf("replicas = %v, want [coop1:81 coop3:83]", reps)
	}
	if r1 := coop1.Status().Replication; r1.Stored != 1 || r1.Relays != 1 || r1.ChainSkips != 1 {
		t.Fatalf("coop1 replication = %+v, want stored=1 relays=1 chain_skips=1", r1)
	}
	if r3 := coop3.Status().Replication; r3.Stored != 1 {
		t.Fatalf("coop3 replication = %+v, want stored=1", r3)
	}
	if resp := w.get("coop3:83", chainKey); resp.Status != 200 {
		t.Fatalf("coop3 serve = %d", resp.Status)
	}
	if f := home.Stats().Fetches.Value(); f != 0 {
		t.Fatalf("dead link forced %d lazy fetches from home", f)
	}
}

// TestChainRevocationFanout: revoking a chain-replicated document reuses
// the chain — one home RPC, relayed host to host, acks aggregated back —
// and every replica is discarded with no per-peer fallback needed.
func TestChainRevocationFanout(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, chainParams())
	coop1 := w.addServer("coop1", 81, nil, nil, Params{})
	coop2 := w.addServer("coop2", 82, nil, nil, Params{})

	heatUp(t, w)
	home.TickStats()
	if len(home.Replicas("/page.html")) != 2 {
		t.Fatalf("replicas = %v", home.Replicas("/page.html"))
	}

	home.revoke("/page.html")

	st := home.Status().Replication
	if st.RevokeChains != 1 || st.RevokeFallbacks != 0 {
		t.Fatalf("revocation = %+v, want revoke_chains=1 revoke_fallbacks=0", st)
	}
	for name, coop := range map[string]*Server{"coop1": coop1, "coop2": coop2} {
		if _, ok := coop.coops.view(chainKey); ok {
			t.Fatalf("%s still hosts %s after chain revocation", name, chainKey)
		}
	}
	if resp := w.get("home:80", "/page.html"); resp.Status != 200 {
		t.Fatalf("home serve after revocation = %d, want 200", resp.Status)
	}
}

// TestChainRevocationFallsBackPerPeer: when the chain head is dead the
// home falls back to the existing per-peer revokes, so the reachable
// survivors still discard their copies.
func TestChainRevocationFallsBackPerPeer(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, chainParams())
	w.addServer("coop1", 81, nil, nil, Params{})
	coop2 := w.addServer("coop2", 82, nil, nil, Params{})

	heatUp(t, w)
	home.TickStats()
	if len(home.Replicas("/page.html")) != 2 {
		t.Fatalf("replicas = %v", home.Replicas("/page.html"))
	}

	// The chain head goes dark before the revocation.
	w.fabric.SetDialFailRate(memnet.Wildcard, "coop1:81", 1.0)
	home.client.Pool.FlushAddr("coop1:81")
	home.revoke("/page.html")

	st := home.Status().Replication
	if st.RevokeChains != 1 || st.RevokeFallbacks != 2 {
		t.Fatalf("revocation = %+v, want revoke_chains=1 revoke_fallbacks=2", st)
	}
	if _, ok := coop2.coops.view(chainKey); ok {
		t.Fatal("reachable survivor still hosts the revoked copy")
	}
	if resp := w.get("home:80", "/page.html"); resp.Status != 200 {
		t.Fatalf("home serve after revocation = %d, want 200", resp.Status)
	}
}

// TestChainReplicationWALRecovery: the chain-installed replica set is
// WAL-logged, so a crashed home comes back remembering every replica —
// redirects resume and a revocation after recovery still reaches all
// hosts.
func TestChainReplicationWALRecovery(t *testing.T) {
	w := newWorld(t)
	homeStore := store.NewMem()
	for name, body := range siteAB() {
		if err := homeStore.Put(name, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	home := w.bootServer("home", 80, homeStore, []string{"/index.html"}, chainParams(), t.TempDir()+"/wal")
	coop1 := w.addServer("coop1", 81, nil, nil, Params{})
	coop2 := w.addServer("coop2", 82, nil, nil, Params{})

	heatUp(t, w)
	home.TickStats()
	want := home.Replicas("/page.html")
	if len(want) != 2 {
		t.Fatalf("replicas before crash = %v", want)
	}

	// kill -9 the home: no final snapshot, no final sync.
	if err := home.Abort(); err != nil {
		t.Fatal(err)
	}
	reborn := w.bootServer("home", 80, homeStore, []string{"/index.html"}, chainParams(), home.cfg.WALDir)
	if !reborn.Recovery().Recovered {
		t.Fatal("restart did not recover from the WAL")
	}
	got := reborn.Replicas("/page.html")
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("replicas after recovery = %v, want %v", got, want)
	}
	if resp := w.get("home:80", "/page.html"); resp.Status != 301 {
		t.Fatalf("reborn home serve = %d, want 301", resp.Status)
	}
	// Revocation after recovery fans out along the recovered chain.
	reborn.revoke("/page.html")
	for name, coop := range map[string]*Server{"coop1": coop1, "coop2": coop2} {
		if _, ok := coop.coops.view(chainKey); ok {
			t.Fatalf("%s still hosts %s after post-recovery revocation", name, chainKey)
		}
	}
	if resp := w.get("home:80", "/page.html"); resp.Status != 200 {
		t.Fatalf("reborn home serve after revocation = %d, want 200", resp.Status)
	}
}

// TestChainReplicationDisabled: a negative HotReplicateRate switches the
// proactive path off entirely — no triggers, no pushes, however hot the
// document runs.
func TestChainReplicationDisabled(t *testing.T) {
	w := newWorld(t)
	params := chainParams()
	params.HotReplicateRate = -1
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, params)
	w.addServer("coop1", 81, nil, nil, Params{})

	heatUp(t, w)
	home.TickStats()

	// The ordinary migration policy may still move the hot document (one
	// replica via lazy fetch); what must not happen is any chain activity.
	if st := home.Status().Replication; st.HotTriggers != 0 || st.Pushes != 0 || st.PushBytes != 0 {
		t.Fatalf("replication counters = %+v, want all zero", st)
	}
}

// TestHotRateEWMADecays: the serve-rate EWMA halves each idle tick and
// the tracking entry is dropped once it decays to noise, so a burst long
// past cannot trigger replication.
func TestHotRateEWMADecays(t *testing.T) {
	w := newWorld(t)
	params := chainParams()
	params.HotReplicateRate = 100 // never triggers in this test
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, params)

	heatUp(t, w)
	home.TickStats()
	first := home.HotRate("/page.html")
	if first <= 0 {
		t.Fatalf("EWMA after hot tick = %v, want > 0", first)
	}
	home.TickStats()
	if second := home.HotRate("/page.html"); second >= first || second != first/2 {
		t.Fatalf("EWMA after idle tick = %v, want %v", second, first/2)
	}
	for i := 0; i < 12; i++ {
		home.TickStats()
	}
	if rate := home.HotRate("/page.html"); rate != 0 {
		t.Fatalf("EWMA after long idle = %v, want dropped to 0", rate)
	}
}
