package dcws

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"dcws/internal/httpx"
	"dcws/internal/metrics"
	"dcws/internal/telemetry"
)

// SLO watcher: multi-window burn-rate alerting with automatic profile
// capture. Every SLOCheckInterval the watcher snapshots the per-role serve
// histograms and the shed/queued counters, derives short- and long-window
// deltas, and computes how fast each window is consuming its error budget:
//
//	burn = (violations / total) / (1 - objective)
//
// where a violation is a request slower than SLOLatencyTarget (for the
// latency SLO) or a shed connection (against the SLOMaxShedRate budget). A
// burn of 1 spends the budget exactly at the sustainable pace; the watcher
// alerts only when BOTH windows burn at SLOBurnThreshold or faster — the
// short window proves the problem is live, the long window proves it is
// sustained rather than a blip. On alert it captures a pprof CPU+heap pair
// into Config.ProfileDir (a ring bounded at ProfileRingSize captures), so
// the evidence of WHY the tail went bad is on disk before the incident
// ends.
type sloWatcher struct {
	s *Server

	checks   *telemetry.Counter
	alerts   *telemetry.Counter
	profiles *telemetry.Counter

	mu          sync.Mutex
	samples     []sloSample
	ops         map[string]*sloOpState
	shed        [2]float64 // shed rate by window (short, long)
	burn        [2]float64 // shed burn rate by window
	alerting    bool
	capturing   bool
	lastCapture time.Time
}

// sloSample is one cumulative observation of everything the burn-rate math
// differentiates: per-op histogram snapshots plus the shed/queued counters.
type sloSample struct {
	at     time.Time
	hists  map[string]metrics.HistogramSnapshot
	shed   int64
	queued int64
}

// sloOpState is the most recent evaluation for one serve role.
type sloOpState struct {
	p50, p99  float64 // short-window latency quantiles, seconds
	burnShort float64
	burnLong  float64
	alerting  bool
}

const (
	windowShort = 0
	windowLong  = 1
)

var sloWindows = [2]string{"short", "long"}

func newSLOWatcher(s *Server) *sloWatcher {
	w := &sloWatcher{s: s, ops: make(map[string]*sloOpState)}
	reg := s.tel.reg
	w.checks = reg.Counter("dcws_slo_checks_total",
		"SLO burn-rate evaluations run by the watcher")
	w.alerts = reg.Counter("dcws_slo_alerts_total",
		"checks where some burn rate breached the threshold in both windows")
	w.profiles = reg.Counter("dcws_slo_profiles_total",
		"pprof CPU+heap capture rounds triggered by sustained burn")

	opSamples := func(value func(*sloOpState) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			w.mu.Lock()
			defer w.mu.Unlock()
			out := make([]telemetry.Sample, 0, len(w.ops))
			for _, op := range sortedOps(w.ops) {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "op", Value: op}},
					Value:  value(w.ops[op]),
				})
			}
			return out
		}
	}
	reg.Collector("dcws_slo_latency_p50_seconds",
		"short-window serve latency median, by role", "gauge",
		opSamples(func(st *sloOpState) float64 { return st.p50 }))
	reg.Collector("dcws_slo_latency_p99_seconds",
		"short-window serve latency 99th percentile, by role", "gauge",
		opSamples(func(st *sloOpState) float64 { return st.p99 }))
	reg.Collector("dcws_slo_burn_rate",
		"latency error-budget burn rate, by role and window", "gauge",
		func() []telemetry.Sample {
			w.mu.Lock()
			defer w.mu.Unlock()
			out := make([]telemetry.Sample, 0, 2*len(w.ops))
			for _, op := range sortedOps(w.ops) {
				st := w.ops[op]
				for wi, burn := range [2]float64{st.burnShort, st.burnLong} {
					out = append(out, telemetry.Sample{
						Labels: []telemetry.Label{
							{Key: "op", Value: op},
							{Key: "window", Value: sloWindows[wi]},
						},
						Value: burn,
					})
				}
			}
			return out
		})
	windowed := func(vals *[2]float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			w.mu.Lock()
			defer w.mu.Unlock()
			out := make([]telemetry.Sample, 0, 2)
			for wi, name := range sloWindows {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "window", Value: name}},
					Value:  vals[wi],
				})
			}
			return out
		}
	}
	reg.Collector("dcws_slo_shed_rate",
		"fraction of connections shed at the socket queue, by window", "gauge",
		windowed(&w.shed))
	reg.Collector("dcws_slo_shed_burn_rate",
		"shed-budget burn rate against SLOMaxShedRate, by window", "gauge",
		windowed(&w.burn))
	reg.GaugeFunc("dcws_slo_alerting",
		"1 while some burn rate exceeds the threshold in both windows",
		func() float64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			if w.alerting {
				return 1
			}
			return 0
		})
	return w
}

// status snapshots the watcher's latest evaluation for /~dcws/status.
func (w *sloWatcher) status() SLOStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := SLOStatus{
		Alerting: w.alerting,
		Checks:   w.checks.Value(),
		Alerts:   w.alerts.Value(),
		Profiles: w.profiles.Value(),
	}
	if len(w.ops) > 0 {
		st.Ops = make(map[string]SLOOpStatus, len(w.ops))
		for op, os := range w.ops {
			st.Ops[op] = SLOOpStatus{
				P50Seconds: os.p50,
				P99Seconds: os.p99,
				BurnShort:  os.burnShort,
				BurnLong:   os.burnLong,
				Alerting:   os.alerting,
			}
		}
		st.ShedRate = map[string]float64{"short": w.shed[windowShort], "long": w.shed[windowLong]}
		st.ShedBurn = map[string]float64{"short": w.burn[windowShort], "long": w.burn[windowLong]}
	}
	return st
}

func sortedOps(m map[string]*sloOpState) []string {
	out := make([]string, 0, len(m))
	for op := range m {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// sloLoop drives the watcher on the configured clock.
func (s *Server) sloLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case <-s.cfg.Clock.After(s.params.SLOCheckInterval):
		}
		s.slo.check(s.now())
	}
}

// TickSLO runs one SLO burn-rate evaluation synchronously (deterministic
// harnesses and tests).
func (s *Server) TickSLO() { s.slo.check(s.now()) }

// check takes one cumulative sample, evaluates both windows, and triggers
// a profile capture on a sustained alert.
func (w *sloWatcher) check(now time.Time) {
	p := w.s.params
	cur := sloSample{
		at: now,
		hists: map[string]metrics.HistogramSnapshot{
			"home":  w.s.tel.serveHome.Snapshot(),
			"coop":  w.s.tel.serveCoop.Snapshot(),
			"fetch": w.s.tel.serveFetch.Snapshot(),
		},
		shed:   w.s.tel.shed.Value(),
		queued: w.s.tel.queued.Value(),
	}
	w.checks.Inc()

	w.mu.Lock()
	w.samples = append(w.samples, cur)
	// Keep exactly one sample at or past the long-window horizon — it is
	// the long baseline — and drop everything older.
	cutoff := now.Add(-p.SLOWindowLong)
	drop := 0
	for drop < len(w.samples)-1 && !w.samples[drop+1].at.After(cutoff) {
		drop++
	}
	w.samples = w.samples[drop:]
	baseLong := w.samples[0]
	baseShort := w.baselineLocked(now.Add(-p.SLOWindowShort))

	alert := false
	for op, curH := range cur.hists {
		st := w.ops[op]
		if st == nil {
			st = &sloOpState{}
			w.ops[op] = st
		}
		ds := curH.Sub(baseShort.hists[op])
		dl := curH.Sub(baseLong.hists[op])
		st.p50 = quantileSeconds(ds, 0.50)
		st.p99 = quantileSeconds(ds, 0.99)
		st.burnShort = latencyBurn(ds, p)
		st.burnLong = latencyBurn(dl, p)
		st.alerting = st.burnShort >= p.SLOBurnThreshold && st.burnLong >= p.SLOBurnThreshold
		alert = alert || st.alerting
	}
	w.shed[windowShort], w.burn[windowShort] = shedBurn(cur, baseShort, p.SLOMaxShedRate)
	w.shed[windowLong], w.burn[windowLong] = shedBurn(cur, baseLong, p.SLOMaxShedRate)
	shedAlert := w.burn[windowShort] >= p.SLOBurnThreshold && w.burn[windowLong] >= p.SLOBurnThreshold
	alert = alert || shedAlert
	w.alerting = alert

	capture := false
	if alert {
		w.alerts.Inc()
		// One capture per short window at most: profiles are for the
		// incident's onset, not a per-tick stream of identical dumps.
		if w.s.cfg.ProfileDir != "" && !w.capturing &&
			(w.lastCapture.IsZero() || now.Sub(w.lastCapture) >= p.SLOWindowShort) {
			w.capturing = true
			w.lastCapture = now
			capture = true
		}
	}
	w.mu.Unlock()

	if capture {
		w.s.wg.Add(1)
		go w.capture()
	}
}

// baselineLocked returns the newest sample at or before the cutoff, or the
// oldest retained sample when the history is still shorter than the window.
func (w *sloWatcher) baselineLocked(cutoff time.Time) sloSample {
	base := w.samples[0]
	for _, s := range w.samples {
		if s.at.After(cutoff) {
			break
		}
		base = s
	}
	return base
}

// latencyBurn computes the error-budget burn rate of one window delta: the
// violating fraction divided by the budget fraction (1 - objective). Empty
// windows burn nothing.
func latencyBurn(d metrics.HistogramSnapshot, p Params) float64 {
	if d.Count <= 0 {
		return 0
	}
	viol := float64(d.CountAbove(p.SLOLatencyTarget)) / float64(d.Count)
	return viol / (1 - p.SLOLatencyObjective)
}

// shedBurn computes the shed rate and its burn against the shed budget for
// the window between two samples.
func shedBurn(cur, base sloSample, maxRate float64) (rate, burn float64) {
	shed := cur.shed - base.shed
	total := shed + (cur.queued - base.queued)
	if shed <= 0 || total <= 0 {
		return 0, 0
	}
	rate = float64(shed) / float64(total)
	return rate, rate / maxRate
}

func quantileSeconds(d metrics.HistogramSnapshot, q float64) float64 {
	if d.Count <= 0 {
		return 0
	}
	return d.Quantile(q).Seconds()
}

// capture writes one pprof CPU+heap pair into the profile ring. It runs on
// its own goroutine (the CPU profile takes SLOProfileSeconds of wall time)
// and is serialized by the capturing flag.
func (w *sloWatcher) capture() {
	defer w.s.wg.Done()
	defer func() {
		w.mu.Lock()
		w.capturing = false
		w.mu.Unlock()
	}()
	dir := w.s.cfg.ProfileDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		w.s.log.Printf("dcws %s: slo profile dir: %v", w.s.Addr(), err)
		return
	}
	stamp := time.Now().UTC().Format("20060102T150405.000000000")
	cpuPath := filepath.Join(dir, "burn-"+stamp+"-cpu.pprof")
	f, err := os.Create(cpuPath)
	if err != nil {
		w.s.log.Printf("dcws %s: slo cpu profile: %v", w.s.Addr(), err)
		return
	}
	// StartCPUProfile fails when another profile is running in this
	// process (multiple servers share one runtime); the heap profile is
	// still captured so the alert leaves some evidence.
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(cpuPath)
		w.s.log.Printf("dcws %s: slo cpu profile: %v", w.s.Addr(), err)
	} else {
		select {
		case <-time.After(w.s.params.SLOProfileSeconds):
		case <-w.s.stopped:
		}
		pprof.StopCPUProfile()
		f.Close()
	}
	heapPath := filepath.Join(dir, "burn-"+stamp+"-heap.pprof")
	hf, err := os.Create(heapPath)
	if err != nil {
		w.s.log.Printf("dcws %s: slo heap profile: %v", w.s.Addr(), err)
	} else {
		if prof := pprof.Lookup("heap"); prof != nil {
			if err := prof.WriteTo(hf, 0); err != nil {
				w.s.log.Printf("dcws %s: slo heap profile: %v", w.s.Addr(), err)
			}
		}
		hf.Close()
	}
	w.profiles.Inc()
	w.pruneProfiles(dir)
	w.s.log.Printf("dcws %s: slo burn alert: captured %s", w.s.Addr(), cpuPath)
}

// pruneProfiles bounds the on-disk ring at ProfileRingSize capture rounds
// (two files per round). Timestamped names sort chronologically, so the
// oldest files are the front of the sorted listing.
func (w *sloWatcher) pruneProfiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "burn-") && strings.HasSuffix(e.Name(), ".pprof") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	keep := 2 * w.s.params.ProfileRingSize
	for len(names) > keep {
		os.Remove(filepath.Join(dir, names[0]))
		names = names[1:]
	}
}

// handleProfiles serves the profile ring: a JSON listing at
// /~dcws/profiles, raw pprof bytes at /~dcws/profiles/<name>.
func (s *Server) handleProfiles(req *httpx.Request) *httpx.Response {
	dir := s.cfg.ProfileDir
	if req.Path == profilesPath || req.Path == profilesPath+"/" {
		type entry struct {
			Name     string    `json:"name"`
			Size     int64     `json:"size"`
			Modified time.Time `json:"modified"`
		}
		out := []entry{}
		if dir != "" {
			if des, err := os.ReadDir(dir); err == nil {
				for _, de := range des {
					if de.IsDir() || !strings.HasSuffix(de.Name(), ".pprof") {
						continue
					}
					info, err := de.Info()
					if err != nil {
						continue
					}
					out = append(out, entry{de.Name(), info.Size(), info.ModTime().UTC()})
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return status(500, err.Error())
		}
		resp := httpx.NewResponse(200)
		resp.Header.Set("Content-Type", "application/json")
		resp.Body = append(data, '\n')
		return resp
	}
	name := strings.TrimPrefix(req.Path, profilesPath+"/")
	if dir == "" || name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return status(404, "no such profile")
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return status(404, "no such profile")
	}
	resp := httpx.NewResponse(200)
	resp.Header.Set("Content-Type", "application/octet-stream")
	resp.Body = data
	return resp
}
