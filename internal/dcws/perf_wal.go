package dcws

import (
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
	"dcws/internal/wal"
)

// WAL micro-benchmarks, exported for cmd/dcwsperf (BENCH_wal.json and the
// -check-wal gate) next to the serve-path pairs in perf.go. Two questions
// matter for the durable tier: what one append costs off the hot path, and
// whether a WAL-enabled server serves home documents with the same
// allocation profile as a plain one (it must — the serve path appends
// nothing).

// benchWALAppend measures one migration-record append under the given sync
// policy. The payload is a realistic recMigrate record (~40 bytes).
func benchWALAppend(b *testing.B, sync wal.SyncPolicy) {
	w, err := wal.Open(wal.Options{Dir: b.TempDir(), Sync: sync})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := encodeMigrate("/dir07/page13.html", "coop09:8080", time.Unix(1_000_000, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(recMigrate, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchWALAppendInterval measures appends under the default interval-fsync
// policy: one write(2) per record, background fsync.
func BenchWALAppendInterval(b *testing.B) { benchWALAppend(b, wal.SyncInterval) }

// BenchWALAppendAlways measures appends under fsync-per-record with group
// commit — the upper bound a durability-maximal deployment pays.
func BenchWALAppendAlways(b *testing.B) { benchWALAppend(b, wal.SyncAlways) }

// BenchServeHomeWAL is BenchServeHome with the durable tier enabled: same
// document, same request, but the server carries an open WAL. The serve
// path appends nothing, so this must match the plain ServeHome profile.
func BenchServeHomeWAL(b *testing.B) {
	st := store.NewMem()
	st.Put("/index.html", perfDoc([]string{"/big.html", "/a.html"}, 2<<10))
	st.Put("/a.html", perfDoc(nil, 4<<10))
	st.Put("/big.html", perfDoc([]string{"/a.html", "/index.html"}, 100<<10))
	s, err := New(Config{
		Origin:  naming.Origin{Host: "bench-home", Port: 80},
		Store:   st,
		Network: memnet.NewFabric(),
		Clock:   clock.Real{},
		WALDir:  b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	req := httpx.NewRequest("GET", "/big.html")
	if resp := s.handle(req); resp.Status != 200 {
		b.Fatalf("warmup status %d", resp.Status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := s.handle(req)
		if resp.Status != 200 {
			b.Fatalf("status %d", resp.Status)
		}
	}
}
