package dcws

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// renderKind distinguishes the two rendered forms of a document the
// serving engine caches.
type renderKind uint8

const (
	// renderHome is the form served to browsers by the home server
	// (hyperlinks to migrated neighbours rewritten to their co-ops).
	renderHome renderKind = iota
	// renderMigration is the form shipped to co-op servers: every local
	// hyperlink absolutized (§4.2).
	renderMigration
)

// renderShardCount is the number of lock stripes in the rendered-document
// cache. Power of two so the hash maps to a shard with a mask.
const renderShardCount = 16

type renderKey struct {
	name string
	kind renderKind
}

type renderEntry struct {
	key  renderKey
	gen  uint64
	data []byte
	hash uint64 // content hash (filled for migration copies)
	elem *list.Element
}

// renderShard is one lock stripe: an LRU-ordered map with a byte budget.
type renderShard struct {
	mu      sync.Mutex
	entries map[renderKey]*renderEntry
	lru     *list.List // of *renderEntry; front = most recently used
	bytes   int64
	budget  int64
}

// renderCache holds rendered document bytes keyed by (name, kind,
// generation). The generation comes from the LDG: it advances whenever a
// document's rendered form may have changed (content replaced, the
// document dirtied by a neighbour's migration/revocation/recall, or its
// own location changed), so a lookup with the current generation can
// never return a copy rendered against stale link locations. This
// preserves the paper's §4.3 "latest-possible-time regeneration"
// semantics: regeneration still happens on first demand after a change —
// the cache only removes the re-parse on every request after it.
type renderCache struct {
	shards [renderShardCount]renderShard
	seed   maphash.Seed
	hits   atomic.Int64
	misses atomic.Int64
}

// newRenderCache returns a cache bounded by budget bytes split evenly
// across the shards. budget <= 0 disables caching entirely (every get
// misses, every put is dropped).
func newRenderCache(budget int64) *renderCache {
	c := &renderCache{seed: maphash.MakeSeed()}
	per := budget / renderShardCount
	for i := range c.shards {
		c.shards[i] = renderShard{
			entries: make(map[renderKey]*renderEntry),
			lru:     list.New(),
			budget:  per,
		}
	}
	return c
}

func (c *renderCache) shard(name string) *renderShard {
	return &c.shards[maphash.String(c.seed, name)&(renderShardCount-1)]
}

// get returns the cached rendered bytes and content hash for (name, kind)
// if the entry was rendered at the given generation. A stale entry is
// dropped on the spot. The returned bytes are shared and must be treated
// as immutable.
func (c *renderCache) get(name string, kind renderKind, gen uint64) ([]byte, uint64, bool) {
	sh := c.shard(name)
	key := renderKey{name: name, kind: kind}
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok && e.gen == gen {
		sh.lru.MoveToFront(e.elem)
		data, hash := e.data, e.hash
		sh.mu.Unlock()
		c.hits.Add(1)
		return data, hash, true
	}
	if ok {
		sh.removeLocked(e)
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, 0, false
}

// put caches rendered bytes for (name, kind) at the given generation,
// evicting least-recently-used entries if the shard budget is exceeded.
// Documents larger than the whole shard budget are not cached (they would
// only thrash the shard). data is retained: callers must not mutate it.
func (c *renderCache) put(name string, kind renderKind, gen uint64, data []byte, hash uint64) {
	sh := c.shard(name)
	if int64(len(data)) > sh.budget {
		return
	}
	key := renderKey{name: name, kind: kind}
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.bytes += int64(len(data)) - int64(len(e.data))
		e.gen, e.data, e.hash = gen, data, hash
		sh.lru.MoveToFront(e.elem)
	} else {
		e := &renderEntry{key: key, gen: gen, data: data, hash: hash}
		e.elem = sh.lru.PushFront(e)
		sh.entries[key] = e
		sh.bytes += int64(len(data))
	}
	for sh.bytes > sh.budget {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		sh.removeLocked(back.Value.(*renderEntry))
	}
	sh.mu.Unlock()
}

// removeLocked unlinks an entry; the shard lock must be held.
func (sh *renderShard) removeLocked(e *renderEntry) {
	sh.lru.Remove(e.elem)
	delete(sh.entries, e.key)
	sh.bytes -= int64(len(e.data))
}

// invalidate drops every rendered form of name immediately. Generation
// comparison already keeps stale entries from being served; eager removal
// releases their memory at migration/revocation time instead of waiting
// for LRU pressure.
func (c *renderCache) invalidate(name string) {
	sh := c.shard(name)
	sh.mu.Lock()
	for _, kind := range [...]renderKind{renderHome, renderMigration} {
		if e, ok := sh.entries[renderKey{name: name, kind: kind}]; ok {
			sh.removeLocked(e)
		}
	}
	sh.mu.Unlock()
}

// counts reports cumulative cache hits and misses.
func (c *renderCache) counts() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// len reports the number of cached entries (tests and status tooling).
func (c *renderCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
