package dcws

import (
	"fmt"
	"time"

	"dcws/internal/clock"
	"dcws/internal/glt"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/naming"
	"dcws/internal/store"
)

// ChainEgressReport is the measured cost of one proactive chain
// dissemination at fan-out k over a live in-memory cluster: the bytes the
// home actually uploaded, against the size of the document it was
// spreading. The whole point of the chain is that HomePushBytes stays at
// ~one document copy however large k grows — fan-out beyond the first link
// is paid by the relaying co-ops, not the home.
type ChainEgressReport struct {
	K             int   `json:"k"`
	DocBytes      int64 `json:"doc_bytes"`
	HomePushBytes int64 `json:"home_push_bytes"`
	// HomeLazyFetches counts /~migrate fetches the home answered — zero
	// when the push truly pre-positioned every replica.
	HomeLazyFetches int64 `json:"home_lazy_fetches"`
	Replicas        int   `json:"replicas"`
	// Relays counts successor hand-offs performed by co-ops (k-1 when no
	// link was skipped).
	Relays int64 `json:"relays"`
}

// MeasureChainEgress boots a live cluster of the given size on an
// in-memory fabric, heats one ~100 KB document past the chain-replication
// threshold, fires the statistics tick that triggers dissemination, and
// reports the home-side egress. The cluster is real servers exchanging
// real requests — only the transport is in-memory.
func MeasureChainEgress(nodes, k int) (ChainEgressReport, error) {
	var rep ChainEgressReport
	if nodes < k+1 {
		return rep, fmt.Errorf("dcws: %d nodes cannot host %d replicas plus a home", nodes, k)
	}
	fabric := memnet.NewFabric()
	cl := clock.NewManual(time.Unix(1_000_000, 0))
	client := httpx.NewClient(httpx.DialerFunc(fabric.Dial))

	hotBody := perfDoc([]string{"/index.html"}, 100<<10)
	rep.K = k
	rep.DocBytes = int64(len(hotBody))

	boot := func(host string, port int, st store.Store, entries, peers []string, params Params) (*Server, error) {
		params.RetryBaseDelay = -1 // manual clock: never sleep a backoff
		s, err := New(Config{
			Origin:      naming.Origin{Host: host, Port: port},
			Store:       st,
			Network:     fabric.Named(naming.Origin{Host: host, Port: port}.Addr()),
			Clock:       cl,
			EntryPoints: entries,
			Peers:       peers,
			Params:      params,
		})
		if err != nil {
			return nil, err
		}
		if err := s.Start(); err != nil {
			return nil, err
		}
		return s, nil
	}

	homeStore := store.NewMem()
	homeStore.Put("/index.html", perfDoc([]string{"/hot.html"}, 2<<10))
	homeStore.Put("/hot.html", hotBody)
	homeParams := Params{
		StatsInterval:    time.Second,
		HotReplicateRate: 1,
		HotReplicaCount:  k,
	}
	home, err := boot("home", 80, homeStore, []string{"/index.html"}, nil, homeParams)
	if err != nil {
		return rep, err
	}
	defer home.Close()

	coops := make([]*Server, 0, nodes-1)
	for i := 1; i < nodes; i++ {
		coop, err := boot(fmt.Sprintf("coop%02d", i), 80+i, store.NewMem(), nil, []string{home.Addr()}, Params{})
		if err != nil {
			return rep, err
		}
		defer coop.Close()
		coops = append(coops, coop)
		home.LoadTable().Observe(glt.Entry{Server: coop.Addr()})
	}

	// Heat the document past the 1 hit/s threshold, then let one
	// statistics tick run the EWMA trigger and the chain push.
	for i := 0; i < 8; i++ {
		resp, err := client.Get(home.Addr(), "/hot.html", nil)
		if err != nil {
			return rep, err
		}
		if resp.Status != 200 {
			return rep, fmt.Errorf("dcws: warm-up serve = %d", resp.Status)
		}
	}
	home.TickStats()

	rep.HomePushBytes = home.Status().Replication.PushBytes
	rep.Replicas = len(home.Replicas("/hot.html"))
	for _, coop := range coops {
		rep.Relays += coop.Status().Replication.Relays
	}
	rep.HomeLazyFetches = home.Stats().Fetches.Value()
	return rep, nil
}
