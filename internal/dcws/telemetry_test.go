package dcws

import (
	"fmt"
	"strings"
	"testing"

	"dcws/internal/glt"
	"dcws/internal/httpx"
	"dcws/internal/telemetry"
)

// checkExposition validates Prometheus text-format lines: every
// non-comment line must be "name{labels} value", optionally followed by
// an OpenMetrics-style exemplar (" # {trace_id=\"...\"} value").
// Returns the family names seen.
func checkExposition(t *testing.T, body string) map[string]bool {
	t.Helper()
	families := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// "# TYPE name type" declares a family even when it has no
			// samples yet (e.g. a per-peer collector with no peers).
			if f := strings.Fields(line); len(f) >= 3 && f[1] == "TYPE" {
				families[f[2]] = true
			}
			continue
		}
		if idx := strings.Index(line, " # {"); idx >= 0 {
			ex := line[idx+len(" # "):]
			end := strings.IndexByte(ex, '}')
			if end < 0 || strings.TrimSpace(ex[end+1:]) == "" {
				t.Fatalf("malformed exemplar in %q", line)
			}
			line = line[:idx]
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced label block in %q", line)
			}
			name = name[:i]
		}
		if name == "" {
			t.Fatalf("empty metric name in %q", line)
		}
		families[name] = true
	}
	return families
}

func TestMetricsEndpointCoversEveryLayer(t *testing.T) {
	w := newWorld(t)
	home, _ := migrateAndServe(t, w)
	// Generate traffic through every layer: a home serve, a redirect, and
	// a lazy-migration fetch (render cache + resilience + GLT piggyback).
	w.get("home:80", "/index.html")
	w.get("home:80", "/index.html") // second hit: render-cache hit
	w.get("coop:81", "/~migrate/home/80/page.html")

	resp := w.get("home:80", "/~dcws/metrics")
	if resp.Status != 200 {
		t.Fatalf("metrics status = %d", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	families := checkExposition(t, string(resp.Body))
	for _, want := range []string{
		// httpx wire layer
		"dcws_httpx_connections_queued_total",
		"dcws_httpx_responses_total",
		"dcws_httpx_request_seconds_count",
		"dcws_httpx_queue_wait_seconds_count",
		"dcws_httpx_bytes_in_total",
		"dcws_httpx_bytes_out_total",
		"dcws_httpx_queue_depth",
		// dcws handler
		"dcws_serve_seconds_count",
		"dcws_requests_total",
		"dcws_redirects_total",
		"dcws_fetches_total",
		// render cache
		"dcws_render_cache_hits_total",
		"dcws_render_cache_misses_total",
		"dcws_render_cache_entries",
		// resilience
		"dcws_resilience_retries_total",
		"dcws_resilience_trips_total",
		"dcws_resilience_peer_state",
		// GLT
		"dcws_glt_entries",
		"dcws_glt_load",
		"dcws_glt_header_bytes",
		"dcws_glt_header_regens_total",
		// traces
		"dcws_trace_spans_total",
		"dcws_trace_tail_spans_total",
		// SLO watcher
		"dcws_slo_checks_total",
		"dcws_slo_alerts_total",
		"dcws_slo_burn_rate",
		"dcws_slo_latency_p99_seconds",
		"dcws_slo_shed_rate",
		"dcws_slo_alerting",
	} {
		if !families[want] {
			t.Errorf("exposition missing family %s", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", resp.Body)
	}

	// The serve histogram must carry the kind label for the home serve.
	if !strings.Contains(string(resp.Body), `dcws_serve_seconds_count{kind="home"} 2`) {
		t.Fatalf("home serve histogram not observed:\n%s", resp.Body)
	}
	// A render-cache hit must be visible after the repeated GET.
	hits, _ := home.CacheCounts()
	if hits < 1 {
		t.Fatalf("cache hits = %d", hits)
	}
}

// TestTraceSpansAcrossServers is the issue's acceptance scenario: in a
// three-server cluster, one client GET that triggers a lazy-migration
// fetch leaves spans on BOTH the co-op and the home server sharing a
// single trace ID.
func TestTraceSpansAcrossServers(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	coop := w.addServer("coop", 81, nil, nil, Params{})
	third := w.addServer("third", 82, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")

	// The client supplies its own trace ID, as an external system would.
	extra := make(httpx.Header)
	extra.Set(telemetry.TraceHeader, "client-trace-1")
	resp, err := w.client.Get("coop:81", "/~migrate/home/80/page.html", extra)
	if err != nil || resp.Status != 200 {
		t.Fatalf("GET = %v, %v", resp, err)
	}
	if got := resp.Header.Get(telemetry.TraceHeader); got != "client-trace-1" {
		t.Fatalf("response trace header = %q", got)
	}

	coopSpans := coop.Traces().ByTrace("client-trace-1")
	ops := make(map[string]telemetry.Span)
	for _, sp := range coopSpans {
		ops[sp.Op] = sp
	}
	if _, ok := ops["serve-coop"]; !ok {
		t.Fatalf("coop spans missing serve-coop: %+v", coopSpans)
	}
	fh, ok := ops["fetch-home"]
	if !ok {
		t.Fatalf("coop spans missing fetch-home: %+v", coopSpans)
	}
	if fh.Peer != "home:80" || fh.Status != 200 || fh.Attempts != 1 {
		t.Fatalf("fetch-home span = %+v", fh)
	}

	homeSpans := home.Traces().ByTrace("client-trace-1")
	if len(homeSpans) != 1 || homeSpans[0].Op != "serve-fetch" {
		t.Fatalf("home spans = %+v, want one serve-fetch", homeSpans)
	}
	if homeSpans[0].Server != "home:80" {
		t.Fatalf("home span recorded by %q", homeSpans[0].Server)
	}

	// The uninvolved third server saw nothing of this trace.
	if spans := third.Traces().ByTrace("client-trace-1"); len(spans) != 0 {
		t.Fatalf("third server has spans: %+v", spans)
	}
}

// TestTraceSpansUnderFaults drives the same lazy-migration fetch through
// injected dial failures: the retried-and-failed fetch leaves an error
// span with the attempt count, and after the fault heals a fresh request
// traces cleanly end to end.
func TestTraceSpansUnderFaults(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	coop := w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")

	w.fabric.SetDialFailRate("coop:81", "home:80", 1.0)
	extra := make(httpx.Header)
	extra.Set(telemetry.TraceHeader, "faulty-trace")
	resp, err := w.client.Get("coop:81", "/~migrate/home/80/page.html", extra)
	if err != nil || resp.Status != 503 {
		t.Fatalf("GET under faults = %v, %v, want 503", resp, err)
	}
	spans := coop.Traces().ByTrace("faulty-trace")
	var fetch *telemetry.Span
	for i := range spans {
		if spans[i].Op == "fetch-home" {
			fetch = &spans[i]
		}
	}
	if fetch == nil {
		t.Fatalf("no fetch-home span: %+v", spans)
	}
	if fetch.Err == "" || fetch.Status != 0 {
		t.Fatalf("failed fetch span = %+v, want recorded error", fetch)
	}
	if fetch.Attempts != coop.params.FetchAttempts {
		t.Fatalf("attempts = %d, want %d", fetch.Attempts, coop.params.FetchAttempts)
	}
	// The per-peer retry counter saw the re-issued attempts.
	if st := coop.Status(); st.PeerResilience["home:80"].Retries != int64(coop.params.FetchAttempts-1) {
		t.Fatalf("peer resilience = %+v", st.PeerResilience)
	}

	w.fabric.SetDialFailRate("coop:81", "home:80", 0)
	extra = make(httpx.Header)
	extra.Set(telemetry.TraceHeader, "healed-trace")
	resp, err = w.client.Get("coop:81", "/~migrate/home/80/page.html", extra)
	if err != nil || resp.Status != 200 {
		t.Fatalf("GET after heal = %v, %v", resp, err)
	}
	if spans := home.Traces().ByTrace("healed-trace"); len(spans) != 1 || spans[0].Op != "serve-fetch" {
		t.Fatalf("home spans after heal = %+v", spans)
	}
}

// TestStatusPeerResilienceCounters checks satellite 1: /~dcws/status breaks
// retries, trips, rejections, and the last transition time down by peer.
func TestStatusPeerResilienceCounters(t *testing.T) {
	w := newWorld(t)
	home := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	coop := w.addServer("coop", 81, nil, nil, Params{})
	home.migrate("/page.html", "coop:81")

	w.fabric.SetDialFailRate("coop:81", "home:80", 1.0)
	// Default FetchAttempts 3, BreakerThreshold 5: the first GET fails 3
	// attempts (2 retries); the second trips the breaker on its 2nd
	// attempt (5th consecutive failure) and has its 3rd attempt rejected.
	w.get("coop:81", "/~migrate/home/80/page.html")
	w.get("coop:81", "/~migrate/home/80/page.html")

	st := coop.Status()
	pr, ok := st.PeerResilience["home:80"]
	if !ok {
		t.Fatalf("no peer_resilience row for home:80: %+v", st.PeerResilience)
	}
	if pr.State != "open" || pr.Trips != 1 || pr.Retries != 4 || pr.Rejections != 1 {
		t.Fatalf("peer resilience = %+v", pr)
	}
	if pr.LastTransition == "" {
		t.Fatal("last_transition not recorded")
	}
	if st.Breakers["home:80"] != "open" {
		t.Fatalf("breakers = %+v", st.Breakers)
	}

	// The same counters surface per peer in the exposition.
	resp := w.get("coop:81", "/~dcws/metrics")
	body := string(resp.Body)
	for _, want := range []string{
		`dcws_resilience_peer_trips_total{peer="home:80"} 1`,
		`dcws_resilience_peer_retries_total{peer="home:80"} 4`,
		`dcws_resilience_peer_state{peer="home:80"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestPiggybackHeaderStable checks satellite 2: with quantized load and
// throttled self-refresh, back-to-back requests reuse the cached header
// encoding instead of re-serializing the table per response.
func TestPiggybackHeaderStable(t *testing.T) {
	w := newWorld(t)
	srv := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})

	r1 := w.get("home:80", "/index.html")
	regensAfterFirst := srv.LoadTable().HeaderRegens()
	r2 := w.get("home:80", "/index.html")
	r3 := w.get("home:80", "/index.html")

	h1, h2, h3 := r1.Header.Get("X-DCWS-Load"), r2.Header.Get("X-DCWS-Load"), r3.Header.Get("X-DCWS-Load")
	if h1 == "" || h1 != h2 || h2 != h3 {
		t.Fatalf("piggyback header churned: %q / %q / %q", h1, h2, h3)
	}
	if got := srv.LoadTable().HeaderRegens(); got != regensAfterFirst {
		t.Fatalf("header regens grew %d -> %d across identical requests", regensAfterFirst, got)
	}
}

// TestMetricsSeriesLimitAtScale is the cardinality-guard scenario: a server
// that has learned of 256 peers through gossip must not emit 256 series per
// per-peer family at scrape time — the limit caps each family and the
// overflow is visible in the dropped meta-counter.
func TestMetricsSeriesLimitAtScale(t *testing.T) {
	w := newWorld(t)
	srv := w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{MetricsSeriesLimit: 40})
	for i := 0; i < 256; i++ {
		srv.LoadTable().Observe(glt.Entry{
			Server:  fmt.Sprintf("peer-%03d.cluster:80", i),
			Load:    float64(i) / 256,
			Updated: w.clock.Now(),
		})
	}

	resp := w.get("home:80", "/~dcws/metrics")
	if resp.Status != 200 {
		t.Fatalf("metrics status = %d", resp.Status)
	}
	body := string(resp.Body)
	checkExposition(t, body)
	if got := strings.Count(body, "dcws_glt_load{"); got > 40 {
		t.Fatalf("dcws_glt_load emitted %d series, limit 40", got)
	}
	if !strings.Contains(body, `telemetry_series_dropped_total{family="dcws_glt_load"}`) {
		t.Fatalf("dropped meta-counter missing for dcws_glt_load:\n%s", body)
	}
	// Small families are untouched by the cap.
	if !strings.Contains(body, "dcws_glt_entries 257") {
		t.Fatalf("dcws_glt_entries missing or wrong:\n%s", body)
	}
}

// TestTraceEndpointServesSpans checks the /~dcws/trace debugging view.
func TestTraceEndpointServesSpans(t *testing.T) {
	w := newWorld(t)
	w.addServer("home", 80, siteAB(), []string{"/index.html"}, Params{})
	w.get("home:80", "/index.html")
	resp := w.get("home:80", "/~dcws/trace")
	if resp.Status != 200 {
		t.Fatalf("trace status = %d", resp.Status)
	}
	body := string(resp.Body)
	if !strings.Contains(body, `"op": "serve-home"`) || !strings.Contains(body, `"trace_id"`) {
		t.Fatalf("trace body = %s", body)
	}
}
