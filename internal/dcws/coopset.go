package dcws

import (
	"container/list"
	"sort"
	"strconv"
	"sync"
	"time"

	"dcws/internal/naming"
)

// coopView is the read-only snapshot of a hosted document's record that
// request handlers work with outside the coopSet lock.
type coopView struct {
	home    naming.Origin
	name    string
	present bool
	hash    uint64
	// leased / leaseUntil mirror the record's lease state (push
	// invalidation); a never-leased record reports leased == false.
	leased     bool
	leaseUntil time.Time
}

// coopSet owns every document this server hosts on behalf of other
// servers. It replaces the former global-mutex map: an RWMutex guards a
// map plus a container/list LRU of the physically present copies and a
// running byte total, so the §4.5 disk-budget enforcement is O(evictions)
// instead of an O(n) scan of the whole map under lock.
type coopSet struct {
	mu    sync.RWMutex
	docs  map[string]*coopDoc
	lru   *list.List // of *coopDoc, present copies only; front = most recent
	bytes int64      // running total of present copy sizes
}

func newCoopSet() *coopSet {
	return &coopSet{docs: make(map[string]*coopDoc), lru: list.New()}
}

// touch returns the record for key, creating it if unknown, and performs
// all per-request accounting — windowHit bump, lastUsed, LRU position —
// in the same critical section (formerly three separate lock
// acquisitions per request).
func (cs *coopSet) touch(key string, home naming.Origin, name string, now time.Time) coopView {
	cs.mu.Lock()
	cd, ok := cs.docs[key]
	if !ok {
		cd = &coopDoc{key: key, home: home, name: name}
		cs.docs[key] = cd
	}
	cd.windowHit++
	cd.lastUsed = now
	if cd.elem != nil {
		cs.lru.MoveToFront(cd.elem)
	}
	v := cd.viewLocked()
	cs.mu.Unlock()
	return v
}

// view returns the record for key without touching its accounting.
func (cs *coopSet) view(key string) (coopView, bool) {
	cs.mu.RLock()
	cd, ok := cs.docs[key]
	if !ok {
		cs.mu.RUnlock()
		return coopView{}, false
	}
	v := cd.viewLocked()
	cs.mu.RUnlock()
	return v, true
}

func (cd *coopDoc) viewLocked() coopView {
	return coopView{
		home: cd.home, name: cd.name, present: cd.present, hash: cd.hash,
		leased: cd.leased, leaseUntil: cd.leaseUntil,
	}
}

// markFetched records that the physical copy for key is now in the store.
func (cs *coopSet) markFetched(key string, size int64, hash uint64, now time.Time) {
	cs.mu.Lock()
	if cd, ok := cs.docs[key]; ok {
		cs.bytes += size - cd.presentSize()
		cd.present = true
		cd.hash = hash
		cd.fetched = now
		cd.lastUsed = now
		cd.size = size
		if cd.elem == nil {
			cd.elem = cs.lru.PushFront(cd)
		} else {
			cs.lru.MoveToFront(cd.elem)
		}
	}
	cs.mu.Unlock()
}

// refresh updates the hash/size bookkeeping after a validator pass
// replaced the stored copy.
func (cs *coopSet) refresh(key string, size int64, hash uint64, now time.Time) {
	cs.markFetched(key, size, hash, now)
}

// markAbsent records that the physical copy for key is gone (evicted or
// vanished from the store); the document remains logically hosted and is
// re-fetched lazily on its next request.
func (cs *coopSet) markAbsent(key string) {
	cs.mu.Lock()
	if cd, ok := cs.docs[key]; ok {
		cs.dropPresenceLocked(cd)
	}
	cs.mu.Unlock()
}

// remove forgets key entirely (revocation, stale 301 from home). It
// reports whether the key was hosted at all.
func (cs *coopSet) remove(key string) bool {
	cs.mu.Lock()
	cd, ok := cs.docs[key]
	if ok {
		cs.dropPresenceLocked(cd)
		delete(cs.docs, key)
	}
	cs.mu.Unlock()
	return ok
}

// dropPresenceLocked clears a record's physical presence; lock held.
func (cs *coopSet) dropPresenceLocked(cd *coopDoc) {
	if cd.present {
		cs.bytes -= cd.size
	}
	cd.present = false
	cd.size = 0
	if cd.elem != nil {
		cs.lru.Remove(cd.elem)
		cd.elem = nil
	}
}

// evictOver marks least-recently-used present copies absent until the
// byte total fits within budget, never evicting the copy named by keep.
// It returns the evicted keys so the caller can delete the stored bytes
// outside the lock. budget <= 0 means unlimited.
func (cs *coopSet) evictOver(budget int64, keep string) []string {
	if budget <= 0 {
		return nil
	}
	var evicted []string
	cs.mu.Lock()
	for cs.bytes > budget {
		elem := cs.lru.Back()
		for elem != nil && elem.Value.(*coopDoc).key == keep {
			elem = elem.Prev()
		}
		if elem == nil {
			break
		}
		cd := elem.Value.(*coopDoc)
		cs.dropPresenceLocked(cd)
		evicted = append(evicted, cd.key)
	}
	cs.mu.Unlock()
	return evicted
}

// count reports how many documents are hosted (present or pending fetch).
func (cs *coopSet) count() int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return len(cs.docs)
}

// presentBytes reports the running byte total of physically present
// copies.
func (cs *coopSet) presentBytes() int64 {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.bytes
}

// keys returns every hosted key, sorted.
func (cs *coopSet) keys() []string {
	cs.mu.RLock()
	out := make([]string, 0, len(cs.docs))
	for k := range cs.docs {
		out = append(out, k)
	}
	cs.mu.RUnlock()
	sort.Strings(out)
	return out
}

// presentKeys returns the keys of physically present copies, sorted (the
// validator's work list).
func (cs *coopSet) presentKeys() []string {
	cs.mu.RLock()
	out := make([]string, 0, cs.lru.Len())
	for e := cs.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*coopDoc).key)
	}
	cs.mu.RUnlock()
	sort.Strings(out)
	return out
}

// setSiblings replaces the known sibling-replica addresses for key, when
// the key is hosted. An empty slice clears them.
func (cs *coopSet) setSiblings(key string, sibs []string) {
	cs.mu.Lock()
	if cd, ok := cs.docs[key]; ok {
		cd.siblings = sibs
	}
	cs.mu.Unlock()
}

// dropSibling removes one address from key's sibling list — the peer
// answered a hedge probe without a usable copy, so its replica is gone
// (revoked or evicted) and racing toward it again would only burn a leg.
func (cs *coopSet) dropSibling(key, peer string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cd, ok := cs.docs[key]
	if !ok {
		return
	}
	cd.siblings = removeAddr(cd.siblings, peer)
}

// evictSibling removes peer from every hosted document's sibling list
// (the peer was declared down) and reports how many lists shrank.
func (cs *coopSet) evictSibling(peer string) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for _, cd := range cs.docs {
		if sibs := removeAddr(cd.siblings, peer); len(sibs) != len(cd.siblings) {
			cd.siblings = sibs
			n++
		}
	}
	return n
}

// removeAddr returns addrs without peer, building a fresh slice only on a
// hit: siblingsOf readers copy under the lock, but an in-place shuffle
// would still corrupt a slice captured by a prior setSiblings caller.
func removeAddr(addrs []string, peer string) []string {
	for i, a := range addrs {
		if a != peer {
			continue
		}
		out := make([]string, 0, len(addrs)-1)
		out = append(out, addrs[:i]...)
		for _, b := range addrs[i+1:] {
			if b != peer {
				out = append(out, b)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	return addrs
}

// siblingsOf returns a copy of the known sibling-replica addresses for
// key; nil when the key is unknown or has no siblings.
func (cs *coopSet) siblingsOf(key string) []string {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	cd, ok := cs.docs[key]
	if !ok || len(cd.siblings) == 0 {
		return nil
	}
	out := make([]string, len(cd.siblings))
	copy(out, cd.siblings)
	return out
}

// rollWindows zeroes the per-document hit counters (statistics tick).
func (cs *coopSet) rollWindows() {
	cs.mu.Lock()
	for _, cd := range cs.docs {
		cd.windowHit = 0
	}
	cs.mu.Unlock()
}

// hotReport returns "name=hits" parts for every hosted document of the
// given home server with a non-zero window hit count, sorted (the
// replication extension's piggybacked hot-spot report).
func (cs *coopSet) hotReport(homeAddr string) []string {
	var parts []string
	cs.mu.RLock()
	for _, cd := range cs.docs {
		if cd.windowHit > 0 && cd.home.Addr() == homeAddr {
			parts = append(parts, cd.name+"="+strconv.FormatInt(cd.windowHit, 10))
		}
	}
	cs.mu.RUnlock()
	sort.Strings(parts)
	return parts
}

// restore re-installs a hosted-document record during crash recovery.
// Present copies join the LRU as most-recent (recovery has no better
// ordering signal than "it survived").
func (cs *coopSet) restore(seed coopSeed, now time.Time) {
	cs.mu.Lock()
	cd, ok := cs.docs[seed.key]
	if !ok {
		cd = &coopDoc{key: seed.key, home: seed.home, name: seed.name}
		cs.docs[seed.key] = cd
	}
	if seed.present {
		cs.bytes += seed.size - cd.presentSize()
		cd.present = true
		cd.size = seed.size
		cd.hash = seed.hash
		cd.fetched = now
		cd.lastUsed = now
		if cd.elem == nil {
			cd.elem = cs.lru.PushFront(cd)
		}
	}
	cs.mu.Unlock()
}

// seedOf captures one hosted-document record in durable form.
func (cs *coopSet) seedOf(key string) (coopSeed, bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	cd, ok := cs.docs[key]
	if !ok {
		return coopSeed{}, false
	}
	return coopSeed{
		key:     cd.key,
		home:    cd.home,
		name:    cd.name,
		present: cd.present,
		size:    cd.presentSize(),
		hash:    cd.hash,
	}, true
}

// snapshotSeeds captures every hosted-document record in durable form,
// sorted by key (the coop section of the state snapshot).
func (cs *coopSet) snapshotSeeds() []coopSeed {
	cs.mu.RLock()
	out := make([]coopSeed, 0, len(cs.docs))
	for _, cd := range cs.docs {
		out = append(out, coopSeed{
			key:     cd.key,
			home:    cd.home,
			name:    cd.name,
			present: cd.present,
			size:    cd.presentSize(),
			hash:    cd.hash,
		})
	}
	cs.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// ---- leases (push invalidation) -----------------------------------------

// renewLease grants or extends one document's lease.
func (cs *coopSet) renewLease(key string, until time.Time) {
	cs.mu.Lock()
	if cd, ok := cs.docs[key]; ok {
		cd.leased = true
		cd.leaseUntil = until
	}
	cs.mu.Unlock()
}

// renewHome extends the lease of every document hosted from one home
// server — the bulk renewal applied whenever a frame arrives on that
// home's subscription channel (channel liveness IS the renewal).
func (cs *coopSet) renewHome(homeAddr string, until time.Time) {
	cs.mu.Lock()
	for _, cd := range cs.docs {
		if cd.home.Addr() == homeAddr {
			cd.leased = true
			cd.leaseUntil = until
		}
	}
	cs.mu.Unlock()
}

// inventory returns the (name, hash) pairs of documents hosted from one
// home server, sorted by name — the frameSubscribe payload.
func (cs *coopSet) inventory(homeAddr string) []invDoc {
	cs.mu.RLock()
	var out []invDoc
	for _, cd := range cs.docs {
		if cd.home.Addr() == homeAddr {
			out = append(out, invDoc{name: cd.name, hash: cd.hash})
		}
	}
	cs.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// homes returns every distinct home address documents are hosted for,
// sorted (the recovery path re-subscribes to each).
func (cs *coopSet) homes() []string {
	cs.mu.RLock()
	seen := make(map[string]bool)
	for _, cd := range cs.docs {
		seen[cd.home.Addr()] = true
	}
	cs.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// leasedCount reports how many hosted documents hold an unexpired lease
// at now (status, metrics).
func (cs *coopSet) leasedCount(now time.Time) int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	n := 0
	for _, cd := range cs.docs {
		if cd.leased && cd.leaseUntil.After(now) {
			n++
		}
	}
	return n
}

func (cd *coopDoc) presentSize() int64 {
	if cd.present {
		return cd.size
	}
	return 0
}
