package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowMonotonic(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("Real clock went backwards: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	c := Real{}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("Real.After(1ms) did not fire within 2s")
	}
}

func TestScaledAdvancesFaster(t *testing.T) {
	c := NewScaled(1000)
	start := c.Now()
	time.Sleep(5 * time.Millisecond)
	elapsed := c.Now().Sub(start)
	if elapsed < 1*time.Second {
		t.Fatalf("scaled clock advanced only %v in 5ms real at factor 1000", elapsed)
	}
}

func TestScaledSleepCompresses(t *testing.T) {
	c := NewScaled(100)
	realStart := time.Now()
	c.Sleep(500 * time.Millisecond) // should take ~5ms real
	if real := time.Since(realStart); real > 250*time.Millisecond {
		t.Fatalf("scaled sleep of 500ms took %v real time at factor 100", real)
	}
}

func TestScaledFactorClamped(t *testing.T) {
	c := NewScaled(0)
	if c.Factor != 1 {
		t.Fatalf("factor 0 should clamp to 1, got %d", c.Factor)
	}
}

func TestScaledAfterFires(t *testing.T) {
	c := NewScaled(1000)
	select {
	case <-c.After(time.Second): // 1ms real
	case <-time.After(2 * time.Second):
		t.Fatal("Scaled.After did not fire")
	}
}

func TestManualNowFixedUntilAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewManual(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", c.Now(), start)
	}
	c.Advance(3 * time.Second)
	want := start.Add(3 * time.Second)
	if !c.Now().Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", c.Now(), want)
	}
}

func TestManualSleepWakesOnAdvance(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait until the sleeper has registered.
	for c.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before clock advanced")
	default:
	}
	c.Advance(10 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestManualPartialAdvanceDoesNotWake(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	c.Advance(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before deadline")
	default:
	}
	c.Advance(5 * time.Second)
	select {
	case ts := <-ch:
		if got := ts.Sub(time.Unix(0, 0)); got != 10*time.Second {
			t.Fatalf("woke at +%v, want +10s", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("After did not fire at deadline")
	}
}

func TestManualAfterZeroFiresImmediately(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should be immediately ready")
	}
}

func TestManualSetBackwardIgnored(t *testing.T) {
	start := time.Unix(100, 0)
	c := NewManual(start)
	c.Set(time.Unix(50, 0))
	if !c.Now().Equal(start) {
		t.Fatalf("Set backwards moved the clock to %v", c.Now())
	}
	c.Set(time.Unix(200, 0))
	if !c.Now().Equal(time.Unix(200, 0)) {
		t.Fatalf("Set forwards: got %v", c.Now())
	}
}

func TestManualManySleepersAllWake(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	const n = 50
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		d := time.Duration(i+1) * time.Second
		go func() {
			defer wg.Done()
			c.Sleep(d)
		}()
	}
	for c.Waiters() < n {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Duration(n) * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only some sleepers woke; %d still waiting", c.Waiters())
	}
}
