// Package clock abstracts time so that the DCWS timers (statistics
// recalculation, pinger activation, co-op validation, and the various
// migration rate gates) can run against real time in production, compressed
// time in live demos, and fully virtual time in tests and in the
// discrete-event simulator.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used by every DCWS component. The zero of a
// Clock's epoch is implementation-defined; callers must only compare times
// produced by the same Clock.
type Clock interface {
	// Now reports the current time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Scaled is a Clock that runs faster than real time by an integer factor.
// A Scaled clock with Factor 60 turns the paper's 120-second co-op
// validation interval into two real seconds, which makes the live cluster
// demos practical. Durations are divided by Factor when sleeping and
// multiplied when reporting elapsed time.
type Scaled struct {
	base   time.Time
	start  time.Time
	Factor int
}

// NewScaled returns a clock that advances Factor times faster than the wall
// clock. Factor must be >= 1.
func NewScaled(factor int) *Scaled {
	if factor < 1 {
		factor = 1
	}
	now := time.Now()
	return &Scaled{base: now, start: now, Factor: factor}
}

// Now implements Clock.
func (s *Scaled) Now() time.Time {
	elapsed := time.Since(s.start)
	return s.base.Add(elapsed * time.Duration(s.Factor))
}

// Sleep implements Clock.
func (s *Scaled) Sleep(d time.Duration) {
	time.Sleep(s.compress(d))
}

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		time.Sleep(s.compress(d))
		ch <- s.Now()
	}()
	return ch
}

func (s *Scaled) compress(d time.Duration) time.Duration {
	c := d / time.Duration(s.Factor)
	if c <= 0 && d > 0 {
		c = time.Nanosecond
	}
	return c
}

// Manual is a Clock driven entirely by explicit Advance calls. It is the
// clock used by unit tests and by the discrete-event simulator's adapters.
// Sleepers and After-waiters are released when Advance moves the clock past
// their deadlines.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

type manualWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManual returns a Manual clock positioned at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := m.now.Add(d)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, &manualWaiter{deadline: deadline, ch: ch})
	return ch
}

// Advance moves the clock forward by d, waking every sleeper whose deadline
// has been reached.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var remaining []*manualWaiter
	var fire []*manualWaiter
	for _, w := range m.waiters {
		if !w.deadline.After(now) {
			fire = append(fire, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// Set moves the clock to t, which must not be earlier than the current time,
// waking sleepers as Advance does.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	d := t.Sub(m.now)
	m.mu.Unlock()
	if d < 0 {
		return
	}
	m.Advance(d)
}

// Waiters reports how many goroutines are currently blocked on the clock.
// It exists so tests can synchronize with sleepers before advancing.
func (m *Manual) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}
