package httpx

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadRequest feeds arbitrary bytes to the request parser. Accepted
// requests must be internally consistent; everything else must be rejected
// without panicking. Run with `go test -fuzz FuzzReadRequest ./internal/httpx`.
func FuzzReadRequest(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.0\r\n\r\n"))
	f.Add([]byte("GET /a/b.html HTTP/1.1\r\nHost: h\r\nX-DCWS-Load: a=1@2\r\n\r\n"))
	f.Add([]byte("POST /x HTTP/1.0\r\nContent-Length: 3\r\n\r\nabc"))
	f.Add([]byte("GET /x HTTP/1.0\r\nContent-Length: 99999999999999999999\r\n\r\n"))
	f.Add([]byte("\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if req.Method == "" || len(req.Path) == 0 || req.Path[0] != '/' {
			t.Fatalf("accepted inconsistent request %+v from %q", req, data)
		}
		// Accepted requests re-serialize and re-parse to the same shape.
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("cannot re-serialize accepted request: %v", err)
		}
		again, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-parse of serialized request failed: %v", err)
		}
		if again.Method != req.Method || again.Path != req.Path {
			t.Fatalf("round trip changed request: %+v vs %+v", req, again)
		}
	})
}

// FuzzReadResponse is the response-side analogue.
func FuzzReadResponse(f *testing.F) {
	f.Add([]byte("HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nhi"))
	f.Add([]byte("HTTP/1.0 301 Moved Permanently\r\nLocation: http://x/~migrate/h/80/d\r\n\r\n"))
	f.Add([]byte("HTTP/1.0 503 Service Unavailable\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if resp.Status < 100 || resp.Status > 599 {
			t.Fatalf("accepted out-of-range status %d from %q", resp.Status, data)
		}
	})
}
