// Package httpx is DCWS's own HTTP/1.x implementation. The paper's design
// depends on two properties that motivated a from-scratch stack rather than
// a stock server: (1) arbitrary extension headers must ride on every request
// and response so servers can piggyback global-load-table entries (§3.3),
// and (2) the server front-end must expose a bounded socket queue whose
// overflow is answered with a graceful 503 (§5.2). The wire format follows
// HTTP/1.0 with optional keep-alive, which matches the protocol generation
// the paper targeted.
package httpx

import (
	"bufio"
	"fmt"
	"net"
	"strings"
)

// Header is a case-insensitive header map. Keys are stored canonicalized
// (Word-Word). Extension headers (the paper's piggybacking channel) are
// ordinary entries; per RFC guidance they are ignored by implementations
// that do not understand them.
type Header map[string][]string

// CanonicalKey converts a header name to its canonical form: the first
// letter and every letter after '-' upper-cased, the rest lower-cased.
// Already-canonical names — every header constant in this codebase, and
// every key of a parsed message — are returned unchanged without
// allocating; this sits on the per-request hot path of every Get/Set/Add.
func CanonicalKey(k string) string {
	upper := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (upper && 'a' <= c && c <= 'z') || (!upper && 'A' <= c && c <= 'Z') {
			return canonicalizeKey(k)
		}
		upper = c == '-'
	}
	return k
}

// canonicalKnown interns the canonical forms of the extension headers the
// system puts on nearly every message under their conventional all-caps
// spelling, so the header constants used throughout the code resolve
// without allocating. Populated once at init; read-only afterwards.
var canonicalKnown = map[string]string{}

func init() {
	for _, k := range []string{
		"X-DCWS-Acked", "X-DCWS-Chain", "X-DCWS-Doc", "X-DCWS-Fetch",
		"X-DCWS-Hedge", "X-DCWS-Hot", "X-DCWS-Load", "X-DCWS-Parent",
		"X-DCWS-Replicas", "X-DCWS-Trace", "X-DCWS-Validate",
	} {
		canonicalKnown[k] = canonicalizeKey(k)
	}
}

// canonicalizeKey is the allocating slow path of CanonicalKey.
func canonicalizeKey(k string) string {
	if v, ok := canonicalKnown[k]; ok {
		return v
	}
	var b strings.Builder
	b.Grow(len(k))
	upper := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case upper && 'a' <= c && c <= 'z':
			c -= 'a' - 'A'
		case !upper && 'A' <= c && c <= 'Z':
			c += 'a' - 'A'
		}
		b.WriteByte(c)
		upper = c == '-'
	}
	return b.String()
}

// Set replaces the value of a header field. Re-setting a field to the
// value it already has leaves the map untouched, so the repeated Sets on
// reused requests (Host, Connection) cost no allocation.
func (h Header) Set(key, value string) {
	k := CanonicalKey(key)
	if v := h[k]; len(v) == 1 && v[0] == value {
		return
	}
	h[k] = []string{value}
}

// Add appends a value to a header field.
func (h Header) Add(key, value string) {
	k := CanonicalKey(key)
	h[k] = append(h[k], value)
}

// Get returns the first value of a header field, or "".
func (h Header) Get(key string) string {
	v := h[CanonicalKey(key)]
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// Values returns all values of a header field.
func (h Header) Values(key string) []string {
	return h[CanonicalKey(key)]
}

// Del removes a header field.
func (h Header) Del(key string) {
	delete(h, CanonicalKey(key))
}

// Clone returns a deep copy.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, v := range h {
		vv := make([]string, len(v))
		copy(vv, v)
		out[k] = vv
	}
	return out
}

// Request is an HTTP request.
type Request struct {
	Method string // GET, HEAD, POST
	Path   string // absolute path, e.g. /dir/foo.html
	Proto  string // "HTTP/1.0" or "HTTP/1.1"
	Header Header
	Body   []byte
	// RemoteAddr is filled in by the server for handler use.
	RemoteAddr string
}

// NewRequest returns a GET request for path with an empty header map.
func NewRequest(method, path string) *Request {
	return &Request{Method: method, Path: path, Proto: "HTTP/1.0", Header: make(Header)}
}

// SplitQuery splits a request target into its path and raw query string
// (without the '?'). The wire layer deliberately keeps Path verbatim —
// document names never contain queries — so control endpoints that accept
// parameters (/~dcws/trace?id=...) split on demand.
func SplitQuery(target string) (path, query string) {
	if i := strings.IndexByte(target, '?'); i >= 0 {
		return target[:i], target[i+1:]
	}
	return target, ""
}

// QueryParam extracts one key's value from a raw query string produced by
// SplitQuery. It handles the simple k=v&k2=v2 shape the control endpoints
// use; no percent-decoding (trace and span IDs are plain hex).
func QueryParam(query, key string) string {
	for query != "" {
		pair := query
		if i := strings.IndexByte(query, '&'); i >= 0 {
			pair, query = query[:i], query[i+1:]
		} else {
			query = ""
		}
		if k, v, ok := strings.Cut(pair, "="); ok && k == key {
			return v
		}
	}
	return ""
}

// Response is an HTTP response.
type Response struct {
	Status int // e.g. 200
	Proto  string
	Header Header
	Body   []byte

	// Hijack, when non-nil, transfers ownership of the connection to the
	// handler after this response is written — the upgrade path for
	// long-lived framed channels (a 101 handshake followed by WriteFrame/
	// ReadFrame traffic). The server stops serving HTTP on the connection,
	// does not return its buffered reader to the pool, and never closes
	// it; the hijacker is responsible for both from then on. The reader is
	// passed along because it may hold bytes read ahead of the request.
	Hijack func(conn net.Conn, br *bufio.Reader)
}

// NewResponse returns a response with the given status and an empty header
// map.
func NewResponse(status int) *Response {
	return &Response{Status: status, Proto: "HTTP/1.0", Header: make(Header)}
}

// StatusText returns the reason phrase for the status codes DCWS uses.
func StatusText(code int) string {
	switch code {
	case 101:
		return "Switching Protocols"
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status " + fmt.Sprint(code)
	}
}

// ContentTypeFor guesses a Content-Type from a path's extension, covering
// the file types in the paper's four data sets (HTML, GIF buttons, JPEG
// graphs and thumbnails, compressed AVHRR raster images).
func ContentTypeFor(path string) string {
	dot := strings.LastIndexByte(path, '.')
	if dot < 0 {
		return "application/octet-stream"
	}
	switch strings.ToLower(path[dot+1:]) {
	case "html", "htm":
		return "text/html"
	case "txt":
		return "text/plain"
	case "gif":
		return "image/gif"
	case "jpg", "jpeg":
		return "image/jpeg"
	case "png":
		return "image/png"
	case "z", "gz":
		return "application/x-compressed"
	default:
		return "application/octet-stream"
	}
}
