package httpx

import (
	"bufio"
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: the wire parsers never panic and never allocate unbounded
// memory on arbitrary byte soup — a web server's reader is fed by the
// network, the most hostile input source there is.
func TestReadRequestNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("ReadRequest panicked on %q: %v", data, r)
			}
		}()
		ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadResponseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("ReadResponse panicked on %q: %v", data, r)
			}
		}()
		ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: structured garbage — valid-looking prefixes with corrupted
// tails — is always rejected cleanly or parsed, never mangled.
func TestReadRequestStructuredGarbage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := "GET /doc.html HTTP/1.0\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello"
		mutated := []byte(base)
		for i := 0; i < 1+rng.Intn(4); i++ {
			mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
		}
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(mutated)))
		if err != nil {
			return true // rejection is fine
		}
		// Accepted requests must be internally consistent.
		return req.Method != "" && strings.HasPrefix(req.Path, "/")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// A body larger than the advertised Content-Length must not leak into the
// next message on a keep-alive connection.
func TestBodyBoundaryRespected(t *testing.T) {
	raw := "GET /a HTTP/1.0\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.0\r\n\r\n"
	br := bufio.NewReader(strings.NewReader(raw))
	first, err := ReadRequest(br)
	if err != nil {
		t.Fatal(err)
	}
	if string(first.Body) != "abc" {
		t.Fatalf("first body = %q", first.Body)
	}
	second, err := ReadRequest(br)
	if err != nil {
		t.Fatal(err)
	}
	if second.Path != "/b" {
		t.Fatalf("second path = %q", second.Path)
	}
}
