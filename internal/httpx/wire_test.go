package httpx

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalKey(t *testing.T) {
	cases := map[string]string{
		"content-type":    "Content-Type",
		"CONTENT-LENGTH":  "Content-Length",
		"x-dcws-load":     "X-Dcws-Load",
		"Host":            "Host",
		"a":               "A",
		"x--y":            "X--Y",
		"connection":      "Connection",
		"x-dcws-validate": "X-Dcws-Validate",
	}
	for in, want := range cases {
		if got := CanonicalKey(in); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeaderSetGetAddDel(t *testing.T) {
	h := make(Header)
	h.Set("x-test", "1")
	if h.Get("X-Test") != "1" {
		t.Fatal("case-insensitive Get failed")
	}
	h.Add("x-test", "2")
	if got := h.Values("X-TEST"); len(got) != 2 || got[1] != "2" {
		t.Fatalf("Values = %v", got)
	}
	h.Del("X-Test")
	if h.Get("x-test") != "" {
		t.Fatal("Del did not remove the field")
	}
	if h.Get("missing") != "" {
		t.Fatal("Get of missing key should be empty")
	}
}

func TestHeaderClone(t *testing.T) {
	h := make(Header)
	h.Set("a", "1")
	c := h.Clone()
	c.Set("a", "2")
	c.Add("b", "3")
	if h.Get("a") != "1" || h.Get("b") != "" {
		t.Fatal("Clone is not independent")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := NewRequest("GET", "/dir1/dir2/foo.html")
	req.Header.Set("Host", "home:80")
	req.Header.Set("X-DCWS-Load", "home:80=12.5@1000")
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Path != "/dir1/dir2/foo.html" || got.Proto != "HTTP/1.0" {
		t.Fatalf("parsed %+v", got)
	}
	if got.Header.Get("X-Dcws-Load") != "home:80=12.5@1000" {
		t.Fatalf("extension header lost: %v", got.Header)
	}
}

func TestRequestBodyRoundTrip(t *testing.T) {
	req := NewRequest("POST", "/submit")
	req.Body = []byte("hello body")
	var buf bytes.Buffer
	WriteRequest(&buf, req)
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "hello body" {
		t.Fatalf("body = %q", got.Body)
	}
	if got.Header.Get("Content-Length") != "10" {
		t.Fatalf("Content-Length = %q", got.Header.Get("Content-Length"))
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := NewResponse(301)
	resp.Header.Set("Location", "http://coop:81/~migrate/home/80/d.html")
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != 301 {
		t.Fatalf("status = %d", got.Status)
	}
	if got.Header.Get("Location") != "http://coop:81/~migrate/home/80/d.html" {
		t.Fatalf("Location = %q", got.Header.Get("Location"))
	}
}

func TestResponseBodyWithoutContentLengthReadsToEOF(t *testing.T) {
	raw := "HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n<html>old style</html>"
	got, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "<html>old style</html>" {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestReadRequestBareLF(t *testing.T) {
	raw := "GET /x HTTP/1.0\nHost: h\n\n"
	got, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != "/x" || got.Header.Get("Host") != "h" {
		t.Fatalf("parsed %+v", got)
	}
}

func TestReadRequestMalformed(t *testing.T) {
	bad := []string{
		"GET\r\n\r\n",
		"GET /x\r\n\r\n",
		"GET /x HTTP/2.0\r\n\r\n",
		"GET x HTTP/1.0\r\n\r\n",
		" /x HTTP/1.0\r\n\r\n",
		"GET /x HTTP/1.0\r\nBadHeaderNoColon\r\n\r\n",
		"GET /x HTTP/1.0\r\n: novalue\r\n\r\n",
		"GET /x HTTP/1.0\r\nContent-Length: -5\r\n\r\n",
		"GET /x HTTP/1.0\r\nContent-Length: abc\r\n\r\n",
	}
	for _, raw := range bad {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("ReadRequest(%q) succeeded, want error", raw)
		}
	}
}

func TestReadResponseMalformed(t *testing.T) {
	bad := []string{
		"HTTP/1.0\r\n\r\n",
		"SPDY/3 200 OK\r\n\r\n",
		"HTTP/1.0 abc OK\r\n\r\n",
		"HTTP/1.0 99 Low\r\n\r\n",
		"HTTP/1.0 600 High\r\n\r\n",
	}
	for _, raw := range bad {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("ReadResponse(%q) succeeded, want error", raw)
		}
	}
}

func TestReadRequestLineTooLong(t *testing.T) {
	raw := "GET /" + strings.Repeat("a", maxLineBytes) + " HTTP/1.0\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Fatal("oversized request line accepted")
	}
}

func TestReadHeaderTooManyFields(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET /x HTTP/1.0\r\n")
	for i := 0; i < maxHeaderCount+1; i++ {
		b.WriteString("X-Filler: v\r\n")
	}
	b.WriteString("\r\n")
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String()))); err == nil {
		t.Fatal("header bomb accepted")
	}
}

func TestShortBodyRejected(t *testing.T) {
	raw := "HTTP/1.0 200 OK\r\nContent-Length: 100\r\n\r\nonly a few bytes"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Fatal("short body accepted")
	}
}

func TestStatusText(t *testing.T) {
	for code, want := range map[int]string{
		200: "OK", 301: "Moved Permanently", 404: "Not Found",
		503: "Service Unavailable", 418: "Status 418",
	} {
		if got := StatusText(code); got != want {
			t.Errorf("StatusText(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestContentTypeFor(t *testing.T) {
	for path, want := range map[string]string{
		"/a/b.html":    "text/html",
		"/a/b.HTM":     "text/html",
		"/button.gif":  "image/gif",
		"/graph.jpg":   "image/jpeg",
		"/graph.jpeg":  "image/jpeg",
		"/raster.Z":    "application/x-compressed",
		"/noext":       "application/octet-stream",
		"/weird.xyz":   "application/octet-stream",
		"/notes.txt":   "text/plain",
		"/shiny.png":   "image/png",
		"/arch.tar.gz": "application/x-compressed",
	} {
		if got := ContentTypeFor(path); got != want {
			t.Errorf("ContentTypeFor(%q) = %q, want %q", path, got, want)
		}
	}
}

// Property: any request built from printable path segments and header pairs
// round-trips through Write+Read unchanged.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		req := NewRequest("GET", randomPath(rng))
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			req.Header.Set(randomToken(rng, "X-P"), randomToken(rng, "v"))
		}
		if rng.Intn(2) == 0 {
			req.Body = []byte(randomToken(rng, "body"))
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		got.Header.Del("Content-Length")
		if got.Method != req.Method || got.Path != req.Path {
			return false
		}
		if !bytes.Equal(got.Body, req.Body) && !(len(got.Body) == 0 && len(req.Body) == 0) {
			return false
		}
		want := req.Header.Clone()
		want.Del("Content-Length")
		return reflect.DeepEqual(mapOf(got.Header), mapOf(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mapOf(h Header) map[string][]string { return map[string][]string(h) }

func randomPath(rng *rand.Rand) string {
	depth := 1 + rng.Intn(4)
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteByte('/')
		b.WriteString(randomToken(rng, "seg"))
	}
	return b.String()
}

func randomToken(rng *rand.Rand, prefix string) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 1 + rng.Intn(8)
	var b strings.Builder
	b.WriteString(prefix)
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	return b.String()
}
