package httpx

import (
	"fmt"
	"net"
	"time"
)

// Dialer is the subset of memnet.Network a client needs.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(addr string) (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(addr string) (net.Conn, error) { return f(addr) }

// Client issues HTTP requests over a Dialer. Matching the HTTP/1.0 era the
// paper targets, the default is one connection per request; both ends still
// understand keep-alive if enabled server-side.
type Client struct {
	Dialer  Dialer
	Timeout time.Duration
}

// NewClient returns a client dialing through d with a 30-second default
// timeout.
func NewClient(d Dialer) *Client {
	return &Client{Dialer: d, Timeout: 30 * time.Second}
}

// Do sends req to addr and returns the parsed response, using the
// client's default timeout.
func (c *Client) Do(addr string, req *Request) (*Response, error) {
	return c.DoTimeout(addr, req, c.Timeout)
}

// DoTimeout sends req to addr with a per-request deadline overriding the
// client default — retrying callers use it to bound each attempt
// separately instead of sharing one long deadline across all attempts.
func (c *Client) DoTimeout(addr string, req *Request, timeout time.Duration) (*Response, error) {
	conn, err := c.Dialer.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("httpx: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if req.Header == nil {
		req.Header = make(Header)
	}
	if req.Header.Get("Host") == "" {
		req.Header.Set("Host", addr)
	}
	if err := WriteRequest(conn, req); err != nil {
		return nil, fmt.Errorf("httpx: write to %s: %w", addr, err)
	}
	br := getReader(conn)
	resp, err := ReadResponseFor(br, req.Method)
	putReader(br)
	if err != nil {
		return nil, fmt.Errorf("httpx: read from %s: %w", addr, err)
	}
	return resp, nil
}

// Get issues a GET for path at addr with the given extra headers (may be
// nil).
func (c *Client) Get(addr, path string, extra Header) (*Response, error) {
	return c.GetTimeout(addr, path, extra, c.Timeout)
}

// GetTimeout is Get with a per-request deadline.
func (c *Client) GetTimeout(addr, path string, extra Header, timeout time.Duration) (*Response, error) {
	req := NewRequest("GET", path)
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	return c.DoTimeout(addr, req, timeout)
}
