package httpx

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Dialer is the subset of memnet.Network a client needs.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(addr string) (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(addr string) (net.Conn, error) { return f(addr) }

// Client issues HTTP requests over a Dialer. Without a Pool it matches
// the HTTP/1.0 era the paper targets — one connection per request. With
// one, requests ask for keep-alive and completed connections are parked
// per address for reuse, cutting the dial/teardown cost off the
// inter-server RPC hot path.
type Client struct {
	Dialer  Dialer
	Timeout time.Duration
	// Pool, when non-nil, keeps completed connections alive for reuse.
	Pool *Pool
}

// NewClient returns a client dialing through d with a 30-second default
// timeout and no connection reuse.
func NewClient(d Dialer) *Client {
	return &Client{Dialer: d, Timeout: 30 * time.Second}
}

// NewPooledClient returns a client that reuses keep-alive connections
// through a pool bounded by cfg.
func NewPooledClient(d Dialer, cfg PoolConfig) *Client {
	return &Client{Dialer: d, Timeout: 30 * time.Second, Pool: NewPool(cfg)}
}

// Do sends req to addr and returns the parsed response, using the
// client's default timeout.
func (c *Client) Do(addr string, req *Request) (*Response, error) {
	return c.DoTimeout(addr, req, c.Timeout)
}

// DoTimeout sends req to addr with a per-request deadline overriding the
// client default — retrying callers use it to bound each attempt
// separately instead of sharing one long deadline across all attempts.
func (c *Client) DoTimeout(addr string, req *Request, timeout time.Duration) (*Response, error) {
	return c.DoCancel(addr, req, timeout, nil)
}

// DoCancel is DoTimeout with an optional cancel token: Cancel from
// another goroutine closes the connection under the exchange, failing it
// promptly with ErrCanceled — how a hedged fetch reels in its loser.
func (c *Client) DoCancel(addr string, req *Request, timeout time.Duration, tok *CancelToken) (*Response, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if req.Header == nil {
		req.Header = make(Header)
	}
	if req.Header.Get("Host") == "" {
		req.Header.Set("Host", addr)
	}
	if c.Pool == nil {
		return c.doSingle(addr, req, timeout, tok)
	}
	// HTTP/1.0 defaults to close; reuse needs the explicit opt-in. All
	// attempts share one deadline, so a stale pooled connection cannot
	// stretch the caller's budget — the resilience layer sizes timeouts
	// per attempt and relies on DoCancel honoring them.
	req.Header.Set("Connection", "keep-alive")
	deadline := time.Now().Add(timeout)
	retried := false
	for {
		var pc *persistConn
		if !retried {
			pc = c.Pool.get(addr)
		}
		reused := pc != nil
		if pc == nil {
			var err error
			pc, err = c.Pool.dial(c.Dialer, addr)
			if err != nil {
				return nil, fmt.Errorf("httpx: dial %s: %w", addr, err)
			}
		}
		if tok != nil && !tok.bind(pc) {
			c.Pool.put(pc)
			return nil, ErrCanceled
		}
		resp, reusable, wrote, err := roundTrip(pc.conn, req, deadline)
		if tok != nil {
			tok.unbind()
		}
		if err != nil {
			pc.close(RetireError)
			if tok != nil && tok.Canceled() {
				return nil, fmt.Errorf("%w (%s %s: %v)", ErrCanceled, req.Method, addr, err)
			}
			// A pooled connection can go stale between requests (the peer
			// closed or reset it while parked), which surfaces as a write
			// failure. Retry exactly once, on a fresh dial, within the
			// same deadline. A failure after the request was fully written
			// is never replayed here: the peer may already be executing
			// it, and replaying belongs to the resilience layer, which
			// knows which RPCs tolerate it.
			if reused && !wrote && !retried && time.Now().Before(deadline) {
				retried = true
				continue
			}
			return nil, fmt.Errorf("httpx: %s %s: %w", req.Method, addr, err)
		}
		if reusable {
			c.Pool.put(pc)
		} else {
			pc.close(RetireServerClose)
		}
		return resp, nil
	}
}

// doSingle is the unpooled one-connection-per-request path.
func (c *Client) doSingle(addr string, req *Request, timeout time.Duration, tok *CancelToken) (*Response, error) {
	conn, err := c.Dialer.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("httpx: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if tok != nil {
		if !tok.bind(&persistConn{addr: addr, conn: conn}) {
			return nil, ErrCanceled
		}
		defer tok.unbind()
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteRequest(conn, req); err != nil {
		if tok != nil && tok.Canceled() {
			return nil, fmt.Errorf("%w (%s %s: %v)", ErrCanceled, req.Method, addr, err)
		}
		return nil, fmt.Errorf("httpx: write to %s: %w", addr, err)
	}
	br := getReader(conn)
	resp, err := ReadResponseFor(br, req.Method)
	putReader(br)
	if err != nil {
		if tok != nil && tok.Canceled() {
			return nil, fmt.Errorf("%w (%s %s: %v)", ErrCanceled, req.Method, addr, err)
		}
		return nil, fmt.Errorf("httpx: read from %s: %w", addr, err)
	}
	return resp, nil
}

// roundTrip writes req and reads its response over an established
// connection, bounded by the caller's deadline. It reports two facts the
// caller's retry decision hangs on: whether the connection can carry
// another request afterwards (the response must opt into keep-alive, be
// framed by Content-Length or be bodyless since a read-to-EOF body
// consumes the connection, and leave no unread bytes buffered), and
// whether the request was fully written before the error — a request
// that never completely reached the wire cannot have executed, so only
// those exchanges are safe to replay on another connection.
func roundTrip(conn net.Conn, req *Request, deadline time.Time) (resp *Response, reusable, wrote bool, err error) {
	conn.SetDeadline(deadline)
	if err := WriteRequest(conn, req); err != nil {
		return nil, false, false, err
	}
	br := getReader(conn)
	defer putReader(br)
	resp, err = ReadResponseFor(br, req.Method)
	if err != nil {
		return nil, false, true, err
	}
	reusable = br.Buffered() == 0 && respKeepsAlive(req.Method, resp)
	if reusable {
		// Drop the per-request deadline so it cannot fire while parked.
		conn.SetDeadline(time.Time{})
	}
	return resp, reusable, true, nil
}

// respKeepsAlive reports whether a response leaves its connection
// reusable for a follow-up request.
func respKeepsAlive(method string, resp *Response) bool {
	if !hasConnToken(resp.Header.Get("Connection"), "keep-alive") {
		return false
	}
	if method == "HEAD" || resp.Status == 204 || resp.Status == 304 {
		return true
	}
	return resp.Header.Get("Content-Length") != ""
}

// Get issues a GET for path at addr with the given extra headers (may be
// nil).
func (c *Client) Get(addr, path string, extra Header) (*Response, error) {
	return c.GetTimeout(addr, path, extra, c.Timeout)
}

// GetTimeout is Get with a per-request deadline.
func (c *Client) GetTimeout(addr, path string, extra Header, timeout time.Duration) (*Response, error) {
	req := NewRequest("GET", path)
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	return c.DoTimeout(addr, req, timeout)
}

// PostTimeout issues a POST for path at addr carrying body and the given
// extra headers (may be nil), with a per-request deadline. The body rides
// the request Content-Length framing, so relays (chain dissemination) can
// forward it byte-for-byte.
func (c *Client) PostTimeout(addr, path string, extra Header, body []byte, timeout time.Duration) (*Response, error) {
	req := NewRequest("POST", path)
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Body = body
	return c.DoTimeout(addr, req, timeout)
}

// Subscribe dials addr, sends req, and expects a 101 Switching Protocols
// answer, after which the connection carries WriteFrame/ReadFrame traffic
// instead of HTTP. The connection is dialed fresh — never drawn from or
// returned to the pool, since it is long-lived by design — and ownership
// passes to the caller along with a buffered reader positioned just past
// the handshake response. The handshake itself is bounded by timeout; the
// deadline is cleared before returning, so frame reads block indefinitely
// (callers run their own heartbeat liveness).
func (c *Client) Subscribe(addr string, req *Request, timeout time.Duration) (net.Conn, *bufio.Reader, error) {
	if timeout <= 0 {
		timeout = c.Timeout
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if req.Header == nil {
		req.Header = make(Header)
	}
	if req.Header.Get("Host") == "" {
		req.Header.Set("Host", addr)
	}
	req.Header.Set("Connection", "keep-alive")
	conn, err := c.Dialer.Dial(addr)
	if err != nil {
		return nil, nil, fmt.Errorf("httpx: dial %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteRequest(conn, req); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("httpx: subscribe write to %s: %w", addr, err)
	}
	// A dedicated (unpooled) reader: this connection lives for the life of
	// the subscription, so cycling a pooled reader through it would just
	// pin the pool entry.
	br := bufio.NewReader(conn)
	resp, err := ReadResponseFor(br, req.Method)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("httpx: subscribe read from %s: %w", addr, err)
	}
	if resp.Status != 101 {
		conn.Close()
		return nil, nil, fmt.Errorf("httpx: subscribe to %s: status %d", addr, resp.Status)
	}
	conn.SetDeadline(time.Time{})
	return conn, br, nil
}

// CloseIdle retires the client's idle pooled connections, if pooling is
// enabled. Safe to call multiple times.
func (c *Client) CloseIdle() {
	if c.Pool != nil {
		c.Pool.CloseIdle()
	}
}
