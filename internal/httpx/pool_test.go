package httpx

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dcws/internal/memnet"
)

// startKeepAliveServer boots a keep-alive server on a fresh fabric and
// returns a pooled client dialing as "cli" (so link faults between "cli"
// and srvAddr apply to its connections).
func startKeepAliveServer(t *testing.T, cfg ServerConfig, pcfg PoolConfig, h Handler) (*memnet.Fabric, *Client, *Server) {
	t.Helper()
	cfg.KeepAlive = true
	fabric := memnet.NewFabric()
	l, err := fabric.Listen(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg, h)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	client := NewPooledClient(DialerFunc(fabric.Named("cli").Dial), pcfg)
	t.Cleanup(client.CloseIdle)
	return fabric, client, srv
}

const srvAddr = "srv:80"

func TestWantsKeepAliveTokens(t *testing.T) {
	cases := []struct {
		proto, conn string
		want        bool
	}{
		{"HTTP/1.0", "keep-alive", true},
		{"HTTP/1.0", "Keep-Alive", true},        // ASCII-case-insensitive
		{"HTTP/1.0", "KEEP-ALIVE", true},        // ASCII-case-insensitive
		{"HTTP/1.0", "TE, Keep-Alive", true},    // comma-separated list
		{"HTTP/1.0", "te ,  keep-alive ", true}, // whitespace around tokens
		{"HTTP/1.0", "", false},                 // 1.0 defaults to close
		{"HTTP/1.0", "close", false},
		{"HTTP/1.0", "keepalive", false},            // no partial-token match
		{"HTTP/1.0", "keep-alive-extension", false}, // no prefix match
		{"HTTP/1.1", "", true},                      // 1.1 defaults to keep-alive
		{"HTTP/1.1", "Close", false},                // ASCII-case-insensitive
		{"HTTP/1.1", "keep-alive, Close", false},    // close anywhere in list wins
		{"HTTP/1.1", "closed", true},                // not the close token
	}
	for _, tc := range cases {
		req := NewRequest("GET", "/x")
		req.Proto = tc.proto
		if tc.conn != "" {
			req.Header.Set("Connection", tc.conn)
		}
		if got := wantsKeepAlive(req); got != tc.want {
			t.Errorf("wantsKeepAlive(%s, Connection=%q) = %v, want %v", tc.proto, tc.conn, got, tc.want)
		}
	}
}

func TestClientPoolReusesConnection(t *testing.T) {
	_, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{}, okHandler("pooled"))
	for i := 0; i < 3; i++ {
		resp, err := client.Get(srvAddr, "/x", nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != 200 || string(resp.Body) != "pooled" {
			t.Fatalf("request %d: got %d %q", i, resp.Status, resp.Body)
		}
	}
	if d, r := client.Pool.Dials(), client.Pool.Reuses(); d != 1 || r != 2 {
		t.Fatalf("dials=%d reuses=%d, want 1 and 2", d, r)
	}
	st := client.Pool.Stats()
	if pp := st.Peers[srvAddr]; pp.Open != 1 || pp.Idle != 1 {
		t.Fatalf("peer stats = %+v, want open=1 idle=1", pp)
	}
}

func TestClientPoolServerCloseRetires(t *testing.T) {
	// KeepAlive off: every response says Connection: close, so nothing can
	// be pooled and every request must dial fresh.
	fabric := memnet.NewFabric()
	l, err := fabric.Listen(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{}, okHandler("once"))
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	client := NewPooledClient(DialerFunc(fabric.Dial), PoolConfig{})
	for i := 0; i < 2; i++ {
		if _, err := client.Get(srvAddr, "/x", nil); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := client.Pool.Stats()
	if st.Dials != 2 || st.Reuses != 0 {
		t.Fatalf("dials=%d reuses=%d, want 2 and 0", st.Dials, st.Reuses)
	}
	if st.Retires[RetireServerClose] != 2 {
		t.Fatalf("server-close retires = %d, want 2", st.Retires[RetireServerClose])
	}
}

// TestClientPoolFabricResetRetries arms a mid-stream reset budget sized so
// the first exchange fits but the second — over the now-pooled connection —
// trips the reset. The client must retire the broken pooled connection and
// transparently retry on a fresh dial, which carries a fresh budget.
func TestClientPoolFabricResetRetries(t *testing.T) {
	const body = "reset-me"
	fabric, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{}, okHandler(body))

	// Compute the exact wire size of one exchange by serializing the same
	// messages the client and server will: header order is deterministic.
	req := NewRequest("GET", "/x")
	req.Header.Set("Host", srvAddr)
	req.Header.Set("Connection", "keep-alive")
	var wire bytes.Buffer
	if err := WriteRequest(&wire, req); err != nil {
		t.Fatal(err)
	}
	resp := NewResponse(200)
	resp.Header.Set("Content-Type", "text/plain")
	resp.Header.Set("Connection", "keep-alive")
	resp.Body = []byte(body)
	if err := WriteResponse(&wire, resp); err != nil {
		t.Fatal(err)
	}
	rt := wire.Len()
	// One full exchange plus a partial second: the reset fires mid-way
	// through the second request or its response.
	fabric.SetResetAfterBytes("cli", srvAddr, int64(rt+rt/3))

	for i := 0; i < 2; i++ {
		got, err := client.Get(srvAddr, "/x", nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got.Status != 200 || string(got.Body) != body {
			t.Fatalf("request %d: %d %q", i, got.Status, got.Body)
		}
	}
	st := client.Pool.Stats()
	if st.Dials != 2 {
		t.Fatalf("dials = %d, want 2 (fresh dial after the reset)", st.Dials)
	}
	if st.Reuses != 1 {
		t.Fatalf("reuses = %d, want 1 (the doomed pooled attempt)", st.Reuses)
	}
	if st.Retires[RetireError] == 0 {
		t.Fatalf("no error retire recorded: %v", st.Retires)
	}
}

// TestClientPoolStalledConnDeadline parks a connection through a stalled
// link: the pooled request must fail by its own per-request deadline, not
// hang on the stall, and the connection must not return to the pool.
func TestClientPoolStalledConnDeadline(t *testing.T) {
	fabric, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{}, okHandler("slow"))
	fabric.SetStall("cli", srvAddr, 150*time.Millisecond)

	// First request: generous deadline rides out the stall and pools the
	// connection.
	if _, err := client.GetTimeout(srvAddr, "/x", nil, time.Second); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if client.Pool.Stats().Peers[srvAddr].Idle != 1 {
		t.Fatal("first connection was not pooled")
	}

	// Second request: 20ms deadline cannot survive a 150ms stall — on the
	// pooled connection or on the fresh-dial retry.
	start := time.Now()
	_, err := client.GetTimeout(srvAddr, "/x", nil, 20*time.Millisecond)
	if err == nil {
		t.Fatal("expected deadline error through the stalled link")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v, request hung on the stall", elapsed)
	}
	if idle := client.Pool.Stats().Peers[srvAddr].Idle; idle != 0 {
		t.Fatalf("%d stalled connections back in the pool, want 0", idle)
	}
}

// TestClientPoolNoResponseCrossing drives many distinct requests through
// pooled connections, sequentially and concurrently, asserting every
// response belongs to its own request.
func TestClientPoolNoResponseCrossing(t *testing.T) {
	echo := HandlerFunc(func(req *Request) *Response {
		resp := NewResponse(200)
		resp.Header.Set("Content-Type", "text/plain")
		resp.Body = []byte("echo:" + req.Path)
		return resp
	})
	_, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{MaxIdlePerHost: 2}, echo)

	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/seq/%d", i)
		resp, err := client.Get(srvAddr, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != "echo:"+path {
			t.Fatalf("sequential response crossed: sent %s, got %q", path, resp.Body)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				path := fmt.Sprintf("/g%d/%d", g, i)
				resp, err := client.Get(srvAddr, path, nil)
				if err != nil {
					errs <- err
					return
				}
				if string(resp.Body) != "echo:"+path {
					errs <- fmt.Errorf("concurrent response crossed: sent %s, got %q", path, resp.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPoolIdleTimeoutRetires(t *testing.T) {
	_, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{IdleTimeout: 10 * time.Millisecond}, okHandler("x"))
	if _, err := client.Get(srvAddr, "/x", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if _, err := client.Get(srvAddr, "/x", nil); err != nil {
		t.Fatal(err)
	}
	st := client.Pool.Stats()
	if st.Dials != 2 || st.Reuses != 0 {
		t.Fatalf("dials=%d reuses=%d, want 2 and 0 (idle conn expired)", st.Dials, st.Reuses)
	}
	if st.Retires[RetireIdleTimeout] != 1 {
		t.Fatalf("idle-timeout retires = %d, want 1: %v", st.Retires[RetireIdleTimeout], st.Retires)
	}
}

func TestPoolMaxLifetimeRetires(t *testing.T) {
	_, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{MaxLifetime: 5 * time.Millisecond}, okHandler("x"))
	if _, err := client.Get(srvAddr, "/x", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := client.Get(srvAddr, "/x", nil); err != nil {
		t.Fatal(err)
	}
	st := client.Pool.Stats()
	if st.Dials != 2 {
		t.Fatalf("dials = %d, want 2 (lifetime-expired conn replaced)", st.Dials)
	}
	if st.Retires[RetireLifetime] != 1 {
		t.Fatalf("lifetime retires = %d, want 1: %v", st.Retires[RetireLifetime], st.Retires)
	}
}

func TestPoolCapacityRetires(t *testing.T) {
	// Block two requests in-flight simultaneously so the client must open
	// two connections; with MaxIdlePerHost 1 only one may return to the
	// pool, the other retires for capacity.
	var arrived sync.WaitGroup
	arrived.Add(2)
	release := make(chan struct{})
	h := HandlerFunc(func(req *Request) *Response {
		arrived.Done()
		<-release
		resp := NewResponse(200)
		resp.Body = []byte("ok")
		return resp
	})
	_, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{MaxIdlePerHost: 1}, h)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Get(srvAddr, "/x", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	arrived.Wait()
	close(release)
	wg.Wait()
	st := client.Pool.Stats()
	if st.Retires[RetireCapacity] != 1 {
		t.Fatalf("capacity retires = %d, want 1: %v", st.Retires[RetireCapacity], st.Retires)
	}
	if pp := st.Peers[srvAddr]; pp.Idle != 1 {
		t.Fatalf("idle = %d, want 1", pp.Idle)
	}
}

func TestPoolFlushAddr(t *testing.T) {
	_, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{}, okHandler("x"))
	if _, err := client.Get(srvAddr, "/x", nil); err != nil {
		t.Fatal(err)
	}
	if n := client.Pool.FlushAddr(srvAddr); n != 1 {
		t.Fatalf("flushed %d, want 1", n)
	}
	st := client.Pool.Stats()
	if st.Retires[RetireFlush] != 1 {
		t.Fatalf("flush retires = %d, want 1", st.Retires[RetireFlush])
	}
	// The next request dials fresh and succeeds.
	if _, err := client.Get(srvAddr, "/x", nil); err != nil {
		t.Fatal(err)
	}
	if st := client.Pool.Stats(); st.Dials != 2 {
		t.Fatalf("dials = %d, want 2", st.Dials)
	}
}

func TestCancelTokenAbortsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	h := HandlerFunc(func(req *Request) *Response {
		started <- struct{}{}
		<-release
		return NewResponse(200)
	})
	_, client, _ := startKeepAliveServer(t, ServerConfig{}, PoolConfig{}, h)
	defer close(release)

	tok := &CancelToken{}
	done := make(chan error, 1)
	go func() {
		_, err := client.DoCancel(srvAddr, NewRequest("GET", "/x"), 5*time.Second, tok)
		done <- err
	}()
	<-started
	tok.Cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not abort the in-flight request")
	}
	st := client.Pool.Stats()
	if st.Retires[RetireCanceled] != 1 {
		t.Fatalf("canceled retires = %d, want 1: %v", st.Retires[RetireCanceled], st.Retires)
	}
	// A canceled token refuses later binds.
	if _, err := client.DoCancel(srvAddr, NewRequest("GET", "/x"), time.Second, tok); !errors.Is(err, ErrCanceled) {
		t.Fatalf("post-cancel bind err = %v, want ErrCanceled", err)
	}
}

// TestServerParkResume exercises the off-worker idle parking: a kept-alive
// connection outlives the on-worker hold, parks, and is resumed by a later
// request on the same pooled connection.
func TestServerParkResume(t *testing.T) {
	_, client, _ := startKeepAliveServer(t, ServerConfig{KeepAliveHold: time.Millisecond}, PoolConfig{}, okHandler("again"))
	if _, err := client.Get(srvAddr, "/x", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the hold expire and the conn park
	resp, err := client.Get(srvAddr, "/x", nil)
	if err != nil {
		t.Fatalf("request over parked connection: %v", err)
	}
	if resp.Status != 200 || string(resp.Body) != "again" {
		t.Fatalf("got %d %q", resp.Status, resp.Body)
	}
	if r := client.Pool.Reuses(); r != 1 {
		t.Fatalf("reuses = %d, want 1", r)
	}
}

// TestServerCloseSweepsParkedConns: closing a server with a connection
// parked on a long idle timeout must return promptly. The shutdown sweep
// expires every parked deadline, and the watcher goroutine must not
// re-arm a future deadline over the sweep and sit out the idle timeout.
func TestServerCloseSweepsParkedConns(t *testing.T) {
	fabric := memnet.NewFabric()
	l, err := fabric.Listen(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{
		KeepAlive:     true,
		KeepAliveHold: time.Millisecond,
		IdleTimeout:   time.Minute,
	}, okHandler("park"))
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	client := NewPooledClient(DialerFunc(fabric.Named("cli").Dial), PoolConfig{})
	t.Cleanup(client.CloseIdle)
	if _, err := client.Get(srvAddr, "/x", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the hold expire and the conn park
	srv.Close()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return; a parked connection held shutdown hostage")
	}
}

// TestPoolSoak hammers a keep-alive server with a small pool from many
// goroutines — run under -race in CI to shake out pool lifecycle races.
func TestPoolSoak(t *testing.T) {
	echo := HandlerFunc(func(req *Request) *Response {
		resp := NewResponse(200)
		resp.Body = []byte(req.Path)
		return resp
	})
	_, client, _ := startKeepAliveServer(t,
		ServerConfig{Workers: 8, KeepAliveHold: time.Millisecond},
		PoolConfig{MaxIdlePerHost: 2, IdleTimeout: 20 * time.Millisecond, MaxLifetime: 200 * time.Millisecond},
		echo)
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				path := fmt.Sprintf("/soak/%d/%d", g, i)
				resp, err := client.Get(srvAddr, path, nil)
				if err != nil {
					errs <- fmt.Errorf("g%d req %d: %w", g, i, err)
					return
				}
				if string(resp.Body) != path {
					errs <- fmt.Errorf("g%d req %d: response crossed, got %q", g, i, resp.Body)
					return
				}
				if i%25 == 24 {
					time.Sleep(25 * time.Millisecond) // let idle expiry churn the pool
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if client.Pool.Reuses() == 0 {
		t.Fatal("soak never reused a connection")
	}
}
