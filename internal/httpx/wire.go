package httpx

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// wireBufPool recycles the scratch buffers messages are serialized into;
// every request and response on every connection goes through one.
var wireBufPool = sync.Pool{New: func() any { return new([]byte) }}

// readerPool recycles the bufio.Readers that parse inbound messages
// (server connections and client responses).
var readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 4096) }}

// getReader leases a pooled reader bound to r.
func getReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// putReader returns a leased reader to the pool, detaching its source so
// the pool does not pin connections.
func putReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}

// inlineBodyLimit is the largest body folded into the header buffer so the
// whole message goes out in a single Write. Larger bodies are written
// separately — two writes, but zero copying of the (potentially cached and
// shared) document bytes.
const inlineBodyLimit = 32 << 10

// Wire-format limits. Oversized messages are rejected rather than buffered
// without bound.
const (
	maxLineBytes   = 16 * 1024
	maxHeaderCount = 256
	// MaxBodyBytes bounds request/response bodies. The largest object in
	// the paper's data sets is a 2.8 MB Sequoia raster image; 64 MB leaves
	// ample headroom.
	MaxBodyBytes = 64 << 20
)

// ErrLineTooLong is returned when a start line or header line exceeds the
// wire limit.
var ErrLineTooLong = errors.New("httpx: header line too long")

// ErrMalformed is returned for requests or responses that do not parse.
var ErrMalformed = errors.New("httpx: malformed message")

// readLine reads a CRLF- (or bare-LF-) terminated line without the ending.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && line != "" {
			return "", fmt.Errorf("%w: truncated line", ErrMalformed)
		}
		return "", err
	}
	if len(line) > maxLineBytes {
		return "", ErrLineTooLong
	}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}

// addField parses one "Key: value" header line into h. The value slices
// of single-value fields — the overwhelming majority — are carved out of
// one shared backing array instead of allocated one by one; full-capacity
// slicing makes a later Add on such a field copy rather than clobber a
// neighbor.
func addField(h Header, backing *[]string, line string) error {
	colon := strings.IndexByte(line, ':')
	if colon <= 0 {
		return fmt.Errorf("%w: header line %q", ErrMalformed, line)
	}
	key := CanonicalKey(strings.TrimSpace(line[:colon]))
	val := strings.TrimSpace(line[colon+1:])
	if key == "" {
		return fmt.Errorf("%w: empty header name", ErrMalformed)
	}
	if len(h[key]) == 0 {
		b := *backing
		if b == nil {
			b = make([]string, 0, 8)
		}
		if len(b) < cap(b) {
			b = append(b, val)
			h[key] = b[len(b)-1 : len(b) : len(b)]
			*backing = b
			return nil
		}
	}
	h[key] = append(h[key], val)
	return nil
}

// readHeader reads header lines up to the blank separator line, one line at
// a time. This is the streaming fallback for heads that overflow the peek
// window; typical messages go through peekHead instead.
func readHeader(r *bufio.Reader) (Header, error) {
	h := make(Header, 8)
	var backing []string
	fields := 0
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		fields++
		if fields > maxHeaderCount {
			return nil, fmt.Errorf("%w: too many header fields", ErrMalformed)
		}
		if err := addField(h, &backing, line); err != nil {
			return nil, err
		}
	}
}

// findHeadEnd locates the blank line terminating a message head in buf.
// It returns the length of the head content (start line + header lines,
// including the newline ending the last one) and the total length through
// the terminator, or (-1, 0) if no terminator is present yet.
func findHeadEnd(buf []byte) (content, total int) {
	if len(buf) > 0 && buf[0] == '\n' {
		return 0, 1
	}
	if len(buf) > 1 && buf[0] == '\r' && buf[1] == '\n' {
		return 0, 2
	}
	for i := 0; ; {
		j := bytes.IndexByte(buf[i:], '\n')
		if j < 0 {
			return -1, 0
		}
		i += j + 1
		if i < len(buf) && buf[i] == '\n' {
			return i, i + 1
		}
		if i+1 < len(buf) && buf[i] == '\r' && buf[i+1] == '\n' {
			return i, i + 2
		}
	}
}

// peekHead tries to slurp an entire message head — start line, header
// lines, blank terminator — out of the reader in one step, so the whole
// head costs a single string allocation and every header value is a
// substring of it. It blocks only for bytes a complete head must still
// contain: one byte at a time past what is buffered, exactly as a
// line-by-line reader would. Heads that overflow the 4 KB read buffer
// report !ok with nothing consumed and fall back to streaming readLine /
// readHeader, which enforce the larger wire limits.
func peekHead(r *bufio.Reader) (head string, ok bool) {
	want := 1
	for {
		buf, err := r.Peek(want)
		if avail := r.Buffered(); avail > len(buf) {
			buf, _ = r.Peek(avail)
		}
		if content, total := findHeadEnd(buf); content >= 0 {
			head = string(buf[:content])
			r.Discard(total)
			return head, true
		}
		if err != nil || len(buf) >= r.Size() {
			return "", false
		}
		want = len(buf) + 1
	}
}

// cutLine splits off the first line of a head string, trimming the line
// ending. Both halves are substrings — no allocation.
func cutLine(s string) (line, rest string) {
	i := strings.IndexByte(s, '\n')
	if i < 0 {
		return strings.TrimSuffix(s, "\r"), ""
	}
	line = s[:i]
	if strings.HasSuffix(line, "\r") {
		line = line[:len(line)-1]
	}
	return line, s[i+1:]
}

// parseHeaderBlock parses the header lines of a peeked head string.
func parseHeaderBlock(s string) (Header, error) {
	h := make(Header, 8)
	var backing []string
	fields := 0
	for len(s) > 0 {
		var line string
		line, s = cutLine(s)
		if line == "" {
			continue
		}
		fields++
		if fields > maxHeaderCount {
			return nil, fmt.Errorf("%w: too many header fields", ErrMalformed)
		}
		if err := addField(h, &backing, line); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// readMessageHead reads one message head and returns its start line and
// parsed header map, preferring the single-allocation peek path.
func readMessageHead(r *bufio.Reader) (string, Header, error) {
	if head, ok := peekHead(r); ok {
		line, rest := cutLine(head)
		h, err := parseHeaderBlock(rest)
		return line, h, err
	}
	line, err := readLine(r)
	if err != nil {
		return "", nil, err
	}
	h, err := readHeader(r)
	if err != nil {
		return "", nil, err
	}
	return line, h, nil
}

// readBody reads a message body delimited by Content-Length, or (for
// responses with no length, HTTP/1.0 style) until EOF.
func readBody(r *bufio.Reader, h Header, toEOF bool) ([]byte, error) {
	if cl := h.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
		}
		if n > MaxBodyBytes {
			return nil, fmt.Errorf("%w: body of %d bytes exceeds limit", ErrMalformed, n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("%w: short body: %v", ErrMalformed, err)
		}
		return body, nil
	}
	if !toEOF {
		return nil, nil
	}
	body, err := io.ReadAll(io.LimitReader(r, MaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > MaxBodyBytes {
		return nil, fmt.Errorf("%w: body exceeds limit", ErrMalformed)
	}
	return body, nil
}

// ReadRequest parses one request from r.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	line, h, err := readMessageHead(r)
	if err != nil {
		return nil, err
	}
	sp1 := strings.IndexByte(line, ' ')
	sp2 := -1
	if sp1 >= 0 {
		sp2 = strings.IndexByte(line[sp1+1:], ' ')
	}
	if sp1 < 0 || sp2 < 0 {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	sp2 += sp1 + 1
	method, path, proto := line[:sp1], line[sp1+1:sp2], line[sp2+1:]
	if method == "" || path == "" || path[0] != '/' || strings.IndexByte(proto, ' ') >= 0 {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	if proto != "HTTP/1.0" && proto != "HTTP/1.1" {
		return nil, fmt.Errorf("%w: unsupported protocol %q", ErrMalformed, proto)
	}
	body, err := readBody(r, h, false)
	if err != nil {
		return nil, err
	}
	return &Request{Method: method, Path: path, Proto: proto, Header: h, Body: body}, nil
}

// WriteRequest serializes req to w. A Content-Length header is emitted
// whenever a body is present.
func WriteRequest(w io.Writer, req *Request) error {
	proto := req.Proto
	if proto == "" {
		proto = "HTTP/1.0"
	}
	bp := wireBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, req.Method...)
	buf = append(buf, ' ')
	buf = append(buf, req.Path...)
	buf = append(buf, ' ')
	buf = append(buf, proto...)
	buf = append(buf, '\r', '\n')
	buf = appendHeader(buf, req.Header, len(req.Body))
	err := writeMessage(w, buf, req.Body)
	*bp = buf[:0]
	wireBufPool.Put(bp)
	return err
}

// ReadResponse parses one response from r, assuming it answers a GET.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	return ReadResponseFor(r, "GET")
}

// ReadResponseFor parses one response from r for a request of the given
// method. Responses to HEAD carry headers (including Content-Length) but no
// body.
func ReadResponseFor(r *bufio.Reader, method string) (*Response, error) {
	line, h, err := readMessageHead(r)
	if err != nil {
		return nil, err
	}
	sp1 := strings.IndexByte(line, ' ')
	if sp1 < 0 || !strings.HasPrefix(line[:sp1], "HTTP/1.") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	proto, rest := line[:sp1], line[sp1+1:]
	codeStr := rest
	if sp2 := strings.IndexByte(rest, ' '); sp2 >= 0 {
		codeStr = rest[:sp2]
	}
	status, aerr := strconv.Atoi(codeStr)
	if aerr != nil || status < 100 || status > 599 {
		return nil, fmt.Errorf("%w: status %q", ErrMalformed, codeStr)
	}
	if method == "HEAD" || status == 304 || status == 204 {
		return &Response{Status: status, Proto: proto, Header: h}, nil
	}
	toEOF := h.Get("Content-Length") == ""
	body, err := readBody(r, h, toEOF)
	if err != nil {
		return nil, err
	}
	return &Response{Status: status, Proto: proto, Header: h, Body: body}, nil
}

// WriteResponse serializes resp to w, always emitting Content-Length so
// connections can be kept alive.
func WriteResponse(w io.Writer, resp *Response) error {
	proto := resp.Proto
	if proto == "" {
		proto = "HTTP/1.0"
	}
	bp := wireBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, proto...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(resp.Status), 10)
	buf = append(buf, ' ')
	buf = append(buf, StatusText(resp.Status)...)
	buf = append(buf, '\r', '\n')
	buf = appendHeader(buf, resp.Header, len(resp.Body))
	err := writeMessage(w, buf, resp.Body)
	*bp = buf[:0]
	wireBufPool.Put(bp)
	return err
}

// appendHeader serializes the header fields plus a synthesized
// Content-Length (when absent) and the blank separator line. Keys are
// ordered deterministically; typical header maps fit the stack-resident
// key array, so serialization allocates nothing beyond the message buffer.
func appendHeader(buf []byte, h Header, bodyLen int) []byte {
	var arr [16]string
	var keys []string
	if len(h) <= len(arr) {
		keys = arr[:0]
	} else {
		keys = make([]string, 0, len(h))
	}
	for k := range h {
		keys = append(keys, k)
	}
	// Insertion sort: header maps are tiny and sort.Strings would force
	// the key array to escape to the heap.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	wroteCL := false
	for _, k := range keys {
		if k == "Content-Length" {
			wroteCL = true
		}
		for _, v := range h[k] {
			buf = append(buf, k...)
			buf = append(buf, ':', ' ')
			buf = append(buf, v...)
			buf = append(buf, '\r', '\n')
		}
	}
	if !wroteCL {
		buf = append(buf, "Content-Length: "...)
		buf = strconv.AppendInt(buf, int64(bodyLen), 10)
		buf = append(buf, '\r', '\n')
	}
	return append(buf, '\r', '\n')
}

// writeMessage sends the serialized head and the body. Small bodies are
// folded into the head buffer for a single syscall; large ones go out in a
// second write directly from the caller's (possibly shared) slice.
func writeMessage(w io.Writer, head, body []byte) error {
	if n := len(body); n > 0 && n <= inlineBodyLimit {
		head = append(head, body...)
		body = nil
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}
