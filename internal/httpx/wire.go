package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// wireBufPool recycles the scratch buffers messages are serialized into;
// every request and response on every connection goes through one.
var wireBufPool = sync.Pool{New: func() any { return new([]byte) }}

// readerPool recycles the bufio.Readers that parse inbound messages
// (server connections and client responses).
var readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 4096) }}

// getReader leases a pooled reader bound to r.
func getReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// putReader returns a leased reader to the pool, detaching its source so
// the pool does not pin connections.
func putReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}

// inlineBodyLimit is the largest body folded into the header buffer so the
// whole message goes out in a single Write. Larger bodies are written
// separately — two writes, but zero copying of the (potentially cached and
// shared) document bytes.
const inlineBodyLimit = 32 << 10

// Wire-format limits. Oversized messages are rejected rather than buffered
// without bound.
const (
	maxLineBytes   = 16 * 1024
	maxHeaderCount = 256
	// MaxBodyBytes bounds request/response bodies. The largest object in
	// the paper's data sets is a 2.8 MB Sequoia raster image; 64 MB leaves
	// ample headroom.
	MaxBodyBytes = 64 << 20
)

// ErrLineTooLong is returned when a start line or header line exceeds the
// wire limit.
var ErrLineTooLong = errors.New("httpx: header line too long")

// ErrMalformed is returned for requests or responses that do not parse.
var ErrMalformed = errors.New("httpx: malformed message")

// readLine reads a CRLF- (or bare-LF-) terminated line without the ending.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && line != "" {
			return "", fmt.Errorf("%w: truncated line", ErrMalformed)
		}
		return "", err
	}
	if len(line) > maxLineBytes {
		return "", ErrLineTooLong
	}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}

// readHeader reads header lines up to the blank separator line.
func readHeader(r *bufio.Reader) (Header, error) {
	h := make(Header)
	fields := 0
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		fields++
		if fields > maxHeaderCount {
			return nil, fmt.Errorf("%w: too many header fields", ErrMalformed)
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		key := strings.TrimSpace(line[:colon])
		val := strings.TrimSpace(line[colon+1:])
		if key == "" {
			return nil, fmt.Errorf("%w: empty header name", ErrMalformed)
		}
		h.Add(key, val)
	}
}

// readBody reads a message body delimited by Content-Length, or (for
// responses with no length, HTTP/1.0 style) until EOF.
func readBody(r *bufio.Reader, h Header, toEOF bool) ([]byte, error) {
	if cl := h.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
		}
		if n > MaxBodyBytes {
			return nil, fmt.Errorf("%w: body of %d bytes exceeds limit", ErrMalformed, n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("%w: short body: %v", ErrMalformed, err)
		}
		return body, nil
	}
	if !toEOF {
		return nil, nil
	}
	body, err := io.ReadAll(io.LimitReader(r, MaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > MaxBodyBytes {
		return nil, fmt.Errorf("%w: body exceeds limit", ErrMalformed)
	}
	return body, nil
}

// ReadRequest parses one request from r.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	parts := strings.Split(line, " ")
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	method, path, proto := parts[0], parts[1], parts[2]
	if method == "" || path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	if proto != "HTTP/1.0" && proto != "HTTP/1.1" {
		return nil, fmt.Errorf("%w: unsupported protocol %q", ErrMalformed, proto)
	}
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	body, err := readBody(r, h, false)
	if err != nil {
		return nil, err
	}
	return &Request{Method: method, Path: path, Proto: proto, Header: h, Body: body}, nil
}

// WriteRequest serializes req to w. A Content-Length header is emitted
// whenever a body is present.
func WriteRequest(w io.Writer, req *Request) error {
	proto := req.Proto
	if proto == "" {
		proto = "HTTP/1.0"
	}
	bp := wireBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, req.Method...)
	buf = append(buf, ' ')
	buf = append(buf, req.Path...)
	buf = append(buf, ' ')
	buf = append(buf, proto...)
	buf = append(buf, '\r', '\n')
	buf = appendHeader(buf, req.Header, len(req.Body))
	err := writeMessage(w, buf, req.Body)
	*bp = buf[:0]
	wireBufPool.Put(bp)
	return err
}

// ReadResponse parses one response from r, assuming it answers a GET.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	return ReadResponseFor(r, "GET")
}

// ReadResponseFor parses one response from r for a request of the given
// method. Responses to HEAD carry headers (including Content-Length) but no
// body.
func ReadResponseFor(r *bufio.Reader, method string) (*Response, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil || status < 100 || status > 599 {
		return nil, fmt.Errorf("%w: status %q", ErrMalformed, parts[1])
	}
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if method == "HEAD" || status == 304 || status == 204 {
		return &Response{Status: status, Proto: parts[0], Header: h}, nil
	}
	toEOF := h.Get("Content-Length") == ""
	body, err := readBody(r, h, toEOF)
	if err != nil {
		return nil, err
	}
	return &Response{Status: status, Proto: parts[0], Header: h, Body: body}, nil
}

// WriteResponse serializes resp to w, always emitting Content-Length so
// connections can be kept alive.
func WriteResponse(w io.Writer, resp *Response) error {
	proto := resp.Proto
	if proto == "" {
		proto = "HTTP/1.0"
	}
	bp := wireBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, proto...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(resp.Status), 10)
	buf = append(buf, ' ')
	buf = append(buf, StatusText(resp.Status)...)
	buf = append(buf, '\r', '\n')
	buf = appendHeader(buf, resp.Header, len(resp.Body))
	err := writeMessage(w, buf, resp.Body)
	*bp = buf[:0]
	wireBufPool.Put(bp)
	return err
}

// appendHeader serializes the header fields plus a synthesized
// Content-Length (when absent) and the blank separator line.
func appendHeader(buf []byte, h Header, bodyLen int) []byte {
	wroteCL := false
	for _, k := range h.sortedKeys() {
		if k == "Content-Length" {
			wroteCL = true
		}
		for _, v := range h[k] {
			buf = append(buf, k...)
			buf = append(buf, ':', ' ')
			buf = append(buf, v...)
			buf = append(buf, '\r', '\n')
		}
	}
	if !wroteCL {
		buf = append(buf, "Content-Length: "...)
		buf = strconv.AppendInt(buf, int64(bodyLen), 10)
		buf = append(buf, '\r', '\n')
	}
	return append(buf, '\r', '\n')
}

// writeMessage sends the serialized head and the body. Small bodies are
// folded into the head buffer for a single syscall; large ones go out in a
// second write directly from the caller's (possibly shared) slice.
func writeMessage(w io.Writer, head, body []byte) error {
	if n := len(body); n > 0 && n <= inlineBodyLimit {
		head = append(head, body...)
		body = nil
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}
