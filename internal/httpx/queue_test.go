package httpx

import (
	"sync"
	"testing"
	"time"
)

// TestQueueDepthReportsBacklog holds the single worker hostage and checks
// that connections stacking up behind it are visible through QueueDepth —
// the gauge the queue-aware load metric consumes.
func TestQueueDepthReportsBacklog(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{}, 16)
	h := HandlerFunc(func(req *Request) *Response {
		blocked <- struct{}{}
		<-release
		return NewResponse(200)
	})
	_, client, srv := startServer(t, ServerConfig{Workers: 1, QueueLength: 8}, h)
	if srv.QueueDepth() != 0 {
		t.Fatalf("fresh server queue depth = %d", srv.QueueDepth())
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get("srv:80", "/x", nil)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			if resp.Status != 200 {
				t.Errorf("status = %d", resp.Status)
			}
		}()
	}

	// One request occupies the worker; the other three sit in the queue.
	<-blocked
	deadline := time.Now().Add(5 * time.Second)
	for srv.QueueDepth() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, want 3", srv.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	wg.Wait()
	if d := srv.QueueDepth(); d != 0 {
		t.Fatalf("queue depth after drain = %d", d)
	}
}
