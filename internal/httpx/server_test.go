package httpx

import (
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcws/internal/memnet"
)

// startServer boots a Server on a fresh fabric address and returns a client.
func startServer(t *testing.T, cfg ServerConfig, h Handler) (*memnet.Fabric, *Client, *Server) {
	t.Helper()
	fabric := memnet.NewFabric()
	l, err := fabric.Listen("srv:80")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg, h)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return fabric, NewClient(DialerFunc(fabric.Dial)), srv
}

func okHandler(body string) Handler {
	return HandlerFunc(func(req *Request) *Response {
		resp := NewResponse(200)
		resp.Header.Set("Content-Type", "text/plain")
		resp.Body = []byte(body)
		return resp
	})
}

func TestServerServesRequest(t *testing.T) {
	_, client, _ := startServer(t, ServerConfig{}, okHandler("hello"))
	resp, err := client.Get("srv:80", "/index.html", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "hello" {
		t.Fatalf("got %d %q", resp.Status, resp.Body)
	}
}

func TestServerEchoesPath(t *testing.T) {
	h := HandlerFunc(func(req *Request) *Response {
		resp := NewResponse(200)
		resp.Body = []byte(req.Method + " " + req.Path)
		return resp
	})
	_, client, _ := startServer(t, ServerConfig{}, h)
	resp, err := client.Get("srv:80", "/a/b/c.html", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "GET /a/b/c.html" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestServerConcurrentRequests(t *testing.T) {
	var served int64
	h := HandlerFunc(func(req *Request) *Response {
		atomic.AddInt64(&served, 1)
		resp := NewResponse(200)
		resp.Body = []byte("ok")
		return resp
	})
	_, client, _ := startServer(t, ServerConfig{Workers: 4}, h)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Get("srv:80", "/x", nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&served) != 50 {
		t.Fatalf("served %d, want 50", served)
	}
}

func TestServerQueueOverflowDrops503(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(req *Request) *Response {
		<-block
		return NewResponse(200)
	})
	// 1 worker, queue of 2: the worker picks up one connection, the queue
	// holds two more, everything else must be dropped with 503.
	fabric, client, srv := startServer(t, ServerConfig{Workers: 1, QueueLength: 2}, h)
	_ = fabric

	var mu sync.Mutex
	counts := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get("srv:80", "/slow", nil)
			if err != nil {
				return // dial refused also possible under races; ignore
			}
			mu.Lock()
			counts[resp.Status]++
			mu.Unlock()
		}()
		time.Sleep(2 * time.Millisecond) // let the accept loop drain serially
	}
	// Give the drops time to happen, then release the worker.
	time.Sleep(50 * time.Millisecond)
	close(block)
	wg.Wait()
	if counts[503] == 0 {
		t.Fatalf("no 503 drops observed: %v (server dropped=%d)", counts, srv.Dropped())
	}
	if srv.Dropped() == 0 {
		t.Fatal("server did not count drops")
	}
	if counts[200] == 0 {
		t.Fatalf("no successes observed: %v", counts)
	}
}

func TestServerMalformedRequestGets400(t *testing.T) {
	fabric, _, _ := startServer(t, ServerConfig{}, okHandler("x"))
	conn, err := fabric.Dial("srv:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("NONSENSE\r\n\r\n"))
	buf := make([]byte, 64)
	n, _ := conn.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "HTTP/1.0 400") {
		t.Fatalf("got %q, want 400 response", buf[:n])
	}
}

func TestServerHandlerPanicGives500(t *testing.T) {
	h := HandlerFunc(func(req *Request) *Response { panic("boom") })
	_, client, _ := startServer(t, ServerConfig{}, h)
	resp, err := client.Get("srv:80", "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 500 {
		t.Fatalf("status = %d, want 500", resp.Status)
	}
}

func TestServerNilResponseGives500(t *testing.T) {
	h := HandlerFunc(func(req *Request) *Response { return nil })
	_, client, _ := startServer(t, ServerConfig{}, h)
	resp, err := client.Get("srv:80", "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 500 {
		t.Fatalf("status = %d, want 500", resp.Status)
	}
}

func TestServerKeepAlive(t *testing.T) {
	fabric := memnet.NewFabric()
	l, _ := fabric.Listen("srv:80")
	srv := NewServer(ServerConfig{KeepAlive: true}, okHandler("ka"))
	go srv.Serve(l)
	defer srv.Close()

	conn, err := fabric.Dial("srv:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Two requests on one connection.
	for i := 0; i < 2; i++ {
		req := NewRequest("GET", "/x")
		req.Header.Set("Connection", "keep-alive")
		if err := WriteRequest(conn, req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	buf := make([]byte, 4096)
	deadline := time.Now().Add(2 * time.Second)
	var all []byte
	for time.Now().Before(deadline) && strings.Count(string(all), "HTTP/1.0 200") < 2 {
		conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, err := conn.Read(buf)
		all = append(all, buf[:n]...)
		if err != nil && n == 0 {
			break
		}
	}
	if got := strings.Count(string(all), "HTTP/1.0 200"); got != 2 {
		t.Fatalf("saw %d responses on one keep-alive connection, want 2", got)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	fabric, client, srv := startServer(t, ServerConfig{}, okHandler("x"))
	if _, err := client.Get("srv:80", "/x", nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	time.Sleep(20 * time.Millisecond)
	if _, err := fabric.Dial("srv:80"); err == nil {
		t.Fatal("dial succeeded after server Close")
	}
}

func TestClientDialFailure(t *testing.T) {
	fabric := memnet.NewFabric()
	client := NewClient(DialerFunc(fabric.Dial))
	if _, err := client.Get("ghost:80", "/", nil); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestClientSetsHostHeader(t *testing.T) {
	var gotHost string
	var mu sync.Mutex
	h := HandlerFunc(func(req *Request) *Response {
		mu.Lock()
		gotHost = req.Header.Get("Host")
		mu.Unlock()
		return NewResponse(200)
	})
	_, client, _ := startServer(t, ServerConfig{}, h)
	if _, err := client.Get("srv:80", "/", nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotHost != "srv:80" {
		t.Fatalf("Host = %q", gotHost)
	}
}

func TestClientExtraHeaders(t *testing.T) {
	var got string
	var mu sync.Mutex
	h := HandlerFunc(func(req *Request) *Response {
		mu.Lock()
		got = req.Header.Get("X-Dcws-Load")
		mu.Unlock()
		return NewResponse(200)
	})
	_, client, _ := startServer(t, ServerConfig{}, h)
	extra := make(Header)
	extra.Set("X-DCWS-Load", "a=1")
	if _, err := client.Get("srv:80", "/", extra); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != "a=1" {
		t.Fatalf("extension header = %q", got)
	}
}

func TestServerOverTCP(t *testing.T) {
	n := memnet.TCP{}
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP: %v", err)
	}
	srv := NewServer(ServerConfig{}, okHandler("tcp works"))
	go srv.Serve(l)
	defer srv.Close()
	client := NewClient(DialerFunc(n.Dial))
	resp, err := client.Get(l.Addr().String(), "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "tcp works" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestAccessLogCarriesTraceID(t *testing.T) {
	var logMu sync.Mutex
	var logBuf strings.Builder
	h := HandlerFunc(func(req *Request) *Response {
		resp := NewResponse(200)
		resp.Header.Set("X-Test-Trace", req.Header.Get("X-Test-Trace"))
		resp.Body = []byte("ok")
		return resp
	})
	cfg := ServerConfig{
		AccessLog:   log.New(safeWriter{mu: &logMu, w: &logBuf}, "", 0),
		TraceHeader: "X-Test-Trace",
	}
	_, client, _ := startServer(t, cfg, h)

	extra := make(Header)
	extra.Set("X-Test-Trace", "trace-abc123")
	if _, err := client.Get("srv:80", "/traced.html", extra); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get("srv:80", "/plain.html", nil); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		logMu.Lock()
		out := logBuf.String()
		logMu.Unlock()
		if strings.Contains(out, "/traced.html") && strings.Contains(out, "/plain.html") {
			var traced, plain string
			for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
				if strings.Contains(line, "/traced.html") {
					traced = line
				}
				if strings.Contains(line, "/plain.html") {
					plain = line
				}
			}
			if !strings.Contains(traced, "GET /traced.html 200") || !strings.Contains(traced, "trace=trace-abc123") {
				t.Fatalf("traced line = %q", traced)
			}
			if !strings.Contains(plain, "trace=-") {
				t.Fatalf("plain line = %q", plain)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("access log incomplete:\n%s", out)
		}
		time.Sleep(time.Millisecond)
	}
}

// safeWriter serializes writes so the test can read the log buffer while
// worker goroutines are still appending.
type safeWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (s safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
