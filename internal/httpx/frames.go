package httpx

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame codec for upgraded (hijacked) connections. After a 101 handshake
// both peers abandon HTTP framing and exchange length-prefixed binary
// frames: one type byte, a uvarint payload length, then the payload. The
// codec is deliberately tiny — it carries the invalidation subscription
// protocol, not general traffic — and symmetric, so either side of an
// upgraded connection can use the same two functions.

// MaxFramePayload bounds a single frame's payload. Invalidation frames
// carry document names and hashes, not bodies, so 1 MiB is generous; the
// cap keeps a corrupt or hostile length prefix from ballooning a read.
const MaxFramePayload = 1 << 20

// ErrFrameTooLarge is returned when a frame's declared payload length
// exceeds MaxFramePayload.
var ErrFrameTooLarge = errors.New("httpx: frame payload too large")

// WriteFrame writes one frame to w: type byte, uvarint payload length,
// payload bytes. A nil payload writes a zero-length frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from br. It blocks until a full frame arrives
// or the underlying connection fails; callers own liveness (heartbeat
// frames plus a clock-side staleness check), so no deadline is imposed
// here.
func ReadFrame(br *bufio.Reader) (typ byte, payload []byte, err error) {
	typ, err = br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("httpx: frame length: %w", err)
	}
	if n > MaxFramePayload {
		return 0, nil, ErrFrameTooLarge
	}
	if n == 0 {
		return typ, nil, nil
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("httpx: frame payload: %w", err)
	}
	return typ, payload, nil
}
