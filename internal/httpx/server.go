package httpx

import (
	"bufio"
	"errors"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Handler processes one request and returns the response to send. Handlers
// must be safe for concurrent use by multiple worker goroutines.
type Handler interface {
	Serve(req *Request) *Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) *Response

// Serve implements Handler.
func (f HandlerFunc) Serve(req *Request) *Response { return f(req) }

// Observer receives server life-cycle events for telemetry. Methods must
// be safe for concurrent use and fast: they run on the accept loop and the
// worker hot path. A nil Observer disables observation entirely.
type Observer interface {
	// ConnQueued fires when an accepted connection enters the socket queue.
	ConnQueued()
	// ConnDropped fires when a connection is answered 503 because the
	// socket queue was full.
	ConnDropped()
	// QueueWait reports how long a connection sat in the socket queue
	// before a worker picked it up.
	QueueWait(d time.Duration)
	// Request reports one completed exchange: the response status, the
	// bytes read from and written to the connection while serving it, and
	// the request-parsed-to-response-written latency.
	Request(status int, bytesIn, bytesOut int64, d time.Duration)
}

// ServerConfig mirrors the thread and queue parameters of the paper's
// Table 1.
type ServerConfig struct {
	// Workers is the number of worker goroutines (N_wk, default 12).
	Workers int
	// QueueLength is the socket queue capacity for backlogged requests
	// (L_sq, default 100). When the queue is full new connections are
	// dropped gracefully with a 503 response.
	QueueLength int
	// ReadTimeout bounds how long a worker waits for a request on an
	// accepted connection.
	ReadTimeout time.Duration
	// KeepAlive allows multiple requests per connection when the client
	// asks for it.
	KeepAlive bool
	// KeepAliveHold is how long a worker waits on a kept-alive connection
	// for the next request before parking it off-worker, so back-to-back
	// RPCs stay on the fast path without pinning a bounded worker slot
	// through think time (default 5ms; negative parks immediately).
	KeepAliveHold time.Duration
	// IdleTimeout is how long a parked keep-alive connection may sit idle
	// before it is closed (default ReadTimeout; negative disables parking,
	// closing idle connections as soon as KeepAliveHold expires).
	IdleTimeout time.Duration
	// ErrorLog receives accept and protocol errors; nil discards them.
	ErrorLog *log.Logger
	// AccessLog receives one line per completed exchange (remote, method,
	// path, status, response bytes, latency, trace ID); nil disables it.
	AccessLog *log.Logger
	// TraceHeader names the response header whose value is logged as the
	// trace ID in access-log lines, joining them against the trace ring.
	// Empty logs "-". (A header name, not an import of the tracing layer:
	// httpx stays below it.)
	TraceHeader string
	// Observer receives queueing and request telemetry; nil disables it.
	Observer Observer
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 12
	}
	if c.QueueLength <= 0 {
		c.QueueLength = 100
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.KeepAliveHold == 0 {
		c.KeepAliveHold = 5 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = c.ReadTimeout
	}
	return c
}

// Server is the multithreaded HTTP front-end of §5.1: one accept loop (the
// "front-end thread"), a bounded pending-connection queue, and a pool of
// worker goroutines. Connections that arrive while the queue is full are
// answered 503 and closed, the paper's graceful drop behaviour.
type Server struct {
	cfg     ServerConfig
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	queue    chan queuedConn
	wg       sync.WaitGroup

	// resume carries parked keep-alive connections that received data
	// back to the workers; done stops parking at shutdown. resume is
	// unbuffered and never closed, so parked-connection watchers hand off
	// directly to a worker or bail out on done.
	resume   chan queuedConn
	done     chan struct{}
	doneOnce sync.Once
	parkWg   sync.WaitGroup
	parkedMu sync.Mutex
	parked   map[net.Conn]struct{}

	// Dropped counts connections refused with 503 due to a full queue.
	droppedMu sync.Mutex
	dropped   int64
}

// NewServer returns a server that dispatches to handler.
func NewServer(cfg ServerConfig, handler Handler) *Server {
	return &Server{
		cfg:     cfg.withDefaults(),
		handler: handler,
		resume:  make(chan queuedConn),
		done:    make(chan struct{}),
		parked:  make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections from l until Close is called. It blocks; run it
// in its own goroutine. The listener is closed when Serve returns.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("httpx: server closed")
	}
	s.listener = l
	s.queue = make(chan queuedConn, s.cfg.QueueLength)
	queue := s.queue
	s.mu.Unlock()

	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(queue)
	}

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			// Stop parking first so idle keep-alive connections close
			// instead of re-entering the worker loop, then let the workers
			// drain the queue and exit.
			s.doneOnce.Do(func() { close(s.done) })
			s.closeParked()
			close(queue)
			s.wg.Wait()
			s.parkWg.Wait()
			if closed {
				return nil
			}
			return err
		}
		select {
		case queue <- queuedConn{conn: conn, at: time.Now()}:
			if s.cfg.Observer != nil {
				s.cfg.Observer.ConnQueued()
			}
		default:
			// Socket queue full: graceful 503 drop (§5.2).
			s.droppedMu.Lock()
			s.dropped++
			s.droppedMu.Unlock()
			if s.cfg.Observer != nil {
				s.cfg.Observer.ConnDropped()
			}
			go dropConn(conn)
		}
	}
}

// queuedConn is one socket-queue slot: the accepted connection and its
// enqueue time, so workers can report queue wait. A parked keep-alive
// connection re-enters the workers through the same struct, carrying its
// buffered reader and byte-count watermarks across the idle wait; br is
// nil for freshly accepted connections.
type queuedConn struct {
	conn net.Conn
	at   time.Time

	br              *bufio.Reader
	prevIn, prevOut int64
}

// countingConn counts the bytes crossing a connection so per-request wire
// traffic can be attributed without touching the reader/writer code.
type countingConn struct {
	net.Conn
	in, out atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// dropConn answers a queued-out connection with 503 and closes it.
func dropConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	resp := NewResponse(503)
	resp.Header.Set("Retry-After", "1")
	resp.Header.Set("Content-Type", "text/plain")
	resp.Body = []byte("503 server busy\n")
	WriteResponse(conn, resp)
}

func (s *Server) worker(queue chan queuedConn) {
	defer s.wg.Done()
	for {
		var qc queuedConn
		select {
		case q, ok := <-queue:
			if !ok {
				return
			}
			qc = q
		case qc = <-s.resume:
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.QueueWait(time.Since(qc.at))
		}
		s.serveConn(qc)
	}
}

func (s *Server) serveConn(qc queuedConn) {
	obs := s.cfg.Observer
	conn := qc.conn
	var cc *countingConn
	if qc.br == nil {
		if obs != nil {
			cc = &countingConn{Conn: conn}
			conn = cc
		}
		qc.br = getReader(conn)
	} else {
		// Resumed from the parked set: the connection is already wrapped.
		cc, _ = conn.(*countingConn)
	}
	br := qc.br
	prevIn, prevOut := qc.prevIn, qc.prevOut
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		req, err := ReadRequest(br)
		if err != nil {
			if errors.Is(err, ErrMalformed) || errors.Is(err, ErrLineTooLong) {
				WriteResponse(conn, errorResponse(400))
			}
			putReader(br)
			conn.Close()
			return
		}
		start := time.Now()
		req.RemoteAddr = conn.RemoteAddr().String()
		resp := s.dispatch(req)
		keep := s.cfg.KeepAlive && wantsKeepAlive(req)
		if keep {
			resp.Header.Set("Connection", "keep-alive")
		} else {
			resp.Header.Set("Connection", "close")
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.ReadTimeout))
		werr := WriteResponse(conn, resp)
		if s.cfg.AccessLog != nil {
			trace := "-"
			if s.cfg.TraceHeader != "" {
				if id := resp.Header.Get(s.cfg.TraceHeader); id != "" {
					trace = id
				}
			}
			s.cfg.AccessLog.Printf("%s %s %s %d %d %.3fms trace=%s",
				req.RemoteAddr, req.Method, req.Path, resp.Status,
				len(resp.Body), float64(time.Since(start).Microseconds())/1000, trace)
		}
		if obs != nil {
			// Bufio read-ahead may attribute a pipelined follow-up request's
			// bytes to this exchange; totals stay exact.
			in, out := cc.in.Load(), cc.out.Load()
			obs.Request(resp.Status, in-prevIn, out-prevOut, time.Since(start))
			prevIn, prevOut = in, out
		}
		if resp.Hijack != nil && werr == nil {
			// Protocol upgrade: the handler takes the connection. Clear the
			// per-request deadlines so the hijacker starts from a blank
			// slate, keep the buffered reader (it may hold read-ahead
			// frames), and never touch the connection again here.
			conn.SetReadDeadline(time.Time{})
			conn.SetWriteDeadline(time.Time{})
			resp.Hijack(conn, br)
			return
		}
		if werr != nil || !keep {
			putReader(br)
			conn.Close()
			return
		}
		if br.Buffered() > 0 {
			// Pipelined follow-up already waiting.
			continue
		}
		// Hold briefly for the next request of a bursty exchange, then
		// park the idle connection off-worker so it does not pin one of
		// the bounded worker slots (§5.1 sizes them for active requests).
		if s.cfg.KeepAliveHold > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.KeepAliveHold))
			if _, err := br.Peek(1); err == nil {
				continue
			} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				putReader(br)
				conn.Close()
				return
			}
		}
		s.park(queuedConn{conn: conn, br: br, prevIn: prevIn, prevOut: prevOut})
		return
	}
}

// park hands an idle keep-alive connection to a watcher goroutine that
// waits (up to IdleTimeout) for its next request and then re-enqueues it
// to the workers, or closes it on timeout, error, or server shutdown.
func (s *Server) park(qc queuedConn) {
	if s.cfg.IdleTimeout < 0 {
		s.discard(qc)
		return
	}
	s.parkedMu.Lock()
	s.parked[qc.conn] = struct{}{}
	s.parkedMu.Unlock()
	// Check done only after registering: shutdown closes done and then
	// sweeps the parked set, so a connection is either swept or sees done
	// here — never silently left waiting out its idle timeout.
	select {
	case <-s.done:
		s.parkedMu.Lock()
		delete(s.parked, qc.conn)
		s.parkedMu.Unlock()
		s.discard(qc)
		return
	default:
	}
	s.parkWg.Add(1)
	go func() {
		defer s.parkWg.Done()
		qc.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		// Re-check done now that the idle deadline is armed: closeParked
		// may have expired the deadline in the window before the line
		// above overwrote it with a future one, and shutdown must not wait
		// out IdleTimeout behind an undone sweep. closeParked always runs
		// after done is closed, so this check observes every sweep.
		select {
		case <-s.done:
			s.parkedMu.Lock()
			delete(s.parked, qc.conn)
			s.parkedMu.Unlock()
			s.discard(qc)
			return
		default:
		}
		_, err := qc.br.Peek(1)
		s.parkedMu.Lock()
		delete(s.parked, qc.conn)
		s.parkedMu.Unlock()
		if err != nil {
			s.discard(qc)
			return
		}
		qc.at = time.Now()
		select {
		case <-s.done:
			s.discard(qc)
		case s.resume <- qc:
		}
	}()
}

// discard releases a parked connection's reader and closes it.
func (s *Server) discard(qc queuedConn) {
	putReader(qc.br)
	qc.conn.Close()
}

// closeParked wakes every parked connection's watcher by expiring its
// read deadline, so shutdown does not wait out idle timeouts.
func (s *Server) closeParked() {
	s.parkedMu.Lock()
	for c := range s.parked {
		c.SetReadDeadline(time.Now().Add(-time.Second))
	}
	s.parkedMu.Unlock()
}

func (s *Server) dispatch(req *Request) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			if s.cfg.ErrorLog != nil {
				s.cfg.ErrorLog.Printf("httpx: handler panic: %v", r)
			}
			resp = errorResponse(500)
		}
	}()
	resp = s.handler.Serve(req)
	if resp == nil {
		resp = errorResponse(500)
	}
	return resp
}

func wantsKeepAlive(req *Request) bool {
	c := req.Header.Get("Connection")
	if req.Proto == "HTTP/1.1" {
		return !hasConnToken(c, "close")
	}
	return hasConnToken(c, "keep-alive")
}

// hasConnToken reports whether a Connection header value contains token,
// comparing ASCII-case-insensitively across the comma-separated token
// list the header is defined to carry ("Keep-Alive, TE").
func hasConnToken(value, token string) bool {
	for len(value) > 0 {
		part := value
		if i := strings.IndexByte(value, ','); i >= 0 {
			part, value = value[:i], value[i+1:]
		} else {
			value = ""
		}
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

func errorResponse(status int) *Response {
	resp := NewResponse(status)
	resp.Header.Set("Content-Type", "text/plain")
	resp.Body = []byte(StatusText(status) + "\n")
	return resp
}

// Dropped reports how many connections were answered 503 because the socket
// queue was full.
func (s *Server) Dropped() int64 {
	s.droppedMu.Lock()
	defer s.droppedMu.Unlock()
	return s.dropped
}

// QueueDepth reports how many accepted connections currently sit in the
// socket queue waiting for a worker — the early-warning signal the
// queue-aware load metric folds in. Zero before Serve starts.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	q := s.queue
	s.mu.Unlock()
	if q == nil {
		return 0
	}
	return len(q)
}

// Close stops accepting connections and waits for in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	return nil
}
