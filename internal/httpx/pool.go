package httpx

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCanceled is returned by DoCancel when the request's CancelToken was
// canceled before or during the exchange.
var ErrCanceled = errors.New("httpx: request canceled")

// Retirement causes, as reported by PoolStats.Retires. A connection is
// retired (closed and removed from pool accounting) exactly once.
const (
	// RetireError: a read/write error or deadline expiry mid-exchange.
	RetireError = "error"
	// RetireIdleTimeout: sat idle in the pool past IdleTimeout.
	RetireIdleTimeout = "idle-timeout"
	// RetireLifetime: exceeded MaxLifetime since dial.
	RetireLifetime = "lifetime"
	// RetireServerClose: the response did not opt into keep-alive.
	RetireServerClose = "server-close"
	// RetireCapacity: returned to a pool already holding MaxIdlePerHost.
	RetireCapacity = "capacity"
	// RetireCanceled: a CancelToken aborted the exchange mid-flight.
	RetireCanceled = "canceled"
	// RetireFlush: FlushAddr or CloseIdle cleared the connection out.
	RetireFlush = "flush"
)

// PoolConfig bounds a connection pool. The zero value selects defaults.
type PoolConfig struct {
	// MaxIdlePerHost caps idle connections kept per address (default 4;
	// negative keeps none, making the pool a pass-through).
	MaxIdlePerHost int
	// IdleTimeout retires a pooled connection that has sat unused this
	// long (default 30s; negative means never).
	IdleTimeout time.Duration
	// MaxLifetime retires a connection this long after it was dialed, no
	// matter how busy, so long-lived processes rebalance across peer
	// restarts (default 5m; negative means never).
	MaxLifetime time.Duration
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.MaxIdlePerHost == 0 {
		c.MaxIdlePerHost = 4
	}
	if c.MaxIdlePerHost < 0 {
		c.MaxIdlePerHost = 0
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.MaxLifetime == 0 {
		c.MaxLifetime = 5 * time.Minute
	}
	return c
}

// Pool keeps completed client connections alive per address for reuse,
// LIFO so the hottest (least likely to have been closed by the peer)
// connection is handed out first. Expired entries are reaped lazily on
// access. All methods are safe for concurrent use.
//
// Fault injection composes transparently: memnet arms resets/stalls on a
// connection when it is dialed, so a pooled connection misbehaves exactly
// as a fresh dial on the same link would.
type Pool struct {
	cfg PoolConfig

	reuses atomic.Int64
	dials  atomic.Int64

	mu      sync.Mutex
	idle    map[string][]*persistConn
	open    map[string]int // idle + leased, per address
	retires map[string]int64
}

// NewPool returns an empty pool with cfg's limits.
func NewPool(cfg PoolConfig) *Pool {
	return &Pool{
		cfg:     cfg.withDefaults(),
		idle:    make(map[string][]*persistConn),
		open:    make(map[string]int),
		retires: make(map[string]int64),
	}
}

// persistConn is one pooled connection plus the bookkeeping needed to
// retire it exactly once. A nil pool marks a transient (unpooled) wrapper
// used only to give CancelToken something to close.
type persistConn struct {
	pool *Pool
	addr string
	conn net.Conn
	born time.Time

	// idleAt is written only by the pool while it owns the conn.
	idleAt time.Time

	mu     sync.Mutex
	closed bool
}

// close retires the connection under the given cause. Idempotent: only
// the first call closes and is counted.
func (pc *persistConn) close(cause string) {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return
	}
	pc.closed = true
	pc.mu.Unlock()
	pc.conn.Close()
	if pc.pool != nil {
		pc.pool.noteRetire(pc.addr, cause)
	}
}

func (pc *persistConn) isClosed() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.closed
}

func (p *Pool) noteRetire(addr, cause string) {
	p.mu.Lock()
	if p.open[addr]--; p.open[addr] <= 0 {
		delete(p.open, addr)
	}
	p.retires[cause]++
	p.mu.Unlock()
}

type reapEntry struct {
	pc    *persistConn
	cause string
}

// get pops the most recently parked live connection for addr, reaping
// expired entries along the way. Returns nil when none is available.
func (p *Pool) get(addr string) *persistConn {
	now := time.Now()
	var reap []reapEntry
	var out *persistConn
	p.mu.Lock()
	list := p.idle[addr]
	for out == nil && len(list) > 0 {
		pc := list[len(list)-1]
		list = list[:len(list)-1]
		switch {
		case pc.isClosed():
			// Canceled or flushed while idle; already accounted for.
		case p.cfg.MaxLifetime > 0 && now.Sub(pc.born) >= p.cfg.MaxLifetime:
			reap = append(reap, reapEntry{pc, RetireLifetime})
		case p.cfg.IdleTimeout > 0 && now.Sub(pc.idleAt) >= p.cfg.IdleTimeout:
			reap = append(reap, reapEntry{pc, RetireIdleTimeout})
		default:
			out = pc
		}
	}
	if len(list) == 0 {
		delete(p.idle, addr)
	} else {
		p.idle[addr] = list
	}
	if out != nil {
		p.reuses.Add(1)
	}
	p.mu.Unlock()
	for _, r := range reap {
		r.pc.close(r.cause)
	}
	return out
}

// dial opens a fresh tracked connection to addr through d.
func (p *Pool) dial(d Dialer, addr string) (*persistConn, error) {
	conn, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	p.mu.Lock()
	p.open[addr]++
	p.mu.Unlock()
	return &persistConn{pool: p, addr: addr, conn: conn, born: time.Now()}, nil
}

// put parks a connection for reuse, or retires it when over a limit.
func (p *Pool) put(pc *persistConn) {
	if pc.pool == nil {
		pc.conn.Close()
		return
	}
	now := time.Now()
	if p.cfg.MaxLifetime > 0 && now.Sub(pc.born) >= p.cfg.MaxLifetime {
		pc.close(RetireLifetime)
		return
	}
	if pc.isClosed() {
		return
	}
	pc.idleAt = now
	p.mu.Lock()
	if len(p.idle[pc.addr]) >= p.cfg.MaxIdlePerHost {
		p.mu.Unlock()
		pc.close(RetireCapacity)
		return
	}
	p.idle[pc.addr] = append(p.idle[pc.addr], pc)
	p.mu.Unlock()
}

// FlushAddr retires every idle pooled connection to addr and reports how
// many it closed. The resilience layer calls it when addr's circuit
// breaker trips: connections to a peer that just failed repeatedly are
// likely broken or pointed at a dying process.
func (p *Pool) FlushAddr(addr string) int {
	p.mu.Lock()
	list := p.idle[addr]
	delete(p.idle, addr)
	p.mu.Unlock()
	for _, pc := range list {
		pc.close(RetireFlush)
	}
	return len(list)
}

// CloseIdle retires every idle connection in the pool. Leased connections
// are untouched; they retire when their requests complete.
func (p *Pool) CloseIdle() {
	p.mu.Lock()
	var all []*persistConn
	for addr, list := range p.idle {
		all = append(all, list...)
		delete(p.idle, addr)
	}
	p.mu.Unlock()
	for _, pc := range all {
		pc.close(RetireFlush)
	}
}

// PeerPoolStats is the per-address view of a pool.
type PeerPoolStats struct {
	// Open counts live connections to the peer, idle plus leased.
	Open int `json:"open"`
	// Idle counts connections parked awaiting reuse.
	Idle int `json:"idle"`
}

// PoolStats is a point-in-time snapshot of pool activity.
type PoolStats struct {
	// Reuses counts pooled connections handed out instead of dialing.
	Reuses int64 `json:"reuses"`
	// Dials counts fresh connections opened.
	Dials int64 `json:"dials"`
	// Retires counts closed connections by cause.
	Retires map[string]int64 `json:"retires,omitempty"`
	// Peers maps address to open/idle connection counts.
	Peers map[string]PeerPoolStats `json:"peers,omitempty"`
}

// Stats snapshots the pool's counters and per-peer connection counts.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{Reuses: p.reuses.Load(), Dials: p.dials.Load()}
	p.mu.Lock()
	st.Retires = make(map[string]int64, len(p.retires))
	for k, v := range p.retires {
		st.Retires[k] = v
	}
	st.Peers = make(map[string]PeerPoolStats, len(p.open))
	for addr, n := range p.open {
		st.Peers[addr] = PeerPoolStats{Open: n, Idle: len(p.idle[addr])}
	}
	p.mu.Unlock()
	return st
}

// Reuses reports how many requests were served over a pooled connection.
func (p *Pool) Reuses() int64 { return p.reuses.Load() }

// Dials reports how many fresh connections the pool opened.
func (p *Pool) Dials() int64 { return p.dials.Load() }

// CancelToken lets an in-flight request be aborted from another
// goroutine: the hedged-fetch loser is canceled mid-flight and its
// connection retired, since a half-read response leaves the connection
// unusable. The zero value is ready to use; a token binds to at most one
// request at a time and a canceled token refuses later binds.
type CancelToken struct {
	mu       sync.Mutex
	canceled bool
	pc       *persistConn
}

// Cancel aborts the bound request, if any, by retiring its connection out
// from under it. Requests bound after Cancel fail with ErrCanceled.
func (t *CancelToken) Cancel() {
	t.mu.Lock()
	pc := t.pc
	t.pc = nil
	t.canceled = true
	t.mu.Unlock()
	if pc != nil {
		pc.close(RetireCanceled)
	}
}

// Canceled reports whether Cancel has been called.
func (t *CancelToken) Canceled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.canceled
}

// bind attaches the token to a request's connection; false if the token
// was already canceled.
func (t *CancelToken) bind(pc *persistConn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.canceled {
		return false
	}
	t.pc = pc
	return true
}

// unbind detaches the token once the exchange is over, so a late Cancel
// cannot close a connection that was already released back to the pool.
func (t *CancelToken) unbind() {
	t.mu.Lock()
	t.pc = nil
	t.mu.Unlock()
}
