package policy

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func at(sec int64) time.Time { return time.Unix(sec, 0) }

func TestSelectPrefersHotDocuments(t *testing.T) {
	docs := []Candidate{
		{Name: "/index.html", Load: 500, EntryPoint: true},
		{Name: "/cold.html", Load: 2},
		{Name: "/hot.html", Load: 300},
	}
	got, ok := SelectForMigration(docs, 100)
	if !ok || got != "/hot.html" {
		t.Fatalf("selected %q, %v", got, ok)
	}
}

func TestSelectNeverPicksEntryPoint(t *testing.T) {
	docs := []Candidate{
		{Name: "/index.html", Load: 10000, EntryPoint: true},
		{Name: "/page.html", Load: 5},
	}
	got, ok := SelectForMigration(docs, 100)
	if !ok || got != "/page.html" {
		t.Fatalf("selected %q, %v", got, ok)
	}
}

func TestSelectAllEntryPointsReturnsNone(t *testing.T) {
	docs := []Candidate{
		{Name: "/a.html", Load: 100, EntryPoint: true},
		{Name: "/b.html", Load: 200, EntryPoint: true},
	}
	if _, ok := SelectForMigration(docs, 10); ok {
		t.Fatal("selected an entry point")
	}
}

func TestSelectSkipsAlreadyMigrated(t *testing.T) {
	docs := []Candidate{
		{Name: "/gone.html", Load: 900, Migrated: true},
		{Name: "/here.html", Load: 100},
	}
	got, ok := SelectForMigration(docs, 50)
	if !ok || got != "/here.html" {
		t.Fatalf("selected %q, %v", got, ok)
	}
}

func TestSelectThresholdReduction(t *testing.T) {
	// All docs below the initial threshold: step 3 halves T until the set
	// is non-empty.
	docs := []Candidate{
		{Name: "/a.html", Load: 3},
		{Name: "/b.html", Load: 7},
	}
	got, ok := SelectForMigration(docs, 1000)
	if !ok || got != "/b.html" {
		t.Fatalf("selected %q, %v; want /b.html (higher load after reduction)", got, ok)
	}
}

func TestSelectZeroLoadReturnsNone(t *testing.T) {
	docs := []Candidate{
		{Name: "/a.html", Load: 0},
		{Name: "/b.html", Load: 0},
	}
	if got, ok := SelectForMigration(docs, 100); ok {
		t.Fatalf("selected zero-load doc %q", got)
	}
}

func TestSelectMinimizesRemoteLinkFrom(t *testing.T) {
	docs := []Candidate{
		{Name: "/a.html", Load: 100, RemoteLinkFrom: 3, LinkTo: 0},
		{Name: "/b.html", Load: 100, RemoteLinkFrom: 1, LinkTo: 9},
	}
	got, ok := SelectForMigration(docs, 10)
	if !ok || got != "/b.html" {
		t.Fatalf("selected %q; step 4 should dominate step 5", got)
	}
}

func TestSelectTieBreaksByLinkTo(t *testing.T) {
	docs := []Candidate{
		{Name: "/a.html", Load: 100, RemoteLinkFrom: 1, LinkTo: 5},
		{Name: "/b.html", Load: 100, RemoteLinkFrom: 1, LinkTo: 2},
	}
	got, ok := SelectForMigration(docs, 10)
	if !ok || got != "/b.html" {
		t.Fatalf("selected %q; want min LinkTo", got)
	}
}

func TestSelectFullTieBreaksByName(t *testing.T) {
	docs := []Candidate{
		{Name: "/z.html", Load: 100, RemoteLinkFrom: 1, LinkTo: 2},
		{Name: "/a.html", Load: 100, RemoteLinkFrom: 1, LinkTo: 2},
	}
	got, ok := SelectForMigration(docs, 10)
	if !ok || got != "/a.html" {
		t.Fatalf("selected %q; want deterministic name order", got)
	}
}

func TestSelectEmptyInput(t *testing.T) {
	if _, ok := SelectForMigration(nil, 10); ok {
		t.Fatal("selected from empty set")
	}
}

// Property: the selection never returns an entry point or a migrated
// document, and when any candidate meets the threshold, the selected
// document's load is at least the final (possibly reduced) threshold.
func TestSelectInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		docs := make([]Candidate, n)
		for i := range docs {
			docs[i] = Candidate{
				Name:           "/doc" + string(rune('a'+i%26)) + ".html",
				Load:           int64(rng.Intn(100)),
				EntryPoint:     rng.Intn(5) == 0,
				Migrated:       rng.Intn(5) == 0,
				RemoteLinkFrom: rng.Intn(4),
				LinkTo:         rng.Intn(6),
			}
		}
		name, ok := SelectForMigration(docs, int64(rng.Intn(50)))
		if !ok {
			// Must mean there is no eligible doc with positive load.
			for _, d := range docs {
				if !d.EntryPoint && !d.Migrated && d.Load > 0 {
					return false
				}
			}
			return true
		}
		for _, d := range docs {
			if d.Name == name && d.Load > 0 && !d.EntryPoint && !d.Migrated {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRateGateHomeInterval(t *testing.T) {
	g := NewRateGate(10*time.Second, 60*time.Second)
	if !g.Allow("c1", at(0)) {
		t.Fatal("first migration blocked")
	}
	if g.Allow("c2", at(5)) {
		t.Fatal("second migration allowed within home interval")
	}
	if !g.Allow("c2", at(10)) {
		t.Fatal("migration blocked after home interval elapsed")
	}
}

func TestRateGateCoopInterval(t *testing.T) {
	g := NewRateGate(10*time.Second, 60*time.Second)
	g.Allow("c1", at(0))
	// Home interval has passed but c1 is still cooling down.
	if g.Allow("c1", at(30)) {
		t.Fatal("same coop accepted twice within coop interval")
	}
	if !g.Allow("c2", at(30)) {
		t.Fatal("different coop blocked")
	}
	if !g.Allow("c1", at(60)) {
		t.Fatal("coop blocked after its interval elapsed")
	}
}

func TestRateGateEligibleDoesNotRecord(t *testing.T) {
	g := NewRateGate(10*time.Second, 60*time.Second)
	if !g.Eligible("c1", at(0)) {
		t.Fatal("fresh gate not eligible")
	}
	if !g.Allow("c1", at(0)) {
		t.Fatal("Allow failed after Eligible check")
	}
	if g.Eligible("c1", at(5)) {
		t.Fatal("eligible within home interval")
	}
	if !g.Eligible("c2", at(15)) {
		t.Fatal("other coop not eligible after home interval")
	}
	if g.Eligible("c1", at(15)) {
		t.Fatal("c1 eligible within coop interval")
	}
}

func TestLedgerRecordGetForget(t *testing.T) {
	l := NewLedger()
	l.Record("/d.html", "c1:80", at(100))
	mig, ok := l.Get("/d.html")
	if !ok || mig.Coop != "c1:80" || !mig.At.Equal(at(100)) {
		t.Fatalf("Get = %+v, %v", mig, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.Forget("/d.html")
	if _, ok := l.Get("/d.html"); ok {
		t.Fatal("entry survives Forget")
	}
}

func TestLedgerExpired(t *testing.T) {
	l := NewLedger()
	l.Record("/old.html", "c1:80", at(0))
	l.Record("/new.html", "c1:80", at(250))
	exp := l.Expired(at(301), 300*time.Second)
	if len(exp) != 1 || exp[0].Doc != "/old.html" {
		t.Fatalf("Expired = %+v", exp)
	}
}

func TestLedgerHostedBy(t *testing.T) {
	l := NewLedger()
	l.Record("/a.html", "c1:80", at(0))
	l.Record("/b.html", "c2:80", at(0))
	l.Record("/c.html", "c1:80", at(0))
	got := l.HostedBy("c1:80")
	if len(got) != 2 || got[0].Doc != "/a.html" || got[1].Doc != "/c.html" {
		t.Fatalf("HostedBy = %+v", got)
	}
}

func TestLedgerSnapshotSorted(t *testing.T) {
	l := NewLedger()
	l.Record("/z.html", "c", at(0))
	l.Record("/a.html", "c", at(0))
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Doc != "/a.html" {
		t.Fatalf("Snapshot = %+v", snap)
	}
}

func TestLedgerRecordOverwrites(t *testing.T) {
	l := NewLedger()
	l.Record("/d.html", "c1:80", at(0))
	l.Record("/d.html", "c2:80", at(50))
	mig, _ := l.Get("/d.html")
	if mig.Coop != "c2:80" || !mig.At.Equal(at(50)) {
		t.Fatalf("overwrite failed: %+v", mig)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", l.Len())
	}
}
