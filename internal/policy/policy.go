// Package policy implements the migration decision machinery of §4: the
// document-selection procedure of Algorithm 1, the migration rate gates
// from the experimental configuration (Table 1), and the ledger that tracks
// outstanding migrations for re-migration and revocation (§4.5).
package policy

import (
	"sort"
	"sync"
	"time"
)

// Candidate is one document as seen by Algorithm 1. It is derived from an
// LDG tuple by the statistics module.
type Candidate struct {
	// Name is the document path.
	Name string
	// Load is the document's hit count over the current measurement
	// window (the Hits value Algorithm 1 thresholds on).
	Load int64
	// EntryPoint marks well-known entry points, excluded in step 2.
	EntryPoint bool
	// Migrated marks documents already hosted by a co-op server; they are
	// not candidates for another migration from the home server.
	Migrated bool
	// RemoteLinkFrom counts LinkFrom documents that do not reside on the
	// home server (minimized in step 4).
	RemoteLinkFrom int
	// LinkTo counts outgoing links (tie-break minimized in step 5).
	LinkTo int
}

// SelectForMigration implements Algorithm 1 (Figure 4). Given the candidate
// view of a home server's local document graph and the load threshold T, it
// returns the document to migrate, or ok=false when no document should move.
//
// Following the paper: step 2 removes well-known entry points; step 3
// removes documents below the threshold, halving the threshold and
// retrying if that empties the set; step 4 keeps the documents with the
// fewest remote LinkFrom references; step 5 breaks ties by fewest LinkTo
// links. A final tie is broken by name so the procedure is deterministic.
//
// One guard beyond the paper's text: if every remaining document has zero
// load even at the minimum threshold, nothing is selected — migrating a
// document that receives no hits "does not do much good for load
// balancing" (§4.1).
func SelectForMigration(docs []Candidate, threshold int64) (string, bool) {
	// Step 1: candidate set = all local documents.
	c := make([]Candidate, 0, len(docs))
	for _, d := range docs {
		if d.Migrated {
			continue
		}
		c = append(c, d)
	}
	// Step 2: remove well-known entry points.
	c = filter(c, func(d Candidate) bool { return !d.EntryPoint })
	if len(c) == 0 {
		return "", false
	}
	// Step 3: threshold on load, reducing T until non-empty.
	t := threshold
	if t < 1 {
		t = 1
	}
	for {
		kept := filter(c, func(d Candidate) bool { return d.Load >= t })
		if len(kept) > 0 {
			c = kept
			break
		}
		if t <= 1 {
			// Every candidate has zero load; nothing worth migrating.
			return "", false
		}
		t /= 2
	}
	// Step 4: minimal number of remote LinkFrom documents.
	minRemote := c[0].RemoteLinkFrom
	for _, d := range c[1:] {
		if d.RemoteLinkFrom < minRemote {
			minRemote = d.RemoteLinkFrom
		}
	}
	c = filter(c, func(d Candidate) bool { return d.RemoteLinkFrom == minRemote })
	// Step 5: minimal number of LinkTo documents; then highest load, then
	// name, for determinism.
	sort.Slice(c, func(i, j int) bool {
		if c[i].LinkTo != c[j].LinkTo {
			return c[i].LinkTo < c[j].LinkTo
		}
		if c[i].Load != c[j].Load {
			return c[i].Load > c[j].Load
		}
		return c[i].Name < c[j].Name
	})
	return c[0].Name, true
}

func filter(in []Candidate, keep func(Candidate) bool) []Candidate {
	out := make([]Candidate, 0, len(in))
	for _, d := range in {
		if keep(d) {
			out = append(out, d)
		}
	}
	return out
}

// RateGate enforces the migration pacing of Table 1: a home server migrates
// at most one file per HomeInterval, and no single co-op server accepts
// more than one migrated file per CoopInterval ("necessary to avoid
// overloading a co-op server by migrating documents too quickly, before it
// has a chance to adjust and recalculate its load statistics", §5.2).
type RateGate struct {
	// HomeInterval is the minimum spacing between migrations out of this
	// home server (paper setting: 10 s).
	HomeInterval time.Duration
	// CoopInterval is the minimum spacing between migrations into any one
	// co-op server (paper setting: 60 s).
	CoopInterval time.Duration

	mu          sync.Mutex
	lastHome    time.Time
	lastCoop    map[string]time.Time
	homeEverSet bool
}

// NewRateGate returns a gate with the given intervals.
func NewRateGate(home, coop time.Duration) *RateGate {
	return &RateGate{
		HomeInterval: home,
		CoopInterval: coop,
		lastCoop:     make(map[string]time.Time),
	}
}

// Allow reports whether a migration to coop may proceed at time now, and
// records it if allowed.
func (r *RateGate) Allow(coop string, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.homeEverSet && now.Sub(r.lastHome) < r.HomeInterval {
		return false
	}
	if last, ok := r.lastCoop[coop]; ok && now.Sub(last) < r.CoopInterval {
		return false
	}
	r.lastHome = now
	r.homeEverSet = true
	r.lastCoop[coop] = now
	return true
}

// Eligible reports, without recording anything, whether coop could accept a
// migration at time now. Used to pre-filter co-op choices.
func (r *RateGate) Eligible(coop string, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.homeEverSet && now.Sub(r.lastHome) < r.HomeInterval {
		return false
	}
	last, ok := r.lastCoop[coop]
	return !ok || now.Sub(last) >= r.CoopInterval
}

// Migration is one outstanding document migration tracked by the home
// server.
type Migration struct {
	Doc  string
	Coop string
	At   time.Time
}

// Ledger records outstanding migrations so the home server can re-migrate
// a document after T_home (§4.5 case 2) and recall everything hosted by a
// crashed co-op server (§4.5 case 3).
type Ledger struct {
	mu sync.Mutex
	m  map[string]Migration
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{m: make(map[string]Migration)}
}

// Record notes that doc migrated to coop at time at.
func (l *Ledger) Record(doc, coop string, at time.Time) {
	l.mu.Lock()
	l.m[doc] = Migration{Doc: doc, Coop: coop, At: at}
	l.mu.Unlock()
}

// Forget removes doc from the ledger (after revocation).
func (l *Ledger) Forget(doc string) {
	l.mu.Lock()
	delete(l.m, doc)
	l.mu.Unlock()
}

// Get returns the outstanding migration for doc, if any.
func (l *Ledger) Get(doc string) (Migration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	mig, ok := l.m[doc]
	return mig, ok
}

// Expired returns migrations older than maxAge as of now — documents the
// home server may abandon and re-migrate elsewhere.
func (l *Ledger) Expired(now time.Time, maxAge time.Duration) []Migration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Migration
	for _, mig := range l.m {
		if now.Sub(mig.At) > maxAge {
			out = append(out, mig)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// HostedBy returns every document currently migrated to coop, for crash
// recovery recalls.
func (l *Ledger) HostedBy(coop string) []Migration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Migration
	for _, mig := range l.m {
		if mig.Coop == coop {
			out = append(out, mig)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// Len reports the number of outstanding migrations.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// Snapshot returns all outstanding migrations sorted by document name.
func (l *Ledger) Snapshot() []Migration {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Migration, 0, len(l.m))
	for _, mig := range l.m {
		out = append(out, mig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}
