package experiments

import (
	"fmt"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/sim"
)

// Federation quantifies the scenario of the paper's introduction and
// conclusion: independent departmental servers that "integrate ... to
// build a federated web server". Four departments each home their own
// site; a load skew (admissions season at the first department) is swept,
// and the steady-state throughput of the cooperating federation is
// compared against the same four servers running in isolation. Without
// cooperation the busy department saturates while its peers idle; DCWS
// migrates its hot documents onto them.
func Federation(quick bool) *Report {
	skews := []float64{0.25, 0.50, 0.70, 0.90}
	dur := 6 * time.Minute
	clients := 240
	if quick {
		skews = []float64{0.25, 0.70}
		dur = 3 * time.Minute
		clients = 160
	}
	r := &Report{
		Title: "Federation: 4 departmental servers, load skewed toward dept 1",
		Header: []string{"skew", "isolated CPS", "cooperating CPS", "gain",
			"migrations", "dept1 share"},
	}
	for _, skew := range skews {
		iso := runFederation(skew, true, clients, dur)
		coop := runFederation(skew, false, clients, dur)
		isoCPS := steadyCPS(iso)
		coopCPS := steadyCPS(coop)
		share := float64(coop.PerServer["server01:80"]) / float64(totalConns(coop))
		r.AddRow(
			fmt.Sprintf("%.0f%%", skew*100),
			f0(isoCPS), f0(coopCPS),
			fmt.Sprintf("%.2fx", coopCPS/isoCPS),
			fmt.Sprint(coop.Migrations),
			fmt.Sprintf("%.0f%%", share*100),
		)
	}
	r.Notes = append(r.Notes,
		"isolated = the same servers with migration disabled (each department alone)",
		"at 25% skew load is already uniform, so cooperation has nothing to move;",
		"as the skew grows, migration converts idle peer capacity into throughput (§1, §6)")
	return r
}

func runFederation(skew float64, isolated bool, clients int, dur time.Duration) *sim.Result {
	res, err := sim.Run(sim.Config{
		Sites: []*dataset.Site{
			dataset.LOD(), dataset.LOD(), dataset.LOD(), dataset.LOD(),
		},
		Servers:       4,
		Clients:       clients,
		SkewFirst:     skew,
		NoCooperation: isolated,
		Duration:      dur,
		Params:        peakParams(),
		Seed:          1999,
	})
	if err != nil {
		panic(err)
	}
	return res
}

// steadyCPS is the mean of the last half of the CPS samples.
func steadyCPS(res *sim.Result) float64 {
	s := res.CPS.Samples()
	if len(s) == 0 {
		return 0
	}
	n := len(s) / 2
	var sum float64
	for _, p := range s[n:] {
		sum += p.Value
	}
	return sum / float64(len(s)-n)
}

func totalConns(res *sim.Result) int64 {
	var t int64
	for _, n := range res.PerServer {
		t += n
	}
	if t == 0 {
		return 1
	}
	return t
}
