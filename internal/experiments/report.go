// Package experiments regenerates every table and figure of the paper's
// evaluation (§5), plus the ablations called out in DESIGN.md. Each driver
// returns a Report that prints the same rows/series the paper plots;
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"
)

// Report is one table of results with a title and footnotes.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Format renders the report as an aligned text table.
func (r *Report) Format() string {
	var b strings.Builder
	b.WriteString(r.Title)
	b.WriteString("\n")
	b.WriteString(strings.Repeat("=", len(r.Title)))
	b.WriteString("\n")
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f0 formats a float with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// mb formats bytes/second as MB/s with one decimal.
func mb(v float64) string { return fmt.Sprintf("%.1f", v/1e6) }
