package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(r.Rows))
	}
	// Every implementation value must correspond to the paper value.
	expect := map[string]string{
		"Number of worker threads (N_wk)":                    "12",
		"Socket queue length (L_sq)":                         "100",
		"Statistics re-calculation interval (T_st)":          "10s",
		"Pinger activation interval (T_pi)":                  "20s",
		"Co-op validation interval (T_val)":                  "2m0s",
		"Home re-migration interval (T_home)":                "5m0s",
		"Min time between migrations to same co-op (T_coop)": "1m0s",
	}
	for _, row := range r.Rows {
		if want, ok := expect[row[0]]; ok && row[2] != want {
			t.Errorf("%s = %s, want %s", row[0], row[2], want)
		}
	}
}

func TestReportFormat(t *testing.T) {
	r := &Report{
		Title:  "T",
		Header: []string{"a", "bb"},
		Notes:  []string{"hello"},
	}
	r.AddRow("1", "2")
	out := r.Format()
	for _, want := range []string{"T\n=", "a", "bb", "1", "2", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
}

// cell parses a numeric report cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig6QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	bps, cps := Fig6(true)
	if len(cps.Rows) == 0 || len(bps.Rows) == 0 {
		t.Fatal("empty reports")
	}
	// More servers must never hurt at the highest client count; at the
	// saturating client count 4 servers must clearly beat 1.
	last := cps.Rows[len(cps.Rows)-1]
	one := cell(t, last[1])
	four := cell(t, last[2])
	if four < 1.8*one {
		t.Fatalf("no scaling at 240 clients: 1srv=%v 4srv=%v", one, four)
	}
	// Throughput grows with client count for the 4-server column until
	// saturation (first row << last row).
	first := cell(t, cps.Rows[0][2])
	if four < 1.5*first {
		t.Fatalf("no growth with clients: 16cl=%v 240cl=%v", first, four)
	}
}

func TestFig7QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	bps, cps := Fig7(true)
	// BPS ordering at any server count: Sequoia > SBLog > MAPUG > LOD.
	for _, row := range bps.Rows {
		mapug, sblog, lod, seq := cell(t, row[1]), cell(t, row[2]), cell(t, row[3]), cell(t, row[4])
		if !(seq > sblog && sblog > mapug && mapug > lod) {
			t.Fatalf("BPS ordering violated in row %v", row)
		}
	}
	// CPS ordering reversed: LOD highest, Sequoia lowest.
	for _, row := range cps.Rows {
		mapug, sblog, lod, seq := cell(t, row[1]), cell(t, row[2]), cell(t, row[3]), cell(t, row[4])
		if !(lod > mapug && mapug > seq && sblog > seq) {
			t.Fatalf("CPS ordering violated in row %v", row)
		}
	}
}

func TestFig8QuickWarmsUp(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := Fig8(true)
	if len(r.Rows) < 10 {
		t.Fatalf("too few samples: %d", len(r.Rows))
	}
	early := cell(t, r.Rows[1][1])
	late := cell(t, r.Rows[len(r.Rows)-1][1])
	if late < 1.3*early {
		t.Fatalf("no warm-up: early %v, late %v", early, late)
	}
}

func TestOverheadReport(t *testing.T) {
	r := Overhead()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Average synthetic MAPUG doc size should be near the paper's 6.5 KB
	// ... for its own corpus; ours is ~4 KB by the published MAPUG stats.
	avg := cell(t, r.Rows[0][2])
	if avg < 2 || avg > 10 {
		t.Fatalf("avg doc size = %v KB", avg)
	}
	parse := cell(t, r.Rows[1][2])
	recon := cell(t, r.Rows[2][2])
	if parse <= 0 || recon <= 0 {
		t.Fatal("non-positive timings")
	}
	// Reconstruction does strictly more work than parsing; allow timing
	// noise (our renderer reuses raw token bytes, so the two are close —
	// far below the paper's 6.7x ratio).
	if recon < 0.8*parse {
		t.Fatalf("reconstruction (%v ms) implausibly faster than parsing (%v ms)", recon, parse)
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := Ablations(true)
	byLabel := map[string][]string{}
	for _, row := range r.Rows {
		byLabel[row[0]+"/"+row[1]] = row
	}
	// Replication on must beat replication off on the hot-image workload.
	off := cell(t, byLabel["hot-image/replication=off/8"][2])
	on := cell(t, byLabel["hot-image/replication=on/8"][2])
	if on <= off {
		t.Fatalf("replication peak %v <= baseline %v", on, off)
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := Table2(true)
	if len(r.Rows) != 15 {
		t.Fatalf("rows = %d, want 5 params x 3 settings", len(r.Rows))
	}
	// Find the T_st rows: low T_st must migrate at least as much as high
	// T_st (more frequent recalculation => more migration opportunities).
	var lowMig, highMig float64
	for _, row := range r.Rows {
		if row[0] == "T_st" && row[1] == "low" {
			lowMig = cell(t, row[5])
		}
		if row[0] == "T_st" && row[1] == "high" {
			highMig = cell(t, row[5])
		}
	}
	if lowMig < highMig {
		t.Fatalf("low T_st migrated less (%v) than high T_st (%v)", lowMig, highMig)
	}
}

func TestLatencyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := Latency(true)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Peak CPS grows from under-load to saturation; latency at the highest
	// load exceeds latency at the lowest.
	lowCPS := cell(t, r.Rows[0][1])
	highCPS := cell(t, r.Rows[len(r.Rows)-1][1])
	if highCPS <= lowCPS {
		t.Fatalf("CPS did not grow with clients: %v -> %v", lowCPS, highCPS)
	}
	lowLat, err1 := time.ParseDuration(r.Rows[0][2])
	highLat, err2 := time.ParseDuration(r.Rows[len(r.Rows)-1][2])
	if err1 != nil || err2 != nil {
		t.Fatalf("latency cells not durations: %v %v", err1, err2)
	}
	if highLat <= lowLat {
		t.Fatalf("latency did not rise under saturation: %v -> %v", lowLat, highLat)
	}
}

func TestFederationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := Federation(true)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At high skew the cooperative gain must clearly exceed the uniform
	// case's gain.
	lowGain := cell(t, strings.TrimSuffix(r.Rows[0][3], "x"))
	highGain := cell(t, strings.TrimSuffix(r.Rows[1][3], "x"))
	if highGain <= lowGain {
		t.Fatalf("gain did not grow with skew: %.2f -> %.2f", lowGain, highGain)
	}
	if highGain < 1.2 {
		t.Fatalf("cooperation gain at 70%% skew only %.2fx", highGain)
	}
}
