package experiments

import (
	"fmt"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/sim"
)

// Latency measures the third canonical metric the paper names but declines
// to measure (§5.3: round-trip time "is difficult to measure for an
// operational web server") — the simulator sees every edge, so it is
// straightforward here. The table shows client-observed request latency
// versus offered load for a fixed server group: flat at low load, then
// queueing and 503-backoff dominate past the knee, while served CPS
// plateaus — the mechanism behind Figure 6's stable post-peak throughput.
func Latency(quick bool) *Report {
	servers := 4
	clientCounts := []int{16, 48, 96, 176, 304, 400}
	dur := 60 * time.Second
	if quick {
		clientCounts = []int{16, 96, 304}
		dur = 30 * time.Second
	}
	r := &Report{
		Title:  fmt.Sprintf("Extension: request latency vs offered load (LOD, %d servers)", servers),
		Header: []string{"clients", "peak CPS", "mean", "p50", "p95", "max"},
	}
	site := dataset.LOD()
	for _, nc := range clientCounts {
		res, err := sim.Run(sim.Config{
			Site:      site,
			Servers:   servers,
			Clients:   nc,
			Duration:  dur,
			Params:    peakParams(),
			Seed:      1999,
			WarmStart: true,
		})
		if err != nil {
			panic(err)
		}
		r.AddRow(fmt.Sprint(nc), f0(res.PeakCPS),
			res.Latency.Mean().Round(time.Millisecond).String(),
			res.Latency.Quantile(0.5).Round(time.Millisecond).String(),
			res.Latency.Quantile(0.95).Round(time.Millisecond).String(),
			res.Latency.Max().Round(time.Millisecond).String())
	}
	r.Notes = append(r.Notes,
		"latency includes queueing, redirect hops, and exponential 503 backoff",
		"the paper reports only CPS and BPS; this extension completes the triad of §5.3")
	return r
}
