package experiments

import (
	"fmt"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/dcws"
	"dcws/internal/sim"
)

// peakParams shortens the balancing intervals for peak-load measurements so
// warm-start runs settle within the measurement window; the paper's peak
// figures are steady-state numbers.
func peakParams() dcws.Params {
	return dcws.Params{
		StatsInterval:       2 * time.Second,
		PingerInterval:      4 * time.Second,
		ValidateInterval:    30 * time.Second,
		CoopMigrateInterval: 4 * time.Second,
		MigrationThreshold:  1,
	}
}

// peakRun measures peak CPS/BPS for one configuration (warm-started).
func peakRun(site *dataset.Site, servers, clients int, dur time.Duration) *sim.Result {
	res, err := sim.Run(sim.Config{
		Site:      site,
		Servers:   servers,
		Clients:   clients,
		Duration:  dur,
		Params:    peakParams(),
		Seed:      1999,
		WarmStart: true,
	})
	if err != nil {
		panic(err) // configs are static; failure is a programming error
	}
	return res
}

// Table1 reports the server parameter settings (configuration, not a
// measurement): it shows that DefaultParams reproduces the paper's Table 1.
func Table1() *Report {
	p := dcws.DefaultParams()
	r := &Report{
		Title:  "Table 1: Setting of server parameters",
		Header: []string{"Description", "Paper", "This implementation"},
	}
	r.AddRow("Number of front-end threads (N_fe)", "1", "1")
	r.AddRow("Number of pinger threads (N_pi)", "1", "1")
	r.AddRow("Number of worker threads (N_wk)", "12", fmt.Sprint(p.Workers))
	r.AddRow("Socket queue length (L_sq)", "100", fmt.Sprint(p.QueueLength))
	r.AddRow("Statistics re-calculation interval (T_st)", "10 s", p.StatsInterval.String())
	r.AddRow("Pinger activation interval (T_pi)", "20 s", p.PingerInterval.String())
	r.AddRow("Co-op validation interval (T_val)", "120 s", p.ValidateInterval.String())
	r.AddRow("Home re-migration interval (T_home)", "300 s", p.HomeReMigrateInterval.String())
	r.AddRow("Min time between migrations to same co-op (T_coop)", "60 s", p.CoopMigrateInterval.String())
	return r
}

// Fig6 reproduces Figure 6: BPS and CPS versus the number of concurrent
// clients for 1-16 servers on the LOD data set. quick mode trims the sweep
// for use inside go test benchmarks.
func Fig6(quick bool) (bps, cps *Report) {
	serverCounts := []int{1, 2, 4, 8, 16}
	clientCounts := []int{16, 48, 96, 176, 240, 304, 368, 400}
	dur := 60 * time.Second
	if quick {
		serverCounts = []int{1, 4}
		clientCounts = []int{16, 96, 240}
		dur = 30 * time.Second
	}
	bps = &Report{Title: "Figure 6(a): LOD throughput (MB/s) vs concurrent clients"}
	cps = &Report{Title: "Figure 6(b): LOD connections/s vs concurrent clients"}
	header := []string{"clients"}
	for _, s := range serverCounts {
		header = append(header, fmt.Sprintf("%d srv", s))
	}
	bps.Header = header
	cps.Header = header
	site := dataset.LOD()
	for _, nc := range clientCounts {
		bRow := []string{fmt.Sprint(nc)}
		cRow := []string{fmt.Sprint(nc)}
		for _, ns := range serverCounts {
			res := peakRun(site, ns, nc, dur)
			bRow = append(bRow, mb(res.PeakBPS))
			cRow = append(cRow, f0(res.PeakCPS))
		}
		bps.AddRow(bRow...)
		cps.AddRow(cRow...)
	}
	note := "paper: rises ~linearly with clients, then plateaus at the server-count capacity; " +
		"peaks ~18.6 MB/s & 7150 CPS at 8 servers, ~39.4 MB/s & 15150 CPS at 16"
	bps.Notes = append(bps.Notes, note)
	cps.Notes = append(cps.Notes, note)
	return bps, cps
}

// Fig7 reproduces Figure 7: peak BPS and CPS versus the number of servers
// for all four data sets — near-linear for LOD and Sequoia, sub-linear for
// SBLog and MAPUG whose hot images saturate whichever co-op hosts them.
func Fig7(quick bool) (bps, cps *Report) {
	serverCounts := []int{1, 2, 4, 8, 16}
	// Sequoia's 1-2.8 MB transfers need a longer window to reach steady
	// state than the page-oriented sets.
	dur := 90 * time.Second
	if quick {
		serverCounts = []int{1, 4}
		dur = 60 * time.Second
	}
	bps = &Report{Title: "Figure 7(a): peak throughput (MB/s) vs number of servers"}
	cps = &Report{Title: "Figure 7(b): peak connections/s vs number of servers"}
	header := []string{"servers", "MAPUG", "SBLog", "LOD", "Sequoia"}
	bps.Header = header
	cps.Header = header
	sites := []*dataset.Site{dataset.MAPUG(), dataset.SBLog(), dataset.LOD(), dataset.Sequoia()}
	for _, ns := range serverCounts {
		bRow := []string{fmt.Sprint(ns)}
		cRow := []string{fmt.Sprint(ns)}
		for _, site := range sites {
			// The paper sized its client pool to saturate each
			// configuration (§5.2). Page-oriented sets saturate with ~60
			// clients per server; Sequoia's multi-second transfers are
			// latency-bound and need a much deeper client pipeline.
			clients := 60 * ns
			if site.Name == "Sequoia" {
				clients = 200 * ns
			}
			if clients < 96 {
				clients = 96
			}
			res := peakRun(site, ns, clients, dur)
			bRow = append(bRow, mb(res.PeakBPS))
			cRow = append(cRow, f0(res.PeakCPS))
		}
		bps.AddRow(bRow...)
		cps.AddRow(cRow...)
	}
	bps.Notes = append(bps.Notes,
		"paper: BPS order Sequoia > SBLog > MAPUG > LOD (decreasing average document size)",
		"paper: LOD & Sequoia scale ~linearly to 16; SBLog & MAPUG go sub-linear (hot images)")
	cps.Notes = append(cps.Notes,
		"paper: CPS order is the reverse of BPS; SBLog 8->16 servers improved only ~5%")
	return bps, cps
}

// Fig8 reproduces Figure 8: CPS and BPS sampled every 10 seconds for 30
// minutes from a cold start (one home server holds everything, 15 co-ops
// empty), showing the exponential warm-up as documents migrate out.
func Fig8(quick bool) *Report {
	servers, clients := 16, 368
	dur := 30 * time.Minute
	sample := 10 * time.Second
	var params dcws.Params // Table 1 intervals exactly
	if quick {
		// Compress time five-fold for use inside tests/benches: intervals
		// and duration shrink together, preserving the curve's shape.
		servers, clients = 8, 176
		dur = 6 * time.Minute
		params = dcws.Params{
			StatsInterval:         2 * time.Second,
			PingerInterval:        4 * time.Second,
			ValidateInterval:      24 * time.Second,
			HomeReMigrateInterval: 60 * time.Second,
			CoopMigrateInterval:   12 * time.Second,
			MigrationThreshold:    1,
		}
		sample = 5 * time.Second
	}
	res, err := sim.Run(sim.Config{
		Site:        dataset.LOD(),
		Servers:     servers,
		Clients:     clients,
		Duration:    dur,
		SampleEvery: sample,
		Params:      params,
		Seed:        1999,
	})
	if err != nil {
		panic(err)
	}
	r := &Report{
		Title:  fmt.Sprintf("Figure 8: warm-up from cold start (%d servers, %d clients, LOD)", servers, clients),
		Header: []string{"t (s)", "CPS", "MB/s"},
	}
	cpsSamples := res.CPS.Samples()
	bpsSamples := res.BPS.Samples()
	// Print every third sample to keep the table readable.
	stride := 3
	if quick {
		stride = 1
	}
	start := cpsSamples[0].At.Add(-sample)
	for i := 0; i < len(cpsSamples); i += stride {
		r.AddRow(
			f0(cpsSamples[i].At.Sub(start).Seconds()),
			f0(cpsSamples[i].Value),
			mb(bpsSamples[i].Value),
		)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("migrations performed: %d; redirects followed: %d", res.Migrations, res.Redirects),
		"paper: performance grows slowly at first, then at a seemingly exponential rate as migrations compound")
	return r
}

// Table2 reproduces the parameter tuning trade-offs: each of the five
// interval parameters is run at a low, default, and high setting on a
// cold-start LOD system and the observable consequences recorded. The
// directions should match the qualitative claims of Table 2.
func Table2(quick bool) *Report {
	servers, clients := 8, 176
	dur := 6 * time.Minute
	if quick {
		servers, clients = 4, 96
		dur = 2 * time.Minute
	}
	type variant struct {
		name  string
		apply func(*dcws.Params, time.Duration)
		low   time.Duration
		high  time.Duration
		deflt time.Duration
	}
	base := dcws.DefaultParams()
	variants := []variant{
		{"T_st", func(p *dcws.Params, d time.Duration) { p.StatsInterval = d },
			2 * time.Second, 40 * time.Second, base.StatsInterval},
		{"T_pi", func(p *dcws.Params, d time.Duration) { p.PingerInterval = d },
			5 * time.Second, 80 * time.Second, base.PingerInterval},
		{"T_val", func(p *dcws.Params, d time.Duration) { p.ValidateInterval = d },
			30 * time.Second, 480 * time.Second, base.ValidateInterval},
		{"T_home", func(p *dcws.Params, d time.Duration) { p.HomeReMigrateInterval = d },
			60 * time.Second, 1200 * time.Second, base.HomeReMigrateInterval},
		{"T_coop", func(p *dcws.Params, d time.Duration) { p.CoopMigrateInterval = d },
			15 * time.Second, 240 * time.Second, base.CoopMigrateInterval},
	}
	r := &Report{
		Title: "Table 2: parameter tuning trade-offs (cold-start LOD)",
		Header: []string{"param", "setting", "value", "mean CPS", "peak CPS",
			"migrations", "fetch+valid", "drops"},
	}
	site := dataset.LOD()
	for _, v := range variants {
		for _, setting := range []struct {
			label string
			d     time.Duration
		}{{"low", v.low}, {"default", v.deflt}, {"high", v.high}} {
			p := dcws.DefaultParams()
			p.MigrationThreshold = 1
			v.apply(&p, setting.d)
			res, err := sim.Run(sim.Config{
				Site: site, Servers: servers, Clients: clients,
				Duration: dur, Params: p, Seed: 1999,
			})
			if err != nil {
				panic(err)
			}
			r.AddRow(v.name, setting.label, setting.d.String(),
				f0(res.CPS.Mean()), f0(res.PeakCPS),
				fmt.Sprint(res.Migrations), fmt.Sprint(res.Rebuilds),
				fmt.Sprint(res.Drops))
		}
	}
	r.Notes = append(r.Notes,
		"paper Table 2: higher T_st delays balancing; lower T_st adds migration/recalc overhead;",
		"higher T_val lowers consistency traffic; lower T_coop balances faster but risks over-migration")
	return r
}

// Ablations compares DCWS against the two related-work baselines and
// toggles the replication extension and the load-metric choice.
func Ablations(quick bool) *Report {
	serverCounts := []int{4, 8, 16}
	dur := 60 * time.Second
	if quick {
		serverCounts = []int{4}
		dur = 30 * time.Second
	}
	r := &Report{
		Title:  "Ablations: DCWS vs baselines, replication, load metric",
		Header: []string{"experiment", "servers", "peak CPS", "peak MB/s", "drops"},
	}
	lod := dataset.LOD()
	for _, ns := range serverCounts {
		clients := 30 * ns
		for _, mode := range []sim.Mode{sim.ModeDCWS, sim.ModeRRDNS, sim.ModeRouter} {
			res, err := sim.Run(sim.Config{
				Site: lod, Servers: ns, Clients: clients, Duration: dur,
				Params: peakParams(), Seed: 1999, Mode: mode,
				WarmStart: mode == sim.ModeDCWS,
			})
			if err != nil {
				panic(err)
			}
			r.AddRow("LOD/"+mode.String(), fmt.Sprint(ns),
				f0(res.PeakCPS), mb(res.PeakBPS), fmt.Sprint(res.Drops))
		}
	}
	// Replication extension on the hot-image workload.
	for _, replicate := range []bool{false, true} {
		p := peakParams()
		p.Replicate = replicate
		p.ReplicateThreshold = 50
		res, err := sim.Run(sim.Config{
			Site: dataset.HotImage(), Servers: 8, Clients: 400,
			Duration: 90 * time.Second, Params: p, Seed: 1999, WarmStart: true,
		})
		if err != nil {
			panic(err)
		}
		label := "hot-image/replication=off"
		if replicate {
			label = "hot-image/replication=on"
		}
		r.AddRow(label, "8", f0(res.PeakCPS), mb(res.PeakBPS), fmt.Sprint(res.Drops))
	}
	// CPS vs BPS balancing metric (§5.3: "in a system which uses
	// significantly larger file sizes ... BPS may be a better load
	// balancing metric"). The distinction needs size heterogeneity, so the
	// workload mixes many small pages with a few huge downloads; the
	// interesting outcome is the byte balance across servers, measured as
	// max/min bytes served.
	metricDur := 5 * time.Minute
	if quick {
		metricDur = 3 * time.Minute
	}
	for _, useBPS := range []bool{false, true} {
		p := peakParams()
		p.UseBPSMetric = useBPS
		res, err := sim.Run(sim.Config{
			Site: mixedSizeSite(), Servers: 8, Clients: 400,
			Duration: metricDur, Params: p, Seed: 1999,
		})
		if err != nil {
			panic(err)
		}
		label := "mixed-cold/metric=CPS"
		if useBPS {
			label = "mixed-cold/metric=BPS"
		}
		r.AddRow(label, "8", f0(res.PeakCPS), mb(res.PeakBPS),
			fmt.Sprintf("imbal %.1fx", byteImbalance(res)))
	}
	r.Notes = append(r.Notes,
		"DCWS should match or beat RR-DNS (which needs full replicas) and beat the router at scale",
		"replication=on should lift the hot-image peak; the BPS metric improves byte balance on size-mixed content (§5.3)")
	return r
}

// byteImbalance reports max/min bytes served across servers.
func byteImbalance(res *sim.Result) float64 {
	var min, max int64 = 1 << 62, 0
	for _, b := range res.PerServerBytes {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if min <= 0 {
		return float64(max)
	}
	return float64(max) / float64(min)
}

// mixedSizeSite mixes many small pages with a few very large downloads so
// the CPS and BPS load metrics rank servers differently.
func mixedSizeSite() *dataset.Site {
	var docs []dataset.Doc
	var idxLinks []dataset.Link
	for i := 0; i < 120; i++ {
		name := fmt.Sprintf("/pages/p%03d.html", i)
		links := []dataset.Link{
			{URL: fmt.Sprintf("/pages/p%03d.html", (i+1)%120)},
			{URL: "/index.html"},
		}
		if i%4 == 0 {
			links = append(links, dataset.Link{URL: fmt.Sprintf("/dl/big%02d.z", i/4)})
		}
		docs = append(docs, dataset.Doc{Name: name, Size: 4096, Links: links})
		idxLinks = append(idxLinks, dataset.Link{URL: name})
	}
	for i := 0; i < 30; i++ {
		docs = append(docs, dataset.Doc{Name: fmt.Sprintf("/dl/big%02d.z", i), Size: 2 << 20})
	}
	docs = append(docs, dataset.Doc{Name: "/index.html", Size: 4096, Links: idxLinks})
	return &dataset.Site{Name: "Mixed", Docs: docs, EntryPoints: []string{"/index.html"}}
}
