package experiments

import (
	"fmt"
	"time"

	"dcws/internal/dataset"
	"dcws/internal/graph"
	"dcws/internal/hypertext"
	"dcws/internal/store"
)

// Overhead reproduces the §5.3 parsing/reconstruction measurements: the
// paper reports ~3 ms to parse hyperlinks and ~20 ms to reconstruct an
// average 6.5 KB document on a Pentium-200. This driver materializes the
// MAPUG corpus (closest to that average size), measures the real parser on
// modern hardware, and reports per-document times — absolute numbers are
// far smaller on 2020s CPUs, the point is that reconstruction is a small
// constant multiple of parsing and both are negligible per request.
func Overhead() *Report {
	site := dataset.MAPUG()
	st := store.NewMem()
	if err := site.Materialize(st, 1.0); err != nil {
		panic(err)
	}
	names, _ := st.List()
	var htmlDocs []string
	var totalBytes int64
	for _, n := range names {
		if graph.IsHTML(n) {
			htmlDocs = append(htmlDocs, n)
			sz, _ := st.Size(n)
			totalBytes += sz
		}
	}
	// Parse-only pass.
	parseStart := time.Now()
	parsed := 0
	for _, n := range htmlDocs {
		data, _ := st.Get(n)
		hypertext.Parse(string(data)).LinkURLs()
		parsed++
	}
	parseElapsed := time.Since(parseStart)

	// Reconstruction pass: rewrite one link per document and re-render.
	reconStart := time.Now()
	recon := 0
	for _, n := range htmlDocs {
		data, _ := st.Get(n)
		doc := hypertext.Parse(string(data))
		urls := doc.LinkURLs()
		if len(urls) == 0 {
			continue
		}
		doc.Rewrite(map[string]string{urls[0]: "/~migrate/home/80" + urls[0]})
		_ = doc.Render()
		recon++
	}
	reconElapsed := time.Since(reconStart)

	avgSize := float64(totalBytes) / float64(len(htmlDocs)) / 1024
	r := &Report{
		Title:  "§5.3 overhead: document parsing and reconstruction",
		Header: []string{"measurement", "paper (P200)", "measured"},
	}
	r.AddRow("average HTML document size (KB)", "6.5",
		f1(avgSize))
	r.AddRow("parse hyperlinks, ms/doc", "3",
		fmt.Sprintf("%.3f", float64(parseElapsed.Microseconds())/float64(parsed)/1000))
	r.AddRow("reconstruct document, ms/doc", "20",
		fmt.Sprintf("%.3f", float64(reconElapsed.Microseconds())/float64(recon)/1000))
	r.AddRow("reconstruct / parse ratio", "6.7",
		f1(float64(reconElapsed)/float64(parseElapsed)))
	r.Notes = append(r.Notes,
		fmt.Sprintf("corpus: %d HTML documents from the synthetic MAPUG set", len(htmlDocs)),
		"absolute times shrink with CPU generation; the paper's conclusion — reconstruction does not dominate request service — holds a fortiori")
	return r
}
