package webclient

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/httpx"
	"dcws/internal/hypertext"
	"dcws/internal/memnet"
)

// miniSite serves a three-page site with images from a plain httpx server.
func miniSite(t *testing.T) (*memnet.Fabric, *int64) {
	t.Helper()
	pages := map[string]string{
		"/index.html": `<html><a href="/a.html">a</a><a href="/b.html">b</a></html>`,
		"/a.html":     `<html><img src="/i1.gif"><img src="/i2.gif"><a href="/b.html">b</a></html>`,
		"/b.html":     `<html><a href="/index.html">home</a></html>`,
		"/i1.gif":     "GIF8-one",
		"/i2.gif":     "GIF8-two",
	}
	var served int64
	fabric := memnet.NewFabric()
	l, err := fabric.Listen("site:80")
	if err != nil {
		t.Fatal(err)
	}
	srv := httpx.NewServer(httpx.ServerConfig{}, httpx.HandlerFunc(func(req *httpx.Request) *httpx.Response {
		atomic.AddInt64(&served, 1)
		body, ok := pages[req.Path]
		if !ok {
			resp := httpx.NewResponse(404)
			return resp
		}
		resp := httpx.NewResponse(200)
		resp.Header.Set("Content-Type", httpx.ContentTypeFor(req.Path))
		resp.Body = []byte(body)
		return resp
	}))
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return fabric, &served
}

func TestSequenceWalksSite(t *testing.T) {
	fabric, served := miniSite(t)
	stats := &Stats{}
	c, err := New(Config{
		Dialer:    httpx.DialerFunc(fabric.Dial),
		EntryURLs: []string{"http://site:80/index.html"},
		Seed:      42,
		Stats:     stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.RunSequence(nil)
	if stats.Sequences.Value() != 1 {
		t.Fatalf("sequences = %d", stats.Sequences.Value())
	}
	if stats.Connections.Value() == 0 {
		t.Fatal("no connections recorded")
	}
	if atomic.LoadInt64(served) == 0 {
		t.Fatal("server saw no requests")
	}
	if stats.Bytes.Value() == 0 {
		t.Fatal("no bytes recorded")
	}
}

func TestCacheSuppressesRefetchWithinSequence(t *testing.T) {
	fabric, _ := miniSite(t)
	stats := &Stats{}
	c, _ := New(Config{
		Dialer:    httpx.DialerFunc(fabric.Dial),
		EntryURLs: []string{"http://site:80/index.html"},
		Seed:      7,
		MaxSteps:  25,
		Stats:     stats,
	})
	// Long walk over a 3-page site: without a cache, connections would far
	// exceed the distinct document count (3 pages + 2 images).
	c.cache = make(map[string]cachedDoc)
	current := "http://site:80/index.html"
	for i := 0; i < 25; i++ {
		body, finalURL, ok := c.fetch(current, nil)
		if !ok {
			t.Fatal("fetch failed")
		}
		doc := parseDoc(body)
		c.fetchImages(finalURL, doc, nil)
		next, ok := c.pickLink(finalURL, doc)
		if !ok {
			break
		}
		current = next
	}
	if got := stats.Connections.Value(); got > 5 {
		t.Fatalf("connections = %d; cache not effective (site has 5 distinct docs)", got)
	}
}

func TestBackoffOn503(t *testing.T) {
	fabric := memnet.NewFabric()
	l, _ := fabric.Listen("busy:80")
	var mu sync.Mutex
	failures := 2
	srv := httpx.NewServer(httpx.ServerConfig{}, httpx.HandlerFunc(func(req *httpx.Request) *httpx.Response {
		mu.Lock()
		defer mu.Unlock()
		if failures > 0 {
			failures--
			return httpx.NewResponse(503)
		}
		resp := httpx.NewResponse(200)
		resp.Body = []byte("<html>finally</html>")
		return resp
	}))
	go srv.Serve(l)
	defer srv.Close()

	manual := clock.NewManual(time.Unix(0, 0))
	stats := &Stats{}
	c, _ := New(Config{
		Dialer:    httpx.DialerFunc(fabric.Dial),
		Clock:     manual,
		EntryURLs: []string{"http://busy:80/index.html"},
		Seed:      1,
		Stats:     stats,
	})
	done := make(chan struct{})
	go func() {
		body, _, ok := c.fetch("http://busy:80/index.html", nil)
		if !ok || !strings.Contains(string(body), "finally") {
			t.Errorf("fetch after backoff failed: %q, %v", body, ok)
		}
		close(done)
	}()
	// Two drops: 1s then 2s of backoff on the manual clock.
	waitWaiters(t, manual, 1)
	manual.Advance(time.Second)
	waitWaiters(t, manual, 1)
	manual.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fetch did not complete after backoff")
	}
	if stats.Drops.Value() != 2 {
		t.Fatalf("drops = %d, want 2", stats.Drops.Value())
	}
}

func waitWaiters(t *testing.T, m *clock.Manual, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never registered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRedirectFollowing(t *testing.T) {
	fabric := memnet.NewFabric()
	l, _ := fabric.Listen("redir:80")
	srv := httpx.NewServer(httpx.ServerConfig{}, httpx.HandlerFunc(func(req *httpx.Request) *httpx.Response {
		switch req.Path {
		case "/old.html":
			resp := httpx.NewResponse(301)
			resp.Header.Set("Location", "http://redir:80/new.html")
			return resp
		case "/new.html":
			resp := httpx.NewResponse(200)
			resp.Body = []byte("<html>new home</html>")
			return resp
		}
		return httpx.NewResponse(404)
	}))
	go srv.Serve(l)
	defer srv.Close()

	stats := &Stats{}
	c, _ := New(Config{
		Dialer:    httpx.DialerFunc(fabric.Dial),
		EntryURLs: []string{"http://redir:80/old.html"},
		Seed:      1,
		Stats:     stats,
	})
	body, finalURL, ok := c.fetch("http://redir:80/old.html", nil)
	if !ok || !strings.Contains(string(body), "new home") {
		t.Fatalf("fetch = %q, %v", body, ok)
	}
	if finalURL != "http://redir:80/new.html" {
		t.Fatalf("finalURL = %q", finalURL)
	}
	if stats.Redirects.Value() != 1 {
		t.Fatalf("redirects = %d", stats.Redirects.Value())
	}
}

func TestRedirectLoopAborts(t *testing.T) {
	fabric := memnet.NewFabric()
	l, _ := fabric.Listen("loop:80")
	srv := httpx.NewServer(httpx.ServerConfig{}, httpx.HandlerFunc(func(req *httpx.Request) *httpx.Response {
		resp := httpx.NewResponse(301)
		resp.Header.Set("Location", "http://loop:80"+req.Path)
		return resp
	}))
	go srv.Serve(l)
	defer srv.Close()
	stats := &Stats{}
	c, _ := New(Config{
		Dialer:    httpx.DialerFunc(fabric.Dial),
		EntryURLs: []string{"http://loop:80/x.html"},
		Seed:      1,
		Stats:     stats,
	})
	if _, _, ok := c.fetch("http://loop:80/x.html", nil); ok {
		t.Fatal("redirect loop did not abort")
	}
	if stats.Errors.Value() == 0 {
		t.Fatal("loop abort not counted as error")
	}
}

func TestRunStopsOnSignal(t *testing.T) {
	fabric, _ := miniSite(t)
	stats := &Stats{}
	c, _ := New(Config{
		Dialer:    httpx.DialerFunc(fabric.Dial),
		EntryURLs: []string{"http://site:80/index.html"},
		Seed:      3,
		Stats:     stats,
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		c.Run(stop)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
	if stats.Sequences.Value() == 0 {
		t.Fatal("no sequences completed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without dialer succeeded")
	}
	fabric := memnet.NewFabric()
	if _, err := New(Config{Dialer: httpx.DialerFunc(fabric.Dial)}); err == nil {
		t.Fatal("New without entry URLs succeeded")
	}
}

func TestResolveAgainst(t *testing.T) {
	cases := []struct{ base, raw, want string }{
		{"http://h:80/a/b.html", "c.html", "http://h:80/a/c.html"},
		{"http://h:80/a/b.html", "/c.html", "http://h:80/c.html"},
		{"http://h:80/a.html", "http://x:81/y.html", "http://x:81/y.html"},
		{"http://h:80/a.html", "/~migrate/h/80/d.html", "http://h:80/~migrate/h/80/d.html"},
		{"http://h:80/a.html", "mailto:x@y", ""},
		{"http://h:80/a.html", "#frag", ""},
		{"http://h:80/a.html", "ftp://x/y", ""},
	}
	for _, c := range cases {
		if got := resolveAgainst(c.base, c.raw); got != c.want {
			t.Errorf("resolveAgainst(%q, %q) = %q, want %q", c.base, c.raw, got, c.want)
		}
	}
}

func TestAbsolutize(t *testing.T) {
	if got := absolutize("h:80", "/x.html"); got != "http://h:80/x.html" {
		t.Fatalf("absolutize = %q", got)
	}
	if got := absolutize("h:80", "http://other:81/y"); got != "http://other:81/y" {
		t.Fatalf("absolutize = %q", got)
	}
}

func TestThinkTimeExtension(t *testing.T) {
	fabric, _ := miniSite(t)
	manual := clock.NewManual(time.Unix(0, 0))
	stats := &Stats{}
	c, _ := New(Config{
		Dialer:    httpx.DialerFunc(fabric.Dial),
		Clock:     manual,
		EntryURLs: []string{"http://site:80/index.html"},
		Seed:      99, // chosen walk has >= 2 steps
		MaxSteps:  25,
		ThinkTime: 5 * time.Second,
		Stats:     stats,
	})
	done := make(chan struct{})
	go func() {
		c.RunSequence(nil)
		close(done)
	}()
	// The client must block on think time at least once.
	waitWaiters(t, manual, 1)
	for i := 0; i < 30; i++ {
		manual.Advance(5 * time.Second)
		select {
		case <-done:
			return
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	<-done
}

// parseDoc parses a fetched body the way RunSequence does.
func parseDoc(body []byte) *hypertext.Document { return hypertext.Parse(string(body)) }

func TestStatsString(t *testing.T) {
	s := &Stats{}
	s.Connections.Add(3)
	s.Drops.Inc()
	out := s.String()
	if !strings.Contains(out, "conns=3") || !strings.Contains(out, "drops=1") {
		t.Fatalf("String = %q", out)
	}
}

func TestImageFetchRedirectsAndDrops(t *testing.T) {
	// An image that first 503s, then 301s, then succeeds — exercising the
	// helper-thread path end to end.
	fabric := memnet.NewFabric()
	l, _ := fabric.Listen("img:80")
	var mu sync.Mutex
	step := 0
	srv := httpx.NewServer(httpx.ServerConfig{}, httpx.HandlerFunc(func(req *httpx.Request) *httpx.Response {
		switch req.Path {
		case "/page.html":
			resp := httpx.NewResponse(200)
			resp.Body = []byte(`<html><img src="/old.gif"></html>`)
			return resp
		case "/old.gif":
			mu.Lock()
			defer mu.Unlock()
			step++
			if step == 1 {
				return httpx.NewResponse(503)
			}
			resp := httpx.NewResponse(301)
			resp.Header.Set("Location", "http://img:80/new.gif")
			return resp
		case "/new.gif":
			resp := httpx.NewResponse(200)
			resp.Body = []byte("GIF8")
			return resp
		}
		return httpx.NewResponse(404)
	}))
	go srv.Serve(l)
	defer srv.Close()

	manual := clock.NewManual(time.Unix(0, 0))
	stats := &Stats{}
	c, _ := New(Config{
		Dialer:    httpx.DialerFunc(fabric.Dial),
		Clock:     manual,
		EntryURLs: []string{"http://img:80/page.html"},
		Seed:      1,
		MaxSteps:  1,
		Stats:     stats,
	})
	done := make(chan struct{})
	go func() {
		c.RunSequence(nil)
		close(done)
	}()
	waitWaiters(t, manual, 1) // image helper backing off on the 503
	manual.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sequence did not finish")
	}
	if stats.Drops.Value() != 1 {
		t.Fatalf("drops = %d", stats.Drops.Value())
	}
	if stats.Redirects.Value() != 1 {
		t.Fatalf("redirects = %d", stats.Redirects.Value())
	}
	// page + new.gif
	if stats.Connections.Value() != 2 {
		t.Fatalf("connections = %d", stats.Connections.Value())
	}
}
