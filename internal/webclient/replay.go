package webclient

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"dcws/internal/clock"
	"dcws/internal/httpx"
	"dcws/internal/naming"
)

// The paper's §6 notes that the evaluation did not use "actual access logs
// for the experiments" and leaves that as future work. Replayer implements
// it: it parses web server access logs in Common Log Format and replays the
// requests against a DCWS server group, following the 301 redirects that
// migration produces, optionally honoring the logged inter-request timing.

// LogEntry is one parsed access-log record.
type LogEntry struct {
	// Path is the requested document path.
	Path string
	// At is the request timestamp (zero if unparseable).
	At time.Time
}

// ParseCommonLog reads Common Log Format lines:
//
//	host ident user [02/Jan/2006:15:04:05 -0700] "GET /path HTTP/1.0" status bytes
//
// Lines that do not parse are skipped; err is only returned for read
// failures.
func ParseCommonLog(r io.Reader) ([]LogEntry, error) {
	var out []LogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		if e, ok := parseCommonLogLine(sc.Text()); ok {
			out = append(out, e)
		}
	}
	return out, sc.Err()
}

const commonLogTime = "02/Jan/2006:15:04:05 -0700"

func parseCommonLogLine(line string) (LogEntry, bool) {
	// Timestamp between '[' and ']'.
	var at time.Time
	if lb := strings.IndexByte(line, '['); lb >= 0 {
		if rb := strings.IndexByte(line[lb:], ']'); rb > 0 {
			if t, err := time.Parse(commonLogTime, line[lb+1:lb+rb]); err == nil {
				at = t
			}
		}
	}
	// Request between the first pair of double quotes.
	lq := strings.IndexByte(line, '"')
	if lq < 0 {
		return LogEntry{}, false
	}
	rq := strings.IndexByte(line[lq+1:], '"')
	if rq < 0 {
		return LogEntry{}, false
	}
	req := line[lq+1 : lq+1+rq]
	parts := strings.Fields(req)
	if len(parts) < 2 || parts[0] != "GET" && parts[0] != "HEAD" {
		return LogEntry{}, false
	}
	path := parts[1]
	if !strings.HasPrefix(path, "/") {
		return LogEntry{}, false
	}
	if i := strings.IndexAny(path, "?#"); i >= 0 {
		path = path[:i]
	}
	return LogEntry{Path: path, At: at}, true
}

// ReplayConfig configures a log replay.
type ReplayConfig struct {
	// Dialer connects to the servers.
	Dialer httpx.Dialer
	// BaseURL is the server the logged paths are requested from, e.g.
	// "http://home:80". Redirects to co-op servers are followed.
	BaseURL string
	// Clock paces timed replay and 503 backoff.
	Clock clock.Clock
	// Timed replays with the logged inter-request gaps (compressed by the
	// clock); false replays as fast as responses return.
	Timed bool
	// Stats receives measurements; required for shared accounting, else an
	// internal one is used.
	Stats *Stats
}

// Replayer replays access-log entries against a live server group.
type Replayer struct {
	cfg    ReplayConfig
	client *Client
}

// NewReplayer validates the configuration and builds a replayer.
func NewReplayer(cfg ReplayConfig) (*Replayer, error) {
	if cfg.Dialer == nil {
		return nil, fmt.Errorf("webclient: replay Dialer is required")
	}
	addr, _, err := naming.SplitURL(cfg.BaseURL)
	if err != nil || addr == "" {
		return nil, fmt.Errorf("webclient: replay BaseURL %q is not an absolute http URL", cfg.BaseURL)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Stats == nil {
		cfg.Stats = &Stats{}
	}
	c, err := New(Config{
		Dialer:    cfg.Dialer,
		Clock:     cfg.Clock,
		EntryURLs: []string{cfg.BaseURL},
		Stats:     cfg.Stats,
	})
	if err != nil {
		return nil, err
	}
	return &Replayer{cfg: cfg, client: c}, nil
}

// Replay issues every entry in order and reports how many succeeded. The
// client cache is bypassed — a log line means a request actually reached
// the server, so each entry is replayed as a real transfer.
func (r *Replayer) Replay(entries []LogEntry, stop <-chan struct{}) (succeeded int) {
	addr, _, _ := naming.SplitURL(r.cfg.BaseURL)
	var prev time.Time
	for _, e := range entries {
		select {
		case <-stop:
			return succeeded
		default:
		}
		if r.cfg.Timed && !prev.IsZero() && !e.At.IsZero() && e.At.After(prev) {
			r.cfg.Clock.Sleep(e.At.Sub(prev))
		}
		if !e.At.IsZero() {
			prev = e.At
		}
		r.client.ResetCache()
		if _, _, ok := r.client.Fetch("http://" + addr + e.Path); ok {
			succeeded++
		}
	}
	return succeeded
}

// Stats returns the replay measurements.
func (r *Replayer) Stats() *Stats { return r.cfg.Stats }
