package webclient

import (
	"strings"
	"testing"
	"time"

	"dcws/internal/clock"
	"dcws/internal/dataset"
	"dcws/internal/httpx"
	"dcws/internal/memnet"
	"dcws/internal/store"
)

const sampleLog = `10.0.0.1 - - [06/Jul/1998:10:00:00 -0700] "GET /index.html HTTP/1.0" 200 512
10.0.0.2 - - [06/Jul/1998:10:00:02 -0700] "GET /a.html HTTP/1.0" 200 312
bad line without quotes
10.0.0.3 - - [06/Jul/1998:10:00:03 -0700] "POST /form HTTP/1.0" 200 10
10.0.0.1 - - [06/Jul/1998:10:00:05 -0700] "GET /b.html?q=1 HTTP/1.0" 200 99
10.0.0.1 - - [broken ts] "GET /a.html HTTP/1.0" 304 0
10.0.0.9 - - [06/Jul/1998:10:00:09 -0700] "GET relative.html HTTP/1.0" 404 0
`

func TestParseCommonLog(t *testing.T) {
	entries, err := ParseCommonLog(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	// Valid GETs: /index.html, /a.html, /b.html (query stripped), /a.html
	// (broken timestamp but valid request).
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries: %+v", len(entries), entries)
	}
	if entries[0].Path != "/index.html" || entries[0].At.IsZero() {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[2].Path != "/b.html" {
		t.Fatalf("query string not stripped: %+v", entries[2])
	}
	if !entries[3].At.IsZero() {
		t.Fatalf("broken timestamp should parse as zero: %+v", entries[3])
	}
	gap := entries[1].At.Sub(entries[0].At)
	if gap != 2*time.Second {
		t.Fatalf("timestamp gap = %v", gap)
	}
}

func TestReplayAgainstServer(t *testing.T) {
	fabric, served := miniSite(t)
	stats := &Stats{}
	r, err := NewReplayer(ReplayConfig{
		Dialer:  httpx.DialerFunc(fabric.Dial),
		BaseURL: "http://site:80/index.html",
		Stats:   stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := []LogEntry{
		{Path: "/index.html"},
		{Path: "/a.html"},
		{Path: "/a.html"}, // repeated: replay bypasses the cache
		{Path: "/missing.html"},
	}
	ok := r.Replay(entries, nil)
	if ok != 3 {
		t.Fatalf("succeeded = %d, want 3", ok)
	}
	if got := r.Stats().Connections.Value(); got != 3 {
		t.Fatalf("connections = %d, want 3 (cache must be bypassed)", got)
	}
	if *served < 4 {
		t.Fatalf("server saw %d requests, want >= 4", *served)
	}
	if r.Stats().Errors.Value() != 1 {
		t.Fatalf("errors = %d (the 404)", r.Stats().Errors.Value())
	}
}

func TestReplayTimedHonorsGaps(t *testing.T) {
	fabric, _ := miniSite(t)
	manual := clock.NewManual(time.Unix(0, 0))
	r, err := NewReplayer(ReplayConfig{
		Dialer:  httpx.DialerFunc(fabric.Dial),
		BaseURL: "http://site:80/index.html",
		Clock:   manual,
		Timed:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(1998, 7, 6, 10, 0, 0, 0, time.UTC)
	entries := []LogEntry{
		{Path: "/index.html", At: base},
		{Path: "/a.html", At: base.Add(3 * time.Second)},
	}
	done := make(chan int, 1)
	go func() { done <- r.Replay(entries, nil) }()
	// The replayer must block on the 3 s gap until the clock advances.
	waitWaiters(t, manual, 1)
	select {
	case <-done:
		t.Fatal("replay finished without honoring the gap")
	default:
	}
	manual.Advance(3 * time.Second)
	select {
	case n := <-done:
		if n != 2 {
			t.Fatalf("succeeded = %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replay did not finish")
	}
}

func TestReplayStops(t *testing.T) {
	fabric, _ := miniSite(t)
	r, _ := NewReplayer(ReplayConfig{
		Dialer:  httpx.DialerFunc(fabric.Dial),
		BaseURL: "http://site:80/index.html",
	})
	stop := make(chan struct{})
	close(stop)
	entries := make([]LogEntry, 100)
	for i := range entries {
		entries[i] = LogEntry{Path: "/index.html"}
	}
	if n := r.Replay(entries, stop); n != 0 {
		t.Fatalf("replay ran %d entries after stop", n)
	}
}

func TestNewReplayerValidation(t *testing.T) {
	fabric := memnet.NewFabric()
	if _, err := NewReplayer(ReplayConfig{BaseURL: "http://x:80/"}); err == nil {
		t.Fatal("missing dialer accepted")
	}
	if _, err := NewReplayer(ReplayConfig{
		Dialer:  httpx.DialerFunc(fabric.Dial),
		BaseURL: "not-a-url",
	}); err == nil {
		t.Fatal("bad base URL accepted")
	}
}

func TestReplayFollowsMigrationRedirects(t *testing.T) {
	// A server that 301s /old.html to /new.html: the replayer must follow
	// and count a success, as browsers replaying old logs would.
	fabric := memnet.NewFabric()
	l, _ := fabric.Listen("r:80")
	srv := httpx.NewServer(httpx.ServerConfig{}, httpx.HandlerFunc(func(req *httpx.Request) *httpx.Response {
		if req.Path == "/old.html" {
			resp := httpx.NewResponse(301)
			resp.Header.Set("Location", "http://r:80/new.html")
			return resp
		}
		resp := httpx.NewResponse(200)
		resp.Body = []byte("<html>n</html>")
		return resp
	}))
	go srv.Serve(l)
	defer srv.Close()
	r, err := NewReplayer(ReplayConfig{
		Dialer:  httpx.DialerFunc(fabric.Dial),
		BaseURL: "http://r:80/",
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Replay([]LogEntry{{Path: "/old.html"}}, nil); n != 1 {
		t.Fatalf("redirected replay failed: %d", n)
	}
	if r.Stats().Redirects.Value() != 1 {
		t.Fatalf("redirects = %d", r.Stats().Redirects.Value())
	}
}

func TestSynthesizeLogRoundTrip(t *testing.T) {
	site := dataset.LOD()
	start := time.Date(1998, 7, 6, 10, 0, 0, 0, time.UTC)
	entries := SynthesizeLog(site, 200, 7, start, time.Second)
	if len(entries) != 200 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Every path exists in the data set and timestamps advance uniformly.
	valid := map[string]bool{}
	for i := range site.Docs {
		valid[site.Docs[i].Name] = true
	}
	for i, e := range entries {
		if !valid[e.Path] {
			t.Fatalf("entry %d references unknown path %q", i, e.Path)
		}
		if want := start.Add(time.Duration(i) * time.Second); !e.At.Equal(want) {
			t.Fatalf("entry %d at %v, want %v", i, e.At, want)
		}
	}
	// The first request of the log is an entry point.
	if entries[0].Path != "/index.html" {
		t.Fatalf("log starts at %q", entries[0].Path)
	}
	// Write -> parse round trip.
	var buf strings.Builder
	if err := WriteCommonLog(&buf, entries, "192.168.0.1"); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCommonLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(entries) {
		t.Fatalf("parsed %d of %d", len(parsed), len(entries))
	}
	for i := range parsed {
		if parsed[i].Path != entries[i].Path || !parsed[i].At.Equal(entries[i].At) {
			t.Fatalf("entry %d round trip: %+v vs %+v", i, parsed[i], entries[i])
		}
	}
}

func TestSynthesizeLogDeterministic(t *testing.T) {
	site := dataset.MAPUG()
	start := time.Unix(0, 0)
	a := SynthesizeLog(site, 100, 3, start, time.Second)
	b := SynthesizeLog(site, 100, 3, start, time.Second)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestSynthesizeLogEdgeCases(t *testing.T) {
	if SynthesizeLog(nil, 10, 1, time.Unix(0, 0), time.Second) != nil {
		t.Fatal("nil site produced entries")
	}
	if SynthesizeLog(dataset.LOD(), 0, 1, time.Unix(0, 0), time.Second) != nil {
		t.Fatal("zero requests produced entries")
	}
}

func TestSynthesizedLogReplaysAgainstLiveServer(t *testing.T) {
	// End-to-end: generate a log from the LOD spec, materialize the same
	// site on a live server, and replay the log against it.
	site := dataset.LOD()
	fabric := memnet.NewFabric()
	l, err := fabric.Listen("live:80")
	if err != nil {
		t.Fatal(err)
	}
	pages := map[string][]byte{}
	{
		st := newMaterialized(t, site)
		names, _ := st.List()
		for _, n := range names {
			data, _ := st.Get(n)
			pages[n] = data
		}
	}
	srv := httpx.NewServer(httpx.ServerConfig{}, httpx.HandlerFunc(func(req *httpx.Request) *httpx.Response {
		body, ok := pages[req.Path]
		if !ok {
			return httpx.NewResponse(404)
		}
		resp := httpx.NewResponse(200)
		resp.Body = body
		return resp
	}))
	go srv.Serve(l)
	defer srv.Close()

	entries := SynthesizeLog(site, 150, 11, time.Unix(0, 0), 0)
	r, err := NewReplayer(ReplayConfig{
		Dialer:  httpx.DialerFunc(fabric.Dial),
		BaseURL: "http://live:80/index.html",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok := r.Replay(entries, nil); ok != 150 {
		t.Fatalf("replayed %d/150; errors: %s", ok, r.Stats())
	}
}

// newMaterialized materializes a site into a fresh store.
func newMaterialized(t *testing.T, site *dataset.Site) store.Store {
	t.Helper()
	st := store.NewMem()
	if err := site.Materialize(st, 1.0); err != nil {
		t.Fatal(err)
	}
	return st
}
