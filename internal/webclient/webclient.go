// Package webclient implements the custom client benchmark of §5.2
// (Algorithm 2). Conventional benchmarks request documents without regard
// to the hyperlinks inside them; DCWS rewrites those hyperlinks, so the
// benchmark must navigate the link structure the servers produce:
//
//	do forever:
//	    reset cache
//	    current <- a randomly selected well-known entry point
//	    for i = 1 .. random(1..25):
//	        request current (unless cached)
//	        request all embedded images in parallel (helper threads)
//	        parse the document, select a new link
//	        current <- the link
//
// A per-sequence client-side cache models browser caching (reducing image
// hot spots and increasing stale-link redirections), four helper goroutines
// model browser image parallelism, and 503 drops trigger exponential
// backoff, all as specified in the paper.
package webclient

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"dcws/internal/clock"
	"dcws/internal/graph"
	"dcws/internal/httpx"
	"dcws/internal/hypertext"
	"dcws/internal/metrics"
	"dcws/internal/naming"
)

// Stats aggregates benchmark-side measurements, shared by any number of
// concurrent clients.
type Stats struct {
	Connections metrics.Counter // successful document/image transfers
	Bytes       metrics.Counter // body bytes received
	Drops       metrics.Counter // 503 responses
	Redirects   metrics.Counter // 301/302 hops followed
	Errors      metrics.Counter // transport failures
	Sequences   metrics.Counter // completed access sequences
}

// String summarizes the counters.
func (s *Stats) String() string {
	return fmt.Sprintf("conns=%d bytes=%d drops=%d redirects=%d errors=%d sequences=%d",
		s.Connections.Value(), s.Bytes.Value(), s.Drops.Value(),
		s.Redirects.Value(), s.Errors.Value(), s.Sequences.Value())
}

// Config configures one simulated client.
type Config struct {
	// Dialer connects to servers (TCP or the in-memory fabric).
	Dialer httpx.Dialer
	// Clock paces backoff and think time.
	Clock clock.Clock
	// EntryURLs are the absolute well-known entry point URLs
	// ("http://host:port/index.html").
	EntryURLs []string
	// Seed makes the random walk reproducible.
	Seed int64
	// MaxSteps bounds a sequence's length: each sequence performs
	// random(1..MaxSteps) navigation steps (paper: 25).
	MaxSteps int
	// ImageHelpers is the number of parallel image-fetching goroutines
	// (paper: 4).
	ImageHelpers int
	// ThinkTime, when non-zero, inserts a pause between navigation steps —
	// the user think time extension discussed in §6.
	ThinkTime time.Duration
	// MaxBackoff caps the exponential 503 backoff.
	MaxBackoff time.Duration
	// Stats receives measurements; required.
	Stats *Stats
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 25
	}
	if c.ImageHelpers <= 0 {
		c.ImageHelpers = 4
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 32 * time.Second
	}
	if c.Stats == nil {
		c.Stats = &Stats{}
	}
	return c
}

// Client is one simulated browsing user.
type Client struct {
	cfg    Config
	client *httpx.Client
	rng    *rand.Rand
	cache  map[string]cachedDoc
}

type cachedDoc struct {
	body []byte
	html bool
}

// New returns a client ready to run sequences.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Dialer == nil {
		return nil, errors.New("webclient: Dialer is required")
	}
	if len(cfg.EntryURLs) == 0 {
		return nil, errors.New("webclient: at least one entry URL is required")
	}
	return &Client{
		cfg: cfg,
		// Keep-alive pooling sized to the image-helper parallelism: one
		// sequence fetches a page plus its images from the same server, so
		// reusing connections mirrors what real browsers do.
		client: httpx.NewPooledClient(cfg.Dialer, httpx.PoolConfig{MaxIdlePerHost: cfg.ImageHelpers}),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		cache:  make(map[string]cachedDoc),
	}, nil
}

// Close releases the client's pooled connections.
func (c *Client) Close() { c.client.CloseIdle() }

// Run executes sequences until stop is closed.
func (c *Client) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		c.RunSequence(stop)
	}
}

// RunSequence performs one access sequence of Algorithm 2: reset the cache,
// start at a random entry point, and follow random(1..MaxSteps) links.
func (c *Client) RunSequence(stop <-chan struct{}) {
	c.cache = make(map[string]cachedDoc) // reset cache
	current := c.cfg.EntryURLs[c.rng.Intn(len(c.cfg.EntryURLs))]
	steps := 1 + c.rng.Intn(c.cfg.MaxSteps)
	for i := 0; i < steps; i++ {
		select {
		case <-stop:
			return
		default:
		}
		body, finalURL, ok := c.fetch(current, stop)
		if !ok {
			break
		}
		doc := hypertext.Parse(string(body))
		c.fetchImages(finalURL, doc, stop)
		next, ok := c.pickLink(finalURL, doc)
		if !ok {
			break // dead end: restart from an entry point next sequence
		}
		current = next
		if c.cfg.ThinkTime > 0 {
			c.cfg.Clock.Sleep(c.cfg.ThinkTime)
		}
	}
	c.cfg.Stats.Sequences.Inc()
}

// ResetCache clears the client-side cache, as happens at the start of each
// access sequence.
func (c *Client) ResetCache() {
	c.cache = make(map[string]cachedDoc)
}

// Fetch retrieves one absolute URL the way a sequence step does — following
// redirects, backing off on 503 — and reports the body and final URL. It is
// the single-document entry point used by harnesses and tools.
func (c *Client) Fetch(url string) (body []byte, finalURL string, ok bool) {
	return c.fetch(url, nil)
}

// fetch retrieves a URL, following redirects and backing off exponentially
// on 503 drops ("a client thread sleeps for a second at the first drop, two
// seconds at the second drop, four seconds at the third", §5.2). It returns
// the body and the final URL after redirects.
func (c *Client) fetch(url string, stop <-chan struct{}) (body []byte, finalURL string, ok bool) {
	if d, hit := c.cache[url]; hit {
		return d.body, url, true
	}
	backoff := time.Second
	redirects := 0
	cur := url
	for attempt := 0; attempt < 12; attempt++ {
		select {
		case <-stop:
			return nil, "", false
		default:
		}
		addr, path, err := naming.SplitURL(cur)
		if err != nil || addr == "" {
			c.cfg.Stats.Errors.Inc()
			return nil, "", false
		}
		resp, err := c.client.Get(addr, path, nil)
		if err != nil {
			c.cfg.Stats.Errors.Inc()
			return nil, "", false
		}
		switch resp.Status {
		case 200:
			c.cfg.Stats.Connections.Inc()
			c.cfg.Stats.Bytes.Add(int64(len(resp.Body)))
			c.cache[url] = cachedDoc{body: resp.Body, html: graph.IsHTML(path)}
			if cur != url {
				c.cache[cur] = c.cache[url]
			}
			return resp.Body, cur, true
		case 301, 302:
			c.cfg.Stats.Redirects.Inc()
			loc := resp.Header.Get("Location")
			if loc == "" || redirects >= 5 {
				c.cfg.Stats.Errors.Inc()
				return nil, "", false
			}
			redirects++
			cur = absolutize(addr, loc)
		case 503:
			c.cfg.Stats.Drops.Inc()
			c.cfg.Clock.Sleep(backoff)
			backoff *= 2
			if backoff > c.cfg.MaxBackoff {
				backoff = c.cfg.MaxBackoff
			}
		default:
			c.cfg.Stats.Errors.Inc()
			return nil, "", false
		}
	}
	return nil, "", false
}

// fetchImages requests the document's embedded images in parallel using the
// configured number of helper goroutines, skipping cached ones, and waits
// for all of them ("request all embedded images in parallel ... wait until
// all the requested documents arrive").
func (c *Client) fetchImages(baseURL string, doc *hypertext.Document, stop <-chan struct{}) {
	imgs := doc.LinkURLs(hypertext.LinkImage)
	if len(imgs) == 0 {
		return
	}
	type job struct{ url string }
	var jobs []job
	var mu sync.Mutex
	for _, raw := range imgs {
		u := resolveAgainst(baseURL, raw)
		if u == "" {
			continue
		}
		if _, hit := c.cache[u]; hit {
			continue
		}
		jobs = append(jobs, job{u})
	}
	if len(jobs) == 0 {
		return
	}
	ch := make(chan job, len(jobs))
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	helpers := c.cfg.ImageHelpers
	if helpers > len(jobs) {
		helpers = len(jobs)
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				body, finalURL, ok := c.fetchUncachedImage(j.url, stop)
				if ok {
					mu.Lock()
					c.cache[j.url] = cachedDoc{body: body}
					if finalURL != j.url {
						c.cache[finalURL] = cachedDoc{body: body}
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
}

// fetchUncachedImage is fetch without cache interaction (the caller guards
// the cache map, which is not safe for concurrent use).
func (c *Client) fetchUncachedImage(url string, stop <-chan struct{}) ([]byte, string, bool) {
	backoff := time.Second
	cur := url
	redirects := 0
	for attempt := 0; attempt < 12; attempt++ {
		select {
		case <-stop:
			return nil, "", false
		default:
		}
		addr, path, err := naming.SplitURL(cur)
		if err != nil || addr == "" {
			c.cfg.Stats.Errors.Inc()
			return nil, "", false
		}
		resp, err := c.client.Get(addr, path, nil)
		if err != nil {
			c.cfg.Stats.Errors.Inc()
			return nil, "", false
		}
		switch resp.Status {
		case 200:
			c.cfg.Stats.Connections.Inc()
			c.cfg.Stats.Bytes.Add(int64(len(resp.Body)))
			return resp.Body, cur, true
		case 301, 302:
			c.cfg.Stats.Redirects.Inc()
			loc := resp.Header.Get("Location")
			if loc == "" || redirects >= 5 {
				c.cfg.Stats.Errors.Inc()
				return nil, "", false
			}
			redirects++
			cur = absolutize(addr, loc)
		case 503:
			c.cfg.Stats.Drops.Inc()
			c.cfg.Clock.Sleep(backoff)
			backoff *= 2
			if backoff > c.cfg.MaxBackoff {
				backoff = c.cfg.MaxBackoff
			}
		default:
			c.cfg.Stats.Errors.Inc()
			return nil, "", false
		}
	}
	return nil, "", false
}

// pickLink selects a random navigable anchor or frame from the document.
func (c *Client) pickLink(baseURL string, doc *hypertext.Document) (string, bool) {
	candidates := doc.LinkURLs(hypertext.LinkAnchor, hypertext.LinkFrame)
	var resolved []string
	for _, raw := range candidates {
		if u := resolveAgainst(baseURL, raw); u != "" {
			resolved = append(resolved, u)
		}
	}
	if len(resolved) == 0 {
		return "", false
	}
	return resolved[c.rng.Intn(len(resolved))], true
}

// resolveAgainst turns a raw link from a document at baseURL into an
// absolute URL, or "" for unsupported schemes.
func resolveAgainst(baseURL, raw string) string {
	if strings.HasPrefix(raw, "http://") {
		return raw
	}
	if strings.Contains(raw, "://") || strings.HasPrefix(raw, "mailto:") || strings.HasPrefix(raw, "#") {
		return ""
	}
	baseAddr, basePath, err := naming.SplitURL(baseURL)
	if err != nil || baseAddr == "" {
		return ""
	}
	target := graph.ResolveLink(basePath, raw)
	if target == "" {
		// graph.ResolveLink rejects ~migrate paths; accept them here, the
		// client must be able to follow rewritten links.
		if strings.HasPrefix(raw, "/") {
			target = raw
		} else {
			return ""
		}
	}
	return "http://" + baseAddr + target
}

// absolutize resolves a Location header against the responding server.
func absolutize(addr, loc string) string {
	if strings.HasPrefix(loc, "http://") {
		return loc
	}
	if strings.HasPrefix(loc, "/") {
		return "http://" + addr + loc
	}
	return "http://" + addr + "/" + loc
}
