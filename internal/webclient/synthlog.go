package webclient

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"dcws/internal/dataset"
)

// SynthesizeLog produces a Common Log Format access log by dry-running the
// Algorithm 2 client behaviour over a data set specification: entry-point
// start, random link walk, per-sequence caching, images fetched on first
// reference. Together with Replayer it closes the loop the paper's future
// work asks for ("we have not used actual access logs for the
// experiments"): generate a log offline, replay it against a live group.
//
// requests bounds the number of emitted entries; timestamps advance by
// gap between consecutive requests starting at start.
func SynthesizeLog(site *dataset.Site, requests int, seed int64, start time.Time, gap time.Duration) []LogEntry {
	if requests <= 0 || site == nil || len(site.EntryPoints) == 0 {
		return nil
	}
	byName := make(map[string]*dataset.Doc, len(site.Docs))
	for i := range site.Docs {
		byName[site.Docs[i].Name] = &site.Docs[i]
	}
	rng := rand.New(rand.NewSource(seed))
	var out []LogEntry
	at := start
	emit := func(path string) bool {
		out = append(out, LogEntry{Path: path, At: at})
		at = at.Add(gap)
		return len(out) >= requests
	}
	for len(out) < requests {
		cached := make(map[string]bool)
		cur := site.EntryPoints[rng.Intn(len(site.EntryPoints))]
		steps := 1 + rng.Intn(25)
		for i := 0; i < steps; i++ {
			doc := byName[cur]
			if doc == nil {
				break
			}
			if !cached[cur] {
				cached[cur] = true
				if emit(cur) {
					return out
				}
			}
			var anchors []string
			for _, l := range doc.Links {
				if l.Image {
					if !cached[l.URL] {
						cached[l.URL] = true
						if emit(l.URL) {
							return out
						}
					}
					continue
				}
				anchors = append(anchors, l.URL)
			}
			if len(anchors) == 0 {
				break
			}
			cur = anchors[rng.Intn(len(anchors))]
		}
	}
	return out
}

// WriteCommonLog writes entries in Common Log Format, the inverse of
// ParseCommonLog.
func WriteCommonLog(w io.Writer, entries []LogEntry, host string) error {
	if host == "" {
		host = "10.0.0.1"
	}
	for _, e := range entries {
		at := e.At
		if at.IsZero() {
			at = time.Unix(0, 0).UTC()
		}
		_, err := fmt.Fprintf(w, "%s - - [%s] \"GET %s HTTP/1.0\" 200 -\n",
			host, at.Format(commonLogTime), e.Path)
		if err != nil {
			return err
		}
	}
	return nil
}
