package hypertext

import (
	"strings"
)

// LinkKind classifies the references DCWS tracks in the local document
// graph. The paper's entry-point hypotheses (§3.1) distinguish navigational
// hyperlinks (which users follow) from embedded images (fetched
// automatically, seldom published, and a large share of bandwidth) and
// frame content (internal pages behind a published frame template).
type LinkKind int

// Link kinds.
const (
	LinkAnchor LinkKind = iota // <a href>, <area href>
	LinkImage                  // <img src>
	LinkFrame                  // <frame src>, <iframe src>
)

func (k LinkKind) String() string {
	switch k {
	case LinkAnchor:
		return "anchor"
	case LinkImage:
		return "image"
	case LinkFrame:
		return "frame"
	default:
		return "unknown"
	}
}

// Link is one outgoing reference found in a document.
type Link struct {
	Kind LinkKind
	// URL is the raw attribute value as written in the source.
	URL string
	// tokenIndex/attr locate the link for rewriting.
	tokenIndex int
	attrName   string
}

// Document is a parsed HTML document: a token stream plus an index of its
// links. It is the paper's "simple parse tree".
type Document struct {
	tokens []Token
	links  []Link
}

// linkAttrs maps tag name to the attribute that carries its reference.
var linkAttrs = map[string]struct {
	attr string
	kind LinkKind
}{
	"a":      {"href", LinkAnchor},
	"area":   {"href", LinkAnchor},
	"img":    {"src", LinkImage},
	"frame":  {"src", LinkFrame},
	"iframe": {"src", LinkFrame},
}

// Parse tokenizes src and indexes its hyperlinks.
func Parse(src string) *Document {
	tokens := Tokenize(src)
	d := &Document{tokens: tokens}
	for i := range tokens {
		t := &tokens[i]
		if t.Kind != StartTag && t.Kind != SelfCloseTag {
			continue
		}
		spec, ok := linkAttrs[t.Name]
		if !ok {
			continue
		}
		if v, ok := t.Attr(spec.attr); ok && v != "" {
			d.links = append(d.links, Link{
				Kind:       spec.kind,
				URL:        v,
				tokenIndex: i,
				attrName:   spec.attr,
			})
		}
	}
	return d
}

// Links returns the document's outgoing references in source order.
func (d *Document) Links() []Link {
	out := make([]Link, len(d.links))
	copy(out, d.links)
	return out
}

// LinkURLs returns the URLs of links of the given kinds (all kinds if none
// specified), deduplicated, in first-appearance order.
func (d *Document) LinkURLs(kinds ...LinkKind) []string {
	want := func(k LinkKind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, w := range kinds {
			if w == k {
				return true
			}
		}
		return false
	}
	seen := make(map[string]bool)
	var out []string
	for _, l := range d.links {
		if !want(l.Kind) || seen[l.URL] {
			continue
		}
		seen[l.URL] = true
		out = append(out, l.URL)
	}
	return out
}

// Rewrite replaces link URLs according to the mapping (old URL -> new URL)
// and reports how many link occurrences were changed. Only exact URL
// matches are rewritten; everything else in the document is untouched.
func (d *Document) Rewrite(mapping map[string]string) int {
	changed := 0
	for i := range d.links {
		l := &d.links[i]
		newURL, ok := mapping[l.URL]
		if !ok || newURL == l.URL {
			continue
		}
		if d.tokens[l.tokenIndex].SetAttr(l.attrName, newURL) {
			l.URL = newURL
			changed++
		}
	}
	return changed
}

// Render serializes the document back to HTML. Tokens that were not
// modified render as their original bytes, so Render(Parse(x)) == x.
func (d *Document) Render() string {
	var b strings.Builder
	for i := range d.tokens {
		d.tokens[i].render(&b)
	}
	return b.String()
}

// Title returns the contents of the first <title> element, or "".
func (d *Document) Title() string {
	for i := range d.tokens {
		if d.tokens[i].Kind == StartTag && d.tokens[i].Name == "title" {
			var b strings.Builder
			for j := i + 1; j < len(d.tokens); j++ {
				t := &d.tokens[j]
				if t.Kind == EndTag && t.Name == "title" {
					return strings.TrimSpace(b.String())
				}
				if t.Kind == TextToken {
					b.WriteString(t.Raw)
				}
			}
			return strings.TrimSpace(b.String())
		}
	}
	return ""
}

// TokenCount reports the number of lexical tokens, used by diagnostics and
// the parsing-overhead experiment.
func (d *Document) TokenCount() int { return len(d.tokens) }

// ExtractLinks is a convenience that parses src and returns its link URLs.
func ExtractLinks(src string, kinds ...LinkKind) []string {
	return Parse(src).LinkURLs(kinds...)
}

// RewriteHTML parses src, applies the link mapping, and renders the result.
// It returns the rewritten HTML and the number of replaced occurrences.
func RewriteHTML(src string, mapping map[string]string) (string, int) {
	d := Parse(src)
	n := d.Rewrite(mapping)
	if n == 0 {
		return src, 0
	}
	return d.Render(), n
}
