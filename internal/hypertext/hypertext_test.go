package hypertext

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const samplePage = `<!DOCTYPE html>
<html>
<head><title>Mailing List Archive</title></head>
<body>
<!-- navigation buttons -->
<a href="/msg0001.html"><img src="/buttons/next.gif"></a>
<a href='/msg0003.html'><img src='/buttons/prev.gif'></a>
<A HREF="/index.html">Index</A>
<frame src="/inner/frame1.html">
<p>Some text with a stray < bracket and an &amp; entity.</p>
<area href="/map/region.html">
<iframe src="/embedded.html"></iframe>
<img src="/buttons/next.gif">
</body>
</html>`

func TestRenderParseIdentity(t *testing.T) {
	docs := []string{
		samplePage,
		"",
		"plain text only",
		"<p>unclosed",
		`<a href=unquoted.html>x</a>`,
		`<img src="a.gif" alt="with spaces and = signs">`,
		"<!-- just a comment -->",
		"<script>if (a<b) { x > y; }</script>",
		"<style>a { color: red; }</style>",
		`<a   href="spaced.html"  >weird spacing</a>`,
		"<br/>",
		"text <",
		"<",
		"<>",
		"<!DOCTYPE html><p>hi</p>",
		"<a href=\"x\" disabled>valueless attr</a>",
	}
	for _, src := range docs {
		if got := Parse(src).Render(); got != src {
			t.Errorf("Render(Parse(x)) != x:\n in: %q\nout: %q", src, got)
		}
	}
}

func TestLinkExtraction(t *testing.T) {
	d := Parse(samplePage)
	anchors := d.LinkURLs(LinkAnchor)
	wantAnchors := []string{"/msg0001.html", "/msg0003.html", "/index.html", "/map/region.html"}
	if !reflect.DeepEqual(anchors, wantAnchors) {
		t.Fatalf("anchors = %v, want %v", anchors, wantAnchors)
	}
	images := d.LinkURLs(LinkImage)
	wantImages := []string{"/buttons/next.gif", "/buttons/prev.gif"}
	if !reflect.DeepEqual(images, wantImages) {
		t.Fatalf("images = %v, want %v", images, wantImages)
	}
	frames := d.LinkURLs(LinkFrame)
	wantFrames := []string{"/inner/frame1.html", "/embedded.html"}
	if !reflect.DeepEqual(frames, wantFrames) {
		t.Fatalf("frames = %v, want %v", frames, wantFrames)
	}
}

func TestLinkURLsDeduplicates(t *testing.T) {
	d := Parse(samplePage)
	all := d.LinkURLs()
	seen := map[string]bool{}
	for _, u := range all {
		if seen[u] {
			t.Fatalf("duplicate URL %q in LinkURLs", u)
		}
		seen[u] = true
	}
	// next.gif appears twice in source but once here.
	if !seen["/buttons/next.gif"] {
		t.Fatal("missing deduped image link")
	}
}

func TestRewriteChangesOnlyTargetedLinks(t *testing.T) {
	mapping := map[string]string{
		"/msg0001.html": "http://coop:81/~migrate/home/80/msg0001.html",
	}
	out, n := RewriteHTML(samplePage, mapping)
	if n != 1 {
		t.Fatalf("rewrote %d occurrences, want 1", n)
	}
	if !strings.Contains(out, `href="http://coop:81/~migrate/home/80/msg0001.html"`) {
		t.Fatalf("rewritten link missing:\n%s", out)
	}
	if !strings.Contains(out, `/msg0003.html`) {
		t.Fatal("untouched link was altered")
	}
	// Everything else byte-identical: remove the single changed tag region
	// by re-rewriting back and comparing.
	back, n2 := RewriteHTML(out, map[string]string{
		"http://coop:81/~migrate/home/80/msg0001.html": "/msg0001.html",
	})
	if n2 != 1 {
		t.Fatalf("reverse rewrite count = %d", n2)
	}
	if back != samplePage {
		t.Fatalf("rewrite round trip not identical:\n%s", back)
	}
}

func TestRewriteAllOccurrences(t *testing.T) {
	src := `<img src="/hot.jpg"><img src="/hot.jpg"><a href="/hot.jpg">dl</a>`
	out, n := RewriteHTML(src, map[string]string{"/hot.jpg": "/new.jpg"})
	if n != 3 {
		t.Fatalf("rewrote %d, want 3", n)
	}
	if strings.Contains(out, "/hot.jpg") {
		t.Fatalf("old URL remains: %s", out)
	}
}

func TestRewriteNoMatchReturnsInputUnchanged(t *testing.T) {
	out, n := RewriteHTML(samplePage, map[string]string{"/nonexistent": "/x"})
	if n != 0 || out != samplePage {
		t.Fatal("no-op rewrite altered the document")
	}
}

func TestRewritePreservesQuoteStyle(t *testing.T) {
	src := `<a href='/single.html'>x</a>`
	out, n := RewriteHTML(src, map[string]string{"/single.html": "/other.html"})
	if n != 1 {
		t.Fatal("rewrite missed single-quoted link")
	}
	if !strings.Contains(out, `href='/other.html'`) {
		t.Fatalf("quote style not preserved: %s", out)
	}
}

func TestRewriteUnquotedGainsQuotes(t *testing.T) {
	src := `<a href=plain.html>x</a>`
	out, n := RewriteHTML(src, map[string]string{"plain.html": "/q.html"})
	if n != 1 {
		t.Fatal("rewrite missed unquoted link")
	}
	if !strings.Contains(out, `href="/q.html"`) {
		t.Fatalf("rewritten unquoted attr: %s", out)
	}
}

func TestRewrittenDocumentStillParses(t *testing.T) {
	mapping := map[string]string{
		"/msg0001.html":     "http://coop/~migrate/h/80/msg0001.html",
		"/buttons/next.gif": "http://coop/~migrate/h/80/buttons/next.gif",
	}
	out, _ := RewriteHTML(samplePage, mapping)
	d := Parse(out)
	urls := d.LinkURLs()
	found := 0
	for _, u := range urls {
		if strings.Contains(u, "~migrate") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("rewritten doc has %d migrate links, want 2: %v", found, urls)
	}
}

func TestTitle(t *testing.T) {
	if got := Parse(samplePage).Title(); got != "Mailing List Archive" {
		t.Fatalf("Title = %q", got)
	}
	if got := Parse("<p>no title</p>").Title(); got != "" {
		t.Fatalf("Title of titleless doc = %q", got)
	}
	if got := Parse("<title>unterminated").Title(); got != "unterminated" {
		t.Fatalf("Title = %q", got)
	}
}

func TestScriptContentNotParsedAsTags(t *testing.T) {
	src := `<script>document.write("<a href='/fake.html'>");</script><a href="/real.html">r</a>`
	d := Parse(src)
	urls := d.LinkURLs(LinkAnchor)
	if len(urls) != 1 || urls[0] != "/real.html" {
		t.Fatalf("script content leaked into links: %v", urls)
	}
	if d.Render() != src {
		t.Fatal("script round trip failed")
	}
}

func TestCommentedLinksIgnored(t *testing.T) {
	src := `<!-- <a href="/commented.html">x</a> --><a href="/live.html">y</a>`
	urls := ExtractLinks(src, LinkAnchor)
	if len(urls) != 1 || urls[0] != "/live.html" {
		t.Fatalf("links = %v", urls)
	}
}

func TestEmptyHrefIgnored(t *testing.T) {
	src := `<a href="">empty</a><a>none</a>`
	if urls := ExtractLinks(src); len(urls) != 0 {
		t.Fatalf("links = %v, want none", urls)
	}
}

func TestTokenKinds(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><!-- c --><p class="x">text</p><br/>`)
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokenKind{DoctypeToken, CommentToken, StartTag, TextToken, EndTag, SelfCloseTag}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
}

func TestLinkKindString(t *testing.T) {
	if LinkAnchor.String() != "anchor" || LinkImage.String() != "image" ||
		LinkFrame.String() != "frame" || LinkKind(99).String() != "unknown" {
		t.Fatal("LinkKind.String mismatch")
	}
}

// Property: for generated documents, Render∘Parse is the identity and
// rewriting to fresh URLs then back restores the original.
func TestRewriteRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src, urls := randomDoc(rng)
		if Parse(src).Render() != src {
			return false
		}
		fwd := make(map[string]string, len(urls))
		rev := make(map[string]string, len(urls))
		for i, u := range urls {
			nu := fmt.Sprintf("/~migrate/h/80/doc%d.html", i)
			fwd[u] = nu
			rev[nu] = u
		}
		out, _ := RewriteHTML(src, fwd)
		back, _ := RewriteHTML(out, rev)
		return back == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the set of link URLs survives a render round trip.
func TestLinkSetPreservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src, _ := randomDoc(rng)
		d := Parse(src)
		again := Parse(d.Render())
		return reflect.DeepEqual(d.LinkURLs(), again.LinkURLs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// randomDoc builds a small random HTML document and returns it with the
// distinct link URLs it contains.
func randomDoc(rng *rand.Rand) (string, []string) {
	var b strings.Builder
	b.WriteString("<html><body>\n")
	seen := map[string]bool{}
	var urls []string
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("/p%c/file%d.html", 'a'+rng.Intn(4), rng.Intn(20))
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, `<a href="%s">link %d</a>`, u, i)
		case 1:
			u = strings.TrimSuffix(u, ".html") + ".gif"
			fmt.Fprintf(&b, `<img src="%s">`, u)
		default:
			fmt.Fprintf(&b, `<frame src='%s'>`, u)
		}
		b.WriteString("\n<p>filler ")
		b.WriteString(strings.Repeat("x", rng.Intn(30)))
		b.WriteString("</p>\n")
		if !seen[u] {
			seen[u] = true
			urls = append(urls, u)
		}
	}
	b.WriteString("</body></html>\n")
	return b.String(), urls
}

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Tokenize(samplePage)
	}
}

func BenchmarkParseAndExtract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Parse(samplePage).LinkURLs()
	}
}

func BenchmarkRewrite(b *testing.B) {
	mapping := map[string]string{"/msg0001.html": "/~migrate/h/80/msg0001.html"}
	for i := 0; i < b.N; i++ {
		RewriteHTML(samplePage, mapping)
	}
}

// Property: the tokenizer and renderer never panic on arbitrary bytes and
// Render(Parse(x)) == x holds even for garbage — the server must survive
// any file an administrator drops into the document root.
func TestTokenizerNeverPanicsAndRoundTrips(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", data, r)
			}
		}()
		src := string(data)
		return Parse(src).Render() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: rewriting with an empty mapping is always the identity.
func TestEmptyRewriteIsIdentity(t *testing.T) {
	f := func(data []byte) bool {
		src := string(data)
		out, n := RewriteHTML(src, nil)
		return n == 0 && out == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
