package hypertext

import (
	"strings"
)

// Tokenize splits HTML source into tokens. The lexer is permissive in the
// way 1990s-era browsers were: unknown constructs and malformed tags are
// preserved as text rather than rejected, so serving a quirky document
// never fails.
func Tokenize(src string) []Token {
	var tokens []Token
	i := 0
	n := len(src)
	textStart := 0

	flushText := func(end int) {
		if end > textStart {
			tokens = append(tokens, Token{Kind: TextToken, Raw: src[textStart:end]})
		}
	}

	for i < n {
		if src[i] != '<' {
			i++
			continue
		}
		// Comment?
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				// Unterminated comment: treat the rest as a comment.
				flushText(i)
				tokens = append(tokens, Token{Kind: CommentToken, Raw: src[i:]})
				textStart = n
				i = n
				break
			}
			stop := i + 4 + end + 3
			flushText(i)
			tokens = append(tokens, Token{Kind: CommentToken, Raw: src[i:stop]})
			i = stop
			textStart = i
			continue
		}
		// Doctype or other declaration?
		if i+1 < n && src[i+1] == '!' {
			stop := strings.IndexByte(src[i:], '>')
			if stop < 0 {
				i++
				continue
			}
			stop += i + 1
			flushText(i)
			tokens = append(tokens, Token{Kind: DoctypeToken, Raw: src[i:stop]})
			i = stop
			textStart = i
			continue
		}
		// Tag?
		tok, stop, ok := lexTag(src, i)
		if !ok {
			i++
			continue
		}
		flushText(i)
		tokens = append(tokens, tok)
		i = stop
		textStart = i
		// <script> and <style> content is raw text until the closing tag.
		if tok.Kind == StartTag && (tok.Name == "script" || tok.Name == "style") {
			closing := "</" + tok.Name
			// Byte-wise ASCII case folding: strings.ToLower would change
			// byte offsets on invalid UTF-8.
			idx := indexASCIIFold(src[i:], closing)
			if idx < 0 {
				idx = len(src) - i
			}
			if idx > 0 {
				tokens = append(tokens, Token{Kind: TextToken, Raw: src[i : i+idx]})
			}
			i += idx
			textStart = i
		}
	}
	flushText(n)
	return tokens
}

// lexTag parses a tag starting at src[start] == '<'. It returns the token,
// the index just past '>', and whether a well-formed tag was found.
func lexTag(src string, start int) (Token, int, bool) {
	i := start + 1
	n := len(src)
	end := false
	if i < n && src[i] == '/' {
		end = true
		i++
	}
	nameStart := i
	for i < n && isNameByte(src[i]) {
		i++
	}
	if i == nameStart {
		return Token{}, 0, false
	}
	name := strings.ToLower(src[nameStart:i])

	var attrs []Attr
	selfClose := false
	for i < n {
		// Skip whitespace.
		for i < n && isSpace(src[i]) {
			i++
		}
		if i >= n {
			return Token{}, 0, false // unterminated tag
		}
		if src[i] == '>' {
			i++
			break
		}
		if src[i] == '/' && i+1 < n && src[i+1] == '>' {
			selfClose = true
			i += 2
			break
		}
		attr, next, ok := lexAttr(src, i)
		if !ok {
			// Skip one byte of garbage and keep going, browser-style.
			i++
			continue
		}
		attrs = append(attrs, attr)
		i = next
	}
	if i > n {
		return Token{}, 0, false
	}
	kind := StartTag
	if end {
		kind = EndTag
	} else if selfClose {
		kind = SelfCloseTag
	}
	return Token{Kind: kind, Name: name, Attrs: attrs, Raw: src[start:i]}, i, true
}

func lexAttr(src string, start int) (Attr, int, bool) {
	i := start
	n := len(src)
	nameStart := i
	for i < n && isAttrNameByte(src[i]) {
		i++
	}
	if i == nameStart {
		return Attr{}, 0, false
	}
	name := src[nameStart:i]
	// Skip whitespace before '='.
	j := i
	for j < n && isSpace(src[j]) {
		j++
	}
	if j >= n || src[j] != '=' {
		return Attr{Name: name}, i, true // valueless attribute
	}
	j++
	for j < n && isSpace(src[j]) {
		j++
	}
	if j >= n {
		return Attr{}, 0, false
	}
	if src[j] == '"' || src[j] == '\'' {
		q := src[j]
		j++
		vStart := j
		for j < n && src[j] != q {
			j++
		}
		if j >= n {
			return Attr{}, 0, false // unterminated quote
		}
		return Attr{Name: name, Value: src[vStart:j], Quote: q, HasValue: true}, j + 1, true
	}
	vStart := j
	for j < n && !isSpace(src[j]) && src[j] != '>' && src[j] != '/' {
		j++
	}
	return Attr{Name: name, Value: src[vStart:j], HasValue: true}, j, true
}

// indexASCIIFold returns the byte offset of the first occurrence of substr
// in s under ASCII case folding, or -1. Unlike strings.Index over
// strings.ToLower(s), it never shifts byte offsets on non-UTF-8 input.
func indexASCIIFold(s, substr string) int {
	n, m := len(s), len(substr)
	if m == 0 {
		return 0
	}
	for i := 0; i+m <= n; i++ {
		match := true
		for j := 0; j < m; j++ {
			a, b := s[i+j], substr[j]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isNameByte(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_' || c == ':'
}

func isAttrNameByte(c byte) bool {
	return isNameByte(c) || c == '.'
}
