package hypertext

import "testing"

// FuzzRoundTrip asserts the central hypertext invariant under fuzzing:
// rendering a parsed document reproduces the input byte for byte, no
// matter how broken the HTML. Run with
// `go test -fuzz FuzzRoundTrip ./internal/hypertext`.
func FuzzRoundTrip(f *testing.F) {
	f.Add("<html><a href=\"/x.html\">x</a></html>")
	f.Add("<a href='/s'><img src=q.gif></a>")
	f.Add("<script>if (a<b) {}</script><frame src=\"/f\">")
	f.Add("<!-- comment --><!DOCTYPE html>")
	f.Add("text < > & garbage \x00\xff")
	f.Add("<a href=")
	f.Fuzz(func(t *testing.T, src string) {
		d := Parse(src)
		if got := d.Render(); got != src {
			t.Fatalf("Render(Parse(x)) != x\n in: %q\nout: %q", src, got)
		}
		// The link set must be stable under a second parse.
		again := Parse(d.Render())
		a, b := d.LinkURLs(), again.LinkURLs()
		if len(a) != len(b) {
			t.Fatalf("link set changed on reparse: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("link %d changed: %q vs %q", i, a[i], b[i])
			}
		}
	})
}

// FuzzRewrite asserts that rewriting is confined to the mapped URLs: after
// rewriting every extracted link to a fixed target, re-extracting yields
// only that target (for documents whose links were all mapped).
func FuzzRewrite(f *testing.F) {
	f.Add("<a href=\"/a.html\">a</a><img src=\"/b.gif\">")
	f.Add("<frame src='/f.html'>")
	f.Fuzz(func(t *testing.T, src string) {
		d := Parse(src)
		urls := d.LinkURLs()
		if len(urls) == 0 {
			return
		}
		mapping := make(map[string]string, len(urls))
		for _, u := range urls {
			mapping[u] = "/rewritten.html"
		}
		out, _ := RewriteHTML(src, mapping)
		for _, u := range Parse(out).LinkURLs() {
			if u != "/rewritten.html" {
				t.Fatalf("unmapped link survived: %q in %q -> %q", u, src, out)
			}
		}
	})
}
