// Package hypertext implements the HTML machinery DCWS needs: a tokenizer,
// a document model, hyperlink extraction, and — the heart of the paper's
// load-balancing mechanism — hyperlink rewriting with faithful
// re-serialization (§4.3: "a HTML parser builds a simple parse tree ...
// modified links are then replaced in the parse tree, the parse tree is
// turned back into a stream of HTML tokens, and then written back").
//
// Tokens keep their original raw bytes, so rendering an unmodified document
// reproduces the input exactly; only tags whose attributes were rewritten
// are re-serialized.
package hypertext

import (
	"strings"
)

// TokenKind identifies the kind of an HTML token.
type TokenKind int

// Token kinds.
const (
	TextToken    TokenKind = iota // character data between tags
	StartTag                      // <name attr=...>
	EndTag                        // </name>
	SelfCloseTag                  // <name ... />
	CommentToken                  // <!-- ... -->
	DoctypeToken                  // <!DOCTYPE ...> and other <! ...> markup
)

// Attr is one attribute of a tag. Quote records the quoting style of the
// original source ('"', '\” or 0 for unquoted/valueless) so rewriting
// preserves the author's style.
type Attr struct {
	Name  string
	Value string
	Quote byte
	// HasValue distinguishes `selected` from `selected=""`.
	HasValue bool
}

// Token is one lexical element of an HTML document.
type Token struct {
	Kind TokenKind
	// Name is the lower-cased tag name for StartTag/EndTag/SelfCloseTag.
	Name string
	// Attrs are the tag attributes in source order.
	Attrs []Attr
	// Raw is the exact source text of the token. It is used verbatim when
	// rendering unless the token has been modified.
	Raw string
	// modified marks tags whose attributes changed and which must be
	// re-serialized from Name/Attrs.
	modified bool
}

// Attr returns the value of the named attribute (case-insensitive) and
// whether it is present.
func (t *Token) Attr(name string) (string, bool) {
	for i := range t.Attrs {
		if strings.EqualFold(t.Attrs[i].Name, name) {
			return t.Attrs[i].Value, true
		}
	}
	return "", false
}

// SetAttr replaces the value of the named attribute if present, marking the
// token modified. It reports whether the attribute was found.
func (t *Token) SetAttr(name, value string) bool {
	for i := range t.Attrs {
		if strings.EqualFold(t.Attrs[i].Name, name) {
			t.Attrs[i].Value = value
			t.Attrs[i].HasValue = true
			if t.Attrs[i].Quote == 0 {
				t.Attrs[i].Quote = '"'
			}
			t.modified = true
			return true
		}
	}
	return false
}

// render writes the token's HTML form to b.
func (t *Token) render(b *strings.Builder) {
	if !t.modified {
		b.WriteString(t.Raw)
		return
	}
	b.WriteByte('<')
	if t.Kind == EndTag {
		b.WriteByte('/')
	}
	b.WriteString(t.Name)
	for _, a := range t.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		if !a.HasValue {
			continue
		}
		b.WriteByte('=')
		q := a.Quote
		if q == 0 {
			q = '"'
		}
		b.WriteByte(q)
		b.WriteString(a.Value)
		b.WriteByte(q)
	}
	if t.Kind == SelfCloseTag {
		b.WriteString(" /")
	}
	b.WriteByte('>')
}
