package resilience

import (
	"errors"
	"testing"
	"time"

	"dcws/internal/clock"
)

func TestBackoffScheduleNoJitter(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for i, w := range want {
		if got := p.Backoff("peer", i+1); got != w {
			t.Errorf("Backoff(attempt %d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	for attempt := 1; attempt <= 5; attempt++ {
		a := p.Backoff("peerA", attempt)
		b := p.Backoff("peerA", attempt)
		if a != b {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
		nominal := Policy{BaseDelay: p.BaseDelay, MaxDelay: p.MaxDelay, Multiplier: p.Multiplier}.Backoff("peerA", attempt)
		if a < nominal/2 || a > nominal {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v]", attempt, a, nominal/2, nominal)
		}
	}
	// Distinct peers desynchronize.
	if p.Backoff("peerA", 1) == p.Backoff("peerB", 1) && p.Backoff("peerA", 2) == p.Backoff("peerB", 2) {
		t.Fatal("jitter identical across peers on every attempt")
	}
}

func TestBackoffDisabled(t *testing.T) {
	p := Policy{BaseDelay: -1, MaxAttempts: 5}
	if d := p.Backoff("peer", 3); d != 0 {
		t.Fatalf("negative BaseDelay produced delay %v", d)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Second}, nil)

	if b.State() != Closed || !b.Allow() {
		t.Fatal("fresh breaker not closed")
	}
	// Two failures: still closed.
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v", b.State())
	}
	// A success resets the consecutive count.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("success did not reset the failure count")
	}
	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after threshold = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}
	// Cooldown elapses: half-open admits exactly one probe.
	clk.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the trial call")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown Allow = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent half-open probe admitted")
	}
	// Trial fails: open again for a fresh cooldown.
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatal("failed trial did not re-open the circuit")
	}
	clk.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("second half-open refused")
	}
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("successful trial did not close the circuit")
	}
}

// TestAbortedTrialReleasesProbeSlot reproduces the hedged-fetch wedge: a
// call admitted as the half-open trial aborts (its CancelToken fired
// because the sibling leg won), which must hand the trial slot back. The
// breaker may not stay wedged with the slot reserved, or every later
// gated call would be rejected with ErrOpen despite the peer being fine.
func TestAbortedTrialReleasesProbeSlot(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	r := NewRegistry(clk, BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Second})
	p := Policy{MaxAttempts: 1}

	if err := r.Execute(p, "peer", func() error { return errors.New("boom") }); err == nil {
		t.Fatal("failing call reported success")
	}
	if r.StateOf("peer") != Open {
		t.Fatalf("state after trip = %v", r.StateOf("peer"))
	}

	// Cooldown elapses; the next call is admitted as the trial but aborts.
	clk.Advance(10 * time.Second)
	if err := r.Execute(p, "peer", func() error { return ErrAborted }); !errors.Is(err, ErrAborted) {
		t.Fatalf("aborted trial err = %v, want ErrAborted", err)
	}
	if got := r.StateOf("peer"); got != HalfOpen {
		t.Fatalf("state after aborted trial = %v, want half-open", got)
	}

	// The slot was released: the next gated call runs (no ErrOpen) and its
	// success closes the circuit.
	ran := false
	if err := r.Execute(p, "peer", func() error { ran = true; return nil }); err != nil {
		t.Fatalf("post-abort trial err = %v", err)
	}
	if !ran {
		t.Fatal("post-abort trial call never reached the network")
	}
	if r.StateOf("peer") != Closed {
		t.Fatal("successful trial did not close the circuit")
	}
}

func TestBreakerReset(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}, nil)
	b.Failure()
	if b.State() != Open {
		t.Fatal("not tripped")
	}
	b.Reset()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("reset did not close the breaker")
	}
}

func TestRegistryExecuteRetriesThenSucceeds(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	r := NewRegistry(clk, BreakerConfig{FailureThreshold: 10})
	p := Policy{MaxAttempts: 4, BaseDelay: -1}
	calls := 0
	err := r.Execute(p, "peer", func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if got := r.Stats().Retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if r.StateOf("peer") != Closed {
		t.Fatal("breaker not closed after success")
	}
}

func TestRegistryExecuteExhaustsAttempts(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	r := NewRegistry(clk, BreakerConfig{FailureThreshold: 100})
	p := Policy{MaxAttempts: 3, BaseDelay: -1}
	boom := errors.New("down")
	calls := 0
	err := r.Execute(p, "peer", func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRegistryCircuitOpensAndFailsFast(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	r := NewRegistry(clk, BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute})
	p := Policy{MaxAttempts: 1, BaseDelay: -1}
	boom := errors.New("down")
	for i := 0; i < 3; i++ {
		r.Execute(p, "peer", func() error { return boom })
	}
	if r.StateOf("peer") != Open {
		t.Fatalf("state = %v, want open", r.StateOf("peer"))
	}
	if got := r.Stats().Trips.Value(); got != 1 {
		t.Fatalf("trips = %d", got)
	}
	// Calls now fail fast without reaching fn.
	reached := false
	err := r.Execute(p, "peer", func() error { reached = true; return nil })
	if !errors.Is(err, ErrOpen) || reached {
		t.Fatalf("open circuit: err=%v reached=%v", err, reached)
	}
	// After the cooldown a trial call is admitted and closes the circuit.
	clk.Advance(time.Minute)
	err = r.Execute(p, "peer", func() error { return nil })
	if err != nil || r.StateOf("peer") != Closed {
		t.Fatalf("recovery failed: err=%v state=%v", err, r.StateOf("peer"))
	}
	if r.Stats().Recoveries.Value() != 1 {
		t.Fatal("recovery not counted")
	}
}

func TestRegistryProbeBypassesOpenCircuit(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	r := NewRegistry(clk, BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour})
	p := Policy{MaxAttempts: 1, BaseDelay: -1}
	r.Execute(p, "peer", func() error { return errors.New("down") })
	if r.StateOf("peer") != Open {
		t.Fatal("not open")
	}
	// A detector probe still reaches the network and its success closes
	// the breaker long before the cooldown.
	reached := false
	if err := r.Probe(p, "peer", func() error { reached = true; return nil }); err != nil || !reached {
		t.Fatalf("probe err=%v reached=%v", err, reached)
	}
	if r.StateOf("peer") != Closed {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestRegistryExecuteSleepsOnBackoff(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	r := NewRegistry(clk, BreakerConfig{FailureThreshold: 100})
	p := Policy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond}
	done := make(chan error, 1)
	calls := 0
	go func() {
		done <- r.Execute(p, "peer", func() error {
			calls++
			if calls == 1 {
				return errors.New("flaky")
			}
			return nil
		})
	}()
	// The retry must be parked on the manual clock, not running.
	deadline := time.Now().Add(2 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Execute never slept on the injected clock")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(50 * time.Millisecond)
	if err := <-done; err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestPeerSnapshotsCounters(t *testing.T) {
	start := time.Unix(100, 0)
	clk := clock.NewManual(start)
	r := NewRegistry(clk, BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute})
	p := Policy{MaxAttempts: 3, BaseDelay: -1}
	boom := errors.New("down")

	// Fresh peer: zero counters, zero LastTransition.
	if s := r.For("b").Snapshot(); s.State != Closed || s.Retries != 0 || !s.LastTransition.IsZero() {
		t.Fatalf("fresh snapshot = %+v", s)
	}

	// 3 failed attempts = 2 retries; threshold 2 trips the breaker on the
	// second failure, the third attempt fails while open.
	r.Execute(p, "a", func() error { return boom })
	snaps := r.PeerSnapshots()
	sa := snaps["a"]
	if sa.State != Open || sa.Retries != 2 || sa.Trips != 1 {
		t.Fatalf("peer a after exhaustion = %+v", sa)
	}
	if !sa.LastTransition.Equal(start) {
		t.Fatalf("LastTransition = %v, want %v", sa.LastTransition, start)
	}
	// Peer b's counters are untouched by peer a's failures.
	if sb := snaps["b"]; sb.Retries != 0 || sb.Trips != 0 {
		t.Fatalf("peer b polluted: %+v", sb)
	}

	// The third attempt above was refused while open (1 rejection); a
	// fail-fast call while open adds another.
	clk.Advance(time.Second)
	r.Execute(Policy{MaxAttempts: 1}, "a", func() error { return nil })
	if s := r.For("a").Snapshot(); s.Rejections != 2 {
		t.Fatalf("rejections = %d, want 2", s.Rejections)
	}

	// Recovery after the cooldown stamps a fresh transition time.
	clk.Advance(time.Minute)
	if err := r.Execute(Policy{MaxAttempts: 1}, "a", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := r.For("a").Snapshot()
	if s.State != Closed || !s.LastTransition.After(start) {
		t.Fatalf("after recovery = %+v", s)
	}
}

func TestStatesSnapshot(t *testing.T) {
	r := NewRegistry(clock.NewManual(time.Unix(0, 0)), BreakerConfig{FailureThreshold: 1})
	p := Policy{MaxAttempts: 1}
	r.Execute(p, "a", func() error { return errors.New("x") })
	r.Execute(p, "b", func() error { return nil })
	states := r.States()
	if states["a"] != Open || states["b"] != Closed {
		t.Fatalf("states = %v", states)
	}
	if Open.String() != "open" || Closed.String() != "closed" || HalfOpen.String() != "half-open" {
		t.Fatal("state strings wrong")
	}
}
