// Package resilience hardens inter-server RPCs against the failure modes
// of §4.5: flaky links, slow peers, and crashed servers. It provides a
// retry Policy (capped exponential backoff with deterministic jitter, all
// timing driven by the injected clock.Clock so tests stay virtual), a
// per-peer circuit Breaker with the classic closed/open/half-open state
// machine, and a Registry tying both together with metrics counters.
//
// Two call paths exist on purpose:
//
//   - Execute gates calls through the peer's breaker: while the breaker is
//     open, calls fail fast without touching the network (graceful
//     degradation — a wobbling co-op must not hold worker threads hostage).
//   - Probe bypasses the breaker gate but still records outcomes: the
//     pinger thread is the failure DETECTOR, so it must keep probing a
//     peer whose breaker is open, otherwise recovery would never be seen.
package resilience

import (
	"errors"
	"hash/fnv"
	"sync"
	"time"

	"dcws/internal/clock"
	"dcws/internal/metrics"
)

// ErrOpen is returned by Execute when the peer's circuit is open and the
// cooldown has not yet elapsed.
var ErrOpen = errors.New("resilience: circuit open")

// ErrAborted, returned (or wrapped) by an Execute/Probe callback, stops
// the run immediately without recording a breaker failure or retrying:
// the caller chose to abandon the call (e.g. a hedged fetch canceling its
// losing leg), which says nothing about the peer's health.
var ErrAborted = errors.New("resilience: aborted")

// Policy configures retries for one class of RPC.
type Policy struct {
	// MaxAttempts is the total number of tries including the first.
	// Values < 1 are treated as 1 (no retry).
	MaxAttempts int
	// BaseDelay is the backoff after the first failed attempt. A negative
	// value disables inter-attempt delays entirely (retries fire
	// back-to-back), which deterministic tests on manual clocks rely on.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. 0 means no cap.
	MaxDelay time.Duration
	// Multiplier scales the delay between consecutive attempts
	// (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1).
	// The randomization is deterministic: it hashes (key, attempt), so a
	// given peer retries on the same schedule every run, while distinct
	// peers desynchronize (no retry storms after a shared outage).
	Jitter float64
}

// Backoff returns the delay to wait after the attempt-th failed try
// (attempt counts from 1). The schedule is BaseDelay * Multiplier^(attempt-1),
// capped at MaxDelay, with the Jitter fraction replaced by a deterministic
// hash of (key, attempt).
func (p Policy) Backoff(key string, attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && p.Jitter < 1 {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{byte(attempt), byte(attempt >> 8)})
		frac := float64(h.Sum64()%1000) / 1000.0
		d = d*(1-p.Jitter) + d*p.Jitter*frac
	}
	return time.Duration(d)
}

// State is a circuit breaker state.
type State int

// The classic three breaker states.
const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed State = iota
	// Open: calls are refused without touching the network until the
	// cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed; a single trial call is allowed
	// through. Success closes the circuit, failure re-opens it.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the per-peer circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker waits before allowing a
	// half-open trial call (default 30s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// Breaker is a circuit breaker for one peer.
type Breaker struct {
	mu        sync.Mutex
	clk       clock.Clock
	cfg       BreakerConfig
	stats     *metrics.ResilienceStats
	state     State
	failures  int       // consecutive failures while closed
	openUntil time.Time // when an open breaker may go half-open
	probing   bool      // a half-open trial call is in flight

	// Per-peer observability counters (the shared stats above aggregate
	// across all peers; operators also need to see WHICH peer is flaky).
	retries        int64     // attempts re-issued against this peer
	trips          int64     // closed/half-open -> open transitions
	rejections     int64     // calls refused while open
	lastTransition time.Time // when the state last changed (zero: never)

	// onTrip, when set, runs (outside b.mu) after each transition to Open,
	// letting the owner react — the connection pool flushes the peer's
	// idle conns, since they are as suspect as the calls that tripped it.
	onTrip func()
}

// NewBreaker returns a closed breaker on the given clock. stats may be nil.
func NewBreaker(clk clock.Clock, cfg BreakerConfig, stats *metrics.ResilienceStats) *Breaker {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Breaker{clk: clk, cfg: cfg.withDefaults(), stats: stats}
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cooldown elapses, then transitions to half-open and
// admits exactly one trial call at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clk.Now().Before(b.openUntil) {
			b.rejections++
			if b.stats != nil {
				b.stats.Rejections.Inc()
			}
			return false
		}
		b.state = HalfOpen
		b.lastTransition = b.clk.Now()
		b.probing = true
		if b.stats != nil {
			b.stats.Probes.Inc()
		}
		return true
	case HalfOpen:
		if b.probing {
			b.rejections++
			if b.stats != nil {
				b.stats.Rejections.Inc()
			}
			return false
		}
		b.probing = true
		if b.stats != nil {
			b.stats.Probes.Inc()
		}
		return true
	}
	return true
}

// Success records a successful call, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		b.lastTransition = b.clk.Now()
		if b.stats != nil {
			b.stats.Recoveries.Inc()
		}
	}
	b.state = Closed
	b.failures = 0
	b.probing = false
}

// Failure records a failed call. A half-open trial failure re-opens the
// circuit immediately; in the closed state the circuit trips once
// FailureThreshold consecutive failures accumulate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	tripped := false
	switch b.state {
	case HalfOpen:
		b.trip()
		tripped = true
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
			tripped = true
		}
	case Open:
		// A detector-path failure while open just extends nothing; the
		// cooldown keeps running.
	}
	b.probing = false
	cb := b.onTrip
	b.mu.Unlock()
	if tripped && cb != nil {
		cb()
	}
}

// trip moves the breaker to open. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.failures = 0
	b.openUntil = b.clk.Now().Add(b.cfg.Cooldown)
	b.trips++
	b.lastTransition = b.clk.Now()
	if b.stats != nil {
		b.stats.Trips.Inc()
	}
}

// releaseProbe frees the half-open trial slot held by a call that was
// admitted through Allow but aborted without an outcome (e.g. the losing
// leg of a hedged fetch reeled in by its CancelToken). The abort says
// nothing about the peer's health, so no state transition is recorded;
// the breaker stays half-open with the slot free, and the next gated call
// becomes the trial instead. Without this an aborted trial would leave
// probing stuck true and wedge the breaker rejecting every gated call.
func (b *Breaker) releaseProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// noteRetry records one re-issued attempt against this peer.
func (b *Breaker) noteRetry() {
	b.mu.Lock()
	b.retries++
	b.mu.Unlock()
}

// State reports the breaker's current state without side effects.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Reset forces the breaker closed (e.g. when a peer declared down comes
// back and re-registers through piggybacked load).
func (b *Breaker) Reset() {
	b.mu.Lock()
	if b.state != Closed {
		b.lastTransition = b.clk.Now()
	}
	b.state = Closed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// PeerStats is one peer's resilience snapshot: current breaker state, the
// per-peer counters, and when the breaker last changed state
// (zero: it never left closed).
type PeerStats struct {
	State          State
	Retries        int64
	Trips          int64
	Rejections     int64
	LastTransition time.Time
}

// Snapshot returns the breaker's per-peer counters and state.
func (b *Breaker) Snapshot() PeerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return PeerStats{
		State:          b.state,
		Retries:        b.retries,
		Trips:          b.trips,
		Rejections:     b.rejections,
		LastTransition: b.lastTransition,
	}
}

// Registry holds one Breaker per peer plus the shared counters.
type Registry struct {
	mu       sync.Mutex
	clk      clock.Clock
	cfg      BreakerConfig
	stats    *metrics.ResilienceStats
	breakers map[string]*Breaker
	onTrip   func(peer string)
}

// NewRegistry returns an empty registry on the given clock.
func NewRegistry(clk clock.Clock, cfg BreakerConfig) *Registry {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Registry{
		clk:      clk,
		cfg:      cfg.withDefaults(),
		stats:    &metrics.ResilienceStats{},
		breakers: make(map[string]*Breaker),
	}
}

// Stats exposes the registry's shared counters.
func (r *Registry) Stats() *metrics.ResilienceStats { return r.stats }

// OnTrip registers a callback invoked with the peer's address whenever
// that peer's breaker trips open. The callback runs outside breaker and
// registry locks, on the goroutine whose Failure tripped the circuit, so
// it must be fast and must not block on the failing peer.
func (r *Registry) OnTrip(fn func(peer string)) {
	r.mu.Lock()
	r.onTrip = fn
	r.mu.Unlock()
}

// For returns the breaker for peer, creating it closed on first use.
func (r *Registry) For(peer string) *Breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[peer]
	if !ok {
		b = NewBreaker(r.clk, r.cfg, r.stats)
		b.onTrip = func() {
			r.mu.Lock()
			fn := r.onTrip
			r.mu.Unlock()
			if fn != nil {
				fn(peer)
			}
		}
		r.breakers[peer] = b
	}
	return b
}

// StateOf reports peer's breaker state without creating a breaker;
// unknown peers report Closed.
func (r *Registry) StateOf(peer string) State {
	r.mu.Lock()
	b, ok := r.breakers[peer]
	r.mu.Unlock()
	if !ok {
		return Closed
	}
	return b.State()
}

// States snapshots every known peer's breaker state.
func (r *Registry) States() map[string]State {
	r.mu.Lock()
	peers := make([]string, 0, len(r.breakers))
	bs := make([]*Breaker, 0, len(r.breakers))
	for p, b := range r.breakers {
		peers = append(peers, p)
		bs = append(bs, b)
	}
	r.mu.Unlock()
	out := make(map[string]State, len(peers))
	for i, p := range peers {
		out[p] = bs[i].State()
	}
	return out
}

// PeerSnapshots returns every known peer's per-peer resilience counters,
// keyed by peer address — the data behind the per-peer rows in
// /~dcws/status and the per-peer telemetry families.
func (r *Registry) PeerSnapshots() map[string]PeerStats {
	r.mu.Lock()
	peers := make([]string, 0, len(r.breakers))
	bs := make([]*Breaker, 0, len(r.breakers))
	for p, b := range r.breakers {
		peers = append(peers, p)
		bs = append(bs, b)
	}
	r.mu.Unlock()
	out := make(map[string]PeerStats, len(peers))
	for i, p := range peers {
		out[p] = bs[i].Snapshot()
	}
	return out
}

// Reset closes peer's breaker if one exists.
func (r *Registry) Reset(peer string) {
	r.mu.Lock()
	b, ok := r.breakers[peer]
	r.mu.Unlock()
	if ok {
		b.Reset()
	}
}

// Execute runs fn against peer under the breaker and retry policy: calls
// are refused fast while the circuit is open, failures count toward
// tripping it, and transient errors are retried on the policy's backoff
// schedule. The last error (or ErrOpen if the very first attempt was
// refused) is returned.
func (r *Registry) Execute(p Policy, peer string, fn func() error) error {
	return r.run(p, peer, fn, true)
}

// Probe is Execute without the breaker gate: attempts always reach the
// network, but outcomes are still recorded so a succeeding probe closes
// the peer's breaker. The pinger thread uses this path.
func (r *Registry) Probe(p Policy, peer string, fn func() error) error {
	return r.run(p, peer, fn, false)
}

func (r *Registry) run(p Policy, peer string, fn func() error, gated bool) error {
	b := r.For(peer)
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if gated && !b.Allow() {
			if lastErr != nil {
				return lastErr
			}
			return ErrOpen
		}
		err := fn()
		if err == nil {
			b.Success()
			return nil
		}
		if errors.Is(err, ErrAborted) {
			// The caller abandoned the call; neither a failure signal nor
			// worth retrying. If this call was admitted as the half-open
			// trial, the slot must still be handed back — otherwise the
			// abort wedges the breaker half-open, rejecting every gated
			// call until the ungated pinger happens to probe the peer.
			if gated {
				b.releaseProbe()
			}
			return err
		}
		b.Failure()
		lastErr = err
		if attempt < attempts {
			r.stats.Retries.Inc()
			b.noteRetry()
			if d := p.Backoff(peer, attempt); d > 0 {
				r.clk.Sleep(d)
			}
		}
	}
	return lastErr
}
