package glt

import "testing"

func BenchmarkGossipExchangeBaseline16(b *testing.B)  { BenchGossipExchangeBaseline(16)(b) }
func BenchmarkGossipExchangeBaseline64(b *testing.B)  { BenchGossipExchangeBaseline(64)(b) }
func BenchmarkGossipExchangeBaseline256(b *testing.B) { BenchGossipExchangeBaseline(256)(b) }
func BenchmarkGossipExchangeSharded16(b *testing.B)   { BenchGossipExchangeSharded(16, 12)(b) }
func BenchmarkGossipExchangeSharded64(b *testing.B)   { BenchGossipExchangeSharded(64, 12)(b) }
func BenchmarkGossipExchangeSharded256(b *testing.B)  { BenchGossipExchangeSharded(256, 12)(b) }
