package glt

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestDecodePiggybackMetadata(t *testing.T) {
	p := DecodePiggyback("!f=a:80,!v=42,!a=7,!g=1,b:80=1.5@1000")
	if p.From != "a:80" || p.Version != 42 || !p.HasAck || p.Ack != 7 || !p.Full {
		t.Fatalf("metadata not decoded: %+v", p)
	}
	if len(p.Entries) != 1 || p.Entries[0].Server != "b:80" {
		t.Fatalf("entries not decoded alongside metadata: %+v", p.Entries)
	}
	// Legacy headers decode with zero metadata.
	p = DecodePiggyback("b:80=1.5@1000")
	if p.From != "" || p.HasAck || p.Full || len(p.Entries) != 1 {
		t.Fatalf("legacy header grew metadata: %+v", p)
	}
}

func TestMetadataInvisibleToLegacyDecoder(t *testing.T) {
	// An old decoder must skip the '!' metadata items and still read the
	// entries, so mixed-version clusters interoperate.
	tab := NewTable("a:80")
	tab.UpdateSelf(2.5, time.UnixMilli(5000))
	tab.Observe(Entry{Server: "c:80", Load: 1, Updated: time.UnixMilli(4000)})
	h := tab.EncodePiggybackTo("b:80", time.UnixMilli(5000), 0, false)
	entries := DecodeHeader(h)
	if len(entries) != 2 {
		t.Fatalf("legacy decode of delta header: got %d entries (%q), want 2", len(entries), h)
	}
}

func TestDeltaOmitsAckedEntries(t *testing.T) {
	a, b := NewTable("a:80"), NewTable("b:80")
	now := time.UnixMilli(1000)
	a.UpdateSelf(1, now)
	a.Observe(Entry{Server: "c:80", Load: 3, Updated: now})

	// First exchange: b has acked nothing, so it gets everything.
	h1 := a.EncodePiggybackTo("b:80", now, 0, false)
	b.Absorb(DecodePiggyback(h1), now)
	if got := len(DecodeHeader(h1)); got != 2 {
		t.Fatalf("first delta carried %d entries (%q), want 2", got, h1)
	}
	// b's reply acks a's version; after a absorbs it, the next delta to
	// b is empty.
	a.Absorb(DecodePiggyback(b.EncodePiggybackTo("a:80", now, 0, false)), now)
	h2 := a.EncodePiggybackTo("b:80", now, 0, false)
	if got := len(DecodeHeader(h2)); got != 0 {
		t.Fatalf("post-ack delta carried %d entries (%q), want 0", got, h2)
	}
	// A new observation flows in the next delta, alone.
	a.Observe(Entry{Server: "d:80", Load: 4, Updated: now.Add(time.Second)})
	h3 := a.EncodePiggybackTo("b:80", now, 0, false)
	es := DecodeHeader(h3)
	if len(es) != 1 || es[0].Server != "d:80" {
		t.Fatalf("incremental delta = %q, want just d:80", h3)
	}
}

func TestDeltaCapAdvertisesOnlySentVersions(t *testing.T) {
	// When the cap truncates the delta, the advertised version must drop
	// to the last included entry so the peer cannot ack entries it never
	// received; the remainder must arrive in subsequent deltas.
	a, b := NewTable("a:80"), NewTable("b:80")
	now := time.UnixMilli(1000)
	for i := 0; i < 9; i++ {
		a.Observe(Entry{Server: fmt.Sprintf("s%02d:80", i), Load: float64(i), Updated: now})
	}
	rounds := 0
	for ; rounds < 10; rounds++ {
		h := a.EncodePiggybackTo("b:80", now, 4, false)
		p := DecodePiggyback(h)
		if len(p.Entries) > 4 {
			t.Fatalf("delta exceeded cap: %d entries", len(p.Entries))
		}
		b.Absorb(p, now)
		a.Absorb(DecodePiggyback(b.EncodePiggybackTo("a:80", now, 4, false)), now)
		if len(DecodeHeader(a.EncodePiggybackTo("b:80", now, 4, false))) == 0 {
			break
		}
	}
	if rounds >= 10 {
		t.Fatal("capped delta never drained")
	}
	for i := 0; i < 9; i++ {
		if !b.Known(fmt.Sprintf("s%02d:80", i)) {
			t.Fatalf("entry s%02d:80 lost under capped delta", i)
		}
	}
}

func TestDeltaStalestFirst(t *testing.T) {
	a := NewTable("a:80")
	for i := 0; i < 6; i++ {
		a.Observe(Entry{Server: fmt.Sprintf("s%d:80", i), Load: 1, Updated: time.UnixMilli(int64(1000 + i))})
	}
	a.UpdateSelf(1, time.UnixMilli(2000))
	// Entries were written in order (self refreshed last), so the capped
	// delta must carry the earliest-written (stalest-known) ones first.
	p := DecodePiggyback(a.EncodePiggybackTo("b:80", time.UnixMilli(2000), 2, false))
	if len(p.Entries) != 2 || p.Entries[0].Server != "s0:80" || p.Entries[1].Server != "s1:80" {
		t.Fatalf("capped delta not stalest-first: %+v", p.Entries)
	}
}

func TestFullExchangeIgnoresAcks(t *testing.T) {
	a, b := NewTable("a:80"), NewTable("b:80")
	now := time.UnixMilli(1000)
	a.Observe(Entry{Server: "c:80", Load: 3, Updated: now})
	// Converge, then corrupt b by removing an entry behind a's back —
	// the delta path will never resend it, the full exchange must.
	b.Absorb(DecodePiggyback(a.EncodePiggybackTo("b:80", now, 0, false)), now)
	a.Absorb(DecodePiggyback(b.EncodePiggybackTo("a:80", now, 0, false)), now)
	b.Remove("c:80")
	if len(DecodeHeader(a.EncodePiggybackTo("b:80", now, 0, false))) != 0 {
		t.Fatal("precondition: delta should be drained")
	}
	full := DecodePiggyback(a.EncodePiggybackTo("b:80", now, 0, true))
	if !full.Full {
		t.Fatalf("full exchange missing !g marker")
	}
	b.Absorb(full, now)
	if !b.Known("c:80") {
		t.Fatal("full exchange did not restore the removed entry")
	}
	if lf := a.LastFullExchange("b:80"); !lf.Equal(now) {
		t.Fatalf("sender lastFull = %v, want %v", lf, now)
	}
	if lf := b.LastFullExchange("a:80"); !lf.Equal(now) {
		t.Fatalf("receiver lastFull = %v, want %v", lf, now)
	}
}

func TestPeerRestartResetsGossip(t *testing.T) {
	now := time.UnixMilli(1000)
	a := NewTable("a:80")
	a.Observe(Entry{Server: "c:80", Load: 3, Updated: now})
	b1 := NewTable("b:80")
	b1.Observe(Entry{Server: "d:80", Load: 1, Updated: now})
	b1.Observe(Entry{Server: "e:80", Load: 1, Updated: now})

	// Converge a <-> b1, then restart b as a fresh table.
	b1.Absorb(DecodePiggyback(a.EncodePiggybackTo("b:80", now, 0, false)), now)
	a.Absorb(DecodePiggyback(b1.EncodePiggybackTo("a:80", now, 0, false)), now)
	b2 := NewTable("b:80")
	// The restarted b advertises a tiny version and echoes no useful ack;
	// a must notice the regression and resend its table rather than
	// assuming b still holds everything it acked in its previous life.
	a.Absorb(DecodePiggyback(b2.EncodePiggybackTo("a:80", now, 0, false)), now)
	h := a.EncodePiggybackTo("b:80", now, 0, false)
	b2.Absorb(DecodePiggyback(h), now)
	if !b2.Known("c:80") {
		t.Fatalf("restarted peer never re-learned c:80 (header %q)", h)
	}
}

func TestAckFromPreviousLifeResets(t *testing.T) {
	// If WE restart, a peer may echo an ack far above our new version.
	// Trusting it would suppress every future delta below that mark.
	a := NewTable("a:80")
	now := time.UnixMilli(1000)
	a.UpdateSelf(1, now)
	a.Absorb(Piggyback{From: "b:80", Version: 9, Ack: 1 << 40, HasAck: true}, now)
	a.Observe(Entry{Server: "c:80", Load: 3, Updated: now})
	h := a.EncodePiggybackTo("b:80", now, 0, false)
	if len(DecodeHeader(h)) == 0 {
		t.Fatalf("foreign-life ack suppressed the delta: %q", h)
	}
}

func TestClientHeaderSelfOnlyAndCached(t *testing.T) {
	tab := NewTable("a:80")
	now := time.UnixMilli(1000)
	tab.UpdateSelf(2.5, now)
	for i := 0; i < 100; i++ {
		tab.Observe(Entry{Server: fmt.Sprintf("s%03d:80", i), Load: 1, Updated: now})
	}
	h := tab.EncodeClientHeader()
	es := DecodeHeader(h)
	if len(es) != 1 || es[0].Server != "a:80" || es[0].Load != 2.5 {
		t.Fatalf("client header = %q, want self entry only", h)
	}
	// Merging peer entries must not invalidate the client-header cache;
	// only a self change may.
	tab.Observe(Entry{Server: "zzz:80", Load: 9, Updated: now.Add(time.Second)})
	if h2 := tab.EncodeClientHeader(); h2 != h {
		t.Fatalf("client header churned on peer merge: %q -> %q", h, h2)
	}
	tab.UpdateSelf(3, now.Add(time.Second))
	if h3 := tab.EncodeClientHeader(); h3 == h {
		t.Fatal("client header did not follow a self update")
	}
}

func TestRemoveDropsGossipState(t *testing.T) {
	a := NewTable("a:80")
	now := time.UnixMilli(1000)
	a.Absorb(Piggyback{From: "b:80", Version: 5, Entries: []Entry{{Server: "b:80", Load: 1, Updated: now}}}, now)
	if _, ok := a.GossipPeers()["b:80"]; !ok {
		t.Fatal("precondition: gossip state for b:80 missing")
	}
	a.Remove("b:80")
	if _, ok := a.GossipPeers()["b:80"]; ok {
		t.Fatal("Remove left gossip state behind")
	}
}

func TestShardSizesCoverTable(t *testing.T) {
	tab := NewTable("a:80")
	for i := 0; i < 63; i++ {
		tab.Observe(Entry{Server: fmt.Sprintf("s%03d:80", i), Load: 1, Updated: time.UnixMilli(1000)})
	}
	if tab.ShardCount() != DefaultShards {
		t.Fatalf("ShardCount = %d, want %d", tab.ShardCount(), DefaultShards)
	}
	total, nonEmpty := 0, 0
	for _, n := range tab.ShardSizes() {
		total += n
		if n > 0 {
			nonEmpty++
		}
	}
	if total != tab.Len() || total != 64 {
		t.Fatalf("shard sizes sum %d, Len %d, want 64", total, tab.Len())
	}
	// FNV should spread 64 addresses across most of 16 stripes.
	if nonEmpty < DefaultShards/2 {
		t.Fatalf("only %d of %d shards populated; hash is clumping", nonEmpty, DefaultShards)
	}
}

func TestEmitCountersByKind(t *testing.T) {
	tab := NewTable("a:80")
	now := time.UnixMilli(1000)
	tab.EncodeClientHeader()
	tab.EncodePiggybackTo("b:80", now, 0, false)
	tab.EncodePiggybackTo("b:80", now, 0, true)
	if tab.ClientEmits() != 1 || tab.DeltaEmits() != 1 || tab.FullEmits() != 1 {
		t.Fatalf("emit counters client=%d delta=%d full=%d, want 1 each",
			tab.ClientEmits(), tab.DeltaEmits(), tab.FullEmits())
	}
	if tab.HeaderBytes() == 0 {
		t.Fatal("HeaderBytes not tracking emissions")
	}
}

func TestDeltaEncodingCached(t *testing.T) {
	tab := NewTable("a:80")
	now := time.UnixMilli(1000)
	tab.UpdateSelf(1, now)
	h1 := tab.EncodePiggybackTo("b:80", now, 8, false)
	before := tab.DeltaRegens()
	for i := 0; i < 5; i++ {
		if h := tab.EncodePiggybackTo("b:80", now, 8, false); h != h1 {
			t.Fatalf("unstable cached delta: %q vs %q", h, h1)
		}
	}
	if got := tab.DeltaRegens(); got != before {
		t.Fatalf("delta re-encoded %d times for an unchanged table", got-before)
	}
	tab.UpdateSelf(2, now.Add(time.Second))
	tab.EncodePiggybackTo("b:80", now, 8, false)
	if got := tab.DeltaRegens(); got != before+1 {
		t.Fatalf("delta regens after change = %d, want %d", got, before+1)
	}
}

func TestDecodePiggybackNeverPoisons(t *testing.T) {
	for _, v := range []string{
		"a:80=NaN@100", "a:80=+Inf@100", "a:80=Inf@100", "a:80=-1@100",
		"!f=bad addr,x=1@2", "!f=,", "!v=not-a-number,!a=-3",
	} {
		p := DecodePiggyback(v)
		for _, e := range p.Entries {
			if e.Load != e.Load || e.Load < 0 {
				t.Fatalf("decode of %q admitted poison load %v", v, e.Load)
			}
		}
		if strings.Contains(p.From, " ") {
			t.Fatalf("decode of %q admitted malformed sender %q", v, p.From)
		}
	}
}
